// HE-backend comparison benchmarks: the scalar Paillier stream versus the
// BatchCrypt-style lane-packed backend, at smoke (256-bit) and paper
// (2048-bit) key sizes. scripts/bench.sh runs these and commits the
// result as BENCH_he.json; cmd/benchfmt derives the headline ratios
// (ciphertexts-per-round reduction and wall-time speedup per key size).
package vf2boost

import (
	"crypto/rand"
	"fmt"
	"math/big"
	mrand "math/rand"
	"testing"

	"vf2boost/internal/core"
	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/he"
	"vf2boost/internal/paillier"
)

// benchKeysByBits caches one Paillier key pair per modulus size, so the
// 2048-bit generation cost is paid once per `go test -bench` process
// instead of once per sub-benchmark iteration.
var benchKeysByBits = map[int]*paillier.PrivateKey{}

func benchDecryptorBits(b *testing.B, bits int) *he.PaillierDecryptor {
	b.Helper()
	k, ok := benchKeysByBits[bits]
	if !ok {
		var err error
		k, err = paillier.GenerateKey(rand.Reader, bits)
		if err != nil {
			b.Fatal(err)
		}
		benchKeysByBits[bits] = k
	}
	return he.NewPaillierFromKey(k, 0)
}

// BenchmarkHEBackendRound trains one boosting round end to end and
// reports Party B's cipher-operation counts alongside wall time. The
// cts/round metric is the headline of the lane-packing change: the
// scalar stream encrypts 2n ciphertexts per round, the packed stream
// ⌈n/pairs⌉ (≈ n/15 at 2048-bit), a ≥8× reduction benchfmt derives as
// he_cts_reduction/bits=N.
func BenchmarkHEBackendRound(b *testing.B) {
	parts := benchParts(b, 400, 20, 20, 16, 11)
	for _, bits := range []int{256, 2048} {
		for _, bk := range []struct{ label, backend string }{
			{"scalar", ""},
			{"packed", "paillier-batched"},
		} {
			b.Run(fmt.Sprintf("backend=%s/bits=%d", bk.label, bits), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Trees = 1
				cfg.MaxDepth = 3
				cfg.MaxBins = 8
				cfg.KeyBits = bits
				cfg.HEBackend = bk.backend
				var cts, decs int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := core.NewSession(parts, cfg, core.WithDecryptor(benchDecryptorBits(b, bits)))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := s.Train(); err != nil {
						b.Fatal(err)
					}
					cts += s.Crypto().Encryptions()
					decs += s.Crypto().Decryptions()
				}
				b.ReportMetric(float64(cts)/float64(b.N), "cts/round")
				b.ReportMetric(float64(decs)/float64(b.N), "decs/round")
			})
		}
	}
}

// BenchmarkHEAccumulate isolates the Party A hot loop: accumulating n
// pre-encrypted gradient contributions into a 16-bin feature histogram.
// The scalar layout needs two homomorphic additions per instance (one
// each for g and h); the packed layout one AddVec on the instance's
// window — hadds/bin records that halving directly.
func BenchmarkHEAccumulate(b *testing.B) {
	const (
		n    = 512
		bins = 16
	)
	rng := mrand.New(mrand.NewSource(13))
	grads := make([]float64, n)
	hess := make([]float64, n)
	binOf := make([]int, n)
	for i := range grads {
		grads[i] = rng.Float64()*2 - 1
		hess[i] = rng.Float64() * 0.25
		binOf[i] = rng.Intn(bins)
	}

	for _, bits := range []int{256, 2048} {
		dec := benchDecryptorBits(b, bits)

		b.Run(fmt.Sprintf("backend=scalar/bits=%d", bits), func(b *testing.B) {
			codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(13))
			gct := make([]fixedpoint.EncNum, n)
			hct := make([]fixedpoint.EncNum, n)
			for i := range gct {
				var err error
				if gct[i], err = codec.EncryptValue(grads[i]); err != nil {
					b.Fatal(err)
				}
				if hct[i], err = codec.EncryptValue(hess[i]); err != nil {
					b.Fatal(err)
				}
			}
			var adds int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				accG := make([]fixedpoint.EncNum, bins)
				accH := make([]fixedpoint.EncNum, bins)
				for j := range accG {
					accG[j] = codec.EncryptZero()
					accH[j] = codec.EncryptZero()
				}
				for j := 0; j < n; j++ {
					codec.AddEncInto(&accG[binOf[j]], gct[j])
					codec.AddEncInto(&accH[binOf[j]], hct[j])
					adds += 2
				}
			}
			b.ReportMetric(float64(adds)/float64(b.N)/bins, "hadds/bin")
		})

		b.Run(fmt.Sprintf("backend=packed/bits=%d", bits), func(b *testing.B) {
			plan, err := fixedpoint.PlanLanes(dec.Bits(), fixedpoint.DefaultBase, 8, 1, 32)
			if err != nil {
				b.Fatal(err)
			}
			vdec, err := he.NewBatchedDecryptor(dec, "paillier-batched", plan.Slots(), plan.LaneBits, plan.Headroom)
			if err != nil {
				b.Fatal(err)
			}
			codec := fixedpoint.NewCodec(vdec, fixedpoint.WithExponents(plan.Exp, 1))
			pairs := plan.Pairs
			windows := make([]he.VecCiphertext, (n+pairs-1)/pairs)
			for w := range windows {
				start := w * pairs
				end := start + pairs
				if end > n {
					end = n
				}
				lanes := make([]*big.Int, 0, 2*(end-start))
				for j := start; j < end; j++ {
					gl, hl, err := codec.EncodeLanePair(grads[j], hess[j], plan)
					if err != nil {
						b.Fatal(err)
					}
					lanes = append(lanes, gl, hl)
				}
				if windows[w], err = codec.EncryptLanes(lanes); err != nil {
					b.Fatal(err)
				}
			}
			var adds int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One accumulator cell per (bin, pair slot), exactly the
				// engine's vecHist layout.
				cells := make([]he.VecCiphertext, bins*pairs)
				for j := 0; j < n; j++ {
					idx := binOf[j]*pairs + j%pairs
					w := windows[j/pairs]
					if cells[idx] == nil {
						cells[idx] = vdec.AddVecInto(vdec.EncryptZeroVec(), w)
					} else {
						cells[idx] = vdec.AddVecInto(cells[idx], w)
					}
					adds++
				}
			}
			b.ReportMetric(float64(adds)/float64(b.N)/bins, "hadds/bin")
		})
	}
}
