module vf2boost

go 1.22
