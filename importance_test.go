package vf2boost

import (
	"math"
	"testing"

	"vf2boost/internal/dataset"
)

func TestFeatureImportanceLocal(t *testing.T) {
	d, _ := Generate(SynthOptions{Rows: 800, Cols: 8, Density: 1, Dense: true, Seed: 31})
	cfg := quick()
	m, err := TrainLocal(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	if len(imp) != 8 {
		t.Fatalf("importance has %d entries", len(imp))
	}
	total := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Error("negative importance")
		}
		total += v
	}
	if total <= 0 {
		t.Error("no importance recorded")
	}
}

func TestGainByPartyMatchesSplits(t *testing.T) {
	joined, _ := Generate(SynthOptions{Rows: 600, Cols: 10, Density: 1, Dense: true, Seed: 32})
	parts, _ := joined.VerticalSplit([]int{5, 5})
	m, _, err := TrainFederated(parts, quick())
	if err != nil {
		t.Fatal(err)
	}
	gains := m.GainByParty()
	splits := m.SplitsByParty()
	if len(gains) != 2 {
		t.Fatalf("gains = %v", gains)
	}
	for p := range gains {
		if (splits[p] == 0) != (gains[p] == 0) {
			t.Errorf("party %d: %d splits but gain %g", p, splits[p], gains[p])
		}
	}
}

func TestRegressionSquaredLoss(t *testing.T) {
	// Build a regression target: y = x0 + 2*x1 with noise, then check
	// federated squared-loss training reduces RMSE well below the
	// baseline standard deviation.
	rows := 1000
	b := dataset.NewBuilder(4)
	labels := make([]float64, rows)
	rng := newTestRNG(33)
	var mean float64
	for i := 0; i < rows; i++ {
		x := []float64{rng(), rng(), rng(), rng()}
		y := x[0] + 2*x[1] + 0.05*rng()
		labels[i] = y
		mean += y
		if err := b.AddRow([]int32{0, 1, 2, 3}, x, y); err != nil {
			t.Fatal(err)
		}
	}
	mean /= float64(rows)
	var sd float64
	for _, y := range labels {
		sd += (y - mean) * (y - mean)
	}
	sd = math.Sqrt(sd / float64(rows))

	joined := &Dataset{ds: b.Build()}
	parts, err := joined.VerticalSplit([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quick()
	cfg.Loss = "squared"
	cfg.Trees = 12
	cfg.LearningRate = 0.3
	m, _, err := TrainFederated(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := RMSE(preds, joined.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.5*sd {
		t.Errorf("federated regression RMSE %g vs target sd %g; did not learn", rmse, sd)
	}

	// Same objective locally must match the federated model.
	local, err := TrainLocal(joined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lp := local.PredictAll(joined)
	for i := range preds {
		if math.Abs(preds[i]-lp[i]) > 1e-6 {
			t.Fatal("federated regression diverges from local")
		}
	}
}

func TestUnknownLossRejected(t *testing.T) {
	d, _ := Generate(SynthOptions{Rows: 50, Cols: 4, Density: 1, Dense: true, Seed: 34})
	parts, _ := d.VerticalSplit([]int{2, 2})
	cfg := quick()
	cfg.Loss = "hinge"
	if _, _, err := TrainFederated(parts, cfg); err == nil {
		t.Error("unknown loss accepted by TrainFederated")
	}
	if _, err := TrainLocal(d, cfg); err == nil {
		t.Error("unknown loss accepted by TrainLocal")
	}
}

// newTestRNG returns a deterministic float generator in [-1, 1).
func newTestRNG(seed int64) func() float64 {
	state := uint64(seed)
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(int64(state>>11))/float64(1<<52) - 1
	}
}
