// Package vf2boost is a from-scratch Go implementation of VF²Boost (Fu et
// al., SIGMOD 2021): very fast vertical federated gradient boosting for
// cross-enterprise learning.
//
// Two or more parties hold disjoint feature columns for the same
// instances; only the active party ("Party B") holds labels. Training
// exchanges only Paillier-encrypted gradient statistics, encrypted
// gradient histograms, split decisions and instance-placement bitmaps, so
// neither labels nor raw features cross party boundaries. The concurrent
// protocol (blaster-style encryption, optimistic node-splitting) and the
// GBDT-customized cryptography (re-ordered histogram accumulation,
// polynomial histogram packing) reproduce the paper's optimizations and
// can be toggled individually.
//
// Quick start (two parties in one process):
//
//	joined, _ := vf2boost.Generate(vf2boost.SynthOptions{Rows: 10000, Cols: 40, Density: 0.3, Seed: 1})
//	parts, _ := joined.VerticalSplit([]int{20, 20})
//	cfg := vf2boost.DefaultConfig()
//	model, stats, _ := vf2boost.TrainFederated(parts, cfg)
//	margins, _ := model.PredictAll(parts)
//
// The non-federated baseline trainer (TrainLocal) and the VF-MOCK and
// VF-GBDT baseline configurations used in the paper's evaluation are also
// exposed.
package vf2boost

import (
	"fmt"
	"io"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/metrics"
	"vf2boost/internal/psi"
)

// Dataset is a labeled or unlabeled sparse feature matrix.
type Dataset struct {
	ds *dataset.Dataset
}

// SynthOptions shapes a synthetic classification dataset.
type SynthOptions struct {
	Rows    int
	Cols    int
	Density float64 // (0,1]; 1 = dense
	Dense   bool    // dense Gaussian features instead of sparse positive
	Noise   float64 // label flip probability
	Seed    int64
}

// Generate builds a deterministic synthetic dataset.
func Generate(o SynthOptions) (*Dataset, error) {
	ds, err := dataset.Generate(dataset.GenOptions{
		Rows: o.Rows, Cols: o.Cols, Density: o.Density,
		Dense: o.Dense, NoiseProb: o.Noise, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// LoadLibSVM reads a LibSVM-format file. cols <= 0 infers the width.
func LoadLibSVM(path string, cols int) (*Dataset, error) {
	ds, err := dataset.LoadLibSVMFile(path, cols)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// SaveLibSVM writes the dataset in LibSVM format.
func (d *Dataset) SaveLibSVM(path string) error { return dataset.SaveLibSVMFile(path, d.ds) }

// Rows returns the instance count.
func (d *Dataset) Rows() int { return d.ds.Rows() }

// Cols returns the feature count.
func (d *Dataset) Cols() int { return d.ds.Cols() }

// Density returns the stored-entry fraction.
func (d *Dataset) Density() float64 { return d.ds.Density() }

// Labels returns the label vector (nil for unlabeled shards).
func (d *Dataset) Labels() []float64 { return d.ds.Labels }

// VerticalSplit partitions the columns into contiguous per-party blocks;
// the last block keeps the labels (it becomes Party B).
func (d *Dataset) VerticalSplit(counts []int) ([]*Dataset, error) {
	parts, err := d.ds.VerticalSplit(counts, len(counts)-1)
	if err != nil {
		return nil, err
	}
	out := make([]*Dataset, len(parts))
	for i, p := range parts {
		out[i] = &Dataset{ds: p}
	}
	return out, nil
}

// TrainValidSplit splits rows into train and validation shards.
func (d *Dataset) TrainValidSplit(trainFrac float64, seed int64) (train, valid *Dataset) {
	tr, va := d.ds.TrainValidSplit(trainFrac, seed)
	return &Dataset{ds: tr}, &Dataset{ds: va}
}

// SubRows selects rows by index (used to apply a PSI alignment).
func (d *Dataset) SubRows(rows []int) *Dataset { return &Dataset{ds: d.ds.SubRows(rows)} }

// Config mirrors the paper's hyper-parameters and optimization toggles.
type Config struct {
	Trees        int
	LearningRate float64
	MaxDepth     int
	MaxBins      int
	Lambda       float64
	Gamma        float64
	Workers      int

	// Loss selects the objective: "logistic" (default) or "squared".
	Loss string

	// Scheme is "paillier" or "mock" (the paper's VF-MOCK baseline).
	Scheme  string
	KeyBits int

	// The four VF²Boost optimizations.
	Blaster     bool
	Reordered   bool
	Optimistic  bool
	HistPacking bool
	// AdaptivePacking and AdaptiveOptimism extend the corresponding
	// optimizations so they never lose in sparse or high-dirty-rate
	// regimes; HistSubtraction derives each larger sibling's encrypted
	// histogram as parent - child (see internal/core.Config).
	AdaptivePacking  bool
	AdaptiveOptimism bool
	HistSubtraction  bool

	// WANMbps simulates the public-network bandwidth between parties
	// (0 = unshaped); WANLatency adds fixed per-message delay.
	WANMbps    float64
	WANLatency time.Duration

	Seed int64
}

// DefaultConfig returns the paper's protocol with all optimizations on
// (VF²Boost).
func DefaultConfig() Config {
	return Config{
		Trees: 20, LearningRate: 0.1, MaxDepth: 6, MaxBins: 20, Lambda: 1,
		Scheme: "paillier", KeyBits: 2048,
		Blaster: true, Reordered: true, Optimistic: true, HistPacking: true,
		AdaptivePacking: true, AdaptiveOptimism: true, HistSubtraction: true,
		Seed: 1,
	}
}

// BaselineConfig returns VF-GBDT: same cryptography, no optimizations.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.Blaster, c.Reordered, c.Optimistic, c.HistPacking = false, false, false, false
	return c
}

// MockConfig returns VF-MOCK: the unoptimized protocol over plaintexts.
func MockConfig() Config {
	c := BaselineConfig()
	c.Scheme = "mock"
	return c
}

func (c Config) toCore() core.Config {
	cc := core.DefaultConfig()
	cc.Trees = c.Trees
	cc.LearningRate = c.LearningRate
	cc.MaxDepth = c.MaxDepth
	cc.MaxBins = c.MaxBins
	cc.Split.Lambda = c.Lambda
	cc.Split.Gamma = c.Gamma
	cc.Workers = c.Workers
	if c.Loss != "" {
		cc.Loss = gbdt.LossByName(c.Loss)
	}
	cc.Scheme = c.Scheme
	cc.KeyBits = c.KeyBits
	cc.BlasterEncryption = c.Blaster
	cc.ReorderedAccumulation = c.Reordered
	cc.OptimisticSplit = c.Optimistic
	cc.HistogramPacking = c.HistPacking
	cc.AdaptivePacking = c.AdaptivePacking
	cc.AdaptiveOptimism = c.AdaptiveOptimism
	cc.HistogramSubtraction = c.HistSubtraction
	cc.Seed = c.Seed
	return cc
}

// Stats summarizes where a federated run spent its time and how the
// optimistic protocol behaved.
type Stats struct {
	EncryptTime   time.Duration
	DecryptTime   time.Duration
	BuildHistTime time.Duration
	FindSplitTime time.Duration
	BIdleTime     time.Duration
	AIdleTime     time.Duration
	SplitsByB     int64
	SplitsByA     int64
	DirtyNodes    int64
	AbortedTasks  int64
	BytesSent     int64
	PerTreeTime   []time.Duration
}

// Model is a trained federated GBDT ensemble (all party fragments glued
// for in-process evaluation).
type Model struct {
	fm *core.FederatedModel
}

// TrainFederated runs vertical federated training over the per-party
// shards (passive parties first, labeled Party B last).
func TrainFederated(parts []*Dataset, cfg Config) (*Model, *Stats, error) {
	if cfg.Loss != "" && gbdt.LossByName(cfg.Loss) == nil {
		return nil, nil, fmt.Errorf("vf2boost: unknown loss %q", cfg.Loss)
	}
	raw := make([]*dataset.Dataset, len(parts))
	for i, p := range parts {
		raw[i] = p.ds
	}
	var opts []core.SessionOption
	if cfg.WANMbps > 0 || cfg.WANLatency > 0 {
		opts = append(opts, core.WithWAN(cfg.WANMbps, cfg.WANLatency))
	}
	s, err := core.NewSession(raw, cfg.toCore(), opts...)
	if err != nil {
		return nil, nil, err
	}
	fm, err := s.Train()
	if err != nil {
		return nil, nil, err
	}
	st := s.Stats()
	stats := &Stats{
		EncryptTime:   st.EncryptTime(),
		DecryptTime:   st.DecryptTime(),
		BuildHistTime: st.BuildHistTime(),
		FindSplitTime: st.FindSplitTime(),
		BIdleTime:     st.BIdleTime(),
		AIdleTime:     st.AIdleTime(),
		SplitsByB:     st.SplitsByB(),
		SplitsByA:     st.SplitsByA(),
		DirtyNodes:    st.DirtyNodes(),
		AbortedTasks:  st.AbortedTasks(),
		PerTreeTime:   s.PerTreeTimes(),
	}
	if s.Broker() != nil {
		stats.BytesSent = s.Broker().BytesSent()
	}
	return &Model{fm: fm}, stats, nil
}

// PredictAll returns raw margins for aligned rows of the per-party shards.
func (m *Model) PredictAll(parts []*Dataset) ([]float64, error) {
	raw := make([]*dataset.Dataset, len(parts))
	for i, p := range parts {
		raw[i] = p.ds
	}
	return m.fm.PredictAll(raw)
}

// SplitsByParty returns the confirmed split counts per party.
func (m *Model) SplitsByParty() []int { return m.fm.SplitsByParty }

// GainByParty sums split gains per party, a privacy-respecting
// contribution summary.
func (m *Model) GainByParty() []float64 { return m.fm.GainByParty() }

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error { return m.fm.Save(w) }

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	fm, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &Model{fm: fm}, nil
}

// LocalModel is a non-federated GBDT model (the XGBoost-style baseline).
type LocalModel struct {
	m *gbdt.Model
}

// TrainLocal trains on a co-located labeled dataset.
func TrainLocal(d *Dataset, cfg Config) (*LocalModel, error) {
	if cfg.Loss != "" && gbdt.LossByName(cfg.Loss) == nil {
		return nil, fmt.Errorf("vf2boost: unknown loss %q", cfg.Loss)
	}
	p := gbdt.DefaultParams()
	p.NumTrees = cfg.Trees
	if cfg.LearningRate > 0 {
		p.LearningRate = cfg.LearningRate
	}
	p.MaxDepth = cfg.MaxDepth
	p.MaxBins = cfg.MaxBins
	p.Split.Lambda = cfg.Lambda
	p.Split.Gamma = cfg.Gamma
	p.Workers = cfg.Workers
	if cfg.Loss != "" {
		p.Loss = gbdt.LossByName(cfg.Loss)
	}
	m, err := gbdt.Train(d.ds, p)
	if err != nil {
		return nil, err
	}
	return &LocalModel{m: m}, nil
}

// PredictAll returns raw margins for every row.
func (lm *LocalModel) PredictAll(d *Dataset) []float64 { return lm.m.PredictAll(d.ds) }

// FeatureImportance returns per-feature total split gains.
func (lm *LocalModel) FeatureImportance() []float64 { return lm.m.FeatureImportance() }

// RMSE computes the root mean squared error of raw predictions against
// targets (for squared-loss models).
func RMSE(preds, labels []float64) (float64, error) { return metrics.RMSE(preds, labels) }

// Save writes the model as JSON.
func (lm *LocalModel) Save(w io.Writer) error { return lm.m.Save(w) }

// AUC computes the area under the ROC curve of raw scores against 0/1
// labels.
func AUC(scores, labels []float64) (float64, error) { return metrics.AUC(scores, labels) }

// LogLoss computes the mean logistic loss of raw margins.
func LogLoss(margins, labels []float64) (float64, error) { return metrics.LogLoss(margins, labels) }

// AlignInstances runs the DDH private set intersection over two parties'
// instance-ID lists and returns the aligned row positions for each, in a
// shared order — the preprocessing step before federated training.
func AlignInstances(idsA, idsB []string) (posA, posB []int, err error) {
	_, posA, posB, err = psi.Align(idsA, idsB)
	return posA, posB, err
}

// Presets lists the names of the paper's Table 3 evaluation datasets.
func Presets() []string {
	names := make([]string, len(dataset.Presets))
	for i, p := range dataset.Presets {
		names[i] = p.Name
	}
	return names
}

// GeneratePreset builds a synthetic equivalent of a Table 3 dataset,
// scaled down by `scale` (1 = the paper's full size), and returns the
// per-party feature counts alongside.
func GeneratePreset(name string, scale float64, seed int64) (*Dataset, []int, error) {
	p, ok := dataset.PresetByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("vf2boost: unknown preset %q (have %v)", name, Presets())
	}
	opts, parts := p.Options(scale, seed)
	ds, err := dataset.Generate(opts)
	if err != nil {
		return nil, nil, err
	}
	return &Dataset{ds: ds}, parts, nil
}
