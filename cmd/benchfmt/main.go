// Command benchfmt turns `go test -bench` output into a stable JSON
// document, so benchmark baselines can be committed, diffed, and checked in
// CI. It reads the bench text from stdin (or -in), writes JSON to stdout
// (or -out), and derives the obfuscator speedup — baseline r^n versus
// fixed-base h^x — per key size when both benchmarks are present.
//
// With -check FILE it instead validates that FILE parses as a benchfmt
// document with at least one benchmark, exiting non-zero otherwise; CI uses
// this to guarantee the committed BENCH_crypto.json never rots. -check also
// recognizes the out-of-core sweep schema that cmd/experiments writes to
// BENCH_ooc.json (a top-level "runs" array instead of "benchmarks") and
// validates its own invariants: a positive build rate, per-run load
// counters, and byte-identical models across the budget sweep.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one `Benchmark.../...-P  N  x ns/op [...]` result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the committed baseline format.
type Document struct {
	Date       string             `json:"date,omitempty"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	date := flag.String("date", "", "date stamp recorded in the document")
	check := flag.String("check", "", "validate FILE as a benchfmt document and exit")
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchfmt: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("benchfmt: %s ok\n", *check)
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	benches, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	doc := Document{
		Date:       *date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: benches,
		Derived:    deriveSpeedups(benches),
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark result lines, ignoring everything else that
// `go test -bench` prints (goos/pkg headers, PASS, ok lines).
func parse(r io.Reader) ([]Benchmark, error) {
	var benches []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Shape: Benchmark<Name>-P  iterations  value unit [value unit ...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: stripProcSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad metric value %q", sc.Text(), fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
		benches = append(benches, b)
	}
	return benches, sc.Err()
}

// stripProcSuffix drops the trailing -GOMAXPROCS from a benchmark name so
// baselines recorded on machines with different core counts stay diffable.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// deriveSpeedups computes the headline ratios of the committed baselines
// explicitly, rather than leaving readers to divide by hand:
//
//   - obfuscator_speedup/bits=N — baseline r^n versus fixed-base h^x
//     obfuscator generation, per key size.
//   - he_cts_reduction/bits=N — scalar versus lane-packed ciphertexts
//     per boosting round (the BatchCrypt-style packing headline; the
//     acceptance gate wants ≥8 at 2048-bit).
//   - he_round_speedup/bits=N — scalar versus lane-packed wall time for
//     the same round.
//   - objective_amortization/k=N — cipher ops charged per round per
//     class tree, binary reference versus a k-class round: a k-class
//     round ships one shared encrypted pass and root decode, so the
//     ratio must exceed 1 (sub-linear cipher cost in k).
func deriveSpeedups(benches []Benchmark) map[string]float64 {
	const (
		basePrefix = "BenchmarkObfuscatorBaseline/"
		fastPrefix = "BenchmarkObfuscatorFixedBase/"
	)
	baseline := map[string]float64{}
	fast := map[string]float64{}
	for _, b := range benches {
		if s, ok := strings.CutPrefix(b.Name, basePrefix); ok && b.NsPerOp > 0 {
			baseline[s] = b.NsPerOp
		}
		if s, ok := strings.CutPrefix(b.Name, fastPrefix); ok && b.NsPerOp > 0 {
			fast[s] = b.NsPerOp
		}
	}
	derived := map[string]float64{}
	for size, bn := range baseline {
		if fn, ok := fast[size]; ok {
			derived["obfuscator_speedup/"+size] = bn / fn
		}
	}

	const (
		scalarRound = "BenchmarkHEBackendRound/backend=scalar/"
		packedRound = "BenchmarkHEBackendRound/backend=packed/"
	)
	round := map[string]*struct{ scalarNs, packedNs, scalarCts, packedCts float64 }{}
	at := func(size string) *struct{ scalarNs, packedNs, scalarCts, packedCts float64 } {
		if round[size] == nil {
			round[size] = &struct{ scalarNs, packedNs, scalarCts, packedCts float64 }{}
		}
		return round[size]
	}
	for _, b := range benches {
		if s, ok := strings.CutPrefix(b.Name, scalarRound); ok {
			at(s).scalarNs = b.NsPerOp
			at(s).scalarCts = b.Metrics["cts/round"]
		}
		if s, ok := strings.CutPrefix(b.Name, packedRound); ok {
			at(s).packedNs = b.NsPerOp
			at(s).packedCts = b.Metrics["cts/round"]
		}
	}
	for size, r := range round {
		if r.scalarCts > 0 && r.packedCts > 0 {
			derived["he_cts_reduction/"+size] = r.scalarCts / r.packedCts
		}
		if r.scalarNs > 0 && r.packedNs > 0 {
			derived["he_round_speedup/"+size] = r.scalarNs / r.packedNs
		}
	}

	const objRound = "BenchmarkObjectiveRound/"
	objOps := map[string]float64{} // "k=N/bits=M" -> cipherops/round/class
	for _, b := range benches {
		if s, ok := strings.CutPrefix(b.Name, objRound); ok {
			objOps[s] = b.Metrics["cipherops/round/class"]
		}
	}
	for key, ops := range objOps {
		kPart, bitsPart, ok := strings.Cut(key, "/")
		if !ok || kPart == "k=1" || ops <= 0 {
			continue
		}
		if ref := objOps["k=1/"+bitsPart]; ref > 0 {
			derived["objective_amortization/"+kPart] = ref / ops
		}
	}

	if len(derived) == 0 {
		return nil
	}
	return derived
}

func checkFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if _, ok := top["runs"]; ok {
		return checkOOC(raw)
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("document has no benchmarks")
	}
	for i, b := range doc.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchmark %d has no name", i)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("benchmark %q has non-positive ns_per_op", b.Name)
		}
	}
	return nil
}

// oocDoc mirrors the parts of the BENCH_ooc.json schema (written by
// internal/experiments.WriteOOCJSON) that the check gates on.
type oocDoc struct {
	Build struct {
		RowsPerSec float64 `json:"rows_per_sec"`
		Shards     int     `json:"shards"`
	} `json:"build"`
	Runs []struct {
		Budget            int64   `json:"budget_bytes"`
		RowsPerSec        float64 `json:"rows_per_sec"`
		Loads             int64   `json:"loads"`
		LoadsPerShardTree float64 `json:"loads_per_shard_tree"`
		ModelMatchesRef   bool    `json:"model_matches_ref"`
	} `json:"runs"`
}

// checkOOC validates the out-of-core sweep baseline: every budget point
// must have trained at a positive rate on a byte-identical model, and
// the per-shard-per-tree load counter — the read-amplification headline
// the shard-major schedule exists to bound — must be present and
// positive on every budget-capped run.
func checkOOC(raw []byte) error {
	var doc oocDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("invalid ooc document: %w", err)
	}
	if doc.Build.RowsPerSec <= 0 {
		return fmt.Errorf("ooc build has non-positive rows_per_sec")
	}
	if doc.Build.Shards <= 0 {
		return fmt.Errorf("ooc build has no shards")
	}
	if len(doc.Runs) == 0 {
		return fmt.Errorf("ooc document has no runs")
	}
	for i, r := range doc.Runs {
		if r.RowsPerSec <= 0 {
			return fmt.Errorf("ooc run %d (budget %d) has non-positive rows_per_sec", i, r.Budget)
		}
		if !r.ModelMatchesRef {
			return fmt.Errorf("ooc run %d (budget %d) drifted from the reference model", i, r.Budget)
		}
		if r.Budget > 0 && (r.Loads <= 0 || r.LoadsPerShardTree <= 0) {
			return fmt.Errorf("ooc run %d (budget %d) is missing load counters", i, r.Budget)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
	os.Exit(1)
}
