// Command benchfmt turns `go test -bench` output into a stable JSON
// document, so benchmark baselines can be committed, diffed, and checked in
// CI. It reads the bench text from stdin (or -in), writes JSON to stdout
// (or -out), and derives the obfuscator speedup — baseline r^n versus
// fixed-base h^x — per key size when both benchmarks are present.
//
// With -check FILE it instead validates that FILE parses as a benchfmt
// document with at least one benchmark, exiting non-zero otherwise; CI uses
// this to guarantee the committed BENCH_crypto.json never rots.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one `Benchmark.../...-P  N  x ns/op [...]` result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the committed baseline format.
type Document struct {
	Date       string             `json:"date,omitempty"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	date := flag.String("date", "", "date stamp recorded in the document")
	check := flag.String("check", "", "validate FILE as a benchfmt document and exit")
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchfmt: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("benchfmt: %s ok\n", *check)
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	benches, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	doc := Document{
		Date:       *date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: benches,
		Derived:    deriveSpeedups(benches),
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark result lines, ignoring everything else that
// `go test -bench` prints (goos/pkg headers, PASS, ok lines).
func parse(r io.Reader) ([]Benchmark, error) {
	var benches []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Shape: Benchmark<Name>-P  iterations  value unit [value unit ...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: stripProcSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad metric value %q", sc.Text(), fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
		benches = append(benches, b)
	}
	return benches, sc.Err()
}

// stripProcSuffix drops the trailing -GOMAXPROCS from a benchmark name so
// baselines recorded on machines with different core counts stay diffable.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// deriveSpeedups computes obfuscator_speedup/bits=N =
// baseline ns_per_op / fixed-base ns_per_op for every key size measured
// under both benchmarks. This ratio is the headline number of the fast
// obfuscation change, so it is recorded explicitly rather than left for
// readers to divide by hand.
func deriveSpeedups(benches []Benchmark) map[string]float64 {
	const (
		basePrefix = "BenchmarkObfuscatorBaseline/"
		fastPrefix = "BenchmarkObfuscatorFixedBase/"
	)
	baseline := map[string]float64{}
	fast := map[string]float64{}
	for _, b := range benches {
		if s, ok := strings.CutPrefix(b.Name, basePrefix); ok && b.NsPerOp > 0 {
			baseline[s] = b.NsPerOp
		}
		if s, ok := strings.CutPrefix(b.Name, fastPrefix); ok && b.NsPerOp > 0 {
			fast[s] = b.NsPerOp
		}
	}
	derived := map[string]float64{}
	for size, bn := range baseline {
		if fn, ok := fast[size]; ok {
			derived["obfuscator_speedup/"+size] = bn / fn
		}
	}
	if len(derived) == 0 {
		return nil
	}
	return derived
}

func checkFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("document has no benchmarks")
	}
	for i, b := range doc.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchmark %d has no name", i)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("benchmark %q has non-positive ns_per_op", b.Name)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
	os.Exit(1)
}
