// Command vf2boost trains and serves vertical federated GBDT models. The
// subcommands cover the deployment shapes:
//
//	vf2boost local   -data d.libsvm -out model.json        # non-federated baseline
//	vf2boost sim     -data d.libsvm -split 30,20 ...       # all parties in-process
//	vf2boost gateway -addr :7001 -secret s                 # message-queue gateway
//	vf2boost party   -role b -gateway host:7001 ...        # one training party per process
//	vf2boost predict -role a|b ...                         # fragment-only federated scoring
//	vf2boost serve   -addr :8080 -peers 1 ...              # Party B online scoring server
//	vf2boost sidecar -index 0 ...                          # passive-party scoring sidecar
//	vf2boost inspect -model fedmodel.json -trees           # human-readable model dump
//
// The gateway/party mode mirrors the paper's deployment: each enterprise
// runs its own process (or host), and the only connectivity between them
// is the authenticated message queue on the gateway machines. serve and
// sidecar keep that shape for online inference: persistent scoring
// sessions over the gateway, micro-batched so one WAN round-trip serves
// many HTTP requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"vf2boost/internal/checkpoint"
	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/fault"
	"vf2boost/internal/fault/fsfault"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
	"vf2boost/internal/metrics"
	"vf2boost/internal/mq"
	"vf2boost/internal/objective"
	"vf2boost/internal/ooc"
	"vf2boost/internal/serve"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "local":
		cmdLocal(os.Args[2:])
	case "sim":
		cmdSim(os.Args[2:])
	case "gateway":
		cmdGateway(os.Args[2:])
	case "party":
		cmdParty(os.Args[2:])
	case "predict":
		cmdPredict(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "sidecar":
		cmdSidecar(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vf2boost <local|sim|gateway|party|predict|serve|sidecar|inspect> [flags]")
	os.Exit(2)
}

// trainFlags registers the hyper-parameter flags shared by the training
// subcommands and returns a loader.
func trainFlags(fs *flag.FlagSet) func() core.Config {
	trees := fs.Int("trees", 20, "boosting rounds T")
	eta := fs.Float64("eta", 0.1, "learning rate")
	depth := fs.Int("depth", 6, "split levels per tree")
	bins := fs.Int("bins", 20, "histogram bins per feature s")
	lambda := fs.Float64("lambda", 1, "L2 leaf regularizer")
	gamma := fs.Float64("gamma", 0, "split complexity penalty")
	workers := fs.Int("workers", 0, "per-party workers (0 = GOMAXPROCS)")
	scheme := fs.String("scheme", "paillier", "crypto scheme: paillier or mock")
	heBackend := fs.String("he", "", "HE backend: "+strings.Join(he.Names(), ", ")+" (empty = scalar backend of -scheme)")
	keyBits := fs.Int("keybits", 1024, "Paillier modulus size S")
	baseline := fs.Bool("baseline", false, "disable all VF2Boost optimizations (VF-GBDT)")
	fastObf := fs.Bool("fastobf", true, "DJN fast obfuscation: h^x obfuscators from fixed-base tables (off under -baseline)")
	seed := fs.Int64("seed", 1, "seed for exponent obfuscation")
	codec := fs.String("codec", "", "wire codec: binary (default) or gob")
	objSpec := fs.String("objective", "binary", "training objective: "+strings.Join(objective.Names(), ", ")+" (e.g. multiclass:3, ranking:10)")
	return func() core.Config {
		cfg := core.DefaultConfig()
		if *baseline {
			cfg = core.BaselineConfig()
		}
		cfg.FastObfuscation = *fastObf && !*baseline
		cfg.Trees = *trees
		cfg.LearningRate = *eta
		cfg.MaxDepth = *depth
		cfg.MaxBins = *bins
		cfg.Split.Lambda = *lambda
		cfg.Split.Gamma = *gamma
		cfg.Workers = *workers
		cfg.Scheme = *scheme
		if *heBackend != "" {
			// Fail fast on unknown backends — before any data loads or key
			// generation — listing what this build has registered.
			if !he.Registered(*heBackend) {
				log.Fatalf("unknown HE backend %q (registered: %s)", *heBackend, strings.Join(he.Names(), ", "))
			}
			cfg.HEBackend = *heBackend
			// -he implies its scheme family unless -scheme was given
			// explicitly (a mismatch is then rejected by config validation).
			explicitScheme := false
			fs.Visit(func(f *flag.Flag) {
				if f.Name == "scheme" {
					explicitScheme = true
				}
			})
			if !explicitScheme {
				cfg.Scheme = he.Family(*heBackend)
			}
		}
		cfg.KeyBits = *keyBits
		cfg.Seed = *seed
		cfg.WireCodec = *codec
		if *objSpec != "" && *objSpec != "binary" {
			// Same fail-fast contract as -he: an unknown objective dies
			// before any data loads, listing what this build registers.
			o, err := objective.New(*objSpec)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Objective = o
		}
		return cfg
	}
}

// isRanking reports whether the configured objective couples gradients
// across query groups, which changes how the labeled shard is read
// (qid:N tokens) and which metric headlines the run.
func isRanking(cfg core.Config) bool {
	return cfg.Objective != nil && strings.HasPrefix(cfg.Objective.Name(), "ranking")
}

// loadLabeledData reads the labeled training shard under the configured
// objective: ranking reads qid:N query groups and installs them on the
// objective; everything else is a plain LibSVM load.
func loadLabeledData(path string, cfg core.Config) *dataset.Dataset {
	if !isRanking(cfg) {
		return loadData(path)
	}
	d, groups, err := dataset.LoadLibSVMRankingFile(path, 0)
	if err != nil {
		log.Fatalf("loading %s: %v", path, err)
	}
	if err := cfg.Objective.(objective.GroupAware).SetGroups(groups); err != nil {
		log.Fatalf("loading %s: %v", path, err)
	}
	return d
}

// reportObjectiveMetric prints the objective's headline metric (mlogloss,
// ndcg@k, ...) plus accuracy for multiclass, over a k×n margin matrix.
func reportObjectiveMetric(cfg core.Config, labels []float64, margins [][]float64) {
	score, err := cfg.Objective.Eval(labels, margins)
	if err != nil {
		log.Fatal(err)
	}
	line := fmt.Sprintf("  train %s %.4f", cfg.Objective.EvalName(), score)
	if cfg.Objective.NumOutputs() > 1 {
		if acc, aerr := metrics.MulticlassAccuracy(margins, labels); aerr == nil {
			line += fmt.Sprintf(", accuracy %.4f", acc)
		}
	}
	fmt.Println(line)
}

// oocFlags registers the out-of-core flags shared by the training
// subcommands and returns a loader for the resolved settings.
func oocFlags(fs *flag.FlagSet) func() oocSettings {
	dir := fs.String("ooc", "", "train out-of-core: build (if absent) and use a binned shard store under this directory")
	budget := fs.String("mem-budget", "256MiB", "resident shard-cache cap for -ooc (bytes, or with K/M/G[iB] suffix; 0 = unlimited)")
	chunkRows := fs.Int("chunk-rows", 1<<16, "shard height in rows for -ooc store builds")
	buildWorkers := fs.Int("build-workers", 1, "parallel discretization workers for -ooc store builds (range-scannable sources; output is byte-identical to a serial build)")
	prefetch := fs.Bool("prefetch", true, "readahead of the next shard in the sweep plan (-ooc)")
	chaos := fs.String("fschaos", "", "seeded storage fault injection for stores and checkpoints, e.g. seed=7,flip=0.02,readerr=0.05,shortwrite=0.1,tornrename=0.2,enospc=1MiB,crash=40")
	return func() oocSettings {
		b, err := parseBytes(*budget)
		if err != nil {
			log.Fatalf("bad -mem-budget: %v", err)
		}
		s := oocSettings{dir: *dir, budget: b, chunkRows: *chunkRows, buildWorkers: *buildWorkers, prefetch: *prefetch}
		if *chaos != "" {
			cfg, err := fsfault.ParseSpec(*chaos)
			if err != nil {
				log.Fatalf("bad -fschaos: %v", err)
			}
			s.fsys = fsfault.Wrap(nil, cfg)
		}
		return s
	}
}

type oocSettings struct {
	dir          string
	budget       int64
	chunkRows    int
	buildWorkers int
	prefetch     bool
	fsys         fsfault.FS // nil = real filesystem; set by -fschaos
}

// openStore builds the store from src if dir has no manifest yet, then
// opens it under the configured budget. An existing store is reused
// as-is (delete the directory to force a rebuild).
func (s oocSettings) openStore(src ooc.Source, maxBins int) *ooc.Store {
	opt := ooc.Options{MemBudget: s.budget, Prefetch: s.prefetch, Source: src, FS: s.fsys}
	st, err := ooc.Open(s.dir, opt)
	if err == nil {
		fmt.Printf("ooc: reusing store %s (%d rows, %d shards)\n", s.dir, st.Rows(), st.NumShards())
		return st
	}
	start := time.Now()
	if err := ooc.Build(s.dir, src, ooc.BuildOptions{MaxBins: maxBins, ChunkRows: s.chunkRows, Workers: s.buildWorkers, FS: s.fsys}); err != nil {
		log.Fatalf("ooc: building %s: %v", s.dir, err)
	}
	st, err = ooc.Open(s.dir, opt)
	if err != nil {
		log.Fatalf("ooc: opening %s: %v", s.dir, err)
	}
	fmt.Printf("ooc: built store %s in %v (%d rows, %d shards, budget %d bytes)\n",
		s.dir, time.Since(start).Round(time.Millisecond), st.Rows(), st.NumShards(), s.budget)
	return st
}

// parseBytes parses a byte count with an optional K/M/G, KB/MB/GB or
// KiB/MiB/GiB suffix (all binary multiples).
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	shift := 0
	upper := strings.ToUpper(t)
	for suf, sh := range map[string]int{"KIB": 10, "MIB": 20, "GIB": 30, "KB": 10, "MB": 20, "GB": 30, "K": 10, "M": 20, "G": 30} {
		if strings.HasSuffix(upper, suf) && len(upper) > len(suf) {
			if sh > shift {
				shift = sh
				t = strings.TrimSpace(t[:len(t)-len(suf)])
			}
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%q is not a byte count", s)
	}
	return n << shift, nil
}

func loadData(path string) *dataset.Dataset {
	d, err := dataset.LoadLibSVMFile(path, 0)
	if err != nil {
		log.Fatalf("loading %s: %v", path, err)
	}
	return d
}

func parseSplit(s string) []int {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c <= 0 {
			log.Fatalf("bad -split %q", s)
		}
		counts = append(counts, c)
	}
	return counts
}

func cmdLocal(args []string) {
	fs := flag.NewFlagSet("local", flag.ExitOnError)
	data := fs.String("data", "", "labeled LibSVM training file")
	out := fs.String("out", "model.json", "model output path")
	oocFn := oocFlags(fs)
	cfgFn := trainFlags(fs)
	fs.Parse(args)
	if *data == "" {
		log.Fatal("local: -data is required")
	}
	cfg := cfgFn()
	p := gbdt.DefaultParams()
	p.NumTrees = cfg.Trees
	p.LearningRate = cfg.LearningRate
	p.MaxDepth = cfg.MaxDepth
	p.MaxBins = cfg.MaxBins
	p.Split = cfg.Split
	p.Workers = cfg.Workers

	if oc := oocFn(); oc.dir != "" {
		if cfg.Objective != nil {
			log.Fatalf("local: -objective %s is not supported with -ooc (the streaming trainer is single-output)", cfg.Objective.Name())
		}
		// Out-of-core: the raw rows never materialize, so the train-AUC
		// report (which needs raw feature values) is skipped.
		src, err := ooc.NewLibSVMSource(*data, 0)
		if err != nil {
			log.Fatal(err)
		}
		st := oc.openStore(src, p.MaxBins)
		labels, err := st.Labels()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		m, err := gbdt.TrainBinned(st, labels, p)
		if err != nil {
			log.Fatal(err)
		}
		cs := st.Stats()
		fmt.Printf("trained %d trees out-of-core in %v; cache: %d loads, %d prefetches, %d evictions, peak %d bytes\n",
			cfg.Trees, time.Since(start).Round(time.Millisecond), cs.Loads, cs.Prefetches, cs.Evictions, cs.PeakBytes)
		if cs.RetriedLoads > 0 || cs.Quarantined > 0 || cs.Rebuilds > 0 {
			fmt.Printf("self-heal: %d retried loads, %d quarantined shards, %d rebuilds (generation %d)\n",
				cs.RetriedLoads, cs.Quarantined, cs.Rebuilds, st.Generation())
		}
		if err := m.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model written to %s\n", *out)
		return
	}

	d := loadLabeledData(*data, cfg)
	start := time.Now()
	if cfg.Objective != nil {
		m, err := gbdt.TrainMulti(d, cfg.Objective, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained %d rounds (%d trees) in %v\n",
			cfg.Trees, len(m.Trees), time.Since(start).Round(time.Millisecond))
		reportObjectiveMetric(cfg, d.Labels, m.PredictAllOutputs(d))
		if err := m.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model written to %s\n", *out)
		return
	}
	m, err := gbdt.Train(d, p)
	if err != nil {
		log.Fatal(err)
	}
	margins := m.PredictAll(d)
	auc, _ := metrics.AUC(margins, d.Labels)
	ll, _ := metrics.LogLoss(margins, d.Labels)
	fmt.Printf("trained %d trees in %v; train AUC %.4f, logloss %.4f\n",
		cfg.Trees, time.Since(start).Round(time.Millisecond), auc, ll)
	if err := m.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model written to %s\n", *out)
}

func cmdSim(args []string) {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	data := fs.String("data", "", "labeled joined LibSVM file (will be split vertically)")
	split := fs.String("split", "", "per-party feature counts, e.g. 30,20 (last party keeps labels)")
	out := fs.String("out", "fedmodel.json", "model output path")
	wan := fs.Float64("wan", 0, "simulated WAN bandwidth in Mbps (0 = unshaped)")
	chaos := fs.String("chaos", "", "seeded fault injection spec, e.g. seed=7,drop=0.05,dup=0.02,reorder=0.02,delay=0.1,delayfor=2ms,cut=500")
	ckptDir := fs.String("checkpoint-dir", "", "snapshot every party's training state here after each tree")
	resume := fs.Bool("resume", false, "resume from the newest checkpoint under -checkpoint-dir")
	oocFn := oocFlags(fs)
	cfgFn := trainFlags(fs)
	fs.Parse(args)
	if *data == "" || *split == "" {
		log.Fatal("sim: -data and -split are required")
	}
	if *resume && *ckptDir == "" {
		log.Fatal("sim: -resume requires -checkpoint-dir")
	}
	cfg := cfgFn()
	var opts []core.SessionOption
	if *wan > 0 {
		opts = append(opts, core.WithWAN(*wan, 0))
	}
	if *chaos != "" {
		fc, err := fault.ParseSpec(*chaos)
		if err != nil {
			log.Fatalf("sim: %v", err)
		}
		opts = append(opts, core.WithChaos(fc))
	}
	if *ckptDir != "" {
		opts = append(opts, core.WithCheckpoints(*ckptDir))
	}
	if *resume {
		opts = append(opts, core.WithResume())
	}

	var sess *core.Session
	var err error
	var trainLabels []float64
	var parts []*dataset.Dataset
	if oc := oocFn(); oc.dir != "" {
		if cfg.Objective != nil {
			log.Fatalf("sim: -objective %s is not supported with -ooc (view sessions are single-output)", cfg.Objective.Name())
		}
		// Out-of-core sim: every party trains against its own disk-backed
		// store, built from a column slice of the joined row stream — the
		// joined dataset is never materialized.
		counts := parseSplit(*split)
		base, serr := ooc.NewLibSVMSource(*data, 0)
		if serr != nil {
			log.Fatal(serr)
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != base.Cols() {
			log.Fatalf("sim: -split %v covers %d features, %s has %d", counts, total, *data, base.Cols())
		}
		if oc.fsys != nil {
			// The same injector that hits the shard stores also hits any
			// checkpoint stores the session opens.
			opts = append(opts, core.WithCheckpointFS(oc.fsys))
		}
		views := make([]gbdt.BinView, len(counts))
		lo := 0
		for i, c := range counts {
			labeled := i == len(counts)-1
			slice, serr := ooc.NewColumnSlice(base, lo, lo+c, labeled)
			if serr != nil {
				log.Fatal(serr)
			}
			ps := oc
			ps.dir = filepath.Join(oc.dir, fmt.Sprintf("party%d", i))
			st := ps.openStore(slice, cfg.MaxBins)
			views[i] = st
			if labeled {
				if trainLabels, serr = st.Labels(); serr != nil {
					log.Fatal(serr)
				}
			}
			lo += c
		}
		sess, err = core.NewViewSession(views, trainLabels, cfg, opts...)
	} else {
		d := loadLabeledData(*data, cfg)
		parts, err = d.VerticalSplit(parseSplit(*split), len(parseSplit(*split))-1)
		if err != nil {
			log.Fatal(err)
		}
		trainLabels = d.Labels
		sess, err = core.NewSession(parts, cfg, opts...)
	}
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	m, err := sess.Train()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := sess.Stats()
	fmt.Printf("federated training: %v (%v/tree)\n", elapsed.Round(time.Millisecond),
		(elapsed / time.Duration(cfg.Trees)).Round(time.Millisecond))
	if parts != nil && cfg.Objective != nil {
		margins, perr := m.PredictAllOutputs(parts)
		if perr != nil {
			log.Fatal(perr)
		}
		reportObjectiveMetric(cfg, trainLabels, margins)
	} else if parts != nil {
		// Train-AUC needs raw feature values, which the out-of-core path
		// never materializes — only reported for the in-memory path.
		margins, perr := m.PredictAll(parts)
		if perr != nil {
			log.Fatal(perr)
		}
		auc, _ := metrics.AUC(margins, trainLabels)
		ll, _ := metrics.LogLoss(margins, trainLabels)
		fmt.Printf("  train AUC %.4f, logloss %.4f\n", auc, ll)
	}
	fmt.Printf("  encrypt %v, decrypt %v, build-hist %v, idle(B) %v\n",
		st.EncryptTime().Round(time.Millisecond), st.DecryptTime().Round(time.Millisecond),
		st.BuildHistTime().Round(time.Millisecond), st.BIdleTime().Round(time.Millisecond))
	fmt.Printf("  splits: passive %d, B %d; dirty %d; traffic %.1f MiB\n",
		st.SplitsByA(), st.SplitsByB(), st.DirtyNodes(),
		float64(sess.Broker().BytesSent())/(1<<20))
	fmt.Println(st)
	if *chaos != "" {
		for i, ls := range sess.LinkStats() {
			fmt.Printf("  %s %d: %s\n", map[int]string{0: "B-side link", 1: "A-side link"}[i%2], i/2, ls)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model written to %s\n", *out)
}

func cmdGateway(args []string) {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", ":7001", "listen address")
	secret := fs.String("secret", "", "shared token secret (empty disables auth)")
	wan := fs.Float64("wan", 0, "simulated WAN bandwidth in Mbps (0 = unshaped)")
	fs.Parse(args)
	var opts []mq.Option
	if *secret != "" {
		opts = append(opts, mq.WithAuth([]byte(*secret)))
	}
	if *wan > 0 {
		sh := mq.NewShaper(*wan, 0)
		sh.SetPerMessageOverhead(mq.FrameOverhead)
		opts = append(opts, mq.WithShaper(sh))
	}
	broker := mq.NewBroker(opts...)
	g := mq.NewGateway(broker)
	bound, err := g.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway listening on %s (auth: %v)\n", bound, *secret != "")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	g.Close()
	broker.Close()
}

// gatewayTransport adapts a producer/consumer TCP pair to core.Transport.
type gatewayTransport struct {
	prod *mq.RemoteProducer
	cons *mq.RemoteConsumer
}

func (t gatewayTransport) Send(b []byte) error      { return t.prod.Send(b) }
func (t gatewayTransport) Receive() ([]byte, error) { return t.cons.Receive() }

// Close severs both gateway connections so the broker-side consumer
// detaches — a lingering consumer would keep stealing queued frames.
func (t gatewayTransport) Close() {
	t.prod.Close()
	t.cons.Close()
}

func dialPartyErr(gateway, secret, sendTopic, recvTopic string) (core.Transport, error) {
	tok := func(topic string) string {
		if secret == "" {
			return ""
		}
		return mq.Token([]byte(secret), topic)
	}
	prod, err := mq.DialProducer(gateway, sendTopic, tok(sendTopic))
	if err != nil {
		return nil, fmt.Errorf("dialing gateway producer: %w", err)
	}
	cons, err := mq.DialConsumer(gateway, recvTopic, tok(recvTopic))
	if err != nil {
		return nil, fmt.Errorf("dialing gateway consumer: %w", err)
	}
	return gatewayTransport{prod: prod, cons: cons}, nil
}

func dialParty(gateway, secret, sendTopic, recvTopic string) core.Transport {
	tr, err := dialPartyErr(gateway, secret, sendTopic, recvTopic)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func cmdParty(args []string) {
	fs := flag.NewFlagSet("party", flag.ExitOnError)
	role := fs.String("role", "", "a (passive) or b (active, holds labels)")
	index := fs.Int("index", 0, "passive party index (role a)")
	peers := fs.Int("peers", 1, "number of passive parties (role b)")
	gateway := fs.String("gateway", "127.0.0.1:7001", "gateway address")
	secret := fs.String("secret", "", "shared token secret")
	data := fs.String("data", "", "this party's LibSVM shard")
	out := fs.String("out", "", "model fragment output path (optional)")
	resilient := fs.Bool("resilient", false, "wrap the gateway link in the retry/heartbeat layer (survives drops and reconnects)")
	heartbeat := fs.Duration("heartbeat", time.Second, "idle-link keepalive interval (with -resilient)")
	peerTimeout := fs.Duration("peer-timeout", 30*time.Second, "declare the peer dead after this silence (with -resilient)")
	ckptDir := fs.String("checkpoint-dir", "", "snapshot this party's training state here after each tree")
	resume := fs.Bool("resume", false, "resume from the newest checkpoint under -checkpoint-dir")
	oocFn := oocFlags(fs)
	cfgFn := trainFlags(fs)
	fs.Parse(args)
	if *data == "" {
		log.Fatal("party: -data is required")
	}
	if *resume && *ckptDir == "" {
		log.Fatal("party: -resume requires -checkpoint-dir")
	}
	cfg := cfgFn()
	oc := oocFn()

	// With -ooc this party trains against a disk-backed store built from
	// its shard file; the raw rows never materialize.
	var view gbdt.BinView
	var viewLabels []float64
	var d *dataset.Dataset
	if oc.dir != "" {
		if cfg.Objective != nil {
			log.Fatalf("party: -objective %s is not supported with -ooc (view sessions are single-output)", cfg.Objective.Name())
		}
		src, err := ooc.NewLibSVMSource(*data, 0)
		if err != nil {
			log.Fatal(err)
		}
		st := oc.openStore(src, cfg.MaxBins)
		view = st
		if *role == "b" {
			var err error
			if viewLabels, err = st.Labels(); err != nil {
				log.Fatal(err)
			}
		}
	} else if *role == "b" {
		// Party B holds the labels; under a ranking objective its shard
		// carries qid:N group markers that must reach the objective.
		d = loadLabeledData(*data, cfg)
	} else {
		d = loadData(*data)
	}

	rcfg := core.DefaultResilientConfig()
	rcfg.Heartbeat = *heartbeat
	rcfg.PeerTimeout = *peerTimeout
	// Both ends of a link must speak the same framing: enable -resilient
	// on every party or on none.
	wrap := func(send, recv string) core.Transport {
		dial := func() (core.Transport, error) {
			return dialPartyErr(*gateway, *secret, send, recv)
		}
		if !*resilient {
			tr, err := dial()
			if err != nil {
				log.Fatal(err)
			}
			return tr
		}
		tr, err := core.NewResilientTransport(nil, dial, rcfg)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	runOpts := func(sub string) []core.RunOption {
		if *ckptDir == "" {
			return nil
		}
		st, err := checkpoint.OpenFS(filepath.Join(*ckptDir, sub), oc.fsys)
		if err != nil {
			log.Fatal(err)
		}
		opts := []core.RunOption{core.RunWithCheckpoints(st)}
		if *resume {
			opts = append(opts, core.RunWithResume())
		}
		return opts
	}

	switch *role {
	case "a":
		tr := wrap(fmt.Sprintf("a%d2b", *index), fmt.Sprintf("b2a%d", *index))
		var pm *core.PartyModel
		var err error
		if view != nil {
			pm, err = core.RunPassivePartyView(*index, view, cfg, tr,
				runOpts(fmt.Sprintf("passive%d", *index))...)
		} else {
			// Passive shards must not carry labels.
			d.Labels = nil
			pm, err = core.RunPassiveParty(*index, d, cfg, tr,
				runOpts(fmt.Sprintf("passive%d", *index))...)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("passive party %d finished; %d trees contain local splits\n",
			*index, len(pm.Trees))
		saveFragment(*out, pm)
	case "b":
		trs := make([]core.Transport, *peers)
		for i := 0; i < *peers; i++ {
			trs[i] = wrap(fmt.Sprintf("b2a%d", i), fmt.Sprintf("a%d2b", i))
		}
		start := time.Now()
		var pm *core.PartyModel
		var st *core.Stats
		var err error
		if view != nil {
			pm, st, err = core.RunActivePartyView(view, viewLabels, cfg, trs, runOpts("active")...)
		} else {
			pm, st, err = core.RunActiveParty(d, cfg, trs, runOpts("active")...)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("party B finished %d trees in %v\n", cfg.Trees, time.Since(start).Round(time.Millisecond))
		fmt.Printf("  encrypt %v, decrypt %v, idle %v; splits passive %d / B %d; dirty %d\n",
			st.EncryptTime().Round(time.Millisecond), st.DecryptTime().Round(time.Millisecond),
			st.BIdleTime().Round(time.Millisecond), st.SplitsByA(), st.SplitsByB(), st.DirtyNodes())
		saveFragment(*out, pm)
	default:
		log.Fatal("party: -role must be a or b")
	}
}

// cmdPredict scores aligned instances through the fragment-only
// federated prediction protocol: passive parties serve routing bitmaps
// for the splits they own, Party B routes and writes margins.
func cmdPredict(args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	role := fs.String("role", "", "a (serves placements) or b (routes and writes margins)")
	index := fs.Int("index", 0, "passive party index (role a)")
	peers := fs.Int("peers", 1, "number of passive parties (role b)")
	gateway := fs.String("gateway", "127.0.0.1:7001", "gateway address")
	secret := fs.String("secret", "", "shared token secret")
	data := fs.String("data", "", "this party's LibSVM shard of the instances to score")
	model := fs.String("model", "", "this party's model fragment (from party -out)")
	eta := fs.Float64("eta", 0.1, "learning rate the model was trained with")
	out := fs.String("out", "predictions.txt", "margin output path (role b)")
	fs.Parse(args)
	if *data == "" || *model == "" {
		log.Fatal("predict: -data and -model are required")
	}
	d := loadData(*data)
	fm := loadFragmentFile(*model)

	switch *role {
	case "a":
		d.Labels = nil
		tr := dialParty(*gateway, *secret,
			fmt.Sprintf("pa%d2b", *index), fmt.Sprintf("pb2a%d", *index))
		if err := core.ServePredict(fm, d, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Println("placements served")
	case "b":
		trs := make([]core.Transport, *peers)
		for i := 0; i < *peers; i++ {
			trs[i] = dialParty(*gateway, *secret,
				fmt.Sprintf("pb2a%d", i), fmt.Sprintf("pa%d2b", i))
		}
		margins, err := core.PredictRemote(fm, *eta, d, trs)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		for _, m := range margins {
			fmt.Fprintf(f, "%g\n", m)
		}
		fmt.Printf("wrote %d margins to %s\n", len(margins), *out)
	default:
		log.Fatal("predict: -role must be a or b")
	}
}

// buildServeRegistry publishes the comma-separated fragment files as
// versions 1..N (the last one current). All versions share the scalar
// scoring parameters, which only Party B's registry uses.
func buildServeRegistry(models string, eta, base float64) *serve.Registry {
	reg := serve.NewRegistry()
	version := uint64(0)
	for _, path := range strings.Split(models, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		version++
		pm := loadFragmentFile(path)
		if err := reg.Publish(serve.Model{Version: version, Fragment: pm, LearningRate: eta, BaseScore: base}); err != nil {
			log.Fatal(err)
		}
	}
	if version == 0 {
		log.Fatal("-models lists no fragment files")
	}
	return reg
}

// cmdSidecar runs a passive party's online scoring sidecar: it holds the
// party's feature shard and fragment registry and answers scoring rounds
// on one persistent session until Party B closes it.
func cmdSidecar(args []string) {
	fs := flag.NewFlagSet("sidecar", flag.ExitOnError)
	index := fs.Int("index", 0, "passive party index")
	gateway := fs.String("gateway", "127.0.0.1:7001", "gateway address")
	secret := fs.String("secret", "", "shared token secret")
	data := fs.String("data", "", "this party's LibSVM shard of the scoring universe")
	models := fs.String("models", "", "comma-separated fragment files, published as versions 1..N")
	redial := fs.Bool("redial", false, "re-dial and serve the next session when a session ends (survives Party B restarts)")
	fs.Parse(args)
	if *data == "" || *models == "" {
		log.Fatal("sidecar: -data and -models are required")
	}
	d := loadData(*data)
	d.Labels = nil
	reg := buildServeRegistry(*models, 0, 0)
	w := serve.NewPassiveWorker(*index, d, reg)
	send, recv := fmt.Sprintf("sa%d2b", *index), fmt.Sprintf("sb2a%d", *index)
	fmt.Printf("sidecar %d up: %d rows, model versions %v\n", *index, d.Rows(), reg.Versions())
	if *redial {
		err := w.RunLoop(func() (core.Transport, error) {
			return dialPartyErr(*gateway, *secret, send, recv)
		}, 0, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
	} else if err := w.Run(dialParty(*gateway, *secret, send, recv)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sidecar %d: session closed after %d rounds (%d round errors)\n",
		*index, w.Rounds(), w.RoundErrors())
}

// cmdServe runs Party B's online scoring server: persistent sessions to
// every passive sidecar, a micro-batcher coalescing HTTP requests into
// federated rounds, and graceful shutdown that drains in-flight batches.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	peers := fs.Int("peers", 1, "number of passive sidecars")
	gateway := fs.String("gateway", "127.0.0.1:7001", "gateway address")
	secret := fs.String("secret", "", "shared token secret")
	data := fs.String("data", "", "Party B's LibSVM shard of the scoring universe")
	models := fs.String("models", "", "comma-separated fragment files, published as versions 1..N")
	eta := fs.Float64("eta", 0.1, "learning rate the models were trained with")
	base := fs.Float64("base", 0, "base score added to every margin")
	maxBatch := fs.Int("max-batch", 64, "flush a micro-batch at this many requests")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "flush a partial micro-batch after this wait")
	maxQueue := fs.Int("max-queue", 1024, "shed requests beyond this many queued (HTTP 429)")
	maxInflight := fs.Int("max-inflight", 4, "shed federated rounds beyond this many in flight")
	deadline := fs.Duration("score-deadline", 2*time.Second, "default per-request scoring budget (X-Score-Deadline overrides)")
	policy := fs.String("degraded-policy", "failclosed", "when a party is unreachable: failclosed or partial")
	cooldown := fs.Duration("breaker-cooldown", 2*time.Second, "circuit-breaker open time before a half-open probe")
	session := fs.String("session", "vf2boost-serve", "session label sent to sidecars")
	codec := fs.String("codec", "", "wire codec: binary (default) or gob")
	fs.Parse(args)
	if *data == "" || *models == "" {
		log.Fatal("serve: -data and -models are required")
	}
	pol, err := serve.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	d := loadData(*data)
	reg := buildServeRegistry(*models, *eta, *base)
	trs := make([]core.Transport, *peers)
	dialers := make([]func() (core.Transport, error), *peers)
	for i := 0; i < *peers; i++ {
		send, recv := fmt.Sprintf("sb2a%d", i), fmt.Sprintf("sa%d2b", i)
		trs[i] = dialParty(*gateway, *secret, send, recv)
		dialers[i] = func() (core.Transport, error) {
			return dialPartyErr(*gateway, *secret, send, recv)
		}
	}
	srv, err := serve.NewServer(serve.ServerConfig{
		Data:        d,
		Registry:    reg,
		Workers:     trs,
		Dialers:     dialers,
		Batch:       serve.BatcherConfig{MaxBatch: *maxBatch, MaxWait: *maxWait, MaxQueue: *maxQueue},
		Deadline:    *deadline,
		Policy:      pol,
		MaxInflight: *maxInflight,
		Breaker:     serve.BreakerConfig{Cooldown: *cooldown},
		Session:     *session,
		Codec:       *codec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Open(); err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("serving on http://%s (model v%d, %d sidecars, batch<=%d, wait<=%v, deadline %v, policy %s)\n",
		lis.Addr(), reg.CurrentVersion(), *peers, *maxBatch, *maxWait, *deadline, pol)
	go func() {
		if err := hs.Serve(lis); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("serve: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("serve: http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("serve: session close: %v", err)
	}
	m := srv.Metrics()
	fmt.Printf("serve: %d requests in %d batches (%d errors); latency p50 %.2fms p95 %.2fms p99 %.2fms\n",
		m.Requests(), m.Batches(), m.Errors(),
		m.Latency().Quantile(0.50), m.Latency().Quantile(0.95), m.Latency().Quantile(0.99))
}

// cmdInspect prints a federated model (or fragment) in human-readable
// form: per-party split counts and gains, and optionally the tree
// structure as seen by the fragment's owner.
func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	model := fs.String("model", "", "model or fragment JSON (from sim/party -out)")
	trees := fs.Bool("trees", false, "print tree structures")
	fs.Parse(args)
	if *model == "" {
		log.Fatal("inspect: -model is required")
	}
	f, err := os.Open(*model)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parties: %d\n", m.NumParties())
	if len(m.SplitsByParty) > 0 {
		fmt.Printf("splits by party: %v\n", m.SplitsByParty)
	}
	gains := m.GainByParty()
	fmt.Printf("gain by party:  %v\n", gains)
	bTrees := m.Parties[m.NumParties()-1].Trees
	fmt.Printf("trees: %d\n", len(bTrees))
	if !*trees {
		return
	}
	for ti, tr := range bTrees {
		fmt.Printf("tree %d (%d nodes):\n", ti, len(tr.Nodes))
		printFedTree(tr, m, tr.Root, 1)
	}
}

func printFedTree(tr *core.FedTree, m *core.FederatedModel, id int32, depth int) {
	n, ok := tr.Nodes[id]
	if !ok {
		fmt.Printf("%*s<missing node %d>\n", 2*depth, "", id)
		return
	}
	indent := fmt.Sprintf("%*s", 2*depth, "")
	if n.Owner == core.OwnerLeaf {
		fmt.Printf("%sleaf w=%.5f\n", indent, n.Weight)
		return
	}
	// Feature/threshold are only present in the owner's fragment.
	if own, ok := m.Parties[n.Owner].Trees[treeIndexOf(m, tr)].Nodes[id]; ok && (own.Feature != 0 || own.Threshold != 0) {
		fmt.Printf("%sparty%d f%d <= %.5f (gain %.4f)\n", indent, n.Owner, own.Feature, own.Threshold, n.Gain)
	} else {
		fmt.Printf("%sparty%d <private split> (gain %.4f)\n", indent, n.Owner, n.Gain)
	}
	printFedTree(tr, m, n.Left, depth+1)
	printFedTree(tr, m, n.Right, depth+1)
}

func treeIndexOf(m *core.FederatedModel, tr *core.FedTree) int {
	for i, t := range m.Parties[m.NumParties()-1].Trees {
		if t == tr {
			return i
		}
	}
	return 0
}

func loadFragmentFile(path string) *core.PartyModel {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		log.Fatal(err)
	}
	return m.Parties[0]
}

func saveFragment(path string, pm *core.PartyModel) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m := core.FederatedModel{Parties: []*core.PartyModel{pm}}
	if err := m.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fragment written to %s\n", path)
}
