package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"vf2boost/internal/dataset"
)

// buildCLI compiles the vf2boost binary once into a temp dir.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vf2boost")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
}

// End-to-end byte parity: `local` with and without -ooc (serial and
// parallel store builds) must write identical model files.
func TestLocalOOCModelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the CLI")
	}
	bin := buildCLI(t)

	d, err := dataset.Generate(dataset.GenOptions{Rows: 400, Cols: 10, Density: 0.4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "train.libsvm")
	f, err := os.Create(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteLibSVM(f, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	common := []string{"local", "-data", data, "-trees", "5", "-depth", "4", "-workers", "2"}
	memOut := filepath.Join(dir, "mem.json")
	runCLI(t, bin, append(common, "-out", memOut)...)

	oocOut := filepath.Join(dir, "ooc.json")
	runCLI(t, bin, append(common, "-out", oocOut,
		"-ooc", filepath.Join(dir, "store"), "-chunk-rows", "64", "-mem-budget", "16KiB")...)

	parOut := filepath.Join(dir, "par.json")
	runCLI(t, bin, append(common, "-out", parOut,
		"-ooc", filepath.Join(dir, "store-par"), "-chunk-rows", "64", "-mem-budget", "16KiB",
		"-build-workers", "4")...)

	want, err := os.ReadFile(memOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{oocOut, parOut} {
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs from in-memory model %s", path, memOut)
		}
	}
}
