// Command experiments regenerates the tables and figures of the VF²Boost
// paper's evaluation (Section 6) at laptop scale and prints them in the
// paper's layout. See EXPERIMENTS.md for the scaling substitutions and
// the paper-vs-measured comparison.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig7,table1,table2
//	experiments -run fig10 -preset a9a
//	experiments -run table4 -scale 2000 -keybits 256
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"vf2boost/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		run          = flag.String("run", "all", "comma-separated experiments: fig7,table1,table2,fig10,table4,table5,table6 or all")
		preset       = flag.String("preset", "census", "preset for fig10 (census or a9a)")
		scale        = flag.Float64("scale", 0, "override dataset scale divisor (0 = per-experiment default)")
		keyBits      = flag.Int("keybits", 512, "Paillier modulus size S")
		trees        = flag.Int("trees", 0, "override tree count (0 = per-experiment default)")
		oocRows      = flag.Int("ooc-rows", 0, "override oocscale row count (0 = default)")
		buildWorkers = flag.Int("build-workers", 0, "override oocscale store-build workers (0 = default)")
		histWorkers  = flag.Int("hist-workers", 0, "override oocscale histogram workers (0 = default)")
		jsonOut      = flag.String("json", "", "write oocscale/objscale results to this JSON file")
		objRows      = flag.Int("obj-rows", 0, "override objscale row count (0 = default)")
		backend      = flag.String("backend", "", "override objscale HE backend (default paillier-batched)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0

	do := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("  [%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	do("fig7", func() error {
		rows, err := experiments.Fig7(*keyBits, 2000)
		if err != nil {
			return err
		}
		experiments.PrintFig7(os.Stdout, *keyBits, rows)
		return nil
	})

	do("table1", func() error {
		tc := experiments.DefaultTable1()
		tc.KeyBits = *keyBits
		if *scale > 0 {
			// The paper sweeps N over {2.5M, 5M, 10M}.
			tc.Ns = []int{int(2.5e6 / *scale), int(5e6 / *scale), int(10e6 / *scale)}
		}
		rows, err := experiments.Table1(tc)
		if err != nil {
			return err
		}
		experiments.PrintTable1(os.Stdout, tc, rows)
		return nil
	})

	do("table2", func() error {
		tc := experiments.DefaultTable2()
		tc.KeyBits = *keyBits
		rows, err := experiments.Table2(tc)
		if err != nil {
			return err
		}
		experiments.PrintTable2(os.Stdout, tc, rows)
		return nil
	})

	do("fig10", func() error {
		fc := experiments.DefaultFig10(*preset)
		fc.KeyBits = *keyBits
		if *scale > 0 {
			fc.Scale = *scale
		}
		if *trees > 0 {
			fc.Trees = *trees
		}
		series, err := experiments.Fig10(fc)
		if err != nil {
			return err
		}
		experiments.PrintFig10(os.Stdout, fc, series)
		return nil
	})

	do("table4", func() error {
		tc := experiments.DefaultTable4()
		tc.KeyBits = *keyBits
		if *scale > 0 {
			tc.Scale = *scale
		}
		if *trees > 0 {
			tc.Trees = *trees
		}
		rows, err := experiments.Table4(tc)
		if err != nil {
			return err
		}
		experiments.PrintTable4(os.Stdout, tc, rows)
		return nil
	})

	do("table5", func() error {
		tc := experiments.DefaultTable5()
		tc.KeyBits = *keyBits
		if *scale > 0 {
			tc.Scale = *scale
		}
		if *trees > 0 {
			tc.Trees = *trees
		}
		rows, err := experiments.Table5(tc)
		if err != nil {
			return err
		}
		experiments.PrintTable5(os.Stdout, tc, rows)
		return nil
	})

	do("table6", func() error {
		tc := experiments.DefaultTable6()
		tc.KeyBits = *keyBits
		if *scale > 0 {
			tc.Scale = *scale
		}
		if *trees > 0 {
			tc.Trees = *trees
		}
		rows, refs, err := experiments.Table6(tc)
		if err != nil {
			return err
		}
		experiments.PrintTable6(os.Stdout, tc, rows, refs)
		return nil
	})

	do("gantt", func() error {
		gc := experiments.DefaultGantt()
		gc.KeyBits = *keyBits
		results, err := experiments.Gantt(gc)
		if err != nil {
			return err
		}
		experiments.PrintGantt(os.Stdout, gc, results)
		return nil
	})

	do("ablation", func() error {
		ac := experiments.DefaultAblation()
		ac.KeyBits = *keyBits
		rows, err := experiments.Ablation(ac)
		if err != nil {
			return err
		}
		experiments.PrintAblation(os.Stdout, ac, rows)
		return nil
	})

	// oocscale is opt-in (not part of "all"): it streams millions of rows
	// to disk, which dominates the default suite's runtime.
	if want["oocscale"] {
		do("oocscale", func() error {
			tc := experiments.DefaultOOC()
			if *oocRows > 0 {
				tc.Rows = *oocRows
			}
			if *trees > 0 {
				tc.Trees = *trees
			}
			if *buildWorkers > 0 {
				tc.BuildWorkers = *buildWorkers
			}
			if *histWorkers > 0 {
				tc.HistWorkers = *histWorkers
			}
			build, rows, err := experiments.OOCScale(tc)
			if err != nil {
				return err
			}
			experiments.PrintOOC(os.Stdout, tc, build, rows)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					return err
				}
				defer f.Close()
				date := time.Now().UTC().Format("2006-01-02")
				if err := experiments.WriteOOCJSON(f, date, tc, build, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *jsonOut)
			}
			return nil
		})
	}

	// objscale is opt-in (not part of "all"): the class-count sweep over
	// real batched Paillier takes minutes at the default key size.
	if want["objscale"] {
		do("objscale", func() error {
			tc := experiments.DefaultObjScale()
			if *objRows > 0 {
				tc.Rows = *objRows
			}
			if *trees > 0 {
				tc.Trees = *trees
			}
			if *backend != "" {
				tc.Backend = *backend
			}
			if *keyBits != 512 { // 512 is this command's generic default
				tc.KeyBits = *keyBits
			}
			rows, rank, err := experiments.ObjScale(tc)
			if err != nil {
				return err
			}
			experiments.PrintObjScale(os.Stdout, tc, rows, rank)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					return err
				}
				defer f.Close()
				date := time.Now().UTC().Format("2006-01-02")
				if err := experiments.WriteObjScaleJSON(f, date, tc, rows, rank); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *jsonOut)
			}
			return nil
		})
	}

	if ran == 0 {
		log.Fatalf("unknown experiment selection %q; valid: fig7,table1,table2,fig10,table4,table5,table6,gantt,ablation,oocscale,objscale,all", *run)
	}
}
