// Command datagen generates synthetic datasets in LibSVM format, either
// from the paper's Table 3 presets (scaled) or from explicit shape
// parameters, optionally pre-split into per-party files for federated
// training.
//
// Usage:
//
//	datagen -preset rcv1 -scale 1000 -out rcv1.libsvm
//	datagen -rows 10000 -cols 200 -density 0.1 -out data.libsvm -split 120,80
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"vf2boost/internal/dataset"
)

func main() {
	log.SetFlags(0)
	var (
		preset  = flag.String("preset", "", "Table 3 preset name (census,a9a,susy,epsilon,rcv1,synthesis,industry)")
		scale   = flag.Float64("scale", 1000, "preset scale divisor (1 = paper-size)")
		rows    = flag.Int("rows", 1000, "instances (custom mode)")
		cols    = flag.Int("cols", 50, "features (custom mode)")
		density = flag.Float64("density", 0.2, "stored-entry fraction (custom mode)")
		dense   = flag.Bool("dense", false, "dense Gaussian features (custom mode)")
		noise   = flag.Float64("noise", 0, "label flip probability (custom mode)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "data.libsvm", "output path (or base path with -split)")
		split   = flag.String("split", "", "comma-separated per-party feature counts; last party keeps labels")
	)
	flag.Parse()

	var d *dataset.Dataset
	var counts []int
	var err error
	if *preset != "" {
		p, ok := dataset.PresetByName(*preset)
		if !ok {
			log.Fatalf("unknown preset %q", *preset)
		}
		var opts dataset.GenOptions
		opts, counts = p.Options(*scale, *seed)
		d, err = dataset.Generate(opts)
	} else {
		d, err = dataset.Generate(dataset.GenOptions{
			Rows: *rows, Cols: *cols, Density: *density,
			Dense: *dense, NoiseProb: *noise, Seed: *seed,
		})
	}
	if err != nil {
		log.Fatal(err)
	}

	if *split != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*split, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || c <= 0 {
				log.Fatalf("bad split %q", *split)
			}
			counts = append(counts, c)
		}
	}

	if len(counts) == 0 || *split == "" && *preset == "" {
		if err := dataset.SaveLibSVMFile(*out, d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d x %d, density %.4f\n", *out, d.Rows(), d.Cols(), d.Density())
		return
	}

	parts, err := d.VerticalSplit(counts, len(counts)-1)
	if err != nil {
		log.Fatal(err)
	}
	base := strings.TrimSuffix(*out, ".libsvm")
	for i, p := range parts {
		role := fmt.Sprintf("partyA%d", i)
		if i == len(parts)-1 {
			role = "partyB"
		}
		path := fmt.Sprintf("%s.%s.libsvm", base, role)
		if err := dataset.SaveLibSVMFile(path, p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d x %d (labels: %v)\n", path, p.Rows(), p.Cols(), p.Labels != nil)
	}
}
