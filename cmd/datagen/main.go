// Command datagen generates synthetic datasets in LibSVM format, either
// from the paper's Table 3 presets (scaled) or from explicit shape
// parameters, optionally pre-split into per-party files for federated
// training.
//
// Usage:
//
//	datagen -preset rcv1 -scale 1000 -out rcv1.libsvm
//	datagen -rows 10000 -cols 200 -density 0.1 -out data.libsvm -split 120,80
//	datagen -stream -rows 100000000 -cols 100 -out big.libsvm
//
// With -stream, rows are generated straight to the output writer in O(1)
// memory per row (see dataset.StreamGenerator), so dataset size is
// bounded by disk, not RAM. -stream composes with -split: each party's
// file gets its column slice (renumbered from 1) and only the last
// party's file carries labels, without ever materializing the join.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"vf2boost/internal/dataset"
)

func main() {
	log.SetFlags(0)
	var (
		preset  = flag.String("preset", "", "Table 3 preset name (census,a9a,susy,epsilon,rcv1,synthesis,industry)")
		scale   = flag.Float64("scale", 1000, "preset scale divisor (1 = paper-size)")
		rows    = flag.Int("rows", 1000, "instances (custom mode)")
		cols    = flag.Int("cols", 50, "features (custom mode)")
		density = flag.Float64("density", 0.2, "stored-entry fraction (custom mode)")
		dense   = flag.Bool("dense", false, "dense Gaussian features (custom mode)")
		noise   = flag.Float64("noise", 0, "label flip probability (custom mode)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "data.libsvm", "output path (or base path with -split)")
		split   = flag.String("split", "", "comma-separated per-party feature counts; last party keeps labels")
		stream  = flag.Bool("stream", false, "generate rows straight to the writer without materializing the dataset")
		classes = flag.Int("classes", 0, "generate k-class labels instead of binary (dense features; for -objective multiclass:k)")
		rankQ   = flag.Int("rank-groups", 0, "generate a ranking dataset with this many query groups (qid:N tokens; for -objective ranking)")
		rankQSz = flag.Int("group-size", 8, "documents per query group (with -rank-groups)")
	)
	flag.Parse()

	if *classes >= 2 || *rankQ > 0 {
		if *stream || *preset != "" {
			log.Fatal("-classes/-rank-groups are custom-mode only (no -stream, no -preset)")
		}
		if err := genObjective(*classes, *rankQ, *rankQSz, *rows, *cols, *noise, *seed, *out, *split); err != nil {
			log.Fatal(err)
		}
		return
	}

	var opts dataset.GenOptions
	var counts []int
	if *preset != "" {
		p, ok := dataset.PresetByName(*preset)
		if !ok {
			log.Fatalf("unknown preset %q", *preset)
		}
		opts, counts = p.Options(*scale, *seed)
	} else {
		opts = dataset.GenOptions{
			Rows: *rows, Cols: *cols, Density: *density,
			Dense: *dense, NoiseProb: *noise, Seed: *seed,
		}
	}
	if *split != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*split, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || c <= 0 {
				log.Fatalf("bad split %q", *split)
			}
			counts = append(counts, c)
		}
	}
	doSplit := *split != "" || (*preset != "" && len(counts) > 0)

	if *stream {
		if doSplit {
			if err := streamSplit(opts, counts, *out); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := streamSingle(opts, *out); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	d, err := dataset.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}

	if !doSplit {
		if err := dataset.SaveLibSVMFile(*out, d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d x %d, density %.4f\n", *out, d.Rows(), d.Cols(), d.Density())
		return
	}

	parts, err := d.VerticalSplit(counts, len(counts)-1)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range parts {
		path := partyPath(*out, i, len(parts))
		if err := dataset.SaveLibSVMFile(path, p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d x %d (labels: %v)\n", path, p.Rows(), p.Cols(), p.Labels != nil)
	}
}

// genObjective writes a multiclass or ranking dataset, optionally split
// vertically. Ranking files carry qid:N group tokens; with -split only
// the label-holding party's file gets them (passive shards are feature
// slices with neither labels nor groups).
func genObjective(classes, rankQ, groupSize, rows, cols int, noise float64, seed int64, out, split string) error {
	var d *dataset.Dataset
	var groups []int
	var err error
	if classes >= 2 {
		d, err = dataset.GenerateMulticlass(dataset.MultiGenOptions{
			Rows: rows, Cols: cols, Classes: classes, NoiseProb: noise, Seed: seed,
		})
	} else {
		d, groups, err = dataset.GenerateRanking(dataset.RankGenOptions{
			Groups: rankQ, GroupSize: groupSize, Cols: cols, Noise: noise, Seed: seed,
		})
	}
	if err != nil {
		return err
	}
	save := func(path string, p *dataset.Dataset) error {
		if groups != nil && p.Labels != nil {
			if err := dataset.SaveLibSVMRankingFile(path, p, groups); err != nil {
				return err
			}
		} else if err := dataset.SaveLibSVMFile(path, p); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d x %d (labels: %v)\n", path, p.Rows(), p.Cols(), p.Labels != nil)
		return nil
	}
	if split == "" {
		return save(out, d)
	}
	var counts []int
	for _, f := range strings.Split(split, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c <= 0 {
			return fmt.Errorf("bad split %q", split)
		}
		counts = append(counts, c)
	}
	parts, err := d.VerticalSplit(counts, len(counts)-1)
	if err != nil {
		return err
	}
	for i, p := range parts {
		if err := save(partyPath(out, i, len(parts)), p); err != nil {
			return err
		}
	}
	return nil
}

// partyPath names party i's output file: base.partyA<i>.libsvm for
// passive parties, base.partyB.libsvm for the label holder.
func partyPath(out string, i, parties int) string {
	base := strings.TrimSuffix(out, ".libsvm")
	if i == parties-1 {
		return base + ".partyB.libsvm"
	}
	return fmt.Sprintf("%s.partyA%d.libsvm", base, i)
}

// streamSingle generates rows straight into one LibSVM file.
func streamSingle(o dataset.GenOptions, out string) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := dataset.NewLibSVMWriter(f)
	err = dataset.StreamGen(o, func(row int, indices []int32, values []float64, label float64) error {
		return w.WriteRow(indices, values, label)
	})
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d x %d (streamed)\n", out, o.Rows, o.Cols)
	return nil
}

// streamSplit generates rows once and demuxes each row's entries across
// per-party files by column range; only the last party's file carries
// labels. Memory stays O(1) per row regardless of row count.
func streamSplit(o dataset.GenOptions, counts []int, out string) error {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != o.Cols {
		return fmt.Errorf("split %v covers %d features, dataset has %d", counts, total, o.Cols)
	}

	files := make([]*os.File, len(counts))
	writers := make([]*dataset.LibSVMWriter, len(counts))
	paths := make([]string, len(counts))
	for p := range counts {
		paths[p] = partyPath(out, p, len(counts))
		f, err := os.Create(paths[p])
		if err != nil {
			return err
		}
		files[p] = f
		writers[p] = dataset.NewLibSVMWriter(f)
	}

	// Per-party row buffers, reused across rows.
	idxBuf := make([][]int32, len(counts))
	valBuf := make([][]float64, len(counts))
	starts := make([]int32, len(counts)+1)
	for p, c := range counts {
		starts[p+1] = starts[p] + int32(c)
	}

	err := dataset.StreamGen(o, func(row int, indices []int32, values []float64, label float64) error {
		for p := range counts {
			idxBuf[p], valBuf[p] = idxBuf[p][:0], valBuf[p][:0]
		}
		p := 0
		for k, j := range indices { // indices sorted: walk party boundaries forward
			for j >= starts[p+1] {
				p++
			}
			idxBuf[p] = append(idxBuf[p], j-starts[p])
			valBuf[p] = append(valBuf[p], values[k])
		}
		for p := range counts {
			l := 0.0
			if p == len(counts)-1 {
				l = label
			}
			if err := writers[p].WriteRow(idxBuf[p], valBuf[p], l); err != nil {
				return err
			}
		}
		return nil
	})
	for p := range counts {
		if ferr := writers[p].Flush(); err == nil {
			err = ferr
		}
		if cerr := files[p].Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	for p, c := range counts {
		fmt.Printf("wrote %s: %d x %d (labels: %v, streamed)\n", paths[p], o.Rows, c, p == len(counts)-1)
	}
	return nil
}
