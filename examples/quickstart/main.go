// Command quickstart demonstrates the minimal VF²Boost workflow: generate
// a dataset, split its columns across two parties, train federated with
// real Paillier cryptography, and compare against non-federated training
// on the co-located table — the losslessness property of the algorithm.
package main

import (
	"fmt"
	"log"
	"time"

	"vf2boost"
)

func main() {
	log.SetFlags(0)

	// A co-located table only exists here to *simulate* two enterprises:
	// after VerticalSplit, party A's shard has 10 feature columns and no
	// labels, party B's shard has the other 10 columns plus the labels.
	joined, err := vf2boost.Generate(vf2boost.SynthOptions{
		Rows: 2000, Cols: 20, Density: 1, Dense: true, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := joined.VerticalSplit([]int{10, 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("party A: %d x %d (labels: %v)\n", parts[0].Rows(), parts[0].Cols(), parts[0].Labels() != nil)
	fmt.Printf("party B: %d x %d (labels: %v)\n", parts[1].Rows(), parts[1].Cols(), parts[1].Labels() != nil)

	cfg := vf2boost.DefaultConfig() // all four optimizations on
	cfg.Trees = 5
	cfg.MaxDepth = 4
	cfg.KeyBits = 512 // laptop-scale keys; the paper uses 2048

	start := time.Now()
	model, stats, err := vf2boost.TrainFederated(parts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfederated training: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  encrypt %v, decrypt %v, build-hist %v\n",
		stats.EncryptTime.Round(time.Millisecond),
		stats.DecryptTime.Round(time.Millisecond),
		stats.BuildHistTime.Round(time.Millisecond))
	fmt.Printf("  splits: party A %d, party B %d; dirty nodes rolled back: %d\n",
		stats.SplitsByA, stats.SplitsByB, stats.DirtyNodes)
	gains := model.GainByParty()
	fmt.Printf("  gain contribution: party A %.1f, party B %.1f\n", gains[0], gains[1])
	fmt.Printf("  cross-party traffic: %.1f MiB\n", float64(stats.BytesSent)/(1<<20))

	margins, err := model.PredictAll(parts)
	if err != nil {
		log.Fatal(err)
	}
	fedAUC, err := vf2boost.AUC(margins, joined.Labels())
	if err != nil {
		log.Fatal(err)
	}

	// Losslessness check: the same trees trained on the co-located table.
	local, err := vf2boost.TrainLocal(joined, cfg)
	if err != nil {
		log.Fatal(err)
	}
	localAUC, err := vf2boost.AUC(local.PredictAll(joined), joined.Labels())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAUC federated:  %.4f\n", fedAUC)
	fmt.Printf("AUC co-located: %.4f (difference %.2g)\n", localAUC, localAUC-fedAUC)
}
