// Command vertical-lr demonstrates the generalization the paper sketches
// in its Section 5 discussions: the re-ordered accumulation technique
// also accelerates the encrypted-gradient reductions of vertical
// federated logistic regression. Two parties jointly fit an LR model with
// per-party Paillier key pairs and masked gradient exchange, and the
// run compares the cipher-scaling counts with and without the re-ordered
// reduction.
package main

import (
	"fmt"
	"log"
	"time"

	"vf2boost/internal/dataset"
	"vf2boost/internal/fedlr"
	"vf2boost/internal/metrics"
)

func main() {
	log.SetFlags(0)

	joined, err := dataset.Generate(dataset.GenOptions{
		Rows: 2000, Cols: 16, Density: 1, Dense: true, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := joined.VerticalSplit([]int{8, 8}, 1)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, reordered, packed bool) {
		cfg := fedlr.DefaultConfig()
		cfg.KeyBits = 512
		cfg.Epochs = 1
		cfg.BatchSize = 200
		cfg.Reordered = reordered
		cfg.Packed = packed
		start := time.Now()
		model, stats, err := fedlr.Train(parts, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		margins := model.PredictAll(parts[0], parts[1])
		auc, err := metrics.AUC(margins, joined.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %8v  AUC %.4f  scalings %6d  decryptions %5d\n",
			label, elapsed.Round(time.Millisecond), auc, stats.Scalings, stats.Decryptions)
	}

	fmt.Println("vertical federated LR (Paillier 512, 1 epoch):")
	run("naive reduction", false, false)
	run("re-ordered reduction", true, false)
	run("re-ordered + packed", true, true)
}
