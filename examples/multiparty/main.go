// Command multiparty reproduces the spirit of Table 6: a task party
// federates with an increasing number of data-provider parties, and the
// model improves as more feature sources join while the training time
// grows only modestly. It also demonstrates the WAN shaper, running the
// cross-party channels at a constrained bandwidth like the paper's
// 300 Mbps public link.
package main

import (
	"fmt"
	"log"
	"time"

	"vf2boost"
)

func main() {
	log.SetFlags(0)

	joined, err := vf2boost.Generate(vf2boost.SynthOptions{
		Rows: 3000, Cols: 32, Density: 1, Dense: true, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := vf2boost.MockConfig() // fast demo; switch Scheme to "paillier" for real crypto
	cfg.Trees = 8
	cfg.MaxDepth = 4
	cfg.Optimistic = true
	cfg.Blaster = true
	cfg.WANMbps = 300 // the paper's public-network bandwidth

	// Three 8-feature data providers plus the task party's own 8 features
	// and labels. Adding a provider adds *new* feature columns, so the
	// model improves as the federation grows (Table 6's effect).
	allParts, err := joined.VerticalSplit([]int{8, 8, 8, 8})
	if err != nil {
		log.Fatal(err)
	}
	taskParty := allParts[3]

	fmt.Println("parties  total features  AUC      time")
	for numProviders := 1; numProviders <= 3; numProviders++ {
		parts := append(append([]*vf2boost.Dataset{}, allParts[:numProviders]...), taskParty)
		start := time.Now()
		model, _, err := vf2boost.TrainFederated(parts, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		margins, err := model.PredictAll(parts)
		if err != nil {
			log.Fatal(err)
		}
		auc, err := vf2boost.AUC(margins, joined.Labels())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %14d  %.4f  %v\n",
			numProviders+1, 8*(numProviders+1), auc, elapsed.Round(time.Millisecond))
	}
}
