// Command credit-scoring plays out the paper's motivating scenario
// (Section 1): a bank ("Party B") holds loan outcomes and a few financial
// features for its customers; a large internet enterprise ("Party A")
// holds a wide set of behavioural features for an overlapping user base.
// The two first align their customer sets with private set intersection,
// then jointly train a scoring model without the bank revealing outcomes
// or the enterprise revealing behaviour.
package main

import (
	"fmt"
	"log"

	"vf2boost"
)

func main() {
	log.SetFlags(0)

	// Simulate the two customer bases: the bank knows customers 0..5999,
	// the enterprise knows customers 3000..11999, so 3000 overlap.
	bankIDs := make([]string, 6000)
	for i := range bankIDs {
		bankIDs[i] = fmt.Sprintf("cust-%06d", i)
	}
	enterpriseIDs := make([]string, 9000)
	for i := range enterpriseIDs {
		enterpriseIDs[i] = fmt.Sprintf("cust-%06d", 3000+i)
	}

	// Step 1: private set intersection aligns the overlapping customers
	// without either side learning the other's non-overlapping IDs.
	posEnterprise, posBank, err := vf2boost.AlignInstances(enterpriseIDs, bankIDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PSI: %d customers in common (bank %d, enterprise %d)\n",
		len(posBank), len(bankIDs), len(enterpriseIDs))

	// Step 2: materialize each side's feature shard for the shared
	// customers, in the shared PSI order. Here both shards come from one
	// synthetic table, standing in for the two real databases: 40 wide
	// behavioural features for the enterprise, 8 financial ones + the
	// default label for the bank.
	world, err := vf2boost.Generate(vf2boost.SynthOptions{
		Rows: 12000, Cols: 48, Density: 0.25, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	shards, err := world.VerticalSplit([]int{40, 8})
	if err != nil {
		log.Fatal(err)
	}
	rowOf := func(id string) int { // id -> row in the world table
		var n int
		fmt.Sscanf(id, "cust-%06d", &n)
		return n
	}
	enterpriseRows := make([]int, len(posEnterprise))
	bankRows := make([]int, len(posBank))
	for k := range posEnterprise {
		enterpriseRows[k] = rowOf(enterpriseIDs[posEnterprise[k]])
		bankRows[k] = rowOf(bankIDs[posBank[k]])
	}
	enterprise := shards[0].SubRows(enterpriseRows)
	bank := shards[1].SubRows(bankRows)

	// Step 3: split the intersection into train/valid and train. The
	// split must use the same seed on both sides so rows stay aligned.
	entTrain, entValid := enterprise.TrainValidSplit(0.8, 99)
	bankTrain, bankValid := bank.TrainValidSplit(0.8, 99)

	cfg := vf2boost.DefaultConfig()
	cfg.Trees = 10
	cfg.MaxDepth = 5
	cfg.KeyBits = 512
	model, stats, err := vf2boost.TrainFederated(
		[]*vf2boost.Dataset{entTrain, bankTrain}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	validMargins, err := model.PredictAll([]*vf2boost.Dataset{entValid, bankValid})
	if err != nil {
		log.Fatal(err)
	}
	fedAUC, err := vf2boost.AUC(validMargins, bankValid.Labels())
	if err != nil {
		log.Fatal(err)
	}

	// What the bank could do alone, for comparison.
	soloModel, err := vf2boost.TrainLocal(bankTrain, cfg)
	if err != nil {
		log.Fatal(err)
	}
	soloAUC, err := vf2boost.AUC(soloModel.PredictAll(bankValid), bankValid.Labels())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nvalidation AUC, bank alone:     %.4f\n", soloAUC)
	fmt.Printf("validation AUC, federated:      %.4f (+%.4f)\n", fedAUC, fedAUC-soloAUC)
	fmt.Printf("splits won: enterprise %d, bank %d\n", stats.SplitsByA, stats.SplitsByB)
	fmt.Printf("cross-party traffic: %.1f MiB over %d trees\n",
		float64(stats.BytesSent)/(1<<20), cfg.Trees)
}
