package objective

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"vf2boost/internal/metrics"
)

func init() {
	Register("ranking", func(arg string) (Objective, error) {
		cutoff := 10
		if arg != "" {
			k, err := strconv.Atoi(arg)
			if err != nil || k < 1 {
				return nil, fmt.Errorf("ranking NDCG cutoff %q must be a positive integer", arg)
			}
			cutoff = k
		}
		return NewLambdaRank(cutoff), nil
	})
}

// NewLambdaRank builds a LambdaMART-style pairwise ranking objective
// optimizing NDCG@cutoff. It is a single-output objective whose
// gradients couple instances within query groups: for each intra-group
// pair with different relevance grades, the pairwise logistic gradient
// σ(s_lo − s_hi) is weighted by the |ΔNDCG| the swap would cause, so
// mis-ordered pairs near the top of the ranking dominate the update.
// SetGroups must be called with the query-group sizes (contiguous rows)
// before training.
func NewLambdaRank(cutoff int) Objective {
	return &lambdaRank{cutoff: cutoff}
}

type lambdaRank struct {
	cutoff   int
	groups   []int
	maxGroup int
}

func (r *lambdaRank) Name() string    { return "ranking:" + strconv.Itoa(r.cutoff) }
func (r *lambdaRank) NumOutputs() int { return 1 }

// GradBound: each document accumulates at most (group−1) pairwise terms,
// each bounded by ρ·|ΔNDCG| ≤ 1, so the fitted bound is maxGroup−1.
// Before SetGroups the bound falls back to a generous constant.
func (r *lambdaRank) GradBound() float64 {
	if r.maxGroup > 1 {
		return float64(r.maxGroup - 1)
	}
	return 64
}

// SetGroups installs the query-group sizes in row order (GroupAware).
func (r *lambdaRank) SetGroups(sizes []int) error {
	if len(sizes) == 0 {
		return errors.New("objective: ranking needs at least one query group")
	}
	maxG := 0
	for _, g := range sizes {
		if g <= 0 {
			return fmt.Errorf("objective: query group size %d must be positive", g)
		}
		if g > maxG {
			maxG = g
		}
	}
	r.groups = append([]int(nil), sizes...)
	r.maxGroup = maxG
	return nil
}

func (r *lambdaRank) InitMargin([]float64, int) float64 { return 0 }

func (r *lambdaRank) GradHess(labels []float64, margins, grads, hess [][]float64) error {
	if err := checkShape(1, len(labels), margins, grads, hess); err != nil {
		return err
	}
	if err := r.checkGroups(len(labels)); err != nil {
		return err
	}
	s, g, h := margins[0], grads[0], hess[0]
	for i := range g {
		g[i], h[i] = 0, 0
	}
	start := 0
	for _, size := range r.groups {
		r.groupLambdas(s[start:start+size], labels[start:start+size],
			g[start:start+size], h[start:start+size])
		start += size
	}
	// The pairwise hessian vanishes for documents with no mis-ordered
	// pairs; floor it so leaf weights stay finite.
	for i := range h {
		if h[i] < 1e-16 {
			h[i] = 1e-16
		}
	}
	return nil
}

// groupLambdas accumulates the λ-gradients of one query group. Positions
// come from the current ranking by score; |ΔNDCG| is normalized by the
// group's ideal DCG so every pairwise weight lies in [0, 1].
func (r *lambdaRank) groupLambdas(scores, labels, g, h []float64) {
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	pos := make([]int, n)
	for p, i := range order {
		pos[i] = p
	}
	// Ideal DCG over the full group; zero means no relevant document and
	// therefore no pairs with differing grades.
	rel := append([]float64(nil), labels...)
	sort.Sort(sort.Reverse(sort.Float64Slice(rel)))
	var idcg float64
	for p, y := range rel {
		idcg += (math.Exp2(y) - 1) / math.Log2(float64(p)+2)
	}
	if idcg == 0 {
		return
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if labels[i] == labels[j] {
				continue
			}
			hi, lo := i, j
			if labels[j] > labels[i] {
				hi, lo = j, i
			}
			rho := 1 / (1 + math.Exp(scores[hi]-scores[lo]))
			delta := math.Abs((math.Exp2(labels[hi])-math.Exp2(labels[lo]))*
				(1/math.Log2(float64(pos[hi])+2)-1/math.Log2(float64(pos[lo])+2))) / idcg
			lambda := rho * delta
			g[hi] -= lambda
			g[lo] += lambda
			w := rho * (1 - rho) * delta
			h[hi] += w
			h[lo] += w
		}
	}
}

func (r *lambdaRank) Transform(margins, out []float64) { out[0] = margins[0] }

func (r *lambdaRank) EvalName() string { return "ndcg@" + strconv.Itoa(r.cutoff) }

func (r *lambdaRank) Eval(labels []float64, margins [][]float64) (float64, error) {
	if len(margins) != 1 {
		return 0, fmt.Errorf("objective: ranking expects 1 output, got %d", len(margins))
	}
	if err := r.checkGroups(len(labels)); err != nil {
		return 0, err
	}
	return metrics.NDCGAt(r.cutoff, margins[0], labels, r.groups)
}

func (r *lambdaRank) Validate(labels []float64) error {
	if err := r.checkGroups(len(labels)); err != nil {
		return err
	}
	for i, y := range labels {
		if y < 0 {
			return fmt.Errorf("objective: relevance grade %v at row %d is negative", y, i)
		}
	}
	return nil
}

func (r *lambdaRank) checkGroups(rows int) error {
	if r.groups == nil {
		return errors.New("objective: ranking needs query groups (SetGroups not called)")
	}
	total := 0
	for _, g := range r.groups {
		total += g
	}
	if total != rows {
		return fmt.Errorf("objective: query groups cover %d rows of %d", total, rows)
	}
	return nil
}
