package objective

import (
	"math"
	"strings"
	"testing"

	"vf2boost/internal/gbdt"
)

func TestNewUnknownNameListsRegistry(t *testing.T) {
	_, err := New("nope")
	if err == nil {
		t.Fatal("unknown objective accepted")
	}
	msg := err.Error()
	for _, want := range []string{"nope", "binary", "multiclass", "ranking", "squared"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q should mention %q", msg, want)
		}
	}
}

func TestNewArgParsing(t *testing.T) {
	cases := []struct {
		spec    string
		name    string
		outputs int
		wantErr bool
	}{
		{spec: "binary", name: "binary", outputs: 1},
		{spec: "squared", name: "squared", outputs: 1},
		{spec: "multiclass:4", name: "multiclass:4", outputs: 4},
		{spec: "ranking", name: "ranking:10", outputs: 1},
		{spec: "ranking:5", name: "ranking:5", outputs: 1},
		{spec: "binary:x", wantErr: true},
		{spec: "multiclass", wantErr: true},
		{spec: "multiclass:1", wantErr: true},
		{spec: "multiclass:abc", wantErr: true},
		{spec: "ranking:0", wantErr: true},
	}
	for _, c := range cases {
		o, err := New(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("New(%q) accepted", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("New(%q): %v", c.spec, err)
			continue
		}
		if o.Name() != c.name || o.NumOutputs() != c.outputs {
			t.Errorf("New(%q) = %s/%d, want %s/%d", c.spec, o.Name(), o.NumOutputs(), c.name, c.outputs)
		}
	}
}

func TestRegisteredAndNames(t *testing.T) {
	if !Registered("multiclass") || Registered("nope") {
		t.Error("Registered() misreports the registry")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

// TestSoftmaxGradients checks the textbook identities: g_c = p_c - 1{y=c},
// per-instance gradients sum to zero across classes, and hessians are
// positive.
func TestSoftmaxGradients(t *testing.T) {
	obj, err := New("multiclass:3")
	if err != nil {
		t.Fatal(err)
	}
	labels := []float64{0, 1, 2, 1}
	n, k := len(labels), 3
	margins := [][]float64{
		{0.5, -1, 2, 0},
		{-0.5, 1, 0, 0.25},
		{0, 0, -2, -0.25},
	}
	grads := make([][]float64, k)
	hess := make([][]float64, k)
	for c := range grads {
		grads[c] = make([]float64, n)
		hess[c] = make([]float64, n)
	}
	if err := obj.GradHess(labels, margins, grads, hess); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		probs := make([]float64, k)
		obj.Transform([]float64{margins[0][i], margins[1][i], margins[2][i]}, probs)
		for c := 0; c < k; c++ {
			want := probs[c]
			if int(labels[i]) == c {
				want--
			}
			if math.Abs(grads[c][i]-want) > 1e-12 {
				t.Errorf("grad[%d][%d] = %g, want p-1{y=c} = %g", c, i, grads[c][i], want)
			}
			if hess[c][i] <= 0 {
				t.Errorf("hess[%d][%d] = %g, want > 0", c, i, hess[c][i])
			}
			sum += grads[c][i]
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("instance %d gradients sum to %g, want 0", i, sum)
		}
	}
	if b := obj.GradBound(); b != 1 {
		t.Errorf("softmax GradBound = %g, want 1", b)
	}
	if err := obj.Validate([]float64{0, 3}); err == nil {
		t.Error("label 3 accepted by multiclass:3")
	}
	if err := obj.Validate([]float64{0, 1.5}); err == nil {
		t.Error("fractional label accepted by multiclass:3")
	}
}

func TestLambdaRankGroups(t *testing.T) {
	obj, err := New("ranking:3")
	if err != nil {
		t.Fatal(err)
	}
	ga := obj.(GroupAware)
	if err := ga.SetGroups([]int{2, 0, 3}); err == nil {
		t.Error("zero-size group accepted")
	}
	if err := ga.SetGroups([]int{3, 2}); err != nil {
		t.Fatal(err)
	}
	// 5 rows in groups {3,2}; validation must reject a mismatched label
	// vector and GradHess a mismatched margin width.
	if err := obj.Validate(make([]float64, 4)); err == nil {
		t.Error("label vector shorter than the group cover accepted")
	}
	labels := []float64{0, 2, 1, 1, 0}
	if err := obj.Validate(labels); err != nil {
		t.Fatal(err)
	}
	margins := [][]float64{{1, 0, -1, 0.5, -0.5}}
	g := [][]float64{make([]float64, 5)}
	h := [][]float64{make([]float64, 5)}
	if err := obj.GradHess(labels, margins, g, h); err != nil {
		t.Fatal(err)
	}
	// Lambda gradients cancel within each query group.
	for _, grp := range [][2]int{{0, 3}, {3, 5}} {
		sum := 0.0
		for i := grp[0]; i < grp[1]; i++ {
			sum += g[0][i]
			if h[0][i] < 0 {
				t.Errorf("hess[%d] = %g, want >= 0", i, h[0][i])
			}
		}
		if math.Abs(sum) > 1e-9 {
			t.Errorf("group %v lambdas sum to %g, want 0", grp, sum)
		}
	}
	// The top-scored document of a group with a worse grade than a lower
	// ranked one must be pushed down (positive gradient = margin shrinks).
	if g[0][0] <= 0 {
		t.Errorf("mis-ranked top document gradient = %g, want > 0", g[0][0])
	}
	// Ungrouped ranking must refuse to train.
	fresh, _ := New("ranking:3")
	if err := fresh.Validate(labels); err == nil {
		t.Error("ranking objective without groups accepted a label vector")
	}
}

func TestFromLossRoundTrip(t *testing.T) {
	o := FromLoss(gbdt.SquaredLoss{})
	if o.Name() != "squared" || o.NumOutputs() != 1 {
		t.Fatalf("FromLoss(squared) = %s/%d", o.Name(), o.NumOutputs())
	}
	l, ok := o.(interface{ Loss() gbdt.Loss })
	if !ok {
		t.Fatal("loss shim does not expose the wrapped loss")
	}
	if _, isSq := l.Loss().(gbdt.SquaredLoss); !isSq {
		t.Fatalf("wrapped loss is %T", l.Loss())
	}
	// BoundFitter: the squared-loss bound must follow the observed label
	// range instead of the historical hard-coded 64.
	bf, ok := o.(BoundFitter)
	if !ok {
		t.Fatal("squared shim does not implement BoundFitter")
	}
	bf.FitBound([]float64{-300, 5, 10})
	if got := o.GradBound(); got < 300 || got > 4*300 {
		t.Errorf("fitted squared bound = %g, want within [300, 1200]", got)
	}
	if l2 := l.Loss().(gbdt.SquaredLoss); l2.Bound == 0 {
		t.Error("fitting did not propagate to the wrapped loss")
	}
}
