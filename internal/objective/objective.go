// Package objective is the registry-backed subsystem of multi-output
// training objectives. It lifts gbdt.Loss — a scalar, per-instance
// derivative pair — into a vector interface that owns the whole label
// vector and a margin matrix, which is what multiclass softmax (k
// coupled outputs per instance) and LambdaMART-style ranking (gradients
// coupled across a query group) need and a per-instance Loss cannot
// express.
//
// The package mirrors the internal/he backend registry: objectives are
// registered by name at init time, resolved from a "name" or "name:arg"
// spec, and the sorted name list feeds error messages and CLI help so an
// unknown spec fails fast with the available choices. The federated
// engine negotiates the objective name and output count at session setup
// exactly like it negotiates the HE backend, and a passive party rejects
// a spec its registry cannot resolve before accepting any ciphertext.
package objective

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Objective is a multi-output training objective. An implementation with
// NumOutputs() == k trains k trees per boosting round (one per output,
// round-robin) over a k×n margin matrix; k == 1 reduces to the classic
// single-tree round.
type Objective interface {
	// Name is the canonical spec the objective was built from
	// ("binary", "multiclass:3", "ranking:10").
	Name() string
	// NumOutputs is k, the number of trees per boosting round.
	NumOutputs() int
	// GradBound is an upper bound on |g| and |h| across all outputs; it
	// drives the histogram-packing shift and the lane-plan offset, so an
	// underestimate corrupts packed accumulators.
	GradBound() float64
	// InitMargin is the initial raw margin of output o (before any tree).
	InitMargin(labels []float64, output int) float64
	// GradHess fills the k×n gradient and hessian matrices for the
	// current k×n margin matrix. It is called once per boosting round:
	// all k trees of the round share this one evaluation.
	GradHess(labels []float64, margins, grads, hess [][]float64) error
	// Transform maps one instance's k raw margins to scores in place
	// (softmax for multiclass, sigmoid for binary, identity otherwise).
	// out must have length k; margins and out may alias.
	Transform(margins, out []float64)
	// EvalName names the metric Eval computes ("auc", "mlogloss",
	// "ndcg@10", "rmse").
	EvalName() string
	// Eval computes the objective's headline metric over a k×n margin
	// matrix.
	Eval(labels []float64, margins [][]float64) (float64, error)
	// Validate checks the label vector fits the objective (class range,
	// group coverage) before training starts.
	Validate(labels []float64) error
}

// GroupAware is implemented by objectives whose gradients couple
// instances within query groups (ranking). SetGroups installs the group
// sizes, in row order; rows of one group must be contiguous.
type GroupAware interface {
	SetGroups(sizes []int) error
}

// BoundFitter is implemented by objectives whose gradient bound depends
// on the observed labels (squared loss on unnormalized targets). The
// active party fits the bound from its label vector before the packing
// and lane plans are derived, so the fixed 64 fallback never silently
// overflows a shift.
type BoundFitter interface {
	FitBound(labels []float64)
}

// Factory builds an objective from the argument part of a "name:arg"
// spec (empty when the spec carried no argument).
type Factory func(arg string) (Objective, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named objective factory. Duplicate names panic —
// registration is an init-time programming act, not a runtime input.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("objective: duplicate registration: " + name)
	}
	registry[name] = f
}

// Registered reports whether a base name (no ":arg") is known.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names lists the registered objective names in sorted order, for error
// messages and CLI help.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New resolves a spec of the form "name" or "name:arg" ("multiclass:3",
// "ranking:10"). Unknown names fail with the registered list — the same
// fail-fast contract as the he backend registry.
func New(spec string) (Objective, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("objective: unknown objective %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	obj, err := f(arg)
	if err != nil {
		return nil, fmt.Errorf("objective: %s: %w", name, err)
	}
	return obj, nil
}
