package objective

import (
	"fmt"
	"math"
	"strconv"

	"vf2boost/internal/gbdt"
	"vf2boost/internal/metrics"
)

func init() {
	Register("binary", func(arg string) (Objective, error) {
		if arg != "" {
			return nil, fmt.Errorf("binary takes no argument, got %q", arg)
		}
		return FromLoss(gbdt.LogisticLoss{}), nil
	})
	Register("squared", func(arg string) (Objective, error) {
		if arg != "" {
			return nil, fmt.Errorf("squared takes no argument, got %q", arg)
		}
		return FromLoss(gbdt.SquaredLoss{}), nil
	})
	Register("multiclass", func(arg string) (Objective, error) {
		if arg == "" {
			return nil, fmt.Errorf("multiclass needs a class count, e.g. multiclass:3")
		}
		k, err := strconv.Atoi(arg)
		if err != nil || k < 2 {
			return nil, fmt.Errorf("multiclass class count %q must be an integer >= 2", arg)
		}
		return NewMulticlass(k), nil
	})
}

// FromLoss lifts a scalar gbdt.Loss into a single-output Objective — the
// compat shim that lets every existing binary/regression code path run
// unchanged behind the objective layer. The logistic loss surfaces as
// "binary" (sigmoid transform, AUC metric); any other loss keeps its own
// name with an identity transform and RMSE.
func FromLoss(l gbdt.Loss) Objective {
	name := l.Name()
	if name == "logistic" {
		name = "binary"
	}
	return &lossObjective{name: name, loss: l}
}

type lossObjective struct {
	name string
	loss gbdt.Loss
}

func (o *lossObjective) Name() string       { return o.name }
func (o *lossObjective) NumOutputs() int    { return 1 }
func (o *lossObjective) GradBound() float64 { return o.loss.GradBound() }

// Loss exposes the wrapped scalar loss so the engine can keep its
// loss-typed configuration (checkpoints fingerprint the loss type).
func (o *lossObjective) Loss() gbdt.Loss { return o.loss }

func (o *lossObjective) InitMargin([]float64, int) float64 { return 0 }

func (o *lossObjective) GradHess(labels []float64, margins, grads, hess [][]float64) error {
	if err := checkShape(1, len(labels), margins, grads, hess); err != nil {
		return err
	}
	m, g, h := margins[0], grads[0], hess[0]
	for i, y := range labels {
		g[i], h[i] = o.loss.GradHess(y, m[i])
	}
	return nil
}

func (o *lossObjective) Transform(margins, out []float64) {
	if o.name == "binary" {
		out[0] = metrics.Sigmoid(margins[0])
		return
	}
	out[0] = margins[0]
}

func (o *lossObjective) EvalName() string {
	if o.name == "binary" {
		return "auc"
	}
	return "rmse"
}

func (o *lossObjective) Eval(labels []float64, margins [][]float64) (float64, error) {
	if len(margins) != 1 {
		return 0, fmt.Errorf("objective: %s expects 1 output, got %d", o.name, len(margins))
	}
	if o.name == "binary" {
		return metrics.AUC(margins[0], labels)
	}
	return metrics.RMSE(margins[0], labels)
}

func (o *lossObjective) Validate(labels []float64) error {
	if o.name != "binary" {
		return nil
	}
	for i, y := range labels {
		if y != 0 && y != 1 {
			return fmt.Errorf("objective: binary label %v at row %d is not 0 or 1", y, i)
		}
	}
	return nil
}

// FitBound implements BoundFitter for the squared loss: the active party
// replaces the historical constant-64 bound with one derived from the
// observed label range before the packing shift is planned.
func (o *lossObjective) FitBound(labels []float64) {
	if sq, ok := o.loss.(gbdt.SquaredLoss); ok && sq.Bound == 0 {
		o.loss = gbdt.SquaredLoss{Bound: gbdt.FitSquaredBound(labels)}
	}
}

// NewMulticlass builds a k-class softmax objective: k trees per boosting
// round, gradients g_c = p_c − 1{y=c} and hessians h_c = 2·p_c·(1−p_c)
// over the softmax probabilities of the k raw margins.
func NewMulticlass(k int) Objective {
	return &multiclass{k: k}
}

type multiclass struct {
	k int
}

func (m *multiclass) Name() string       { return "multiclass:" + strconv.Itoa(m.k) }
func (m *multiclass) NumOutputs() int    { return m.k }
func (m *multiclass) GradBound() float64 { return 1 }

func (m *multiclass) InitMargin([]float64, int) float64 { return 0 }

func (m *multiclass) GradHess(labels []float64, margins, grads, hess [][]float64) error {
	if err := checkShape(m.k, len(labels), margins, grads, hess); err != nil {
		return err
	}
	row := make([]float64, m.k)
	for i, y := range labels {
		cls := int(y)
		for c := 0; c < m.k; c++ {
			row[c] = margins[c][i]
		}
		metrics.Softmax(row, row)
		for c := 0; c < m.k; c++ {
			p := row[c]
			ind := 0.0
			if c == cls {
				ind = 1
			}
			grads[c][i] = p - ind
			hess[c][i] = math.Max(2*p*(1-p), 1e-16)
		}
	}
	return nil
}

func (m *multiclass) Transform(margins, out []float64) {
	metrics.Softmax(margins, out)
}

func (m *multiclass) EvalName() string { return "mlogloss" }

func (m *multiclass) Eval(labels []float64, margins [][]float64) (float64, error) {
	return metrics.SoftmaxLogLoss(margins, labels)
}

func (m *multiclass) Validate(labels []float64) error {
	for i, y := range labels {
		cls := int(y)
		if float64(cls) != y || cls < 0 || cls >= m.k {
			return fmt.Errorf("objective: label %v at row %d is not a class in [0,%d)", y, i, m.k)
		}
	}
	return nil
}

func checkShape(k, n int, mats ...[][]float64) error {
	for _, mat := range mats {
		if len(mat) != k {
			return fmt.Errorf("objective: matrix has %d outputs, want %d", len(mat), k)
		}
		for c := range mat {
			if len(mat[c]) != n {
				return fmt.Errorf("objective: output %d has %d rows, want %d", c, len(mat[c]), n)
			}
		}
	}
	return nil
}
