package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"vf2boost/internal/fault"
)

// chanEnd is one direction-pair endpoint of an in-memory duplex pipe.
type chanEnd struct {
	out    chan<- []byte
	in     <-chan []byte
	closed chan struct{}
	once   sync.Once
}

var errEndClosed = errors.New("test: endpoint closed")

func (e *chanEnd) Send(p []byte) error {
	select {
	case e.out <- p:
		return nil
	case <-e.closed:
		return errEndClosed
	}
}

func (e *chanEnd) Receive() ([]byte, error) {
	select {
	case p := <-e.in:
		return p, nil
	case <-e.closed:
		return nil, errEndClosed
	}
}

func (e *chanEnd) Close() { e.once.Do(func() { close(e.closed) }) }

// newPipe returns the two endpoints of a duplex in-memory link.
func newPipe() (*chanEnd, *chanEnd) {
	a2b := make(chan []byte, 1024)
	b2a := make(chan []byte, 1024)
	a := &chanEnd{out: a2b, in: b2a, closed: make(chan struct{})}
	b := &chanEnd{out: b2a, in: a2b, closed: make(chan struct{})}
	return a, b
}

// fastResilient returns a config tuned for test speed.
func fastResilient(seed int64) ResilientConfig {
	return ResilientConfig{
		RetryInterval: 5 * time.Millisecond,
		RetryBackoff:  1.5,
		RetryMax:      50 * time.Millisecond,
		Heartbeat:     10 * time.Millisecond,
		PeerTimeout:   5 * time.Second,
		Seed:          seed,
	}
}

// TestResilientLossyLinkExactlyOnce: a link dropping, duplicating, and
// reordering frames in both directions must still deliver every frame
// exactly once, in order.
func TestResilientLossyLinkExactlyOnce(t *testing.T) {
	a, b := newPipe()
	chaos := fault.Config{Seed: 11, Drop: 0.2, Dup: 0.1, Reorder: 0.2}
	aChaos := chaos
	bChaos := chaos
	bChaos.Seed = 12
	ra, err := NewResilientTransport(fault.Wrap(a, aChaos), nil, fastResilient(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	rb, err := NewResilientTransport(fault.Wrap(b, bChaos), nil, fastResilient(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	const n = 150
	go func() {
		for i := 0; i < n; i++ {
			if err := ra.Send([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got, err := rb.Receive()
		if err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
		if want := fmt.Sprintf("frame-%03d", i); string(got) != want {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	st := ra.Stats()
	if st.Retransmits == 0 {
		t.Error("a lossy link recovered without a single retransmission")
	}
}

// TestResilientBidirectional: request/response traffic flows both ways
// through the same wrapped pair.
func TestResilientBidirectional(t *testing.T) {
	a, b := newPipe()
	ra, _ := NewResilientTransport(a, nil, fastResilient(3))
	defer ra.Close()
	rb, _ := NewResilientTransport(b, nil, fastResilient(4))
	defer rb.Close()
	for i := 0; i < 20; i++ {
		if err := ra.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		got, err := rb.Receive()
		if err != nil || got[0] != byte(i) {
			t.Fatalf("b got %v, %v", got, err)
		}
		if err := rb.Send([]byte{byte(i + 100)}); err != nil {
			t.Fatal(err)
		}
		got, err = ra.Receive()
		if err != nil || got[0] != byte(i+100) {
			t.Fatalf("a got %v, %v", got, err)
		}
	}
}

// TestResilientPeerDeath: a peer that stops responding trips the receive
// deadline with ErrPeerDead rather than blocking forever.
func TestResilientPeerDeath(t *testing.T) {
	a, b := newPipe()
	cfg := fastResilient(5)
	cfg.PeerTimeout = 50 * time.Millisecond
	ra, _ := NewResilientTransport(a, nil, cfg)
	defer ra.Close()
	// The peer side exists but never sends anything (not even heartbeats:
	// it is not wrapped).
	_ = b
	start := time.Now()
	_, err := ra.Receive()
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("Receive = %v, want ErrPeerDead", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("peer death took %v to detect", time.Since(start))
	}
	// The link stays failed for senders too.
	if err := ra.Send([]byte("x")); !errors.Is(err, ErrPeerDead) {
		t.Errorf("Send after peer death = %v, want ErrPeerDead", err)
	}
}

// TestResilientHeartbeatsKeepIdleLinkAlive: two wrapped idle peers
// exchange heartbeats and outlive many PeerTimeout windows.
func TestResilientHeartbeatsKeepIdleLinkAlive(t *testing.T) {
	a, b := newPipe()
	cfg := fastResilient(6)
	cfg.Heartbeat = 5 * time.Millisecond
	cfg.PeerTimeout = 40 * time.Millisecond
	ra, _ := NewResilientTransport(a, nil, cfg)
	defer ra.Close()
	rb, _ := NewResilientTransport(b, nil, cfg)
	defer rb.Close()
	time.Sleep(200 * time.Millisecond) // five timeout windows of idleness
	if err := ra.Send([]byte("still-there")); err != nil {
		t.Fatalf("send after idle period: %v", err)
	}
	got, err := rb.Receive()
	if err != nil || string(got) != "still-there" {
		t.Fatalf("receive after idle period: %q, %v", got, err)
	}
	if ra.Stats().Heartbeats == 0 {
		t.Error("idle link sent no heartbeats")
	}
}

// TestResilientRedialReplaysUnacked: after a hard disconnect the dial
// function re-establishes the link and every unacked frame is replayed.
func TestResilientRedialReplaysUnacked(t *testing.T) {
	a2b := make(chan []byte, 1024)
	b2a := make(chan []byte, 1024)
	newA := func() *chanEnd { return &chanEnd{out: a2b, in: b2a, closed: make(chan struct{})} }
	b := &chanEnd{out: b2a, in: a2b, closed: make(chan struct{})}

	// The first connection is severed after 5 frames; the redial gets a
	// clean endpoint on the same pipe.
	first := fault.Wrap(newA(), fault.Config{Seed: 1, DisconnectAfter: 5})
	var dials int
	dial := func() (Transport, error) {
		dials++
		return newA(), nil
	}
	cfg := fastResilient(7)
	cfg.RedialWait = time.Millisecond
	ra, err := NewResilientTransport(first, dial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	rb, _ := NewResilientTransport(b, nil, fastResilient(8))
	defer rb.Close()

	const n = 30
	go func() {
		for i := 0; i < n; i++ {
			ra.Send([]byte{byte(i)})
		}
	}()
	for i := 0; i < n; i++ {
		got, err := rb.Receive()
		if err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("frame %d = %d", i, got[0])
		}
	}
	if dials == 0 {
		t.Error("link recovered without dialing")
	}
	if ra.Stats().Redials == 0 {
		t.Error("redial counter did not move")
	}
}

// TestResilientCloseUnblocksReceive: Close wakes a blocked Receive with a
// closed-link error instead of ErrPeerDead.
func TestResilientCloseUnblocksReceive(t *testing.T) {
	a, b := newPipe()
	ra, _ := NewResilientTransport(a, nil, fastResilient(9))
	rb, _ := NewResilientTransport(b, nil, fastResilient(10))
	defer rb.Close()
	done := make(chan error, 1)
	go func() {
		_, err := ra.Receive()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	ra.Close()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, ErrPeerDead) {
			t.Errorf("Receive after Close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock Receive")
	}
}

// TestResilientSendDeadline: a frame no peer ever acknowledges trips the
// send deadline.
func TestResilientSendDeadline(t *testing.T) {
	a, _ := newPipe() // peer endpoint discarded: frames go nowhere
	cfg := fastResilient(11)
	cfg.SendTimeout = 30 * time.Millisecond
	cfg.PeerTimeout = -1 // isolate the send deadline from the receive one
	ra, _ := NewResilientTransport(a, nil, cfg)
	defer ra.Close()
	if err := ra.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("send deadline never tripped")
		default:
		}
		if err := ra.Send([]byte("probe")); err != nil {
			return // the latched deadline error surfaced
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResilientPassThrough: frames from an unwrapped peer (no envelope)
// are delivered untouched, so mixed deployments degrade gracefully.
func TestResilientPassThrough(t *testing.T) {
	a, b := newPipe()
	ra, _ := NewResilientTransport(a, nil, fastResilient(12))
	defer ra.Close()
	if err := b.Send([]byte("bare")); err != nil {
		t.Fatal(err)
	}
	got, err := ra.Receive()
	if err != nil || string(got) != "bare" {
		t.Fatalf("pass-through = %q, %v", got, err)
	}
}
