package core

import "vf2boost/internal/wire"

// Binary wire encodings for every protocol message. Each message gets a
// stable numeric ID (never renumber — append new IDs for new messages; the
// table is mirrored in docs/PROTOCOL.md) and explicit AppendTo/DecodeFrom
// implementations over the wire package's primitives. Field order in the
// body encoding is fixed; adding a field means a new message ID or a new
// frame version tag, never an in-place layout change.
//
// Every struct field is encoded, including the representation a message
// does not use (e.g. a packed FeatHist's empty unpacked bins cost one zero
// count byte each): binary and gob round trips must produce deep-equal
// values for any representable message, which the equivalence tests check.
const (
	// idSetupV1 (= 1) carried the pre-obfuscation-base MsgSetup layout.
	// Per the append-only rule above, extending the message meant
	// retiring the ID rather than changing the layout in place; 1 stays
	// reserved and must not be reused.
	idSetupV1           uint16 = 1
	idReady             uint16 = 2
	idGradBatch         uint16 = 3
	idHistograms        uint16 = 4
	idDecisions         uint16 = 5
	idDirty             uint16 = 6
	idPlacement         uint16 = 7
	idTreeDone          uint16 = 8
	idShutdown          uint16 = 9
	idPredictStart      uint16 = 10
	idPredictPlacements uint16 = 11
	idScoreOpen         uint16 = 12
	idScoreOpenAck      uint16 = 13
	idScoreRequest      uint16 = 14
	idScoreResponse     uint16 = 15
	idScoreClose        uint16 = 16
	idScoreCloseAck     uint16 = 17
	idEnvelope          uint16 = 18
	idAck               uint16 = 19
	idHeartbeat         uint16 = 20
	idResume            uint16 = 21
	// idSetupV2 extends the setup body with the fast-obfuscation base
	// (ObfBase, ObfBits) appended after Shift.
	idSetupV2 uint16 = 22
	idAbort   uint16 = 23
	// idSetupV3 extends the setup body with the negotiated HE backend and
	// its lane geometry (Backend, Slots, LaneBits, Headroom) appended after
	// ObfBits. A scalar session encodes MsgSetup under idSetupV2 — the two
	// layouts coexist so older peers keep decoding scalar sessions
	// (mixed-fleet fallback).
	idSetupV3 uint16 = 24
	// idVecGradBatch carries the slot-packed gradient stream of the
	// batched backends.
	idVecGradBatch uint16 = 25
	// idHistogramsV2 extends every FeatHist body with the vectorized
	// representation (Vec, VecBin, VecSlot, VecCount, VecCts) appended
	// after Exp; scalar histograms keep encoding under idHistograms.
	idHistogramsV2 uint16 = 26
	// idSetupV4 extends the setup body with the negotiated multi-output
	// objective (Objective, Outputs) appended after Headroom; the vec
	// fields are always present in this layout. Binary sessions keep
	// encoding under idSetupV2/idSetupV3, so their frames are unchanged.
	idSetupV4 uint16 = 27
	// idGradBatchV2 extends the gradient-batch body with the output index
	// (Class) appended after Last. Class-0 batches — every batch of a
	// binary session — keep the idGradBatch frame.
	idGradBatchV2 uint16 = 28
)

// All ends of a deployment ship the same binary, so only the current
// setup layout is registered; a frame carrying the retired idSetupV1
// fails decoding loudly instead of being misread.
var _ = idSetupV1

func init() {
	wire.Register(idSetupV2, "MsgSetup", decodeMsg[MsgSetup])
	wire.Register(idReady, "MsgReady", decodeMsg[MsgReady])
	wire.Register(idGradBatch, "MsgGradBatch", decodeMsg[MsgGradBatch])
	wire.Register(idHistograms, "MsgHistograms", decodeMsg[MsgHistograms])
	wire.Register(idDecisions, "MsgDecisions", decodeMsg[MsgDecisions])
	wire.Register(idDirty, "MsgDirty", decodeMsg[MsgDirty])
	wire.Register(idPlacement, "MsgPlacement", decodeMsg[MsgPlacement])
	wire.Register(idTreeDone, "MsgTreeDone", decodeMsg[MsgTreeDone])
	wire.Register(idShutdown, "MsgShutdown", decodeMsg[MsgShutdown])
	wire.Register(idPredictStart, "MsgPredictStart", decodeMsg[MsgPredictStart])
	wire.Register(idPredictPlacements, "MsgPredictPlacements", decodeMsg[MsgPredictPlacements])
	wire.Register(idScoreOpen, "MsgScoreOpen", decodeMsg[MsgScoreOpen])
	wire.Register(idScoreOpenAck, "MsgScoreOpenAck", decodeMsg[MsgScoreOpenAck])
	wire.Register(idScoreRequest, "MsgScoreRequest", decodeMsg[MsgScoreRequest])
	wire.Register(idScoreResponse, "MsgScoreResponse", decodeMsg[MsgScoreResponse])
	wire.Register(idScoreClose, "MsgScoreClose", decodeMsg[MsgScoreClose])
	wire.Register(idScoreCloseAck, "MsgScoreCloseAck", decodeMsg[MsgScoreCloseAck])
	wire.Register(idEnvelope, "MsgEnvelope", decodeMsg[MsgEnvelope])
	wire.Register(idAck, "MsgAck", decodeMsg[MsgAck])
	wire.Register(idHeartbeat, "MsgHeartbeat", decodeMsg[MsgHeartbeat])
	wire.Register(idResume, "MsgResume", decodeMsg[MsgResume])
	wire.Register(idAbort, "MsgAbort", decodeMsg[MsgAbort])
	wire.Register(idSetupV3, "MsgSetupV3", func(body []byte) (any, error) {
		var m MsgSetup
		if err := m.decodeFrom(body, true); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(idVecGradBatch, "MsgVecGradBatch", decodeMsg[MsgVecGradBatch])
	wire.Register(idSetupV4, "MsgSetupV4", func(body []byte) (any, error) {
		var m MsgSetup
		if err := m.decodeFromV4(body); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(idGradBatchV2, "MsgGradBatchV2", func(body []byte) (any, error) {
		var m MsgGradBatch
		if err := m.decodeFrom(body, true); err != nil {
			return nil, err
		}
		return m, nil
	})
	wire.Register(idHistogramsV2, "MsgHistogramsV2", func(body []byte) (any, error) {
		var m MsgHistograms
		if err := m.decodeFrom(body, true); err != nil {
			return nil, err
		}
		return m, nil
	})
}

// wireBody is the decode half of a protocol message; every Msg* pointer
// type implements it.
type wireBody interface {
	DecodeFrom(body []byte) error
}

// decodeMsg adapts a message type to the registry's decode signature,
// returning the message by value (protocol code type-switches on values).
func decodeMsg[M any, PM interface {
	*M
	wireBody
}](body []byte) (any, error) {
	var m M
	if err := PM(&m).DecodeFrom(body); err != nil {
		return nil, err
	}
	return m, nil
}

// --- MsgSetup ----------------------------------------------------------

// vecWire reports whether the setup carries backend-negotiation fields,
// selecting the idSetupV3 layout; a scalar setup stays on the idSetupV2
// frame older peers understand.
func (m MsgSetup) vecWire() bool {
	return m.Backend != "" || m.Slots != 0 || m.LaneBits != 0 || m.Headroom != 0
}

// objWire reports whether the setup carries objective-negotiation
// fields, selecting the idSetupV4 layout (vec fields always present).
// Binary sessions leave both fields zero and keep the older frames.
func (m MsgSetup) objWire() bool {
	return m.Objective != "" || m.Outputs != 0
}

func (m MsgSetup) WireID() uint16 {
	if m.objWire() {
		return idSetupV4
	}
	if m.vecWire() {
		return idSetupV3
	}
	return idSetupV2
}

func (m MsgSetup) AppendTo(b []byte) []byte {
	b = wire.AppendString(b, m.Scheme)
	b = wire.AppendBytes(b, m.N)
	b = wire.AppendInt(b, m.Bits)
	b = wire.AppendInt(b, m.BaseExp)
	b = wire.AppendInt(b, m.ExpSpread)
	b = wire.AppendInt(b, m.PackBits)
	b = wire.AppendFloat64(b, m.Shift)
	b = wire.AppendBytes(b, m.ObfBase)
	b = wire.AppendInt(b, m.ObfBits)
	if m.vecWire() || m.objWire() {
		b = wire.AppendString(b, m.Backend)
		b = wire.AppendInt(b, m.Slots)
		b = wire.AppendInt(b, m.LaneBits)
		b = wire.AppendInt(b, m.Headroom)
	}
	if m.objWire() {
		b = wire.AppendString(b, m.Objective)
		b = wire.AppendInt(b, m.Outputs)
	}
	return b
}

func (m *MsgSetup) DecodeFrom(body []byte) error { return m.decodeFrom(body, false) }

func (m *MsgSetup) decodeFrom(body []byte, vec bool) error {
	d := wire.NewDec(body)
	m.Scheme = d.String()
	m.N = d.Bytes()
	m.Bits = d.Int()
	m.BaseExp = d.Int()
	m.ExpSpread = d.Int()
	m.PackBits = d.Int()
	m.Shift = d.Float64()
	m.ObfBase = d.Bytes()
	m.ObfBits = d.Int()
	if vec {
		m.Backend = d.String()
		m.Slots = d.Int()
		m.LaneBits = d.Int()
		m.Headroom = d.Int()
	}
	return d.Finish()
}

func (m *MsgSetup) decodeFromV4(body []byte) error {
	d := wire.NewDec(body)
	m.Scheme = d.String()
	m.N = d.Bytes()
	m.Bits = d.Int()
	m.BaseExp = d.Int()
	m.ExpSpread = d.Int()
	m.PackBits = d.Int()
	m.Shift = d.Float64()
	m.ObfBase = d.Bytes()
	m.ObfBits = d.Int()
	m.Backend = d.String()
	m.Slots = d.Int()
	m.LaneBits = d.Int()
	m.Headroom = d.Int()
	m.Objective = d.String()
	m.Outputs = d.Int()
	return d.Finish()
}

// --- MsgReady ----------------------------------------------------------

func (MsgReady) WireID() uint16 { return idReady }

func (m MsgReady) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Party)
	b = wire.AppendInt(b, m.Features)
	return wire.AppendInt(b, m.Rows)
}

func (m *MsgReady) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Party = d.Int()
	m.Features = d.Int()
	m.Rows = d.Int()
	return d.Finish()
}

// --- MsgGradBatch ------------------------------------------------------

func (m MsgGradBatch) WireID() uint16 {
	if m.Class != 0 {
		return idGradBatchV2
	}
	return idGradBatch
}

func (m MsgGradBatch) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Tree)
	b = wire.AppendInt(b, m.Start)
	b = wire.AppendByteSlices(b, m.G)
	b = wire.AppendByteSlices(b, m.H)
	b = wire.AppendInt16s(b, m.GExp)
	b = wire.AppendInt16s(b, m.HExp)
	b = wire.AppendBool(b, m.Last)
	if m.Class != 0 {
		b = wire.AppendInt(b, m.Class)
	}
	return b
}

func (m *MsgGradBatch) DecodeFrom(body []byte) error { return m.decodeFrom(body, false) }

func (m *MsgGradBatch) decodeFrom(body []byte, v2 bool) error {
	d := wire.NewDec(body)
	m.Tree = d.Int()
	m.Start = d.Int()
	m.G = d.ByteSlices()
	m.H = d.ByteSlices()
	m.GExp = d.Int16s()
	m.HExp = d.Int16s()
	m.Last = d.Bool()
	if v2 {
		m.Class = d.Int()
	}
	return d.Finish()
}

// --- MsgHistograms -----------------------------------------------------

// vecWire reports whether any feature carries the vectorized
// representation, selecting the idHistogramsV2 layout (every FeatHist body
// gains the vec fields); scalar histograms keep the idHistograms frame.
func (m MsgHistograms) vecWire() bool {
	for _, n := range m.Nodes {
		for _, f := range n.Feats {
			if f.Vec || len(f.VecBin) > 0 || len(f.VecSlot) > 0 || len(f.VecCount) > 0 || len(f.VecCts) > 0 {
				return true
			}
		}
	}
	return false
}

func (m MsgHistograms) WireID() uint16 {
	if m.vecWire() {
		return idHistogramsV2
	}
	return idHistograms
}

func (m MsgHistograms) AppendTo(b []byte) []byte {
	vec := m.vecWire()
	b = wire.AppendInt(b, m.Tree)
	b = wire.AppendInt(b, m.Layer)
	b = wire.AppendUvarint(b, uint64(len(m.Nodes)))
	for _, n := range m.Nodes {
		b = wire.AppendInt32(b, n.Node)
		b = wire.AppendUvarint(b, uint64(len(n.Feats)))
		for _, f := range n.Feats {
			b = wire.AppendInt(b, f.NumBins)
			b = wire.AppendByteSlices(b, f.GBins)
			b = wire.AppendByteSlices(b, f.HBins)
			b = wire.AppendInt16s(b, f.GExp)
			b = wire.AppendInt16s(b, f.HExp)
			b = wire.AppendBool(b, f.Packed)
			b = wire.AppendByteSlices(b, f.PackedG)
			b = wire.AppendByteSlices(b, f.PackedH)
			b = wire.AppendInt16(b, f.Exp)
			if vec {
				b = wire.AppendBool(b, f.Vec)
				b = wire.AppendInt32s(b, f.VecBin)
				b = wire.AppendInt32s(b, f.VecSlot)
				b = wire.AppendInt32s(b, f.VecCount)
				b = wire.AppendByteSlices(b, f.VecCts)
			}
		}
	}
	return b
}

func (m *MsgHistograms) DecodeFrom(body []byte) error { return m.decodeFrom(body, false) }

func (m *MsgHistograms) decodeFrom(body []byte, vec bool) error {
	d := wire.NewDec(body)
	m.Tree = d.Int()
	m.Layer = d.Int()
	m.Nodes = decodeSeq(d, func(d *wire.Dec) NodeHist {
		n := NodeHist{Node: d.Int32()}
		n.Feats = decodeSeq(d, func(d *wire.Dec) FeatHist {
			f := FeatHist{
				NumBins: d.Int(),
				GBins:   d.ByteSlices(),
				HBins:   d.ByteSlices(),
				GExp:    d.Int16s(),
				HExp:    d.Int16s(),
				Packed:  d.Bool(),
				PackedG: d.ByteSlices(),
				PackedH: d.ByteSlices(),
				Exp:     d.Int16(),
			}
			if vec {
				f.Vec = d.Bool()
				f.VecBin = d.Int32s()
				f.VecSlot = d.Int32s()
				f.VecCount = d.Int32s()
				f.VecCts = d.ByteSlices()
			}
			return f
		})
		return n
	})
	return d.Finish()
}

// --- MsgVecGradBatch ---------------------------------------------------

func (MsgVecGradBatch) WireID() uint16 { return idVecGradBatch }

func (m MsgVecGradBatch) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Tree)
	b = wire.AppendInt(b, m.Start)
	b = wire.AppendByteSlices(b, m.Cts)
	return wire.AppendBool(b, m.Last)
}

func (m *MsgVecGradBatch) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Tree = d.Int()
	m.Start = d.Int()
	m.Cts = d.ByteSlices()
	m.Last = d.Bool()
	return d.Finish()
}

// decodeSeq reads a count-prefixed sequence of composite elements, with
// the count bounded by the remaining frame bytes (each element costs at
// least one byte). Zero count decodes as nil.
func decodeSeq[E any](d *wire.Dec, elem func(*wire.Dec) E) []E {
	count := d.Uvarint()
	if d.Err() != nil || count == 0 {
		return nil
	}
	if count > uint64(d.Remaining()) {
		d.Fail("sequence of %d elements, only %d bytes remain", count, d.Remaining())
		return nil
	}
	out := make([]E, count)
	for i := range out {
		out[i] = elem(d)
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

// --- MsgDecisions ------------------------------------------------------

func (MsgDecisions) WireID() uint16 { return idDecisions }

func (m MsgDecisions) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Tree)
	b = wire.AppendInt(b, m.Layer)
	b = wire.AppendBool(b, m.Tentative)
	b = wire.AppendUvarint(b, uint64(len(m.Nodes)))
	for _, n := range m.Nodes {
		b = wire.AppendInt32(b, n.Node)
		b = wire.AppendByte(b, n.Action)
		b = wire.AppendInt32(b, n.LeftID)
		b = wire.AppendInt32(b, n.RightID)
		b = wire.AppendBytes(b, n.Placement)
		b = wire.AppendInt(b, n.Count)
		b = wire.AppendInt(b, n.Owner)
		b = wire.AppendInt32(b, n.Feature)
		b = wire.AppendInt32(b, n.Bin)
		b = wire.AppendInt32(b, n.AbortLeft)
		b = wire.AppendInt32(b, n.AbortRight)
	}
	return b
}

func (m *MsgDecisions) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Tree = d.Int()
	m.Layer = d.Int()
	m.Tentative = d.Bool()
	m.Nodes = decodeSeq(d, func(d *wire.Dec) NodeDecision {
		return NodeDecision{
			Node:       d.Int32(),
			Action:     d.Byte(),
			LeftID:     d.Int32(),
			RightID:    d.Int32(),
			Placement:  d.Bytes(),
			Count:      d.Int(),
			Owner:      d.Int(),
			Feature:    d.Int32(),
			Bin:        d.Int32(),
			AbortLeft:  d.Int32(),
			AbortRight: d.Int32(),
		}
	})
	return d.Finish()
}

// --- MsgDirty ----------------------------------------------------------

func (MsgDirty) WireID() uint16 { return idDirty }

func (m MsgDirty) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Tree)
	b = wire.AppendInt(b, m.Layer)
	b = wire.AppendInt32(b, m.Node)
	b = wire.AppendInt32(b, m.OldLeft)
	b = wire.AppendInt32(b, m.OldRight)
	b = wire.AppendInt32(b, m.LeftID)
	b = wire.AppendInt32(b, m.RightID)
	b = wire.AppendInt32(b, m.Feature)
	return wire.AppendInt32(b, m.Bin)
}

func (m *MsgDirty) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Tree = d.Int()
	m.Layer = d.Int()
	m.Node = d.Int32()
	m.OldLeft = d.Int32()
	m.OldRight = d.Int32()
	m.LeftID = d.Int32()
	m.RightID = d.Int32()
	m.Feature = d.Int32()
	m.Bin = d.Int32()
	return d.Finish()
}

// --- MsgPlacement ------------------------------------------------------

func (MsgPlacement) WireID() uint16 { return idPlacement }

func (m MsgPlacement) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Tree)
	b = wire.AppendInt(b, m.Layer)
	b = wire.AppendInt32(b, m.Node)
	b = wire.AppendBytes(b, m.Bits)
	return wire.AppendInt(b, m.Count)
}

func (m *MsgPlacement) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Tree = d.Int()
	m.Layer = d.Int()
	m.Node = d.Int32()
	m.Bits = d.Bytes()
	m.Count = d.Int()
	return d.Finish()
}

// --- MsgTreeDone / MsgShutdown ----------------------------------------

func (MsgTreeDone) WireID() uint16 { return idTreeDone }

func (m MsgTreeDone) AppendTo(b []byte) []byte { return wire.AppendInt(b, m.Tree) }

func (m *MsgTreeDone) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Tree = d.Int()
	return d.Finish()
}

func (MsgShutdown) WireID() uint16 { return idShutdown }

func (m MsgShutdown) AppendTo(b []byte) []byte { return b }

func (m *MsgShutdown) DecodeFrom(body []byte) error {
	return wire.NewDec(body).Finish()
}

// --- MsgAbort ----------------------------------------------------------

func (MsgAbort) WireID() uint16 { return idAbort }

func (m MsgAbort) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Party)
	return wire.AppendString(b, m.Reason)
}

func (m *MsgAbort) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Party = d.Int()
	m.Reason = d.String()
	return d.Finish()
}

// --- MsgPredictStart / MsgPredictPlacements ---------------------------

func (MsgPredictStart) WireID() uint16 { return idPredictStart }

func (m MsgPredictStart) AppendTo(b []byte) []byte { return wire.AppendInt(b, m.Rows) }

func (m *MsgPredictStart) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Rows = d.Int()
	return d.Finish()
}

func (MsgPredictPlacements) WireID() uint16 { return idPredictPlacements }

func appendNodeBits(b []byte, nodes []PredictNodeBits) []byte {
	b = wire.AppendUvarint(b, uint64(len(nodes)))
	for _, n := range nodes {
		b = wire.AppendInt(b, n.Tree)
		b = wire.AppendInt32(b, n.Node)
		b = wire.AppendBytes(b, n.Bits)
	}
	return b
}

func decodeNodeBits(d *wire.Dec) []PredictNodeBits {
	return decodeSeq(d, func(d *wire.Dec) PredictNodeBits {
		return PredictNodeBits{Tree: d.Int(), Node: d.Int32(), Bits: d.Bytes()}
	})
}

func (m MsgPredictPlacements) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Party)
	b = appendNodeBits(b, m.Nodes)
	b = wire.AppendBool(b, m.Last)
	return wire.AppendString(b, m.Error)
}

func (m *MsgPredictPlacements) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Party = d.Int()
	m.Nodes = decodeNodeBits(d)
	m.Last = d.Bool()
	m.Error = d.String()
	return d.Finish()
}

// --- Score session family ---------------------------------------------

func (MsgScoreOpen) WireID() uint16 { return idScoreOpen }

func (m MsgScoreOpen) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Proto)
	return wire.AppendString(b, m.Session)
}

func (m *MsgScoreOpen) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Proto = d.Int()
	m.Session = d.String()
	return d.Finish()
}

func (MsgScoreOpenAck) WireID() uint16 { return idScoreOpenAck }

func (m MsgScoreOpenAck) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Proto)
	b = wire.AppendInt(b, m.Party)
	b = wire.AppendInt(b, m.Rows)
	b = wire.AppendUint64s(b, m.Versions)
	return wire.AppendString(b, m.Error)
}

func (m *MsgScoreOpenAck) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Proto = d.Int()
	m.Party = d.Int()
	m.Rows = d.Int()
	m.Versions = d.Uint64s()
	m.Error = d.String()
	return d.Finish()
}

func (MsgScoreRequest) WireID() uint16 { return idScoreRequest }

func (m MsgScoreRequest) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Round)
	b = wire.AppendUvarint(b, m.Version)
	return wire.AppendInt32s(b, m.Rows)
}

func (m *MsgScoreRequest) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Round = d.Uvarint()
	m.Version = d.Uvarint()
	m.Rows = d.Int32s()
	return d.Finish()
}

func (MsgScoreResponse) WireID() uint16 { return idScoreResponse }

func (m MsgScoreResponse) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Round)
	b = wire.AppendUvarint(b, m.Version)
	b = wire.AppendInt(b, m.Party)
	b = appendNodeBits(b, m.Nodes)
	return wire.AppendString(b, m.Error)
}

func (m *MsgScoreResponse) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Round = d.Uvarint()
	m.Version = d.Uvarint()
	m.Party = d.Int()
	m.Nodes = decodeNodeBits(d)
	m.Error = d.String()
	return d.Finish()
}

func (MsgScoreClose) WireID() uint16 { return idScoreClose }

func (m MsgScoreClose) AppendTo(b []byte) []byte { return wire.AppendString(b, m.Reason) }

func (m *MsgScoreClose) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Reason = d.String()
	return d.Finish()
}

func (MsgScoreCloseAck) WireID() uint16 { return idScoreCloseAck }

func (m MsgScoreCloseAck) AppendTo(b []byte) []byte { return b }

func (m *MsgScoreCloseAck) DecodeFrom(body []byte) error {
	return wire.NewDec(body).Finish()
}

// --- Resilient link family (envelope / ack / heartbeat) ----------------

func (MsgEnvelope) WireID() uint16 { return idEnvelope }

func (m MsgEnvelope) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Seq)
	return wire.AppendBytes(b, m.Frame)
}

func (m *MsgEnvelope) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Seq = d.Uvarint()
	m.Frame = d.Bytes()
	return d.Finish()
}

func (MsgAck) WireID() uint16 { return idAck }

func (m MsgAck) AppendTo(b []byte) []byte { return wire.AppendUvarint(b, m.Cum) }

func (m *MsgAck) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Cum = d.Uvarint()
	return d.Finish()
}

func (MsgHeartbeat) WireID() uint16 { return idHeartbeat }

func (m MsgHeartbeat) AppendTo(b []byte) []byte { return wire.AppendUvarint(b, m.Cum) }

func (m *MsgHeartbeat) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Cum = d.Uvarint()
	return d.Finish()
}

// --- MsgResume ---------------------------------------------------------

func (MsgResume) WireID() uint16 { return idResume }

func (m MsgResume) AppendTo(b []byte) []byte {
	b = wire.AppendInt(b, m.Party)
	return wire.AppendInt(b, m.Trees)
}

func (m *MsgResume) DecodeFrom(body []byte) error {
	d := wire.NewDec(body)
	m.Party = d.Int()
	m.Trees = d.Int()
	return d.Finish()
}
