package core

import (
	"fmt"
	"math"
	"math/big"

	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
)

// encGH is a passive party's copy of the encrypted gradient statistics of
// one boosting round.
type encGH struct {
	g []fixedpoint.EncNum
	h []fixedpoint.EncNum
}

// EncHistogram accumulates encrypted gradient statistics into per-feature
// bins for one tree node. Two accumulation strategies implement Section
// 5.1's comparison:
//
//   - naive: one accumulator per bin; a ciphertext whose exponent differs
//     from the accumulator's triggers a scaling (SMul) on every addition;
//   - re-ordered: one workspace row per exponent value, so every addition
//     is a plain HAdd; FinalizeBins merges the E rows with at most E-1
//     scalings per occupied bin.
type EncHistogram struct {
	codec   *fixedpoint.Codec
	offsets []int
	// naive accumulators (nil Ct = empty bin).
	gAcc, hAcc []fixedpoint.EncNum
	// re-ordered workspaces, indexed [exp-baseExp][bin]; rows allocated
	// lazily.
	gSlots, hSlots [][]he.Ciphertext
	reordered      bool
}

// NewEncHistogram allocates an empty histogram shaped like the party's bin
// mapper.
func NewEncHistogram(codec *fixedpoint.Codec, mapper *gbdt.BinMapper, reordered bool) *EncHistogram {
	offsets := make([]int, len(mapper.Cuts)+1)
	for j := range mapper.Cuts {
		offsets[j+1] = offsets[j] + mapper.NumBins(j)
	}
	total := offsets[len(mapper.Cuts)]
	eh := &EncHistogram{codec: codec, offsets: offsets, reordered: reordered}
	if reordered {
		eh.gSlots = make([][]he.Ciphertext, codec.ExpSpread())
		eh.hSlots = make([][]he.Ciphertext, codec.ExpSpread())
	} else {
		eh.gAcc = make([]fixedpoint.EncNum, total)
		eh.hAcc = make([]fixedpoint.EncNum, total)
	}
	return eh
}

func (eh *EncHistogram) totalBins() int { return eh.offsets[len(eh.offsets)-1] }

// Accumulate sweeps the given instances of the binned matrix into the
// histogram. It is not safe for concurrent use; parallel builders use one
// histogram per shard and merge. A view failure (disk-backed views only)
// stops the sweep; the partial histogram must be discarded and the error
// routed into the session-abort path.
func (eh *EncHistogram) Accumulate(bm gbdt.BinView, insts []int32, gh *encGH) error {
	for _, i := range insts {
		cols, bins, err := bm.Row(int(i))
		if err != nil {
			return err
		}
		for k, j := range cols {
			idx := eh.offsets[j] + int(bins[k])
			eh.add(idx, gh.g[i], gh.h[i])
		}
	}
	return nil
}

func (eh *EncHistogram) add(idx int, g, h fixedpoint.EncNum) {
	if eh.reordered {
		eh.addSlot(eh.gSlots, idx, g)
		eh.addSlot(eh.hSlots, idx, h)
		return
	}
	eh.addNaive(eh.gAcc, idx, g)
	eh.addNaive(eh.hAcc, idx, h)
}

func (eh *EncHistogram) addNaive(acc []fixedpoint.EncNum, idx int, v fixedpoint.EncNum) {
	if acc[idx].Ct == nil {
		acc[idx] = fixedpoint.EncNum{Exp: v.Exp, Ct: eh.codec.Scheme().EncryptZero()}
	}
	eh.codec.AddEncInto(&acc[idx], v)
}

func (eh *EncHistogram) addSlot(slots [][]he.Ciphertext, idx int, v fixedpoint.EncNum) {
	row := v.Exp - eh.codec.BaseExp()
	if row < 0 || row >= len(slots) {
		// Out-of-range exponents cannot be produced by the session codec;
		// treat as corrupt input.
		panic(fmt.Sprintf("core: ciphertext exponent %d outside codec range", v.Exp))
	}
	if slots[row] == nil {
		slots[row] = make([]he.Ciphertext, eh.totalBins())
	}
	s := eh.codec.Scheme()
	if slots[row][idx] == nil {
		slots[row][idx] = s.EncryptZero()
	}
	eh.codec.Stats().AddHAdds(1)
	slots[row][idx] = s.AddInto(slots[row][idx], v.Ct)
}

// Merge folds another histogram (same shape and strategy) into this one.
func (eh *EncHistogram) Merge(o *EncHistogram) {
	if eh.reordered {
		s := eh.codec.Scheme()
		for row := range o.gSlots {
			eh.mergeSlotRow(eh.gSlots, o.gSlots, row, s)
			eh.mergeSlotRow(eh.hSlots, o.hSlots, row, s)
		}
		return
	}
	for idx := range o.gAcc {
		if o.gAcc[idx].Ct != nil {
			eh.addNaive(eh.gAcc, idx, o.gAcc[idx])
		}
		if o.hAcc[idx].Ct != nil {
			eh.addNaive(eh.hAcc, idx, o.hAcc[idx])
		}
	}
}

func (eh *EncHistogram) mergeSlotRow(dst, src [][]he.Ciphertext, row int, s he.Scheme) {
	if src[row] == nil {
		return
	}
	if dst[row] == nil {
		dst[row] = src[row]
		return
	}
	for idx, ct := range src[row] {
		if ct == nil {
			continue
		}
		if dst[row][idx] == nil {
			dst[row][idx] = ct
		} else {
			eh.codec.Stats().AddHAdds(1)
			dst[row][idx] = s.AddInto(dst[row][idx], ct)
		}
	}
}

// FinalizeBins resolves the accumulation into one EncNum per bin. Empty
// bins keep a nil ciphertext (serialized as encrypted zero on the wire).
// If unifyExp >= 0 every bin is scaled to that exponent (required by
// histogram packing, which needs a single known exponent per feature).
func (eh *EncHistogram) FinalizeBins(unifyExp int) (g, h []fixedpoint.EncNum) {
	total := eh.totalBins()
	g = make([]fixedpoint.EncNum, total)
	h = make([]fixedpoint.EncNum, total)
	if eh.reordered {
		for idx := 0; idx < total; idx++ {
			g[idx] = eh.mergeBin(eh.gSlots, idx)
			h[idx] = eh.mergeBin(eh.hSlots, idx)
		}
	} else {
		copy(g, eh.gAcc)
		copy(h, eh.hAcc)
	}
	if unifyExp >= 0 {
		for idx := range g {
			if g[idx].Ct != nil {
				g[idx] = eh.codec.ScaleEnc(g[idx], unifyExp)
			}
			if h[idx].Ct != nil {
				h[idx] = eh.codec.ScaleEnc(h[idx], unifyExp)
			}
		}
	}
	return g, h
}

// mergeBin combines the per-exponent workspaces of one bin, scaling lower
// rows up to the highest occupied exponent (at most E-1 scalings).
func (eh *EncHistogram) mergeBin(slots [][]he.Ciphertext, idx int) fixedpoint.EncNum {
	acc := fixedpoint.EncNum{}
	for row := len(slots) - 1; row >= 0; row-- {
		if slots[row] == nil || slots[row][idx] == nil {
			continue
		}
		cur := fixedpoint.EncNum{Exp: eh.codec.BaseExp() + row, Ct: slots[row][idx]}
		if acc.Ct == nil {
			acc = cur
			continue
		}
		scaled := eh.codec.ScaleEnc(cur, acc.Exp)
		acc.Ct = eh.codec.Scheme().AddInto(acc.Ct, scaled.Ct)
		eh.codec.Stats().AddHAdds(1)
	}
	return acc
}

// packPlan describes the histogram-packing parameters negotiated at setup.
type packPlan struct {
	// bits is M: every shifted prefix value fits in [0, 2^bits).
	bits int
	// capacity is t = (S-1)/bits.
	capacity int
	// exp is the unified exponent all packed values use.
	exp int
	// shift is the additive shift N·Bound applied to the first bin
	// before prefix summation.
	shift float64
}

// planPacking validates that packing is feasible for the session shape and
// returns the plan. It fails if a single shifted prefix cannot fit in the
// plaintext space.
func planPacking(codec *fixedpoint.Codec, n int, gradBound float64, requestedBits int) (packPlan, error) {
	exp := codec.BaseExp() + codec.ExpSpread() - 1
	shift := float64(n) * gradBound
	// Largest shifted prefix: 2·N·Bound at exponent exp.
	maxVal := 2 * shift * math.Pow(float64(codec.Base()), float64(exp))
	need := int(math.Ceil(math.Log2(maxVal))) + 2
	bits := requestedBits
	if bits < need {
		bits = need
	}
	s := codec.Scheme().Bits()
	if bits >= s {
		return packPlan{}, fmt.Errorf("core: histogram packing infeasible: need %d-bit slots but modulus has %d bits", bits, s)
	}
	capacity := (s - 1) / bits
	return packPlan{bits: bits, capacity: capacity, exp: exp, shift: shift}, nil
}

// packFeature turns one feature's finalized bins (at plan.exp) into packed
// shifted prefix sums: prefix_0 = bin_0 + shift, prefix_k = prefix_{k-1} +
// bin_k, packed plan.capacity per ciphertext. shiftCt must encrypt
// shift·B^exp. Empty bins contribute nothing (they are zero).
func packFeature(codec *fixedpoint.Codec, bins []fixedpoint.EncNum, shiftCt he.Ciphertext, plan packPlan) ([][]byte, error) {
	s := codec.Scheme()
	prefixes := make([]he.Ciphertext, len(bins))
	run := shiftCt // shared read-only seed; Add always returns fresh ciphertexts
	for k, b := range bins {
		if b.Ct != nil {
			if b.Exp > plan.exp {
				return nil, fmt.Errorf("core: packing bin at exponent %d above plan exponent %d", b.Exp, plan.exp)
			}
			if b.Exp < plan.exp {
				b = codec.ScaleEnc(b, plan.exp)
			}
			run = s.Add(run, b.Ct)
			codec.Stats().AddHAdds(1)
		}
		prefixes[k] = run
	}
	out := make([][]byte, 0, (len(prefixes)+plan.capacity-1)/plan.capacity)
	for lo := 0; lo < len(prefixes); lo += plan.capacity {
		hi := lo + plan.capacity
		if hi > len(prefixes) {
			hi = len(prefixes)
		}
		packed, err := codec.Pack(prefixes[lo:hi], plan.bits)
		if err != nil {
			return nil, err
		}
		out = append(out, s.Marshal(packed))
	}
	return out, nil
}

// unpackFeature reverses packFeature on Party B: it decrypts the packed
// ciphertexts, slices out the shifted prefix mantissas, and differences
// them back to per-bin sums. All arithmetic stays in the exact integer
// mantissa domain — shifted prefixes can exceed float64's 53-bit exact
// range, so converting before differencing would corrupt low-order bits.
func unpackFeature(codec *fixedpoint.Codec, dec he.Decryptor, packed [][]byte, numBins int, plan packPlan) (binSums []float64, err error) {
	mans := make([]*big.Int, 0, numBins)
	remaining := numBins
	for _, ctBytes := range packed {
		ct, err := dec.Unmarshal(ctBytes)
		if err != nil {
			return nil, err
		}
		plain, err := dec.Decrypt(ct)
		if err != nil {
			return nil, err
		}
		codec.Stats().AddDecryptions(1)
		t := plan.capacity
		if remaining < t {
			t = remaining
		}
		mans = append(mans, fixedpoint.Unpack(plain, plan.bits, t)...)
		remaining -= t
	}
	if len(mans) != numBins {
		return nil, fmt.Errorf("core: unpacked %d prefixes, want %d", len(mans), numBins)
	}
	// The first prefix carries the shift; bin_0 = prefix_0 - shiftMan and
	// bin_k = prefix_k - prefix_{k-1}, exact in the integer domain.
	shiftNum, err := codec.EncodeAt(plan.shift, plan.exp)
	if err != nil {
		return nil, err
	}
	prev := shiftNum.Man
	binSums = make([]float64, numBins)
	for k, m := range mans {
		diff := new(big.Int).Sub(m, prev)
		binSums[k] = fixedpoint.DecodeSigned(diff, codec.Base(), plan.exp)
		prev = m
	}
	return binSums, nil
}

// encryptShift produces the encryption of shift·B^exp used to seed packed
// prefix sums. The shift is public (derived from N and the loss bound), so
// its encryption carries no secret.
func encryptShift(codec *fixedpoint.Codec, plan packPlan) (he.Ciphertext, error) {
	num, err := codec.EncodeAt(plan.shift, plan.exp)
	if err != nil {
		return nil, err
	}
	return codec.Scheme().Encrypt(num.Man)
}
