package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"vf2boost/internal/checkpoint"
)

// Checkpoint/resume: each party snapshots its training state into its own
// checkpoint.Store after every completed boosting round, and a restarted
// session resumes from the newest mutually-consistent round. The snapshot
// is per-party because the state is: Party B holds the tree structure,
// leaf weights and margins; each passive party holds only its private
// split payloads. The resume round is arbitrated at session setup via
// MsgResume (see messages.go): B takes the minimum of its own newest
// snapshot and every passive party's announced round, rewinds to it, and
// replays from there — parties that were ahead truncate the replayed
// trees and rebuild them deterministically.

// Roles recorded in a TrainState.
const (
	RoleActive  = "active"
	RolePassive = "passive"
)

// TrainState is one party's checkpoint payload after `Trees` completed
// boosting rounds.
type TrainState struct {
	// Fingerprint guards against resuming under a different
	// configuration; see Config.Fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Role is RoleActive or RolePassive; Party is the party index
	// (passive index, or the party count minus one for B).
	Role  string `json:"role"`
	Party int    `json:"party"`
	// Trees is the number of completed rounds this snapshot captures.
	Trees int `json:"trees"`
	// Fragment is the party's model fragment after those rounds — for B
	// the full tree structure and leaf weights, for a passive party its
	// private split records.
	Fragment *PartyModel `json:"fragment"`
	// BaseScore is the model's base margin (Party B only).
	BaseScore float64 `json:"base_score"`
	// Margins are Party B's per-instance margins after those rounds —
	// the only numeric training state not reconstructible from the
	// fragment.
	Margins []float64 `json:"margins,omitempty"`
	// BackOff is Party B's adaptive-optimism carry-over (see
	// activeParty.backOff); snapshotting it keeps a resumed run on the
	// exact protocol schedule of an uninterrupted one.
	BackOff bool `json:"back_off,omitempty"`
}

// Fingerprint hashes every configuration field that shapes the per-round
// computation, so a resume under a changed configuration fails loudly
// instead of silently mixing models. Trees is excluded on purpose
// (training may legitimately be extended on resume), as are Workers and
// WireCodec, which affect scheduling and framing but not results.
func (c Config) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "lr=%g depth=%d bins=%d split=%+v loss=%T scheme=%s keybits=%d exp=%d/%d",
		c.LearningRate, c.MaxDepth, c.MaxBins, c.Split, c.Loss, c.Scheme, c.KeyBits, c.BaseExp, c.ExpSpread)
	fmt.Fprintf(h, " opt=%t/%t/%t/%t/%t/%t/%t batch=%d seed=%d",
		c.BlasterEncryption, c.ReorderedAccumulation, c.OptimisticSplit, c.HistogramPacking,
		c.AdaptivePacking, c.AdaptiveOptimism, c.HistogramSubtraction, c.BatchSize, c.Seed)
	if c.Objective != nil && c.Objective.Name() != "binary" {
		// A non-default objective reshapes every round (k class trees,
		// k×n margins); binary sessions keep the historical fingerprint.
		fmt.Fprintf(h, " obj=%s/%d", c.Objective.Name(), c.Objective.NumOutputs())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunOption customizes RunActiveParty / RunPassiveParty.
type RunOption func(*runOpts)

type runOpts struct {
	ckpt   *checkpoint.Store
	resume bool
}

// RunWithCheckpoints snapshots the party's training state into the store
// after every completed boosting round.
func RunWithCheckpoints(st *checkpoint.Store) RunOption {
	return func(o *runOpts) { o.ckpt = st }
}

// RunWithResume makes the party restore the newest valid snapshot from
// its checkpoint store (a no-op when the store is empty) and take part in
// the resume-round arbitration at session setup.
func RunWithResume() RunOption {
	return func(o *runOpts) { o.resume = true }
}

// enableCheckpoints attaches a store to a passive party and, on resume,
// restores its newest valid fragment.
func (p *passiveParty) enableCheckpoints(st *checkpoint.Store, resume bool) error {
	p.ckpt = st
	if st == nil || !resume {
		return nil
	}
	var ts TrainState
	seq, err := st.LoadLatest(&ts)
	if err != nil || seq == 0 {
		return err
	}
	if ts.Fingerprint != p.cfg.Fingerprint() {
		return fmt.Errorf("core: party %d checkpoint %d was written under a different configuration", p.index, seq)
	}
	if ts.Role != RolePassive || ts.Party != p.index {
		return fmt.Errorf("core: party %d checkpoint %d belongs to %s party %d", p.index, seq, ts.Role, ts.Party)
	}
	if ts.Fragment == nil || len(ts.Fragment.Trees) != ts.Trees {
		return fmt.Errorf("core: party %d checkpoint %d fragment is inconsistent", p.index, seq)
	}
	ts.Fragment.Party = p.index
	p.model = ts.Fragment
	return nil
}

// saveCheckpoint snapshots the passive party's fragment after round
// `trees` (1-based count of completed rounds).
func (p *passiveParty) saveCheckpoint(trees int) error {
	// Pad so the fragment length states the completed round count even
	// when this party owned no split in the later trees.
	for len(p.model.Trees) < trees {
		p.model.Trees = append(p.model.Trees, NewFedTree(rootID))
	}
	return p.ckpt.Save(trees, TrainState{
		Fingerprint: p.cfg.Fingerprint(),
		Role:        RolePassive,
		Party:       p.index,
		Trees:       trees,
		Fragment:    p.model,
	})
}

// enableCheckpoints attaches a store to Party B. The actual resume point
// is chosen in train() after setup, when every passive party's announced
// round is known.
func (b *activeParty) enableCheckpoints(st *checkpoint.Store, resume bool) {
	b.ckpt = st
	b.resume = resume
}

// resumePoint picks the round to resume from: the newest of B's own
// valid snapshots, clamped to the slowest passive party's announcement,
// stepping further back when intermediate snapshots are missing or
// invalid. It returns round 0 (fresh start) when nothing usable exists.
func (b *activeParty) resumePoint() (int, *TrainState, error) {
	k := b.outputs
	limit := b.cfg.Trees * k
	for _, rt := range b.resumeTrees {
		if rt < limit {
			limit = rt
		}
	}
	var probe TrainState
	latest, err := b.ckpt.LoadLatest(&probe)
	if err != nil {
		return 0, nil, err
	}
	if latest < limit {
		limit = latest
	}
	// Checkpoints exist only at round boundaries — multiples of the
	// output count — so clamp down and step back a round at a time.
	limit -= limit % k
	n := b.rows * k
	for t := limit; t > 0; t -= k {
		var ts TrainState
		if err := b.ckpt.Load(t, &ts); err != nil {
			continue // missing or corrupt; step back one round
		}
		if ts.Fingerprint != b.cfg.Fingerprint() {
			return 0, nil, fmt.Errorf("core: party B checkpoint %d was written under a different configuration", t)
		}
		if ts.Role != RoleActive || ts.Fragment == nil ||
			len(ts.Fragment.Trees) != t || len(ts.Margins) != n || ts.Trees != t {
			return 0, nil, fmt.Errorf("core: party B checkpoint %d is inconsistent", t)
		}
		return t, &ts, nil
	}
	return 0, nil, nil
}

// saveCheckpoint snapshots Party B's state after `trees` class trees (a
// round boundary, so trees is a multiple of the output count). A
// multi-output snapshot stores the k×n margin matrix flattened
// class-major; the single-output layout is unchanged.
func (b *activeParty) saveCheckpoint(trees int) error {
	margins := b.margins
	if b.outputs > 1 {
		margins = make([]float64, 0, b.outputs*b.rows)
		for _, row := range b.marginsAll {
			margins = append(margins, row...)
		}
	}
	return b.ckpt.Save(trees, TrainState{
		Fingerprint: b.cfg.Fingerprint(),
		Role:        RoleActive,
		Party:       len(b.links),
		Trees:       trees,
		Fragment:    b.model,
		BaseScore:   0,
		Margins:     margins,
		BackOff:     b.backOff,
	})
}
