package core

import (
	"math"
	"testing"
)

// TestAdaptiveOptimismBacksOff: with a feature-rich passive party the
// dirty ratio exceeds 1/2 on the first tree, so adaptive optimism must
// fall back to the sequential schedule and accumulate fewer dirty nodes
// than pure optimism — with an identical model.
func TestAdaptiveOptimismBacksOff(t *testing.T) {
	_, parts := twoPartyData(t, 500, 14, 2, 1, true, 41)
	pure := quickConfig(SchemeMock)
	pure.Trees = 4
	pure.OptimisticSplit = true
	pure.AdaptiveOptimism = false
	adaptive := pure
	adaptive.AdaptiveOptimism = true

	mPure, sPure := trainFed(t, parts, pure)
	mAdap, sAdap := trainFed(t, parts, adaptive)

	if sPure.Stats().DirtyNodes() == 0 {
		t.Fatal("test premise broken: pure optimism saw no dirty nodes")
	}
	if sAdap.Stats().DirtyNodes() >= sPure.Stats().DirtyNodes() {
		t.Errorf("adaptive optimism did not reduce dirty nodes: %d vs %d",
			sAdap.Stats().DirtyNodes(), sPure.Stats().DirtyNodes())
	}
	a, err := mPure.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mAdap.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatal("adaptive optimism changed the model")
		}
	}
}

// TestAdaptivePackingEquivalence: always-pack and adaptive-pack must
// produce the same model; adaptive just changes the wire format of sparse
// features.
func TestAdaptivePackingEquivalence(t *testing.T) {
	_, parts := twoPartyData(t, 400, 10, 4, 0.3, false, 42)
	always := quickConfig(SchemeMock)
	always.HistogramPacking = true
	always.AdaptivePacking = false
	adaptive := always
	adaptive.AdaptivePacking = true

	mA, _ := trainFed(t, parts, always)
	mB, _ := trainFed(t, parts, adaptive)
	a, err := mA.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mB.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatal("adaptive packing changed the model")
		}
	}
}

// TestAdaptivePackingReducesDecryptionsOnSparse: on very sparse data the
// adaptive rule must ship mostly-empty features unpacked, cutting Party
// B's decryption count below the always-pack configuration.
func TestAdaptivePackingReducesDecryptionsOnSparse(t *testing.T) {
	_, parts := twoPartyData(t, 300, 30, 4, 0.05, false, 43)
	always := quickConfig(SchemePaillier)
	always.Trees = 1
	always.HistogramPacking = true
	always.AdaptivePacking = false
	adaptive := always
	adaptive.AdaptivePacking = true

	_, sAlways := trainFed(t, parts, always)
	_, sAdaptive := trainFed(t, parts, adaptive)
	da, db := sAlways.Stats().DecryptTime(), sAdaptive.Stats().DecryptTime()
	if db >= da {
		t.Logf("decrypt time always=%v adaptive=%v (timing-based, informational)", da, db)
	}
}
