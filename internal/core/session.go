package core

import (
	"crypto/rand"
	"fmt"
	"time"

	"vf2boost/internal/dataset"
	"vf2boost/internal/he"
	"vf2boost/internal/mq"
	"vf2boost/internal/trace"
)

// Session wires one active and one or more passive parties through a
// message broker and runs federated training in-process. The parties
// exchange exactly the same wire messages whether the broker is local,
// WAN-shaped, or fronted by the TCP gateway — the protocol engines cannot
// tell the difference.
type Session struct {
	cfg    Config
	parts  []*dataset.Dataset
	stats  *Stats
	shaper *mq.Shaper
	broker *mq.Broker
	dec    he.Decryptor
	rec    *trace.Recorder

	perTreeTime []time.Duration
}

// SessionOption customizes a session.
type SessionOption func(*Session)

// WithWAN routes all cross-party traffic through a shaped link
// (bandwidth in Mbps, plus a fixed per-message latency), reproducing the
// paper's 300 Mbps public network. Each message is charged the gateway's
// framing overhead on top of its payload, so the simulated byte counts
// match what the TCP deployment puts on the wire.
func WithWAN(bandwidthMbps float64, latency time.Duration) SessionOption {
	return func(s *Session) {
		s.shaper = mq.NewShaper(bandwidthMbps, latency)
		s.shaper.SetPerMessageOverhead(mq.FrameOverhead)
	}
}

// WithDecryptor injects a pre-generated key pair, so benchmarks do not
// pay key generation per run.
func WithDecryptor(dec he.Decryptor) SessionOption {
	return func(s *Session) { s.dec = dec }
}

// WithTrace records per-phase Gantt spans into the recorder — the
// analysis instrument behind the paper's Figures 4 and 5.
func WithTrace(r *trace.Recorder) SessionOption {
	return func(s *Session) { s.rec = r }
}

// NewSession validates the per-party datasets (passive parties first, the
// labeled Party B last) and prepares a session.
func NewSession(parts []*dataset.Dataset, cfg Config, opts ...SessionOption) (*Session, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(parts) < 2 {
		return nil, fmt.Errorf("core: need at least two parties, got %d", len(parts))
	}
	rows := parts[0].Rows()
	for i, p := range parts {
		if p.Rows() != rows {
			return nil, fmt.Errorf("core: party %d has %d rows, want %d (align instances with PSI first)", i, p.Rows(), rows)
		}
		if i < len(parts)-1 && p.Labels != nil {
			return nil, fmt.Errorf("core: passive party %d must not hold labels", i)
		}
	}
	if parts[len(parts)-1].Labels == nil {
		return nil, fmt.Errorf("core: the last party (Party B) must hold the labels")
	}
	s := &Session{cfg: cfg, parts: parts, stats: &Stats{}}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Stats returns the session's phase and protocol counters.
func (s *Session) Stats() *Stats { return s.stats }

// Shaper returns the WAN shaper, if any, for byte accounting.
func (s *Session) Shaper() *mq.Shaper { return s.shaper }

// Broker returns the broker for byte accounting after Train.
func (s *Session) Broker() *mq.Broker { return s.broker }

// PerTreeTimes returns the wall time of each completed boosting round.
func (s *Session) PerTreeTimes() []time.Duration { return s.perTreeTime }

// Train runs the full federated training and returns the glued model.
func (s *Session) Train() (*FederatedModel, error) {
	if s.dec == nil {
		dec, err := newDecryptor(s.cfg)
		if err != nil {
			return nil, err
		}
		s.dec = dec
	}

	var brokerOpts []mq.Option
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		return nil, fmt.Errorf("core: drawing broker secret: %w", err)
	}
	brokerOpts = append(brokerOpts, mq.WithAuth(secret))
	if s.shaper != nil {
		brokerOpts = append(brokerOpts, mq.WithShaper(s.shaper))
	}
	s.broker = mq.NewBroker(brokerOpts...)
	defer s.broker.Close()

	numPassive := len(s.parts) - 1
	bLinks := make([]*link, numPassive)
	type result struct {
		idx int
		pm  *PartyModel
		err error
	}
	results := make(chan result, numPassive)

	for i := 0; i < numPassive; i++ {
		b2a := fmt.Sprintf("b2a%d", i)
		a2b := fmt.Sprintf("a%d2b", i)
		bOut, err := s.broker.Producer(b2a, mq.Token(secret, b2a))
		if err != nil {
			return nil, err
		}
		bIn, err := s.broker.Consumer(a2b, mq.Token(secret, a2b))
		if err != nil {
			return nil, err
		}
		aOut, err := s.broker.Producer(a2b, mq.Token(secret, a2b))
		if err != nil {
			return nil, err
		}
		aIn, err := s.broker.Consumer(b2a, mq.Token(secret, b2a))
		if err != nil {
			return nil, err
		}
		// B pins the configured codec (it sends the first frame of the
		// session); the passive side adapts to whatever B speaks.
		bLinks[i] = newLinkPair(
			pairTransport{send: bOut.Send, recv: bIn.Receive},
			pairTransport{send: nil, recv: bIn.Receive},
			s.cfg.wireCodec(), false)
		aLink := newLinkPair(
			pairTransport{send: aOut.Send, recv: aIn.Receive},
			pairTransport{send: nil, recv: aIn.Receive},
			s.cfg.wireCodec(), true)
		party, err := newPassiveParty(i, s.parts[i], s.cfg, aLink, s.stats)
		if err != nil {
			return nil, err
		}
		party.rec = s.rec
		go func(i int) {
			pm, err := party.run()
			results <- result{idx: i, pm: pm, err: err}
		}(i)
	}

	active, err := newActiveParty(s.parts[len(s.parts)-1], s.cfg, s.dec, bLinks, s.stats)
	if err != nil {
		return nil, err
	}
	active.rec = s.rec
	bModel, err := active.train()
	if err != nil {
		return nil, err
	}
	s.perTreeTime = active.perTreeTime

	models := make([]*PartyModel, len(s.parts))
	models[len(s.parts)-1] = bModel
	for i := 0; i < numPassive; i++ {
		r := <-results
		if r.err != nil {
			return nil, r.err
		}
		models[r.idx] = r.pm
	}
	// Pad passive fragments so every party indexes cfg.Trees trees.
	for _, pm := range models {
		for len(pm.Trees) < s.cfg.Trees {
			pm.Trees = append(pm.Trees, NewFedTree(rootID))
		}
	}

	splits := make([]int, len(s.parts))
	splits[len(s.parts)-1] = int(s.stats.SplitsByB())
	// Per-passive-party split counts come from their fragments.
	for i := 0; i < numPassive; i++ {
		n := 0
		for _, t := range models[i].Trees {
			for _, nd := range t.Nodes {
				if nd.Owner == i {
					n++
				}
			}
		}
		splits[i] = n
	}

	return &FederatedModel{
		Parties:       models,
		LearningRate:  s.cfg.LearningRate,
		BaseScore:     0,
		SplitsByParty: splits,
	}, nil
}

// RunPassiveParty runs a single passive party over an arbitrary transport
// (for example the mq TCP gateway), blocking until Party B shuts the
// session down. It returns the party's private model fragment.
func RunPassiveParty(index int, data *dataset.Dataset, cfg Config, tr Transport) (*PartyModel, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	p, err := newPassiveParty(index, data, cfg, newLinkPair(tr, tr, cfg.wireCodec(), true), &Stats{})
	if err != nil {
		return nil, err
	}
	return p.run()
}

// RunActiveParty runs Party B over arbitrary transports, one per passive
// party, and returns B's model fragment plus the run statistics. In this
// deployment each party keeps its own fragment; assemble a FederatedModel
// only if the fragments are intentionally co-located.
func RunActiveParty(data *dataset.Dataset, cfg Config, trs []Transport) (*PartyModel, *Stats, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	dec, err := newDecryptor(cfg)
	if err != nil {
		return nil, nil, err
	}
	links := make([]*link, len(trs))
	for i, tr := range trs {
		// B initiates, so it pins the configured codec.
		links[i] = NewLinkCodec(tr, cfg.wireCodec())
	}
	stats := &Stats{}
	b, err := newActiveParty(data, cfg, dec, links, stats)
	if err != nil {
		return nil, nil, err
	}
	pm, err := b.train()
	if err != nil {
		return nil, nil, err
	}
	return pm, stats, nil
}

// newDecryptor builds the configured cryptosystem.
func newDecryptor(cfg Config) (he.Decryptor, error) {
	switch cfg.Scheme {
	case SchemePaillier:
		return he.NewPaillier(cfg.KeyBits, 0)
	case SchemeMock:
		return he.NewMock(max(cfg.KeyBits, 256)), nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", cfg.Scheme)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
