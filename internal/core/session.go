package core

import (
	"crypto/rand"
	"fmt"
	"path/filepath"
	"time"

	"vf2boost/internal/checkpoint"
	"vf2boost/internal/dataset"
	"vf2boost/internal/fault"
	"vf2boost/internal/fault/fsfault"
	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
	"vf2boost/internal/mq"
	"vf2boost/internal/trace"
)

// Session wires one active and one or more passive parties through a
// message broker and runs federated training in-process. The parties
// exchange exactly the same wire messages whether the broker is local,
// WAN-shaped, or fronted by the TCP gateway — the protocol engines cannot
// tell the difference.
type Session struct {
	cfg   Config
	parts []*dataset.Dataset
	// views/labels replace parts when the session trains over pre-binned
	// views (the out-of-core path): passive views first, B's view last,
	// labels belonging to the last view.
	views  []gbdt.BinView
	labels []float64
	stats  *Stats
	shaper *mq.Shaper
	broker *mq.Broker
	dec    he.Decryptor
	rec    *trace.Recorder

	chaos   *fault.Config
	res     *ResilientConfig
	ckptDir string
	ckptFS  fsfault.FS
	resume  bool

	// wrapped collects the session's resilient transports for stats and
	// shutdown.
	wrapped []*ResilientTransport

	// crypto is Party B's cipher-operation counter (encryptions,
	// decryptions, homomorphic adds), populated by Train.
	crypto *fixedpoint.Stats

	perTreeTime []time.Duration
}

// SessionOption customizes a session.
type SessionOption func(*Session)

// WithWAN routes all cross-party traffic through a shaped link
// (bandwidth in Mbps, plus a fixed per-message latency), reproducing the
// paper's 300 Mbps public network. Each message is charged the gateway's
// framing overhead on top of its payload, so the simulated byte counts
// match what the TCP deployment puts on the wire.
func WithWAN(bandwidthMbps float64, latency time.Duration) SessionOption {
	return func(s *Session) {
		s.shaper = mq.NewShaper(bandwidthMbps, latency)
		s.shaper.SetPerMessageOverhead(mq.FrameOverhead)
	}
}

// WithDecryptor injects a pre-generated key pair, so benchmarks do not
// pay key generation per run.
func WithDecryptor(dec he.Decryptor) SessionOption {
	return func(s *Session) { s.dec = dec }
}

// WithTrace records per-phase Gantt spans into the recorder — the
// analysis instrument behind the paper's Figures 4 and 5.
func WithTrace(r *trace.Recorder) SessionOption {
	return func(s *Session) { s.rec = r }
}

// WithChaos injects seeded faults (drops, delays, duplicates, reorders,
// and at most one hard disconnect per link) into every cross-party link,
// and wraps each link in the resilient layer so training still converges
// to the fault-free model. The hard disconnect is applied to the passive
// side of each link; its redial path re-attaches to the same topics with
// the disconnect removed. Per-link fault schedules derive distinct seeds
// from cfg.Seed, so a session's chaos is reproducible end to end.
func WithChaos(cfg fault.Config) SessionOption {
	return func(s *Session) { c := cfg; s.chaos = &c }
}

// WithResilience wraps every cross-party link in the retry/heartbeat
// layer with the given tuning, independent of fault injection.
func WithResilience(cfg ResilientConfig) SessionOption {
	return func(s *Session) { c := cfg; s.res = &c }
}

// WithCheckpoints snapshots every party's training state under dir after
// each completed tree (dir/active for Party B, dir/passive<i> per passive
// party).
func WithCheckpoints(dir string) SessionOption {
	return func(s *Session) { s.ckptDir = dir }
}

// WithCheckpointFS routes every checkpoint store's I/O through the given
// filesystem — the storage counterpart of WithChaos, used to inject disk
// faults into the snapshot path and assert that recovery still converges.
func WithCheckpointFS(fsys fsfault.FS) SessionOption {
	return func(s *Session) { s.ckptFS = fsys }
}

// WithResume resumes training from the newest mutually-consistent
// checkpoint under the WithCheckpoints directory; a no-op when no valid
// checkpoint exists.
func WithResume() SessionOption {
	return func(s *Session) { s.resume = true }
}

// NewSession validates the per-party datasets (passive parties first, the
// labeled Party B last) and prepares a session.
func NewSession(parts []*dataset.Dataset, cfg Config, opts ...SessionOption) (*Session, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(parts) < 2 {
		return nil, fmt.Errorf("core: need at least two parties, got %d", len(parts))
	}
	rows := parts[0].Rows()
	for i, p := range parts {
		if p.Rows() != rows {
			return nil, fmt.Errorf("core: party %d has %d rows, want %d (align instances with PSI first)", i, p.Rows(), rows)
		}
		if i < len(parts)-1 && p.Labels != nil {
			return nil, fmt.Errorf("core: passive party %d must not hold labels", i)
		}
	}
	if parts[len(parts)-1].Labels == nil {
		return nil, fmt.Errorf("core: the last party (Party B) must hold the labels")
	}
	s := &Session{cfg: cfg, parts: parts, stats: &Stats{}}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// NewViewSession prepares a session over pre-binned views instead of
// datasets — the out-of-core entry point, where each party's features
// live in a disk-backed shard store and no Dataset is ever materialized.
// Views are ordered passive parties first; labels belong to the last
// view (Party B).
func NewViewSession(views []gbdt.BinView, labels []float64, cfg Config, opts ...SessionOption) (*Session, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(views) < 2 {
		return nil, fmt.Errorf("core: need at least two parties, got %d", len(views))
	}
	rows := views[0].Rows()
	for i, v := range views {
		if v.Rows() != rows {
			return nil, fmt.Errorf("core: party %d has %d rows, want %d (align instances with PSI first)", i, v.Rows(), rows)
		}
	}
	if len(labels) != rows {
		return nil, fmt.Errorf("core: %d labels for %d rows", len(labels), rows)
	}
	s := &Session{cfg: cfg, views: views, labels: labels, stats: &Stats{}}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// numParties returns the party count regardless of which backing
// (datasets or views) the session was built over.
func (s *Session) numParties() int {
	if s.views != nil {
		return len(s.views)
	}
	return len(s.parts)
}

// Stats returns the session's phase and protocol counters.
func (s *Session) Stats() *Stats { return s.stats }

// Crypto returns Party B's cipher-operation counters (encryptions,
// decryptions, homomorphic adds), available after Train. Vectorized
// backends show their ciphertext-count reduction here: one encryption per
// lane-packed window instead of two per instance.
func (s *Session) Crypto() *fixedpoint.Stats { return s.crypto }

// Shaper returns the WAN shaper, if any, for byte accounting.
func (s *Session) Shaper() *mq.Shaper { return s.shaper }

// Broker returns the broker for byte accounting after Train.
func (s *Session) Broker() *mq.Broker { return s.broker }

// PerTreeTimes returns the wall time of each completed boosting round.
func (s *Session) PerTreeTimes() []time.Duration { return s.perTreeTime }

// LinkStats returns the retransmit/redial/heartbeat counters of every
// resilient transport the session created (two per passive party: B side
// then passive side), or nil when the resilient layer was not enabled.
func (s *Session) LinkStats() []ResilientStats {
	out := make([]ResilientStats, len(s.wrapped))
	for i, r := range s.wrapped {
		out[i] = r.Stats()
	}
	return out
}

// Train runs the full federated training and returns the glued model.
func (s *Session) Train() (*FederatedModel, error) {
	if s.dec == nil {
		dec, err := newDecryptor(s.cfg)
		if err != nil {
			return nil, err
		}
		s.dec = dec
	}

	var brokerOpts []mq.Option
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		return nil, fmt.Errorf("core: drawing broker secret: %w", err)
	}
	brokerOpts = append(brokerOpts, mq.WithAuth(secret))
	if s.shaper != nil {
		brokerOpts = append(brokerOpts, mq.WithShaper(s.shaper))
	}
	s.broker = mq.NewBroker(brokerOpts...)
	defer s.broker.Close()
	defer func() {
		for _, r := range s.wrapped {
			r.Close()
		}
	}()

	// Chaos implies the resilient layer (injected faults must be healed);
	// an explicit WithResilience enables it on a clean link too.
	useResilient := s.chaos != nil || s.res != nil
	rcfg := DefaultResilientConfig()
	if s.res != nil {
		rcfg = *s.res
		rcfg.normalize()
	}

	numPassive := s.numParties() - 1
	var stores struct {
		active  *checkpoint.Store
		passive []*checkpoint.Store
	}
	if s.ckptDir != "" {
		st, err := checkpoint.OpenFS(filepath.Join(s.ckptDir, "active"), s.ckptFS)
		if err != nil {
			return nil, err
		}
		stores.active = st
		stores.passive = make([]*checkpoint.Store, numPassive)
		for i := 0; i < numPassive; i++ {
			if stores.passive[i], err = checkpoint.OpenFS(filepath.Join(s.ckptDir, fmt.Sprintf("passive%d", i)), s.ckptFS); err != nil {
				return nil, err
			}
		}
	}

	bLinks := make([]*link, numPassive)
	type result struct {
		idx int
		pm  *PartyModel
		err error
	}
	results := make(chan result, numPassive)

	for i := 0; i < numPassive; i++ {
		idx := i
		b2a := fmt.Sprintf("b2a%d", idx)
		a2b := fmt.Sprintf("a%d2b", idx)
		newEndpoint := func(sendTopic, recvTopic string) (Transport, error) {
			prod, err := s.broker.Producer(sendTopic, mq.Token(secret, sendTopic))
			if err != nil {
				return nil, err
			}
			cons, err := s.broker.Consumer(recvTopic, mq.Token(secret, recvTopic))
			if err != nil {
				return nil, err
			}
			return consumerEndpoint{send: prod.Send, sendCtx: prod.SendContext, recv: cons.Receive, detach: cons.Close}, nil
		}
		bEnd, err := newEndpoint(b2a, a2b)
		if err != nil {
			return nil, err
		}
		aEnd, err := newEndpoint(a2b, b2a)
		if err != nil {
			return nil, err
		}
		if useResilient {
			// Fault schedules and retry jitter get distinct per-link
			// seeds; the hard disconnect (if any) hits the passive side,
			// whose redial re-attaches to the same topics without it.
			aDial := func() (Transport, error) {
				end, err := newEndpoint(a2b, b2a)
				if err != nil {
					return nil, err
				}
				if s.chaos != nil {
					cfg := s.chaos.WithoutCut()
					cfg.Seed = s.chaos.Seed + int64(4*idx+3)
					return fault.Wrap(end, cfg), nil
				}
				return end, nil
			}
			if s.chaos != nil {
				bCfg := s.chaos.WithoutCut()
				bCfg.Seed = s.chaos.Seed + int64(4*idx+1)
				bEnd = fault.Wrap(bEnd, bCfg)
				aCfg := *s.chaos
				aCfg.Seed = s.chaos.Seed + int64(4*idx+2)
				aEnd = fault.Wrap(aEnd, aCfg)
			}
			rb := rcfg
			rb.Seed = rcfg.Seed + int64(4*idx+1)
			bRes, err := NewResilientTransport(bEnd, nil, rb)
			if err != nil {
				return nil, err
			}
			ra := rcfg
			ra.Seed = rcfg.Seed + int64(4*idx+2)
			aRes, err := NewResilientTransport(aEnd, aDial, ra)
			if err != nil {
				bRes.Close()
				return nil, err
			}
			s.wrapped = append(s.wrapped, bRes, aRes)
			bEnd, aEnd = bRes, aRes
		}
		// B pins the configured codec (it sends the first frame of the
		// session); the passive side adapts to whatever B speaks.
		bLinks[i] = NewLinkCodec(bEnd, s.cfg.wireCodec())
		aLink := newLinkPair(aEnd, aEnd, s.cfg.wireCodec(), true)
		var party *passiveParty
		if s.views != nil {
			party, err = newPassivePartyView(i, s.views[i], s.cfg, aLink, s.stats)
		} else {
			party, err = newPassiveParty(i, s.parts[i], s.cfg, aLink, s.stats)
		}
		if err != nil {
			return nil, err
		}
		party.rec = s.rec
		if stores.passive != nil {
			if err := party.enableCheckpoints(stores.passive[i], s.resume); err != nil {
				return nil, err
			}
		}
		go func(i int) {
			pm, err := party.run()
			results <- result{idx: i, pm: pm, err: err}
		}(i)
	}

	var active *activeParty
	var err error
	if s.views != nil {
		active, err = newActivePartyView(s.views[len(s.views)-1], s.labels, s.cfg, s.dec, bLinks, s.stats)
	} else {
		active, err = newActiveParty(s.parts[len(s.parts)-1], s.cfg, s.dec, bLinks, s.stats)
	}
	if err != nil {
		return nil, err
	}
	active.rec = s.rec
	s.crypto = active.codec.Stats()
	if stores.active != nil {
		active.enableCheckpoints(stores.active, s.resume)
	}
	bModel, err := active.train()
	if err != nil {
		return nil, err
	}
	s.perTreeTime = active.perTreeTime

	numParties := s.numParties()
	models := make([]*PartyModel, numParties)
	models[numParties-1] = bModel
	for i := 0; i < numPassive; i++ {
		r := <-results
		if r.err != nil {
			return nil, r.err
		}
		models[r.idx] = r.pm
	}
	// Pad passive fragments so every party indexes the full class-tree
	// count (Trees rounds × k outputs).
	totalTrees := s.cfg.Trees * s.cfg.outputs()
	for _, pm := range models {
		for len(pm.Trees) < totalTrees {
			pm.Trees = append(pm.Trees, NewFedTree(rootID))
		}
	}

	// Per-party split counts come from the fragments rather than the run's
	// counters, so a resumed session (which replays only the remaining
	// rounds) still reports the totals of the whole model.
	splits := make([]int, numParties)
	for i := 0; i < numParties; i++ {
		n := 0
		for _, t := range models[i].Trees {
			for _, nd := range t.Nodes {
				if nd.Owner == i { // each fragment records its own splits
					n++
				}
			}
		}
		splits[i] = n
	}

	fm := &FederatedModel{
		Parties:       models,
		LearningRate:  s.cfg.LearningRate,
		BaseScore:     0,
		SplitsByParty: splits,
	}
	if k := s.cfg.outputs(); k > 1 {
		fm.NumOutputs = k
	}
	if name := s.cfg.Objective.Name(); name != "binary" {
		fm.Objective = name
	}
	return fm, nil
}

// RunPassiveParty runs a single passive party over an arbitrary transport
// (for example the mq TCP gateway), blocking until Party B shuts the
// session down. It returns the party's private model fragment.
func RunPassiveParty(index int, data *dataset.Dataset, cfg Config, tr Transport, opts ...RunOption) (*PartyModel, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	p, err := newPassiveParty(index, data, cfg, newLinkPair(tr, tr, cfg.wireCodec(), true), &Stats{})
	if err != nil {
		return nil, err
	}
	if o.ckpt != nil {
		if err := p.enableCheckpoints(o.ckpt, o.resume); err != nil {
			return nil, err
		}
	}
	return p.run()
}

// RunPassivePartyView runs a passive party over an already-binned view —
// the out-of-core variant of RunPassiveParty.
func RunPassivePartyView(index int, view gbdt.BinView, cfg Config, tr Transport, opts ...RunOption) (*PartyModel, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	p, err := newPassivePartyView(index, view, cfg, newLinkPair(tr, tr, cfg.wireCodec(), true), &Stats{})
	if err != nil {
		return nil, err
	}
	if o.ckpt != nil {
		if err := p.enableCheckpoints(o.ckpt, o.resume); err != nil {
			return nil, err
		}
	}
	return p.run()
}

// RunActiveParty runs Party B over arbitrary transports, one per passive
// party, and returns B's model fragment plus the run statistics. In this
// deployment each party keeps its own fragment; assemble a FederatedModel
// only if the fragments are intentionally co-located.
func RunActiveParty(data *dataset.Dataset, cfg Config, trs []Transport, opts ...RunOption) (*PartyModel, *Stats, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	dec, err := newDecryptor(cfg)
	if err != nil {
		return nil, nil, err
	}
	links := make([]*link, len(trs))
	for i, tr := range trs {
		// B initiates, so it pins the configured codec.
		links[i] = NewLinkCodec(tr, cfg.wireCodec())
	}
	stats := &Stats{}
	b, err := newActiveParty(data, cfg, dec, links, stats)
	if err != nil {
		return nil, nil, err
	}
	if o.ckpt != nil {
		b.enableCheckpoints(o.ckpt, o.resume)
	}
	pm, err := b.train()
	if err != nil {
		return nil, nil, err
	}
	return pm, stats, nil
}

// RunActivePartyView runs Party B over an already-binned view and its
// labels — the out-of-core variant of RunActiveParty.
func RunActivePartyView(view gbdt.BinView, labels []float64, cfg Config, trs []Transport, opts ...RunOption) (*PartyModel, *Stats, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	dec, err := newDecryptor(cfg)
	if err != nil {
		return nil, nil, err
	}
	links := make([]*link, len(trs))
	for i, tr := range trs {
		links[i] = NewLinkCodec(tr, cfg.wireCodec())
	}
	stats := &Stats{}
	b, err := newActivePartyView(view, labels, cfg, dec, links, stats)
	if err != nil {
		return nil, nil, err
	}
	if o.ckpt != nil {
		b.enableCheckpoints(o.ckpt, o.resume)
	}
	pm, err := b.train()
	if err != nil {
		return nil, nil, err
	}
	return pm, stats, nil
}

// newDecryptor builds the configured cryptosystem.
func newDecryptor(cfg Config) (he.Decryptor, error) {
	switch cfg.Scheme {
	case SchemePaillier:
		return he.NewPaillier(cfg.KeyBits, 0)
	case SchemeMock:
		return he.NewMock(max(cfg.KeyBits, 256)), nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", cfg.Scheme)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
