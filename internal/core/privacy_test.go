package core

import (
	"testing"
)

// TestFragmentsContainOnlyOwnedSplits: a passive party's model fragment
// must contain split payloads (feature, threshold) only for nodes it won;
// Party B's fragment must carry features/thresholds only for its own
// splits. This is the structural half of the privacy argument — the other
// half (what crosses the wire) is fixed by the message definitions, which
// give Feature/Bin only to the owning party.
func TestFragmentsContainOnlyOwnedSplits(t *testing.T) {
	_, parts := twoPartyData(t, 500, 8, 8, 1, true, 101)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 4
	m, _ := trainFed(t, parts, cfg)

	// Passive fragment: every non-root entry must be owned by party 0.
	for ti, tree := range m.Parties[0].Trees {
		for id, n := range tree.Nodes {
			if id == tree.Root && n.Owner == OwnerLeaf {
				continue // placeholder root of trees without A splits
			}
			if n.Owner != 0 {
				t.Errorf("tree %d: passive fragment contains node %d owned by %d", ti, id, n.Owner)
			}
			if n.Owner == 0 && n.Threshold == 0 && n.Feature == 0 {
				// A legitimate split on feature 0 can have threshold 0
				// only if the cut is exactly 0; tolerate but sanity-check
				// children exist.
				if n.Left == 0 || n.Right == 0 {
					t.Errorf("tree %d node %d: owned split without children", ti, id)
				}
			}
		}
	}

	// B fragment: nodes owned by the passive party must have no feature
	// payload (B must not learn A's thresholds).
	for ti, tree := range m.Parties[1].Trees {
		for id, n := range tree.Nodes {
			if n.Owner == 0 {
				if n.Feature != 0 || n.Threshold != 0 {
					t.Errorf("tree %d: B's fragment leaks A's split payload at node %d", ti, id)
				}
			}
		}
	}
}

// TestPassiveFragmentHasNoLeafWeights: leaf weights derive from label
// statistics and must stay with Party B.
func TestPassiveFragmentHasNoLeafWeights(t *testing.T) {
	_, parts := twoPartyData(t, 300, 6, 6, 1, true, 102)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 3
	m, _ := trainFed(t, parts, cfg)
	for ti, tree := range m.Parties[0].Trees {
		for id, n := range tree.Nodes {
			if n.Weight != 0 {
				t.Errorf("tree %d: passive fragment carries a leaf weight at node %d", ti, id)
			}
		}
	}
}
