package core

import (
	"encoding/gob"
	"fmt"
	"sort"

	"vf2boost/internal/dataset"
)

// Online scoring session protocol. Unlike the one-shot prediction exchange
// (predict.go), an online session is opened once and then serves an
// unbounded stream of scoring rounds: Party B pins a model version and a
// round ID per micro-batch, every passive party answers with routing
// bitmaps over just the requested rows, and the session ends with an
// explicit close handshake. The orchestration (registries, batching, HTTP)
// lives in internal/serve; this file owns the wire messages and the pure
// placement/routing computations both sides share.

// ScoreProtoVersion versions the online scoring wire protocol. A party
// that receives an unknown version answers with a structured error instead
// of guessing.
const ScoreProtoVersion = 1

// MsgScoreOpen starts an online scoring session. Session is an opaque
// identifier echoed in logs/traces on both sides.
type MsgScoreOpen struct {
	Proto   int
	Session string
}

// MsgScoreOpenAck answers MsgScoreOpen with the worker's shard shape and
// published model versions, or a structured error.
type MsgScoreOpenAck struct {
	Proto    int
	Party    int
	Rows     int
	Versions []uint64
	Error    string
}

// MsgScoreRequest asks for routing bitmaps over the listed shard rows,
// pinned to one model version. Round increases per request on a session
// and is echoed back, so a response can never be attributed to the wrong
// batch.
type MsgScoreRequest struct {
	Round   uint64
	Version uint64
	Rows    []int32
}

// MsgScoreResponse carries one routing bitmap per split node the worker's
// pinned-version fragment owns (bit k = k-th requested row goes left), or
// a structured error. An error fails the round but keeps the session open.
type MsgScoreResponse struct {
	Round   uint64
	Version uint64
	Party   int
	Nodes   []PredictNodeBits
	Error   string
}

// MsgScoreClose ends a scoring session cleanly; the worker acknowledges
// with MsgScoreCloseAck and returns.
type MsgScoreClose struct {
	Reason string
}

// MsgScoreCloseAck confirms session teardown.
type MsgScoreCloseAck struct{}

func init() {
	gob.Register(MsgScoreOpen{})
	gob.Register(MsgScoreOpenAck{})
	gob.Register(MsgScoreRequest{})
	gob.Register(MsgScoreResponse{})
	gob.Register(MsgScoreClose{})
	gob.Register(MsgScoreCloseAck{})
}

// RouteKey addresses one passive-owned split node in a routing table.
type RouteKey struct {
	Party int
	Tree  int
	Node  int32
}

// ScorePlacements computes the routing bitmaps a passive fragment
// contributes for the given shard rows: one PredictNodeBits per split node
// the fragment owns, with bit k describing the k-th requested row. A nil
// rows slice means "every shard row in order" (the one-shot prediction
// protocol's shape).
func ScorePlacements(fragment *PartyModel, data *dataset.Dataset, rows []int32) ([]PredictNodeBits, error) {
	n := len(rows)
	if rows == nil {
		n = data.Rows()
	}
	for _, r := range rows {
		if r < 0 || int(r) >= data.Rows() {
			return nil, fmt.Errorf("core: score row %d outside shard of %d rows", r, data.Rows())
		}
	}
	var out []PredictNodeBits
	bits := make([]bool, n)
	for ti, tree := range fragment.Trees {
		ids := make([]int32, 0, len(tree.Nodes))
		for id := range tree.Nodes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			nd := tree.Nodes[id]
			if nd.Owner != fragment.Party {
				continue
			}
			for k := 0; k < n; k++ {
				r := k
				if rows != nil {
					r = int(rows[k])
				}
				bits[k] = goesLeftRaw(data, r, nd.Feature, nd.Threshold)
			}
			out = append(out, PredictNodeBits{Tree: ti, Node: id, Bits: packBitmap(bits)})
		}
	}
	return out, nil
}

// RouteMargins routes every requested row through every tree of Party B's
// fragment, consulting routes (bit k = batch position k) for nodes owned
// by passive parties, and returns baseScore + learningRate·Σ leaf weights
// per row. A nil rows slice scores every shard row in order.
func RouteMargins(bFragment *PartyModel, learningRate, baseScore float64, bData *dataset.Dataset, rows []int32, routes map[RouteKey][]byte) ([]float64, error) {
	out, _, err := routeMargins(bFragment, learningRate, baseScore, bData, rows, routes, nil)
	return out, err
}

// RoutePartialMargins is RouteMargins for a degraded round: trees that
// contain a split node owned by any party in missing are skipped whole
// (a tree is either fully routed or not counted at all — no mid-tree
// guessing), and the returned count says how many were. With an empty
// missing set it is exactly RouteMargins.
func RoutePartialMargins(bFragment *PartyModel, learningRate, baseScore float64, bData *dataset.Dataset, rows []int32, routes map[RouteKey][]byte, missing map[int]bool) ([]float64, int, error) {
	return routeMargins(bFragment, learningRate, baseScore, bData, rows, routes, missing)
}

// routeMargins is the shared traversal behind RouteMargins and
// RoutePartialMargins. missing marks parties whose routing bits are
// unavailable this round; trees touching them are skipped and counted.
func routeMargins(bFragment *PartyModel, learningRate, baseScore float64, bData *dataset.Dataset, rows []int32, routes map[RouteKey][]byte, missing map[int]bool) ([]float64, int, error) {
	n := len(rows)
	if rows == nil {
		n = bData.Rows()
	}
	// A tree is routable only if every split it contains belongs to B or
	// to a present party; decide per tree, not per node, so partial
	// margins stay a sum of whole-tree contributions.
	skip := make([]bool, len(bFragment.Trees))
	skipped := 0
	if len(missing) > 0 {
		for ti, tree := range bFragment.Trees {
			for _, nd := range tree.Nodes {
				if nd.Owner != OwnerLeaf && nd.Owner != bFragment.Party && missing[nd.Owner] {
					skip[ti] = true
					skipped++
					break
				}
			}
		}
	}
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		r := k
		if rows != nil {
			r = int(rows[k])
		}
		if r < 0 || r >= bData.Rows() {
			return nil, 0, fmt.Errorf("core: score row %d outside shard of %d rows", r, bData.Rows())
		}
		margin := baseScore
		for ti, tree := range bFragment.Trees {
			if skip[ti] {
				continue
			}
			id := tree.Root
			for hop := 0; ; hop++ {
				if hop > 64 {
					return nil, 0, fmt.Errorf("core: scoring traversal of tree %d did not terminate", ti)
				}
				nd, ok := tree.Nodes[id]
				if !ok {
					return nil, 0, fmt.Errorf("core: tree %d missing node %d", ti, id)
				}
				if nd.Owner == OwnerLeaf {
					margin += learningRate * nd.Weight
					break
				}
				var left bool
				if nd.Owner == bFragment.Party {
					left = goesLeftRaw(bData, r, nd.Feature, nd.Threshold)
				} else {
					bits, ok := routes[RouteKey{Party: nd.Owner, Tree: ti, Node: id}]
					if !ok {
						return nil, 0, fmt.Errorf("core: no routing bits from party %d for tree %d node %d", nd.Owner, ti, id)
					}
					left = bitmapGet(bits, k)
				}
				if left {
					id = nd.Left
				} else {
					id = nd.Right
				}
			}
		}
		out[k] = margin
	}
	return out, skipped, nil
}
