package core

import (
	"bytes"
	"crypto/rand"
	"math"
	"testing"

	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
	"vf2boost/internal/metrics"
	"vf2boost/internal/paillier"
)

// sharedKey caches one small Paillier key for all tests in the package.
var sharedKey *paillier.PrivateKey

func testDecryptor(t testing.TB) he.Decryptor {
	t.Helper()
	if sharedKey == nil {
		k, err := paillier.GenerateKey(rand.Reader, 256)
		if err != nil {
			t.Fatal(err)
		}
		sharedKey = k
	}
	return he.NewPaillierFromKey(sharedKey, 0)
}

// twoPartyData builds a joined dataset plus its vertical split.
func twoPartyData(t testing.TB, rows, colsA, colsB int, density float64, dense bool, seed int64) (joined *dataset.Dataset, parts []*dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{
		Rows: rows, Cols: colsA + colsB, Density: density, Dense: dense, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err = d.VerticalSplit([]int{colsA, colsB}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, parts
}

// quickConfig keeps protocol tests fast.
func quickConfig(scheme string) Config {
	cfg := DefaultConfig()
	cfg.Trees = 3
	cfg.MaxDepth = 3
	cfg.MaxBins = 8
	cfg.Scheme = scheme
	cfg.KeyBits = 256
	cfg.BatchSize = 100
	return cfg
}

func trainFed(t testing.TB, parts []*dataset.Dataset, cfg Config, opts ...SessionOption) (*FederatedModel, *Session) {
	t.Helper()
	if cfg.Scheme == SchemePaillier {
		opts = append(opts, WithDecryptor(testDecryptor(t)))
	}
	s, err := NewSession(parts, cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Train()
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestConfigValidation(t *testing.T) {
	_, parts := twoPartyData(t, 50, 2, 2, 1, true, 1)
	bad := quickConfig(SchemeMock)
	bad.Trees = 0
	if _, err := NewSession(parts, bad); err == nil {
		t.Error("Trees=0 accepted")
	}
	bad = quickConfig("nope")
	if _, err := NewSession(parts, bad); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := NewSession(parts[:1], quickConfig(SchemeMock)); err == nil {
		t.Error("single party accepted")
	}
	// Label placement: passive party with labels must be rejected.
	if _, err := NewSession([]*dataset.Dataset{parts[1], parts[1]}, quickConfig(SchemeMock)); err == nil {
		t.Error("labeled passive party accepted")
	}
	// Party B without labels must be rejected.
	if _, err := NewSession([]*dataset.Dataset{parts[0], parts[0]}, quickConfig(SchemeMock)); err == nil {
		t.Error("unlabeled party B accepted")
	}
}

func TestMockFederatedLearns(t *testing.T) {
	joined, parts := twoPartyData(t, 1200, 6, 6, 1, true, 2)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 12
	cfg.MaxDepth = 4
	m, _ := trainFed(t, parts, cfg)
	margins, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := metrics.AUC(margins, joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.78 {
		t.Errorf("federated training AUC = %g, want >= 0.78", auc)
	}
}

// TestLossless is the paper's central claim: federated training achieves
// the same model as non-federated training on the co-located dataset.
// With the shared deterministic split order the trees are structurally
// identical up to fixed-point rounding, so the margins agree tightly.
func TestLosslessVsLocal(t *testing.T) {
	joined, parts := twoPartyData(t, 900, 5, 5, 1, true, 3)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 5
	fed, _ := trainFed(t, parts, cfg)

	lp := gbdt.DefaultParams()
	lp.NumTrees = cfg.Trees
	lp.MaxDepth = cfg.MaxDepth
	lp.MaxBins = cfg.MaxBins
	local, err := gbdt.Train(joined, lp)
	if err != nil {
		t.Fatal(err)
	}

	fedMargins, err := fed.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	localMargins := local.PredictAll(joined)
	maxDiff := 0.0
	for i := range fedMargins {
		if d := math.Abs(fedMargins[i] - localMargins[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-6 {
		t.Errorf("federated vs local margin divergence %g; trees are not equivalent", maxDiff)
	}
}

// TestSchemeEquivalence: the mock and Paillier schemes must produce
// bit-identical models (same encoding, exact modular arithmetic in both).
func TestSchemeEquivalence(t *testing.T) {
	_, parts := twoPartyData(t, 300, 4, 4, 1, true, 4)
	cfgM := quickConfig(SchemeMock)
	cfgP := quickConfig(SchemePaillier)
	mM, _ := trainFed(t, parts, cfgM)
	mP, _ := trainFed(t, parts, cfgP)
	marM, err := mM.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	marP, err := mP.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range marM {
		if marM[i] != marP[i] {
			t.Fatalf("mock and paillier models diverge at row %d: %g vs %g", i, marM[i], marP[i])
		}
	}
}

// TestAblationEquivalence: every combination of the four optimizations
// must produce exactly the same model — they change the schedule and the
// cipher layout, never the arithmetic.
func TestAblationEquivalence(t *testing.T) {
	_, parts := twoPartyData(t, 400, 8, 4, 0.5, false, 5)
	base := quickConfig(SchemeMock)
	base.BlasterEncryption = false
	base.ReorderedAccumulation = false
	base.OptimisticSplit = false
	base.HistogramPacking = false
	ref, _ := trainFed(t, parts, base)
	refMargins, err := ref.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}

	for mask := 1; mask < 16; mask++ {
		cfg := base
		cfg.BlasterEncryption = mask&1 != 0
		cfg.ReorderedAccumulation = mask&2 != 0
		cfg.OptimisticSplit = mask&4 != 0
		cfg.HistogramPacking = mask&8 != 0
		m, _ := trainFed(t, parts, cfg)
		margins, err := m.PredictAll(parts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range margins {
			if math.Abs(margins[i]-refMargins[i]) > 1e-9 {
				t.Fatalf("optimization mask %04b changed the model at row %d: %g vs %g",
					mask, i, margins[i], refMargins[i])
			}
		}
	}
}

// TestOptimisticDirtyNodes forces a feature-rich passive party so the
// optimistic protocol must roll back dirty nodes, and checks the result
// still matches the sequential protocol.
func TestOptimisticDirtyNodes(t *testing.T) {
	// Party A gets most features: high failure probability D_A/(D_A+D_B).
	_, parts := twoPartyData(t, 500, 14, 2, 1, true, 6)
	seq := quickConfig(SchemeMock)
	seq.OptimisticSplit = false
	opt := seq
	opt.OptimisticSplit = true

	mSeq, _ := trainFed(t, parts, seq)
	mOpt, sOpt := trainFed(t, parts, opt)

	if sOpt.Stats().DirtyNodes() == 0 {
		t.Error("expected dirty nodes with a feature-rich passive party")
	}
	marSeq, err := mSeq.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	marOpt, err := mOpt.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range marSeq {
		if math.Abs(marSeq[i]-marOpt[i]) > 1e-9 {
			t.Fatalf("optimistic protocol changed the model at row %d", i)
		}
	}
	// Splits landed on both parties.
	if mOpt.SplitsByParty[0] == 0 {
		t.Error("passive party won no splits despite owning most features")
	}
}

func TestPaillierEndToEndWithPacking(t *testing.T) {
	joined, parts := twoPartyData(t, 250, 4, 3, 1, true, 7)
	cfg := quickConfig(SchemePaillier)
	cfg.Trees = 2
	m, s := trainFed(t, parts, cfg)
	margins, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := metrics.LogLoss(margins, joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ll >= math.Ln2 {
		t.Errorf("paillier training did not reduce loss: %g", ll)
	}
	if s.Stats().TreesFinished() != int64(cfg.Trees) {
		t.Errorf("finished %d trees", s.Stats().TreesFinished())
	}
}

func TestMultiPartyTraining(t *testing.T) {
	d, err := dataset.Generate(dataset.GenOptions{Rows: 600, Cols: 12, Density: 1, Dense: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.VerticalSplit([]int{4, 4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 4
	m, _ := trainFed(t, parts, cfg)
	if m.NumParties() != 3 {
		t.Fatalf("model has %d parties", m.NumParties())
	}
	margins, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := metrics.AUC(margins, d.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.75 {
		t.Errorf("3-party AUC = %g", auc)
	}

	// Multi-party must equal local training on the joined table too.
	lp := gbdt.DefaultParams()
	lp.NumTrees = cfg.Trees
	lp.MaxDepth = cfg.MaxDepth
	lp.MaxBins = cfg.MaxBins
	local, err := gbdt.Train(d, lp)
	if err != nil {
		t.Fatal(err)
	}
	localMargins := local.PredictAll(d)
	for i := range margins {
		if math.Abs(margins[i]-localMargins[i]) > 1e-6 {
			t.Fatalf("3-party model diverges from local at row %d", i)
		}
	}
}

func TestMultiPartyOptimistic(t *testing.T) {
	d, err := dataset.Generate(dataset.GenOptions{Rows: 400, Cols: 12, Density: 1, Dense: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.VerticalSplit([]int{5, 5, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq := quickConfig(SchemeMock)
	seq.OptimisticSplit = false
	opt := seq
	opt.OptimisticSplit = true
	mSeq, _ := trainFed(t, parts, seq)
	mOpt, _ := trainFed(t, parts, opt)
	a, err := mSeq.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mOpt.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatal("multi-party optimistic model diverges from sequential")
		}
	}
}

// TestWorkerCountInvariance: the federated model must not depend on the
// per-party worker count — encrypted accumulation is exact modular
// arithmetic, so even the shard-merge order cannot perturb it.
func TestWorkerCountInvariance(t *testing.T) {
	_, parts := twoPartyData(t, 600, 6, 6, 1, true, 15)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 3
	cfg.Workers = 1
	m1, _ := trainFed(t, parts, cfg)
	cfg.Workers = 4
	m4, _ := trainFed(t, parts, cfg)
	a, err := m1.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m4.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("worker count changed the federated model at row %d", i)
		}
	}
}

func TestSessionWithWANShaper(t *testing.T) {
	_, parts := twoPartyData(t, 200, 3, 3, 1, true, 10)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 2
	m, s := trainFed(t, parts, cfg, WithWAN(10000, 0))
	if m == nil {
		t.Fatal("nil model")
	}
	if s.Shaper().Bytes() == 0 {
		t.Error("WAN shaper saw no traffic")
	}
	if s.Broker().BytesSent() == 0 {
		t.Error("broker accounted no bytes")
	}
}

func TestModelSaveLoad(t *testing.T) {
	_, parts := twoPartyData(t, 200, 3, 3, 1, true, 11)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 2
	m, _ := trainFed(t, parts, cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage model accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":1}`)); err == nil {
		t.Error("empty model accepted")
	}
}

func TestPredictValidation(t *testing.T) {
	_, parts := twoPartyData(t, 100, 3, 3, 1, true, 12)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 1
	m, _ := trainFed(t, parts, cfg)
	if _, err := m.PredictAll(parts[:1]); err == nil {
		t.Error("wrong party count accepted")
	}
	if _, err := m.PredictAll(nil); err == nil {
		t.Error("nil parts accepted")
	}
}

func TestRowMismatchRejected(t *testing.T) {
	_, parts := twoPartyData(t, 100, 3, 3, 1, true, 13)
	short := parts[0].SubRows([]int{0, 1, 2})
	if _, err := NewSession([]*dataset.Dataset{short, parts[1]}, quickConfig(SchemeMock)); err == nil {
		t.Error("misaligned instance counts accepted")
	}
}

// TestSingleExponentConfig: with ExpSpread=1 the encoding is
// deterministic (no obfuscation) and the re-ordered machinery
// degenerates gracefully; the model must match the obfuscated run.
func TestSingleExponentConfig(t *testing.T) {
	_, parts := twoPartyData(t, 300, 4, 4, 1, true, 16)
	plain := quickConfig(SchemeMock)
	plain.Trees = 2
	plain.ExpSpread = 1
	obf := plain
	obf.ExpSpread = 4

	mP, _ := trainFed(t, parts, plain)
	mO, _ := trainFed(t, parts, obf)
	a, err := mP.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := mO.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-bm[i]) > 1e-9 {
			t.Fatalf("exponent spread changed the model at row %d", i)
		}
	}
}

func TestStatsAreRecorded(t *testing.T) {
	_, parts := twoPartyData(t, 300, 4, 4, 1, true, 14)
	cfg := quickConfig(SchemePaillier)
	cfg.Trees = 2
	_, s := trainFed(t, parts, cfg)
	st := s.Stats()
	if st.EncryptTime() <= 0 {
		t.Error("no encryption time recorded")
	}
	if st.DecryptTime() <= 0 {
		t.Error("no decryption time recorded")
	}
	if st.BuildHistTime() <= 0 {
		t.Error("no histogram build time recorded")
	}
	if st.SplitsByA()+st.SplitsByB() == 0 {
		t.Error("no splits recorded")
	}
	if got := len(s.PerTreeTimes()); got != cfg.Trees {
		t.Errorf("recorded %d per-tree times, want %d", got, cfg.Trees)
	}
	r := st.RatioSplitsB()
	if r < 0 || r > 1 {
		t.Errorf("RatioSplitsB = %g", r)
	}
}
