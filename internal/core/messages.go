package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"sync/atomic"

	"vf2boost/internal/wire"
)

// Wire messages between Party B and each passive party. All cross-party
// traffic is encoded by a wire.Codec (the typed binary codec by default,
// gob as the negotiated fallback — see internal/wire and wirecodec.go) and
// carried over an mq topic pair, so the exact same engine runs in-process,
// through the WAN shaper, or across the TCP gateway.

// MsgSetup is sent once by B to each passive party before training: the
// public key material and the encoding parameters both sides must share.
type MsgSetup struct {
	Scheme    string
	N         []byte // public modulus (paillier) or width marker (mock)
	Bits      int
	BaseExp   int
	ExpSpread int
	PackBits  int
	Shift     float64 // histogram-packing shift N·Bound
	// ObfBase, when non-empty, is the DJN fast-obfuscation base
	// h = r₀^n mod n² derived by B at key setup; passive parties install
	// it and obfuscate with short-exponent h^x instead of full r^n.
	// ObfBits is the short-exponent length in bits. Empty/zero selects
	// the paper-exact baseline obfuscation.
	ObfBase []byte
	ObfBits int
	// Backend, when non-empty, names the negotiated he registry backend
	// and switches the session to the vectorized gradient/histogram path
	// with the lane geometry below (Slots lanes of LaneBits bits, Headroom
	// accumulation reserve). Empty means the scalar protocol: B leaves it
	// empty for 1-slot backends, so a scalar session's setup frame is
	// byte-identical to the pre-backend wire format and older peers
	// interoperate (mixed-fleet fallback).
	Backend  string
	Slots    int
	LaneBits int
	Headroom int
	// Objective, when non-empty, names the negotiated multi-output
	// training objective ("multiclass:3", "ranking:10", "squared") and
	// Outputs its per-round tree count k; the passive party must resolve
	// the name in its own objective registry or reject the session before
	// accepting any ciphertext. Empty means the default binary objective
	// (k = 1) — B leaves it empty for binary sessions, so their setup
	// frame stays byte-identical to the pre-objective wire format.
	Objective string
	Outputs   int
}

// MsgReady is a passive party's answer to MsgSetup: its shape, which B
// needs for the global feature order and the instance-alignment check.
type MsgReady struct {
	Party    int
	Features int
	Rows     int
}

// MsgResume follows MsgReady during session setup: it announces how many
// completed boosting rounds the passive party restored from its local
// checkpoint store (0 when starting fresh). Party B resumes from the
// minimum round across its own checkpoint and every passive party's
// announcement, so no party is ever asked to continue past state it
// lacks; parties ahead of the chosen round discard and rebuild the
// replayed trees deterministically.
type MsgResume struct {
	Party int
	Trees int
}

// MsgGradBatch carries encrypted gradient/hessian pairs for a contiguous
// instance range. With blaster encryption many small batches stream per
// tree; without it a single batch carries everything.
type MsgGradBatch struct {
	Tree  int
	Start int
	G     [][]byte
	H     [][]byte
	GExp  []int16
	HExp  []int16
	Last  bool
	// Class is the output index the pairs belong to in a multi-output
	// round (0 in binary sessions). A round of a k-output objective ships
	// k class streams back-to-back under the same shipment tree ID; Tree
	// stays the round's first global tree index (round·k) and the class
	// c histogram round runs under tree round·k+c. Class 0 encodes under
	// the original frame layout (the field decodes to its zero value), so
	// binary sessions stay byte-identical on the wire.
	Class int
}

// MsgVecGradBatch is the vectorized counterpart of MsgGradBatch: each
// ciphertext packs one window of Slots/2 consecutive ⟨g,h⟩ pairs
// (instance Start+w·k..Start+w·k+k−1 in window w), lane-encoded at the
// fixed exponent BaseExp with the negotiated offset shift. Start is in
// instances and must be window-aligned.
type MsgVecGradBatch struct {
	Tree  int
	Start int
	Cts   [][]byte
	Last  bool
}

// MsgHistograms carries a passive party's encrypted histograms for one or
// more nodes of one layer.
type MsgHistograms struct {
	Tree  int
	Layer int
	Nodes []NodeHist
}

// NodeHist is the encrypted histogram of one node over the sender's
// features.
type NodeHist struct {
	Node  int32
	Feats []FeatHist
}

// FeatHist is one feature's bins. Exactly one representation is used:
// per-bin ciphertexts with per-bin exponents (unpacked), or packed
// shifted prefix sums at a single exponent.
type FeatHist struct {
	NumBins int
	// Unpacked representation.
	GBins [][]byte
	HBins [][]byte
	GExp  []int16
	HExp  []int16
	// Packed representation: ceil(NumBins/t) ciphertexts each for G and
	// H prefix sums, shifted into the non-negative range.
	Packed  bool
	PackedG [][]byte
	PackedH [][]byte
	Exp     int16
	// Vectorized representation (batched backends): one ciphertext per
	// occupied (bin, pair-slot) accumulator. Entry i is the accumulator
	// for bin VecBin[i] and pair slot VecSlot[i]: lanes 2·slot and
	// 2·slot+1 of VecCts[i] hold the offset-shifted ⟨g,h⟩ sums of the
	// VecCount[i] instances congruent to that slot which landed in the
	// bin; the other lanes are other bins' partial sums and are ignored.
	Vec      bool
	VecBin   []int32
	VecSlot  []int32
	VecCount []int32
	VecCts   [][]byte
}

// Node actions in a split decision.
const (
	ActionLeaf   = uint8(iota) // node becomes a leaf
	ActionSplitB               // B owns the split; placement included
	ActionSplitA               // a passive party owns the split
)

// NodeDecision tells passive parties how one node was (tentatively or
// finally) resolved.
type NodeDecision struct {
	Node   int32
	Action uint8
	// LeftID/RightID are the child node IDs B allocated (so all parties
	// agree on the tree arena).
	LeftID, RightID int32
	// Placement is the left/right bitmap over the node's instance list
	// (bit k set = k-th instance goes left). Present for ActionSplitB,
	// and for ActionSplitA when relayed by B to the non-owner parties.
	Placement []byte
	Count     int
	// Owner is the passive party index for ActionSplitA.
	Owner int
	// Feature and Bin identify the split for its owner (party-local
	// feature index). Only the owner receives them; other parties see
	// just the placement.
	Feature int32
	Bin     int32
	// AbortLeft/AbortRight name tentative children invalidated by this
	// corrective decision (optimistic protocol only); 0 means none.
	AbortLeft, AbortRight int32
}

// MsgDecisions carries the resolved (or, under the optimistic protocol,
// tentative) decisions for a set of nodes of one layer.
type MsgDecisions struct {
	Tree      int
	Layer     int
	Tentative bool
	Nodes     []NodeDecision
}

// MsgDirty tells the owner passive party that a tentatively-split node was
// dirty: the owner's split won. The owner answers with MsgPlacement and
// rebuilds the node's children (with the fresh IDs).
type MsgDirty struct {
	Tree  int
	Layer int
	Node  int32
	// OldLeft and OldRight are the aborted tentative children.
	OldLeft, OldRight int32
	// Fresh children IDs for the corrected split.
	LeftID, RightID int32
	Feature         int32
	Bin             int32
}

// MsgPlacement is a passive party's placement bitmap for a node it split.
type MsgPlacement struct {
	Tree  int
	Layer int
	Node  int32
	Bits  []byte
	Count int
}

// MsgTreeDone signals the end of a boosting round.
type MsgTreeDone struct {
	Tree int
}

// MsgShutdown ends the session.
type MsgShutdown struct{}

// MsgAbort is sent by a passive party when one of its background
// histogram tasks hits an unrecoverable input error — e.g. a range-valid
// but non-invertible ciphertext in the gradient stream, which only
// surfaces when a homomorphic subtraction fails. Party B fails the
// session with the carried reason; the task goroutines must never panic
// the passive process on hostile wire input.
type MsgAbort struct {
	Party  int
	Reason string
}

// The gob registrations back the fallback codec (wire.Gob); the binary
// codec's registrations live in wirecodec.go.
func init() {
	gob.Register(MsgSetup{})
	gob.Register(MsgReady{})
	gob.Register(MsgGradBatch{})
	gob.Register(MsgVecGradBatch{})
	gob.Register(MsgHistograms{})
	gob.Register(MsgDecisions{})
	gob.Register(MsgDirty{})
	gob.Register(MsgPlacement{})
	gob.Register(MsgTreeDone{})
	gob.Register(MsgShutdown{})
	gob.Register(MsgEnvelope{})
	gob.Register(MsgAck{})
	gob.Register(MsgHeartbeat{})
	gob.Register(MsgResume{})
	gob.Register(MsgAbort{})
}

// Transport is the minimal producer/consumer pair the engine needs; both
// mq in-process endpoints and TCP remote endpoints satisfy it.
type Transport interface {
	Send(payload []byte) error
	Receive() ([]byte, error)
}

// Link is the typed bidirectional channel between two parties: a
// Transport wrapped with a pluggable wire.Codec. It is exported so
// subsystems outside core (internal/serve's online scoring sessions) can
// exchange protocol messages without re-implementing the framing.
//
// Codec selection is negotiated implicitly at session setup: the side
// that speaks first (Party B in training, the scoring server, the predict
// client) pins its configured codec, and an adaptive responder adopts
// whatever codec the first received frame was encoded with — every frame
// names its codec in its leading tag byte. A zero-valued or NewLink link
// speaks the default (binary) codec and adapts to its peer.
type Link struct {
	out Transport
	in  Transport
	// codec is the encoder for outgoing messages. Stored atomically:
	// passive parties send from histogram task goroutines concurrently
	// with the receive loop that may adopt the peer's codec.
	codec atomic.Pointer[wire.Codec]
	// adapt, when set, makes recv adopt the codec of every incoming
	// frame; a pinned link keeps sending what it was configured with.
	adapt bool
}

// NewLink wraps a bidirectional transport with the default codec,
// adapting to whatever the peer speaks.
func NewLink(tr Transport) *Link { return newLinkPair(tr, tr, wire.Default, true) }

// NewLinkCodec wraps a bidirectional transport with a pinned codec — the
// shape used by the session initiator, whose first frame announces the
// codec the responder adopts.
func NewLinkCodec(tr Transport, c wire.Codec) *Link { return newLinkPair(tr, tr, c, false) }

// newLinkPair builds a link over distinct send/receive transports.
func newLinkPair(out, in Transport, c wire.Codec, adapt bool) *Link {
	l := &Link{out: out, in: in, adapt: adapt}
	if c != nil {
		l.codec.Store(&c)
	}
	return l
}

// Codec returns the codec outgoing messages are currently encoded with.
func (l *Link) Codec() wire.Codec {
	if p := l.codec.Load(); p != nil {
		return *p
	}
	return wire.Default
}

// Send encodes and transmits one protocol message.
func (l *Link) Send(m any) error { return l.send(m) }

// SendContext is Send with a deadline: transports that implement
// SendContext(ctx, payload) (the mq shaper-backed producers) honour the
// context mid-transmission; others get a best-effort check before the
// blocking send. An expired context returns its error without touching
// the transport.
func (l *Link) SendContext(ctx context.Context, m any) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	payload, err := l.Codec().Encode(m)
	if err != nil {
		return fmt.Errorf("core: encoding %T: %w", m, err)
	}
	if cs, ok := l.out.(interface {
		SendContext(context.Context, []byte) error
	}); ok {
		return cs.SendContext(ctx, payload)
	}
	return l.out.Send(payload)
}

// Recv blocks for the next protocol message.
func (l *Link) Recv() (any, error) { return l.recv() }

// link is the package-internal name for Link, predating its export.
type link = Link

func (l *link) send(m any) error {
	payload, err := l.Codec().Encode(m)
	if err != nil {
		return fmt.Errorf("core: encoding %T: %w", m, err)
	}
	// The payload buffer now belongs to the delivery path; the receiving
	// link recycles it after decoding.
	return l.out.Send(payload)
}

func (l *link) recv() (any, error) {
	payload, err := l.in.Receive()
	if err != nil {
		return nil, err
	}
	c, err := wire.Detect(payload)
	if err != nil {
		return nil, fmt.Errorf("core: decoding message: %w", err)
	}
	if l.adapt && c != l.Codec() {
		l.codec.Store(&c)
	}
	m, err := c.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("core: decoding message: %w", err)
	}
	wire.PutBuf(payload)
	return m, nil
}

// pairTransport adapts an mq producer/consumer pair to Transport.
type pairTransport struct {
	send func([]byte) error
	recv func() ([]byte, error)
}

func (p pairTransport) Send(b []byte) error      { return p.send(b) }
func (p pairTransport) Receive() ([]byte, error) { return p.recv() }

// consumerEndpoint adapts a producer/consumer pair to Transport with a
// Close that detaches the consumer — the resilient layer needs it to
// unblock its receive loop on shutdown and redial. When sendCtx is set
// (mq producers expose SendContext) the endpoint forwards deadlines into
// the WAN shaper.
type consumerEndpoint struct {
	send    func([]byte) error
	sendCtx func(context.Context, []byte) error
	recv    func() ([]byte, error)
	detach  func()
}

func (e consumerEndpoint) Send(b []byte) error      { return e.send(b) }
func (e consumerEndpoint) Receive() ([]byte, error) { return e.recv() }

// SendContext satisfies the optional deadline-aware send interface used
// by Link.SendContext.
func (e consumerEndpoint) SendContext(ctx context.Context, b []byte) error {
	if e.sendCtx != nil {
		return e.sendCtx(ctx, b)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.send(b)
}
func (e consumerEndpoint) Close() {
	if e.detach != nil {
		e.detach()
	}
}

// packBitmap encodes booleans little-endian into bytes.
func packBitmap(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// bitmapGet reads bit i of a packed bitmap.
func bitmapGet(bm []byte, i int) bool {
	return bm[i/8]&(1<<(i%8)) != 0
}
