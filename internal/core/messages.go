package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire messages between Party B and each passive party. All cross-party
// traffic is gob-encoded and carried over an mq topic pair, so the exact
// same engine runs in-process, through the WAN shaper, or across the TCP
// gateway.

// MsgSetup is sent once by B to each passive party before training: the
// public key material and the encoding parameters both sides must share.
type MsgSetup struct {
	Scheme    string
	N         []byte // public modulus (paillier) or width marker (mock)
	Bits      int
	BaseExp   int
	ExpSpread int
	PackBits  int
	Shift     float64 // histogram-packing shift N·Bound
}

// MsgReady is a passive party's answer to MsgSetup: its shape, which B
// needs for the global feature order and the instance-alignment check.
type MsgReady struct {
	Party    int
	Features int
	Rows     int
}

// MsgGradBatch carries encrypted gradient/hessian pairs for a contiguous
// instance range. With blaster encryption many small batches stream per
// tree; without it a single batch carries everything.
type MsgGradBatch struct {
	Tree  int
	Start int
	G     [][]byte
	H     [][]byte
	GExp  []int16
	HExp  []int16
	Last  bool
}

// MsgHistograms carries a passive party's encrypted histograms for one or
// more nodes of one layer.
type MsgHistograms struct {
	Tree  int
	Layer int
	Nodes []NodeHist
}

// NodeHist is the encrypted histogram of one node over the sender's
// features.
type NodeHist struct {
	Node  int32
	Feats []FeatHist
}

// FeatHist is one feature's bins. Exactly one representation is used:
// per-bin ciphertexts with per-bin exponents (unpacked), or packed
// shifted prefix sums at a single exponent.
type FeatHist struct {
	NumBins int
	// Unpacked representation.
	GBins [][]byte
	HBins [][]byte
	GExp  []int16
	HExp  []int16
	// Packed representation: ceil(NumBins/t) ciphertexts each for G and
	// H prefix sums, shifted into the non-negative range.
	Packed  bool
	PackedG [][]byte
	PackedH [][]byte
	Exp     int16
}

// Node actions in a split decision.
const (
	ActionLeaf   = uint8(iota) // node becomes a leaf
	ActionSplitB               // B owns the split; placement included
	ActionSplitA               // a passive party owns the split
)

// NodeDecision tells passive parties how one node was (tentatively or
// finally) resolved.
type NodeDecision struct {
	Node   int32
	Action uint8
	// LeftID/RightID are the child node IDs B allocated (so all parties
	// agree on the tree arena).
	LeftID, RightID int32
	// Placement is the left/right bitmap over the node's instance list
	// (bit k set = k-th instance goes left). Present for ActionSplitB,
	// and for ActionSplitA when relayed by B to the non-owner parties.
	Placement []byte
	Count     int
	// Owner is the passive party index for ActionSplitA.
	Owner int
	// Feature and Bin identify the split for its owner (party-local
	// feature index). Only the owner receives them; other parties see
	// just the placement.
	Feature int32
	Bin     int32
	// AbortLeft/AbortRight name tentative children invalidated by this
	// corrective decision (optimistic protocol only); 0 means none.
	AbortLeft, AbortRight int32
}

// MsgDecisions carries the resolved (or, under the optimistic protocol,
// tentative) decisions for a set of nodes of one layer.
type MsgDecisions struct {
	Tree      int
	Layer     int
	Tentative bool
	Nodes     []NodeDecision
}

// MsgDirty tells the owner passive party that a tentatively-split node was
// dirty: the owner's split won. The owner answers with MsgPlacement and
// rebuilds the node's children (with the fresh IDs).
type MsgDirty struct {
	Tree  int
	Layer int
	Node  int32
	// OldLeft and OldRight are the aborted tentative children.
	OldLeft, OldRight int32
	// Fresh children IDs for the corrected split.
	LeftID, RightID int32
	Feature         int32
	Bin             int32
}

// MsgPlacement is a passive party's placement bitmap for a node it split.
type MsgPlacement struct {
	Tree  int
	Layer int
	Node  int32
	Bits  []byte
	Count int
}

// MsgTreeDone signals the end of a boosting round.
type MsgTreeDone struct {
	Tree int
}

// MsgShutdown ends the session.
type MsgShutdown struct{}

// envelope wraps a message for gob transport.
type envelope struct {
	M any
}

func init() {
	gob.Register(MsgSetup{})
	gob.Register(MsgReady{})
	gob.Register(MsgGradBatch{})
	gob.Register(MsgHistograms{})
	gob.Register(MsgDecisions{})
	gob.Register(MsgDirty{})
	gob.Register(MsgPlacement{})
	gob.Register(MsgTreeDone{})
	gob.Register(MsgShutdown{})
}

// Transport is the minimal producer/consumer pair the engine needs; both
// mq in-process endpoints and TCP remote endpoints satisfy it.
type Transport interface {
	Send(payload []byte) error
	Receive() ([]byte, error)
}

// Link is the typed bidirectional channel between two parties: a
// Transport wrapped with the gob envelope codec every engine speaks. It is
// exported so subsystems outside core (internal/serve's online scoring
// sessions) can exchange protocol messages without re-implementing the
// framing.
type Link struct {
	out Transport
	in  Transport
}

// NewLink wraps a bidirectional transport.
func NewLink(tr Transport) *Link { return &Link{out: tr, in: tr} }

// Send gob-encodes and transmits one protocol message.
func (l *Link) Send(m any) error { return l.send(m) }

// Recv blocks for the next protocol message.
func (l *Link) Recv() (any, error) { return l.recv() }

// link is the package-internal name for Link, predating its export.
type link = Link

func (l *link) send(m any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{M: m}); err != nil {
		return fmt.Errorf("core: encoding %T: %w", m, err)
	}
	return l.out.Send(buf.Bytes())
}

func (l *link) recv() (any, error) {
	payload, err := l.in.Receive()
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decoding message: %w", err)
	}
	return env.M, nil
}

// pairTransport adapts an mq producer/consumer pair to Transport.
type pairTransport struct {
	send func([]byte) error
	recv func() ([]byte, error)
}

func (p pairTransport) Send(b []byte) error      { return p.send(b) }
func (p pairTransport) Receive() ([]byte, error) { return p.recv() }

// packBitmap encodes booleans little-endian into bytes.
func packBitmap(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// bitmapGet reads bit i of a packed bitmap.
func bitmapGet(bm []byte, i int) bool {
	return bm[i/8]&(1<<(i%8)) != 0
}
