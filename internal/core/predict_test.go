package core

import (
	"math"
	"sync"

	"testing"
	"vf2boost/internal/dataset"
)

// TestFederatedPredictionProtocol: scoring through the fragment-only
// prediction protocol must match the glued model's in-process prediction
// exactly.
func TestFederatedPredictionProtocol(t *testing.T) {
	_, parts := twoPartyData(t, 300, 5, 4, 1, true, 81)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 3
	m, _ := trainFed(t, parts, cfg)

	// Glued in-process reference.
	want, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}

	// Fragment-only protocol over an in-memory transport.
	aSide := chanTransport{ch: make(chan []byte, 8)}
	bSide := chanTransport{ch: make(chan []byte, 8)}
	aTr := pairTransport{send: bSide.Send, recv: aSide.Receive} // A sends to B, reads from B->A
	bTr := pairTransport{send: aSide.Send, recv: bSide.Receive}

	var wg sync.WaitGroup
	var serveErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = ServePredict(m.Parties[0], parts[0], aTr)
	}()
	got, err := PredictRemote(m.Parties[1], m.LearningRate, parts[1], []Transport{bTr})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("remote prediction differs at row %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestFederatedPredictionRowMismatch: the serving party must reject a
// misaligned instance count.
func TestFederatedPredictionRowMismatch(t *testing.T) {
	_, parts := twoPartyData(t, 100, 3, 3, 1, true, 82)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 1
	m, _ := trainFed(t, parts, cfg)

	aSide := chanTransport{ch: make(chan []byte, 8)}
	bSide := chanTransport{ch: make(chan []byte, 8)}
	aTr := pairTransport{send: bSide.Send, recv: aSide.Receive}
	bTr := pairTransport{send: aSide.Send, recv: bSide.Receive}

	shrunk := parts[0].SubRows([]int{0, 1, 2})
	done := make(chan error, 1)
	go func() {
		done <- ServePredict(m.Parties[0], shrunk, aTr)
	}()
	_, err := PredictRemote(m.Parties[1], m.LearningRate, parts[1], []Transport{bTr})
	if err == nil {
		t.Error("PredictRemote succeeded despite misaligned serving shard")
	}
	if serveErr := <-done; serveErr == nil {
		t.Error("ServePredict accepted misaligned row count")
	}
}

// TestFederatedPredictionMultiParty covers three parties.
func TestFederatedPredictionMultiParty(t *testing.T) {
	d, parts := threePartyData(t, 200, 83)
	_ = d
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 2
	m, _ := trainFed(t, parts, cfg)
	want, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}

	trsB := make([]Transport, 2)
	var wg sync.WaitGroup
	for pi := 0; pi < 2; pi++ {
		aSide := chanTransport{ch: make(chan []byte, 8)}
		bSide := chanTransport{ch: make(chan []byte, 8)}
		aTr := pairTransport{send: bSide.Send, recv: aSide.Receive}
		trsB[pi] = pairTransport{send: aSide.Send, recv: bSide.Receive}
		wg.Add(1)
		go func(pi int, tr Transport) {
			defer wg.Done()
			if err := ServePredict(m.Parties[pi], parts[pi], tr); err != nil {
				t.Errorf("party %d serve: %v", pi, err)
			}
		}(pi, aTr)
	}
	got, err := PredictRemote(m.Parties[2], m.LearningRate, parts[2], trsB)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("multi-party remote prediction differs at row %d", i)
		}
	}
}

func threePartyData(t testing.TB, rows int, seed int64) (*dataset.Dataset, []*dataset.Dataset) {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{Rows: rows, Cols: 12, Density: 1, Dense: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.VerticalSplit([]int{4, 4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}
