package core

import (
	"math"
	"sync"
	"testing"
)

// TestScorePlacementsRouteMargins: the micro-batch helpers must reproduce
// the glued model's margins on an arbitrary row subset, including
// duplicated and out-of-order rows.
func TestScorePlacementsRouteMargins(t *testing.T) {
	_, parts := twoPartyData(t, 200, 5, 4, 1, true, 84)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 3
	m, _ := trainFed(t, parts, cfg)
	want, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}

	rows := []int32{17, 3, 3, 199, 0, 42}
	nodes, err := ScorePlacements(m.Parties[0], parts[0], rows)
	if err != nil {
		t.Fatal(err)
	}
	routes := make(map[RouteKey][]byte)
	for _, nb := range nodes {
		routes[RouteKey{Party: 0, Tree: nb.Tree, Node: nb.Node}] = nb.Bits
	}
	got, err := RouteMargins(m.Parties[1], m.LearningRate, m.BaseScore, parts[1], rows, routes)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range rows {
		if math.Abs(got[k]-want[r]) > 1e-12 {
			t.Errorf("row %d margin %g, want %g", r, got[k], want[r])
		}
	}

	// Out-of-range rows are rejected on both sides.
	if _, err := ScorePlacements(m.Parties[0], parts[0], []int32{10_000}); err == nil {
		t.Error("ScorePlacements accepted an out-of-range row")
	}
	if _, err := RouteMargins(m.Parties[1], m.LearningRate, 0, parts[1], []int32{-1}, routes); err == nil {
		t.Error("RouteMargins accepted a negative row")
	}
}

// TestServePredictLoop: one session must serve repeated prediction rounds
// — including a per-round error that keeps the session alive — and end
// cleanly on MsgShutdown.
func TestServePredictLoop(t *testing.T) {
	_, parts := twoPartyData(t, 150, 5, 4, 1, true, 85)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 2
	m, _ := trainFed(t, parts, cfg)
	want, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}

	aSide := chanTransport{ch: make(chan []byte, 8)}
	bSide := chanTransport{ch: make(chan []byte, 8)}
	aTr := pairTransport{send: bSide.Send, recv: aSide.Receive}
	bTr := pairTransport{send: aSide.Send, recv: bSide.Receive}

	var wg sync.WaitGroup
	var loopErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		loopErr = ServePredictLoop(m.Parties[0], parts[0], aTr)
	}()

	// Three rounds on one session.
	for round := 0; round < 3; round++ {
		got, err := PredictRemote(m.Parties[1], m.LearningRate, parts[1], []Transport{bTr})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("round %d differs at row %d", round, i)
			}
		}
	}

	// A misaligned round errors at B but must not kill the session.
	l := &link{out: bTr, in: bTr}
	if err := l.send(MsgPredictStart{Rows: 9999}); err != nil {
		t.Fatal(err)
	}
	msg, err := l.recv()
	if err != nil {
		t.Fatal(err)
	}
	if pl := msg.(MsgPredictPlacements); pl.Error == "" {
		t.Fatal("misaligned round was not answered with a structured error")
	}

	// The session still serves after the error round.
	if _, err := PredictRemote(m.Parties[1], m.LearningRate, parts[1], []Transport{bTr}); err != nil {
		t.Fatalf("round after error: %v", err)
	}

	// Clean shutdown.
	if err := l.send(MsgShutdown{}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if loopErr != nil {
		t.Fatalf("loop exited with %v", loopErr)
	}
}
