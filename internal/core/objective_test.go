package core

import (
	"math"
	"strings"
	"testing"

	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/metrics"
	"vf2boost/internal/objective"
)

// multiclassParts builds a joined k-class dataset plus its vertical
// split (passive party first, labeled Party B last).
func multiclassParts(t testing.TB, rows, cols, classes int, seed int64) (*dataset.Dataset, []*dataset.Dataset) {
	t.Helper()
	d, err := dataset.GenerateMulticlass(dataset.MultiGenOptions{
		Rows: rows, Cols: cols, Classes: classes, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.VerticalSplit([]int{cols / 2, cols - cols/2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, parts
}

func mustObjective(t testing.TB, spec string) objective.Objective {
	t.Helper()
	o, err := objective.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// localParams mirrors a federated config for the co-located trainer.
func localParams(cfg Config) gbdt.Params {
	lp := gbdt.DefaultParams()
	lp.NumTrees = cfg.Trees
	lp.LearningRate = cfg.LearningRate
	lp.MaxDepth = cfg.MaxDepth
	lp.MaxBins = cfg.MaxBins
	lp.Split = cfg.Split
	return lp
}

// TestMulticlassLosslessVsLocal is the multiclass variant of the paper's
// lossless claim: the federated round-robin schedule (k trees per round
// sharing one gradient pass) must reproduce the co-located multiclass
// trainer up to fixed-point rounding.
func TestMulticlassLosslessVsLocal(t *testing.T) {
	joined, parts := multiclassParts(t, 600, 8, 3, 41)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 4
	cfg.Objective = mustObjective(t, "multiclass:3")
	fed, _ := trainFed(t, parts, cfg)

	if fed.Outputs() != 3 {
		t.Fatalf("model Outputs() = %d, want 3", fed.Outputs())
	}
	if fed.Objective != "multiclass:3" {
		t.Fatalf("model Objective = %q, want multiclass:3", fed.Objective)
	}
	if got := len(fed.Parties[len(fed.Parties)-1].Trees); got != cfg.Trees*3 {
		t.Fatalf("trained %d trees, want %d rounds x 3 classes = %d", got, cfg.Trees, cfg.Trees*3)
	}

	local, err := gbdt.TrainMulti(joined, mustObjective(t, "multiclass:3"), localParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	fedM, err := fed.PredictAllOutputs(parts)
	if err != nil {
		t.Fatal(err)
	}
	localM := local.PredictAllOutputs(joined)
	maxDiff := 0.0
	for c := range fedM {
		for i := range fedM[c] {
			if d := math.Abs(fedM[c][i] - localM[c][i]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 1e-6 {
		t.Errorf("federated vs local multiclass margin divergence %g", maxDiff)
	}
	acc, err := metrics.MulticlassAccuracy(fedM, joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("multiclass accuracy = %g, want >= 0.7", acc)
	}
}

// TestMulticlassVecParity: the class-interleaved lane layout (one
// encrypted shipment per round carrying all k gradient vectors) must
// reproduce the scalar per-class-stream model exactly — both paths run
// the same fixed-point arithmetic.
func TestMulticlassVecParity(t *testing.T) {
	_, parts := multiclassParts(t, 400, 6, 3, 42)
	scalar := quickConfig(SchemeMock)
	scalar.ExpSpread = 1
	scalar.Objective = mustObjective(t, "multiclass:3")
	vec := vecQuickConfig("mock-batched")
	vec.ExpSpread = 1
	vec.KeyBits = 1024 // wide enough lanes for 3 classes per window
	vec.Objective = mustObjective(t, "multiclass:3")

	mS, _ := trainFed(t, parts, scalar)
	mV, sV := trainFed(t, parts, vec)
	a, err := mS.PredictAllOutputs(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mV.PredictAllOutputs(parts)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a {
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatalf("vec multiclass diverges from scalar at class %d row %d: %g vs %g",
					c, i, b[c][i], a[c][i])
			}
		}
	}
	if sV.Crypto().Decryptions() == 0 {
		t.Error("vec multiclass session recorded no decryptions")
	}
}

// TestMulticlassSharedEncryptionPass is the acceptance gate on the
// cipher-op counters: with depth-1 trees (root decisions only) a k-class
// vectorized round must decrypt roughly what a binary round does —
// classes 1..k-1 read their root sums from the shared all-class decode
// instead of paying k independent passes, so the total stays far below
// the naive k x binary baseline.
func TestMulticlassSharedEncryptionPass(t *testing.T) {
	joined, parts3 := multiclassParts(t, 300, 6, 3, 43)

	// Same features under a binarized label vector for the k=1 baseline.
	bl := make([]float64, len(joined.Labels))
	for i, y := range joined.Labels {
		if y > 0 {
			bl[i] = 1
		}
	}
	joined.Labels = bl
	parts1, err := joined.VerticalSplit([]int{3, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}

	base := vecQuickConfig("mock-batched")
	base.KeyBits = 1024
	base.MaxDepth = 1
	base.Trees = 3

	cfg1 := base
	cfg3 := base
	cfg3.Objective = mustObjective(t, "multiclass:3")

	_, s1 := trainFed(t, parts1, cfg1)
	_, s3 := trainFed(t, parts3, cfg3)

	d1 := s1.Crypto().Decryptions()
	d3 := s3.Crypto().Decryptions()
	if d1 == 0 || d3 == 0 {
		t.Fatalf("no decryptions recorded (binary %d, multiclass %d)", d1, d3)
	}
	if d3 >= 2*d1 {
		t.Errorf("k=3 rounds decrypted %d vs binary %d; sharing should keep this sub-linear in k", d3, d1)
	}
	// Encryption passes: one shipment per round regardless of k. Splitting
	// each window into k class lanes shrinks instances-per-ciphertext by a
	// bit more than k (integer flooring of the lane budget), so allow that
	// rounding slack — but nothing beyond it.
	e1 := s1.Crypto().Encryptions()
	e3 := s3.Crypto().Encryptions()
	if e3 > 4*e1 {
		t.Errorf("k=3 rounds encrypted %d vs binary %d; one shared pass should stay near the 3x lane split", e3, e1)
	}
}

// TestRankingLosslessVsLocal: the LambdaMART objective is single-output,
// so the federated engine must reduce to the classic protocol and match
// the co-located trainer exactly; the NDCG gate proves the query-group
// gradients actually learn the ordering.
func TestRankingLosslessVsLocal(t *testing.T) {
	d, groups, err := dataset.GenerateRanking(dataset.RankGenOptions{
		Groups: 40, GroupSize: 8, Cols: 6, Noise: 0.1, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.VerticalSplit([]int{3, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}

	fedObj := mustObjective(t, "ranking:5")
	if err := fedObj.(objective.GroupAware).SetGroups(groups); err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 5
	cfg.Objective = fedObj
	fed, _ := trainFed(t, parts, cfg)

	localObj := mustObjective(t, "ranking:5")
	if err := localObj.(objective.GroupAware).SetGroups(groups); err != nil {
		t.Fatal(err)
	}
	local, err := gbdt.TrainMulti(d, localObj, localParams(cfg))
	if err != nil {
		t.Fatal(err)
	}

	fedM, err := fed.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	localM := local.PredictAllOutputs(d)[0]
	maxDiff := 0.0
	for i := range fedM {
		if diff := math.Abs(fedM[i] - localM[i]); diff > maxDiff {
			maxDiff = diff
		}
	}
	if maxDiff > 1e-6 {
		t.Errorf("federated vs local ranking margin divergence %g", maxDiff)
	}

	ndcg, err := metrics.NDCGAt(5, fedM, d.Labels, groups)
	if err != nil {
		t.Fatal(err)
	}
	zeros := make([]float64, len(fedM))
	base, err := metrics.NDCGAt(5, zeros, d.Labels, groups)
	if err != nil {
		t.Fatal(err)
	}
	if ndcg < base+0.02 {
		t.Errorf("trained NDCG@5 = %g, untrained baseline %g; ranking gradients are not learning", ndcg, base)
	}
}

// TestPeerObjectiveRejection: a passive party must refuse a setup naming
// an objective its registry does not know — before any ciphertext flows.
func TestPeerObjectiveRejection(t *testing.T) {
	_, parts := twoPartyData(t, 20, 2, 2, 1, true, 45)
	cfg := quickConfig(SchemeMock)
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	p, err := newPassiveParty(0, parts[0], cfg, nil, &Stats{})
	if err != nil {
		t.Fatal(err)
	}
	setupErr := p.handleSetup(MsgSetup{
		Scheme: SchemeMock, Bits: 256, BaseExp: 8, ExpSpread: 4,
		Objective: "nope:3", Outputs: 3,
	})
	if setupErr == nil {
		t.Fatal("setup with unregistered objective accepted")
	}
	if !strings.Contains(setupErr.Error(), "unregistered objective") ||
		!strings.Contains(setupErr.Error(), "multiclass") {
		t.Errorf("rejection should name the objective and list the registry, got: %v", setupErr)
	}
}

// unregisteredMulti is a k>1 objective that is not in the registry, so
// the session must refuse it at configuration time — a passive peer
// could never mirror its schedule.
type unregisteredMulti struct{ objective.Objective }

func (unregisteredMulti) Name() string    { return "custom:3" }
func (unregisteredMulti) NumOutputs() int { return 3 }

func TestUnregisteredMultiOutputObjectiveRejected(t *testing.T) {
	_, parts := twoPartyData(t, 20, 2, 2, 1, true, 46)
	cfg := quickConfig(SchemeMock)
	cfg.Objective = unregisteredMulti{mustObjective(t, "multiclass:3")}
	if _, err := NewSession(parts, cfg); err == nil {
		t.Fatal("unregistered multi-output objective accepted")
	} else if !strings.Contains(err.Error(), "registry") {
		t.Errorf("error should point at the registry, got: %v", err)
	}
}

// TestMulticlassCheckpointResume: a k=3 session resumed from a round
// checkpoint must finish byte-identically to an uninterrupted run — the
// snapshot carries the kxn margin matrix and rewinds in whole rounds.
func TestMulticlassCheckpointResume(t *testing.T) {
	_, parts := multiclassParts(t, 200, 6, 3, 47)
	cfg := quickConfig(SchemeMock)
	cfg.ExpSpread = 1
	cfg.Trees = 4
	cfg.Objective = mustObjective(t, "multiclass:3")

	full, _ := trainFed(t, parts, cfg)

	dir := t.TempDir()
	short := cfg
	short.Trees = 2
	short.Objective = mustObjective(t, "multiclass:3")
	trainFed(t, parts, short, WithCheckpoints(dir))

	resumed, _ := trainFed(t, parts, cfg, WithCheckpoints(dir), WithResume())

	a, err := full.PredictAllOutputs(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := resumed.PredictAllOutputs(parts)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a {
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatalf("resumed multiclass model diverges at class %d row %d: %g vs %g",
					c, i, b[c][i], a[c][i])
			}
		}
	}
}
