package core

import (
	"bytes"
	"math/big"
	"testing"

	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/he"
)

// TestFastObfuscationMatchesBaselineModel trains the same split with DJN
// fast obfuscation on and off: obfuscation only re-randomizes ciphertexts,
// so with the shared deterministic training order the two models must be
// byte-identical. This is the end-to-end equivalence check for the
// extension — any drift here means the fast path leaked into plaintexts.
func TestFastObfuscationMatchesBaselineModel(t *testing.T) {
	_, parts := twoPartyData(t, 300, 3, 3, 1, true, 11)

	fast := quickConfig(SchemePaillier)
	fast.FastObfuscation = true
	mFast, _ := trainFed(t, parts, fast)

	base := quickConfig(SchemePaillier)
	base.FastObfuscation = false
	mBase, _ := trainFed(t, parts, base)

	if !bytes.Equal(modelJSON(t, mFast), modelJSON(t, mBase)) {
		t.Error("fast-obfuscation model differs from baseline model")
	}
	// The shared test key must be back on the baseline path after the
	// fast session (partyb.setup disables it for baseline configs).
	if sharedKey.FastObfuscation() {
		t.Error("baseline session left fast obfuscation enabled on the shared key")
	}
}

// TestDecryptFeatureRejectsGarbage drives hostile histogram payloads
// through the active party's decrypt path — the enchist ingress a malicious
// passive party controls. Every case must surface an error, never a panic.
func TestDecryptFeatureRejectsGarbage(t *testing.T) {
	dec := testDecryptor(t)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(1))
	plan, err := planPacking(codec, 100, 1.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	b := &activeParty{cfg: quickConfig(SchemePaillier), dec: dec, codec: codec, plan: plan}

	n := dec.N()
	n2 := new(big.Int).Mul(n, n)
	garbage := [][]byte{
		{0},        // zero: not a unit mod n²
		n2.Bytes(), // == n²
		new(big.Int).Add(n2, big.NewInt(3)).Bytes(),   // > n²
		bytes.Repeat([]byte{0xFF}, len(n2.Bytes())+4), // way out of range
	}

	for i, raw := range garbage {
		if _, err := b.decryptBin(raw, 0); err == nil {
			t.Errorf("case %d: decryptBin accepted garbage", i)
		}
		unpacked := FeatHist{
			NumBins: 2,
			GBins:   [][]byte{raw, nil}, HBins: [][]byte{nil, raw},
			GExp: []int16{0, 0}, HExp: []int16{0, 0},
		}
		if _, _, err := b.decryptFeature(unpacked); err == nil {
			t.Errorf("case %d: decryptFeature accepted garbage bins", i)
		}
		packed := FeatHist{
			NumBins: 2, Packed: true,
			PackedG: [][]byte{raw}, PackedH: [][]byte{raw},
		}
		if _, _, err := b.decryptFeature(packed); err == nil {
			t.Errorf("case %d: decryptFeature accepted garbage packed payload", i)
		}
		nh := NodeHist{Node: 1, Feats: []FeatHist{unpacked, packed}}
		if _, _, err := b.decryptNodeHist(nh); err == nil {
			t.Errorf("case %d: decryptNodeHist accepted garbage", i)
		}
	}

	// Empty bins remain legal (zero contribution), so hardening must not
	// reject the protocol's own encoding of an empty bin.
	if v, err := b.decryptBin(nil, 0); err != nil || v != 0 {
		t.Errorf("decryptBin(nil) = %g, %v; want 0, nil", v, err)
	}
}

// TestSetupRejectsHostileObfuscationBase: a passive party receiving a
// malformed base in MsgSetup must fail setup loudly instead of encrypting
// with a degenerate obfuscator.
func TestSetupRejectsHostileObfuscationBase(t *testing.T) {
	dec := testDecryptor(t)
	scheme := dec.(interface{ PublicScheme() *he.PaillierScheme }).PublicScheme()
	n2 := new(big.Int).Mul(dec.N(), dec.N())
	for i, h := range []*big.Int{big.NewInt(1), big.NewInt(0), n2} {
		if err := scheme.SetObfuscationBase(h, 224); err == nil {
			t.Errorf("case %d: hostile obfuscation base accepted", i)
		}
	}
}
