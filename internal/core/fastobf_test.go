package core

import (
	"bytes"
	"fmt"
	"math/big"
	"testing"

	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/he"
)

// TestFastObfuscationMatchesBaselineModel trains the same split with DJN
// fast obfuscation on and off: obfuscation only re-randomizes ciphertexts,
// so with the shared deterministic training order the two models must be
// byte-identical. This is the end-to-end equivalence check for the
// extension — any drift here means the fast path leaked into plaintexts.
func TestFastObfuscationMatchesBaselineModel(t *testing.T) {
	_, parts := twoPartyData(t, 300, 3, 3, 1, true, 11)

	fast := quickConfig(SchemePaillier)
	fast.FastObfuscation = true
	mFast, _ := trainFed(t, parts, fast)

	base := quickConfig(SchemePaillier)
	base.FastObfuscation = false
	mBase, _ := trainFed(t, parts, base)

	if !bytes.Equal(modelJSON(t, mFast), modelJSON(t, mBase)) {
		t.Error("fast-obfuscation model differs from baseline model")
	}
	// The shared test key must be back on the baseline path after the
	// fast session (partyb.setup disables it for baseline configs).
	if sharedKey.FastObfuscation() {
		t.Error("baseline session left fast obfuscation enabled on the shared key")
	}
}

// TestDecryptFeatureRejectsGarbage drives hostile histogram payloads
// through the active party's decrypt path — the enchist ingress a malicious
// passive party controls. Every case must surface an error, never a panic.
func TestDecryptFeatureRejectsGarbage(t *testing.T) {
	dec := testDecryptor(t)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(1))
	plan, err := planPacking(codec, 100, 1.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	b := &activeParty{cfg: quickConfig(SchemePaillier), dec: dec, codec: codec, plan: plan}

	n := dec.N()
	n2 := new(big.Int).Mul(n, n)
	garbage := [][]byte{
		{0},        // zero: not a unit mod n²
		n2.Bytes(), // == n²
		new(big.Int).Add(n2, big.NewInt(3)).Bytes(),   // > n²
		bytes.Repeat([]byte{0xFF}, len(n2.Bytes())+4), // way out of range
	}

	for i, raw := range garbage {
		if _, err := b.decryptBin(raw, 0); err == nil {
			t.Errorf("case %d: decryptBin accepted garbage", i)
		}
		unpacked := FeatHist{
			NumBins: 2,
			GBins:   [][]byte{raw, nil}, HBins: [][]byte{nil, raw},
			GExp: []int16{0, 0}, HExp: []int16{0, 0},
		}
		if _, _, err := b.decryptFeature(unpacked); err == nil {
			t.Errorf("case %d: decryptFeature accepted garbage bins", i)
		}
		packed := FeatHist{
			NumBins: 2, Packed: true,
			PackedG: [][]byte{raw}, PackedH: [][]byte{raw},
		}
		if _, _, err := b.decryptFeature(packed); err == nil {
			t.Errorf("case %d: decryptFeature accepted garbage packed payload", i)
		}
		nh := NodeHist{Node: 1, Feats: []FeatHist{unpacked, packed}}
		if _, _, err := b.decryptNodeHist(nh); err == nil {
			t.Errorf("case %d: decryptNodeHist accepted garbage", i)
		}
	}

	// Empty bins remain legal (zero contribution), so hardening must not
	// reject the protocol's own encoding of an empty bin.
	if v, err := b.decryptBin(nil, 0); err != nil || v != 0 {
		t.Errorf("decryptBin(nil) = %g, %v; want 0, nil", v, err)
	}
}

// TestSetupRejectsHostileObfuscationBase: a passive party receiving a
// malformed base in MsgSetup must fail setup loudly instead of encrypting
// with a degenerate obfuscator.
func TestSetupRejectsHostileObfuscationBase(t *testing.T) {
	dec := testDecryptor(t)
	scheme := dec.(interface{ PublicScheme() *he.PaillierScheme }).PublicScheme()
	n2 := new(big.Int).Mul(dec.N(), dec.N())
	for i, h := range []*big.Int{big.NewInt(1), big.NewInt(0), n2} {
		if err := scheme.SetObfuscationBase(h, 224); err == nil {
			t.Errorf("case %d: hostile obfuscation base accepted", i)
		}
	}
	// A hostile ObfBits rides the same unvalidated setup frame: a huge
	// value must be rejected before it sizes the fixed-base tables, not
	// OOM or hang the party.
	for i, bits := range []int{1 << 20, 1 << 30} {
		if err := scheme.SetObfuscationBase(big.NewInt(4), bits); err == nil {
			t.Errorf("case %d: hostile ObfBits=%d accepted", i, bits)
		}
	}
}

// TestPassivePartyAbortsOnTaskFailure: a background histogram task hitting
// an unrecoverable input error (fail) must notify B with MsgAbort and
// surface the error from run — never panic the process.
func TestPassivePartyAbortsOnTaskFailure(t *testing.T) {
	_, parts := twoPartyData(t, 30, 2, 2, 1, true, 73)
	in := chanTransport{ch: make(chan []byte, 16)}
	out := chanTransport{ch: make(chan []byte, 16)}
	l := &link{out: out, in: in}
	p, err := newPassiveParty(0, parts[0], mustNormalize(t, quickConfig(SchemeMock)), l, &Stats{})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := p.run()
		done <- err
	}()

	cause := fmt.Errorf("core: subtracting bin 3: ciphertext not invertible")
	p.fail(cause)
	p.fail(fmt.Errorf("secondary failure")) // only the first is kept

	// B is told to abort the session.
	got, err := (&link{in: out}).recv()
	if err != nil {
		t.Fatal(err)
	}
	ab, ok := got.(MsgAbort)
	if !ok {
		t.Fatalf("first message after fail = %T, want MsgAbort", got)
	}
	if ab.Party != 0 || ab.Reason != cause.Error() {
		t.Errorf("MsgAbort = %+v", ab)
	}

	// The run loop surfaces the recorded root cause once it unblocks.
	if err := (&link{out: in, in: in}).send(MsgTreeDone{}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil || err.Error() != cause.Error() {
		t.Errorf("run returned %v, want %v", err, cause)
	}
}

// TestPumpFailsSessionOnAbort: Party B's demultiplexer must turn a passive
// party's MsgAbort into the session error every pending wait observes.
func TestPumpFailsSessionOnAbort(t *testing.T) {
	l, feed := drivenLink()
	pump := startPump(l)
	sender := &link{out: feed, in: feed}
	if err := sender.send(MsgAbort{Party: 1, Reason: "hostile histogram"}); err != nil {
		t.Fatal(err)
	}
	if _, err := pump.histFor(0, 1); err == nil {
		t.Error("histFor returned no error after MsgAbort")
	}
}

// TestPassivePartyRejectsHostileGradientExponent: exponents in the
// gradient stream index histogram slot rows; out-of-range values must be
// rejected at ingress as a session error, not panic deep in accumulation.
func TestPassivePartyRejectsHostileGradientExponent(t *testing.T) {
	_, parts := twoPartyData(t, 30, 2, 2, 1, true, 74)
	l, feed := drivenLink()
	p, err := newPassiveParty(0, parts[0], mustNormalize(t, quickConfig(SchemeMock)), l, &Stats{})
	if err != nil {
		t.Fatal(err)
	}
	sender := &link{out: feed, in: feed}
	if err := sender.send(MsgSetup{Scheme: SchemeMock, Bits: 512, BaseExp: 8, ExpSpread: 4}); err != nil {
		t.Fatal(err)
	}
	if err := sender.send(MsgGradBatch{
		Tree: 0, Start: 0,
		G: [][]byte{{1}}, H: [][]byte{{1}},
		GExp: []int16{99}, HExp: []int16{8},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.run(); err == nil {
		t.Error("out-of-range gradient exponent accepted")
	}
}
