package core

import (
	"math"
	"testing"

	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
)

// newBareActiveParty builds a Party B engine with no links, enough for
// unit-testing its helpers.
func newBareActiveParty(t *testing.T, rows, cols int, seed int64) *activeParty {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{Rows: rows, Cols: cols, Density: 1, Dense: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustNormalize(t, quickConfig(SchemeMock))
	b, err := newActiveParty(d, cfg, he.NewMock(512), nil, &Stats{})
	if err != nil {
		t.Fatal(err)
	}
	n := d.Rows()
	b.grads = make([]float64, n)
	b.hess = make([]float64, n)
	for i := 0; i < n; i++ {
		b.grads[i] = float64(i%5) - 2
		b.hess[i] = 0.25
	}
	return b
}

func TestChildStats(t *testing.T) {
	b := newBareActiveParty(t, 50, 3, 91)
	g, h := b.childStats([]int32{0, 1, 2, 3, 4})
	wantG := -2.0 + -1 + 0 + 1 + 2
	if math.Abs(g-wantG) > 1e-12 || math.Abs(h-1.25) > 1e-12 {
		t.Errorf("childStats = (%g, %g), want (%g, 1.25)", g, h, wantG)
	}
	if g, h := b.childStats(nil); g != 0 || h != 0 {
		t.Error("empty childStats not zero")
	}
}

func TestPlacementBitmapPartition(t *testing.T) {
	b := newBareActiveParty(t, 60, 3, 92)
	insts := make([]int32, 60)
	for i := range insts {
		insts[i] = int32(i)
	}
	bits, left, right, err := b.placementBitmap(insts, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(left)+len(right) != 60 {
		t.Fatalf("partition lost instances: %d + %d", len(left), len(right))
	}
	for k, inst := range insts {
		wantLeft, err := gbdt.GoesLeft(b.view, inst, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bitmapGet(bits, k) != wantLeft {
			t.Fatalf("bitmap bit %d disagrees with GoesLeft", k)
		}
	}
	// left/right must preserve instance order.
	for i := 1; i < len(left); i++ {
		if left[i] <= left[i-1] {
			t.Fatal("left not in order")
		}
	}
}

func TestBetterCandidateOrder(t *testing.T) {
	a := candidate{split: gbdt.Split{Gain: 5, Bin: 1}, party: 0, globalFeat: 10}
	b := candidate{split: gbdt.Split{Gain: 5, Bin: 0}, party: 1, globalFeat: 3}
	if betterCandidate(a, b) || !betterCandidate(b, a) {
		t.Error("tie must break toward the lower global feature")
	}
	c := candidate{split: gbdt.Split{Gain: 6, Bin: 9}, party: 1, globalFeat: 99}
	if !betterCandidate(c, b) {
		t.Error("higher gain must win regardless of feature index")
	}
	d := candidate{split: gbdt.Split{Gain: 5, Bin: 0}, party: 0, globalFeat: 3}
	e := candidate{split: gbdt.Split{Gain: 5, Bin: 2}, party: 0, globalFeat: 3}
	if !betterCandidate(d, e) || betterCandidate(e, d) {
		t.Error("same feature tie must break toward the lower bin")
	}
}

func TestDecryptBinEmptyPayload(t *testing.T) {
	b := newBareActiveParty(t, 10, 2, 93)
	v, err := b.decryptBin(nil, 8)
	if err != nil || v != 0 {
		t.Errorf("empty bin = %g, %v; want 0, nil", v, err)
	}
}

func TestAllocIDMonotonic(t *testing.T) {
	b := newBareActiveParty(t, 10, 2, 94)
	b.nextID = rootID
	prev := rootID
	for i := 0; i < 10; i++ {
		id := b.allocID()
		if id <= prev {
			t.Fatal("IDs not strictly increasing")
		}
		prev = id
	}
}

func TestOwnBestMatchesLocalBestSplit(t *testing.T) {
	b := newBareActiveParty(t, 200, 4, 95)
	insts := make([]int32, 200)
	var g0, h0 float64
	for i := range insts {
		insts[i] = int32(i)
		g0 += b.grads[i]
		h0 += b.hess[i]
	}
	node := &bNode{id: rootID, insts: insts, g: g0, h: h0}
	hists, err := b.buildOwnHistograms([]*bNode{node})
	if err != nil {
		t.Fatal(err)
	}
	cand := b.ownBest(hists[0], node)
	want := gbdt.BestSplit(hists[0], g0, h0, b.cfg.Split)
	if cand.split != want {
		t.Errorf("ownBest = %+v, want %+v", cand.split, want)
	}
	if cand.valid() && cand.globalFeat != b.bOffset+want.Feature {
		t.Errorf("globalFeat = %d", cand.globalFeat)
	}
}
