package core

import (
	"math"
	"sync"
	"testing"

	"vf2boost/internal/mq"
)

// tcpTransport adapts a TCP producer/consumer pair to Transport, the same
// way cmd/vf2boost's party subcommand does.
type tcpTransport struct {
	prod *mq.RemoteProducer
	cons *mq.RemoteConsumer
}

func (t tcpTransport) Send(b []byte) error      { return t.prod.Send(b) }
func (t tcpTransport) Receive() ([]byte, error) { return t.cons.Receive() }

func dialPair(t *testing.T, addr, secret, sendTopic, recvTopic string) tcpTransport {
	t.Helper()
	prod, err := mq.DialProducer(addr, sendTopic, mq.Token([]byte(secret), sendTopic))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := mq.DialConsumer(addr, recvTopic, mq.Token([]byte(secret), recvTopic))
	if err != nil {
		t.Fatal(err)
	}
	return tcpTransport{prod: prod, cons: cons}
}

// TestDistributedTrainingOverTCP runs the full protocol with each party
// attached to the broker through the TCP gateway — the paper's deployment
// shape — and checks the result matches the in-process session exactly.
func TestDistributedTrainingOverTCP(t *testing.T) {
	joined, parts := twoPartyData(t, 300, 5, 4, 1, true, 21)
	_ = joined

	secret := "gw-secret"
	broker := mq.NewBroker(mq.WithAuth([]byte(secret)))
	defer broker.Close()
	gw := mq.NewGateway(broker)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	cfg := quickConfig(SchemeMock)
	cfg.Trees = 3

	var wg sync.WaitGroup
	var aModel *PartyModel
	var aErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr := dialPair(t, addr, secret, "a02b", "b2a0")
		aModel, aErr = RunPassiveParty(0, parts[0], cfg, tr)
	}()

	bTr := dialPair(t, addr, secret, "b2a0", "a02b")
	bModel, stats, err := RunActiveParty(parts[1], cfg, []Transport{bTr})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if aErr != nil {
		t.Fatal(aErr)
	}
	if stats.TreesFinished() != int64(cfg.Trees) {
		t.Errorf("finished %d trees", stats.TreesFinished())
	}

	// Assemble and compare against the in-process session.
	for len(aModel.Trees) < cfg.Trees {
		aModel.Trees = append(aModel.Trees, NewFedTree(rootID))
	}
	distributed := &FederatedModel{
		Parties:      []*PartyModel{aModel, bModel},
		LearningRate: cfg.LearningRate,
	}
	inproc, _ := trainFed(t, parts, cfg)

	dm, err := distributed.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	im, err := inproc.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dm {
		if math.Abs(dm[i]-im[i]) > 1e-9 {
			t.Fatalf("TCP-distributed model diverges from in-process at row %d", i)
		}
	}
}

// TestDistributedPaillierOverTCP exercises the real cryptosystem across
// the gateway (small key, few trees).
func TestDistributedPaillierOverTCP(t *testing.T) {
	_, parts := twoPartyData(t, 150, 3, 3, 1, true, 22)

	broker := mq.NewBroker()
	defer broker.Close()
	gw := mq.NewGateway(broker)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	cfg := quickConfig(SchemePaillier)
	cfg.Trees = 1

	var wg sync.WaitGroup
	var aErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr := dialPair(t, addr, "", "a02b", "b2a0")
		_, aErr = RunPassiveParty(0, parts[0], cfg, tr)
	}()
	bTr := dialPair(t, addr, "", "b2a0", "a02b")
	_, stats, err := RunActiveParty(parts[1], cfg, []Transport{bTr})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if aErr != nil {
		t.Fatal(aErr)
	}
	if stats.DecryptTime() <= 0 {
		t.Error("no decryption happened over TCP")
	}
}

// TestRunPartyValidation covers the exported runner validation paths.
func TestRunPartyValidation(t *testing.T) {
	_, parts := twoPartyData(t, 50, 2, 2, 1, true, 23)
	bad := quickConfig(SchemeMock)
	bad.Trees = 0
	if _, err := RunPassiveParty(0, parts[0], bad, nil); err == nil {
		t.Error("invalid config accepted by RunPassiveParty")
	}
	if _, _, err := RunActiveParty(parts[1], bad, nil); err == nil {
		t.Error("invalid config accepted by RunActiveParty")
	}
	// Party B without labels.
	if _, _, err := RunActiveParty(parts[0], quickConfig(SchemeMock), nil); err == nil {
		t.Error("unlabeled dataset accepted by RunActiveParty")
	}
}
