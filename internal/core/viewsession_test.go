package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/ooc"
)

func saveModel(t *testing.T, m *FederatedModel) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// A view-backed session over the same binned matrices the dataset
// session builds internally must produce the identical model.
func TestViewSessionMatchesDatasetSession(t *testing.T) {
	_, parts := twoPartyData(t, 400, 5, 5, 0.5, false, 9)
	cfg := quickConfig(SchemeMock)

	ref, _ := trainFed(t, parts, cfg)

	views := make([]gbdt.BinView, len(parts))
	for i, p := range parts {
		mapper, err := gbdt.NewBinMapper(p, cfg.MaxBins)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = gbdt.NewBinnedMatrix(p, mapper)
	}
	s, err := NewViewSession(views, parts[len(parts)-1].Labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Train()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveModel(t, ref), saveModel(t, m)) {
		t.Fatal("view session model differs from dataset session model")
	}
}

// Federated out-of-core parity: every party trains against a disk-backed
// shard store under a tight budget, and the federated model must still be
// byte-identical to the all-in-memory run.
func TestViewSessionOOCParity(t *testing.T) {
	_, parts := twoPartyData(t, 500, 6, 4, 0.6, false, 13)
	cfg := quickConfig(SchemeMock)

	ref, _ := trainFed(t, parts, cfg)

	views := make([]gbdt.BinView, len(parts))
	var labels []float64
	for i, p := range parts {
		dir := t.TempDir()
		if err := ooc.Build(dir, ooc.NewDatasetSource(p), ooc.BuildOptions{MaxBins: cfg.MaxBins, ChunkRows: 64}); err != nil {
			t.Fatal(err)
		}
		st, err := ooc.Open(dir, ooc.Options{MemBudget: 8 << 10, Prefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = st
		if i == len(parts)-1 {
			if labels, err = st.Labels(); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := NewViewSession(views, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Train()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveModel(t, ref), saveModel(t, m)) {
		t.Fatal("out-of-core federated model differs from in-memory model")
	}
}

// A passive party whose shard store rots mid-training (no rebuild
// source attached) must abort the session cleanly: Train returns an
// error carrying the typed shard detail — never a panic, never a hang.
func TestViewSessionFaultyStoreAborts(t *testing.T) {
	_, parts := twoPartyData(t, 300, 5, 5, 0.5, false, 21)
	cfg := quickConfig(SchemeMock)

	views := make([]gbdt.BinView, len(parts))
	var labels []float64
	for i, p := range parts {
		dir := t.TempDir()
		if err := ooc.Build(dir, ooc.NewDatasetSource(p), ooc.BuildOptions{MaxBins: cfg.MaxBins, ChunkRows: 64}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// Corrupt every shard of the passive party's store so its
			// first demand load after Open fails unrecoverably.
			shards, err := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
			if err != nil || len(shards) == 0 {
				t.Fatalf("no shards to corrupt: %v", err)
			}
			for _, name := range shards {
				buf, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				buf[len(buf)-1] ^= 0xFF
				if err := os.WriteFile(name, buf, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		st, err := ooc.Open(dir, ooc.Options{RetryLoads: -1})
		if err != nil {
			t.Fatal(err)
		}
		views[i] = st
		if i == len(parts)-1 {
			if labels, err = st.Labels(); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := NewViewSession(views, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Train()
	if err == nil {
		t.Fatal("training over a corrupt store reported success")
	}
	if !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("abort error %v does not carry the shard detail", err)
	}
}

func TestViewSessionValidation(t *testing.T) {
	_, parts := twoPartyData(t, 60, 3, 3, 1, true, 4)
	cfg := quickConfig(SchemeMock)
	mk := func(p *dataset.Dataset) gbdt.BinView {
		mapper, err := gbdt.NewBinMapper(p, cfg.MaxBins)
		if err != nil {
			t.Fatal(err)
		}
		return gbdt.NewBinnedMatrix(p, mapper)
	}
	a, b := mk(parts[0]), mk(parts[1])
	labels := parts[1].Labels

	if _, err := NewViewSession([]gbdt.BinView{a}, labels, cfg); err == nil {
		t.Error("single view accepted")
	}
	if _, err := NewViewSession([]gbdt.BinView{a, b}, labels[:10], cfg); err == nil {
		t.Error("label/row mismatch accepted")
	}
	if _, err := NewViewSession([]gbdt.BinView{a, b}, nil, cfg); err == nil {
		t.Error("missing labels accepted")
	}
}
