package core

import (
	"fmt"
	"math/big"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vf2boost/internal/checkpoint"
	"vf2boost/internal/dataset"
	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
	"vf2boost/internal/objective"
	"vf2boost/internal/paillier"
	"vf2boost/internal/trace"
)

// passiveParty is a Party A engine: it owns feature columns but no labels,
// receives encrypted gradient statistics, builds encrypted histograms, and
// answers placement queries for the splits it wins. It is driven entirely
// by the messages on its link, so the same engine runs in-process or
// across the TCP gateway.
type passiveParty struct {
	index int
	cfg   Config

	// view is the binned feature matrix the engine sweeps: the in-memory
	// BinnedMatrix in the default path, or the disk-backed shard store of
	// internal/ooc when training out of core. cols caches the feature
	// count (len(mapper.Cuts)).
	view   gbdt.BinView
	cols   int
	mapper *gbdt.BinMapper

	scheme  he.Scheme
	codec   *fixedpoint.Codec
	plan    packPlan
	packing bool
	shiftCt he.Ciphertext

	// vec is set when setup negotiated a slot-batched backend; vbackend
	// is the opened backend (scheme aliases it) and pairs is its ⟨g,h⟩
	// pair count per ciphertext (Slots/2).
	vec      bool
	vbackend he.Backend
	pairs    int

	link   *link
	sendMu sync.Mutex // serializes link sends from tasks and the main loop
	stats  *Stats

	// failMu guards failErr, the first unrecoverable failure hit by a
	// background histogram task; see fail.
	failMu  sync.Mutex
	failErr error

	// offsets are the per-feature bin offsets of this party's mapper.
	offsets []int

	// Per-tree state.
	tree int
	gh   *encGH
	// vgh are the tree's gradient window ciphertexts in vec mode:
	// instance i is pair slot i%pairs of window i/pairs.
	vgh []he.VecCiphertext
	// rootVecParts are per-worker partial root accumulators so blaster
	// batches accumulate in parallel; merged when the last batch lands.
	rootVecParts []*vecHist
	rootCount    int
	// Multi-output state: outputs is the negotiated objective output
	// count k (1 = binary default) and roundTree the first class tree of
	// the current round — every gradient shipment of the round is tagged
	// with it. ghAll holds the k per-class scalar gradient streams (gh
	// aliases the stream of the tree currently building);
	// rootPartsAll/rootCountAll are their per-class sharded root builds.
	// pendingRootBins parks the finalized root bins of classes whose
	// trees have not started yet; vecRootBins retains the class-agnostic
	// vectorized root accumulators that every class tree of the round
	// reuses for sibling subtraction.
	outputs         int
	roundTree       int
	ghAll           []*encGH
	rootPartsAll    [][]*EncHistogram
	rootCountAll    []int
	pendingRootBins []*cachedBins
	vecRootBins     *cachedBins
	nodeInsts       map[int32][]int32
	// binCache retains each node's finalized bins for sibling
	// subtraction (HistogramSubtraction).
	binCache   map[int32]*cachedBins
	binCacheMu sync.Mutex

	// Abortable histogram sub-tasks, keyed by node ID.
	tasks   map[int32]*histTask
	tasksMu sync.Mutex
	taskWG  sync.WaitGroup
	sem     chan struct{} // bounds task parallelism

	model *PartyModel

	// ckpt, when set, snapshots the fragment after every completed tree.
	// A restored fragment (resume) is installed before run starts; its
	// length is announced to B via MsgResume at setup.
	ckpt *checkpoint.Store

	// rec, when set, records this party's Gantt lane.
	rec *trace.Recorder
}

// histTask is one abortable per-node histogram build (the "small
// sub-tasks which can be processed in parallel" of Figure 6).
type histTask struct {
	node    int32
	layer   int
	aborted atomic.Bool
}

func newPassiveParty(index int, data *dataset.Dataset, cfg Config, lk *link, stats *Stats) (*passiveParty, error) {
	mapper, err := gbdt.NewBinMapper(data, cfg.MaxBins)
	if err != nil {
		return nil, err
	}
	return newPassivePartyView(index, gbdt.NewBinnedMatrix(data, mapper), cfg, lk, stats)
}

// newPassivePartyView builds a passive engine over an already-binned
// view — the out-of-core entry point, where no Dataset ever exists.
func newPassivePartyView(index int, view gbdt.BinView, cfg Config, lk *link, stats *Stats) (*passiveParty, error) {
	mapper := view.Mapper()
	p := &passiveParty{
		index:  index,
		cfg:    cfg,
		view:   view,
		cols:   len(mapper.Cuts),
		mapper: mapper,
		link:   lk,
		stats:  stats,
		sem:    make(chan struct{}, cfg.Workers),
		model:  &PartyModel{Party: index},
	}
	p.offsets = make([]int, p.cols+1)
	for j := 0; j < p.cols; j++ {
		p.offsets[j+1] = p.offsets[j] + mapper.NumBins(j)
	}
	return p, nil
}

// cachedBins are one node's finalized histogram bins, retained for
// sibling subtraction — either the scalar per-bin form or the vectorized
// accumulators, never both.
type cachedBins struct {
	g, h []fixedpoint.EncNum
	vec  *vecHist
}

// run drives the passive engine until shutdown. It returns the party's
// model fragment.
func (p *passiveParty) run() (*PartyModel, error) {
	for {
		idleStart := time.Now()
		msg, err := p.link.recv()
		addDur(&p.stats.aIdleTime, time.Since(idleStart))
		if err != nil {
			// A task failure usually surfaces here: B aborts the session on
			// MsgAbort and the link dies. Report the root cause, not the
			// secondary transport error.
			if ferr := p.failed(); ferr != nil {
				return nil, ferr
			}
			return nil, fmt.Errorf("core: party %d receive: %w", p.index, err)
		}
		if ferr := p.failed(); ferr != nil {
			return nil, ferr
		}
		switch m := msg.(type) {
		case MsgSetup:
			if err := p.handleSetup(m); err != nil {
				return nil, err
			}
		case MsgGradBatch:
			if err := p.handleGradBatch(m); err != nil {
				return nil, err
			}
		case MsgVecGradBatch:
			if err := p.handleVecGradBatch(m); err != nil {
				return nil, err
			}
		case MsgDecisions:
			if err := p.handleDecisions(m); err != nil {
				return nil, err
			}
		case MsgDirty:
			if err := p.handleDirty(m); err != nil {
				return nil, err
			}
		case MsgTreeDone:
			p.taskWG.Wait()
			if p.outputs > 1 && (m.Tree+1)%p.outputs != 0 {
				// Mid-round advance: the next class tree consumes the same
				// gradient shipment, so only per-tree bookkeeping resets.
				// Checkpoints wait for the round boundary — a fragment is
				// resumable only at a completed round.
				if err := p.advanceClassTree(m.Tree + 1); err != nil {
					return nil, err
				}
			} else if p.ckpt != nil {
				if err := p.saveCheckpoint(m.Tree + 1); err != nil {
					return nil, fmt.Errorf("core: party %d checkpoint: %w", p.index, err)
				}
			}
		case MsgShutdown:
			p.taskWG.Wait()
			return p.model, nil
		default:
			return nil, fmt.Errorf("core: party %d: unexpected message %T", p.index, msg)
		}
	}
}

func (p *passiveParty) send(m any) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	return p.link.send(m)
}

// fail records the first unrecoverable failure hit by a background
// histogram task and notifies B so the whole session aborts. Hostile or
// corrupt wire input — e.g. a range-valid but non-invertible ciphertext
// in the gradient stream, which only a failed ModInverse can expose —
// must surface as a session error on both sides, never as a panic of the
// passive process. The recorded error is what run returns once its
// receive loop unblocks (B tears the link down on MsgAbort).
func (p *passiveParty) fail(err error) {
	p.failMu.Lock()
	first := p.failErr == nil
	if first {
		p.failErr = err
	}
	p.failMu.Unlock()
	if first {
		p.send(MsgAbort{Party: p.index, Reason: err.Error()})
	}
}

// failed returns the first recorded task failure, or nil.
func (p *passiveParty) failed() error {
	p.failMu.Lock()
	defer p.failMu.Unlock()
	return p.failErr
}

// handleSetup installs the shared cryptographic context. A setup carrying
// a backend name negotiates the vectorized protocol; the legacy scalar
// switch is untouched so mixed fleets keep the byte-identical fallback.
func (p *passiveParty) handleSetup(m MsgSetup) error {
	if m.Backend != "" {
		if err := p.setupBackend(m); err != nil {
			return err
		}
	} else {
		switch m.Scheme {
		case SchemePaillier:
			n := new(big.Int).SetBytes(m.N)
			pk := paillier.NewPublicKey(n)
			if len(m.ObfBase) > 0 {
				// B derived a DJN fast-obfuscation base at key setup; install
				// it so this party's encryptions use short-exponent h^x
				// obfuscators too. The base is validated — a malformed one
				// fails the session here rather than corrupting obfuscation.
				if err := pk.SetObfuscationBase(new(big.Int).SetBytes(m.ObfBase), m.ObfBits); err != nil {
					return fmt.Errorf("core: party %d installing obfuscation base: %w", p.index, err)
				}
			}
			p.scheme = he.NewPaillierPublic(pk)
		case SchemeMock:
			p.scheme = he.NewMock(m.Bits)
		default:
			return fmt.Errorf("core: setup with unknown scheme %q", m.Scheme)
		}
	}
	// Objective negotiation: a non-binary session names its objective in
	// the setup so this party can fail fast when its local registry
	// cannot mirror the training schedule (the fields ride MsgSetup only
	// when the objective is not the binary default, keeping single-output
	// setups wire-identical). Only the name and the output count are
	// shared — gradients stay encrypted and labels never leave B.
	p.outputs = m.Outputs
	if p.outputs < 1 {
		p.outputs = 1
	}
	if m.Objective != "" && !objective.Registered(baseName(m.Objective)) {
		return fmt.Errorf("core: party %d: peer negotiated unregistered objective %q (registered: %s)",
			p.index, m.Objective, strings.Join(objective.Names(), ", "))
	}
	if p.vec && p.outputs > 1 {
		ipw := p.pairs / p.outputs
		if ipw < 1 {
			return fmt.Errorf("core: party %d: backend %q packs %d pairs per ciphertext, fewer than the %d outputs",
				p.index, m.Backend, p.pairs, p.outputs)
		}
		// Each window ciphertext now carries ipw instances × outputs
		// classes of ⟨g,h⟩ lane pairs; all window arithmetic below runs
		// in ipw units, mirroring B's layout.
		p.pairs = ipw
	}
	p.codec = fixedpoint.NewCodec(p.scheme,
		fixedpoint.WithExponents(m.BaseExp, m.ExpSpread),
		fixedpoint.WithSeed(p.cfg.Seed+int64(p.index)+1))
	if p.vec && m.PackBits > 0 {
		return fmt.Errorf("core: party %d: setup combines histogram packing with the vectorized backend %q", p.index, m.Backend)
	}
	p.packing = m.PackBits > 0
	if p.packing {
		p.plan = packPlan{
			bits:     m.PackBits,
			capacity: (p.scheme.Bits() - 1) / m.PackBits,
			exp:      m.BaseExp + m.ExpSpread - 1,
			shift:    m.Shift,
		}
		ct, err := encryptShift(p.codec, p.plan)
		if err != nil {
			return fmt.Errorf("core: party %d encrypting shift: %w", p.index, err)
		}
		p.shiftCt = ct
	}
	if err := p.send(MsgReady{Party: p.index, Features: p.cols, Rows: p.view.Rows()}); err != nil {
		return err
	}
	// Announce the resume point: how many completed rounds the restored
	// fragment covers (0 when fresh). B rewinds to the slowest party.
	return p.send(MsgResume{Party: p.index, Trees: len(p.model.Trees)})
}

// setupBackend opens a negotiated slot-batched backend. The name must be
// registered locally — an unregistered or mismatched negotiation fails
// the session (with the local registry listed) before any ciphertext is
// accepted, and the geometry is validated so a hostile setup cannot
// construct a degenerate lane layout.
func (p *passiveParty) setupBackend(m MsgSetup) error {
	if !he.Registered(m.Backend) {
		return fmt.Errorf("core: party %d: peer negotiated unregistered HE backend %q (registered: %s)",
			p.index, m.Backend, strings.Join(he.Names(), ", "))
	}
	if fam := he.Family(m.Backend); fam != m.Scheme {
		return fmt.Errorf("core: party %d: negotiated backend %q belongs to scheme family %q, setup says %q",
			p.index, m.Backend, fam, m.Scheme)
	}
	if !he.Batched(m.Backend) {
		return fmt.Errorf("core: party %d: scalar backend %q negotiated over the vectorized setup", p.index, m.Backend)
	}
	if m.Slots < 2 || m.Slots%2 != 0 {
		return fmt.Errorf("core: party %d: negotiated %d slots, need an even count >= 2", p.index, m.Slots)
	}
	if m.Headroom < 0 || m.LaneBits <= m.Headroom {
		return fmt.Errorf("core: party %d: negotiated lane geometry laneBits=%d headroom=%d invalid",
			p.index, m.LaneBits, m.Headroom)
	}
	params := he.Params{
		Bits:     m.Bits,
		ObfBits:  m.ObfBits,
		Slots:    m.Slots,
		LaneBits: m.LaneBits,
		Headroom: m.Headroom,
	}
	if len(m.N) > 0 {
		params.N = new(big.Int).SetBytes(m.N)
	}
	if len(m.ObfBase) > 0 {
		params.ObfBase = new(big.Int).SetBytes(m.ObfBase)
	}
	backend, err := he.Open(m.Backend, params)
	if err != nil {
		return fmt.Errorf("core: party %d opening backend %q: %w", p.index, m.Backend, err)
	}
	p.scheme = backend
	p.vbackend = backend
	p.vec = true
	p.pairs = m.Slots / 2
	return nil
}

// handleGradBatch stores a batch of encrypted gradient statistics and
// accumulates it straight into the root histogram — with blaster-style
// encryption the batches stream in while Party B is still encrypting, so
// encryption, transfer and root construction overlap.
func (p *passiveParty) handleGradBatch(m MsgGradBatch) error {
	if p.scheme == nil {
		return fmt.Errorf("core: gradients before setup")
	}
	if p.vec {
		return fmt.Errorf("core: scalar gradient batch in a vectorized session")
	}
	if m.Class < 0 || m.Class >= p.outputs {
		return fmt.Errorf("core: gradient batch for class %d of %d", m.Class, p.outputs)
	}
	n := p.view.Rows()
	if p.ghAll == nil || p.roundTree != m.Tree {
		// A replayed round (B resumed behind this party's checkpoint)
		// invalidates the trees recorded at or after it: discard them and
		// rebuild from the replay, which is deterministic.
		if m.Tree < len(p.model.Trees) {
			p.model.Trees = p.model.Trees[:m.Tree]
		}
		p.roundTree = m.Tree
		p.tree = m.Tree
		p.ghAll = make([]*encGH, p.outputs)
		for c := range p.ghAll {
			p.ghAll[c] = &encGH{
				g: make([]fixedpoint.EncNum, n),
				h: make([]fixedpoint.EncNum, n),
			}
		}
		p.gh = p.ghAll[0]
		p.rootPartsAll = make([][]*EncHistogram, p.outputs)
		for c := range p.rootPartsAll {
			p.rootPartsAll[c] = make([]*EncHistogram, p.cfg.Workers)
		}
		p.rootCountAll = make([]int, p.outputs)
		p.pendingRootBins = make([]*cachedBins, p.outputs)
		p.nodeInsts = make(map[int32][]int32)
		p.tasks = make(map[int32]*histTask)
		p.binCache = make(map[int32]*cachedBins)
	}
	gh := p.ghAll[m.Class]
	if m.Start+len(m.G) > n {
		return fmt.Errorf("core: gradient batch [%d,%d) out of range", m.Start, m.Start+len(m.G))
	}
	if len(m.H) != len(m.G) || len(m.GExp) != len(m.G) || len(m.HExp) != len(m.G) {
		return fmt.Errorf("core: gradient batch with mismatched lengths g=%d h=%d gexp=%d hexp=%d",
			len(m.G), len(m.H), len(m.GExp), len(m.HExp))
	}
	// The session codec only produces exponents in [BaseExp,
	// BaseExp+ExpSpread); anything else is corrupt or hostile input and
	// must be rejected here — downstream accumulation indexes slot rows by
	// exponent and treats out-of-range values as a programming error.
	minExp, maxExp := p.codec.BaseExp(), p.codec.BaseExp()+p.codec.ExpSpread()
	for k := range m.G {
		if e := int(m.GExp[k]); e < minExp || e >= maxExp {
			return fmt.Errorf("core: gradient exponent %d outside codec range [%d,%d)", e, minExp, maxExp)
		}
		if e := int(m.HExp[k]); e < minExp || e >= maxExp {
			return fmt.Errorf("core: hessian exponent %d outside codec range [%d,%d)", e, minExp, maxExp)
		}
		gc, err := p.scheme.Unmarshal(m.G[k])
		if err != nil {
			return err
		}
		hc, err := p.scheme.Unmarshal(m.H[k])
		if err != nil {
			return err
		}
		i := m.Start + k
		gh.g[i] = fixedpoint.EncNum{Exp: int(m.GExp[k]), Ct: gc}
		gh.h[i] = fixedpoint.EncNum{Exp: int(m.HExp[k]), Ct: hc}
	}

	// Accumulate this batch into the root histogram immediately,
	// sharded across workers (each worker owns a partial histogram;
	// merged once the last batch arrives).
	start := time.Now()
	endSpan := p.rec.Span(p.lane("BuildHist"), fmt.Sprintf("root batch @%d", m.Start))
	insts := make([]int32, len(m.G))
	for k := range insts {
		insts[k] = int32(m.Start + k)
	}
	rootParts := p.rootPartsAll[m.Class]
	workers := len(rootParts)
	var wg sync.WaitGroup
	workerErrs := make([]error, workers)
	chunk := (len(insts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(insts) {
			break
		}
		hi := lo + chunk
		if hi > len(insts) {
			hi = len(insts)
		}
		if rootParts[w] == nil {
			rootParts[w] = NewEncHistogram(p.codec, p.mapper, p.cfg.ReorderedAccumulation)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			workerErrs[w] = rootParts[w].Accumulate(p.view, insts[lo:hi], gh)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range workerErrs {
		if err != nil {
			// Notify B before unwinding: without the abort the active
			// party would wait forever for this root histogram.
			err = fmt.Errorf("core: party %d root histogram sweep: %w", p.index, err)
			p.fail(err)
			return err
		}
	}
	p.rootCountAll[m.Class] += len(insts)
	endSpan()
	addDur(&p.stats.buildHistTime, time.Since(start))

	if m.Last {
		if p.rootCountAll[m.Class] != n {
			return fmt.Errorf("core: root saw %d of %d instances", p.rootCountAll[m.Class], n)
		}
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		p.nodeInsts[rootID] = all
		if p.cfg.MaxDepth > 0 {
			var root *EncHistogram
			for _, part := range rootParts {
				if part == nil {
					continue
				}
				if root == nil {
					root = part
				} else {
					root.Merge(part)
				}
			}
			if root == nil {
				root = NewEncHistogram(p.codec, p.mapper, p.cfg.ReorderedAccumulation)
			}
			g, h := root.FinalizeBins(-1)
			bins := &cachedBins{g: g, h: h}
			var nh NodeHist
			var err error
			if m.Class == 0 {
				nh, err = p.wireCached(rootID, bins)
			} else {
				// A later class's root must not clobber the building
				// tree's cached root; park it for advanceClassTree.
				if p.cfg.HistogramSubtraction {
					p.pendingRootBins[m.Class] = bins
				}
				nh, err = p.wireUncached(rootID, bins)
			}
			if err != nil {
				return err
			}
			// Class c's tree is the round's tree roundTree+c: tag its root
			// so B's pump files it under the tree that will consume it.
			if err := p.send(MsgHistograms{Tree: m.Tree + m.Class, Layer: 0, Nodes: []NodeHist{nh}}); err != nil {
				return err
			}
		}
		p.rootPartsAll[m.Class] = nil
	}
	return nil
}

// handleVecGradBatch is the vectorized counterpart of handleGradBatch:
// each ciphertext is a window of pairs ⟨g,h⟩ pairs, so the batch covers
// instances [Start, Start+len(Cts)·pairs). Windows are accumulated whole
// into per-(bin, slot) accumulators; the lanes belonging to window-mates
// in other bins are garbage the decryptor never reads.
func (p *passiveParty) handleVecGradBatch(m MsgVecGradBatch) error {
	if p.scheme == nil {
		return fmt.Errorf("core: gradients before setup")
	}
	if !p.vec {
		return fmt.Errorf("core: vectorized gradient batch in a scalar session")
	}
	n := p.view.Rows()
	windows := (n + p.pairs - 1) / p.pairs
	if p.vgh == nil || p.tree != m.Tree {
		// A replayed round (B resumed behind this party's checkpoint)
		// invalidates the trees recorded at or after it: discard them and
		// rebuild from the replay, which is deterministic.
		if m.Tree < len(p.model.Trees) {
			p.model.Trees = p.model.Trees[:m.Tree]
		}
		p.tree = m.Tree
		p.vgh = make([]he.VecCiphertext, windows)
		p.rootVecParts = make([]*vecHist, p.cfg.Workers)
		p.rootCount = 0
		p.nodeInsts = make(map[int32][]int32)
		p.tasks = make(map[int32]*histTask)
		p.binCache = make(map[int32]*cachedBins)
	}
	if m.Start%p.pairs != 0 {
		return fmt.Errorf("core: vectorized batch start %d not aligned to %d-pair windows", m.Start, p.pairs)
	}
	w0 := m.Start / p.pairs
	if w0+len(m.Cts) > windows {
		return fmt.Errorf("core: vectorized batch windows [%d,%d) out of range (have %d)",
			w0, w0+len(m.Cts), windows)
	}
	for k, payload := range m.Cts {
		v, err := p.vbackend.UnmarshalVec(payload)
		if err != nil {
			return err
		}
		p.vgh[w0+k] = v
	}
	end := m.Start + len(m.Cts)*p.pairs
	if end > n {
		end = n
	}

	// Accumulate this batch into the root accumulators immediately,
	// sharded across workers like the scalar path.
	start := time.Now()
	endSpan := p.rec.Span(p.lane("BuildHist"), fmt.Sprintf("root batch @%d", m.Start))
	insts := make([]int32, end-m.Start)
	for k := range insts {
		insts[k] = int32(m.Start + k)
	}
	workers := len(p.rootVecParts)
	var wg sync.WaitGroup
	workerErrs := make([]error, workers)
	chunk := (len(insts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(insts) {
			break
		}
		hi := lo + chunk
		if hi > len(insts) {
			hi = len(insts)
		}
		if p.rootVecParts[w] == nil {
			p.rootVecParts[w] = newVecHist(p.codec, p.vbackend, p.offsets, p.pairs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			workerErrs[w] = p.rootVecParts[w].accumulate(p.view, insts[lo:hi], p.vgh)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range workerErrs {
		if err != nil {
			// Notify B before unwinding: without the abort the active
			// party would wait forever for this root histogram.
			err = fmt.Errorf("core: party %d root histogram sweep: %w", p.index, err)
			p.fail(err)
			return err
		}
	}
	p.rootCount += len(insts)
	endSpan()
	addDur(&p.stats.buildHistTime, time.Since(start))

	if m.Last {
		if p.rootCount != n {
			return fmt.Errorf("core: root saw %d of %d instances", p.rootCount, n)
		}
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		p.nodeInsts[rootID] = all
		if p.cfg.MaxDepth > 0 {
			var root *vecHist
			for _, part := range p.rootVecParts {
				if part == nil {
					continue
				}
				if root == nil {
					root = part
				} else {
					root.merge(part)
				}
			}
			if root == nil {
				root = newVecHist(p.codec, p.vbackend, p.offsets, p.pairs)
			}
			bins := &cachedBins{vec: root}
			if p.outputs > 1 {
				// The accumulators carry every class's lanes, so the later
				// class trees of this round reuse them as the sibling-
				// subtraction parent of their own root.
				p.vecRootBins = bins
			}
			nh, err := p.wireCached(rootID, bins)
			if err != nil {
				return err
			}
			if err := p.send(MsgHistograms{Tree: p.tree, Layer: 0, Nodes: []NodeHist{nh}}); err != nil {
				return err
			}
		}
		p.rootVecParts = nil
	}
	return nil
}

// wireCached caches a node's finalized bins for sibling subtraction and
// serializes them, dispatching on the representation.
func (p *passiveParty) wireCached(node int32, bins *cachedBins) (NodeHist, error) {
	if p.cfg.HistogramSubtraction {
		p.binCacheMu.Lock()
		p.binCache[node] = bins
		p.binCacheMu.Unlock()
	}
	return p.wireUncached(node, bins)
}

// wireUncached serializes a node's finalized bins without touching the
// sibling-subtraction cache — used for the root histograms of class
// trees that have not started yet, which must not clobber the building
// tree's cached root.
func (p *passiveParty) wireUncached(node int32, bins *cachedBins) (NodeHist, error) {
	if bins.vec != nil {
		return p.wireVecNodeHist(node, bins.vec), nil
	}
	return p.wireNodeHist(node, bins.g, bins.h)
}

// advanceClassTree moves this party to the next class tree of the
// current multi-output round: the round's gradient shipment stays live,
// but all per-tree bookkeeping (node instance lists, abortable tasks,
// the sibling-subtraction cache) restarts at the root. The class's root
// histogram was already built and shipped at round start, so B proceeds
// straight to the root decision without another encryption pass.
func (p *passiveParty) advanceClassTree(t int) error {
	p.tree = t
	n := p.view.Rows()
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	p.nodeInsts = map[int32][]int32{rootID: all}
	p.tasks = make(map[int32]*histTask)
	p.binCache = make(map[int32]*cachedBins)
	if p.vec {
		if p.cfg.HistogramSubtraction && p.vecRootBins != nil {
			p.binCache[rootID] = p.vecRootBins
		}
		return nil
	}
	class := t % p.outputs
	if class >= len(p.ghAll) || p.ghAll[class] == nil {
		return fmt.Errorf("core: party %d: class %d tree %d started before its gradient stream", p.index, class, t)
	}
	p.gh = p.ghAll[class]
	if p.cfg.HistogramSubtraction && p.pendingRootBins[class] != nil {
		p.binCache[rootID] = p.pendingRootBins[class]
	}
	return nil
}

// wireVecNodeHist serializes a node's vectorized accumulators. Every
// feature ships with Vec set — even an empty one — so the decryptor never
// falls back to the scalar layout mid-histogram.
func (p *passiveParty) wireVecNodeHist(node int32, vh *vecHist) NodeHist {
	nh := NodeHist{Node: node, Feats: make([]FeatHist, p.cols)}
	for j := 0; j < p.cols; j++ {
		nh.Feats[j] = vh.wireFeat(j)
	}
	return nh
}

// wireNodeHist serializes finalized scalar bins (callers go through
// wireCached, which owns the sibling-subtraction cache). With adaptive
// packing a feature ships packed only when that reduces Party B's
// decryptions (occupied bins exceed the packed ciphertext count);
// packFeature scales the chosen features to the unified exponent.
func (p *passiveParty) wireNodeHist(node int32, g, h []fixedpoint.EncNum) (NodeHist, error) {
	nh := NodeHist{Node: node, Feats: make([]FeatHist, p.cols)}
	for j := 0; j < p.cols; j++ {
		lo, hi := p.offsets[j], p.offsets[j+1]
		fh := FeatHist{NumBins: hi - lo}
		if p.packing && p.shouldPack(g[lo:hi], h[lo:hi]) {
			pg, err := packFeature(p.codec, g[lo:hi], p.shiftCt, p.plan)
			if err != nil {
				return NodeHist{}, err
			}
			ph, err := packFeature(p.codec, h[lo:hi], p.shiftCt, p.plan)
			if err != nil {
				return NodeHist{}, err
			}
			fh.Packed = true
			fh.PackedG, fh.PackedH = pg, ph
			fh.Exp = int16(p.plan.exp)
		} else {
			fh.GBins = make([][]byte, hi-lo)
			fh.HBins = make([][]byte, hi-lo)
			fh.GExp = make([]int16, hi-lo)
			fh.HExp = make([]int16, hi-lo)
			for k := lo; k < hi; k++ {
				fh.GBins[k-lo], fh.GExp[k-lo] = p.marshalBin(g[k])
				fh.HBins[k-lo], fh.HExp[k-lo] = p.marshalBin(h[k])
			}
		}
		nh.Feats[j] = fh
	}
	return nh, nil
}

// shouldPack decides per feature whether packing pays off. Without
// adaptive packing every feature is packed (the paper's behaviour).
func (p *passiveParty) shouldPack(g, h []fixedpoint.EncNum) bool {
	if !p.cfg.AdaptivePacking {
		return true
	}
	occupied := 0
	for i := range g {
		if g[i].Ct != nil || h[i].Ct != nil {
			occupied++
		}
	}
	packedCts := (len(g) + p.plan.capacity - 1) / p.plan.capacity
	return occupied > packedCts
}

// marshalBin serializes a bin; empty bins become nil payloads, which the
// decoder treats as exact zero. Emptiness carries no extra information:
// Party B decrypts every bin sum anyway, so it would see the zeros
// regardless.
func (p *passiveParty) marshalBin(b fixedpoint.EncNum) ([]byte, int16) {
	if b.Ct == nil {
		return nil, int16(p.codec.BaseExp())
	}
	return p.scheme.Marshal(b.Ct), int16(b.Exp)
}

// handleDecisions applies a layer's (tentative or final) node decisions.
func (p *passiveParty) handleDecisions(m MsgDecisions) error {
	for _, d := range m.Nodes {
		if err := p.applyDecision(m.Layer, d); err != nil {
			return err
		}
	}
	return nil
}

func (p *passiveParty) applyDecision(layer int, d NodeDecision) error {
	// Corrective decisions may abort previously-scheduled children.
	if d.AbortLeft != 0 || d.AbortRight != 0 {
		p.abortChildren(d.AbortLeft, d.AbortRight)
	}
	insts, ok := p.nodeInsts[d.Node]
	if !ok {
		return fmt.Errorf("core: party %d: decision for unknown node %d", p.index, d.Node)
	}
	switch d.Action {
	case ActionLeaf:
		// Keep the instance list: under the optimistic protocol a
		// tentative leaf can still be revived by a dirty correction, and
		// per-tree state is discarded wholesale at MsgTreeDone anyway.
		return nil
	case ActionSplitB:
		if len(d.Placement) == 0 && d.Count > 0 {
			return fmt.Errorf("core: splitB decision without placement for node %d", d.Node)
		}
		left, right := applyPlacement(insts, d.Placement)
		p.childReady(d.Node, layer, d.LeftID, left, d.RightID, right)
		return nil
	case ActionSplitA:
		if d.Owner == p.index {
			// My split: record it, compute the placement and answer.
			threshold := p.mapper.Threshold(int(d.Feature), int(d.Bin))
			p.recordSplit(d.Node, d.Feature, threshold, d.LeftID, d.RightID)
			left, right, err := p.partition(insts, d.Feature, d.Bin)
			if err != nil {
				// Notify B before unwinding: it is waiting on the placement
				// this partition was about to produce.
				err = fmt.Errorf("core: party %d partitioning node %d: %w", p.index, d.Node, err)
				p.fail(err)
				return err
			}
			bits := make([]bool, len(insts))
			li := 0
			for k, inst := range insts {
				if li < len(left) && left[li] == inst {
					bits[k] = true
					li++
				}
			}
			if err := p.send(MsgPlacement{Tree: p.tree, Layer: layer, Node: d.Node, Bits: packBitmap(bits), Count: len(insts)}); err != nil {
				return err
			}
			p.childReady(d.Node, layer, d.LeftID, left, d.RightID, right)
			return nil
		}
		// Another party's split: the placement is relayed by B.
		if len(d.Placement) == 0 && d.Count > 0 {
			return fmt.Errorf("core: relayed splitA without placement for node %d", d.Node)
		}
		left, right := applyPlacement(insts, d.Placement)
		p.childReady(d.Node, layer, d.LeftID, left, d.RightID, right)
		return nil
	default:
		return fmt.Errorf("core: unknown decision action %d", d.Action)
	}
}

// handleDirty rolls back a dirty node: this party's split won, so the
// tentative children are aborted and the corrected split applied.
func (p *passiveParty) handleDirty(m MsgDirty) error {
	p.abortChildren(m.OldLeft, m.OldRight)
	return p.applyDecision(m.Layer, NodeDecision{
		Node:    m.Node,
		Action:  ActionSplitA,
		Owner:   p.index,
		LeftID:  m.LeftID,
		RightID: m.RightID,
		Feature: m.Feature,
		Bin:     m.Bin,
	})
}

// abortChildren cancels queued or running histogram tasks and discards the
// instance lists of aborted tentative children.
func (p *passiveParty) abortChildren(ids ...int32) {
	p.tasksMu.Lock()
	defer p.tasksMu.Unlock()
	for _, id := range ids {
		if id == 0 {
			continue
		}
		if t, ok := p.tasks[id]; ok {
			t.aborted.Store(true)
			delete(p.tasks, id)
			p.stats.abortedTasks.Add(1)
		}
		delete(p.nodeInsts, id)
	}
}

// recordSplit stores this party's private split payload in its model
// fragment.
func (p *passiveParty) recordSplit(node int32, feature int32, threshold float64, left, right int32) {
	for len(p.model.Trees) <= p.tree {
		p.model.Trees = append(p.model.Trees, NewFedTree(rootID))
	}
	t := p.model.Trees[p.tree]
	t.Nodes[node] = &FedNode{
		Owner:     p.index,
		Feature:   feature,
		Threshold: threshold,
		Left:      left,
		Right:     right,
	}
}

// partition splits an instance list on one of this party's features.
func (p *passiveParty) partition(insts []int32, feature, bin int32) (left, right []int32, err error) {
	for _, i := range insts {
		goesLeft, err := gbdt.GoesLeft(p.view, i, feature, bin)
		if err != nil {
			return nil, nil, err
		}
		if goesLeft {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right, nil
}

// childReady registers the children of a split node and schedules their
// histogram builds (children at the depth limit are future leaves and
// need no histograms).
func (p *passiveParty) childReady(parent int32, layer int, leftID int32, left []int32, rightID int32, right []int32) {
	p.nodeInsts[leftID] = left
	p.nodeInsts[rightID] = right
	childLayer := layer + 1
	if childLayer >= p.cfg.MaxDepth {
		return
	}
	if p.cfg.HistogramSubtraction {
		p.binCacheMu.Lock()
		parentBins, ok := p.binCache[parent]
		p.binCacheMu.Unlock()
		if ok {
			p.scheduleHistPair(parentBins, childLayer, leftID, left, rightID, right)
			return
		}
	}
	p.scheduleHist(leftID, childLayer, left)
	p.scheduleHist(rightID, childLayer, right)
}

// scheduleHistPair builds only the smaller child's histogram and derives
// the sibling by homomorphic subtraction from the cached parent bins. One
// abortable task covers both children.
func (p *passiveParty) scheduleHistPair(parent *cachedBins, layer int, leftID int32, left []int32, rightID int32, right []int32) {
	smallID, small, bigID := leftID, left, rightID
	if len(right) < len(left) {
		smallID, small, bigID = rightID, right, leftID
	}
	task := &histTask{node: smallID, layer: layer}
	p.tasksMu.Lock()
	p.tasks[smallID] = task
	p.tasks[bigID] = task
	p.tasksMu.Unlock()
	gh := p.gh
	wins := p.vgh
	tree := p.tree
	p.taskWG.Add(1)
	go func() {
		defer p.taskWG.Done()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		bins, ok, err := p.buildBins(task, small, gh, wins)
		if err != nil {
			p.fail(fmt.Errorf("core: party %d histogram for node %d: %w", p.index, smallID, err))
			return
		}
		if !ok {
			return
		}
		smallNH, err := p.wireCached(smallID, bins)
		if err != nil {
			p.fail(fmt.Errorf("core: party %d histogram for node %d: %w", p.index, smallID, err))
			return
		}
		if task.aborted.Load() {
			return
		}
		p.send(MsgHistograms{Tree: tree, Layer: layer, Nodes: []NodeHist{smallNH}})

		// Sibling = parent - small, bin by bin. Range validation on the
		// gradient stream cannot prove invertibility: the key owner (who
		// knows p and q) can ship a range-valid ciphertext with
		// gcd(c, n) ≠ 1, and the failure only shows up here when Sub's
		// ModInverse returns nil. That is hostile input, not a protocol
		// bug — fail the session instead of panicking.
		start := time.Now()
		sib, err := subtractCached(p.codec, parent, bins)
		if err != nil {
			p.fail(fmt.Errorf("core: party %d sibling histogram for node %d: %w", p.index, bigID, err))
			return
		}
		addDur(&p.stats.buildHistTime, time.Since(start))
		if task.aborted.Load() {
			return
		}
		bigNH, err := p.wireCached(bigID, sib)
		if err != nil {
			p.fail(fmt.Errorf("core: party %d histogram for node %d: %w", p.index, bigID, err))
			return
		}
		if task.aborted.Load() {
			return
		}
		p.send(MsgHistograms{Tree: tree, Layer: layer, Nodes: []NodeHist{bigNH}})
		p.tasksMu.Lock()
		delete(p.tasks, smallID)
		delete(p.tasks, bigID)
		p.tasksMu.Unlock()
	}()
}

// buildBins accumulates one node's histogram in abort-checked chunks and
// finalizes it into the representation the session runs — scalar bins or
// vectorized accumulators. ok is false when the task was aborted. A
// non-nil error means the binned view failed to deliver a row even after
// its own retries/rebuilds — a storage fault the caller must turn into a
// session abort.
func (p *passiveParty) buildBins(task *histTask, insts []int32, gh *encGH, wins []he.VecCiphertext) (bins *cachedBins, ok bool, err error) {
	if task.aborted.Load() {
		return nil, false, nil
	}
	if dh, ok := p.view.(gbdt.DepthHinter); ok {
		dh.HintDepth(task.layer)
	}
	start := time.Now()
	endSpan := p.rec.Span(p.lane("BuildHist"), fmt.Sprintf("node %d", task.node))
	defer endSpan()
	const chunk = 256
	if p.vec {
		vh := newVecHist(p.codec, p.vbackend, p.offsets, p.pairs)
		for lo := 0; lo < len(insts); lo += chunk {
			if task.aborted.Load() {
				return nil, false, nil
			}
			hi := lo + chunk
			if hi > len(insts) {
				hi = len(insts)
			}
			if err := vh.accumulate(p.view, insts[lo:hi], wins); err != nil {
				return nil, false, err
			}
		}
		addDur(&p.stats.buildHistTime, time.Since(start))
		if task.aborted.Load() {
			return nil, false, nil
		}
		return &cachedBins{vec: vh}, true, nil
	}
	eh := NewEncHistogram(p.codec, p.mapper, p.cfg.ReorderedAccumulation)
	for lo := 0; lo < len(insts); lo += chunk {
		if task.aborted.Load() {
			return nil, false, nil
		}
		hi := lo + chunk
		if hi > len(insts) {
			hi = len(insts)
		}
		if err := eh.Accumulate(p.view, insts[lo:hi], gh); err != nil {
			return nil, false, err
		}
	}
	addDur(&p.stats.buildHistTime, time.Since(start))
	if task.aborted.Load() {
		return nil, false, nil
	}
	g, h := eh.FinalizeBins(-1)
	return &cachedBins{g: g, h: h}, true, nil
}

// subtractCached derives the sibling bins as parent − child in whichever
// representation the pair shares.
func subtractCached(codec *fixedpoint.Codec, parent, child *cachedBins) (*cachedBins, error) {
	if (parent.vec != nil) != (child.vec != nil) {
		return nil, fmt.Errorf("core: sibling subtraction across scalar and vectorized histograms")
	}
	if parent.vec != nil {
		vh, err := subtractVecHist(parent.vec, child.vec)
		if err != nil {
			return nil, err
		}
		return &cachedBins{vec: vh}, nil
	}
	sg, err := subtractBins(codec, parent.g, child.g)
	if err != nil {
		return nil, err
	}
	sh, err := subtractBins(codec, parent.h, child.h)
	if err != nil {
		return nil, err
	}
	return &cachedBins{g: sg, h: sh}, nil
}

// subtractBins computes parent - child per bin. A child can only have
// mass where its parent does (child instances are a subset), so a nil
// parent bin forces a nil child bin.
func subtractBins(codec *fixedpoint.Codec, parent, child []fixedpoint.EncNum) ([]fixedpoint.EncNum, error) {
	out := make([]fixedpoint.EncNum, len(parent))
	for i := range parent {
		switch {
		case parent[i].Ct == nil && child[i].Ct == nil:
			// stays nil (zero)
		case parent[i].Ct == nil:
			return nil, fmt.Errorf("core: child histogram has mass in bin %d its parent lacks", i)
		case child[i].Ct == nil:
			out[i] = parent[i]
		default:
			var err error
			out[i], err = codec.SubEnc(parent[i], child[i])
			if err != nil {
				return nil, fmt.Errorf("core: subtracting bin %d: %w", i, err)
			}
		}
	}
	return out, nil
}

// scheduleHist launches an abortable histogram build for one node; the
// result is sent to B as soon as it completes (nodes stream independently,
// which is what lets B validate early and abort less work).
func (p *passiveParty) scheduleHist(node int32, layer int, insts []int32) {
	task := &histTask{node: node, layer: layer}
	p.tasksMu.Lock()
	p.tasks[node] = task
	p.tasksMu.Unlock()
	gh := p.gh
	wins := p.vgh
	tree := p.tree
	p.taskWG.Add(1)
	go func() {
		defer p.taskWG.Done()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		bins, ok, err := p.buildBins(task, insts, gh, wins)
		if err != nil {
			// The binned view exhausted its self-healing (retry + rebuild)
			// budget: the shard is unrecoverable, so abort the session
			// cleanly instead of training on a partial histogram.
			p.fail(fmt.Errorf("core: party %d histogram for node %d: %w", p.index, node, err))
			return
		}
		if !ok {
			return
		}
		nh, err := p.wireCached(node, bins)
		if err != nil {
			// Serialization works over ciphertexts accumulated from the
			// wire gradient stream; treat any failure as hostile input and
			// abort the session rather than crash the process.
			p.fail(fmt.Errorf("core: party %d histogram for node %d: %w", p.index, node, err))
			return
		}
		if task.aborted.Load() {
			return
		}
		p.send(MsgHistograms{Tree: tree, Layer: layer, Nodes: []NodeHist{nh}})
		p.tasksMu.Lock()
		delete(p.tasks, node)
		p.tasksMu.Unlock()
	}()
}

// applyPlacement splits an instance list by a placement bitmap (bit set =
// left), preserving order.
func applyPlacement(insts []int32, bm []byte) (left, right []int32) {
	for k, inst := range insts {
		if bitmapGet(bm, k) {
			left = append(left, inst)
		} else {
			right = append(right, inst)
		}
	}
	return left, right
}

// lane names this party's Gantt lane for a phase.
func (p *passiveParty) lane(phase string) trace.Lane {
	return trace.Lane(fmt.Sprintf("A%d:%s", p.index, phase))
}

// rootID is the fixed node ID of every tree's root.
const rootID int32 = 1
