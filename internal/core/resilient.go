package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vf2boost/internal/wire"
)

// The resilient link layer: an ARQ wrapper that turns an unreliable
// Transport (frames may be lost, delayed, duplicated, reordered, or the
// connection severed) back into the reliable in-order byte pipe the
// protocol engines assume. Each outgoing frame is wrapped in MsgEnvelope
// with a link-scoped sequence number; the receiver delivers strictly in
// sequence (holding early frames, dropping duplicates) and answers with
// cumulative MsgAck frames. Unacknowledged envelopes are retransmitted
// with exponential backoff and seeded jitter. When a link goes idle the
// sender emits MsgHeartbeat keepalives, so each side detects a dead peer
// (ErrPeerDead) instead of blocking forever; a heartbeat also piggybacks
// the receiver's cumulative ack, which re-synchronizes the sender after
// lost acks. An optional dial function re-establishes a severed
// connection and replays every unacked envelope — the receiver's
// duplicate suppression makes the replay idempotent.
//
// Control frames are always encoded with the binary codec regardless of
// the session codec: the wrapper peeks the frame tag and message ID to
// route them without a full decode.

// MsgEnvelope wraps one link frame with a reliable-delivery sequence
// number (link-scoped, starting at 1).
type MsgEnvelope struct {
	Seq   uint64
	Frame []byte
}

// MsgAck acknowledges in-order delivery of every envelope up to Cum.
type MsgAck struct {
	Cum uint64
}

// MsgHeartbeat is an idle-link keepalive; Cum piggybacks the sender's
// receive-side cumulative ack.
type MsgHeartbeat struct {
	Cum uint64
}

// ErrPeerDead is returned once a resilient link has heard nothing from
// its peer (data or heartbeat) for the configured PeerTimeout.
var ErrPeerDead = errors.New("core: peer unresponsive past the heartbeat timeout")

// errLinkClosed is returned by operations on a Close()d resilient link.
var errLinkClosed = errors.New("core: resilient link closed")

// ResilientConfig tunes the reliability wrapper. The zero value is
// usable: every field <= 0 falls back to its default.
type ResilientConfig struct {
	// RetryInterval is the initial retransmit wait for an unacked frame.
	RetryInterval time.Duration // default 200ms
	// RetryBackoff multiplies the wait after each retransmission.
	RetryBackoff float64 // default 2
	// RetryMax caps the per-frame retransmit wait.
	RetryMax time.Duration // default 5s
	// RetryJitter spreads each wait by ±this fraction (seeded by Seed),
	// decorrelating retry storms on a congested link.
	RetryJitter float64 // default 0.2
	// MaxRetries fails the link after this many retransmissions of one
	// frame; <= 0 retries until SendTimeout or PeerTimeout trips.
	MaxRetries int
	// SendTimeout fails the link when a frame stays unacked this long
	// (the send deadline); <= 0 disables.
	SendTimeout time.Duration
	// Heartbeat is the idle interval after which a keepalive is sent.
	Heartbeat time.Duration // default 1s
	// PeerTimeout declares the peer dead after this long without any
	// inbound frame (the receive deadline); <= 0 disables.
	PeerTimeout time.Duration // default 30s
	// RedialWait and RedialMax bound the backoff between reconnect
	// attempts; MaxRedials caps consecutive failed attempts (<= 0: 20).
	RedialWait time.Duration // default 250ms
	RedialMax  time.Duration // default 5s
	MaxRedials int
	// Seed drives the retry jitter; jitter is the only randomness here.
	Seed int64
}

// DefaultResilientConfig returns the WAN-shaped defaults.
func DefaultResilientConfig() ResilientConfig {
	return ResilientConfig{
		RetryInterval: 200 * time.Millisecond,
		RetryBackoff:  2,
		RetryMax:      5 * time.Second,
		RetryJitter:   0.2,
		Heartbeat:     time.Second,
		PeerTimeout:   30 * time.Second,
		RedialWait:    250 * time.Millisecond,
		RedialMax:     5 * time.Second,
		MaxRedials:    20,
	}
}

func (c *ResilientConfig) normalize() {
	d := DefaultResilientConfig()
	if c.RetryInterval <= 0 {
		c.RetryInterval = d.RetryInterval
	}
	if c.RetryBackoff < 1 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.RetryMax <= 0 {
		c.RetryMax = d.RetryMax
	}
	if c.RetryJitter < 0 || c.RetryJitter >= 1 {
		c.RetryJitter = d.RetryJitter
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = d.Heartbeat
	}
	if c.PeerTimeout < 0 {
		c.PeerTimeout = 0
	} else if c.PeerTimeout == 0 {
		c.PeerTimeout = d.PeerTimeout
	}
	if c.RedialWait <= 0 {
		c.RedialWait = d.RedialWait
	}
	if c.RedialMax <= 0 {
		c.RedialMax = d.RedialMax
	}
	if c.MaxRedials <= 0 {
		c.MaxRedials = d.MaxRedials
	}
}

// ResilientStats counts the recovery work a link performed.
type ResilientStats struct {
	Retransmits int64
	Redials     int64
	Heartbeats  int64
	DupFrames   int64 // inbound duplicates suppressed
	HeldFrames  int64 // inbound frames held for reordering
}

// String summarizes the recovery counters.
func (s ResilientStats) String() string {
	return fmt.Sprintf("link: %d retransmits, %d redials, %d heartbeats, %d dups dropped, %d frames reordered",
		s.Retransmits, s.Redials, s.Heartbeats, s.DupFrames, s.HeldFrames)
}

// pendingFrame is one sent-but-unacked envelope.
type pendingFrame struct {
	seq      uint64
	frame    []byte
	born     time.Time
	nextAt   time.Time
	interval time.Duration
	attempts int
}

// ResilientTransport implements Transport over an unreliable inner
// transport. Both peers of a link must be wrapped: the wrapper speaks
// envelope/ack/heartbeat frames on the wire.
type ResilientTransport struct {
	cfg  ResilientConfig
	dial func() (Transport, error) // nil: connection loss is fatal

	mu       sync.Mutex
	inner    Transport
	gen      int // connection generation, bumped per redial
	sendSeq  uint64
	pending  []*pendingFrame // ascending seq
	lastSend time.Time
	nextRecv uint64            // next in-order sequence expected
	held     map[uint64][]byte // early frames awaiting their gap
	rng      *rand.Rand
	fatalErr error

	deliver chan []byte
	dead    chan struct{} // closed on fatal error
	done    chan struct{} // closed by Close
	closing sync.Once
	failing sync.Once

	heardAt atomic.Int64 // UnixNano of the last inbound frame

	retransmits atomic.Int64
	redials     atomic.Int64
	heartbeats  atomic.Int64
	dupFrames   atomic.Int64
	heldFrames  atomic.Int64
}

// NewResilientTransport wraps inner with the reliability layer. dial, when
// non-nil, re-establishes a severed connection (inner may then be nil:
// the first connection is dialed immediately). The wrapper owns the inner
// transport and closes it (if it has a Close method) on Close.
func NewResilientTransport(inner Transport, dial func() (Transport, error), cfg ResilientConfig) (*ResilientTransport, error) {
	cfg.normalize()
	if inner == nil {
		if dial == nil {
			return nil, fmt.Errorf("core: resilient transport needs an inner transport or a dial function")
		}
		tr, err := dial()
		if err != nil {
			return nil, fmt.Errorf("core: resilient transport initial dial: %w", err)
		}
		inner = tr
	}
	r := &ResilientTransport{
		cfg:      cfg,
		dial:     dial,
		inner:    inner,
		nextRecv: 1,
		held:     make(map[uint64][]byte),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		deliver:  make(chan []byte, 1024),
		dead:     make(chan struct{}),
		done:     make(chan struct{}),
		lastSend: time.Now(),
	}
	r.heardAt.Store(time.Now().UnixNano())
	go r.recvLoop()
	go r.timerLoop()
	return r, nil
}

// Stats snapshots the recovery counters.
func (r *ResilientTransport) Stats() ResilientStats {
	return ResilientStats{
		Retransmits: r.retransmits.Load(),
		Redials:     r.redials.Load(),
		Heartbeats:  r.heartbeats.Load(),
		DupFrames:   r.dupFrames.Load(),
		HeldFrames:  r.heldFrames.Load(),
	}
}

// Close stops the background loops and closes the inner transport. Safe
// to call more than once.
func (r *ResilientTransport) Close() error {
	r.closing.Do(func() {
		close(r.done)
		r.mu.Lock()
		inner := r.inner
		r.mu.Unlock()
		closeTransport(inner)
	})
	return nil
}

// closeTransport closes a transport if it exposes a Close method (both
// the error-returning and plain signatures occur among mq endpoints).
func closeTransport(tr Transport) {
	switch c := tr.(type) {
	case interface{ Close() error }:
		c.Close()
	case interface{ Close() }:
		c.Close()
	}
}

// fail latches the first fatal error and wakes every waiter.
func (r *ResilientTransport) fail(err error) {
	r.failing.Do(func() {
		r.mu.Lock()
		r.fatalErr = err
		r.mu.Unlock()
		close(r.dead)
	})
}

func (r *ResilientTransport) fatal() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fatalErr != nil {
		return r.fatalErr
	}
	return errLinkClosed
}

func (r *ResilientTransport) isShutdown() bool {
	select {
	case <-r.done:
		return true
	case <-r.dead:
		return true
	default:
		return false
	}
}

// Send enqueues one frame for reliable in-order delivery. It never blocks
// on the network: the frame is retained until the peer acknowledges it,
// and retransmitted on the backoff schedule meanwhile.
func (r *ResilientTransport) Send(payload []byte) error {
	r.mu.Lock()
	if r.fatalErr != nil {
		err := r.fatalErr
		r.mu.Unlock()
		return err
	}
	select {
	case <-r.done:
		r.mu.Unlock()
		return errLinkClosed
	default:
	}
	r.sendSeq++
	now := time.Now()
	pf := &pendingFrame{
		seq:      r.sendSeq,
		frame:    payload,
		born:     now,
		interval: r.cfg.RetryInterval,
	}
	pf.nextAt = now.Add(r.jittered(pf.interval))
	r.pending = append(r.pending, pf)
	r.lastSend = now
	inner := r.inner
	r.mu.Unlock()
	r.transmit(inner, pf.seq, payload)
	return nil
}

// jittered spreads an interval by ±RetryJitter. Callers hold r.mu.
func (r *ResilientTransport) jittered(d time.Duration) time.Duration {
	if r.cfg.RetryJitter <= 0 {
		return d
	}
	f := 1 + r.cfg.RetryJitter*(2*r.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// transmit ships one envelope; errors are swallowed (the retransmit loop
// or the receive loop's redial recovers).
func (r *ResilientTransport) transmit(inner Transport, seq uint64, frame []byte) {
	buf, err := wire.Binary.Encode(MsgEnvelope{Seq: seq, Frame: frame})
	if err != nil {
		r.fail(fmt.Errorf("core: encoding envelope: %w", err))
		return
	}
	if err := inner.Send(buf); err != nil {
		wire.PutBuf(buf)
	}
}

// sendControl ships an ack or heartbeat; best-effort like transmit.
func (r *ResilientTransport) sendControl(inner Transport, m any) {
	buf, err := wire.Binary.Encode(m)
	if err != nil {
		return
	}
	if err := inner.Send(buf); err != nil {
		wire.PutBuf(buf)
	}
}

// Receive blocks for the next in-order frame. Frames already delivered
// in order are drained before a fatal error is reported.
func (r *ResilientTransport) Receive() ([]byte, error) {
	select {
	case f := <-r.deliver:
		return f, nil
	default:
	}
	select {
	case f := <-r.deliver:
		return f, nil
	case <-r.dead:
		select {
		case f := <-r.deliver:
			return f, nil
		default:
			return nil, r.fatal()
		}
	case <-r.done:
		return nil, errLinkClosed
	}
}

// recvLoop pulls frames off the inner transport, demultiplexes control
// frames, and redials on connection loss.
func (r *ResilientTransport) recvLoop() {
	for {
		r.mu.Lock()
		inner, gen := r.inner, r.gen
		r.mu.Unlock()
		payload, err := inner.Receive()
		if r.isShutdown() {
			return
		}
		if err != nil {
			if !r.reconnect(gen, err) {
				return
			}
			continue
		}
		r.handleFrame(payload)
	}
}

// reconnect re-establishes the connection after a receive error and
// replays every unacked envelope. It reports whether the loop should
// continue.
func (r *ResilientTransport) reconnect(gen int, cause error) bool {
	if r.dial == nil {
		r.fail(fmt.Errorf("core: resilient link receive: %w", cause))
		return false
	}
	wait := r.cfg.RedialWait
	for attempt := 0; attempt < r.cfg.MaxRedials; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(wait):
			case <-r.done:
				return false
			case <-r.dead:
				return false
			}
			wait *= 2
			if wait > r.cfg.RedialMax {
				wait = r.cfg.RedialMax
			}
		}
		tr, err := r.dial()
		if err != nil {
			continue
		}
		r.mu.Lock()
		closeTransport(r.inner)
		r.inner = tr
		r.gen = gen + 1
		pend := make([]*pendingFrame, len(r.pending))
		copy(pend, r.pending)
		r.mu.Unlock()
		r.redials.Add(1)
		// A fresh connection means the peer may have missed anything not
		// yet acked: replay the whole unacked window in order. Frames the
		// peer did receive are suppressed as duplicates on its side.
		for _, pf := range pend {
			r.transmit(tr, pf.seq, pf.frame)
		}
		// Give the peer a fresh chance to detect us before its timeout.
		r.heardAt.Store(time.Now().UnixNano())
		return true
	}
	r.fail(fmt.Errorf("core: resilient link: redial failed %d times: %w", r.cfg.MaxRedials, cause))
	return false
}

// handleFrame routes one inbound frame: envelope, ack, heartbeat, or (for
// mixed deployments) a bare frame passed through untouched.
func (r *ResilientTransport) handleFrame(payload []byte) {
	r.heardAt.Store(time.Now().UnixNano())
	if len(payload) >= 3 && payload[0] == wire.TagBinaryV1 {
		switch binary.BigEndian.Uint16(payload[1:3]) {
		case idEnvelope:
			m, err := wire.Binary.Decode(payload)
			if err != nil {
				r.fail(fmt.Errorf("core: resilient link: %w", err))
				return
			}
			wire.PutBuf(payload)
			env := m.(MsgEnvelope)
			r.onData(env.Seq, env.Frame)
			return
		case idAck:
			m, err := wire.Binary.Decode(payload)
			if err != nil {
				r.fail(fmt.Errorf("core: resilient link: %w", err))
				return
			}
			wire.PutBuf(payload)
			r.onAck(m.(MsgAck).Cum)
			return
		case idHeartbeat:
			m, err := wire.Binary.Decode(payload)
			if err != nil {
				r.fail(fmt.Errorf("core: resilient link: %w", err))
				return
			}
			wire.PutBuf(payload)
			r.onAck(m.(MsgHeartbeat).Cum)
			return
		}
	}
	// Not a control frame: the peer is not (yet) wrapped. Deliver as-is.
	select {
	case r.deliver <- payload:
	case <-r.done:
	case <-r.dead:
	}
}

// onData applies sequencing to one enveloped frame: duplicates are
// dropped (and re-acked, in case the original ack was lost), early frames
// held, and every newly contiguous frame delivered in order.
func (r *ResilientTransport) onData(seq uint64, frame []byte) {
	r.mu.Lock()
	if seq < r.nextRecv {
		cum := r.nextRecv - 1
		inner := r.inner
		r.mu.Unlock()
		r.dupFrames.Add(1)
		r.sendControl(inner, MsgAck{Cum: cum})
		return
	}
	if _, dup := r.held[seq]; dup {
		r.mu.Unlock()
		r.dupFrames.Add(1)
		return
	}
	if seq > r.nextRecv {
		r.heldFrames.Add(1)
	}
	r.held[seq] = frame
	var ready [][]byte
	for {
		f, ok := r.held[r.nextRecv]
		if !ok {
			break
		}
		delete(r.held, r.nextRecv)
		ready = append(ready, f)
		r.nextRecv++
	}
	cum := r.nextRecv - 1
	inner := r.inner
	r.mu.Unlock()
	for _, f := range ready {
		select {
		case r.deliver <- f:
		case <-r.done:
			return
		case <-r.dead:
			return
		}
	}
	if len(ready) > 0 {
		r.sendControl(inner, MsgAck{Cum: cum})
	}
}

// onAck discards every pending frame the cumulative ack covers. The
// buffers are released to the GC, not the pool: a retransmission may be
// in flight concurrently, so the pool must never hand them out again.
func (r *ResilientTransport) onAck(cum uint64) {
	r.mu.Lock()
	i := 0
	for i < len(r.pending) && r.pending[i].seq <= cum {
		i++
	}
	if i > 0 {
		r.pending = append(r.pending[:0:0], r.pending[i:]...)
	}
	r.mu.Unlock()
}

// timerLoop drives retransmissions, heartbeats, and the peer-death and
// send-deadline checks.
func (r *ResilientTransport) timerLoop() {
	tick := r.cfg.RetryInterval
	if r.cfg.Heartbeat < tick {
		tick = r.cfg.Heartbeat
	}
	tick /= 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-r.done:
			return
		case <-r.dead:
			return
		}
		now := time.Now()
		if r.cfg.PeerTimeout > 0 && now.Sub(time.Unix(0, r.heardAt.Load())) > r.cfg.PeerTimeout {
			r.fail(fmt.Errorf("%w (silent for over %v)", ErrPeerDead, r.cfg.PeerTimeout))
			return
		}

		type rtx struct {
			seq   uint64
			frame []byte
		}
		var resend []rtx
		var fatal error
		r.mu.Lock()
		inner := r.inner
		for _, pf := range r.pending {
			if r.cfg.SendTimeout > 0 && now.Sub(pf.born) > r.cfg.SendTimeout {
				fatal = fmt.Errorf("core: frame %d unacknowledged past the %v send deadline", pf.seq, r.cfg.SendTimeout)
				break
			}
			if now.Before(pf.nextAt) {
				continue
			}
			if r.cfg.MaxRetries > 0 && pf.attempts >= r.cfg.MaxRetries {
				fatal = fmt.Errorf("core: frame %d lost after %d retransmissions", pf.seq, pf.attempts)
				break
			}
			pf.attempts++
			pf.interval = time.Duration(float64(pf.interval) * r.cfg.RetryBackoff)
			if pf.interval > r.cfg.RetryMax {
				pf.interval = r.cfg.RetryMax
			}
			pf.nextAt = now.Add(r.jittered(pf.interval))
			resend = append(resend, rtx{pf.seq, pf.frame})
		}
		sendHB := fatal == nil && len(resend) == 0 && now.Sub(r.lastSend) >= r.cfg.Heartbeat
		if len(resend) > 0 || sendHB {
			r.lastSend = now
		}
		cum := r.nextRecv - 1
		r.mu.Unlock()
		if fatal != nil {
			r.fail(fatal)
			return
		}
		for _, t := range resend {
			r.retransmits.Add(1)
			r.transmit(inner, t.seq, t.frame)
		}
		if sendHB {
			r.heartbeats.Add(1)
			r.sendControl(inner, MsgHeartbeat{Cum: cum})
		}
	}
}
