package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"vf2boost/internal/dataset"
	"vf2boost/internal/metrics"
)

// Node ownership markers in the federated tree arena.
const (
	OwnerLeaf = -1 // node is a leaf
)

// FedNode is one node of a federated tree as seen by Party B, which knows
// the full structure but, for passive-party splits, only the owner index —
// not the feature or threshold.
type FedNode struct {
	// Owner is OwnerLeaf for leaves, otherwise the party index (passive
	// parties 0..P-2 in order, Party B = P-1) owning the split.
	Owner int `json:"owner"`
	// Feature and Threshold are filled only on nodes owned by the party
	// holding this tree copy; elsewhere they are zero.
	Feature   int32   `json:"feature"`
	Threshold float64 `json:"threshold"`
	Left      int32   `json:"left"`
	Right     int32   `json:"right"`
	// Weight is the leaf weight (Party B only).
	Weight float64 `json:"weight"`
	Gain   float64 `json:"gain,omitempty"`
}

// FedTree is a federated tree arena addressed by the node IDs Party B
// allocates. Under the optimistic protocol aborted children leave holes;
// the arena is a map so holes are free.
type FedTree struct {
	Nodes map[int32]*FedNode `json:"nodes"`
	Root  int32              `json:"root"`
}

// NewFedTree creates a tree with a single leaf root of the given ID.
func NewFedTree(root int32) *FedTree {
	return &FedTree{
		Nodes: map[int32]*FedNode{root: {Owner: OwnerLeaf}},
		Root:  root,
	}
}

// PartyModel is the model fragment one party retains after training: the
// shared structure plus only its own split payloads (features/thresholds).
type PartyModel struct {
	Party int        `json:"party"`
	Trees []*FedTree `json:"trees"`
}

// FederatedModel glues the per-party fragments for joint prediction. In a
// production deployment each fragment stays inside its party and
// prediction is a protocol; in-process evaluation walks them directly.
type FederatedModel struct {
	Parties      []*PartyModel `json:"parties"`
	LearningRate float64       `json:"learning_rate"`
	BaseScore    float64       `json:"base_score"`
	// SplitsByParty counts confirmed splits per party, the "Ratio of
	// Splits in Party B" column of Table 2.
	SplitsByParty []int `json:"splits_by_party"`
	// NumOutputs is the objective's output count k (omitted = 1). Trees
	// are scheduled round-robin: tree t scores class t mod k.
	NumOutputs int `json:"num_outputs,omitempty"`
	// Objective names the training objective when it is not the binary
	// default (e.g. "multiclass:3", "ranking:10").
	Objective string `json:"objective,omitempty"`
}

// NumParties returns the party count.
func (m *FederatedModel) NumParties() int { return len(m.Parties) }

// Outputs returns the model's output count (1 for binary/regression).
func (m *FederatedModel) Outputs() int {
	if m.NumOutputs > 1 {
		return m.NumOutputs
	}
	return 1
}

// PredictMargin routes row i of the vertically-partitioned instance (one
// dataset per party, aligned rows) through every tree.
func (m *FederatedModel) PredictMargin(parts []*dataset.Dataset, i int) (float64, error) {
	if k := m.Outputs(); k > 1 {
		return 0, fmt.Errorf("core: model has %d outputs; use PredictAllOutputs", k)
	}
	if len(parts) != len(m.Parties) {
		return 0, fmt.Errorf("core: model has %d parties, got %d datasets", len(m.Parties), len(parts))
	}
	s := m.BaseScore
	bTrees := m.Parties[len(m.Parties)-1].Trees
	for t := range bTrees {
		w, err := m.predictTree(t, parts, i)
		if err != nil {
			return 0, err
		}
		s += m.LearningRate * w
	}
	return s, nil
}

func (m *FederatedModel) predictTree(t int, parts []*dataset.Dataset, i int) (float64, error) {
	bTree := m.Parties[len(m.Parties)-1].Trees[t]
	id := bTree.Root
	for depth := 0; ; depth++ {
		if depth > 64 {
			return 0, fmt.Errorf("core: tree %d traversal did not terminate", t)
		}
		bn, ok := bTree.Nodes[id]
		if !ok {
			return 0, fmt.Errorf("core: tree %d missing node %d", t, id)
		}
		if bn.Owner == OwnerLeaf {
			return bn.Weight, nil
		}
		// The owner party's fragment holds the routing payload.
		on, ok := m.Parties[bn.Owner].Trees[t].Nodes[id]
		if !ok {
			return 0, fmt.Errorf("core: tree %d node %d missing from owner party %d", t, id, bn.Owner)
		}
		if goesLeftRaw(parts[bn.Owner], i, on.Feature, on.Threshold) {
			id = bn.Left
		} else {
			id = bn.Right
		}
	}
}

// goesLeftRaw applies the shared split semantics on raw values: stored
// value <= threshold goes left, missing goes left.
func goesLeftRaw(d *dataset.Dataset, i int, feature int32, threshold float64) bool {
	cols, vals := d.Row(i)
	k := sort.Search(len(cols), func(x int) bool { return cols[x] >= feature })
	if k < len(cols) && cols[k] == feature {
		return vals[k] <= threshold
	}
	return true
}

// PredictAll returns raw margins for aligned rows of the per-party
// datasets.
func (m *FederatedModel) PredictAll(parts []*dataset.Dataset) ([]float64, error) {
	return m.PredictAllPrefix(parts, len(m.Parties[len(m.Parties)-1].Trees))
}

// PredictAllPrefix returns margins using only the first k trees, which is
// how the loss-vs-time curves of Figure 10 are reconstructed after
// training (per-tree wall times are recorded by the session).
func (m *FederatedModel) PredictAllPrefix(parts []*dataset.Dataset, k int) ([]float64, error) {
	if o := m.Outputs(); o > 1 {
		return nil, fmt.Errorf("core: model has %d outputs; use PredictAllOutputs", o)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: no datasets")
	}
	if len(parts) != len(m.Parties) {
		return nil, fmt.Errorf("core: model has %d parties, got %d datasets", len(m.Parties), len(parts))
	}
	n := parts[0].Rows()
	for _, p := range parts {
		if p.Rows() != n {
			return nil, fmt.Errorf("core: row mismatch across parties")
		}
	}
	if total := len(m.Parties[len(m.Parties)-1].Trees); k > total {
		k = total
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := m.BaseScore
		for t := 0; t < k; t++ {
			w, err := m.predictTree(t, parts, i)
			if err != nil {
				return nil, err
			}
			s += m.LearningRate * w
		}
		out[i] = s
	}
	return out, nil
}

// PredictAllOutputs returns the per-class margin matrix ([class][row])
// of a multi-output model: tree t contributes to class t mod k, with
// BaseScore added to every class. It also serves single-output models
// (the matrix has one row).
func (m *FederatedModel) PredictAllOutputs(parts []*dataset.Dataset) ([][]float64, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: no datasets")
	}
	if len(parts) != len(m.Parties) {
		return nil, fmt.Errorf("core: model has %d parties, got %d datasets", len(m.Parties), len(parts))
	}
	n := parts[0].Rows()
	for _, p := range parts {
		if p.Rows() != n {
			return nil, fmt.Errorf("core: row mismatch across parties")
		}
	}
	k := m.Outputs()
	out := make([][]float64, k)
	for c := range out {
		out[c] = make([]float64, n)
		for i := range out[c] {
			out[c][i] = m.BaseScore
		}
	}
	total := len(m.Parties[len(m.Parties)-1].Trees)
	for i := 0; i < n; i++ {
		for t := 0; t < total; t++ {
			w, err := m.predictTree(t, parts, i)
			if err != nil {
				return nil, err
			}
			out[t%k][i] += m.LearningRate * w
		}
	}
	return out, nil
}

// Evaluate computes AUC and logloss on aligned validation shards.
func (m *FederatedModel) Evaluate(parts []*dataset.Dataset, labels []float64) (auc, logloss float64, err error) {
	margins, err := m.PredictAll(parts)
	if err != nil {
		return 0, 0, err
	}
	auc, err = metrics.AUC(margins, labels)
	if err != nil {
		return 0, 0, err
	}
	logloss, err = metrics.LogLoss(margins, labels)
	return auc, logloss, err
}

// GainByParty sums the recorded split gains per owner party, a
// privacy-respecting importance summary: it attributes model contribution
// to parties without revealing which features did the work.
func (m *FederatedModel) GainByParty() []float64 {
	out := make([]float64, len(m.Parties))
	bTrees := m.Parties[len(m.Parties)-1].Trees
	for _, t := range bTrees {
		for _, n := range t.Nodes {
			if n.Owner >= 0 && n.Owner < len(out) {
				out[n.Owner] += n.Gain
			}
		}
	}
	return out
}

// FeatureImportance returns one party's per-feature gain sums, computable
// only by combining that party's private fragment (feature identities)
// with Party B's gain records — which is exactly the information the two
// parties jointly hold, so in a deployment this runs as a two-party
// exchange. In-process it reads both fragments directly.
func (m *FederatedModel) FeatureImportance(party int, numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	bTrees := m.Parties[len(m.Parties)-1].Trees
	ownTrees := m.Parties[party].Trees
	for ti, t := range bTrees {
		for id, n := range t.Nodes {
			if n.Owner != party {
				continue
			}
			own, ok := ownTrees[ti].Nodes[id]
			if party == len(m.Parties)-1 {
				own, ok = n, true
			}
			if ok && int(own.Feature) < numFeatures {
				imp[own.Feature] += n.Gain
			}
		}
	}
	return imp
}

// modelFile versions the serialized form.
type modelFile struct {
	Version int             `json:"version"`
	Model   *FederatedModel `json:"model"`
}

// Save writes the glued federated model as JSON. Note that persisting the
// glued model re-centralizes the per-party secrets; production deployments
// persist PartyModel fragments separately.
func (m *FederatedModel) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(modelFile{Version: 1, Model: m})
}

// Load reads a model written by Save.
func Load(r io.Reader) (*FederatedModel, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if mf.Version != 1 || mf.Model == nil || len(mf.Model.Parties) == 0 {
		return nil, fmt.Errorf("core: invalid model file")
	}
	return mf.Model, nil
}
