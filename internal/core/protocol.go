package core

import (
	"runtime"
	"sync"
	"time"

	"vf2boost/internal/gbdt"
)

// buildTreeSequential grows one tree with the baseline VF-GBDT protocol:
// every layer is a strict sequence of (build own histograms; wait for all
// passive histograms; decrypt; decide; synchronize placements) — the
// mutual-waiting pattern of Figure 5 (top).
func (b *activeParty) buildTreeSequential(t int) (*FedTree, []leafResult, error) {
	tree, root := b.startTree()
	active := []*bNode{root}
	var leaves []leafResult

	for layer := 0; layer < b.cfg.MaxDepth && len(active) > 0; layer++ {
		ownHists, err := b.buildOwnHistograms(active)
		if err != nil {
			return nil, nil, err
		}

		decisions := make([][]NodeDecision, len(b.links))
		type pendingA struct {
			node            *bNode
			cand            candidate
			leftID, rightID int32
		}
		var pending []pendingA
		var next []*bNode

		for k, nd := range active {
			best := b.ownBest(ownHists[k], nd)
			for pi := range b.links {
				idle := time.Now()
				c, err := b.passiveCand(pi, t, nd)
				addDur(&b.stats.bIdleTime, time.Since(idle))
				if err != nil {
					return nil, nil, err
				}
				if c.valid() && (!best.valid() || betterCandidate(c, best)) {
					best = c
				}
			}

			switch {
			case !best.valid():
				leaves = append(leaves, b.recordLeaf(tree, nd))
				for pi := range decisions {
					decisions[pi] = append(decisions[pi], NodeDecision{Node: nd.id, Action: ActionLeaf})
				}
			case best.party == len(b.links):
				// Party B owns the split.
				leftID, rightID := b.allocID(), b.allocID()
				bits, left, right, err := b.placementBitmap(nd.insts, best.split.Feature, best.split.Bin)
				if err != nil {
					return nil, nil, err
				}
				b.recordSplitB(tree, nd, best, leftID, rightID)
				for pi := range decisions {
					decisions[pi] = append(decisions[pi], NodeDecision{
						Node: nd.id, Action: ActionSplitB,
						LeftID: leftID, RightID: rightID,
						Placement: bits, Count: len(nd.insts),
					})
				}
				next = append(next, b.childNodes(leftID, left, rightID, right)...)
			default:
				// A passive party owns the split: tell the owner now,
				// relay the placement to the rest once it arrives.
				leftID, rightID := b.allocID(), b.allocID()
				b.recordSplitA(tree, nd, best, leftID, rightID)
				decisions[best.party] = append(decisions[best.party], NodeDecision{
					Node: nd.id, Action: ActionSplitA, Owner: best.party,
					LeftID: leftID, RightID: rightID,
					Feature: best.split.Feature, Bin: best.split.Bin,
				})
				pending = append(pending, pendingA{node: nd, cand: best, leftID: leftID, rightID: rightID})
			}
		}

		for pi, l := range b.links {
			if len(decisions[pi]) > 0 {
				if err := l.send(MsgDecisions{Tree: t, Layer: layer, Nodes: decisions[pi]}); err != nil {
					return nil, nil, err
				}
			}
		}

		for _, pa := range pending {
			idle := time.Now()
			pl, err := b.pumps[pa.cand.party].placementFor(t, pa.node.id)
			addDur(&b.stats.bIdleTime, time.Since(idle))
			if err != nil {
				return nil, nil, err
			}
			left, right := applyPlacement(pa.node.insts, pl.Bits)
			relay := NodeDecision{
				Node: pa.node.id, Action: ActionSplitA, Owner: pa.cand.party,
				LeftID: pa.leftID, RightID: pa.rightID,
				Placement: pl.Bits, Count: len(pa.node.insts),
			}
			for pi, l := range b.links {
				if pi == pa.cand.party {
					continue
				}
				if err := l.send(MsgDecisions{Tree: t, Layer: layer, Nodes: []NodeDecision{relay}}); err != nil {
					return nil, nil, err
				}
			}
			next = append(next, b.childNodes(pa.leftID, left, pa.rightID, right)...)
		}
		active = next
	}

	for _, nd := range active {
		leaves = append(leaves, b.recordLeaf(tree, nd))
	}
	return tree, leaves, nil
}

// startTree resets per-tree state and returns the root bookkeeping.
func (b *activeParty) startTree() (*FedTree, *bNode) {
	b.nextID = rootID
	tree := NewFedTree(rootID)
	n := b.rows
	all := make([]int32, n)
	var g0, h0 float64
	for i := range all {
		all[i] = int32(i)
		g0 += b.grads[i]
		h0 += b.hess[i]
	}
	return tree, &bNode{id: rootID, insts: all, g: g0, h: h0}
}

// recordLeaf finalizes a node as a leaf and returns its margin update.
func (b *activeParty) recordLeaf(tree *FedTree, nd *bNode) leafResult {
	w := gbdt.LeafWeight(nd.g, nd.h, b.cfg.Split.Lambda)
	tree.Nodes[nd.id] = &FedNode{Owner: OwnerLeaf, Weight: w}
	return leafResult{insts: nd.insts, weight: w}
}

// recordSplitB registers a Party-B-owned split in B's fragment (B keeps
// the feature and threshold — they are its own data).
func (b *activeParty) recordSplitB(tree *FedTree, nd *bNode, c candidate, leftID, rightID int32) {
	tree.Nodes[nd.id] = &FedNode{
		Owner:     b.model.Party,
		Feature:   c.split.Feature,
		Threshold: b.mapper.Threshold(int(c.split.Feature), int(c.split.Bin)),
		Left:      leftID,
		Right:     rightID,
		Gain:      c.split.Gain,
	}
	b.stats.splitsByB.Add(1)
}

// recordSplitA registers a passive-owned split: B learns only the owner
// and the children, never the feature or threshold.
func (b *activeParty) recordSplitA(tree *FedTree, nd *bNode, c candidate, leftID, rightID int32) {
	tree.Nodes[nd.id] = &FedNode{
		Owner: c.party,
		Left:  leftID,
		Right: rightID,
		Gain:  c.split.Gain,
	}
	b.stats.splitsByA.Add(1)
}

// childNodes wraps fresh child bookkeeping with exact gradient totals.
func (b *activeParty) childNodes(leftID int32, left []int32, rightID int32, right []int32) []*bNode {
	lg, lh := b.childStats(left)
	rg, rh := b.childStats(right)
	return []*bNode{
		{id: leftID, insts: left, g: lg, h: lh},
		{id: rightID, insts: right, g: rg, h: rh},
	}
}

// parallelFor runs fn over [0, n) in contiguous chunks across workers.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
