package core

import "time"

// buildTreeOptimistic grows one tree with the concurrent VF²Boost
// protocol of Section 4.2. Per layer:
//
//   - Phase 1 (tentative): B finds its own best splits (FindSplitB is
//     cheap — plaintext histograms) and immediately splits every node with
//     them, shipping tentative decisions so the passive parties start
//     building the next layer's histograms right away;
//   - Phase 2 (validation): B then receives and decrypts the passive
//     histograms of the *current* layer — concurrently with the passive
//     parties' next-layer construction — and validates each tentative
//     split. A node whose best split actually belongs to a passive party
//     is dirty: its tentative children are aborted (MsgDirty carries the
//     IDs so in-flight histogram sub-tasks stop), the owner answers with
//     the correct placement, and fresh children are created — the
//     roll-back-and-re-do mechanism of Figure 6.
//
// The expected dirty rate is D_A/(D_A+D_B) (validated in the Table 2
// benchmark), so when Party B is feature-rich almost all optimistic work
// survives.
func (b *activeParty) buildTreeOptimistic(t int) (*FedTree, []leafResult, error) {
	tree, root := b.startTree()
	active := []*bNode{root}
	var leaves []leafResult

	for layer := 0; layer < b.cfg.MaxDepth && len(active) > 0; layer++ {
		ownHists, err := b.buildOwnHistograms(active)
		if err != nil {
			return nil, nil, err
		}

		// Phase 1: tentative resolution from B's own splits only.
		type tentative struct {
			node            *bNode
			cand            candidate
			leftID, rightID int32
			left, right     []int32
		}
		tents := make([]tentative, len(active))
		decs := make([]NodeDecision, 0, len(active))
		for k, nd := range active {
			tn := tentative{node: nd, cand: b.ownBest(ownHists[k], nd)}
			if tn.cand.valid() {
				tn.leftID, tn.rightID = b.allocID(), b.allocID()
				bits, left, right, err := b.placementBitmap(nd.insts, tn.cand.split.Feature, tn.cand.split.Bin)
				if err != nil {
					return nil, nil, err
				}
				tn.left, tn.right = left, right
				decs = append(decs, NodeDecision{
					Node: nd.id, Action: ActionSplitB,
					LeftID: tn.leftID, RightID: tn.rightID,
					Placement: bits, Count: len(nd.insts),
				})
			} else {
				decs = append(decs, NodeDecision{Node: nd.id, Action: ActionLeaf})
			}
			tents[k] = tn
		}
		for _, l := range b.links {
			if err := l.send(MsgDecisions{Tree: t, Layer: layer, Tentative: true, Nodes: decs}); err != nil {
				return nil, nil, err
			}
		}

		// Phase 2: validate against the passive parties' histograms while
		// they already work on layer+1.
		var next []*bNode
		for k := range tents {
			tn := &tents[k]
			nd := tn.node
			best := tn.cand
			for pi := range b.links {
				idle := time.Now()
				nh, err := b.pumps[pi].histFor(t, nd.id)
				addDur(&b.stats.bIdleTime, time.Since(idle))
				if err != nil {
					return nil, nil, err
				}
				c, err := b.passiveBest(pi, nh, nd)
				if err != nil {
					return nil, nil, err
				}
				if c.valid() && (!best.valid() || betterCandidate(c, best)) {
					best = c
				}
			}

			switch {
			case !best.valid():
				// Tentative leaf confirmed.
				leaves = append(leaves, b.recordLeaf(tree, nd))
			case best.party == len(b.links):
				// Tentative split confirmed as-is.
				b.recordSplitB(tree, nd, best, tn.leftID, tn.rightID)
				next = append(next, b.childNodes(tn.leftID, tn.left, tn.rightID, tn.right)...)
			default:
				// Dirty node: a passive party had the better split.
				b.stats.dirtyNodes.Add(1)
				newL, newR := b.allocID(), b.allocID()
				owner := best.party
				if err := b.links[owner].send(MsgDirty{
					Tree: t, Layer: layer, Node: nd.id,
					OldLeft: tn.leftID, OldRight: tn.rightID,
					LeftID: newL, RightID: newR,
					Feature: best.split.Feature, Bin: best.split.Bin,
				}); err != nil {
					return nil, nil, err
				}
				idle := time.Now()
				pl, err := b.pumps[owner].placementFor(t, nd.id)
				addDur(&b.stats.bIdleTime, time.Since(idle))
				if err != nil {
					return nil, nil, err
				}
				left, right := applyPlacement(nd.insts, pl.Bits)
				relay := NodeDecision{
					Node: nd.id, Action: ActionSplitA, Owner: owner,
					LeftID: newL, RightID: newR,
					Placement: pl.Bits, Count: len(nd.insts),
					AbortLeft: tn.leftID, AbortRight: tn.rightID,
				}
				for pi, l := range b.links {
					if pi == owner {
						continue
					}
					if err := l.send(MsgDecisions{Tree: t, Layer: layer, Nodes: []NodeDecision{relay}}); err != nil {
						return nil, nil, err
					}
				}
				b.recordSplitA(tree, nd, best, newL, newR)
				next = append(next, b.childNodes(newL, left, newR, right)...)
			}
		}
		active = next
	}

	for _, nd := range active {
		leaves = append(leaves, b.recordLeaf(tree, nd))
	}
	return tree, leaves, nil
}
