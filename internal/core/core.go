// Package core implements the vertical federated GBDT protocol of
// VF²Boost (Fu et al., SIGMOD 2021) — the paper's primary contribution.
//
// One active party ("Party B") holds the labels and the Paillier private
// key; one or more passive parties ("Party A") hold disjoint feature
// columns for the same, pre-aligned instances. Per tree:
//
//  1. B computes per-instance gradients/hessians, encrypts them, and ships
//     the ciphertexts to every passive party (Section 3.2);
//  2. each passive party accumulates the ciphertexts into per-node,
//     per-feature gradient histograms by homomorphic addition;
//  3. B decrypts the passive histograms and finds the globally best split
//     of each node across all parties (its own histograms are plaintext);
//  4. the split owner computes the instance placement bitmap and the
//     parties synchronize before the next layer.
//
// The engine implements both the sequential baseline (the paper's VF-GBDT,
// equivalent to SecureBoost's routine) and the concurrent VF²Boost
// protocol. The four optimizations are independently toggleable, which is
// what the ablation benchmarks (Tables 1 and 2) sweep:
//
//   - BlasterEncryption (Section 4.1): gradients are encrypted and shipped
//     in small batches so encryption, WAN transfer and histogram
//     construction overlap;
//   - ReorderedAccumulation (Section 5.1): per-exponent histogram
//     workspaces eliminate almost all cipher-scaling operations;
//   - OptimisticSplit (Section 4.2): B splits nodes tentatively with its
//     own best splits and runs ahead; passive histograms validate the
//     tentative layer, and "dirty" nodes (where a passive party had the
//     better split) are rolled back and re-done;
//   - HistogramPacking (Section 5.2): shifted prefix-sum bins are packed
//     t-per-ciphertext so decryption and transfer shrink by t×.
//
// Split semantics are shared with internal/gbdt (missing/absent values
// route left; candidate k sends stored bins <= k left), and the best-split
// arbitration uses gbdt.Better over global feature indices (passive
// parties' features first, in party order, then B's). Co-located training
// with internal/gbdt on the joined table therefore produces the same trees
// up to fixed-point encoding precision.
package core

import (
	"fmt"
	"runtime"
	"strings"

	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
	"vf2boost/internal/objective"
	"vf2boost/internal/wire"
)

// Scheme names accepted by Config.Scheme.
const (
	SchemePaillier = "paillier"
	SchemeMock     = "mock"
)

// Config configures a federated training session. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Trees, LearningRate, MaxDepth, MaxBins mirror gbdt.Params (the
	// paper's protocol: T=20, η=0.1, 7 tree layers, s=20).
	Trees        int
	LearningRate float64
	MaxDepth     int
	MaxBins      int
	// Split holds λ, γ and the child constraints.
	Split gbdt.SplitParams
	// Loss is the scalar training objective of the classic single-output
	// protocol. It is kept for configuration compatibility (checkpoint
	// fingerprints name its type); Objective below supersedes it.
	Loss gbdt.Loss
	// Objective is the multi-output training objective from the
	// internal/objective registry. Nil lifts Loss through the compat shim
	// (binary for logistic, identity/RMSE otherwise), which reproduces
	// the pre-objective protocol exactly. An objective with k > 1 outputs
	// trains k trees per boosting round (Trees rounds, Trees·k trees
	// total), all sharing one gradient encryption pass per round.
	Objective objective.Objective
	// Workers is the per-party parallelism (the paper's per-party worker
	// count, Table 5); <= 0 uses GOMAXPROCS.
	Workers int

	// Scheme selects "paillier" (VF-GBDT / VF²Boost) or "mock" (VF-MOCK).
	Scheme string
	// HEBackend names the homomorphic backend from the he registry. Empty
	// selects the scalar backend of the configured Scheme ("paillier" or
	// "mock"), which is byte-identical to the pre-backend protocol. The
	// batched backends ("paillier-batched", "mock-batched") pack k ⟨g,h⟩
	// pairs per ciphertext BatchCrypt-style, switching the gradient stream
	// and histogram accumulation to the vectorized wire path. The backend's
	// family must match Scheme.
	HEBackend string
	// KeyBits is the Paillier modulus size S (2048 in the paper; scaled
	// down in the experiments).
	KeyBits int
	// BaseExp and ExpSpread configure the fixed-point encoding exponent
	// obfuscation (ExpSpread distinct exponents; the paper observes 4-8).
	BaseExp   int
	ExpSpread int

	// The four VF²Boost optimizations. All false = the VF-GBDT baseline.
	BlasterEncryption     bool
	ReorderedAccumulation bool
	OptimisticSplit       bool
	HistogramPacking      bool

	// AdaptivePacking extends HistogramPacking: each feature is packed
	// only when packing reduces Party B's decryptions — sparse features
	// whose occupied bins already undercut the packed ciphertext count
	// ship unpacked. This goes beyond the paper, whose dense regime
	// always favors packing; it keeps packing a strict win at small
	// scale. Ignored unless HistogramPacking is set.
	AdaptivePacking bool
	// AdaptiveOptimism extends OptimisticSplit along the lines of the
	// paper's future-work note on dirty-node cost: when the previous
	// tree's dirty ratio exceeded 1/2 (the optimistic bet lost more
	// often than it won), the next tree falls back to the sequential
	// schedule. Ignored unless OptimisticSplit is set.
	AdaptiveOptimism bool
	// FastObfuscation replaces the per-encryption Paillier obfuscator
	// r^n mod n² with a DJN-style short-exponent h^x served from
	// precomputed fixed-base tables (internal/paillier/fixedbase.go):
	// the base h = r₀^n is derived once at session setup and shipped to
	// passive parties in the setup message, cutting obfuscator cost on
	// every party by roughly an order of magnitude. An extension beyond
	// the paper, whose cost model assumes full r^n obfuscation; turn it
	// off (BaselineConfig does) for the exact-paper baseline. Ignored by
	// the mock scheme.
	FastObfuscation bool
	// HistogramSubtraction applies the classic sibling-subtraction trick
	// to the passive parties' *encrypted* histograms: only the child
	// with fewer instances is accumulated; the sibling's bins are
	// derived as parent − child with one homomorphic subtraction per
	// occupied bin. The paper cites this technique as a reason for
	// layer-wise processing (Section 7); here it is implemented for the
	// ciphertext domain, where it saves at least half of the passive
	// parties' HAdd work below the root.
	HistogramSubtraction bool

	// BatchSize is the blaster batch size in instances (Section 4.1);
	// <= 0 picks a default.
	BatchSize int

	// WireCodec selects the cross-party message encoding: "binary" (the
	// typed length-prefixed codec, default) or "gob" (the reflective
	// fallback). The active party pins this codec; passive parties adopt
	// whatever the first received frame speaks, so only the initiator's
	// setting matters in a mixed deployment.
	WireCodec string

	// Seed drives exponent obfuscation and any tie-free randomness;
	// training is deterministic given the seed and scheme.
	Seed int64
}

// DefaultConfig returns the paper's hyper-parameters with all VF²Boost
// optimizations enabled.
func DefaultConfig() Config {
	return Config{
		Trees:                 20,
		LearningRate:          0.1,
		MaxDepth:              6,
		MaxBins:               20,
		Split:                 gbdt.SplitParams{Lambda: 1},
		Loss:                  gbdt.LogisticLoss{},
		Scheme:                SchemePaillier,
		KeyBits:               2048,
		BaseExp:               8,
		ExpSpread:             4,
		BlasterEncryption:     true,
		ReorderedAccumulation: true,
		OptimisticSplit:       true,
		HistogramPacking:      true,
		AdaptivePacking:       true,
		AdaptiveOptimism:      true,
		FastObfuscation:       true,
		HistogramSubtraction:  true,
		Seed:                  1,
	}
}

// BaselineConfig returns the VF-GBDT configuration: same cryptography,
// none of the Section 4/5 optimizations.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.BlasterEncryption = false
	c.ReorderedAccumulation = false
	c.OptimisticSplit = false
	c.HistogramPacking = false
	c.AdaptivePacking = false
	c.AdaptiveOptimism = false
	c.FastObfuscation = false
	c.HistogramSubtraction = false
	return c
}

// MockConfig returns the VF-MOCK configuration: the full protocol with
// plaintext pass-through "ciphertexts".
func MockConfig() Config {
	c := BaselineConfig()
	c.Scheme = SchemeMock
	return c
}

func (c *Config) normalize() error {
	if c.Trees <= 0 {
		return fmt.Errorf("core: Trees must be positive, got %d", c.Trees)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("core: LearningRate must be positive")
	}
	if c.MaxDepth < 1 || c.MaxDepth > 30 {
		return fmt.Errorf("core: MaxDepth %d out of [1,30]", c.MaxDepth)
	}
	if c.MaxBins < 2 || c.MaxBins > 256 {
		return fmt.Errorf("core: MaxBins %d out of [2,256]", c.MaxBins)
	}
	switch c.Scheme {
	case SchemePaillier, SchemeMock:
	default:
		return fmt.Errorf("core: unknown scheme %q", c.Scheme)
	}
	if c.Scheme == SchemePaillier && (c.KeyBits < 64 || c.KeyBits%2 != 0) {
		return fmt.Errorf("core: KeyBits %d invalid", c.KeyBits)
	}
	if c.HEBackend == "" {
		c.HEBackend = c.Scheme // the lifted scalar backends share their scheme's name
	}
	if !he.Registered(c.HEBackend) {
		return fmt.Errorf("core: unknown HE backend %q (registered: %s)",
			c.HEBackend, strings.Join(he.Names(), ", "))
	}
	if fam := he.Family(c.HEBackend); fam != c.Scheme {
		return fmt.Errorf("core: HE backend %q belongs to scheme family %q, config scheme is %q",
			c.HEBackend, fam, c.Scheme)
	}
	if c.Loss == nil {
		c.Loss = gbdt.LogisticLoss{}
	}
	if c.Objective == nil {
		c.Objective = objective.FromLoss(c.Loss)
	} else if lw, ok := c.Objective.(interface{ Loss() gbdt.Loss }); ok {
		// Keep the scalar loss consistent with a shim-wrapped objective so
		// fingerprints and bound queries agree.
		c.Loss = lw.Loss()
	}
	if c.Objective.NumOutputs() < 1 {
		return fmt.Errorf("core: objective %s has %d outputs", c.Objective.Name(), c.Objective.NumOutputs())
	}
	if c.Objective.NumOutputs() > 1 && !objective.Registered(baseName(c.Objective.Name())) {
		return fmt.Errorf("core: objective %q is not in the registry (registered: %s)",
			c.Objective.Name(), strings.Join(objective.Names(), ", "))
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BaseExp < 1 {
		c.BaseExp = 8
	}
	if c.ExpSpread < 1 {
		c.ExpSpread = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1024
	}
	if _, err := wire.ByName(c.WireCodec); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// laneHeadroom is the per-lane accumulation reserve of the batched
// backends: histogram accumulators sum at most one lane value per
// instance, so 32 bits of headroom cover any session below 2^32 rows
// without a carry ever crossing lanes.
const laneHeadroom = 32

// vecMode reports whether the configured backend packs multiple slots per
// ciphertext, which switches the protocol to the vectorized gradient
// stream and histogram accumulation.
func (c *Config) vecMode() bool { return he.Batched(c.HEBackend) }

// outputs is k, the number of trees per boosting round; 1 for every
// single-output objective.
func (c *Config) outputs() int {
	if c.Objective == nil {
		return 1
	}
	return c.Objective.NumOutputs()
}

// gradBound is the objective's gradient bound, which drives both the
// histogram-packing shift and the lane-plan offset.
func (c *Config) gradBound() float64 {
	if c.Objective != nil {
		return c.Objective.GradBound()
	}
	return c.Loss.GradBound()
}

// baseName strips the ":arg" suffix of an objective spec.
func baseName(spec string) string {
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		return spec[:i]
	}
	return spec
}

// lanePlanFor derives the lane geometry the session negotiates in
// MsgSetup for a batched backend over a modulus of the given width.
func (c *Config) lanePlanFor(schemeBits int) (fixedpoint.LanePlan, error) {
	plan, err := fixedpoint.PlanLanes(schemeBits, fixedpoint.DefaultBase, c.BaseExp, c.gradBound(), laneHeadroom)
	if err != nil {
		return fixedpoint.LanePlan{}, fmt.Errorf("core: backend %q: %w", c.HEBackend, err)
	}
	return plan, nil
}

// wireCodec resolves the configured codec; normalize already validated it.
func (c *Config) wireCodec() wire.Codec {
	codec, err := wire.ByName(c.WireCodec)
	if err != nil {
		return wire.Default
	}
	return codec
}
