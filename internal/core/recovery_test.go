package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vf2boost/internal/checkpoint"
	"vf2boost/internal/fault"
	"vf2boost/internal/mq"
)

// recoveryConfig pins every source of run-to-run variation (a single
// encoding exponent, fixed seed), so a recovered run can be compared to a
// fault-free baseline byte for byte.
func recoveryConfig(trees int) Config {
	cfg := quickConfig(SchemeMock)
	cfg.Trees = trees
	cfg.ExpSpread = 1
	return cfg
}

func modelJSON(t *testing.T, m *FederatedModel) []byte {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTrainingIsDeterministic guards the premise of every recovery test:
// two identical fault-free runs produce byte-identical models.
func TestTrainingIsDeterministic(t *testing.T) {
	_, parts := twoPartyData(t, 200, 4, 3, 1, true, 31)
	cfg := recoveryConfig(3)
	m1, _ := trainFed(t, parts, cfg)
	m2, _ := trainFed(t, parts, cfg)
	if !bytes.Equal(modelJSON(t, m1), modelJSON(t, m2)) {
		t.Fatal("two identical runs produced different models; recovery tests cannot be byte-exact")
	}
}

// TestChaosTrainingMatchesBaseline is the subsystem's core acceptance: a
// session whose every link drops, delays, duplicates, and reorders frames
// — and severs the passive connection once, forcing a redial — still
// produces the exact model of a fault-free run.
func TestChaosTrainingMatchesBaseline(t *testing.T) {
	_, parts := twoPartyData(t, 200, 4, 3, 1, true, 32)
	cfg := recoveryConfig(4)

	baseline, _ := trainFed(t, parts, cfg)

	chaos := fault.Config{
		Seed:            7,
		Drop:            0.08,
		Dup:             0.05,
		Reorder:         0.05,
		Delay:           0.1,
		DelayFor:        time.Millisecond,
		DisconnectAfter: 60,
	}
	res := ResilientConfig{
		RetryInterval: 10 * time.Millisecond,
		RetryBackoff:  1.5,
		RetryMax:      100 * time.Millisecond,
		Heartbeat:     20 * time.Millisecond,
		PeerTimeout:   10 * time.Second,
		RedialWait:    time.Millisecond,
		Seed:          7,
	}
	chaotic, s := trainFed(t, parts, cfg, WithChaos(chaos), WithResilience(res))

	if !bytes.Equal(modelJSON(t, baseline), modelJSON(t, chaotic)) {
		t.Fatal("model trained under chaos differs from the fault-free baseline")
	}
	var redials, retransmits int64
	for _, st := range s.LinkStats() {
		redials += st.Redials
		retransmits += st.Retransmits
	}
	if retransmits == 0 {
		t.Error("chaos run needed no retransmits; the fault injection is not biting")
	}
	if redials == 0 {
		t.Error("the forced disconnect never triggered a redial")
	}
}

// TestSessionCheckpointResume: train 2 of 5 trees with checkpoints, then
// resume in a fresh session and finish — the result must be byte-identical
// to an uninterrupted 5-tree run.
func TestSessionCheckpointResume(t *testing.T) {
	_, parts := twoPartyData(t, 200, 4, 3, 1, true, 33)

	baseline, _ := trainFed(t, parts, recoveryConfig(5))

	dir := t.TempDir()
	trainFed(t, parts, recoveryConfig(2), WithCheckpoints(dir))

	// The partial run must have left per-party snapshots behind.
	for _, sub := range []string{"active", "passive0"} {
		st, err := checkpoint.Open(filepath.Join(dir, sub))
		if err != nil {
			t.Fatal(err)
		}
		if seqs := st.Seqs(); len(seqs) == 0 || seqs[len(seqs)-1] != 2 {
			t.Fatalf("%s store has snapshots %v, want newest 2", sub, st.Seqs())
		}
	}

	resumed, _ := trainFed(t, parts, recoveryConfig(5), WithCheckpoints(dir), WithResume())
	if !bytes.Equal(modelJSON(t, baseline), modelJSON(t, resumed)) {
		t.Fatal("resumed model differs from the uninterrupted baseline")
	}
}

// TestResumeWithExponentObfuscation: with ExpSpread > 1 Party B draws
// random exponents while encrypting, and a resumed run must draw the
// same per-tree stream an uninterrupted run would (the codec reseeds
// per tree, so the stream is position-independent). Workers is pinned
// to 1 because the within-tree draw order is scheduling-dependent.
func TestResumeWithExponentObfuscation(t *testing.T) {
	_, parts := twoPartyData(t, 200, 4, 3, 1, true, 35)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 5
	cfg.Workers = 1

	baseline, _ := trainFed(t, parts, cfg)

	dir := t.TempDir()
	short := cfg
	short.Trees = 2
	trainFed(t, parts, short, WithCheckpoints(dir))
	resumed, _ := trainFed(t, parts, cfg, WithCheckpoints(dir), WithResume())
	if !bytes.Equal(modelJSON(t, baseline), modelJSON(t, resumed)) {
		t.Fatal("obfuscated resume diverged from the uninterrupted baseline")
	}
}

// TestResumeRejectsChangedConfig: a checkpoint written under one
// configuration must refuse to seed a run under another.
func TestResumeRejectsChangedConfig(t *testing.T) {
	_, parts := twoPartyData(t, 100, 3, 3, 1, true, 34)
	dir := t.TempDir()
	trainFed(t, parts, recoveryConfig(2), WithCheckpoints(dir))

	changed := recoveryConfig(4)
	changed.LearningRate = 0.9
	s, err := NewSession(parts, changed, WithCheckpoints(dir), WithResume())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Train(); err == nil {
		t.Fatal("resume under a changed configuration succeeded")
	}
}

// severable is a transport that can be cut from the outside, standing in
// for a killed process: every call fails once tripped.
type severable struct {
	inner Transport
	down  atomic.Bool
}

var errSevered = errors.New("test: transport severed")

func (s *severable) Send(p []byte) error {
	if s.down.Load() {
		return errSevered
	}
	return s.inner.Send(p)
}

func (s *severable) Receive() ([]byte, error) {
	if s.down.Load() {
		return nil, errSevered
	}
	p, err := s.inner.Receive()
	if s.down.Load() {
		return nil, errSevered
	}
	return p, err
}

// TestDistributedKillRestartResume is the full fault story over the TCP
// gateway: the passive party is killed mid-run after at least one
// completed tree, Party B detects the dead peer, and a restart of both
// parties (fresh broker, checkpoint resume) finishes training with a
// model byte-identical to a run that was never interrupted.
func TestDistributedKillRestartResume(t *testing.T) {
	_, parts := twoPartyData(t, 200, 4, 3, 1, true, 35)
	cfg := recoveryConfig(6)

	baseline, _ := trainFed(t, parts, cfg)

	dir := t.TempDir()
	aStore, err := checkpoint.Open(filepath.Join(dir, "passive0"))
	if err != nil {
		t.Fatal(err)
	}
	bStore, err := checkpoint.Open(filepath.Join(dir, "active"))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: both parties over the gateway, resilient-wrapped so the
	// kill is detected. B's link is slowed a little per frame so the kill
	// lands mid-run rather than after training already finished.
	secret := "gw-secret"
	broker := mq.NewBroker(mq.WithAuth([]byte(secret)))
	gw := mq.NewGateway(broker)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	res := ResilientConfig{
		RetryInterval: 10 * time.Millisecond,
		Heartbeat:     20 * time.Millisecond,
		PeerTimeout:   1500 * time.Millisecond,
		Seed:          9,
	}

	cut := &severable{inner: dialPair(t, addr, secret, "a02b", "b2a0")}
	aRes, err := NewResilientTransport(cut, nil, res)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var aErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, aErr = RunPassiveParty(0, parts[0], cfg, aRes, RunWithCheckpoints(aStore))
	}()

	// Trip the cut as soon as the passive party has one snapshot on disk.
	go func() {
		for i := 0; i < 10000; i++ {
			if len(aStore.Seqs()) > 0 {
				cut.down.Store(true)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	slow := fault.Wrap(dialPair(t, addr, secret, "b2a0", "a02b"),
		fault.Config{Seed: 9, Delay: 1, DelayFor: 2 * time.Millisecond})
	bRes, err := NewResilientTransport(slow, nil, res)
	if err != nil {
		t.Fatal(err)
	}
	_, _, bErr := RunActiveParty(parts[1], cfg, []Transport{bRes}, RunWithCheckpoints(bStore))
	wg.Wait()
	aRes.Close()
	bRes.Close()
	gw.Close()
	broker.Close()

	if bErr == nil {
		t.Fatal("Party B finished training although its peer was killed mid-run")
	}
	if aErr == nil {
		t.Fatal("the killed passive party reported success")
	}
	if len(aStore.Seqs()) == 0 || len(bStore.Seqs()) == 0 {
		t.Fatalf("no snapshots to resume from (passive %v, active %v)", aStore.Seqs(), bStore.Seqs())
	}
	if newest := bStore.Seqs(); newest[len(newest)-1] >= cfg.Trees {
		t.Fatalf("phase 1 completed all %d trees; the kill landed too late", cfg.Trees)
	}

	// Phase 2: both parties restart against a fresh broker and resume.
	broker2 := mq.NewBroker(mq.WithAuth([]byte(secret)))
	defer broker2.Close()
	gw2 := mq.NewGateway(broker2)
	addr2, err := gw2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()

	var aModel *PartyModel
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr := dialPair(t, addr2, secret, "a02b", "b2a0")
		aModel, aErr = RunPassiveParty(0, parts[0], cfg, tr,
			RunWithCheckpoints(aStore), RunWithResume())
	}()
	bTr := dialPair(t, addr2, secret, "b2a0", "a02b")
	bModel, _, err := RunActiveParty(parts[1], cfg, []Transport{bTr},
		RunWithCheckpoints(bStore), RunWithResume())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if aErr != nil {
		t.Fatal(aErr)
	}

	// The restarted run's fragments must match the uninterrupted model
	// exactly.
	for len(aModel.Trees) < cfg.Trees {
		aModel.Trees = append(aModel.Trees, NewFedTree(rootID))
	}
	for who, pair := range map[string][2]any{
		"passive": {aModel.Trees, baseline.Parties[0].Trees},
		"active":  {bModel.Trees, baseline.Parties[1].Trees},
	} {
		got, err := json.Marshal(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s fragment after kill/restart differs from the uninterrupted run", who)
		}
	}
}

// TestCheckpointFilesSurviveProcessBoundaries re-opens a store the way a
// restarted process would and checks the newest snapshot round-trips.
func TestCheckpointFilesSurviveProcessBoundaries(t *testing.T) {
	_, parts := twoPartyData(t, 100, 3, 3, 1, true, 36)
	dir := t.TempDir()
	trainFed(t, parts, recoveryConfig(2), WithCheckpoints(dir))

	st, err := checkpoint.Open(filepath.Join(dir, "active"))
	if err != nil {
		t.Fatal(err)
	}
	var ts TrainState
	seq, err := st.LoadLatest(&ts)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || ts.Role != RoleActive || ts.Trees != 2 || len(ts.Fragment.Trees) != 2 {
		t.Fatalf("restored snapshot: seq=%d role=%q trees=%d", seq, ts.Role, ts.Trees)
	}
	if len(ts.Margins) != parts[0].Rows() {
		t.Fatalf("restored %d margins, want %d", len(ts.Margins), parts[0].Rows())
	}
	// The on-disk layout is one self-describing file per round.
	ents, err := os.ReadDir(filepath.Join(dir, "active"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("active store holds %d files, want 2", len(ents))
	}
}
