package core

import (
	"bytes"
	"reflect"
	"testing"

	"vf2boost/internal/wire"
)

// sampleMessages covers every protocol message type with populated fields
// (including the awkward shapes: empty bins as nil payloads, packed and
// unpacked histograms, error strings). Slices that would be empty are nil,
// matching what both codecs produce on decode.
func sampleMessages() []any {
	return []any{
		MsgSetup{Scheme: "paillier", N: []byte{0xDE, 0xAD, 0xBE, 0xEF}, Bits: 512, BaseExp: 8, ExpSpread: 4, PackBits: 64, Shift: 12345.678, ObfBase: []byte{0xCA, 0xFE, 0x01}, ObfBits: 224},
		MsgSetup{Scheme: "mock", Bits: 256},
		MsgSetup{Scheme: "paillier", N: []byte{0x01, 0x02}, Bits: 2048, BaseExp: 8, ExpSpread: 1, Backend: "paillier-batched", Slots: 30, LaneBits: 66, Headroom: 32},
		MsgVecGradBatch{Tree: 2, Start: 450, Cts: [][]byte{{1, 2, 3}, {4, 5}, nil}, Last: true},
		MsgReady{Party: 2, Features: 17, Rows: 100000},
		MsgGradBatch{Tree: 3, Start: 2048, G: [][]byte{{1, 2}, {3, 4}}, H: [][]byte{{5, 6}, {7, 8}}, GExp: []int16{-8, -7}, HExp: []int16{-8, -8}, Last: true},
		MsgGradBatch{Tree: 0, Start: 0, G: [][]byte{{9, 9}, nil, {8, 8}}, H: [][]byte{nil, nil, nil}, GExp: []int16{0, 0, 0}, HExp: []int16{0, 0, 0}},
		MsgHistograms{Tree: 1, Layer: 2, Nodes: []NodeHist{
			{Node: 5, Feats: []FeatHist{
				{NumBins: 4, GBins: [][]byte{{1, 1}, nil, {2, 2}, {3, 3}}, HBins: [][]byte{{4, 4}, {5, 5}, nil, nil}, GExp: []int16{-8, 0, -7, -8}, HExp: []int16{-8, -8, 0, 0}},
				{NumBins: 6, Packed: true, PackedG: [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}}, PackedH: [][]byte{{9, 9, 9, 9}, {8, 8, 8, 8}}, Exp: -12},
			}},
			{Node: 6, Feats: []FeatHist{{NumBins: 2, GBins: [][]byte{nil, nil}, HBins: [][]byte{nil, nil}, GExp: []int16{0, 0}, HExp: []int16{0, 0}}}},
		}},
		MsgHistograms{Tree: 9, Layer: 0},
		MsgHistograms{Tree: 4, Layer: 1, Nodes: []NodeHist{
			{Node: 3, Feats: []FeatHist{
				{NumBins: 5, Vec: true, VecBin: []int32{0, 0, 4}, VecSlot: []int32{0, 3, 1}, VecCount: []int32{7, 2, 19}, VecCts: [][]byte{{1, 2}, {3, 4}, {5, 6}}},
				{NumBins: 2, Vec: true},
			}},
		}},
		MsgDecisions{Tree: 2, Layer: 1, Tentative: true, Nodes: []NodeDecision{
			{Node: 1, Action: ActionSplitB, LeftID: 2, RightID: 3, Placement: []byte{0b1010}, Count: 4},
			{Node: 4, Action: ActionSplitA, LeftID: 5, RightID: 6, Owner: 1, Feature: 7, Bin: 3, AbortLeft: 8, AbortRight: 9},
			{Node: 10, Action: ActionLeaf},
		}},
		MsgDirty{Tree: 1, Layer: 2, Node: 3, OldLeft: 4, OldRight: 5, LeftID: 6, RightID: 7, Feature: 8, Bin: 9},
		MsgPlacement{Tree: 1, Layer: 2, Node: 3, Bits: []byte{0xFF, 0x01}, Count: 9},
		MsgTreeDone{Tree: 19},
		MsgShutdown{},
		MsgPredictStart{Rows: 512},
		MsgPredictPlacements{Party: 1, Nodes: []PredictNodeBits{{Tree: 0, Node: 3, Bits: []byte{0x0F}}, {Tree: 1, Node: 7, Bits: []byte{0xF0, 0x01}}}, Last: true},
		MsgPredictPlacements{Party: 0, Last: true, Error: "shard misaligned"},
		MsgScoreOpen{Proto: ScoreProtoVersion, Session: "sess-42"},
		MsgScoreOpenAck{Proto: ScoreProtoVersion, Party: 1, Rows: 1000, Versions: []uint64{1, 2, 7}},
		MsgScoreOpenAck{Proto: 9, Error: "protocol version 9 not supported"},
		MsgScoreRequest{Round: 77, Version: 3, Rows: []int32{5, 1, 900}},
		MsgScoreResponse{Round: 77, Version: 3, Party: 1, Nodes: []PredictNodeBits{{Tree: 2, Node: 9, Bits: []byte{0x07}}}},
		MsgScoreResponse{Round: 78, Version: 3, Party: 0, Error: "model version 3 not published"},
		MsgScoreClose{Reason: "server shutdown"},
		MsgScoreCloseAck{},
		MsgResume{Party: 1, Trees: 42},
		MsgAbort{Party: 2, Reason: "core: subtracting bin 7: ciphertext not invertible"},
		MsgEnvelope{Seq: 9000000000, Frame: []byte{0x01, 0x02, 0x03}},
		MsgAck{Cum: 8999999999},
		MsgHeartbeat{Cum: 17},
	}
}

// TestBinaryGobEquivalence is the satellite's round-trip equivalence
// check: every protocol message encodes under both codecs and decodes to
// deep-equal values.
func TestBinaryGobEquivalence(t *testing.T) {
	for _, m := range sampleMessages() {
		bin, err := wire.Binary.Encode(m)
		if err != nil {
			t.Fatalf("%T: binary encode: %v", m, err)
		}
		gb, err := wire.Gob.Encode(m)
		if err != nil {
			t.Fatalf("%T: gob encode: %v", m, err)
		}
		fromBin, err := wire.Binary.Decode(bin)
		if err != nil {
			t.Fatalf("%T: binary decode: %v", m, err)
		}
		fromGob, err := wire.Gob.Decode(gb)
		if err != nil {
			t.Fatalf("%T: gob decode: %v", m, err)
		}
		if !reflect.DeepEqual(fromBin, m) {
			t.Errorf("%T: binary round trip\n got %#v\nwant %#v", m, fromBin, m)
		}
		if !reflect.DeepEqual(fromBin, fromGob) {
			t.Errorf("%T: binary and gob decode disagree\n bin %#v\n gob %#v", m, fromBin, fromGob)
		}
	}
}

// TestEveryMessageTypeHasWireID keeps the registry complete: a new Msg*
// added to sampleMessages without a wirecodec.go entry fails here, and the
// registry cannot silently drift from the documented table.
func TestEveryMessageTypeHasWireID(t *testing.T) {
	ids := wire.MessageIDs()
	seen := map[uint16]bool{}
	for _, m := range sampleMessages() {
		wm, ok := m.(wire.Message)
		if !ok {
			t.Errorf("%T does not implement wire.Message", m)
			continue
		}
		id := wm.WireID()
		if _, registered := ids[id]; !registered {
			t.Errorf("%T has wire ID %d but no registered decoder", m, id)
		}
		seen[id] = true
	}
	if len(seen) != 25 {
		t.Errorf("samples cover %d message IDs, protocol has 25", len(seen))
	}
}

func TestLinkGobFallbackNegotiation(t *testing.T) {
	// The initiator pins gob; the responder (NewLink, adaptive) must adopt
	// it from the first frame and answer in gob.
	aToB := chanTransport{ch: make(chan []byte, 4)}
	bToA := chanTransport{ch: make(chan []byte, 4)}
	initiator := newLinkPair(bToA, aToB, wire.Gob, false)
	responder := NewLink(pairSwap{out: aToB, in: bToA})

	if err := initiator.send(MsgScoreOpen{Proto: 1, Session: "nego"}); err != nil {
		t.Fatal(err)
	}
	if got := responder.Codec().Name(); got != "binary" {
		t.Fatalf("responder should start on the default codec, got %s", got)
	}
	msg, err := responder.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(MsgScoreOpen); !ok {
		t.Fatalf("got %T", msg)
	}
	if got := responder.Codec().Name(); got != "gob" {
		t.Fatalf("responder should have adopted gob, got %s", got)
	}
	if err := responder.Send(MsgScoreOpenAck{Proto: 1, Party: 0}); err != nil {
		t.Fatal(err)
	}
	// The reply frame must actually be gob on the wire.
	raw := <-aToB.ch
	if raw[0] != wire.TagGob {
		t.Fatalf("responder answered with tag 0x%02x, want gob", raw[0])
	}
	aToB.ch <- raw // put it back for the initiator
	ack, err := initiator.recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ack.(MsgScoreOpenAck); !ok {
		t.Fatalf("got %T", ack)
	}
	// A pinned initiator never adopts.
	if got := initiator.Codec().Name(); got != "gob" {
		t.Fatalf("pinned initiator switched to %s", got)
	}
}

// pairSwap crosses two chanTransports into one bidirectional Transport.
type pairSwap struct {
	out chanTransport
	in  chanTransport
}

func (p pairSwap) Send(b []byte) error      { return p.out.Send(b) }
func (p pairSwap) Receive() ([]byte, error) { return p.in.Receive() }

func TestLinkRejectsMalformedFrames(t *testing.T) {
	tr := chanTransport{ch: make(chan []byte, 4)}
	l := NewLink(tr)
	for _, frame := range [][]byte{
		{},                        // empty
		{0x55},                    // unknown tag
		{wire.TagBinaryV1, 0, 1},  // short header
		{wire.TagGob, 0xFF, 0xFF}, // corrupt gob
		{wire.TagBinaryV1, 0xFF, 0xFE, 0, 0, 0, 0}, // unknown message ID
	} {
		tr.ch <- frame
		if _, err := l.Recv(); err == nil {
			t.Errorf("frame %v: expected error", frame)
		}
	}
}

// TestTrainingWithGobCodec covers the fallback end to end: a full
// federated session configured onto the gob codec must train to the same
// model as the binary default.
func TestTrainingWithGobCodec(t *testing.T) {
	_, parts := twoPartyData(t, 120, 3, 2, 1, true, 1)
	cfg := quickConfig(SchemeMock)

	cfg.WireCodec = "gob"
	mGob, _ := trainFed(t, parts, cfg)
	cfg.WireCodec = "binary"
	mBin, _ := trainFed(t, parts, cfg)

	for i := 0; i < parts[0].Rows(); i++ {
		pg, err := mGob.PredictMargin(parts, i)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := mBin.PredictMargin(parts, i)
		if err != nil {
			t.Fatal(err)
		}
		if pg != pb {
			t.Fatalf("row %d: gob-trained margin %v != binary-trained %v", i, pg, pb)
		}
	}
}

func TestConfigRejectsUnknownCodec(t *testing.T) {
	cfg := quickConfig(SchemeMock)
	cfg.WireCodec = "msgpack"
	if err := cfg.normalize(); err == nil {
		t.Fatal("unknown codec must fail validation")
	}
}

// FuzzWireDecode proves malformed frames return errors instead of
// panicking, and that whatever decodes successfully re-encodes stably
// under the binary codec.
func FuzzWireDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		if p, err := wire.Binary.Encode(m); err == nil {
			f.Add(append([]byte(nil), p...))
		}
		if p, err := wire.Gob.Encode(m); err == nil {
			f.Add(p)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{wire.TagBinaryV1, 0, 4, 0, 0, 0, 0})
	f.Add([]byte{wire.TagGob, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0x80}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := wire.Detect(data)
		if err != nil {
			return
		}
		if c == wire.Gob && len(data) > 1<<16 {
			// Bounding gob's input keeps the fuzzer focused on our codec
			// rather than on gob's own allocation behavior.
			return
		}
		m, err := c.Decode(data) // must not panic, whatever the input
		if err != nil || c != wire.Binary {
			return
		}
		// Successful binary decodes must round-trip deterministically.
		p2, err := wire.Binary.Encode(m)
		if err != nil {
			t.Fatalf("re-encoding decoded %T: %v", m, err)
		}
		m2, err := wire.Binary.Decode(p2)
		if err != nil {
			t.Fatalf("re-decoding %T: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("unstable round trip for %T:\n first %#v\nsecond %#v", m, m, m2)
		}
	})
}
