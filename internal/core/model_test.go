package core

import (
	"strings"
	"testing"

	"vf2boost/internal/dataset"
)

// buildTinyModel constructs a two-party model by hand: root split owned
// by the passive party on its feature 0 at threshold 1.5, leaves ±1.
func buildTinyModel() *FederatedModel {
	aTree := NewFedTree(1)
	aTree.Nodes[1] = &FedNode{Owner: 0, Feature: 0, Threshold: 1.5, Left: 2, Right: 3}
	bTree := NewFedTree(1)
	bTree.Nodes[1] = &FedNode{Owner: 0, Left: 2, Right: 3}
	bTree.Nodes[2] = &FedNode{Owner: OwnerLeaf, Weight: -1}
	bTree.Nodes[3] = &FedNode{Owner: OwnerLeaf, Weight: 1}
	return &FederatedModel{
		Parties: []*PartyModel{
			{Party: 0, Trees: []*FedTree{aTree}},
			{Party: 1, Trees: []*FedTree{bTree}},
		},
		LearningRate: 1,
	}
}

func tinyParts(t *testing.T, aVals []float64) []*dataset.Dataset {
	t.Helper()
	a := dataset.NewBuilder(1)
	b := dataset.NewBuilder(1)
	for _, v := range aVals {
		if v != 0 {
			if err := a.AddRowUnlabeled([]int32{0}, []float64{v}); err != nil {
				t.Fatal(err)
			}
		} else if err := a.AddRowUnlabeled(nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.AddRow([]int32{0}, []float64{0}, 0); err != nil {
			t.Fatal(err)
		}
	}
	return []*dataset.Dataset{a.Build(), b.Build()}
}

func TestModelRoutingSemantics(t *testing.T) {
	m := buildTinyModel()
	// Row 0: value 1.0 <= 1.5 -> left (-1).
	// Row 1: value 2.0 > 1.5 -> right (+1).
	// Row 2: missing -> left (-1).
	parts := tinyParts(t, []float64{1.0, 2.0, 0})
	got, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: margin %g, want %g", i, got[i], want[i])
		}
	}
}

func TestModelMissingOwnerNode(t *testing.T) {
	m := buildTinyModel()
	// Remove the passive fragment's routing payload: traversal must fail
	// loudly rather than guess.
	delete(m.Parties[0].Trees[0].Nodes, 1)
	parts := tinyParts(t, []float64{1.0})
	_, err := m.PredictAll(parts)
	if err == nil || !strings.Contains(err.Error(), "missing from owner") {
		t.Errorf("expected missing-owner error, got %v", err)
	}
}

func TestModelDanglingChild(t *testing.T) {
	m := buildTinyModel()
	delete(m.Parties[1].Trees[0].Nodes, 2)
	parts := tinyParts(t, []float64{1.0})
	if _, err := m.PredictAll(parts); err == nil {
		t.Error("dangling child accepted")
	}
}

func TestModelCycleDetection(t *testing.T) {
	m := buildTinyModel()
	// Point the root's left child back at the root.
	m.Parties[1].Trees[0].Nodes[1].Left = 1
	parts := tinyParts(t, []float64{1.0})
	if _, err := m.PredictAll(parts); err == nil {
		t.Error("cyclic tree traversal did not terminate with an error")
	}
}

func TestPredictAllPrefix(t *testing.T) {
	_, parts := twoPartyData(t, 200, 3, 3, 1, true, 51)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 4
	m, _ := trainFed(t, parts, cfg)
	zero, err := m.PredictAllPrefix(parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range zero {
		if v != 0 {
			t.Fatal("0-tree prefix must be the base score")
		}
	}
	full, err := m.PredictAllPrefix(parts, 99) // clamps to available trees
	if err != nil {
		t.Fatal(err)
	}
	all, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if full[i] != all[i] {
			t.Fatal("clamped prefix differs from full prediction")
		}
	}
	// Prefix margins must converge toward the full margin as k grows.
	k2, err := m.PredictAllPrefix(parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range all {
		if k2[i] != all[i] {
			same = false
		}
	}
	if same {
		t.Error("2-tree prefix identical to 4-tree prediction; prefix not applied")
	}
}

func TestEvaluateHelper(t *testing.T) {
	joined, parts := twoPartyData(t, 300, 3, 3, 1, true, 52)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 3
	m, _ := trainFed(t, parts, cfg)
	auc, ll, err := m.Evaluate(parts, joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc <= 0.5 || ll <= 0 {
		t.Errorf("Evaluate = %g, %g", auc, ll)
	}
}
