package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vf2boost/internal/dataset"
	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
)

// encTestRig builds the pieces an encrypted-histogram test needs.
type encTestRig struct {
	d      *dataset.Dataset
	mapper *gbdt.BinMapper
	bm     *gbdt.BinnedMatrix
	codec  *fixedpoint.Codec
	dec    he.Decryptor
	gh     *encGH
	grads  []float64
	hess   []float64
	insts  []int32
}

func newEncRig(t testing.TB, rows, cols int, density float64, seed int64) *encTestRig {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{Rows: rows, Cols: cols, Density: density, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := gbdt.NewBinMapper(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec := he.NewMock(512)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(seed))
	rig := &encTestRig{
		d: d, mapper: mapper, bm: gbdt.NewBinnedMatrix(d, mapper),
		codec: codec, dec: dec,
		gh:    &encGH{g: make([]fixedpoint.EncNum, rows), h: make([]fixedpoint.EncNum, rows)},
		grads: make([]float64, rows),
		hess:  make([]float64, rows),
		insts: make([]int32, rows),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		rig.grads[i] = rng.Float64()*2 - 1
		rig.hess[i] = rng.Float64() * 0.25
		eg, err := codec.EncryptValue(rig.grads[i])
		if err != nil {
			t.Fatal(err)
		}
		eh, err := codec.EncryptValue(rig.hess[i])
		if err != nil {
			t.Fatal(err)
		}
		rig.gh.g[i], rig.gh.h[i] = eg, eh
		rig.insts[i] = int32(i)
	}
	return rig
}

// plaintextBins computes the reference per-bin sums with the plaintext
// engine.
func (r *encTestRig) plaintextBins() *gbdt.Histogram {
	h := gbdt.NewHistogram(r.mapper)
	h.Accumulate(r.bm, r.insts, r.grads, r.hess)
	return h
}

// decryptAll decrypts a finalized encrypted histogram into flat sums.
func (r *encTestRig) decryptAll(t *testing.T, g, h []fixedpoint.EncNum) (gs, hs []float64) {
	t.Helper()
	gs = make([]float64, len(g))
	hs = make([]float64, len(h))
	for i := range g {
		if g[i].Ct != nil {
			v, err := r.codec.Decrypt(r.dec, g[i])
			if err != nil {
				t.Fatal(err)
			}
			gs[i] = v
		}
		if h[i].Ct != nil {
			v, err := r.codec.Decrypt(r.dec, h[i])
			if err != nil {
				t.Fatal(err)
			}
			hs[i] = v
		}
	}
	return gs, hs
}

func TestEncHistogramMatchesPlaintext(t *testing.T) {
	for _, reordered := range []bool{false, true} {
		rig := newEncRig(t, 120, 6, 0.6, 31)
		eh := NewEncHistogram(rig.codec, rig.mapper, reordered)
		eh.Accumulate(rig.bm, rig.insts, rig.gh)
		g, h := eh.FinalizeBins(-1)
		gs, hs := rig.decryptAll(t, g, h)
		ref := rig.plaintextBins()
		for i := range gs {
			if math.Abs(gs[i]-ref.G[i]) > 1e-6 || math.Abs(hs[i]-ref.H[i]) > 1e-6 {
				t.Fatalf("reordered=%v bin %d: enc (%g,%g) vs plain (%g,%g)",
					reordered, i, gs[i], hs[i], ref.G[i], ref.H[i])
			}
		}
	}
}

func TestEncHistogramMergeMatchesSingle(t *testing.T) {
	for _, reordered := range []bool{false, true} {
		rig := newEncRig(t, 100, 5, 0.5, 32)
		full := NewEncHistogram(rig.codec, rig.mapper, reordered)
		full.Accumulate(rig.bm, rig.insts, rig.gh)

		h1 := NewEncHistogram(rig.codec, rig.mapper, reordered)
		h2 := NewEncHistogram(rig.codec, rig.mapper, reordered)
		h1.Accumulate(rig.bm, rig.insts[:50], rig.gh)
		h2.Accumulate(rig.bm, rig.insts[50:], rig.gh)
		h1.Merge(h2)

		gF, hF := full.FinalizeBins(-1)
		gM, hM := h1.FinalizeBins(-1)
		gsF, hsF := rig.decryptAll(t, gF, hF)
		gsM, hsM := rig.decryptAll(t, gM, hM)
		for i := range gsF {
			if math.Abs(gsF[i]-gsM[i]) > 1e-9 || math.Abs(hsF[i]-hsM[i]) > 1e-9 {
				t.Fatalf("reordered=%v merged shard mismatch at bin %d", reordered, i)
			}
		}
	}
}

func TestReorderedUsesNoAccumulationScalings(t *testing.T) {
	rig := newEncRig(t, 200, 5, 0.5, 33)
	before := rig.codec.Stats().Scalings()
	eh := NewEncHistogram(rig.codec, rig.mapper, true)
	eh.Accumulate(rig.bm, rig.insts, rig.gh)
	during := rig.codec.Stats().Scalings()
	if during != before {
		t.Errorf("re-ordered accumulation performed %d scalings; must be zero", during-before)
	}
	eh.FinalizeBins(-1)
	// Finalize may scale at most (E-1) per occupied bin.
	budget := int64((rig.codec.ExpSpread() - 1)) * int64(eh.totalBins()) * 2
	if scaled := rig.codec.Stats().Scalings() - during; scaled > budget {
		t.Errorf("finalize used %d scalings, budget %d", scaled, budget)
	}

	// The naive path must scale a lot on the same input.
	naiveRig := newEncRig(t, 200, 5, 0.5, 33)
	nh := NewEncHistogram(naiveRig.codec, naiveRig.mapper, false)
	nh.Accumulate(naiveRig.bm, naiveRig.insts, naiveRig.gh)
	if naiveRig.codec.Stats().Scalings() == 0 {
		t.Error("naive accumulation performed no scalings; exponents not mixed")
	}
}

func TestPackedFeatureRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dec := he.NewMock(512)
		codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(seed))
		n := 50 + rng.Intn(100)
		plan, err := planPacking(codec, n, 1, fixedpoint.DefaultPackBits)
		if err != nil {
			return false
		}
		shiftCt, err := encryptShift(codec, plan)
		if err != nil {
			return false
		}
		numBins := 2 + rng.Intn(12)
		bins := make([]fixedpoint.EncNum, numBins)
		want := make([]float64, numBins)
		for k := range bins {
			if rng.Float64() < 0.2 {
				continue // empty bin stays nil (exact zero)
			}
			v := rng.Float64()*2 - 1
			num, err := codec.EncodeAt(v, plan.exp)
			if err != nil {
				return false
			}
			ct, err := dec.Encrypt(num.Man)
			if err != nil {
				return false
			}
			bins[k] = fixedpoint.EncNum{Exp: plan.exp, Ct: ct}
			// Reference uses the same fixed-point rounding.
			want[k] = fixedpoint.DecodeSigned(he.Signed(dec, num.Man), codec.Base(), plan.exp)
		}
		packed, err := packFeature(codec, bins, shiftCt, plan)
		if err != nil {
			return false
		}
		got, err := unpackFeature(codec, dec, packed, numBins, plan)
		if err != nil {
			return false
		}
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPlanPackingInfeasible(t *testing.T) {
	dec := he.NewMock(64) // tiny modulus: shifted prefixes cannot fit
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(1))
	if _, err := planPacking(codec, 1_000_000, 1, fixedpoint.DefaultPackBits); err == nil {
		t.Error("infeasible packing plan accepted")
	}
}

func TestPlanPackingWidensSlots(t *testing.T) {
	dec := he.NewMock(2048)
	codec := fixedpoint.NewCodec(dec, fixedpoint.WithSeed(1))
	// Huge N forces slots wider than the default 64 bits.
	plan, err := planPacking(codec, 1_000_000_000, 1, fixedpoint.DefaultPackBits)
	if err != nil {
		t.Fatal(err)
	}
	if plan.bits <= fixedpoint.DefaultPackBits {
		t.Errorf("plan kept %d-bit slots for N=1e9", plan.bits)
	}
	if plan.capacity < 1 {
		t.Errorf("capacity %d", plan.capacity)
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		bm := packBitmap(raw)
		for i, want := range raw {
			if bitmapGet(bm, i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestApplyPlacement(t *testing.T) {
	insts := []int32{10, 20, 30, 40, 50}
	bits := packBitmap([]bool{true, false, true, true, false})
	left, right := applyPlacement(insts, bits)
	if len(left) != 3 || left[0] != 10 || left[1] != 30 || left[2] != 40 {
		t.Errorf("left = %v", left)
	}
	if len(right) != 2 || right[0] != 20 || right[1] != 50 {
		t.Errorf("right = %v", right)
	}
	l, r := applyPlacement(nil, nil)
	if l != nil || r != nil {
		t.Error("empty placement mishandled")
	}
}
