package core

import (
	"strings"
	"testing"
	"time"
)

func TestStatsString(t *testing.T) {
	s := &Stats{}
	addDur(&s.encryptTime, 1500*time.Millisecond)
	addDur(&s.buildHistTime, 2*time.Second)
	s.splitsByA.Add(3)
	s.splitsByB.Add(7)
	s.dirtyNodes.Add(2)
	out := s.String()
	for _, want := range []string{"encrypt 1.5s", "build-hist 2s", "A 3 / B 7", "70.0%", "dirty 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String missing %q in:\n%s", want, out)
		}
	}
}

func TestStatsZeroValues(t *testing.T) {
	s := &Stats{}
	if s.RatioSplitsB() != 0 {
		t.Error("zero stats ratio must be 0")
	}
	if out := s.String(); out == "" {
		t.Error("empty String output")
	}
}
