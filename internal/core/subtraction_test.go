package core

import (
	"math"
	"testing"
)

// TestHistogramSubtractionEquivalence: deriving the larger sibling's bins
// as parent - child must produce exactly the same model as building both
// children (modular arithmetic is exact).
func TestHistogramSubtractionEquivalence(t *testing.T) {
	_, parts := twoPartyData(t, 500, 8, 5, 0.6, false, 61)
	off := quickConfig(SchemeMock)
	off.Trees = 3
	off.MaxDepth = 4
	off.HistogramSubtraction = false
	on := off
	on.HistogramSubtraction = true

	mOff, _ := trainFed(t, parts, off)
	mOn, _ := trainFed(t, parts, on)
	a, err := mOff.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mOn.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("histogram subtraction changed the model at row %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestHistogramSubtractionWorksUnderPaillier checks the subtraction path
// under the real cryptosystem and that it produces the identical model.
func TestHistogramSubtractionWorksUnderPaillier(t *testing.T) {
	_, parts := twoPartyData(t, 250, 4, 3, 1, true, 62)
	cfg := quickConfig(SchemePaillier)
	cfg.Trees = 1
	cfg.MaxDepth = 3
	cfg.HistogramSubtraction = true
	m, s := trainFed(t, parts, cfg)
	if s.Stats().SplitsByA()+s.Stats().SplitsByB() == 0 {
		t.Fatal("no splits")
	}
	// Sanity: the model still predicts and matches the non-subtraction
	// run exactly.
	cfg2 := cfg
	cfg2.HistogramSubtraction = false
	m2, _ := trainFed(t, parts, cfg2)
	a, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m2.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("paillier subtraction model differs")
		}
	}
}

// TestHistogramSubtractionWithOptimisticDirty: dirty-node redo must
// compose with the pair tasks (both children covered by one task, both
// aborted together).
func TestHistogramSubtractionWithOptimisticDirty(t *testing.T) {
	_, parts := twoPartyData(t, 500, 14, 2, 1, true, 63)
	seq := quickConfig(SchemeMock)
	seq.Trees = 3
	seq.OptimisticSplit = false
	seq.HistogramSubtraction = true
	opt := seq
	opt.OptimisticSplit = true
	opt.AdaptiveOptimism = false

	mSeq, _ := trainFed(t, parts, seq)
	mOpt, sOpt := trainFed(t, parts, opt)
	if sOpt.Stats().DirtyNodes() == 0 {
		t.Fatal("test premise broken: no dirty nodes")
	}
	a, err := mSeq.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mOpt.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatal("subtraction + optimistic dirty handling diverged")
		}
	}
}
