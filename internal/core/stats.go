package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Stats dissects where a training session spends time, mirroring the
// Gantt-chart lanes of Figures 4 and 5: encryption and decryption on Party
// B, histogram construction on the passive parties, cipher transfer, and
// the optimistic-splitting outcomes. All fields are safe for concurrent
// update.
type Stats struct {
	encryptTime   atomic.Int64 // ns Party B spent encrypting gradients
	decryptTime   atomic.Int64 // ns Party B spent decrypting histograms
	findSplitTime atomic.Int64 // ns Party B spent on split finding
	buildHistTime atomic.Int64 // ns passive parties spent building histograms
	bIdleTime     atomic.Int64 // ns Party B spent waiting for histograms
	aIdleTime     atomic.Int64 // ns passive parties spent waiting

	splitsByB     atomic.Int64
	splitsByA     atomic.Int64
	dirtyNodes    atomic.Int64
	abortedTasks  atomic.Int64
	treesFinished atomic.Int64
}

func addDur(a *atomic.Int64, d time.Duration) { a.Add(int64(d)) }

// EncryptTime is Party B's cumulative gradient-encryption time.
func (s *Stats) EncryptTime() time.Duration { return time.Duration(s.encryptTime.Load()) }

// DecryptTime is Party B's cumulative histogram-decryption time.
func (s *Stats) DecryptTime() time.Duration { return time.Duration(s.decryptTime.Load()) }

// FindSplitTime is Party B's cumulative split-finding time.
func (s *Stats) FindSplitTime() time.Duration { return time.Duration(s.findSplitTime.Load()) }

// BuildHistTime is the passive parties' cumulative histogram-build time.
func (s *Stats) BuildHistTime() time.Duration { return time.Duration(s.buildHistTime.Load()) }

// BIdleTime is Party B's cumulative time blocked on passive histograms.
func (s *Stats) BIdleTime() time.Duration { return time.Duration(s.bIdleTime.Load()) }

// AIdleTime is the passive parties' cumulative time blocked on messages.
func (s *Stats) AIdleTime() time.Duration { return time.Duration(s.aIdleTime.Load()) }

// SplitsByB counts confirmed splits owned by Party B.
func (s *Stats) SplitsByB() int64 { return s.splitsByB.Load() }

// SplitsByA counts confirmed splits owned by passive parties.
func (s *Stats) SplitsByA() int64 { return s.splitsByA.Load() }

// DirtyNodes counts optimistic splits that were rolled back and re-done.
func (s *Stats) DirtyNodes() int64 { return s.dirtyNodes.Load() }

// AbortedTasks counts passive histogram sub-tasks aborted by dirty nodes.
func (s *Stats) AbortedTasks() int64 { return s.abortedTasks.Load() }

// TreesFinished counts completed boosting rounds.
func (s *Stats) TreesFinished() int64 { return s.treesFinished.Load() }

// RatioSplitsB returns the fraction of confirmed splits owned by Party B
// (the "Ratio of Splits in Party B" column of Table 2).
func (s *Stats) RatioSplitsB() float64 {
	b, a := s.SplitsByB(), s.SplitsByA()
	if a+b == 0 {
		return 0
	}
	return float64(b) / float64(a+b)
}

// String renders the phase breakdown in the spirit of the paper's Gantt
// lanes (Figures 4 and 5): cryptography phases, idle time, and the
// optimistic-protocol outcomes.
func (s *Stats) String() string {
	var b strings.Builder
	r := func(d time.Duration) string { return d.Round(time.Millisecond).String() }
	fmt.Fprintf(&b, "phase breakdown:\n")
	fmt.Fprintf(&b, "  B: encrypt %-10s decrypt %-10s find-split %-10s idle %s\n",
		r(s.EncryptTime()), r(s.DecryptTime()), r(s.FindSplitTime()), r(s.BIdleTime()))
	fmt.Fprintf(&b, "  A: build-hist %-10s idle %s\n", r(s.BuildHistTime()), r(s.AIdleTime()))
	fmt.Fprintf(&b, "  splits: A %d / B %d (B ratio %.1f%%); dirty %d; aborted tasks %d; trees %d",
		s.SplitsByA(), s.SplitsByB(), 100*s.RatioSplitsB(),
		s.DirtyNodes(), s.AbortedTasks(), s.TreesFinished())
	return b.String()
}
