package core

import (
	"testing"

	"vf2boost/internal/wire"
)

// benchCiphertext fabricates a deterministic mock-scheme ciphertext
// (256-bit mock keys marshal to 32 bytes; see he.Mock).
func benchCiphertext(n int, seed byte) []byte {
	c := make([]byte, n)
	for i := range c {
		c[i] = seed + byte(i)
	}
	return c
}

// benchHistUnpacked models one layer's histogram upload at the repo's
// working scale (a 3-feature passive party, MaxBins=8, the root layer):
// 32-byte mock ciphertexts with per-bin exponents. At this message size
// gob's per-send type descriptor is a material fraction of the frame,
// which is exactly the overhead the binary codec retires.
func benchHistUnpacked() MsgHistograms {
	nodes := make([]NodeHist, 1)
	for n := range nodes {
		feats := make([]FeatHist, 3)
		for f := range feats {
			g := make([][]byte, 8)
			h := make([][]byte, 8)
			ge := make([]int16, 8)
			he := make([]int16, 8)
			for b := range g {
				g[b] = benchCiphertext(32, byte(n*64+f*8+b))
				h[b] = benchCiphertext(32, byte(n*64+f*8+b+1))
				ge[b] = -8
				he[b] = -8
			}
			feats[f] = FeatHist{NumBins: 8, GBins: g, HBins: h, GExp: ge, HExp: he}
		}
		nodes[n] = NodeHist{Node: int32(n + 1), Feats: feats}
	}
	return MsgHistograms{Tree: 1, Layer: 2, Nodes: nodes}
}

// benchHistPacked is the same layer under ciphertext packing: each
// feature's bins ride in two 64-byte packed ciphertexts per statistic.
func benchHistPacked() MsgHistograms {
	nodes := make([]NodeHist, 1)
	for n := range nodes {
		feats := make([]FeatHist, 3)
		for f := range feats {
			feats[f] = FeatHist{
				NumBins: 8,
				Packed:  true,
				PackedG: [][]byte{benchCiphertext(64, byte(n*16+f)), benchCiphertext(64, byte(n*16+f+1))},
				PackedH: [][]byte{benchCiphertext(64, byte(n*16+f+2)), benchCiphertext(64, byte(n*16+f+3))},
				Exp:     -12,
			}
		}
		nodes[n] = NodeHist{Node: int32(n + 1), Feats: feats}
	}
	return MsgHistograms{Tree: 1, Layer: 2, Nodes: nodes}
}

// benchGradBatch models one encrypted gradient batch: 100 rows of
// 32-byte ciphertext pairs plus exponents.
func benchGradBatch() MsgGradBatch {
	g := make([][]byte, 100)
	h := make([][]byte, 100)
	ge := make([]int16, 100)
	he := make([]int16, 100)
	for i := range g {
		g[i] = benchCiphertext(32, byte(i))
		h[i] = benchCiphertext(32, byte(i+3))
		ge[i] = -8
		he[i] = -8
	}
	return MsgGradBatch{Tree: 2, Start: 1000, G: g, H: h, GExp: ge, HExp: he, Last: true}
}

// BenchmarkLinkCodec measures encode+decode round trips for the traffic
// classes that dominate a training run, under both codecs. The
// "bytes/msg" metric is the serialized frame size on the wire.
func BenchmarkLinkCodec(b *testing.B) {
	msgs := []struct {
		name string
		m    any
	}{
		{"MsgHistograms-unpacked", benchHistUnpacked()},
		{"MsgHistograms-packed", benchHistPacked()},
		{"MsgGradBatch", benchGradBatch()},
	}
	codecs := []wire.Codec{wire.Binary, wire.Gob}
	for _, tc := range msgs {
		for _, c := range codecs {
			b.Run(tc.name+"/"+c.Name(), func(b *testing.B) {
				payload, err := c.Encode(tc.m)
				if err != nil {
					b.Fatal(err)
				}
				size := len(payload)
				if c == wire.Binary {
					wire.PutBuf(payload)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p, err := c.Encode(tc.m)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := c.Decode(p); err != nil {
						b.Fatal(err)
					}
					if c == wire.Binary {
						wire.PutBuf(p)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(size), "bytes/msg")
			})
		}
	}
}
