package core

import (
	"encoding/gob"
	"fmt"
	"sort"

	"vf2boost/internal/dataset"
)

// Federated prediction: after training, each party keeps only its own
// model fragment, so scoring new (aligned) instances is itself a
// protocol. The exchange mirrors training's placement messages: Party B
// announces the instance count, every passive party answers with one
// routing bitmap per split node it owns (bit i set = instance i routes
// left), and B — which knows the full tree structure — routes every
// instance locally. Passive parties reveal exactly the same information
// as during training (placements), never features or thresholds.

// MsgPredictStart asks a passive party for routing bitmaps over its
// current dataset rows.
type MsgPredictStart struct {
	Rows int
}

// MsgPredictPlacements answers with one bitmap per owned split node, or
// an error description when the request cannot be served.
type MsgPredictPlacements struct {
	Party int
	Nodes []PredictNodeBits
	Last  bool
	Error string
}

// PredictNodeBits is the routing bitmap of one owned node of one tree.
type PredictNodeBits struct {
	Tree int
	Node int32
	Bits []byte
}

func init() {
	gob.Register(MsgPredictStart{})
	gob.Register(MsgPredictPlacements{})
}

// ServePredict answers prediction queries for a passive party: it blocks
// for one MsgPredictStart, streams the routing bitmaps for every split
// node the fragment owns, and returns. data must hold the party's feature
// shard of the instances to score, aligned with the other parties.
func ServePredict(fragment *PartyModel, data *dataset.Dataset, tr Transport) error {
	l := &link{out: tr, in: tr}
	msg, err := l.recv()
	if err != nil {
		return err
	}
	start, ok := msg.(MsgPredictStart)
	if !ok {
		return fmt.Errorf("core: expected MsgPredictStart, got %T", msg)
	}
	if start.Rows != data.Rows() {
		err := fmt.Errorf("core: predict rows %d, shard has %d", start.Rows, data.Rows())
		// Tell the querying party before failing, so it does not hang.
		_ = l.send(MsgPredictPlacements{Party: fragment.Party, Last: true, Error: err.Error()})
		return err
	}
	out := MsgPredictPlacements{Party: fragment.Party, Last: true}
	for ti, tree := range fragment.Trees {
		ids := make([]int32, 0, len(tree.Nodes))
		for id := range tree.Nodes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			n := tree.Nodes[id]
			if n.Owner != fragment.Party {
				continue
			}
			bits := make([]bool, data.Rows())
			for i := 0; i < data.Rows(); i++ {
				bits[i] = goesLeftRaw(data, i, n.Feature, n.Threshold)
			}
			out.Nodes = append(out.Nodes, PredictNodeBits{Tree: ti, Node: id, Bits: packBitmap(bits)})
		}
	}
	return l.send(out)
}

// PredictRemote scores aligned instances from Party B's side: bData is
// B's feature shard, bFragment its model fragment (which holds the full
// structure), and trs one transport per passive party currently serving
// ServePredict. It returns raw margins.
func PredictRemote(bFragment *PartyModel, learningRate float64, bData *dataset.Dataset, trs []Transport) ([]float64, error) {
	n := bData.Rows()
	// Collect passive routing bitmaps.
	type key struct {
		party int
		tree  int
		node  int32
	}
	routes := make(map[key][]byte)
	for pi, tr := range trs {
		l := &link{out: tr, in: tr}
		if err := l.send(MsgPredictStart{Rows: n}); err != nil {
			return nil, err
		}
		msg, err := l.recv()
		if err != nil {
			return nil, err
		}
		pl, ok := msg.(MsgPredictPlacements)
		if !ok {
			return nil, fmt.Errorf("core: expected MsgPredictPlacements, got %T", msg)
		}
		if pl.Error != "" {
			return nil, fmt.Errorf("core: party %d cannot serve prediction: %s", pi, pl.Error)
		}
		for _, nb := range pl.Nodes {
			routes[key{party: pi, tree: nb.Tree, node: nb.Node}] = nb.Bits
		}
	}

	out := make([]float64, n)
	for i := 0; i < n; i++ {
		margin := 0.0
		for ti, tree := range bFragment.Trees {
			id := tree.Root
			for hop := 0; ; hop++ {
				if hop > 64 {
					return nil, fmt.Errorf("core: prediction traversal of tree %d did not terminate", ti)
				}
				nd, ok := tree.Nodes[id]
				if !ok {
					return nil, fmt.Errorf("core: tree %d missing node %d", ti, id)
				}
				if nd.Owner == OwnerLeaf {
					margin += learningRate * nd.Weight
					break
				}
				var left bool
				if nd.Owner == bFragment.Party {
					left = goesLeftRaw(bData, i, nd.Feature, nd.Threshold)
				} else {
					bits, ok := routes[key{party: nd.Owner, tree: ti, node: id}]
					if !ok {
						return nil, fmt.Errorf("core: no routing bits from party %d for tree %d node %d", nd.Owner, ti, id)
					}
					left = bitmapGet(bits, i)
				}
				if left {
					id = nd.Left
				} else {
					id = nd.Right
				}
			}
		}
		out[i] = margin
	}
	return out, nil
}
