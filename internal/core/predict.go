package core

import (
	"encoding/gob"
	"fmt"

	"vf2boost/internal/dataset"
)

// Federated prediction: after training, each party keeps only its own
// model fragment, so scoring new (aligned) instances is itself a
// protocol. The exchange mirrors training's placement messages: Party B
// announces the instance count, every passive party answers with one
// routing bitmap per split node it owns (bit i set = instance i routes
// left), and B — which knows the full tree structure — routes every
// instance locally. Passive parties reveal exactly the same information
// as during training (placements), never features or thresholds.

// MsgPredictStart asks a passive party for routing bitmaps over its
// current dataset rows.
type MsgPredictStart struct {
	Rows int
}

// MsgPredictPlacements answers with one bitmap per owned split node, or
// an error description when the request cannot be served.
type MsgPredictPlacements struct {
	Party int
	Nodes []PredictNodeBits
	Last  bool
	Error string
}

// PredictNodeBits is the routing bitmap of one owned node of one tree.
type PredictNodeBits struct {
	Tree int
	Node int32
	Bits []byte
}

func init() {
	gob.Register(MsgPredictStart{})
	gob.Register(MsgPredictPlacements{})
}

// ServePredict answers prediction queries for a passive party: it blocks
// for one MsgPredictStart, streams the routing bitmaps for every split
// node the fragment owns, and returns. data must hold the party's feature
// shard of the instances to score, aligned with the other parties.
func ServePredict(fragment *PartyModel, data *dataset.Dataset, tr Transport) error {
	l := NewLink(tr) // adapts to the querying party's codec
	msg, err := l.recv()
	if err != nil {
		return err
	}
	start, ok := msg.(MsgPredictStart)
	if !ok {
		return fmt.Errorf("core: expected MsgPredictStart, got %T", msg)
	}
	return servePredictRound(l, fragment, data, start)
}

// servePredictRound answers one MsgPredictStart. A row mismatch is
// reported to the querying party (so it never hangs) and returned as an
// error for the caller to decide whether the session survives.
func servePredictRound(l *link, fragment *PartyModel, data *dataset.Dataset, start MsgPredictStart) error {
	if start.Rows != data.Rows() {
		err := fmt.Errorf("core: predict rows %d, shard has %d", start.Rows, data.Rows())
		// Tell the querying party before failing, so it does not hang.
		_ = l.send(MsgPredictPlacements{Party: fragment.Party, Last: true, Error: err.Error()})
		return err
	}
	nodes, err := ScorePlacements(fragment, data, nil)
	if err != nil {
		_ = l.send(MsgPredictPlacements{Party: fragment.Party, Last: true, Error: err.Error()})
		return err
	}
	return l.send(MsgPredictPlacements{Party: fragment.Party, Nodes: nodes, Last: true})
}

// ServePredictLoop serves repeated MsgPredictStart rounds on one session:
// it answers every round (including per-round errors, which keep the
// session alive) until the transport closes or a MsgShutdown arrives, both
// of which end the loop cleanly. ServePredict remains the single-round
// special case for existing callers.
func ServePredictLoop(fragment *PartyModel, data *dataset.Dataset, tr Transport) error {
	l := NewLink(tr) // adapts to the querying party's codec
	for {
		msg, err := l.recv()
		if err != nil {
			// Transport gone: the peer disconnected, which is the normal
			// way a prediction session ends.
			return nil
		}
		switch m := msg.(type) {
		case MsgPredictStart:
			// Per-round errors were already reported to the peer; the
			// session stays up for the next round.
			_ = servePredictRound(l, fragment, data, m)
		case MsgShutdown:
			return nil
		default:
			return fmt.Errorf("core: expected MsgPredictStart, got %T", msg)
		}
	}
}

// PredictRemote scores aligned instances from Party B's side: bData is
// B's feature shard, bFragment its model fragment (which holds the full
// structure), and trs one transport per passive party currently serving
// ServePredict. It returns raw margins.
func PredictRemote(bFragment *PartyModel, learningRate float64, bData *dataset.Dataset, trs []Transport) ([]float64, error) {
	n := bData.Rows()
	// Collect passive routing bitmaps.
	routes := make(map[RouteKey][]byte)
	for pi, tr := range trs {
		l := NewLink(tr)
		if err := l.send(MsgPredictStart{Rows: n}); err != nil {
			return nil, err
		}
		msg, err := l.recv()
		if err != nil {
			return nil, err
		}
		pl, ok := msg.(MsgPredictPlacements)
		if !ok {
			return nil, fmt.Errorf("core: expected MsgPredictPlacements, got %T", msg)
		}
		if pl.Error != "" {
			return nil, fmt.Errorf("core: party %d cannot serve prediction: %s", pi, pl.Error)
		}
		for _, nb := range pl.Nodes {
			routes[RouteKey{Party: pi, Tree: nb.Tree, Node: nb.Node}] = nb.Bits
		}
	}
	return RouteMargins(bFragment, learningRate, 0, bData, nil, routes)
}
