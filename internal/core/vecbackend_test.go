package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vf2boost/internal/metrics"
)

// vecQuickConfig is quickConfig switched onto a slot-batched backend.
// Packing is left enabled to prove the engine disables it itself in vec
// mode (the two layouts are mutually exclusive).
func vecQuickConfig(backend string) Config {
	var cfg Config
	switch backend {
	case "mock-batched":
		cfg = quickConfig(SchemeMock)
	default:
		cfg = quickConfig(SchemePaillier)
	}
	cfg.HEBackend = backend
	return cfg
}

// TestVecMockExactParity: with a single exponent the scalar encoding is
// round(v·B^e) at the same fixed exponent lane encoding uses, and both
// paths accumulate in exact modular arithmetic — so the lane-packed
// protocol must reproduce the scalar model bit for bit.
func TestVecMockExactParity(t *testing.T) {
	_, parts := twoPartyData(t, 500, 5, 4, 1, true, 21)
	scalar := quickConfig(SchemeMock)
	scalar.ExpSpread = 1
	vec := vecQuickConfig("mock-batched")
	vec.ExpSpread = 1

	mS, _ := trainFed(t, parts, scalar)
	mV, _ := trainFed(t, parts, vec)
	a, err := mS.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mV.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lane-packed model diverges from scalar at row %d: %g vs %g", i, b[i], a[i])
		}
	}
}

// TestVecBackendMatrix sweeps the protocol features that interact with
// the vectorized layout: sibling subtraction (cell-wise SubVec) and the
// optimistic schedule (aborted vec tasks). Every combination must produce
// the same model.
func TestVecBackendMatrix(t *testing.T) {
	_, parts := twoPartyData(t, 400, 8, 3, 0.7, false, 22)
	base := vecQuickConfig("mock-batched")
	base.OptimisticSplit = false
	base.HistogramSubtraction = false
	ref, _ := trainFed(t, parts, base)
	refMargins, err := ref.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}

	for mask := 1; mask < 4; mask++ {
		cfg := base
		cfg.OptimisticSplit = mask&1 != 0
		cfg.HistogramSubtraction = mask&2 != 0
		m, _ := trainFed(t, parts, cfg)
		margins, err := m.PredictAll(parts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range margins {
			if math.Abs(margins[i]-refMargins[i]) > 1e-9 {
				t.Fatalf("vec protocol mask %02b changed the model at row %d: %g vs %g",
					mask, i, margins[i], refMargins[i])
			}
		}
	}
}

// TestVecAUCParity is the acceptance gate: the lane-packed protocol with
// the default (obfuscated, spread-4 scalar) baseline must land on the
// same model quality even though lane encoding fixes the exponent.
func TestVecAUCParity(t *testing.T) {
	joined, parts := twoPartyData(t, 1000, 6, 5, 1, true, 23)
	scalar := quickConfig(SchemeMock)
	scalar.Trees = 8
	vec := vecQuickConfig("mock-batched")
	vec.Trees = 8

	mS, _ := trainFed(t, parts, scalar)
	mV, _ := trainFed(t, parts, vec)
	marS, err := mS.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	marV, err := mV.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	aucS, err := metrics.AUC(marS, joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	aucV, err := metrics.AUC(marV, joined.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aucS-aucV) > 0.005 {
		t.Errorf("lane-packed AUC %g diverges from scalar %g", aucV, aucS)
	}
}

// TestVecPaillierMatchesMock: the Paillier and mock batched backends run
// the same exact integer arithmetic, so their models must be identical —
// the vec-mode analogue of TestSchemeEquivalence.
func TestVecPaillierMatchesMock(t *testing.T) {
	_, parts := twoPartyData(t, 250, 4, 3, 1, true, 24)
	cfgP := vecQuickConfig("paillier-batched")
	cfgP.Trees = 2
	cfgM := vecQuickConfig("mock-batched")
	cfgM.Trees = 2
	mP, sP := trainFed(t, parts, cfgP)
	mM, _ := trainFed(t, parts, cfgM)
	a, err := mP.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mM.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("paillier-batched and mock-batched diverge at row %d: %g vs %g", i, a[i], b[i])
		}
	}
	// The vectorized stream must actually have been used: at 256-bit one
	// ciphertext carries a whole ⟨g,h⟩ pair, so the rounds encrypt at most
	// half of the 2n ciphertexts per tree the scalar stream needs.
	n := int64(parts[0].Rows())
	if enc := sP.Crypto().Encryptions(); enc >= 2*n*int64(cfgP.Trees) {
		t.Errorf("vec session encrypted %d ciphertexts, scalar would need %d", enc, 2*n*int64(cfgP.Trees))
	}
}

// TestScalarBackendByteIdentity: naming a 1-slot backend explicitly must
// be byte-identical to the legacy (empty HEBackend) configuration.
func TestScalarBackendByteIdentity(t *testing.T) {
	_, parts := twoPartyData(t, 200, 3, 3, 1, true, 25)
	legacy := quickConfig(SchemeMock)
	named := quickConfig(SchemeMock)
	named.HEBackend = "mock"

	mL, _ := trainFed(t, parts, legacy)
	mN, _ := trainFed(t, parts, named)
	var bufL, bufN bytes.Buffer
	if err := mL.Save(&bufL); err != nil {
		t.Fatal(err)
	}
	if err := mN.Save(&bufN); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufL.Bytes(), bufN.Bytes()) {
		t.Fatal("explicit 1-slot backend changed the serialized model")
	}
}

// TestUnknownBackendRejected: config validation must fail fast on
// unregistered names (listing the registry) and on family mismatches.
func TestUnknownBackendRejected(t *testing.T) {
	_, parts := twoPartyData(t, 50, 2, 2, 1, true, 26)
	cfg := quickConfig(SchemeMock)
	cfg.HEBackend = "nope"
	_, err := NewSession(parts, cfg)
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	if !strings.Contains(err.Error(), "mock-batched") {
		t.Errorf("error does not list registered backends: %v", err)
	}
	cfg.HEBackend = "paillier-batched" // family paillier, scheme mock
	if _, err := NewSession(parts, cfg); err == nil {
		t.Fatal("family mismatch accepted")
	}
}

// TestPeerBackendRejection: a passive party must refuse a negotiated
// backend it does not have registered, or whose geometry is degenerate,
// before accepting any ciphertext.
func TestPeerBackendRejection(t *testing.T) {
	p := &passiveParty{index: 0}
	err := p.setupBackend(MsgSetup{Scheme: "mock", Bits: 256, Backend: "exotic-ckks"})
	if err == nil {
		t.Fatal("unregistered negotiated backend accepted")
	}
	if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("rejection does not list the local registry: %v", err)
	}
	if err := p.setupBackend(MsgSetup{Scheme: "paillier", Bits: 256, Backend: "mock-batched", Slots: 2, LaneBits: 66, Headroom: 32}); err == nil {
		t.Fatal("family mismatch accepted")
	}
	if err := p.setupBackend(MsgSetup{Scheme: "mock", Bits: 256, Backend: "mock", Slots: 1}); err == nil {
		t.Fatal("scalar backend over vectorized setup accepted")
	}
	if err := p.setupBackend(MsgSetup{Scheme: "mock", Bits: 256, Backend: "mock-batched", Slots: 3, LaneBits: 40, Headroom: 8}); err == nil {
		t.Fatal("odd slot count accepted")
	}
	if err := p.setupBackend(MsgSetup{Scheme: "mock", Bits: 256, Backend: "mock-batched", Slots: 2, LaneBits: 8, Headroom: 8}); err == nil {
		t.Fatal("laneBits <= headroom accepted")
	}
}
