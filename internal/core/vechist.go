package core

import (
	"fmt"

	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
)

// vecHist is the slot-batched counterpart of EncHistogram: the passive
// party accumulates whole gradient-window ciphertexts (k = pairs ⟨g,h⟩
// pairs each) instead of per-instance scalars. Instance i lives in window
// i/pairs at pair slot i%pairs, so adding its window ciphertext into the
// accumulator of (bin, i%pairs) deposits its ⟨g,h⟩ lanes — together with
// its window-mates' values, which land in other lanes of the same
// accumulator and are simply never read. One HAdd per instance per
// feature, exactly like the scalar path, but each shipped ciphertext
// carries a whole bin-slot sum, so Party B's decrypt count drops by up to
// the per-feature occupancy and the gradient stream shrinks by ~pairs×.
//
// Correctness of the garbage lanes: every lane of an accumulator is a sum
// of at most count ≤ rows < 2^headroom lane values, so no lane ever
// carries into its neighbour; DecryptVec's layout check proves it.
type vecHist struct {
	codec   *fixedpoint.Codec
	backend he.Backend
	offsets []int
	pairs   int
	// cts/counts are indexed (offsets[feature]+bin)·pairs + slot; a nil
	// ciphertext (count 0) is an empty accumulator.
	cts    []he.VecCiphertext
	counts []int32
}

func newVecHist(codec *fixedpoint.Codec, backend he.Backend, offsets []int, pairs int) *vecHist {
	total := offsets[len(offsets)-1] * pairs
	return &vecHist{
		codec:   codec,
		backend: backend,
		offsets: offsets,
		pairs:   pairs,
		cts:     make([]he.VecCiphertext, total),
		counts:  make([]int32, total),
	}
}

// accumulate sweeps instances into the per-(bin, slot) accumulators. wins
// holds the tree's window ciphertexts, indexed by instance/pairs; it is
// read-only here, so shard builders may share it. Not safe for concurrent
// use on one vecHist. A view failure stops the sweep and invalidates the
// partial accumulation.
func (vh *vecHist) accumulate(bm gbdt.BinView, insts []int32, wins []he.VecCiphertext) error {
	for _, i := range insts {
		w := wins[int(i)/vh.pairs]
		slot := int(i) % vh.pairs
		cols, bins, err := bm.Row(int(i))
		if err != nil {
			return err
		}
		for k, j := range cols {
			idx := (vh.offsets[j]+int(bins[k]))*vh.pairs + slot
			if vh.cts[idx] == nil {
				vh.cts[idx] = vh.backend.AddVecInto(vh.backend.EncryptZeroVec(), w)
			} else {
				vh.cts[idx] = vh.backend.AddVecInto(vh.cts[idx], w)
			}
			vh.codec.Stats().AddHAdds(1)
			vh.counts[idx]++
		}
	}
	return nil
}

// merge folds another shard's accumulators (same shape) into this one.
func (vh *vecHist) merge(o *vecHist) {
	for idx, ct := range o.cts {
		if ct == nil {
			continue
		}
		if vh.cts[idx] == nil {
			vh.cts[idx] = ct
		} else {
			vh.cts[idx] = vh.backend.AddVecInto(vh.cts[idx], ct)
			vh.codec.Stats().AddHAdds(1)
		}
		vh.counts[idx] += o.counts[idx]
	}
}

// subtractVecHist derives the sibling accumulators as parent − child cell
// by cell. A child accumulated a subset of its parent's instances, so
// every parent cell dominates the matching child cell lane-wise; a child
// cell with mass its parent lacks is corrupt or hostile input. Untouched
// parent cells are shared by reference — finalized histograms are
// read-only from here on, matching the scalar subtractBins aliasing.
func subtractVecHist(parent, child *vecHist) (*vecHist, error) {
	out := &vecHist{
		codec:   parent.codec,
		backend: parent.backend,
		offsets: parent.offsets,
		pairs:   parent.pairs,
		cts:     make([]he.VecCiphertext, len(parent.cts)),
		counts:  make([]int32, len(parent.counts)),
	}
	for idx := range parent.cts {
		pc, cc := parent.counts[idx], child.counts[idx]
		switch {
		case pc == 0 && cc == 0:
			// stays empty
		case pc == 0 || cc > pc:
			return nil, fmt.Errorf("core: child histogram has mass in accumulator %d its parent lacks", idx)
		case cc == 0:
			out.cts[idx] = parent.cts[idx]
			out.counts[idx] = pc
		default:
			diff, err := parent.backend.SubVec(parent.cts[idx], child.cts[idx])
			if err != nil {
				return nil, fmt.Errorf("core: subtracting accumulator %d: %w", idx, err)
			}
			out.cts[idx] = diff
			out.counts[idx] = pc - cc
			parent.codec.Stats().AddHAdds(1)
		}
	}
	return out, nil
}

// wireFeat serializes one feature's occupied accumulators into the
// vectorized FeatHist representation.
func (vh *vecHist) wireFeat(feature int) FeatHist {
	lo, hi := vh.offsets[feature], vh.offsets[feature+1]
	fh := FeatHist{NumBins: hi - lo, Vec: true}
	for bin := lo; bin < hi; bin++ {
		for slot := 0; slot < vh.pairs; slot++ {
			idx := bin*vh.pairs + slot
			if vh.counts[idx] == 0 {
				continue
			}
			fh.VecBin = append(fh.VecBin, int32(bin-lo))
			fh.VecSlot = append(fh.VecSlot, int32(slot))
			fh.VecCount = append(fh.VecCount, vh.counts[idx])
			fh.VecCts = append(fh.VecCts, vh.backend.MarshalVec(vh.cts[idx]))
		}
	}
	return fh
}
