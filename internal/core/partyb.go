package core

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"vf2boost/internal/checkpoint"
	"vf2boost/internal/dataset"
	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
	"vf2boost/internal/objective"
	"vf2boost/internal/trace"
)

// activeParty is the Party B engine: it owns the labels and the private
// key, orchestrates the training routine, decrypts passive histograms and
// arbitrates the globally best split of every node.
type activeParty struct {
	cfg Config

	// view is B's binned feature matrix (in-memory or out-of-core);
	// labels and rows are its label vector and instance count.
	view   gbdt.BinView
	labels []float64
	rows   int
	mapper *gbdt.BinMapper

	dec   he.Decryptor
	codec *fixedpoint.Codec

	// vec is set when the configured HE backend is slot-batched: vdec
	// wraps dec with the lane layout, vplan is the negotiated geometry and
	// vcodec is a deterministic (spread-1) codec for lane encoding. The
	// scalar dec/codec stay live for everything outside the gradient
	// stream so the non-vector protocol is untouched.
	vec    bool
	vdec   he.VecDecryptor
	vplan  fixedpoint.LanePlan
	vcodec *fixedpoint.Codec

	links []*link
	pumps []*pump

	packing bool
	plan    packPlan

	stats *Stats

	// offsets[i] is the global feature offset of passive party i; bOffset
	// is Party B's own.
	offsets []int32
	bOffset int32

	// Per-tree training state. margins/grads/hess alias the current
	// output's row of the *All matrices below, so the single-output
	// protocol code reads them unchanged.
	margins []float64
	grads   []float64
	hess    []float64
	nextID  int32

	// Multi-output state: outputs is the objective's k (1 for binary);
	// class is the output index of the tree currently building (global
	// tree t trains output t mod k). The *All matrices are k×n; the
	// objective fills all k rows once per boosting round and the round's
	// k trees consume them through a single encryption pass.
	outputs    int
	class      int
	marginsAll [][]float64
	gradsAll   [][]float64
	hessAll    [][]float64
	// ipw is the vec path's instances-per-window: a window ciphertext
	// carries ipw instances × outputs classes of ⟨g,h⟩ lane pairs, so
	// ipw = vplan.Pairs/outputs (== Pairs when k == 1). rootHists caches
	// each passive party's all-class decoded root histogram per round:
	// one DecryptVec yields every class's lanes, so classes 1..k-1 reuse
	// class 0's decryptions instead of paying their own.
	ipw       int
	rootHists []vecRootHist

	model *PartyModel

	// ckpt, when set, snapshots the training state after every completed
	// tree; resume restores the newest round every party can continue
	// from (arbitrated via MsgResume at setup). resumeTrees holds each
	// passive party's announced round.
	ckpt        *checkpoint.Store
	resume      bool
	resumeTrees []int
	// backOff is the adaptive-optimism state carried between rounds: set
	// when the previous tree's dirty ratio exceeded 1/2. It is part of the
	// checkpoint so a resumed run follows the same protocol schedule (and
	// allocates the same node IDs) as an uninterrupted one.
	backOff bool

	// rec, when set, records Gantt spans of the cryptography phases
	// (Figures 4 and 5). A nil recorder is a no-op.
	rec *trace.Recorder

	// perTreeTime records wall time per boosting round for Figure 10.
	perTreeTime []time.Duration
}

// pump demultiplexes one passive party's incoming messages by type so the
// scheduler can await histograms and placements independently. A pump's
// receive loop also keeps draining while B computes, which is what lets
// blaster batches and streamed histograms overlap with decryption.
type pump struct {
	hist      chan MsgHistograms
	placement chan MsgPlacement
	ready     chan MsgReady
	resume    chan MsgResume
	errs      chan error

	// stores hold messages pulled off the channels but not yet consumed.
	// Histograms are keyed by (tree, node): during a multi-output round
	// the passive party's per-class root histograms arrive tagged with
	// later trees of the same round (round·k+c) while B is still building
	// tree round·k, so they must be held rather than discarded.
	histStore  map[int64]NodeHist
	placeStore map[int32]MsgPlacement
}

// histKey composes the (tree, node) histogram-store key.
func histKey(tree int, node int32) int64 {
	return int64(tree)<<32 | int64(uint32(node))
}

func startPump(l *link) *pump {
	p := &pump{
		hist:       make(chan MsgHistograms, 1024),
		placement:  make(chan MsgPlacement, 256),
		ready:      make(chan MsgReady, 1),
		resume:     make(chan MsgResume, 1),
		errs:       make(chan error, 1),
		histStore:  make(map[int64]NodeHist),
		placeStore: make(map[int32]MsgPlacement),
	}
	go func() {
		for {
			msg, err := l.recv()
			if err != nil {
				p.errs <- err
				return
			}
			switch m := msg.(type) {
			case MsgHistograms:
				p.hist <- m
			case MsgPlacement:
				p.placement <- m
			case MsgReady:
				p.ready <- m
			case MsgResume:
				p.resume <- m
			case MsgAbort:
				// The passive party hit an unrecoverable input error (see
				// passiveParty.fail); surface it as the session failure.
				p.errs <- fmt.Errorf("core: party %d aborted session: %s", m.Party, m.Reason)
				return
			default:
				p.errs <- fmt.Errorf("core: party B: unexpected message %T", msg)
				return
			}
		}
	}()
	return p
}

// histFor blocks until the passive party's histogram for a node of the
// given tree arrives. Node IDs restart every tree, so the store keys by
// (tree, node): a straggler from an aborted optimistic sub-task of an
// earlier tree lands under its own tree and can never masquerade as the
// current tree's histogram, while a multi-output round's early-arriving
// per-class root histograms (tagged with later trees of the round) are
// held until their tree builds. Leftovers are cleared by reset at the
// end of every round.
func (p *pump) histFor(tree int, node int32) (NodeHist, error) {
	key := histKey(tree, node)
	for {
		if nh, ok := p.histStore[key]; ok {
			delete(p.histStore, key)
			return nh, nil
		}
		select {
		case m := <-p.hist:
			for _, nh := range m.Nodes {
				p.histStore[histKey(m.Tree, nh.Node)] = nh
			}
		case err := <-p.errs:
			return NodeHist{}, err
		}
	}
}

// placementFor blocks until the passive party's placement for a node of
// the given tree arrives; stale-tree placements are discarded.
func (p *pump) placementFor(tree int, node int32) (MsgPlacement, error) {
	for {
		if pl, ok := p.placeStore[node]; ok {
			delete(p.placeStore, node)
			return pl, nil
		}
		select {
		case m := <-p.placement:
			if m.Tree != tree {
				continue
			}
			p.placeStore[m.Node] = m
		case err := <-p.errs:
			return MsgPlacement{}, err
		}
	}
}

// reset discards per-round leftovers (stale histograms of aborted nodes).
func (p *pump) reset() {
	p.histStore = make(map[int64]NodeHist)
	p.placeStore = make(map[int32]MsgPlacement)
	for {
		select {
		case <-p.hist:
		case <-p.placement:
		default:
			return
		}
	}
}

func newActiveParty(data *dataset.Dataset, cfg Config, dec he.Decryptor, links []*link, stats *Stats) (*activeParty, error) {
	if data.Labels == nil {
		return nil, fmt.Errorf("core: party B dataset has no labels")
	}
	mapper, err := gbdt.NewBinMapper(data, cfg.MaxBins)
	if err != nil {
		return nil, err
	}
	return newActivePartyView(gbdt.NewBinnedMatrix(data, mapper), data.Labels, cfg, dec, links, stats)
}

// newActivePartyView builds Party B over an already-binned view and its
// label vector — the out-of-core entry point, where no Dataset ever
// exists.
func newActivePartyView(view gbdt.BinView, labels []float64, cfg Config, dec he.Decryptor, links []*link, stats *Stats) (*activeParty, error) {
	if labels == nil {
		return nil, fmt.Errorf("core: party B has no labels")
	}
	if len(labels) != view.Rows() {
		return nil, fmt.Errorf("core: party B has %d labels for %d rows", len(labels), view.Rows())
	}
	if cfg.Objective == nil {
		if cfg.Loss == nil {
			cfg.Loss = gbdt.LogisticLoss{}
		}
		cfg.Objective = objective.FromLoss(cfg.Loss)
	}
	if err := cfg.Objective.Validate(labels); err != nil {
		return nil, fmt.Errorf("core: party B labels: %w", err)
	}
	// A bound-fitting objective (squared loss) derives its gradient bound
	// from the observed labels before the lane and packing plans are
	// built, so the historic constant can't silently overflow a shift.
	if bf, ok := cfg.Objective.(objective.BoundFitter); ok {
		bf.FitBound(labels)
	}
	b := &activeParty{
		cfg:    cfg,
		view:   view,
		labels: labels,
		rows:   view.Rows(),
		mapper: view.Mapper(),
		dec:    dec,
		codec: fixedpoint.NewCodec(dec,
			fixedpoint.WithExponents(cfg.BaseExp, cfg.ExpSpread),
			fixedpoint.WithSeed(cfg.Seed)),
		links:   links,
		stats:   stats,
		model:   &PartyModel{Party: len(links)},
		outputs: cfg.outputs(),
	}
	if cfg.vecMode() {
		plan, err := cfg.lanePlanFor(dec.Bits())
		if err != nil {
			return nil, err
		}
		vdec, ok := dec.(he.VecDecryptor)
		if ok {
			if vdec.Slots() != plan.Slots() || vdec.LaneBits() != plan.LaneBits || vdec.Headroom() != plan.Headroom {
				return nil, fmt.Errorf("core: injected backend geometry (%d slots, %d-bit lanes, %d headroom) does not match the lane plan (%d, %d, %d)",
					vdec.Slots(), vdec.LaneBits(), vdec.Headroom(), plan.Slots(), plan.LaneBits, plan.Headroom)
			}
		} else {
			vdec, err = he.NewBatchedDecryptor(dec, cfg.HEBackend, plan.Slots(), plan.LaneBits, plan.Headroom)
			if err != nil {
				return nil, err
			}
		}
		b.vec = true
		b.vdec = vdec
		b.vplan = plan
		// A multi-output round interleaves the k classes of each instance
		// within one window: slot-group s carries instance s's k ⟨g,h⟩
		// pairs at lanes 2·(s·k+c), 2·(s·k+c)+1, so one ciphertext ships
		// every class's gradients and one decryption serves them all.
		b.ipw = plan.Pairs / b.outputs
		if b.ipw < 1 {
			return nil, fmt.Errorf("core: backend %q packs %d pairs per ciphertext, fewer than the %d outputs of objective %s",
				cfg.HEBackend, plan.Pairs, b.outputs, cfg.Objective.Name())
		}
		b.rootHists = make([]vecRootHist, len(links))
		// Lane encoding shares the scalar codec's stats so session totals
		// stay in one place; spread 1 because every lane shares one scale.
		b.vcodec = fixedpoint.NewCodec(vdec,
			fixedpoint.WithExponents(plan.Exp, 1),
			fixedpoint.WithStats(b.codec.Stats()))
	}
	// Histogram packing shifts scalar prefix-sum bins into one plaintext;
	// the vectorized path already packs at the lane level, so the two are
	// mutually exclusive.
	if cfg.HistogramPacking && !cfg.vecMode() {
		plan, err := planPacking(b.codec, b.rows, cfg.gradBound(), fixedpoint.DefaultPackBits)
		if err != nil {
			return nil, err
		}
		b.packing = true
		b.plan = plan
	}
	return b, nil
}

// fastObfuscationScheme is the optional capability a decryptor exposes
// when it can switch to DJN-style fast obfuscation (he.PaillierDecryptor
// does; the mock scheme has nothing to speed up).
type fastObfuscationScheme interface {
	EnableFastObfuscation() error
	ObfuscationBase() *big.Int
	ObfuscationBits() int
}

// setup shares the cryptographic context and learns each passive party's
// feature count (for the global feature order).
func (b *activeParty) setup() error {
	setup := MsgSetup{
		Scheme:    b.cfg.Scheme,
		N:         b.dec.N().Bytes(),
		Bits:      b.dec.Bits(),
		BaseExp:   b.cfg.BaseExp,
		ExpSpread: b.cfg.ExpSpread,
	}
	if b.cfg.FastObfuscation {
		if fo, ok := b.dec.(fastObfuscationScheme); ok {
			// Derive the obfuscation base before any encryption happens
			// and ship it with the public key so the passive parties'
			// pool-less encrypt path gets the same speedup.
			if err := fo.EnableFastObfuscation(); err != nil {
				return fmt.Errorf("core: enabling fast obfuscation: %w", err)
			}
			setup.ObfBase = fo.ObfuscationBase().Bytes()
			setup.ObfBits = fo.ObfuscationBits()
		}
	} else if fo, ok := b.dec.(interface{ DisableFastObfuscation() }); ok {
		// A decryptor shared across sessions (benchmarks do this) may
		// still carry a fast base from a previous run; a baseline session
		// must pay the paper's full r^n cost.
		fo.DisableFastObfuscation()
	}
	if b.packing {
		setup.PackBits = b.plan.bits
		setup.Shift = b.plan.shift
	}
	if b.vec {
		setup.Backend = b.cfg.HEBackend
		setup.Slots = b.vplan.Slots()
		setup.LaneBits = b.vplan.LaneBits
		setup.Headroom = b.vplan.Headroom
	}
	// Objective negotiation: named for any non-default objective so the
	// passive party can resolve it in its own registry (and reject the
	// session before accepting a single ciphertext if it cannot). Binary
	// sessions leave the fields empty — their setup frame is unchanged.
	if name := b.cfg.Objective.Name(); name != "binary" {
		setup.Objective = name
		setup.Outputs = b.outputs
	}
	for _, l := range b.links {
		if err := l.send(setup); err != nil {
			return err
		}
	}
	b.pumps = make([]*pump, len(b.links))
	for i, l := range b.links {
		b.pumps[i] = startPump(l)
	}
	b.offsets = make([]int32, len(b.links))
	off := int32(0)
	for i, p := range b.pumps {
		select {
		case r := <-p.ready:
			if r.Rows != b.rows {
				return fmt.Errorf("core: party %d has %d rows, party B has %d (instances not aligned)",
					i, r.Rows, b.rows)
			}
			b.offsets[i] = off
			off += int32(r.Features)
		case err := <-p.errs:
			return err
		}
	}
	b.bOffset = off
	// Each party follows its MsgReady with a MsgResume announcing the
	// round its restored checkpoint covers (0 when fresh).
	b.resumeTrees = make([]int, len(b.pumps))
	for i, p := range b.pumps {
		select {
		case m := <-p.resume:
			b.resumeTrees[i] = m.Trees
		case err := <-p.errs:
			return err
		}
	}
	return nil
}

// train runs all boosting rounds and returns B's model fragment. A
// k-output objective runs cfg.Trees rounds of k trees each (global tree
// t = round·k + class): the objective fills all k gradient rows at the
// top of the round and the round's k trees ship through one encryption
// pass, issued with the first tree.
func (b *activeParty) train() (*PartyModel, error) {
	if err := b.setup(); err != nil {
		return nil, err
	}
	n := b.rows
	k := b.outputs
	b.marginsAll = make([][]float64, k)
	b.gradsAll = make([][]float64, k)
	b.hessAll = make([][]float64, k)
	for c := 0; c < k; c++ {
		b.marginsAll[c] = make([]float64, n)
		b.gradsAll[c] = make([]float64, n)
		b.hessAll[c] = make([]float64, n)
		if init := b.cfg.Objective.InitMargin(b.labels, c); init != 0 {
			for i := range b.marginsAll[c] {
				b.marginsAll[c][i] = init
			}
		}
	}
	b.margins, b.grads, b.hess = b.marginsAll[0], b.gradsAll[0], b.hessAll[0]

	totalTrees := b.cfg.Trees * k
	startTree := 0
	if b.ckpt != nil && b.resume {
		trees, st, err := b.resumePoint()
		if err != nil {
			return nil, err
		}
		if trees > 0 {
			b.model.Trees = st.Fragment.Trees
			// Checkpoint margins are the k×n matrix flattened class-major.
			for c := 0; c < k; c++ {
				copy(b.marginsAll[c], st.Margins[c*n:(c+1)*n])
			}
			b.backOff = st.BackOff
			startTree = trees
		}
	}

	// With adaptive optimism the optimistic schedule is abandoned for the
	// next tree whenever the previous tree's dirty ratio exceeded 1/2:
	// the optimistic bet lost more often than it won, so the re-done work
	// outweighs the hidden idle time.
	var start time.Time
	for t := startTree; t < totalTrees; t++ {
		round, class := t/k, t%k
		b.class = class
		b.margins = b.marginsAll[class]
		b.grads = b.gradsAll[class]
		b.hess = b.hessAll[class]
		if class == 0 {
			// Per-round obfuscation stream: reseeding here makes round r's
			// exponent draws independent of how many rounds ran before it,
			// so a resumed session reproduces an uninterrupted run exactly.
			b.codec.ReseedExp(b.cfg.Seed + int64(round+1)*0x5DEECE66D)
			start = time.Now()
			if err := b.cfg.Objective.GradHess(b.labels, b.marginsAll, b.gradsAll, b.hessAll); err != nil {
				return nil, fmt.Errorf("core: objective %s: %w", b.cfg.Objective.Name(), err)
			}
			// One shipment per round carries every class's gradients.
			if err := b.sendGradients(t); err != nil {
				return nil, err
			}
		}
		dirtyBefore := b.stats.DirtyNodes()
		splitsBefore := b.stats.SplitsByA() + b.stats.SplitsByB()
		var tree *FedTree
		var leaves []leafResult
		var err error
		// Multi-output rounds always run the sequential schedule: the
		// optimistic protocol's tentative/abort machinery assumes node IDs
		// restart with every shipment, which one-shipment-per-round breaks.
		if k == 1 && b.cfg.OptimisticSplit && !(b.cfg.AdaptiveOptimism && b.backOff) {
			tree, leaves, err = b.buildTreeOptimistic(t)
			dirty := b.stats.DirtyNodes() - dirtyBefore
			splits := b.stats.SplitsByA() + b.stats.SplitsByB() - splitsBefore
			b.backOff = splits > 0 && float64(dirty)/float64(splits) > 0.5
		} else {
			tree, leaves, err = b.buildTreeSequential(t)
		}
		if err != nil {
			return nil, err
		}
		b.model.Trees = append(b.model.Trees, tree)
		for _, lf := range leaves {
			for _, i := range lf.insts {
				b.margins[i] += b.cfg.LearningRate * lf.weight
			}
		}
		for _, l := range b.links {
			if err := l.send(MsgTreeDone{Tree: t}); err != nil {
				return nil, err
			}
		}
		b.stats.treesFinished.Add(1)
		if class != k-1 {
			continue
		}
		// Round boundary: clear pump leftovers and checkpoint. Mid-round
		// trees never reset — the round's later per-class root histograms
		// may already be sitting in the store.
		for _, p := range b.pumps {
			p.reset()
		}
		if b.ckpt != nil {
			if err := b.saveCheckpoint(t + 1); err != nil {
				return nil, fmt.Errorf("core: party B checkpoint: %w", err)
			}
		}
		b.perTreeTime = append(b.perTreeTime, time.Since(start))
	}
	for _, l := range b.links {
		if err := l.send(MsgShutdown{}); err != nil {
			return nil, err
		}
	}
	return b.model, nil
}

// sendGradients encrypts the round's gradient statistics and ships them to
// every passive party. With blaster encryption the instances stream in
// batches so encryption, WAN transfer, and root-histogram construction in
// the passive parties overlap (Section 4.1); without it one bulk batch is
// sent after all encryption finishes. A k-output round on the scalar path
// ships k class streams back-to-back (each tagged with its Class, all
// under the shipment tree t = round·k); the vec path interleaves all
// classes into the lanes of a single stream.
func (b *activeParty) sendGradients(t int) error {
	if b.vec {
		return b.sendVecGradients(t)
	}
	for c := 0; c < b.outputs; c++ {
		if err := b.sendGradStream(t, c, b.gradsAll[c], b.hessAll[c]); err != nil {
			return err
		}
	}
	return nil
}

// sendGradStream encrypts and ships one output's gradient vector.
func (b *activeParty) sendGradStream(t, class int, grads, hess []float64) error {
	n := b.rows
	batch := b.cfg.BatchSize
	if !b.cfg.BlasterEncryption {
		batch = n
	}

	// Blaster mode ships finished batches from a background goroutine
	// (the paper's "blasts the ciphers to Party A in a background
	// thread"), so encryption of batch k+1 overlaps the WAN transmission
	// of batch k. Without blaster the single bulk batch is sent inline.
	var sendCh chan MsgGradBatch
	var sendErr error
	done := make(chan struct{})
	if b.cfg.BlasterEncryption {
		sendCh = make(chan MsgGradBatch, 2)
		go func() {
			defer close(done)
			for m := range sendCh {
				for _, l := range b.links {
					if err := l.send(m); err != nil {
						sendErr = err
						return
					}
				}
			}
		}()
	}

	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		m := MsgGradBatch{
			Tree:  t,
			Start: start,
			G:     make([][]byte, end-start),
			H:     make([][]byte, end-start),
			GExp:  make([]int16, end-start),
			HExp:  make([]int16, end-start),
			Last:  end == n,
			Class: class,
		}
		encStart := time.Now()
		endSpan := b.rec.Span("B:Encrypt", fmt.Sprintf("tree %d [%d,%d)", t, start, end))
		if err := b.encryptRange(start, end, grads, hess, &m); err != nil {
			return err
		}
		endSpan()
		addDur(&b.stats.encryptTime, time.Since(encStart))
		if sendCh != nil {
			select {
			case sendCh <- m:
			case <-done:
				return sendErr
			}
			continue
		}
		for _, l := range b.links {
			if err := l.send(m); err != nil {
				return err
			}
		}
	}
	if sendCh != nil {
		close(sendCh)
		<-done
		return sendErr
	}
	return nil
}

// sendVecGradients is the slot-batched gradient stream: ipw instances
// travel per ciphertext (ipw = vplan.Pairs for a single-output round,
// Pairs/k for a k-output round, where each instance occupies k
// consecutive lane pairs — one per class), so the round ships ⌈n/ipw⌉
// windows carrying every class's gradients in a single encryption pass.
// Batches are rounded up to whole windows so every MsgVecGradBatch
// starts window-aligned and instance i always occupies slot-group i%ipw
// of window i/ipw.
func (b *activeParty) sendVecGradients(t int) error {
	n := b.rows
	pairs := b.ipw
	batch := b.cfg.BatchSize
	if !b.cfg.BlasterEncryption {
		batch = n
	}
	if rem := batch % pairs; rem != 0 {
		batch += pairs - rem
	}

	var sendCh chan MsgVecGradBatch
	var sendErr error
	done := make(chan struct{})
	if b.cfg.BlasterEncryption {
		sendCh = make(chan MsgVecGradBatch, 2)
		go func() {
			defer close(done)
			for m := range sendCh {
				for _, l := range b.links {
					if err := l.send(m); err != nil {
						sendErr = err
						return
					}
				}
			}
		}()
	}

	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		m := MsgVecGradBatch{
			Tree:  t,
			Start: start,
			Cts:   make([][]byte, (end-start+pairs-1)/pairs),
			Last:  end == n,
		}
		encStart := time.Now()
		endSpan := b.rec.Span("B:Encrypt", fmt.Sprintf("tree %d [%d,%d)", t, start, end))
		if err := b.encryptVecRange(start, end, &m); err != nil {
			return err
		}
		endSpan()
		addDur(&b.stats.encryptTime, time.Since(encStart))
		if sendCh != nil {
			select {
			case sendCh <- m:
			case <-done:
				return sendErr
			}
			continue
		}
		for _, l := range b.links {
			if err := l.send(m); err != nil {
				return err
			}
		}
	}
	if sendCh != nil {
		close(sendCh)
		<-done
		return sendErr
	}
	return nil
}

// encryptVecRange packs instances [start, end) into window ciphertexts,
// parallelized across the configured workers. Lane order within a
// window is slot-group-major, class-minor: instance wStart+s, class c
// lands at lanes 2·(s·k+c), 2·(s·k+c)+1 — for k == 1 exactly the
// original pair-per-instance layout. The final window of the last batch
// may be partial; EncryptVec accepts short lane vectors and the unused
// high lanes simply stay zero.
func (b *activeParty) encryptVecRange(start, end int, m *MsgVecGradBatch) error {
	pairs := b.ipw
	k := b.outputs
	var mu sync.Mutex
	var firstErr error
	parallelFor(len(m.Cts), b.cfg.Workers, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			wStart := start + w*pairs
			wEnd := wStart + pairs
			if wEnd > end {
				wEnd = end
			}
			lanes := make([]*big.Int, 0, 2*k*(wEnd-wStart))
			var err error
			for i := wStart; i < wEnd && err == nil; i++ {
				for c := 0; c < k; c++ {
					var gl, hl *big.Int
					gl, hl, err = b.vcodec.EncodeLanePair(b.gradsAll[c][i], b.hessAll[c][i], b.vplan)
					if err != nil {
						break
					}
					lanes = append(lanes, gl, hl)
				}
			}
			if err == nil {
				var v he.VecCiphertext
				v, err = b.vcodec.EncryptLanes(lanes)
				if err == nil {
					m.Cts[w] = b.vdec.MarshalVec(v)
					continue
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
	})
	return firstErr
}

// encryptRange fills a gradient batch with ciphertexts, parallelized
// across the configured workers.
func (b *activeParty) encryptRange(start, end int, grads, hess []float64, m *MsgGradBatch) error {
	var mu sync.Mutex
	var firstErr error
	parallelFor(end-start, b.cfg.Workers, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			i := start + k
			eg, err := b.codec.EncryptValue(grads[i])
			if err == nil {
				var eh fixedpoint.EncNum
				eh, err = b.codec.EncryptValue(hess[i])
				if err == nil {
					m.G[k] = b.dec.Marshal(eg.Ct)
					m.H[k] = b.dec.Marshal(eh.Ct)
					m.GExp[k] = int16(eg.Exp)
					m.HExp[k] = int16(eh.Exp)
					continue
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
	})
	return firstErr
}

// bNode is Party B's bookkeeping for one live tree node.
type bNode struct {
	id    int32
	insts []int32
	g, h  float64
}

// leafResult is a finalized leaf: its instances receive the weight.
type leafResult struct {
	insts  []int32
	weight float64
}

// candidate is a best-split candidate tagged with its owner for global
// arbitration.
type candidate struct {
	split      gbdt.Split
	party      int // passive index, or len(links) for B
	globalFeat int32
}

func (c candidate) valid() bool { return c.split.Valid() }

// betterCandidate imposes the global deterministic order: gain first, then
// global feature index, then bin — the same rule gbdt.Better applies
// locally, so federated arbitration matches co-located training.
func betterCandidate(a, b candidate) bool {
	if a.split.Gain != b.split.Gain {
		return a.split.Gain > b.split.Gain
	}
	if a.globalFeat != b.globalFeat {
		return a.globalFeat < b.globalFeat
	}
	return a.split.Bin < b.split.Bin
}

// ownBest finds Party B's best split for a node from its plaintext
// histogram.
func (b *activeParty) ownBest(h *gbdt.Histogram, node *bNode) candidate {
	start := time.Now()
	s := gbdt.BestSplit(h, node.g, node.h, b.cfg.Split)
	addDur(&b.stats.findSplitTime, time.Since(start))
	c := candidate{split: s, party: len(b.links)}
	if s.Valid() {
		c.globalFeat = b.bOffset + s.Feature
	}
	return c
}

// passiveBest decrypts one passive party's histogram of a node and finds
// that party's best split.
func (b *activeParty) passiveBest(party int, nh NodeHist, node *bNode) (candidate, error) {
	decStart := time.Now()
	endSpan := b.rec.Span("B:Decrypt+FindSplitA", fmt.Sprintf("node %d", node.id))
	gSums, hSums, err := b.decryptNodeHist(nh)
	endSpan()
	addDur(&b.stats.decryptTime, time.Since(decStart))
	if err != nil {
		return candidate{}, err
	}
	findStart := time.Now()
	best := candidate{split: gbdt.NoSplit, party: party}
	for j := range gSums {
		s := gbdt.BestSplitForFeature(int32(j), gSums[j], hSums[j], node.g, node.h, b.cfg.Split)
		if !s.Valid() {
			continue
		}
		c := candidate{split: s, party: party, globalFeat: b.offsets[party] + int32(j)}
		if !best.valid() || betterCandidate(c, best) {
			best = c
		}
	}
	addDur(&b.stats.findSplitTime, time.Since(findStart))
	return best, nil
}

// vecRootHist caches one passive party's decoded root-histogram bin sums
// for every class of the current round. In a vectorized multi-output
// session the root accumulators cover all instances and all class lanes,
// so they are identical for every class tree of a round: the passive
// party ships them once (tagged with the round's first tree) and B
// decrypts them once, serving classes 1..k-1 from this cache. round
// stores round+1 so the zero value never matches a real round.
type vecRootHist struct {
	round int
	g, h  [][][]float64 // [class][feature][bin]
}

// passiveCand fetches a passive party's histogram for a node and returns
// that party's best split. Root nodes of vectorized multi-output
// sessions are served from the per-round all-class cache; every other
// node takes the ordinary fetch-and-decrypt path.
func (b *activeParty) passiveCand(party, tree int, node *bNode) (candidate, error) {
	if b.vec && b.outputs > 1 && node.id == rootID {
		return b.vecRootBest(party, tree, node)
	}
	nh, err := b.pumps[party].histFor(tree, node.id)
	if err != nil {
		return candidate{}, err
	}
	return b.passiveBest(party, nh, node)
}

// vecRootBest finds a passive party's best root split for the class tree
// `tree`, decrypting the round's shared root histogram only on first use
// (class 0) and extracting the current class's lanes from the cache on
// every later class of the round.
func (b *activeParty) vecRootBest(party, tree int, node *bNode) (candidate, error) {
	round := tree / b.outputs
	rh := &b.rootHists[party]
	if rh.round != round+1 {
		// The root histogram arrives exactly once per round, tagged
		// with the round's first class tree.
		nh, err := b.pumps[party].histFor(round*b.outputs, rootID)
		if err != nil {
			return candidate{}, err
		}
		decStart := time.Now()
		endSpan := b.rec.Span("B:Decrypt+FindSplitA", fmt.Sprintf("node %d (all classes)", node.id))
		g, h, err := b.decryptVecNodeAllClasses(nh)
		endSpan()
		addDur(&b.stats.decryptTime, time.Since(decStart))
		if err != nil {
			return candidate{}, err
		}
		rh.round, rh.g, rh.h = round+1, g, h
	}
	gSums, hSums := rh.g[b.class], rh.h[b.class]
	findStart := time.Now()
	best := candidate{split: gbdt.NoSplit, party: party}
	for j := range gSums {
		s := gbdt.BestSplitForFeature(int32(j), gSums[j], hSums[j], node.g, node.h, b.cfg.Split)
		if !s.Valid() {
			continue
		}
		c := candidate{split: s, party: party, globalFeat: b.offsets[party] + int32(j)}
		if !best.valid() || betterCandidate(c, best) {
			best = c
		}
	}
	addDur(&b.stats.findSplitTime, time.Since(findStart))
	return best, nil
}

// decryptNodeHist recovers the per-feature (g, h) bin sums of a passive
// histogram, parallelized across features.
func (b *activeParty) decryptNodeHist(nh NodeHist) (gSums, hSums [][]float64, err error) {
	gSums = make([][]float64, len(nh.Feats))
	hSums = make([][]float64, len(nh.Feats))
	var mu sync.Mutex
	var firstErr error
	parallelFor(len(nh.Feats), b.cfg.Workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			g, h, err := b.decryptFeature(nh.Feats[j])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			gSums[j], hSums[j] = g, h
		}
	})
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return gSums, hSums, nil
}

func (b *activeParty) decryptFeature(fh FeatHist) (g, h []float64, err error) {
	if fh.Vec {
		return b.decryptVecFeature(fh)
	}
	if fh.Packed {
		g, err = unpackFeature(b.codec, b.dec, fh.PackedG, fh.NumBins, b.plan)
		if err != nil {
			return nil, nil, err
		}
		h, err = unpackFeature(b.codec, b.dec, fh.PackedH, fh.NumBins, b.plan)
		return g, h, err
	}
	g = make([]float64, fh.NumBins)
	h = make([]float64, fh.NumBins)
	for k := 0; k < fh.NumBins; k++ {
		g[k], err = b.decryptBin(fh.GBins[k], int(fh.GExp[k]))
		if err != nil {
			return nil, nil, err
		}
		h[k], err = b.decryptBin(fh.HBins[k], int(fh.HExp[k]))
		if err != nil {
			return nil, nil, err
		}
	}
	return g, h, nil
}

// decryptVecFeature recovers one feature's (g, h) bin sums from the
// vectorized representation: each entry is a per-(bin, pair-slot)
// accumulator whose lanes 2·slot and 2·slot+1 hold the ⟨g,h⟩ sums of
// VecCount instances (the other lanes belong to window-mates routed to
// other bins and are ignored). Per bin the slot sums combine exactly in
// the integer domain; only the final total is decoded to float.
func (b *activeParty) decryptVecFeature(fh FeatHist) (g, h []float64, err error) {
	if !b.vec {
		return nil, nil, fmt.Errorf("core: passive party sent a vectorized histogram to a scalar session")
	}
	if len(fh.VecSlot) != len(fh.VecBin) || len(fh.VecCount) != len(fh.VecBin) || len(fh.VecCts) != len(fh.VecBin) {
		return nil, nil, fmt.Errorf("core: vectorized feature histogram has mismatched columns (%d/%d/%d/%d)",
			len(fh.VecBin), len(fh.VecSlot), len(fh.VecCount), len(fh.VecCts))
	}
	gMan := make([]*big.Int, fh.NumBins)
	hMan := make([]*big.Int, fh.NumBins)
	for k := range fh.VecBin {
		bin, slot, count := int(fh.VecBin[k]), int(fh.VecSlot[k]), int(fh.VecCount[k])
		if bin < 0 || bin >= fh.NumBins {
			return nil, nil, fmt.Errorf("core: vectorized histogram bin %d out of [0,%d)", bin, fh.NumBins)
		}
		if slot < 0 || slot >= b.ipw {
			return nil, nil, fmt.Errorf("core: vectorized histogram pair slot %d out of [0,%d)", slot, b.ipw)
		}
		if count <= 0 || count > b.rows {
			return nil, nil, fmt.Errorf("core: vectorized histogram accumulator claims %d instances of %d", count, b.rows)
		}
		v, err := b.vdec.UnmarshalVec(fh.VecCts[k])
		if err != nil {
			return nil, nil, err
		}
		lanes, err := b.vdec.DecryptVec(v)
		if err != nil {
			return nil, nil, err
		}
		b.codec.Stats().AddDecryptions(1)
		// Slot-group s, class c sits at lane pair 2·(s·k+c); for a
		// single-output session this is exactly 2·slot.
		li := 2 * (slot*b.outputs + b.class)
		gSum := b.vplan.LaneSumSigned(lanes[li], int64(count))
		hSum := b.vplan.LaneSumSigned(lanes[li+1], int64(count))
		if gMan[bin] == nil {
			gMan[bin], hMan[bin] = gSum, hSum
		} else {
			gMan[bin].Add(gMan[bin], gSum)
			hMan[bin].Add(hMan[bin], hSum)
		}
	}
	g = make([]float64, fh.NumBins)
	h = make([]float64, fh.NumBins)
	for bin := 0; bin < fh.NumBins; bin++ {
		if gMan[bin] == nil {
			continue // empty bin
		}
		g[bin] = fixedpoint.DecodeSigned(gMan[bin], b.vplan.Base, b.vplan.Exp)
		h[bin] = fixedpoint.DecodeSigned(hMan[bin], b.vplan.Base, b.vplan.Exp)
	}
	return g, h, nil
}

// decryptVecNodeAllClasses recovers every class's per-feature (g, h) bin
// sums of a vectorized passive histogram in one pass: each accumulator
// ciphertext is decrypted once and all k class lane pairs are extracted
// from it, so the decryption count stays constant in the output count.
func (b *activeParty) decryptVecNodeAllClasses(nh NodeHist) (gSums, hSums [][][]float64, err error) {
	k := b.outputs
	gSums = make([][][]float64, k)
	hSums = make([][][]float64, k)
	for c := 0; c < k; c++ {
		gSums[c] = make([][]float64, len(nh.Feats))
		hSums[c] = make([][]float64, len(nh.Feats))
	}
	var mu sync.Mutex
	var firstErr error
	parallelFor(len(nh.Feats), b.cfg.Workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			g, h, err := b.decryptVecFeatureAllClasses(nh.Feats[j])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			for c := 0; c < k; c++ {
				gSums[c][j], hSums[c][j] = g[c], h[c]
			}
		}
	})
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return gSums, hSums, nil
}

// decryptVecFeatureAllClasses is decryptVecFeature generalized to return
// every class's bin sums ([class][bin]) from a single decryption of each
// accumulator ciphertext.
func (b *activeParty) decryptVecFeatureAllClasses(fh FeatHist) (g, h [][]float64, err error) {
	if !fh.Vec {
		return nil, nil, fmt.Errorf("core: passive party sent a scalar histogram on the vectorized root path")
	}
	if len(fh.VecSlot) != len(fh.VecBin) || len(fh.VecCount) != len(fh.VecBin) || len(fh.VecCts) != len(fh.VecBin) {
		return nil, nil, fmt.Errorf("core: vectorized feature histogram has mismatched columns (%d/%d/%d/%d)",
			len(fh.VecBin), len(fh.VecSlot), len(fh.VecCount), len(fh.VecCts))
	}
	nk := b.outputs
	gMan := make([][]*big.Int, nk)
	hMan := make([][]*big.Int, nk)
	for c := 0; c < nk; c++ {
		gMan[c] = make([]*big.Int, fh.NumBins)
		hMan[c] = make([]*big.Int, fh.NumBins)
	}
	for idx := range fh.VecBin {
		bin, slot, count := int(fh.VecBin[idx]), int(fh.VecSlot[idx]), int(fh.VecCount[idx])
		if bin < 0 || bin >= fh.NumBins {
			return nil, nil, fmt.Errorf("core: vectorized histogram bin %d out of [0,%d)", bin, fh.NumBins)
		}
		if slot < 0 || slot >= b.ipw {
			return nil, nil, fmt.Errorf("core: vectorized histogram pair slot %d out of [0,%d)", slot, b.ipw)
		}
		if count <= 0 || count > b.rows {
			return nil, nil, fmt.Errorf("core: vectorized histogram accumulator claims %d instances of %d", count, b.rows)
		}
		v, err := b.vdec.UnmarshalVec(fh.VecCts[idx])
		if err != nil {
			return nil, nil, err
		}
		lanes, err := b.vdec.DecryptVec(v)
		if err != nil {
			return nil, nil, err
		}
		b.codec.Stats().AddDecryptions(1)
		for c := 0; c < nk; c++ {
			li := 2 * (slot*nk + c)
			gSum := b.vplan.LaneSumSigned(lanes[li], int64(count))
			hSum := b.vplan.LaneSumSigned(lanes[li+1], int64(count))
			if gMan[c][bin] == nil {
				gMan[c][bin], hMan[c][bin] = gSum, hSum
			} else {
				gMan[c][bin].Add(gMan[c][bin], gSum)
				hMan[c][bin].Add(hMan[c][bin], hSum)
			}
		}
	}
	g = make([][]float64, nk)
	h = make([][]float64, nk)
	for c := 0; c < nk; c++ {
		g[c] = make([]float64, fh.NumBins)
		h[c] = make([]float64, fh.NumBins)
		for bin := 0; bin < fh.NumBins; bin++ {
			if gMan[c][bin] == nil {
				continue // empty bin
			}
			g[c][bin] = fixedpoint.DecodeSigned(gMan[c][bin], b.vplan.Base, b.vplan.Exp)
			h[c][bin] = fixedpoint.DecodeSigned(hMan[c][bin], b.vplan.Base, b.vplan.Exp)
		}
	}
	return g, h, nil
}

func (b *activeParty) decryptBin(payload []byte, exp int) (float64, error) {
	if len(payload) == 0 {
		return 0, nil // empty bin
	}
	ct, err := b.dec.Unmarshal(payload)
	if err != nil {
		return 0, err
	}
	return b.codec.Decrypt(b.dec, fixedpoint.EncNum{Exp: exp, Ct: ct})
}

// childStats computes exact child gradient totals from B's plaintext
// gradient arrays (B always knows node membership).
func (b *activeParty) childStats(insts []int32) (g, h float64) {
	for _, i := range insts {
		g += b.grads[i]
		h += b.hess[i]
	}
	return g, h
}

// placementBitmap computes the left/right bitmap of a Party-B split over
// a node's instances.
func (b *activeParty) placementBitmap(insts []int32, feature, bin int32) ([]byte, []int32, []int32, error) {
	bits := make([]bool, len(insts))
	var left, right []int32
	for k, i := range insts {
		goesLeft, err := gbdt.GoesLeft(b.view, i, feature, bin)
		if err != nil {
			return nil, nil, nil, err
		}
		if goesLeft {
			bits[k] = true
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return packBitmap(bits), left, right, nil
}

// allocID hands out the next tree-node ID.
func (b *activeParty) allocID() int32 {
	b.nextID++
	return b.nextID
}

// buildOwnHistograms builds Party B's plaintext histograms for a set of
// nodes.
func (b *activeParty) buildOwnHistograms(nodes []*bNode) ([]*gbdt.Histogram, error) {
	lists := make([][]int32, len(nodes))
	for k, nd := range nodes {
		lists[k] = nd.insts
	}
	return gbdt.BuildHistograms(b.view, lists, b.grads, b.hess, b.cfg.Workers)
}
