package core

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"vf2boost/internal/checkpoint"
	"vf2boost/internal/dataset"
	"vf2boost/internal/fixedpoint"
	"vf2boost/internal/gbdt"
	"vf2boost/internal/he"
	"vf2boost/internal/trace"
)

// activeParty is the Party B engine: it owns the labels and the private
// key, orchestrates the training routine, decrypts passive histograms and
// arbitrates the globally best split of every node.
type activeParty struct {
	cfg Config

	// view is B's binned feature matrix (in-memory or out-of-core);
	// labels and rows are its label vector and instance count.
	view   gbdt.BinView
	labels []float64
	rows   int
	mapper *gbdt.BinMapper

	dec   he.Decryptor
	codec *fixedpoint.Codec

	// vec is set when the configured HE backend is slot-batched: vdec
	// wraps dec with the lane layout, vplan is the negotiated geometry and
	// vcodec is a deterministic (spread-1) codec for lane encoding. The
	// scalar dec/codec stay live for everything outside the gradient
	// stream so the non-vector protocol is untouched.
	vec    bool
	vdec   he.VecDecryptor
	vplan  fixedpoint.LanePlan
	vcodec *fixedpoint.Codec

	links []*link
	pumps []*pump

	packing bool
	plan    packPlan

	stats *Stats

	// offsets[i] is the global feature offset of passive party i; bOffset
	// is Party B's own.
	offsets []int32
	bOffset int32

	// Per-tree training state.
	margins []float64
	grads   []float64
	hess    []float64
	nextID  int32

	model *PartyModel

	// ckpt, when set, snapshots the training state after every completed
	// tree; resume restores the newest round every party can continue
	// from (arbitrated via MsgResume at setup). resumeTrees holds each
	// passive party's announced round.
	ckpt        *checkpoint.Store
	resume      bool
	resumeTrees []int
	// backOff is the adaptive-optimism state carried between rounds: set
	// when the previous tree's dirty ratio exceeded 1/2. It is part of the
	// checkpoint so a resumed run follows the same protocol schedule (and
	// allocates the same node IDs) as an uninterrupted one.
	backOff bool

	// rec, when set, records Gantt spans of the cryptography phases
	// (Figures 4 and 5). A nil recorder is a no-op.
	rec *trace.Recorder

	// perTreeTime records wall time per boosting round for Figure 10.
	perTreeTime []time.Duration
}

// pump demultiplexes one passive party's incoming messages by type so the
// scheduler can await histograms and placements independently. A pump's
// receive loop also keeps draining while B computes, which is what lets
// blaster batches and streamed histograms overlap with decryption.
type pump struct {
	hist      chan MsgHistograms
	placement chan MsgPlacement
	ready     chan MsgReady
	resume    chan MsgResume
	errs      chan error

	// stores hold messages pulled off the channels but not yet consumed.
	histStore  map[int32]NodeHist
	placeStore map[int32]MsgPlacement
}

func startPump(l *link) *pump {
	p := &pump{
		hist:       make(chan MsgHistograms, 1024),
		placement:  make(chan MsgPlacement, 256),
		ready:      make(chan MsgReady, 1),
		resume:     make(chan MsgResume, 1),
		errs:       make(chan error, 1),
		histStore:  make(map[int32]NodeHist),
		placeStore: make(map[int32]MsgPlacement),
	}
	go func() {
		for {
			msg, err := l.recv()
			if err != nil {
				p.errs <- err
				return
			}
			switch m := msg.(type) {
			case MsgHistograms:
				p.hist <- m
			case MsgPlacement:
				p.placement <- m
			case MsgReady:
				p.ready <- m
			case MsgResume:
				p.resume <- m
			case MsgAbort:
				// The passive party hit an unrecoverable input error (see
				// passiveParty.fail); surface it as the session failure.
				p.errs <- fmt.Errorf("core: party %d aborted session: %s", m.Party, m.Reason)
				return
			default:
				p.errs <- fmt.Errorf("core: party B: unexpected message %T", msg)
				return
			}
		}
	}()
	return p
}

// histFor blocks until the passive party's histogram for a node of the
// given tree arrives. Histograms from earlier trees (stragglers from
// aborted optimistic sub-tasks) are discarded: node IDs restart every
// tree, so without the tree filter a stale message could masquerade as
// the current tree's histogram.
func (p *pump) histFor(tree int, node int32) (NodeHist, error) {
	for {
		if nh, ok := p.histStore[node]; ok {
			delete(p.histStore, node)
			return nh, nil
		}
		select {
		case m := <-p.hist:
			if m.Tree != tree {
				continue
			}
			for _, nh := range m.Nodes {
				p.histStore[nh.Node] = nh
			}
		case err := <-p.errs:
			return NodeHist{}, err
		}
	}
}

// placementFor blocks until the passive party's placement for a node of
// the given tree arrives; stale-tree placements are discarded.
func (p *pump) placementFor(tree int, node int32) (MsgPlacement, error) {
	for {
		if pl, ok := p.placeStore[node]; ok {
			delete(p.placeStore, node)
			return pl, nil
		}
		select {
		case m := <-p.placement:
			if m.Tree != tree {
				continue
			}
			p.placeStore[m.Node] = m
		case err := <-p.errs:
			return MsgPlacement{}, err
		}
	}
}

// reset discards per-tree leftovers (stale histograms of aborted nodes).
func (p *pump) reset() {
	p.histStore = make(map[int32]NodeHist)
	p.placeStore = make(map[int32]MsgPlacement)
	for {
		select {
		case <-p.hist:
		case <-p.placement:
		default:
			return
		}
	}
}

func newActiveParty(data *dataset.Dataset, cfg Config, dec he.Decryptor, links []*link, stats *Stats) (*activeParty, error) {
	if data.Labels == nil {
		return nil, fmt.Errorf("core: party B dataset has no labels")
	}
	mapper, err := gbdt.NewBinMapper(data, cfg.MaxBins)
	if err != nil {
		return nil, err
	}
	return newActivePartyView(gbdt.NewBinnedMatrix(data, mapper), data.Labels, cfg, dec, links, stats)
}

// newActivePartyView builds Party B over an already-binned view and its
// label vector — the out-of-core entry point, where no Dataset ever
// exists.
func newActivePartyView(view gbdt.BinView, labels []float64, cfg Config, dec he.Decryptor, links []*link, stats *Stats) (*activeParty, error) {
	if labels == nil {
		return nil, fmt.Errorf("core: party B has no labels")
	}
	if len(labels) != view.Rows() {
		return nil, fmt.Errorf("core: party B has %d labels for %d rows", len(labels), view.Rows())
	}
	b := &activeParty{
		cfg:    cfg,
		view:   view,
		labels: labels,
		rows:   view.Rows(),
		mapper: view.Mapper(),
		dec:    dec,
		codec: fixedpoint.NewCodec(dec,
			fixedpoint.WithExponents(cfg.BaseExp, cfg.ExpSpread),
			fixedpoint.WithSeed(cfg.Seed)),
		links: links,
		stats: stats,
		model: &PartyModel{Party: len(links)},
	}
	if cfg.vecMode() {
		plan, err := cfg.lanePlanFor(dec.Bits())
		if err != nil {
			return nil, err
		}
		vdec, ok := dec.(he.VecDecryptor)
		if ok {
			if vdec.Slots() != plan.Slots() || vdec.LaneBits() != plan.LaneBits || vdec.Headroom() != plan.Headroom {
				return nil, fmt.Errorf("core: injected backend geometry (%d slots, %d-bit lanes, %d headroom) does not match the lane plan (%d, %d, %d)",
					vdec.Slots(), vdec.LaneBits(), vdec.Headroom(), plan.Slots(), plan.LaneBits, plan.Headroom)
			}
		} else {
			vdec, err = he.NewBatchedDecryptor(dec, cfg.HEBackend, plan.Slots(), plan.LaneBits, plan.Headroom)
			if err != nil {
				return nil, err
			}
		}
		b.vec = true
		b.vdec = vdec
		b.vplan = plan
		// Lane encoding shares the scalar codec's stats so session totals
		// stay in one place; spread 1 because every lane shares one scale.
		b.vcodec = fixedpoint.NewCodec(vdec,
			fixedpoint.WithExponents(plan.Exp, 1),
			fixedpoint.WithStats(b.codec.Stats()))
	}
	// Histogram packing shifts scalar prefix-sum bins into one plaintext;
	// the vectorized path already packs at the lane level, so the two are
	// mutually exclusive.
	if cfg.HistogramPacking && !cfg.vecMode() {
		plan, err := planPacking(b.codec, b.rows, cfg.Loss.GradBound(), fixedpoint.DefaultPackBits)
		if err != nil {
			return nil, err
		}
		b.packing = true
		b.plan = plan
	}
	return b, nil
}

// fastObfuscationScheme is the optional capability a decryptor exposes
// when it can switch to DJN-style fast obfuscation (he.PaillierDecryptor
// does; the mock scheme has nothing to speed up).
type fastObfuscationScheme interface {
	EnableFastObfuscation() error
	ObfuscationBase() *big.Int
	ObfuscationBits() int
}

// setup shares the cryptographic context and learns each passive party's
// feature count (for the global feature order).
func (b *activeParty) setup() error {
	setup := MsgSetup{
		Scheme:    b.cfg.Scheme,
		N:         b.dec.N().Bytes(),
		Bits:      b.dec.Bits(),
		BaseExp:   b.cfg.BaseExp,
		ExpSpread: b.cfg.ExpSpread,
	}
	if b.cfg.FastObfuscation {
		if fo, ok := b.dec.(fastObfuscationScheme); ok {
			// Derive the obfuscation base before any encryption happens
			// and ship it with the public key so the passive parties'
			// pool-less encrypt path gets the same speedup.
			if err := fo.EnableFastObfuscation(); err != nil {
				return fmt.Errorf("core: enabling fast obfuscation: %w", err)
			}
			setup.ObfBase = fo.ObfuscationBase().Bytes()
			setup.ObfBits = fo.ObfuscationBits()
		}
	} else if fo, ok := b.dec.(interface{ DisableFastObfuscation() }); ok {
		// A decryptor shared across sessions (benchmarks do this) may
		// still carry a fast base from a previous run; a baseline session
		// must pay the paper's full r^n cost.
		fo.DisableFastObfuscation()
	}
	if b.packing {
		setup.PackBits = b.plan.bits
		setup.Shift = b.plan.shift
	}
	if b.vec {
		setup.Backend = b.cfg.HEBackend
		setup.Slots = b.vplan.Slots()
		setup.LaneBits = b.vplan.LaneBits
		setup.Headroom = b.vplan.Headroom
	}
	for _, l := range b.links {
		if err := l.send(setup); err != nil {
			return err
		}
	}
	b.pumps = make([]*pump, len(b.links))
	for i, l := range b.links {
		b.pumps[i] = startPump(l)
	}
	b.offsets = make([]int32, len(b.links))
	off := int32(0)
	for i, p := range b.pumps {
		select {
		case r := <-p.ready:
			if r.Rows != b.rows {
				return fmt.Errorf("core: party %d has %d rows, party B has %d (instances not aligned)",
					i, r.Rows, b.rows)
			}
			b.offsets[i] = off
			off += int32(r.Features)
		case err := <-p.errs:
			return err
		}
	}
	b.bOffset = off
	// Each party follows its MsgReady with a MsgResume announcing the
	// round its restored checkpoint covers (0 when fresh).
	b.resumeTrees = make([]int, len(b.pumps))
	for i, p := range b.pumps {
		select {
		case m := <-p.resume:
			b.resumeTrees[i] = m.Trees
		case err := <-p.errs:
			return err
		}
	}
	return nil
}

// train runs all boosting rounds and returns B's model fragment.
func (b *activeParty) train() (*PartyModel, error) {
	if err := b.setup(); err != nil {
		return nil, err
	}
	n := b.rows
	b.margins = make([]float64, n)
	b.grads = make([]float64, n)
	b.hess = make([]float64, n)

	startTree := 0
	if b.ckpt != nil && b.resume {
		k, st, err := b.resumePoint()
		if err != nil {
			return nil, err
		}
		if k > 0 {
			b.model.Trees = st.Fragment.Trees
			copy(b.margins, st.Margins)
			b.backOff = st.BackOff
			startTree = k
		}
	}

	// With adaptive optimism the optimistic schedule is abandoned for the
	// next tree whenever the previous tree's dirty ratio exceeded 1/2:
	// the optimistic bet lost more often than it won, so the re-done work
	// outweighs the hidden idle time.
	for t := startTree; t < b.cfg.Trees; t++ {
		// Per-tree obfuscation stream: reseeding here makes tree t's
		// exponent draws independent of how many trees ran before it, so
		// a resumed session reproduces an uninterrupted run exactly.
		b.codec.ReseedExp(b.cfg.Seed + int64(t+1)*0x5DEECE66D)
		start := time.Now()
		for i := 0; i < n; i++ {
			b.grads[i], b.hess[i] = b.cfg.Loss.GradHess(b.labels[i], b.margins[i])
		}
		if err := b.sendGradients(t); err != nil {
			return nil, err
		}
		dirtyBefore := b.stats.DirtyNodes()
		splitsBefore := b.stats.SplitsByA() + b.stats.SplitsByB()
		var tree *FedTree
		var leaves []leafResult
		var err error
		if b.cfg.OptimisticSplit && !(b.cfg.AdaptiveOptimism && b.backOff) {
			tree, leaves, err = b.buildTreeOptimistic(t)
			dirty := b.stats.DirtyNodes() - dirtyBefore
			splits := b.stats.SplitsByA() + b.stats.SplitsByB() - splitsBefore
			b.backOff = splits > 0 && float64(dirty)/float64(splits) > 0.5
		} else {
			tree, leaves, err = b.buildTreeSequential(t)
		}
		if err != nil {
			return nil, err
		}
		b.model.Trees = append(b.model.Trees, tree)
		for _, lf := range leaves {
			for _, i := range lf.insts {
				b.margins[i] += b.cfg.LearningRate * lf.weight
			}
		}
		for _, l := range b.links {
			if err := l.send(MsgTreeDone{Tree: t}); err != nil {
				return nil, err
			}
		}
		for _, p := range b.pumps {
			p.reset()
		}
		if b.ckpt != nil {
			if err := b.saveCheckpoint(t + 1); err != nil {
				return nil, fmt.Errorf("core: party B checkpoint: %w", err)
			}
		}
		b.stats.treesFinished.Add(1)
		b.perTreeTime = append(b.perTreeTime, time.Since(start))
	}
	for _, l := range b.links {
		if err := l.send(MsgShutdown{}); err != nil {
			return nil, err
		}
	}
	return b.model, nil
}

// sendGradients encrypts the round's gradient statistics and ships them to
// every passive party. With blaster encryption the instances stream in
// batches so encryption, WAN transfer, and root-histogram construction in
// the passive parties overlap (Section 4.1); without it one bulk batch is
// sent after all encryption finishes.
func (b *activeParty) sendGradients(t int) error {
	if b.vec {
		return b.sendVecGradients(t)
	}
	n := b.rows
	batch := b.cfg.BatchSize
	if !b.cfg.BlasterEncryption {
		batch = n
	}

	// Blaster mode ships finished batches from a background goroutine
	// (the paper's "blasts the ciphers to Party A in a background
	// thread"), so encryption of batch k+1 overlaps the WAN transmission
	// of batch k. Without blaster the single bulk batch is sent inline.
	var sendCh chan MsgGradBatch
	var sendErr error
	done := make(chan struct{})
	if b.cfg.BlasterEncryption {
		sendCh = make(chan MsgGradBatch, 2)
		go func() {
			defer close(done)
			for m := range sendCh {
				for _, l := range b.links {
					if err := l.send(m); err != nil {
						sendErr = err
						return
					}
				}
			}
		}()
	}

	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		m := MsgGradBatch{
			Tree:  t,
			Start: start,
			G:     make([][]byte, end-start),
			H:     make([][]byte, end-start),
			GExp:  make([]int16, end-start),
			HExp:  make([]int16, end-start),
			Last:  end == n,
		}
		encStart := time.Now()
		endSpan := b.rec.Span("B:Encrypt", fmt.Sprintf("tree %d [%d,%d)", t, start, end))
		if err := b.encryptRange(start, end, &m); err != nil {
			return err
		}
		endSpan()
		addDur(&b.stats.encryptTime, time.Since(encStart))
		if sendCh != nil {
			select {
			case sendCh <- m:
			case <-done:
				return sendErr
			}
			continue
		}
		for _, l := range b.links {
			if err := l.send(m); err != nil {
				return err
			}
		}
	}
	if sendCh != nil {
		close(sendCh)
		<-done
		return sendErr
	}
	return nil
}

// sendVecGradients is the slot-batched gradient stream: k = vplan.Pairs
// ⟨g,h⟩ pairs travel per ciphertext, so the round ships ⌈n/k⌉ windows
// instead of 2n scalars. Batches are rounded up to whole windows so every
// MsgVecGradBatch starts window-aligned and instance i always occupies
// pair slot i%k of window i/k.
func (b *activeParty) sendVecGradients(t int) error {
	n := b.rows
	pairs := b.vplan.Pairs
	batch := b.cfg.BatchSize
	if !b.cfg.BlasterEncryption {
		batch = n
	}
	if rem := batch % pairs; rem != 0 {
		batch += pairs - rem
	}

	var sendCh chan MsgVecGradBatch
	var sendErr error
	done := make(chan struct{})
	if b.cfg.BlasterEncryption {
		sendCh = make(chan MsgVecGradBatch, 2)
		go func() {
			defer close(done)
			for m := range sendCh {
				for _, l := range b.links {
					if err := l.send(m); err != nil {
						sendErr = err
						return
					}
				}
			}
		}()
	}

	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		m := MsgVecGradBatch{
			Tree:  t,
			Start: start,
			Cts:   make([][]byte, (end-start+pairs-1)/pairs),
			Last:  end == n,
		}
		encStart := time.Now()
		endSpan := b.rec.Span("B:Encrypt", fmt.Sprintf("tree %d [%d,%d)", t, start, end))
		if err := b.encryptVecRange(start, end, &m); err != nil {
			return err
		}
		endSpan()
		addDur(&b.stats.encryptTime, time.Since(encStart))
		if sendCh != nil {
			select {
			case sendCh <- m:
			case <-done:
				return sendErr
			}
			continue
		}
		for _, l := range b.links {
			if err := l.send(m); err != nil {
				return err
			}
		}
	}
	if sendCh != nil {
		close(sendCh)
		<-done
		return sendErr
	}
	return nil
}

// encryptVecRange packs instances [start, end) into window ciphertexts,
// parallelized across the configured workers. The final window of the
// last batch may be partial; EncryptVec accepts short lane vectors and
// the unused high lanes simply stay zero.
func (b *activeParty) encryptVecRange(start, end int, m *MsgVecGradBatch) error {
	pairs := b.vplan.Pairs
	var mu sync.Mutex
	var firstErr error
	parallelFor(len(m.Cts), b.cfg.Workers, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			wStart := start + w*pairs
			wEnd := wStart + pairs
			if wEnd > end {
				wEnd = end
			}
			lanes := make([]*big.Int, 0, 2*(wEnd-wStart))
			var err error
			for i := wStart; i < wEnd; i++ {
				var gl, hl *big.Int
				gl, hl, err = b.vcodec.EncodeLanePair(b.grads[i], b.hess[i], b.vplan)
				if err != nil {
					break
				}
				lanes = append(lanes, gl, hl)
			}
			if err == nil {
				var v he.VecCiphertext
				v, err = b.vcodec.EncryptLanes(lanes)
				if err == nil {
					m.Cts[w] = b.vdec.MarshalVec(v)
					continue
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
	})
	return firstErr
}

// encryptRange fills a gradient batch with ciphertexts, parallelized
// across the configured workers.
func (b *activeParty) encryptRange(start, end int, m *MsgGradBatch) error {
	var mu sync.Mutex
	var firstErr error
	parallelFor(end-start, b.cfg.Workers, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			i := start + k
			eg, err := b.codec.EncryptValue(b.grads[i])
			if err == nil {
				var eh fixedpoint.EncNum
				eh, err = b.codec.EncryptValue(b.hess[i])
				if err == nil {
					m.G[k] = b.dec.Marshal(eg.Ct)
					m.H[k] = b.dec.Marshal(eh.Ct)
					m.GExp[k] = int16(eg.Exp)
					m.HExp[k] = int16(eh.Exp)
					continue
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
	})
	return firstErr
}

// bNode is Party B's bookkeeping for one live tree node.
type bNode struct {
	id    int32
	insts []int32
	g, h  float64
}

// leafResult is a finalized leaf: its instances receive the weight.
type leafResult struct {
	insts  []int32
	weight float64
}

// candidate is a best-split candidate tagged with its owner for global
// arbitration.
type candidate struct {
	split      gbdt.Split
	party      int // passive index, or len(links) for B
	globalFeat int32
}

func (c candidate) valid() bool { return c.split.Valid() }

// betterCandidate imposes the global deterministic order: gain first, then
// global feature index, then bin — the same rule gbdt.Better applies
// locally, so federated arbitration matches co-located training.
func betterCandidate(a, b candidate) bool {
	if a.split.Gain != b.split.Gain {
		return a.split.Gain > b.split.Gain
	}
	if a.globalFeat != b.globalFeat {
		return a.globalFeat < b.globalFeat
	}
	return a.split.Bin < b.split.Bin
}

// ownBest finds Party B's best split for a node from its plaintext
// histogram.
func (b *activeParty) ownBest(h *gbdt.Histogram, node *bNode) candidate {
	start := time.Now()
	s := gbdt.BestSplit(h, node.g, node.h, b.cfg.Split)
	addDur(&b.stats.findSplitTime, time.Since(start))
	c := candidate{split: s, party: len(b.links)}
	if s.Valid() {
		c.globalFeat = b.bOffset + s.Feature
	}
	return c
}

// passiveBest decrypts one passive party's histogram of a node and finds
// that party's best split.
func (b *activeParty) passiveBest(party int, nh NodeHist, node *bNode) (candidate, error) {
	decStart := time.Now()
	endSpan := b.rec.Span("B:Decrypt+FindSplitA", fmt.Sprintf("node %d", node.id))
	gSums, hSums, err := b.decryptNodeHist(nh)
	endSpan()
	addDur(&b.stats.decryptTime, time.Since(decStart))
	if err != nil {
		return candidate{}, err
	}
	findStart := time.Now()
	best := candidate{split: gbdt.NoSplit, party: party}
	for j := range gSums {
		s := gbdt.BestSplitForFeature(int32(j), gSums[j], hSums[j], node.g, node.h, b.cfg.Split)
		if !s.Valid() {
			continue
		}
		c := candidate{split: s, party: party, globalFeat: b.offsets[party] + int32(j)}
		if !best.valid() || betterCandidate(c, best) {
			best = c
		}
	}
	addDur(&b.stats.findSplitTime, time.Since(findStart))
	return best, nil
}

// decryptNodeHist recovers the per-feature (g, h) bin sums of a passive
// histogram, parallelized across features.
func (b *activeParty) decryptNodeHist(nh NodeHist) (gSums, hSums [][]float64, err error) {
	gSums = make([][]float64, len(nh.Feats))
	hSums = make([][]float64, len(nh.Feats))
	var mu sync.Mutex
	var firstErr error
	parallelFor(len(nh.Feats), b.cfg.Workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			g, h, err := b.decryptFeature(nh.Feats[j])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			gSums[j], hSums[j] = g, h
		}
	})
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return gSums, hSums, nil
}

func (b *activeParty) decryptFeature(fh FeatHist) (g, h []float64, err error) {
	if fh.Vec {
		return b.decryptVecFeature(fh)
	}
	if fh.Packed {
		g, err = unpackFeature(b.codec, b.dec, fh.PackedG, fh.NumBins, b.plan)
		if err != nil {
			return nil, nil, err
		}
		h, err = unpackFeature(b.codec, b.dec, fh.PackedH, fh.NumBins, b.plan)
		return g, h, err
	}
	g = make([]float64, fh.NumBins)
	h = make([]float64, fh.NumBins)
	for k := 0; k < fh.NumBins; k++ {
		g[k], err = b.decryptBin(fh.GBins[k], int(fh.GExp[k]))
		if err != nil {
			return nil, nil, err
		}
		h[k], err = b.decryptBin(fh.HBins[k], int(fh.HExp[k]))
		if err != nil {
			return nil, nil, err
		}
	}
	return g, h, nil
}

// decryptVecFeature recovers one feature's (g, h) bin sums from the
// vectorized representation: each entry is a per-(bin, pair-slot)
// accumulator whose lanes 2·slot and 2·slot+1 hold the ⟨g,h⟩ sums of
// VecCount instances (the other lanes belong to window-mates routed to
// other bins and are ignored). Per bin the slot sums combine exactly in
// the integer domain; only the final total is decoded to float.
func (b *activeParty) decryptVecFeature(fh FeatHist) (g, h []float64, err error) {
	if !b.vec {
		return nil, nil, fmt.Errorf("core: passive party sent a vectorized histogram to a scalar session")
	}
	if len(fh.VecSlot) != len(fh.VecBin) || len(fh.VecCount) != len(fh.VecBin) || len(fh.VecCts) != len(fh.VecBin) {
		return nil, nil, fmt.Errorf("core: vectorized feature histogram has mismatched columns (%d/%d/%d/%d)",
			len(fh.VecBin), len(fh.VecSlot), len(fh.VecCount), len(fh.VecCts))
	}
	gMan := make([]*big.Int, fh.NumBins)
	hMan := make([]*big.Int, fh.NumBins)
	for k := range fh.VecBin {
		bin, slot, count := int(fh.VecBin[k]), int(fh.VecSlot[k]), int(fh.VecCount[k])
		if bin < 0 || bin >= fh.NumBins {
			return nil, nil, fmt.Errorf("core: vectorized histogram bin %d out of [0,%d)", bin, fh.NumBins)
		}
		if slot < 0 || slot >= b.vplan.Pairs {
			return nil, nil, fmt.Errorf("core: vectorized histogram pair slot %d out of [0,%d)", slot, b.vplan.Pairs)
		}
		if count <= 0 || count > b.rows {
			return nil, nil, fmt.Errorf("core: vectorized histogram accumulator claims %d instances of %d", count, b.rows)
		}
		v, err := b.vdec.UnmarshalVec(fh.VecCts[k])
		if err != nil {
			return nil, nil, err
		}
		lanes, err := b.vdec.DecryptVec(v)
		if err != nil {
			return nil, nil, err
		}
		b.codec.Stats().AddDecryptions(1)
		gSum := b.vplan.LaneSumSigned(lanes[2*slot], int64(count))
		hSum := b.vplan.LaneSumSigned(lanes[2*slot+1], int64(count))
		if gMan[bin] == nil {
			gMan[bin], hMan[bin] = gSum, hSum
		} else {
			gMan[bin].Add(gMan[bin], gSum)
			hMan[bin].Add(hMan[bin], hSum)
		}
	}
	g = make([]float64, fh.NumBins)
	h = make([]float64, fh.NumBins)
	for bin := 0; bin < fh.NumBins; bin++ {
		if gMan[bin] == nil {
			continue // empty bin
		}
		g[bin] = fixedpoint.DecodeSigned(gMan[bin], b.vplan.Base, b.vplan.Exp)
		h[bin] = fixedpoint.DecodeSigned(hMan[bin], b.vplan.Base, b.vplan.Exp)
	}
	return g, h, nil
}

func (b *activeParty) decryptBin(payload []byte, exp int) (float64, error) {
	if len(payload) == 0 {
		return 0, nil // empty bin
	}
	ct, err := b.dec.Unmarshal(payload)
	if err != nil {
		return 0, err
	}
	return b.codec.Decrypt(b.dec, fixedpoint.EncNum{Exp: exp, Ct: ct})
}

// childStats computes exact child gradient totals from B's plaintext
// gradient arrays (B always knows node membership).
func (b *activeParty) childStats(insts []int32) (g, h float64) {
	for _, i := range insts {
		g += b.grads[i]
		h += b.hess[i]
	}
	return g, h
}

// placementBitmap computes the left/right bitmap of a Party-B split over
// a node's instances.
func (b *activeParty) placementBitmap(insts []int32, feature, bin int32) ([]byte, []int32, []int32) {
	bits := make([]bool, len(insts))
	var left, right []int32
	for k, i := range insts {
		if gbdt.GoesLeft(b.view, i, feature, bin) {
			bits[k] = true
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return packBitmap(bits), left, right
}

// allocID hands out the next tree-node ID.
func (b *activeParty) allocID() int32 {
	b.nextID++
	return b.nextID
}

// buildOwnHistograms builds Party B's plaintext histograms for a set of
// nodes.
func (b *activeParty) buildOwnHistograms(nodes []*bNode) []*gbdt.Histogram {
	lists := make([][]int32, len(nodes))
	for k, nd := range nodes {
		lists[k] = nd.insts
	}
	return gbdt.BuildHistograms(b.view, lists, b.grads, b.hess, b.cfg.Workers)
}
