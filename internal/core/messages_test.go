package core

import (
	"bytes"
	"testing"
)

// chanTransport is an in-memory Transport for message-layer tests.
type chanTransport struct {
	ch chan []byte
}

func (c chanTransport) Send(b []byte) error {
	cp := append([]byte(nil), b...)
	c.ch <- cp
	return nil
}

func (c chanTransport) Receive() ([]byte, error) { return <-c.ch, nil }

func loopbackLink() *link {
	t := chanTransport{ch: make(chan []byte, 16)}
	return &link{out: t, in: t}
}

// discardTransport swallows sends; Receive never returns.
type discardTransport struct{}

func (discardTransport) Send([]byte) error { return nil }
func (discardTransport) Receive() ([]byte, error) {
	select {}
}

// drivenLink feeds a party from a test channel while its own replies are
// discarded (the test plays Party B's sending side only).
func drivenLink() (*link, chanTransport) {
	in := chanTransport{ch: make(chan []byte, 16)}
	return &link{out: discardTransport{}, in: in}, in
}

func TestLinkRoundTripAllMessageTypes(t *testing.T) {
	l := loopbackLink()
	msgs := []any{
		MsgSetup{Scheme: "paillier", N: []byte{1, 2, 3}, Bits: 512, BaseExp: 8, ExpSpread: 4, PackBits: 64, Shift: 1000, ObfBase: []byte{7, 7}, ObfBits: 224},
		MsgReady{Party: 2, Features: 10, Rows: 100},
		MsgGradBatch{Tree: 1, Start: 5, G: [][]byte{{9}}, H: [][]byte{{8}}, GExp: []int16{8}, HExp: []int16{9}, Last: true},
		MsgHistograms{Tree: 1, Layer: 2, Nodes: []NodeHist{{
			Node: 3,
			Feats: []FeatHist{
				{NumBins: 2, GBins: [][]byte{{1}, nil}, HBins: [][]byte{{2}, {3}}, GExp: []int16{8, 8}, HExp: []int16{9, 9}},
				{NumBins: 3, Packed: true, PackedG: [][]byte{{4}}, PackedH: [][]byte{{5}}, Exp: 11},
			},
		}}},
		MsgDecisions{Tree: 1, Layer: 0, Tentative: true, Nodes: []NodeDecision{
			{Node: 1, Action: ActionSplitB, LeftID: 2, RightID: 3, Placement: []byte{0b101}, Count: 3},
			{Node: 4, Action: ActionLeaf},
			{Node: 5, Action: ActionSplitA, Owner: 1, Feature: 7, Bin: 2, AbortLeft: 8, AbortRight: 9},
		}},
		MsgDirty{Tree: 1, Layer: 3, Node: 7, OldLeft: 8, OldRight: 9, LeftID: 10, RightID: 11, Feature: 4, Bin: 1},
		MsgPlacement{Tree: 1, Layer: 3, Node: 7, Bits: []byte{0xFF}, Count: 8},
		MsgTreeDone{Tree: 1},
		MsgShutdown{},
	}
	for _, m := range msgs {
		if err := l.send(m); err != nil {
			t.Fatalf("send %T: %v", m, err)
		}
		got, err := l.recv()
		if err != nil {
			t.Fatalf("recv %T: %v", m, err)
		}
		switch want := m.(type) {
		case MsgSetup:
			g := got.(MsgSetup)
			if g.Scheme != want.Scheme || g.Bits != want.Bits || g.PackBits != want.PackBits || g.Shift != want.Shift || !bytes.Equal(g.ObfBase, want.ObfBase) || g.ObfBits != want.ObfBits {
				t.Errorf("MsgSetup round trip: %+v", g)
			}
		case MsgGradBatch:
			g := got.(MsgGradBatch)
			if g.Start != want.Start || !g.Last || len(g.G) != 1 || g.GExp[0] != 8 {
				t.Errorf("MsgGradBatch round trip: %+v", g)
			}
		case MsgHistograms:
			g := got.(MsgHistograms)
			if len(g.Nodes) != 1 || len(g.Nodes[0].Feats) != 2 {
				t.Fatalf("MsgHistograms round trip: %+v", g)
			}
			f0 := g.Nodes[0].Feats[0]
			if f0.NumBins != 2 || len(f0.GBins[1]) != 0 {
				t.Errorf("unpacked feature round trip: %+v", f0)
			}
			f1 := g.Nodes[0].Feats[1]
			if !f1.Packed || f1.Exp != 11 {
				t.Errorf("packed feature round trip: %+v", f1)
			}
		case MsgDecisions:
			g := got.(MsgDecisions)
			if !g.Tentative || len(g.Nodes) != 3 || g.Nodes[2].AbortLeft != 8 {
				t.Errorf("MsgDecisions round trip: %+v", g)
			}
		case MsgDirty:
			g := got.(MsgDirty)
			if g != want {
				t.Errorf("MsgDirty round trip: %+v", g)
			}
		case MsgShutdown:
			if _, ok := got.(MsgShutdown); !ok {
				t.Errorf("MsgShutdown round trip: %T", got)
			}
		}
	}
}

// TestLinkRoundTripMultiOutputFrames covers the append-only wire
// revisions carrying the objective negotiation (setup v4) and per-class
// gradient streams (grad batch v2). A zero Class must still select the
// historical frame so binary sessions stay byte-identical on the wire.
func TestLinkRoundTripMultiOutputFrames(t *testing.T) {
	l := loopbackLink()

	setup := MsgSetup{
		Scheme: SchemeMock, Bits: 512, BaseExp: 8, ExpSpread: 4,
		Objective: "multiclass:3", Outputs: 3,
	}
	if err := l.send(setup); err != nil {
		t.Fatal(err)
	}
	got, err := l.recv()
	if err != nil {
		t.Fatal(err)
	}
	gs := got.(MsgSetup)
	if gs.Objective != "multiclass:3" || gs.Outputs != 3 || gs.Scheme != SchemeMock || gs.Bits != 512 {
		t.Errorf("MsgSetup v4 round trip: %+v", gs)
	}

	for _, class := range []int{0, 2} {
		gb := MsgGradBatch{
			Tree: 6, Class: class, Start: 5, Last: true,
			G: [][]byte{{9}}, H: [][]byte{{8}}, GExp: []int16{8}, HExp: []int16{9},
		}
		if err := l.send(gb); err != nil {
			t.Fatal(err)
		}
		got, err := l.recv()
		if err != nil {
			t.Fatal(err)
		}
		gg := got.(MsgGradBatch)
		if gg.Class != class || gg.Tree != 6 || gg.Start != 5 || !gg.Last || gg.GExp[0] != 8 {
			t.Errorf("MsgGradBatch class %d round trip: %+v", class, gg)
		}
	}
}

func TestPassivePartyRejectsUnknownMessageOrder(t *testing.T) {
	_, parts := twoPartyData(t, 30, 2, 2, 1, true, 71)
	l, feed := drivenLink()
	p, err := newPassiveParty(0, parts[0], mustNormalize(t, quickConfig(SchemeMock)), l, &Stats{})
	if err != nil {
		t.Fatal(err)
	}
	// Gradients before setup must fail.
	if err := (&link{out: feed, in: feed}).send(MsgGradBatch{Tree: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.run(); err == nil {
		t.Error("gradients before setup accepted")
	}
}

func TestPassivePartyRejectsUnknownNodeDecision(t *testing.T) {
	_, parts := twoPartyData(t, 30, 2, 2, 1, true, 72)
	l, feed := drivenLink()
	cfg := mustNormalize(t, quickConfig(SchemeMock))
	p, err := newPassiveParty(0, parts[0], cfg, l, &Stats{})
	if err != nil {
		t.Fatal(err)
	}
	sender := &link{out: feed, in: feed}
	if err := sender.send(MsgSetup{Scheme: SchemeMock, Bits: 512, BaseExp: 8, ExpSpread: 4}); err != nil {
		t.Fatal(err)
	}
	if err := sender.send(MsgDecisions{Nodes: []NodeDecision{{Node: 999, Action: ActionLeaf}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.run(); err == nil {
		t.Error("decision for unknown node accepted")
	}
}

// mustNormalize returns a normalized copy of the config for direct engine
// construction in tests.
func mustNormalize(t *testing.T, cfg Config) Config {
	t.Helper()
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	return cfg
}
