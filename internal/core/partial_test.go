package core

import (
	"math"
	"testing"

	"vf2boost/internal/dataset"
)

// handFragment builds a two-tree B fragment (parties: passive 0, B = 1):
// tree 0 is entirely B's (root split with a +inf threshold, so every row
// lands on the left leaf), tree 1 hinges on a party-0 split.
func handFragment() *PartyModel {
	t0 := NewFedTree(1)
	t0.Nodes[1] = &FedNode{Owner: 1, Feature: 0, Threshold: math.MaxFloat64, Left: 2, Right: 3}
	t0.Nodes[2] = &FedNode{Owner: OwnerLeaf, Weight: 2}
	t0.Nodes[3] = &FedNode{Owner: OwnerLeaf, Weight: -5}
	t1 := NewFedTree(1)
	t1.Nodes[1] = &FedNode{Owner: 0, Left: 2, Right: 3}
	t1.Nodes[2] = &FedNode{Owner: OwnerLeaf, Weight: 3}
	t1.Nodes[3] = &FedNode{Owner: OwnerLeaf, Weight: -3}
	return &PartyModel{Party: 1, Trees: []*FedTree{t0, t1}}
}

// TestRoutePartialMarginsHandBuilt pins the whole-tree skip semantics on a
// fragment small enough to compute by hand.
func TestRoutePartialMarginsHandBuilt(t *testing.T) {
	frag := handFragment()
	bData, err := dataset.Generate(dataset.GenOptions{Rows: 8, Cols: 2, Density: 1, Dense: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rows := []int32{0, 3, 7}
	const lr, base = 0.5, 1.0

	// All parties present: tree 0 contributes +2, tree 1 (routes: all rows
	// left) contributes +3.
	allLeft := packBitmap([]bool{true, true, true})
	routes := map[RouteKey][]byte{{Party: 0, Tree: 1, Node: 1}: allLeft}
	full, skipped, err := RoutePartialMargins(frag, lr, base, bData, rows, routes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d with nobody missing, want 0", skipped)
	}
	for k, mg := range full {
		if want := base + lr*(2+3); math.Abs(mg-want) > 1e-12 {
			t.Errorf("full margin[%d] = %g, want %g", k, mg, want)
		}
	}

	// Party 0 missing: tree 1 is skipped whole — no routes needed at all —
	// and only tree 0's +2 survives.
	partial, skipped, err := RoutePartialMargins(frag, lr, base, bData, rows, map[RouteKey][]byte{}, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d with party 0 missing, want 1", skipped)
	}
	for k, mg := range partial {
		if want := base + lr*2; math.Abs(mg-want) > 1e-12 {
			t.Errorf("partial margin[%d] = %g, want %g", k, mg, want)
		}
	}

	// An empty missing set is exactly RouteMargins.
	plain, err := RouteMargins(frag, lr, base, bData, rows, routes)
	if err != nil {
		t.Fatal(err)
	}
	viaPartial, _, err := RoutePartialMargins(frag, lr, base, bData, rows, routes, map[int]bool{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range plain {
		if plain[k] != viaPartial[k] {
			t.Errorf("margin[%d]: RouteMargins %g != RoutePartialMargins %g", k, plain[k], viaPartial[k])
		}
	}

	// Present party, absent routes: still a hard error — degradation is an
	// explicit decision, never an accident of missing data.
	if _, _, err := RoutePartialMargins(frag, lr, base, bData, rows, map[RouteKey][]byte{}, nil); err == nil {
		t.Error("missing routing bits for a present party did not error")
	}
}

// TestRoutePartialMarginsTrainedModel checks, on a trained model, that the
// partial margins equal a full routing of the fragment with the skipped
// trees removed — whole-tree contributions, nothing else.
func TestRoutePartialMarginsTrainedModel(t *testing.T) {
	_, parts := twoPartyData(t, 120, 5, 4, 1, true, 86)
	cfg := quickConfig(SchemeMock)
	cfg.Trees = 5
	m, _ := trainFed(t, parts, cfg)
	b := m.Parties[1]
	rows := []int32{0, 5, 5, 119, 60}

	nodes, err := ScorePlacements(m.Parties[0], parts[0], rows)
	if err != nil {
		t.Fatal(err)
	}
	routes := make(map[RouteKey][]byte)
	for _, nb := range nodes {
		routes[RouteKey{Party: 0, Tree: nb.Tree, Node: nb.Node}] = nb.Bits
	}

	partial, skipped, err := RoutePartialMargins(b, m.LearningRate, m.BaseScore, parts[1], rows, routes, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}

	// Build the reference fragment: only trees with no party-0 split.
	kept := &PartyModel{Party: b.Party}
	for _, tree := range b.Trees {
		pure := true
		for _, nd := range tree.Nodes {
			if nd.Owner != OwnerLeaf && nd.Owner != b.Party {
				pure = false
				break
			}
		}
		if pure {
			kept.Trees = append(kept.Trees, tree)
		}
	}
	if got := len(b.Trees) - len(kept.Trees); got != skipped {
		t.Fatalf("skipped = %d, but %d trees contain party-0 splits", skipped, got)
	}
	if skipped == 0 {
		t.Skip("trained model has no party-0 splits; partial routing is vacuous here")
	}

	want, err := RouteMargins(kept, m.LearningRate, m.BaseScore, parts[1], rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range rows {
		if math.Abs(partial[k]-want[k]) > 1e-12 {
			t.Errorf("partial margin[%d] = %g, want %g (B-pure trees only)", k, partial[k], want[k])
		}
	}
}
