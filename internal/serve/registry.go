package serve

import (
	"fmt"
	"sort"
	"sync"

	"vf2boost/internal/core"
)

// Model is one published model version as held by one party: the party's
// own fragment plus the scalar scoring parameters (which only Party B
// uses; passive entries leave them zero).
type Model struct {
	Version      uint64
	Fragment     *core.PartyModel
	LearningRate float64
	BaseScore    float64
}

// Registry is a versioned model store with atomic hot-swap. Publish
// installs a new version and makes it current in one step; readers that
// pinned an older version keep resolving it until it is retired, so
// in-flight batches always finish on the version they started with even
// mid-reload. Each party runs its own registry — fragments never cross the
// boundary; parties coordinate only on version numbers.
type Registry struct {
	mu      sync.RWMutex
	models  map[uint64]Model
	current uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[uint64]Model)}
}

// Publish installs a model version and atomically makes it current.
// Version numbers are chosen by the operator (they must agree across
// parties) and must be fresh and non-zero.
func (r *Registry) Publish(m Model) error {
	if m.Version == 0 {
		return fmt.Errorf("serve: model version must be non-zero")
	}
	if m.Fragment == nil {
		return fmt.Errorf("serve: model version %d has no fragment", m.Version)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[m.Version]; ok {
		return fmt.Errorf("serve: model version %d already published", m.Version)
	}
	r.models[m.Version] = m
	r.current = m.Version
	return nil
}

// Current returns the live version, the one new batches pin.
func (r *Registry) Current() (Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[r.current]
	return m, ok
}

// CurrentVersion returns the live version number (0 when empty).
func (r *Registry) CurrentVersion() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.current
}

// Get resolves a pinned version, current or not.
func (r *Registry) Get(version uint64) (Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[version]
	return m, ok
}

// Versions lists the published versions in ascending order.
func (r *Registry) Versions() []uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]uint64, 0, len(r.models))
	for v := range r.models {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Retire drops a superseded version. The current version cannot be
// retired; swap in a successor first.
func (r *Registry) Retire(version uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if version == r.current {
		return fmt.Errorf("serve: cannot retire current version %d", version)
	}
	if _, ok := r.models[version]; !ok {
		return fmt.Errorf("serve: version %d not published", version)
	}
	delete(r.models, version)
	return nil
}
