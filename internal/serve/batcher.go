package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BatcherConfig bounds how long a request may wait for company — and,
// since PR 4, how many requests may wait at all.
type BatcherConfig struct {
	// MaxBatch flushes a batch as soon as this many requests are pending
	// (default 64).
	MaxBatch int
	// MaxWait flushes a non-empty batch this long after its first request
	// arrived, bounding tail latency under light load (default 2ms).
	MaxWait time.Duration
	// MaxQueue bounds the number of requests admitted but not yet
	// answered (pending + in-flight). Beyond it, Score sheds with
	// ErrOverloaded instead of queueing work that would only time out
	// (default 1024).
	MaxQueue int
}

func (c *BatcherConfig) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
}

// BatchResult is one federated round's outcome: margins for the batch,
// the model version the round was pinned to, and — in degraded mode —
// the passive parties that could not be consulted (Missing is empty for
// a full-fidelity round).
type BatchResult struct {
	Margins []float64
	Version uint64
	Missing []int
}

// RowResult is one request's scoring outcome.
type RowResult struct {
	Margin  float64
	Version uint64
	// Missing lists the passive parties absent from the round; non-empty
	// means Margin is a partial (B-plus-reachable-parties) score.
	Missing []int
}

// Partial reports whether the margin omitted any passive party.
func (r RowResult) Partial() bool { return len(r.Missing) > 0 }

// BatchScorer scores one micro-batch of shard rows in a single federated
// round. The context carries the batch's deadline; implementations must
// return (not hang) once it expires.
type BatchScorer func(ctx context.Context, rows []int32) (BatchResult, error)

// Batcher coalesces single-instance scoring requests into micro-batches:
// one WAN round-trip serves up to MaxBatch requests. A batch flushes when
// it is full, when the oldest request has waited MaxWait, or when the
// batcher shuts down (drain, not drop). Admission is bounded by MaxQueue.
type Batcher struct {
	cfg   BatcherConfig
	score BatchScorer

	queued atomic.Int64 // admitted but unanswered requests

	mu     sync.Mutex
	buf    []pendingScore
	timer  *time.Timer
	gen    uint64 // flush generation; invalidates stale deadline timers
	closed bool
	wg     sync.WaitGroup // in-flight flushes
}

type pendingScore struct {
	row      int32
	deadline time.Time // zero = unbounded
	ch       chan scoreResult
}

type scoreResult struct {
	res RowResult
	err error
}

// NewBatcher creates a batcher over a batch scorer.
func NewBatcher(cfg BatcherConfig, score BatchScorer) *Batcher {
	cfg.defaults()
	return &Batcher{cfg: cfg, score: score}
}

// Queued returns the number of admitted but unanswered requests — the
// queue-depth gauge behind Retry-After on shed responses.
func (b *Batcher) Queued() int64 { return b.queued.Load() }

// MaxQueue returns the admission bound.
func (b *Batcher) MaxQueue() int { return b.cfg.MaxQueue }

// Score enqueues one row and blocks until its batch is scored, the context
// is done, or the batcher closes. It returns the margin and the model
// version the batch was pinned to.
func (b *Batcher) Score(ctx context.Context, row int32) (float64, uint64, error) {
	r, err := b.ScoreRow(ctx, row)
	return r.Margin, r.Version, err
}

// ScoreRow is Score with the full per-row outcome (including the
// missing-party list of a degraded round). The request's ctx deadline
// propagates into the federated round.
func (b *Batcher) ScoreRow(ctx context.Context, row int32) (RowResult, error) {
	ch := make(chan scoreResult, 1)
	p := pendingScore{row: row, ch: ch}
	if dl, ok := ctx.Deadline(); ok {
		p.deadline = dl
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return RowResult{}, ErrClosed
	}
	if b.queued.Load() >= int64(b.cfg.MaxQueue) {
		b.mu.Unlock()
		return RowResult{}, ErrOverloaded
	}
	b.queued.Add(1)
	b.buf = append(b.buf, p)
	if len(b.buf) >= b.cfg.MaxBatch {
		batch := b.take()
		b.wg.Add(1)
		b.mu.Unlock()
		go b.run(batch)
	} else {
		if len(b.buf) == 1 {
			gen := b.gen
			b.timer = time.AfterFunc(b.cfg.MaxWait, func() { b.deadline(gen) })
		}
		b.mu.Unlock()
	}
	select {
	case r := <-ch:
		return r.res, r.err
	case <-ctx.Done():
		// The batch may still score this row; the waiter just stops
		// listening (ch is buffered so the flush never blocks on it).
		return RowResult{}, ctx.Err()
	}
}

// take detaches the pending batch. Callers hold b.mu.
func (b *Batcher) take() []pendingScore {
	batch := b.buf
	b.buf = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// deadline fires when the oldest pending request has waited MaxWait.
func (b *Batcher) deadline(gen uint64) {
	b.mu.Lock()
	if b.closed || gen != b.gen || len(b.buf) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.take()
	b.wg.Add(1)
	b.mu.Unlock()
	b.run(batch)
}

// run scores one detached batch and fans the results back out. The round
// runs under the most patient member's deadline: impatient waiters give
// up on their own ctx without dragging the whole batch down with them.
func (b *Batcher) run(batch []pendingScore) {
	defer b.wg.Done()
	defer b.queued.Add(-int64(len(batch)))
	rows := make([]int32, len(batch))
	var latest time.Time
	bounded := true
	for i, p := range batch {
		rows[i] = p.row
		if p.deadline.IsZero() {
			bounded = false
		} else if p.deadline.After(latest) {
			latest = p.deadline
		}
	}
	ctx := context.Background()
	if bounded {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, latest)
		defer cancel()
	}
	res, err := b.score(ctx, rows)
	if err == nil && len(res.Margins) != len(batch) {
		err = fmt.Errorf("serve: scorer returned %d margins for %d rows", len(res.Margins), len(batch))
	}
	for i, p := range batch {
		if err != nil {
			p.ch <- scoreResult{err: err}
		} else {
			p.ch <- scoreResult{res: RowResult{
				Margin:  res.Margins[i],
				Version: res.Version,
				Missing: res.Missing,
			}}
		}
	}
}

// Close drains: the pending batch (if any) is flushed, in-flight flushes
// complete, and subsequent Score calls fail with ErrClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	batch := b.take()
	if len(batch) > 0 {
		b.wg.Add(1)
		b.mu.Unlock()
		b.run(batch)
	} else {
		b.mu.Unlock()
	}
	b.wg.Wait()
}
