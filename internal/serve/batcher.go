package serve

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// BatcherConfig bounds how long a request may wait for company.
type BatcherConfig struct {
	// MaxBatch flushes a batch as soon as this many requests are pending
	// (default 64).
	MaxBatch int
	// MaxWait flushes a non-empty batch this long after its first request
	// arrived, bounding tail latency under light load (default 2ms).
	MaxWait time.Duration
}

func (c *BatcherConfig) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
}

// BatchScorer scores one micro-batch of shard rows in a single federated
// round and reports the model version the round was pinned to.
type BatchScorer func(rows []int32) ([]float64, uint64, error)

// Batcher coalesces single-instance scoring requests into micro-batches:
// one WAN round-trip serves up to MaxBatch requests. A batch flushes when
// it is full, when the oldest request has waited MaxWait, or when the
// batcher shuts down (drain, not drop).
type Batcher struct {
	cfg   BatcherConfig
	score BatchScorer

	mu     sync.Mutex
	buf    []pendingScore
	timer  *time.Timer
	gen    uint64 // flush generation; invalidates stale deadline timers
	closed bool
	wg     sync.WaitGroup // in-flight flushes
}

type pendingScore struct {
	row int32
	ch  chan scoreResult
}

type scoreResult struct {
	margin  float64
	version uint64
	err     error
}

// NewBatcher creates a batcher over a batch scorer.
func NewBatcher(cfg BatcherConfig, score BatchScorer) *Batcher {
	cfg.defaults()
	return &Batcher{cfg: cfg, score: score}
}

// Score enqueues one row and blocks until its batch is scored, the context
// is done, or the batcher closes. It returns the margin and the model
// version the batch was pinned to.
func (b *Batcher) Score(ctx context.Context, row int32) (float64, uint64, error) {
	ch := make(chan scoreResult, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, 0, ErrClosed
	}
	b.buf = append(b.buf, pendingScore{row: row, ch: ch})
	if len(b.buf) >= b.cfg.MaxBatch {
		batch := b.take()
		b.wg.Add(1)
		b.mu.Unlock()
		go b.run(batch)
	} else {
		if len(b.buf) == 1 {
			gen := b.gen
			b.timer = time.AfterFunc(b.cfg.MaxWait, func() { b.deadline(gen) })
		}
		b.mu.Unlock()
	}
	select {
	case r := <-ch:
		return r.margin, r.version, r.err
	case <-ctx.Done():
		// The batch may still score this row; the waiter just stops
		// listening (ch is buffered so the flush never blocks on it).
		return 0, 0, ctx.Err()
	}
}

// take detaches the pending batch. Callers hold b.mu.
func (b *Batcher) take() []pendingScore {
	batch := b.buf
	b.buf = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// deadline fires when the oldest pending request has waited MaxWait.
func (b *Batcher) deadline(gen uint64) {
	b.mu.Lock()
	if b.closed || gen != b.gen || len(b.buf) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.take()
	b.wg.Add(1)
	b.mu.Unlock()
	b.run(batch)
}

// run scores one detached batch and fans the results back out.
func (b *Batcher) run(batch []pendingScore) {
	defer b.wg.Done()
	rows := make([]int32, len(batch))
	for i, p := range batch {
		rows[i] = p.row
	}
	margins, version, err := b.score(rows)
	if err == nil && len(margins) != len(batch) {
		err = fmt.Errorf("serve: scorer returned %d margins for %d rows", len(margins), len(batch))
	}
	for i, p := range batch {
		if err != nil {
			p.ch <- scoreResult{err: err}
		} else {
			p.ch <- scoreResult{margin: margins[i], version: version}
		}
	}
}

// Close drains: the pending batch (if any) is flushed, in-flight flushes
// complete, and subsequent Score calls fail with ErrClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	batch := b.take()
	if len(batch) > 0 {
		b.wg.Add(1)
		b.mu.Unlock()
		b.run(batch)
	} else {
		b.mu.Unlock()
	}
	b.wg.Wait()
}
