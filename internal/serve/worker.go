package serve

import (
	"fmt"
	"log"
	"sync/atomic"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/trace"
)

// PassiveWorker is a passive party's scoring sidecar: it holds the party's
// feature shard of the aligned scoring universe and its fragment registry,
// and answers an unbounded stream of scoring rounds on one session. Errors
// that concern a single round (unknown model version, out-of-range row)
// are answered as structured MsgScoreResponse errors and keep the session
// alive; only transport loss or an explicit close ends Run.
type PassiveWorker struct {
	// Party is this worker's passive party index (the same index used for
	// training topics and fragment ownership).
	Party int
	// Data is the party's feature shard, aligned with the other parties.
	Data *dataset.Dataset
	// Registry resolves pinned model versions to local fragments.
	Registry *Registry
	// Trace, when set, records one span per scoring round on lane
	// "A<i>:Score".
	Trace *trace.Recorder
	// Logger, when set, receives session diagnostics (e.g. a close ack
	// the peer never saw); nil falls back to the standard logger.
	Logger *log.Logger

	rounds atomic.Int64
	errors atomic.Int64
}

// logf routes a diagnostic to the worker's logger.
func (w *PassiveWorker) logf(format string, args ...any) {
	if w.Logger != nil {
		w.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// NewPassiveWorker wires a sidecar for one passive party.
func NewPassiveWorker(party int, data *dataset.Dataset, reg *Registry) *PassiveWorker {
	return &PassiveWorker{Party: party, Data: data, Registry: reg}
}

// Rounds returns the number of scoring rounds answered so far.
func (w *PassiveWorker) Rounds() int64 { return w.rounds.Load() }

// RoundErrors returns the number of rounds answered with a structured
// error.
func (w *PassiveWorker) RoundErrors() int64 { return w.errors.Load() }

// Run serves one scoring session over the transport: open handshake, then
// scoring rounds until the peer closes the session (clean, returns nil)
// or the transport drops (also clean — sidecars outlive flaky peers and
// are simply re-dialed). A protocol violation returns an error.
func (w *PassiveWorker) Run(tr core.Transport) error {
	l := core.NewLink(tr)
	for {
		msg, err := l.Recv()
		if err != nil {
			// Transport closed underneath us: the normal end of a session
			// whose peer went away.
			return nil
		}
		switch m := msg.(type) {
		case core.MsgScoreOpen:
			ack := core.MsgScoreOpenAck{
				Proto:    core.ScoreProtoVersion,
				Party:    w.Party,
				Rows:     w.Data.Rows(),
				Versions: w.Registry.Versions(),
			}
			if m.Proto != core.ScoreProtoVersion {
				ack.Error = fmt.Sprintf("serve: protocol version %d not supported (worker speaks %d)", m.Proto, core.ScoreProtoVersion)
			}
			if err := l.Send(ack); err != nil {
				return err
			}
		case core.MsgScoreRequest:
			if err := l.Send(w.answer(m)); err != nil {
				return err
			}
		case core.MsgScoreClose:
			if err := l.Send(core.MsgScoreCloseAck{}); err != nil {
				// The session is over either way, but a lost ack leaves
				// the peer seeing a half-closed session — make that
				// diagnosable instead of silent.
				w.logf("serve: worker %d: close ack not delivered: %v", w.Party, err)
			}
			return nil
		default:
			return fmt.Errorf("serve: worker got unexpected %T", msg)
		}
	}
}

// answer computes one round's routing bitmaps against the pinned version.
func (w *PassiveWorker) answer(m core.MsgScoreRequest) core.MsgScoreResponse {
	done := w.Trace.Span(trace.Lane(fmt.Sprintf("A%d:Score", w.Party)),
		fmt.Sprintf("round %d n=%d v=%d", m.Round, len(m.Rows), m.Version))
	defer done()
	w.rounds.Add(1)
	resp := core.MsgScoreResponse{Round: m.Round, Version: m.Version, Party: w.Party}
	mv, ok := w.Registry.Get(m.Version)
	if !ok {
		w.errors.Add(1)
		resp.Error = fmt.Sprintf("serve: model version %d not published at party %d", m.Version, w.Party)
		return resp
	}
	nodes, err := core.ScorePlacements(mv.Fragment, w.Data, m.Rows)
	if err != nil {
		w.errors.Add(1)
		resp.Error = err.Error()
		return resp
	}
	resp.Nodes = nodes
	return resp
}
