package serve

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/trace"
)

// PassiveWorker is a passive party's scoring sidecar: it holds the party's
// feature shard of the aligned scoring universe and its fragment registry,
// and answers an unbounded stream of scoring rounds on one session. Errors
// that concern a single round (unknown model version, out-of-range row)
// are answered as structured MsgScoreResponse errors and keep the session
// alive; only transport loss or an explicit close ends Run.
type PassiveWorker struct {
	// Party is this worker's passive party index (the same index used for
	// training topics and fragment ownership).
	Party int
	// Data is the party's feature shard, aligned with the other parties.
	Data *dataset.Dataset
	// Registry resolves pinned model versions to local fragments.
	Registry *Registry
	// Trace, when set, records one span per scoring round on lane
	// "A<i>:Score".
	Trace *trace.Recorder
	// Logger, when set, receives session diagnostics (e.g. a close ack
	// the peer never saw); nil falls back to the standard logger.
	Logger *log.Logger
	// RedialSeed seeds RunLoop's backoff jitter. Restarted sidecar fleets
	// share the same backoff schedule; distinct seeds spread their
	// re-dials so they don't thunder-herd Party B. Zero derives a seed
	// from the party index.
	RedialSeed int64

	rounds atomic.Int64
	errors atomic.Int64
}

// logf routes a diagnostic to the worker's logger.
func (w *PassiveWorker) logf(format string, args ...any) {
	if w.Logger != nil {
		w.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// NewPassiveWorker wires a sidecar for one passive party.
func NewPassiveWorker(party int, data *dataset.Dataset, reg *Registry) *PassiveWorker {
	return &PassiveWorker{Party: party, Data: data, Registry: reg}
}

// Rounds returns the number of scoring rounds answered so far.
func (w *PassiveWorker) Rounds() int64 { return w.rounds.Load() }

// RoundErrors returns the number of rounds answered with a structured
// error.
func (w *PassiveWorker) RoundErrors() int64 { return w.errors.Load() }

// Run serves one scoring session over the transport: open handshake, then
// scoring rounds until the peer closes the session (clean, returns nil)
// or the transport drops (also clean — sidecars outlive flaky peers and
// are simply re-dialed). A protocol violation returns an error.
func (w *PassiveWorker) Run(tr core.Transport) error {
	l := core.NewLink(tr)
	for {
		msg, err := l.Recv()
		if err != nil {
			// Transport closed underneath us: the normal end of a session
			// whose peer went away.
			return nil
		}
		switch m := msg.(type) {
		case core.MsgScoreOpen:
			ack := core.MsgScoreOpenAck{
				Proto:    core.ScoreProtoVersion,
				Party:    w.Party,
				Rows:     w.Data.Rows(),
				Versions: w.Registry.Versions(),
			}
			if m.Proto != core.ScoreProtoVersion {
				ack.Error = fmt.Sprintf("serve: protocol version %d not supported (worker speaks %d)", m.Proto, core.ScoreProtoVersion)
			}
			if err := l.Send(ack); err != nil {
				return err
			}
		case core.MsgScoreRequest:
			if err := l.Send(w.answer(m)); err != nil {
				return err
			}
		case core.MsgScoreClose:
			if err := l.Send(core.MsgScoreCloseAck{}); err != nil {
				// The session is over either way, but a lost ack leaves
				// the peer seeing a half-closed session — make that
				// diagnosable instead of silent.
				w.logf("serve: worker %d: close ack not delivered: %v", w.Party, err)
			}
			return nil
		default:
			return fmt.Errorf("serve: worker got unexpected %T", msg)
		}
	}
}

// RunLoop serves scoring sessions until stopped: every time a session
// ends cleanly (peer closed, transport dropped) it re-dials and serves
// the next one, so a sidecar survives Party B restarts. Failed dials back
// off exponentially between wait and maxWait with seeded jitter (see
// RedialSeed); the backoff resets only after a session that answered at
// least one round, so a peer that accepts dials but never gets a round
// through cannot hold the sidecar at the floor. maxRedials consecutive
// failures (or a protocol error from a session) end the loop with an
// error. Zero values pick defaults (250ms, 5s, 20).
func (w *PassiveWorker) RunLoop(dial func() (core.Transport, error), wait, maxWait time.Duration, maxRedials int) error {
	if wait <= 0 {
		wait = 250 * time.Millisecond
	}
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	if maxRedials <= 0 {
		maxRedials = 20
	}
	seed := w.RedialSeed
	if seed == 0 {
		seed = int64(w.Party) + 1
	}
	rng := rand.New(rand.NewSource(seed))
	// jitter spreads a sleep to 75–125% of its nominal value.
	jitter := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
	}
	escalate := func(backoff time.Duration) time.Duration {
		backoff *= 2
		if backoff > maxWait {
			backoff = maxWait
		}
		return backoff
	}
	backoff := wait
	fails := 0
	for {
		tr, err := dial()
		if err != nil {
			fails++
			if fails >= maxRedials {
				return fmt.Errorf("serve: worker %d: redial failed %d times: %w", w.Party, fails, err)
			}
			time.Sleep(jitter(backoff))
			backoff = escalate(backoff)
			continue
		}
		fails = 0
		w.logf("serve: worker %d: session open", w.Party)
		before := w.rounds.Load()
		err = w.Run(tr)
		// Sever the finished session's transport before re-dialing: a
		// lingering gateway consumer would compete with the next session's
		// and steal its frames.
		switch c := tr.(type) {
		case interface{ Close() error }:
			c.Close()
		case interface{ Close() }:
			c.Close()
		}
		if err != nil {
			return err
		}
		if w.rounds.Load() > before {
			// A healthy session: start the next dial cycle at the floor.
			backoff = wait
		} else {
			// The session never carried a round — the peer is flapping.
			// Keep (and escalate) the backoff so a restarted fleet does
			// not hammer a struggling Party B, and sleep before re-dialing.
			time.Sleep(jitter(backoff))
			backoff = escalate(backoff)
		}
		w.logf("serve: worker %d: session ended, re-dialing", w.Party)
	}
}

// answer computes one round's routing bitmaps against the pinned version.
func (w *PassiveWorker) answer(m core.MsgScoreRequest) core.MsgScoreResponse {
	done := w.Trace.Span(trace.Lane(fmt.Sprintf("A%d:Score", w.Party)),
		fmt.Sprintf("round %d n=%d v=%d", m.Round, len(m.Rows), m.Version))
	defer done()
	w.rounds.Add(1)
	resp := core.MsgScoreResponse{Round: m.Round, Version: m.Version, Party: w.Party}
	mv, ok := w.Registry.Get(m.Version)
	if !ok {
		w.errors.Add(1)
		resp.Error = fmt.Sprintf("serve: model version %d not published at party %d", m.Version, w.Party)
		return resp
	}
	nodes, err := core.ScorePlacements(mv.Fragment, w.Data, m.Rows)
	if err != nil {
		w.errors.Add(1)
		resp.Error = err.Error()
		return resp
	}
	resp.Nodes = nodes
	return resp
}
