package serve

import (
	"testing"

	"vf2boost/internal/core"
)

func frag(party int) *core.PartyModel {
	return &core.PartyModel{Party: party, Trees: []*core.FedTree{core.NewFedTree(1)}}
}

func TestRegistryPublishAndPin(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Current(); ok {
		t.Fatal("empty registry reported a current model")
	}
	if err := r.Publish(Model{Version: 0, Fragment: frag(0)}); err == nil {
		t.Error("version 0 accepted")
	}
	if err := r.Publish(Model{Version: 1}); err == nil {
		t.Error("nil fragment accepted")
	}
	if err := r.Publish(Model{Version: 1, Fragment: frag(0), LearningRate: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(Model{Version: 1, Fragment: frag(0)}); err == nil {
		t.Error("duplicate version accepted")
	}
	cur, ok := r.Current()
	if !ok || cur.Version != 1 {
		t.Fatalf("current = %v, %v", cur.Version, ok)
	}

	// Hot swap: v2 becomes current, v1 stays resolvable (pinning).
	if err := r.Publish(Model{Version: 2, Fragment: frag(0)}); err != nil {
		t.Fatal(err)
	}
	if v := r.CurrentVersion(); v != 2 {
		t.Fatalf("current version = %d after swap", v)
	}
	if _, ok := r.Get(1); !ok {
		t.Error("pinned version 1 no longer resolvable after swap")
	}
	if got := r.Versions(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Versions() = %v", got)
	}

	// Retire: old versions yes, current no.
	if err := r.Retire(2); err == nil {
		t.Error("retiring the current version was allowed")
	}
	if err := r.Retire(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(1); ok {
		t.Error("retired version still resolvable")
	}
	if err := r.Retire(1); err == nil {
		t.Error("retiring an unknown version was allowed")
	}
}
