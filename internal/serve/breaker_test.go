package serve

import (
	"testing"
	"time"
)

// TestBreakerConsecutiveTimeoutsTrip: a run of timed-out rounds opens the
// circuit regardless of the rate window.
func TestBreakerConsecutiveTimeoutsTrip(t *testing.T) {
	b := NewBreaker(BreakerConfig{ConsecTimeouts: 3, Cooldown: time.Hour})
	for i := 0; i < 2; i++ {
		b.Failure(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 timeouts = %v, want closed", b.State())
	}
	b.Failure(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive timeouts = %v, want open", b.State())
	}
	if b.Opens() != 1 {
		t.Errorf("Opens = %d, want 1", b.Opens())
	}
	if ok, _ := b.Allow(); ok {
		t.Error("open breaker admitted a round before its cooldown")
	}
	if b.CooldownRemaining() <= 0 {
		t.Error("open breaker reports no cooldown remaining")
	}
}

// TestBreakerSuccessResetsTimeoutRun: a success between timeouts breaks
// the consecutive count.
func TestBreakerSuccessResetsTimeoutRun(t *testing.T) {
	b := NewBreaker(BreakerConfig{ConsecTimeouts: 2, Window: 64, MinSamples: 64})
	b.Failure(true)
	b.Success()
	b.Failure(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after interleaved success, want closed", b.State())
	}
	b.Failure(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after 2 consecutive timeouts, want open", b.State())
	}
}

// TestBreakerFailureRateTrip: the rolling-window failure rate trips only
// once MinSamples outcomes exist.
func TestBreakerFailureRateTrip(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, FailureRate: 0.5, MinSamples: 4, ConsecTimeouts: 100, Cooldown: time.Hour})
	// One failure out of one sample is a 100% rate, but below MinSamples.
	b.Failure(false)
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped below MinSamples")
	}
	b.Success()
	b.Success()
	// 4th sample: 2 failures / 4 samples = exactly the 0.5 threshold.
	b.Failure(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v at 50%% failure rate over MinSamples, want open", b.State())
	}
}

// TestBreakerProbeRecovery: after the cooldown exactly one probe is
// admitted; its success closes the circuit with a clean window.
func TestBreakerProbeRecovery(t *testing.T) {
	b := NewBreaker(BreakerConfig{ConsecTimeouts: 1, Cooldown: 20 * time.Millisecond})
	b.Failure(true)
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("round admitted during cooldown")
	}
	time.Sleep(30 * time.Millisecond)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after cooldown = (%v, %v), want probe admission", ok, probe)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	// No second round while the probe is out.
	if ok, _ := b.Allow(); ok {
		t.Fatal("second round admitted while probe in flight")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	// The window was cleared: one failure must not trip via stale history.
	b.Failure(false)
	if b.State() != BreakerClosed {
		t.Error("stale window outcomes survived the probe recovery")
	}
}

// TestBreakerProbeFailureReopens: a failed probe re-opens the circuit for
// another cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{ConsecTimeouts: 1, Cooldown: 20 * time.Millisecond})
	b.Failure(true)
	time.Sleep(30 * time.Millisecond)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("no probe admitted after cooldown")
	}
	b.Failure(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Opens() != 2 {
		t.Errorf("Opens = %d, want 2 (initial trip + failed probe)", b.Opens())
	}
	if ok, _ := b.Allow(); ok {
		t.Error("round admitted right after failed probe")
	}
}

// TestBreakerStaleOutcomesIgnoredWhileOpen: outcomes of rounds admitted
// before the trip must not disturb the open state.
func TestBreakerStaleOutcomesIgnoredWhileOpen(t *testing.T) {
	b := NewBreaker(BreakerConfig{ConsecTimeouts: 1, Cooldown: time.Hour})
	b.Failure(true)
	b.Success() // stale success from a round that raced the trip
	if b.State() != BreakerOpen {
		t.Fatalf("stale success flipped state to %v", b.State())
	}
	b.Failure(false)
	if b.Opens() != 1 {
		t.Errorf("stale failure re-tripped: Opens = %d, want 1", b.Opens())
	}
}
