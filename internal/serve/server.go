package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/mq"
	"vf2boost/internal/trace"
	"vf2boost/internal/wire"
)

// ServerConfig wires a Party B scoring server.
type ServerConfig struct {
	// Data is B's feature shard of the aligned scoring universe.
	Data *dataset.Dataset
	// Registry resolves model versions; Current() is pinned per batch.
	Registry *Registry
	// Workers holds one open transport per passive party, in party-index
	// order, each with a PassiveWorker serving the other end.
	Workers []core.Transport
	// Dialers, when set, lets the server re-open a worker session after a
	// transport loss or a breaker probe: Dialers[i] re-dials party i.
	// Without one, a lost link stays lost for the process lifetime.
	Dialers []func() (core.Transport, error)
	// Batch bounds the micro-batcher.
	Batch BatcherConfig
	// Deadline is the scoring budget applied to requests that carry none
	// (default 2s). HTTP clients override it per request with the
	// X-Score-Deadline header, clamped to MaxDeadline.
	Deadline time.Duration
	// MaxDeadline caps client-requested budgets (default 30s).
	MaxDeadline time.Duration
	// Policy picks what happens when a passive party cannot join a round:
	// FailClosed (default) refuses, ServePartial serves partial margins.
	Policy DegradedPolicy
	// MaxInflight bounds federated rounds contending for the round slot
	// concurrently; excess rounds wait for a slot within their deadline
	// (default 4). Load shedding happens at the bounded batcher queue
	// (Batch.MaxQueue), not here.
	MaxInflight int
	// Breaker tunes the per-worker-link circuit breakers.
	Breaker BreakerConfig
	// RetryBudget caps in-round session re-open attempts: a token bucket
	// of this many tokens refilling one per second (default 8), so a
	// flapping link cannot turn every round into a redial storm.
	RetryBudget int
	// Session is an opaque session label sent in the open handshake.
	Session string
	// Codec selects the wire encoding for the scoring session: "binary"
	// (default) or "gob". The server initiates, so workers adopt whatever
	// it speaks — no worker-side setting exists.
	Codec string
	// Broker, when the broker is co-resident (in-process deployments),
	// lets /metricsz surface per-topic queue depths. Optional.
	Broker *mq.Broker
	// Trace, when set, records per-round spans on lanes "B:ScoreBatch",
	// "B:ScoreWAN" and "B:ScoreRoute". Optional.
	Trace *trace.Recorder
}

func (c *ServerConfig) defaults() {
	c.Batch.defaults()
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 8
	}
}

// recvMsg is one pumped link delivery.
type recvMsg struct {
	msg any
	err error
}

// workerState is the server's view of one passive party: the current
// link (with its receive pump), liveness, and the circuit breaker. Link
// plumbing is only replaced while holding the server's round slot;
// alive and the breaker are read concurrently by /readyz.
type workerState struct {
	party   int
	breaker *Breaker
	alive   atomic.Bool

	tr     core.Transport
	link   *core.Link
	recvCh chan recvMsg
	done   chan struct{}
}

// attach installs a fresh transport/link pair and starts its pump.
func (ws *workerState) attach(tr core.Transport, l *core.Link) {
	ws.tr = tr
	ws.link = l
	ws.recvCh = make(chan recvMsg, 16)
	ws.done = make(chan struct{})
	go pumpLink(l, ws.recvCh, ws.done)
}

// pumpLink moves link deliveries onto a channel so round code can select
// against a deadline; a blocking Recv no longer pins the round. The done
// channel releases the pump when the link is abandoned mid-delivery.
func pumpLink(l *core.Link, ch chan<- recvMsg, done <-chan struct{}) {
	for {
		m, err := l.Recv()
		select {
		case ch <- recvMsg{msg: m, err: err}:
		case <-done:
			return
		}
		if err != nil {
			return
		}
	}
}

// recv waits for the next pumped delivery or the round deadline.
func (ws *workerState) recv(ctx context.Context) (any, error) {
	select {
	case rm := <-ws.recvCh:
		return rm.msg, rm.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// markDead severs the worker's current link: pump released, transport
// closed (which also unblocks the sidecar into its redial loop). Called
// only under the round slot; idempotent.
func (ws *workerState) markDead() {
	ws.alive.Store(false)
	select {
	case <-ws.done:
	default:
		close(ws.done)
	}
	closeTransport(ws.tr)
}

// closeTransport severs a transport if it knows how to be severed.
func closeTransport(tr core.Transport) {
	switch c := tr.(type) {
	case interface{ Close() error }:
		c.Close()
	case interface{ Close() }:
		c.Close()
	}
}

// workerError is a structured per-round refusal from a healthy worker
// (unknown model version, out-of-range row) — the link is fine, the
// round is not.
type workerError struct {
	party int
	round uint64
	msg   string
}

func (e *workerError) Error() string {
	return fmt.Sprintf("serve: worker %d failed round %d: %s", e.party, e.round, e.msg)
}

// tokenBucket is the retry budget: take() spends one token, tokens
// refill at one per second up to the cap.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	last   time.Time
}

func newTokenBucket(cap int) *tokenBucket {
	return &tokenBucket{tokens: float64(cap), cap: float64(cap), last: time.Now()}
}

func (tb *tokenBucket) take() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	tb.tokens = math.Min(tb.cap, tb.tokens+now.Sub(tb.last).Seconds())
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// Server drives online federated scoring from Party B: it pins a model
// version per micro-batch, issues one scoring round over every worker
// link, routes instances locally, and serves the result over HTTP. One
// round is in flight per session at a time (the links are FIFO); the
// batcher overlaps accumulation of the next batch with the in-flight WAN
// round-trip. Every round runs under a deadline, admission is bounded,
// and each worker link sits behind a circuit breaker with optional
// degraded (partial-margin) serving when a party is unreachable.
type Server struct {
	cfg     ServerConfig
	codec   wire.Codec
	workers []*workerState
	batcher *Batcher
	met     *Metrics
	retry   *tokenBucket

	inflight chan struct{} // round admission semaphore
	roundCh  chan struct{} // capacity-1 round slot; ctx-aware mutex
	round    atomic.Uint64
	opened   atomic.Bool
	closing  atomic.Bool
}

// NewServer validates the wiring; Open performs the session handshake.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Data == nil {
		return nil, fmt.Errorf("serve: server needs Party B's feature shard")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: server needs a model registry")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("serve: server needs at least one passive worker transport")
	}
	codec, err := wire.ByName(cfg.Codec)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	cfg.defaults()
	s := &Server{
		cfg:      cfg,
		codec:    codec,
		met:      NewMetrics(),
		retry:    newTokenBucket(cfg.RetryBudget),
		inflight: make(chan struct{}, cfg.MaxInflight),
		roundCh:  make(chan struct{}, 1),
	}
	for i, tr := range cfg.Workers {
		ws := &workerState{party: i, breaker: NewBreaker(cfg.Breaker)}
		ws.attach(tr, core.NewLinkCodec(tr, codec))
		s.workers = append(s.workers, ws)
	}
	s.batcher = NewBatcher(cfg.Batch, s.ScoreBatch)
	return s, nil
}

// Metrics exposes the server's instrumentation.
func (s *Server) Metrics() *Metrics { return s.met }

// Breaker returns party i's circuit breaker (nil if out of range) —
// exported for tests and operational introspection.
func (s *Server) Breaker(i int) *Breaker {
	if i < 0 || i >= len(s.workers) {
		return nil
	}
	return s.workers[i].breaker
}

// Open performs the session handshake with every worker: protocol version
// agreement and the instance-alignment check (every party must hold a
// shard of the same universe).
func (s *Server) Open() error {
	for i, ws := range s.workers {
		if err := ws.link.Send(core.MsgScoreOpen{Proto: core.ScoreProtoVersion, Session: s.cfg.Session}); err != nil {
			return fmt.Errorf("serve: opening session with worker %d: %w", i, err)
		}
	}
	for i, ws := range s.workers {
		rm := <-ws.recvCh
		if rm.err != nil {
			return fmt.Errorf("serve: worker %d open ack: %w", i, rm.err)
		}
		if err := s.checkOpenAck(i, rm.msg); err != nil {
			return err
		}
		ws.alive.Store(true)
	}
	s.opened.Store(true)
	return nil
}

// checkOpenAck validates one worker's session handshake answer.
func (s *Server) checkOpenAck(i int, msg any) error {
	ack, ok := msg.(core.MsgScoreOpenAck)
	if !ok {
		return fmt.Errorf("serve: expected MsgScoreOpenAck from worker %d, got %T", i, msg)
	}
	if ack.Error != "" {
		return fmt.Errorf("serve: worker %d rejected session: %s", i, ack.Error)
	}
	if ack.Party != i {
		return fmt.Errorf("serve: transport %d is connected to party %d; order transports by party index", i, ack.Party)
	}
	if ack.Rows != s.cfg.Data.Rows() {
		return fmt.Errorf("serve: party %d shard has %d rows, B has %d — scoring universes misaligned", i, ack.Rows, s.cfg.Data.Rows())
	}
	return nil
}

// reopen re-dials party i and redoes the session handshake, spending one
// retry-budget token. Called under the round slot.
func (s *Server) reopen(ctx context.Context, i int) error {
	var dial func() (core.Transport, error)
	if i < len(s.cfg.Dialers) {
		dial = s.cfg.Dialers[i]
	}
	if dial == nil {
		return fmt.Errorf("serve: no dialer configured for party %d", i)
	}
	if !s.retry.take() {
		return fmt.Errorf("serve: retry budget exhausted re-opening party %d", i)
	}
	s.met.ObserveRetry()
	tr, err := dial()
	if err != nil {
		return fmt.Errorf("serve: re-dialing party %d: %w", i, err)
	}
	ws := s.workers[i]
	ws.markDead() // release the old pump before installing the new link
	ws.attach(tr, core.NewLinkCodec(tr, s.codec))
	if err := ws.link.SendContext(ctx, core.MsgScoreOpen{Proto: core.ScoreProtoVersion, Session: s.cfg.Session}); err != nil {
		ws.markDead()
		return fmt.Errorf("serve: re-opening session with party %d: %w", i, err)
	}
	msg, err := ws.recv(ctx)
	if err != nil {
		ws.markDead()
		return fmt.Errorf("serve: party %d re-open ack: %w", i, err)
	}
	if err := s.checkOpenAck(i, msg); err != nil {
		ws.markDead()
		return err
	}
	ws.alive.Store(true)
	return nil
}

// Score enqueues one row into the micro-batcher and blocks for its margin
// and the model version it was scored with.
func (s *Server) Score(ctx context.Context, row int32) (float64, uint64, error) {
	r, err := s.ScoreRow(ctx, row)
	return r.Margin, r.Version, err
}

// ScoreRow is Score with the full outcome (partial flag, missing-party
// list). A context without a deadline gets the server's default budget.
func (s *Server) ScoreRow(ctx context.Context, row int32) (RowResult, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	start := time.Now()
	r, err := s.batcher.ScoreRow(ctx, row)
	s.met.ObserveRequest(time.Since(start), err)
	s.observeOutcome(r.Missing, err)
	return r, err
}

// observeOutcome feeds the overload/degradation counters from one
// request's result.
func (s *Server) observeOutcome(missing []int, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.met.ObserveShed()
	case errors.Is(err, context.DeadlineExceeded):
		s.met.ObserveTimeout()
	case err == nil && len(missing) > 0:
		s.met.ObserveDegraded()
	}
}

// ScoreRows issues one federated scoring round for the given rows, pinned
// to the registry's current model version. Kept for direct Go callers
// with the pre-deadline semantics: no budget (the round blocks as long
// as the links do). Deadline-aware callers use ScoreBatch.
func (s *Server) ScoreRows(rows []int32) ([]float64, uint64, error) {
	res, err := s.ScoreBatch(context.Background(), rows)
	return res.Margins, res.Version, err
}

// ScoreBatch issues one federated scoring round under the context's
// deadline. All rows in the round are scored against one pinned model
// version even if a hot-swap lands mid-round. A worker that cannot
// answer in budget fails the round (FailClosed) or drops out of it
// (ServePartial — the result lists it in Missing and margins omit every
// tree that needed it).
func (s *Server) ScoreBatch(ctx context.Context, rows []int32) (BatchResult, error) {
	if s.closing.Load() {
		return BatchResult{}, ErrClosed
	}
	mv, ok := s.cfg.Registry.Current()
	if !ok {
		return BatchResult{}, ErrNoModel
	}
	if len(rows) == 0 {
		return BatchResult{Version: mv.Version}, nil
	}
	// Concurrency limit: only MaxInflight rounds may contend for the round
	// slot at once; the rest wait here under their own deadline. (Load
	// shedding already happened at the batcher queue.)
	select {
	case s.inflight <- struct{}{}:
	case <-ctx.Done():
		s.met.ObserveTimeout()
		return BatchResult{}, ctx.Err()
	}
	defer func() { <-s.inflight }()
	// The round slot: a capacity-1 channel instead of a mutex so a round
	// that never gets the links still respects its deadline.
	select {
	case s.roundCh <- struct{}{}:
	case <-ctx.Done():
		s.met.ObserveTimeout()
		return BatchResult{}, ctx.Err()
	}
	defer func() { <-s.roundCh }()
	if !s.opened.Load() {
		return BatchResult{}, fmt.Errorf("serve: session not opened")
	}

	round := s.round.Add(1)
	doneBatch := s.cfg.Trace.Span("B:ScoreBatch", fmt.Sprintf("round %d n=%d v=%d", round, len(rows), mv.Version))
	defer doneBatch()

	req := core.MsgScoreRequest{Round: round, Version: mv.Version, Rows: rows}
	missing := make(map[int]bool)
	active := make([]bool, len(s.workers))

	// Which workers take part: breaker admission first, then session
	// liveness (a dead session is re-opened on the spot when a dialer
	// and retry budget allow — a breaker probe rides the same path).
	for i, ws := range s.workers {
		allow, _ := ws.breaker.Allow()
		if !allow {
			missing[i] = true
			continue
		}
		if !ws.alive.Load() {
			if err := s.reopen(ctx, i); err != nil {
				ws.breaker.Failure(false)
				missing[i] = true
				continue
			}
		}
		active[i] = true
	}

	wanStart := time.Now()
	doneWAN := s.cfg.Trace.Span("B:ScoreWAN", fmt.Sprintf("round %d", round))
	for i, ws := range s.workers {
		if !active[i] {
			continue
		}
		if err := ws.link.SendContext(ctx, req); err != nil {
			if ctx.Err() != nil {
				ws.breaker.Failure(true)
				s.met.ObserveTimeout()
			} else {
				ws.markDead()
				ws.breaker.Failure(false)
				if e := s.reopen(ctx, i); e == nil && ws.link.SendContext(ctx, req) == nil {
					continue // re-opened and re-sent within budget
				}
			}
			active[i] = false
			missing[i] = true
		}
	}

	routes := make(map[core.RouteKey][]byte)
	var appErr error
	for i := range s.workers {
		if !active[i] {
			continue
		}
		nodes, err := s.collectWorker(ctx, i, round, mv.Version, req)
		if err != nil {
			var we *workerError
			if errors.As(err, &we) && appErr == nil {
				appErr = err
			}
			missing[i] = true
			continue
		}
		for _, nb := range nodes {
			routes[core.RouteKey{Party: i, Tree: nb.Tree, Node: nb.Node}] = nb.Bits
		}
	}
	doneWAN()
	s.met.ObserveWAN(time.Since(wanStart))

	if len(missing) > 0 && s.cfg.Policy != ServePartial {
		if appErr != nil {
			return BatchResult{}, appErr
		}
		if err := ctx.Err(); err != nil {
			return BatchResult{}, err
		}
		return BatchResult{}, fmt.Errorf("%w: parties %v", ErrPartyUnavailable, sortedParties(missing))
	}

	routeStart := time.Now()
	doneRoute := s.cfg.Trace.Span("B:ScoreRoute", fmt.Sprintf("round %d", round))
	margins, _, err := core.RoutePartialMargins(mv.Fragment, mv.LearningRate, mv.BaseScore, s.cfg.Data, rows, routes, missing)
	doneRoute()
	s.met.ObserveRoute(time.Since(routeStart))
	if err != nil {
		return BatchResult{}, err
	}
	s.met.ObserveBatch(len(rows))
	res := BatchResult{Margins: margins, Version: mv.Version}
	if len(missing) > 0 {
		res.Missing = sortedParties(missing)
	}
	return res, nil
}

// collectWorker waits for worker i's answer to the round, feeding its
// breaker. Stale answers to earlier (timed-out) rounds are discarded —
// that is what lets a session survive a timeout and recover. One
// transport loss is retried with a budgeted session re-open.
func (s *Server) collectWorker(ctx context.Context, i int, round, version uint64, req core.MsgScoreRequest) ([]core.PredictNodeBits, error) {
	ws := s.workers[i]
	retried := false
	for {
		msg, err := ws.recv(ctx)
		if err != nil {
			if ctx.Err() != nil {
				// Out of budget; the session may be merely slow, so it
				// stays open — the stale answer is discarded next round.
				ws.breaker.Failure(true)
				s.met.ObserveTimeout()
				return nil, ctx.Err()
			}
			ws.markDead()
			ws.breaker.Failure(false)
			if retried {
				return nil, fmt.Errorf("serve: round %d: worker %d link lost: %w", round, i, err)
			}
			retried = true
			if e := s.reopen(ctx, i); e != nil {
				return nil, fmt.Errorf("serve: round %d: worker %d link lost (%v), re-open failed: %w", round, i, err, e)
			}
			if e := ws.link.SendContext(ctx, req); e != nil {
				ws.markDead()
				return nil, fmt.Errorf("serve: round %d: resending to worker %d: %w", round, i, e)
			}
			continue
		}
		resp, ok := msg.(core.MsgScoreResponse)
		if !ok {
			ws.breaker.Failure(false)
			ws.markDead()
			return nil, fmt.Errorf("serve: expected MsgScoreResponse from worker %d, got %T", i, msg)
		}
		if resp.Round < round {
			continue // answer to a round that already gave up on it
		}
		if resp.Round != round || resp.Version != version {
			ws.breaker.Failure(false)
			ws.markDead()
			return nil, fmt.Errorf("serve: worker %d answered round %d v%d, expected round %d v%d",
				i, resp.Round, resp.Version, round, version)
		}
		if resp.Error != "" {
			// The link is healthy — the refusal is the application's.
			ws.breaker.Success()
			return nil, &workerError{party: i, round: round, msg: resp.Error}
		}
		ws.breaker.Success()
		return resp.Nodes, nil
	}
}

func sortedParties(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Close drains the batcher, then closes the scoring session on every
// live worker with an acknowledged MsgScoreClose. Safe to call once.
func (s *Server) Close() error {
	if s.closing.Swap(true) {
		return nil
	}
	s.batcher.Close()
	s.roundCh <- struct{}{}
	defer func() { <-s.roundCh }()
	if !s.opened.Load() {
		return nil
	}
	var firstErr error
	for i, ws := range s.workers {
		if !ws.alive.Load() {
			continue
		}
		if err := ws.link.Send(core.MsgScoreClose{Reason: "server shutdown"}); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: closing worker %d: %w", i, err)
			}
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Deadline)
		for {
			msg, err := ws.recv(ctx)
			if err != nil {
				break
			}
			if _, ok := msg.(core.MsgScoreResponse); ok {
				continue // stale round answer ahead of the close ack
			}
			if _, ok := msg.(core.MsgScoreCloseAck); !ok && firstErr == nil {
				firstErr = fmt.Errorf("serve: worker %d answered close with %T", i, msg)
			}
			break
		}
		cancel()
	}
	return firstErr
}

// --- HTTP front end ---------------------------------------------------

// DeadlineHeader carries a per-request scoring budget as a Go duration
// ("750ms") or an integer millisecond count.
const DeadlineHeader = "X-Score-Deadline"

type scoreRequest struct {
	Row  *int32  `json:"row,omitempty"`
	Rows []int32 `json:"rows,omitempty"`
}

type scoreResponse struct {
	Margin  *float64  `json:"margin,omitempty"`
	Margins []float64 `json:"margins,omitempty"`
	Version uint64    `json:"version"`
	// Partial marks a degraded answer: Missing lists the passive parties
	// whose trees the margins omit.
	Partial bool  `json:"partial,omitempty"`
	Missing []int `json:"missing,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler serves the HTTP API: POST /score scores one row (through the
// micro-batcher) or an explicit row list (one direct round); GET /healthz
// is process liveness, GET /readyz is serving readiness, GET /metricsz
// exposes instrumentation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /score", s.handleScore)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return mux
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// requestDeadline resolves one request's scoring budget: header value if
// present (clamped to MaxDeadline), the server default otherwise.
func (s *Server) requestDeadline(r *http.Request) (time.Duration, error) {
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return s.cfg.Deadline, nil
	}
	d, err := time.ParseDuration(h)
	if err != nil {
		ms, err2 := strconv.Atoi(h)
		if err2 != nil {
			return 0, fmt.Errorf("bad %s header %q: want a duration or milliseconds", DeadlineHeader, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad %s header %q: budget must be positive", DeadlineHeader, h)
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d, nil
}

// retryAfterQueue estimates seconds until the queue drains enough to
// admit again — the Retry-After on a 429.
func (s *Server) retryAfterQueue() int {
	rounds := float64(s.batcher.Queued()) / float64(s.cfg.Batch.MaxBatch)
	secs := int(math.Ceil(rounds * s.cfg.Batch.MaxWait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// retryAfterBreaker is the longest remaining breaker cooldown — after
// that a probe may close the circuit, so it is the honest 503 hint.
func (s *Server) retryAfterBreaker() int {
	var max time.Duration
	for _, ws := range s.workers {
		if d := ws.breaker.CooldownRemaining(); d > max {
			max = d
		}
	}
	secs := int(math.Ceil(max.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// writeScoreError maps a scoring error to its status, with Retry-After
// on backpressure responses.
func (s *Server) writeScoreError(w http.ResponseWriter, err error) {
	code := scoreStatus(err)
	switch code {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterQueue()))
	case http.StatusServiceUnavailable:
		if errors.Is(err, ErrPartyUnavailable) {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterBreaker()))
		} else {
			w.Header().Set("Retry-After", "1")
		}
	}
	httpError(w, code, err.Error())
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	budget, err := s.requestDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	var resp scoreResponse
	switch {
	case req.Row != nil && req.Rows == nil:
		res, err := s.ScoreRow(ctx, *req.Row)
		if err != nil {
			s.writeScoreError(w, err)
			return
		}
		resp = scoreResponse{Margin: &res.Margin, Version: res.Version, Partial: res.Partial(), Missing: res.Missing}
	case req.Rows != nil && req.Row == nil:
		start := time.Now()
		res, err := s.ScoreBatch(ctx, req.Rows)
		s.met.ObserveRequest(time.Since(start), err)
		s.observeOutcome(res.Missing, err)
		if err != nil {
			s.writeScoreError(w, err)
			return
		}
		if res.Margins == nil {
			res.Margins = []float64{}
		}
		resp = scoreResponse{Margins: res.Margins, Version: res.Version, Partial: len(res.Missing) > 0, Missing: res.Missing}
	default:
		httpError(w, http.StatusBadRequest, `body must carry exactly one of "row" or "rows"`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func scoreStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrPartyUnavailable),
		errors.Is(err, ErrClosed),
		errors.Is(err, ErrNoModel):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// handleHealthz is process liveness only: the process is up and not
// shutting down. Whether it can actually serve is /readyz's question.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.closing.Load() {
		http.Error(w, "closing", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReadyz is serving readiness: a published model version and an
// open scoring session, with every party reachable — or, under
// ServePartial, at least the ability to answer degraded.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.closing.Load() {
		http.Error(w, "closing", http.StatusServiceUnavailable)
		return
	}
	if s.cfg.Registry.CurrentVersion() == 0 {
		http.Error(w, "no model published", http.StatusServiceUnavailable)
		return
	}
	if !s.opened.Load() {
		http.Error(w, "scoring session not open", http.StatusServiceUnavailable)
		return
	}
	var down []int
	for i, ws := range s.workers {
		if !ws.alive.Load() || ws.breaker.State() == BreakerOpen {
			down = append(down, i)
		}
	}
	switch {
	case len(down) == 0:
		fmt.Fprintln(w, "ok")
	case s.cfg.Policy == ServePartial:
		fmt.Fprintf(w, "ok (degraded: parties %v unavailable)\n", down)
	default:
		http.Error(w, fmt.Sprintf("parties %v unavailable", down), http.StatusServiceUnavailable)
	}
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	m := s.met
	fmt.Fprintf(w, "serve_uptime_seconds %.3f\n", m.Uptime().Seconds())
	fmt.Fprintf(w, "serve_model_version %d\n", s.cfg.Registry.CurrentVersion())
	fmt.Fprintf(w, "serve_model_versions %d\n", len(s.cfg.Registry.Versions()))
	fmt.Fprintf(w, "serve_requests_total %d\n", m.Requests())
	fmt.Fprintf(w, "serve_batches_total %d\n", m.Batches())
	fmt.Fprintf(w, "serve_errors_total %d\n", m.Errors())
	fmt.Fprintf(w, "serve_shed_total %d\n", m.Shed())
	fmt.Fprintf(w, "serve_timeouts_total %d\n", m.Timeouts())
	fmt.Fprintf(w, "serve_degraded_total %d\n", m.Degraded())
	fmt.Fprintf(w, "serve_retries_total %d\n", m.Retries())
	fmt.Fprintf(w, "serve_queue_depth %d\n", s.batcher.Queued())
	fmt.Fprintf(w, "serve_queue_max %d\n", s.batcher.MaxQueue())
	fmt.Fprintf(w, "serve_degraded_policy %q\n", s.cfg.Policy)
	fmt.Fprintf(w, "serve_qps %.2f\n", m.QPS())
	for _, q := range []float64{0.50, 0.95, 0.99} {
		fmt.Fprintf(w, "serve_request_latency_ms{q=%q} %.4f\n", fmt.Sprintf("%.2f", q), m.Latency().Quantile(q))
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		fmt.Fprintf(w, "serve_wan_latency_ms{q=%q} %.4f\n", fmt.Sprintf("%.2f", q), m.WAN().Quantile(q))
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		fmt.Fprintf(w, "serve_route_latency_ms{q=%q} %.4f\n", fmt.Sprintf("%.2f", q), m.Route().Quantile(q))
	}
	fmt.Fprintf(w, "serve_batch_size_avg %.2f\n", m.BatchSize().Mean())
	for _, q := range []float64{0.50, 0.95, 0.99} {
		fmt.Fprintf(w, "serve_batch_size{q=%q} %.2f\n", fmt.Sprintf("%.2f", q), m.BatchSize().Quantile(q))
	}
	for _, ws := range s.workers {
		party := strconv.Itoa(ws.party)
		fmt.Fprintf(w, "serve_breaker_state{party=%q,state=%q} 1\n", party, ws.breaker.State())
		fmt.Fprintf(w, "serve_breaker_opens_total{party=%q} %d\n", party, ws.breaker.Opens())
		alive := 0
		if ws.alive.Load() {
			alive = 1
		}
		fmt.Fprintf(w, "serve_worker_alive{party=%q} %d\n", party, alive)
	}
	if s.cfg.Broker != nil {
		depths := s.cfg.Broker.TopicDepths()
		topics := make([]string, 0, len(depths))
		for t := range depths {
			topics = append(topics, t)
		}
		sort.Strings(topics)
		for _, t := range topics {
			fmt.Fprintf(w, "mq_topic_depth{topic=%q} %d\n", t, depths[t])
		}
	}
}
