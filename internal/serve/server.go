package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/mq"
	"vf2boost/internal/trace"
	"vf2boost/internal/wire"
)

// ServerConfig wires a Party B scoring server.
type ServerConfig struct {
	// Data is B's feature shard of the aligned scoring universe.
	Data *dataset.Dataset
	// Registry resolves model versions; Current() is pinned per batch.
	Registry *Registry
	// Workers holds one open transport per passive party, in party-index
	// order, each with a PassiveWorker serving the other end.
	Workers []core.Transport
	// Batch bounds the micro-batcher.
	Batch BatcherConfig
	// Session is an opaque session label sent in the open handshake.
	Session string
	// Codec selects the wire encoding for the scoring session: "binary"
	// (default) or "gob". The server initiates, so workers adopt whatever
	// it speaks — no worker-side setting exists.
	Codec string
	// Broker, when the broker is co-resident (in-process deployments),
	// lets /metricsz surface per-topic queue depths. Optional.
	Broker *mq.Broker
	// Trace, when set, records per-round spans on lanes "B:ScoreBatch",
	// "B:ScoreWAN" and "B:ScoreRoute". Optional.
	Trace *trace.Recorder
}

// Server drives online federated scoring from Party B: it pins a model
// version per micro-batch, issues one scoring round over every worker
// link, routes instances locally, and serves the result over HTTP. One
// round is in flight per session at a time (the links are FIFO); the
// batcher overlaps accumulation of the next batch with the in-flight WAN
// round-trip.
type Server struct {
	cfg     ServerConfig
	links   []*core.Link
	batcher *Batcher
	met     *Metrics

	roundMu sync.Mutex // serializes federated rounds over the links
	round   atomic.Uint64
	opened  bool
	closing atomic.Bool
}

// NewServer validates the wiring; Open performs the session handshake.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Data == nil {
		return nil, fmt.Errorf("serve: server needs Party B's feature shard")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: server needs a model registry")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("serve: server needs at least one passive worker transport")
	}
	codec, err := wire.ByName(cfg.Codec)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{cfg: cfg, met: NewMetrics()}
	for _, tr := range cfg.Workers {
		s.links = append(s.links, core.NewLinkCodec(tr, codec))
	}
	s.batcher = NewBatcher(cfg.Batch, s.ScoreRows)
	return s, nil
}

// Metrics exposes the server's instrumentation.
func (s *Server) Metrics() *Metrics { return s.met }

// Open performs the session handshake with every worker: protocol version
// agreement and the instance-alignment check (every party must hold a
// shard of the same universe).
func (s *Server) Open() error {
	for i, l := range s.links {
		if err := l.Send(core.MsgScoreOpen{Proto: core.ScoreProtoVersion, Session: s.cfg.Session}); err != nil {
			return fmt.Errorf("serve: opening session with worker %d: %w", i, err)
		}
	}
	for i, l := range s.links {
		msg, err := l.Recv()
		if err != nil {
			return fmt.Errorf("serve: worker %d open ack: %w", i, err)
		}
		ack, ok := msg.(core.MsgScoreOpenAck)
		if !ok {
			return fmt.Errorf("serve: expected MsgScoreOpenAck from worker %d, got %T", i, msg)
		}
		if ack.Error != "" {
			return fmt.Errorf("serve: worker %d rejected session: %s", i, ack.Error)
		}
		if ack.Party != i {
			return fmt.Errorf("serve: transport %d is connected to party %d; order transports by party index", i, ack.Party)
		}
		if ack.Rows != s.cfg.Data.Rows() {
			return fmt.Errorf("serve: party %d shard has %d rows, B has %d — scoring universes misaligned", i, ack.Rows, s.cfg.Data.Rows())
		}
	}
	s.opened = true
	return nil
}

// Score enqueues one row into the micro-batcher and blocks for its margin
// and the model version it was scored with.
func (s *Server) Score(ctx context.Context, row int32) (float64, uint64, error) {
	start := time.Now()
	margin, version, err := s.batcher.Score(ctx, row)
	s.met.ObserveRequest(time.Since(start), err)
	return margin, version, err
}

// ScoreRows issues one federated scoring round for the given rows, pinned
// to the registry's current model version. All rows in the round are
// scored against that single version even if a hot-swap lands mid-round.
func (s *Server) ScoreRows(rows []int32) ([]float64, uint64, error) {
	if s.closing.Load() {
		return nil, 0, ErrClosed
	}
	mv, ok := s.cfg.Registry.Current()
	if !ok {
		return nil, 0, ErrNoModel
	}
	if len(rows) == 0 {
		return nil, mv.Version, nil
	}
	s.roundMu.Lock()
	defer s.roundMu.Unlock()
	if !s.opened {
		return nil, 0, fmt.Errorf("serve: session not opened")
	}
	round := s.round.Add(1)
	doneBatch := s.cfg.Trace.Span("B:ScoreBatch", fmt.Sprintf("round %d n=%d v=%d", round, len(rows), mv.Version))
	defer doneBatch()

	// One WAN round-trip: fan the request out to every worker, then
	// collect all responses.
	req := core.MsgScoreRequest{Round: round, Version: mv.Version, Rows: rows}
	doneWAN := s.cfg.Trace.Span("B:ScoreWAN", fmt.Sprintf("round %d", round))
	for i, l := range s.links {
		if err := l.Send(req); err != nil {
			doneWAN()
			return nil, 0, fmt.Errorf("serve: sending round %d to worker %d: %w", round, i, err)
		}
	}
	routes := make(map[core.RouteKey][]byte)
	for i, l := range s.links {
		msg, err := l.Recv()
		if err != nil {
			doneWAN()
			return nil, 0, fmt.Errorf("serve: round %d response from worker %d: %w", round, i, err)
		}
		resp, ok := msg.(core.MsgScoreResponse)
		if !ok {
			doneWAN()
			return nil, 0, fmt.Errorf("serve: expected MsgScoreResponse from worker %d, got %T", i, msg)
		}
		if resp.Round != round || resp.Version != mv.Version {
			doneWAN()
			return nil, 0, fmt.Errorf("serve: worker %d answered round %d v%d, expected round %d v%d",
				i, resp.Round, resp.Version, round, mv.Version)
		}
		if resp.Error != "" {
			doneWAN()
			return nil, 0, fmt.Errorf("serve: worker %d failed round %d: %s", i, round, resp.Error)
		}
		for _, nb := range resp.Nodes {
			routes[core.RouteKey{Party: i, Tree: nb.Tree, Node: nb.Node}] = nb.Bits
		}
	}
	doneWAN()

	doneRoute := s.cfg.Trace.Span("B:ScoreRoute", fmt.Sprintf("round %d", round))
	margins, err := core.RouteMargins(mv.Fragment, mv.LearningRate, mv.BaseScore, s.cfg.Data, rows, routes)
	doneRoute()
	if err != nil {
		return nil, 0, err
	}
	s.met.ObserveBatch(len(rows))
	return margins, mv.Version, nil
}

// Close drains the batcher, then closes the scoring session on every
// worker with an acknowledged MsgScoreClose. Safe to call once.
func (s *Server) Close() error {
	if s.closing.Swap(true) {
		return nil
	}
	s.batcher.Close()
	s.roundMu.Lock()
	defer s.roundMu.Unlock()
	if !s.opened {
		return nil
	}
	var firstErr error
	for i, l := range s.links {
		if err := l.Send(core.MsgScoreClose{Reason: "server shutdown"}); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: closing worker %d: %w", i, err)
			}
			continue
		}
		if msg, err := l.Recv(); err == nil {
			if _, ok := msg.(core.MsgScoreCloseAck); !ok && firstErr == nil {
				firstErr = fmt.Errorf("serve: worker %d answered close with %T", i, msg)
			}
		}
	}
	return firstErr
}

// --- HTTP front end ---------------------------------------------------

type scoreRequest struct {
	Row  *int32  `json:"row,omitempty"`
	Rows []int32 `json:"rows,omitempty"`
}

type scoreResponse struct {
	Margin  *float64  `json:"margin,omitempty"`
	Margins []float64 `json:"margins,omitempty"`
	Version uint64    `json:"version"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler serves the HTTP API: POST /score scores one row (through the
// micro-batcher) or an explicit row list (one direct round); GET /healthz
// and GET /metricsz expose liveness and instrumentation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /score", s.handleScore)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return mux
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var resp scoreResponse
	switch {
	case req.Row != nil && req.Rows == nil:
		margin, version, err := s.Score(r.Context(), *req.Row)
		if err != nil {
			httpError(w, scoreStatus(err), err.Error())
			return
		}
		resp = scoreResponse{Margin: &margin, Version: version}
	case req.Rows != nil && req.Row == nil:
		start := time.Now()
		margins, version, err := s.ScoreRows(req.Rows)
		s.met.ObserveRequest(time.Since(start), err)
		if err != nil {
			httpError(w, scoreStatus(err), err.Error())
			return
		}
		if margins == nil {
			margins = []float64{}
		}
		resp = scoreResponse{Margins: margins, Version: version}
	default:
		httpError(w, http.StatusBadRequest, `body must carry exactly one of "row" or "rows"`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func scoreStatus(err error) int {
	switch err {
	case ErrClosed:
		return http.StatusServiceUnavailable
	case ErrNoModel:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.closing.Load():
		http.Error(w, "closing", http.StatusServiceUnavailable)
	case s.cfg.Registry.CurrentVersion() == 0:
		http.Error(w, "no model published", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ok")
	}
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	m := s.met
	fmt.Fprintf(w, "serve_uptime_seconds %.3f\n", m.Uptime().Seconds())
	fmt.Fprintf(w, "serve_model_version %d\n", s.cfg.Registry.CurrentVersion())
	fmt.Fprintf(w, "serve_model_versions %d\n", len(s.cfg.Registry.Versions()))
	fmt.Fprintf(w, "serve_requests_total %d\n", m.Requests())
	fmt.Fprintf(w, "serve_batches_total %d\n", m.Batches())
	fmt.Fprintf(w, "serve_errors_total %d\n", m.Errors())
	fmt.Fprintf(w, "serve_qps %.2f\n", m.QPS())
	for _, q := range []float64{0.50, 0.95, 0.99} {
		fmt.Fprintf(w, "serve_request_latency_ms{q=%q} %.4f\n", fmt.Sprintf("%.2f", q), m.Latency().Quantile(q))
	}
	fmt.Fprintf(w, "serve_batch_size_avg %.2f\n", m.BatchSize().Mean())
	for _, q := range []float64{0.50, 0.95, 0.99} {
		fmt.Fprintf(w, "serve_batch_size{q=%q} %.2f\n", fmt.Sprintf("%.2f", q), m.BatchSize().Quantile(q))
	}
	if s.cfg.Broker != nil {
		depths := s.cfg.Broker.TopicDepths()
		topics := make([]string, 0, len(depths))
		for t := range depths {
			topics = append(topics, t)
		}
		sort.Strings(topics)
		for _, t := range topics {
			fmt.Fprintf(w, "mq_topic_depth{topic=%q} %d\n", t, depths[t])
		}
	}
}
