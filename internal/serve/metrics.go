package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with approximate quantiles: cheap
// enough for the request hot path (one lock, one binary search) and
// accurate to within a bucket's width, which geometric bounds keep
// proportional to the value.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1, last is the overflow bucket
	total  int64
	sum    float64
}

// NewHistogram creates a histogram over ascending bucket upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// geometricBounds returns upper bounds lo, lo*factor, ... up to hi.
func geometricBounds(lo, hi, factor float64) []float64 {
	var out []float64
	for v := lo; v <= hi; v *= factor {
		out = append(out, v)
	}
	return out
}

// LatencyBounds is the default request-latency bucket layout in
// milliseconds: 50µs to ~100s, doubling.
func LatencyBounds() []float64 { return geometricBounds(0.05, 110_000, 2) }

// SizeBounds is the default batch-size bucket layout: 1 to 4096, doubling.
func SizeBounds() []float64 { return geometricBounds(1, 4096, 2) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the covering bucket. Values in the overflow bucket report the
// largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	rank := q * float64(h.total)
	cum, lower := 0.0, 0.0
	for i, c := range h.counts {
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		if float64(c) > 0 && cum+float64(c) >= rank {
			if math.IsInf(upper, 1) {
				return lower
			}
			frac := (rank - cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum += float64(c)
		lower = upper
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Metrics instruments the serving path: request and batch counters plus
// latency and batch-size histograms, rendered by /metricsz. PR 4 adds the
// overload/degradation counters (shed, timeouts, degraded, retries) and
// per-phase latency (WAN round-trip vs local routing) so operators can
// tell a slow party from a slow tree walk.
type Metrics struct {
	start     time.Time
	requests  atomic.Int64
	batches   atomic.Int64
	errors    atomic.Int64
	shed      atomic.Int64 // requests rejected by admission control
	timeouts  atomic.Int64 // rounds/requests that blew their deadline
	degraded  atomic.Int64 // requests answered with partial margins
	retries   atomic.Int64 // in-round session re-open attempts
	latency   *Histogram   // per-request latency, milliseconds
	batchSize *Histogram   // federated rounds by batch size
	wan       *Histogram   // sidecar round-trip latency, milliseconds
	route     *Histogram   // local margin-routing latency, milliseconds
}

// NewMetrics creates zeroed metrics with the default bucket layouts.
func NewMetrics() *Metrics {
	return &Metrics{
		start:     time.Now(),
		latency:   NewHistogram(LatencyBounds()),
		batchSize: NewHistogram(SizeBounds()),
		wan:       NewHistogram(LatencyBounds()),
		route:     NewHistogram(LatencyBounds()),
	}
}

// ObserveRequest records one request's end-to-end latency and outcome.
func (m *Metrics) ObserveRequest(d time.Duration, err error) {
	m.requests.Add(1)
	if err != nil {
		m.errors.Add(1)
		return
	}
	m.latency.Observe(float64(d) / float64(time.Millisecond))
}

// ObserveBatch records one federated round's batch size.
func (m *Metrics) ObserveBatch(size int) {
	m.batches.Add(1)
	m.batchSize.Observe(float64(size))
}

// ObserveShed records one request rejected by admission control.
func (m *Metrics) ObserveShed() { m.shed.Add(1) }

// ObserveTimeout records one deadline expiry (a request or a sidecar
// round that ran out of budget).
func (m *Metrics) ObserveTimeout() { m.timeouts.Add(1) }

// ObserveDegraded records one request answered with partial margins.
func (m *Metrics) ObserveDegraded() { m.degraded.Add(1) }

// ObserveRetry records one in-round session re-open attempt.
func (m *Metrics) ObserveRetry() { m.retries.Add(1) }

// ObserveWAN records one sidecar round-trip's latency.
func (m *Metrics) ObserveWAN(d time.Duration) {
	m.wan.Observe(float64(d) / float64(time.Millisecond))
}

// ObserveRoute records one local margin-routing pass's latency.
func (m *Metrics) ObserveRoute(d time.Duration) {
	m.route.Observe(float64(d) / float64(time.Millisecond))
}

// Requests returns the total requests observed.
func (m *Metrics) Requests() int64 { return m.requests.Load() }

// Batches returns the total federated rounds issued.
func (m *Metrics) Batches() int64 { return m.batches.Load() }

// Errors returns the total failed requests.
func (m *Metrics) Errors() int64 { return m.errors.Load() }

// Shed returns the total requests rejected by admission control.
func (m *Metrics) Shed() int64 { return m.shed.Load() }

// Timeouts returns the total deadline expiries.
func (m *Metrics) Timeouts() int64 { return m.timeouts.Load() }

// Degraded returns the total partial-margin responses.
func (m *Metrics) Degraded() int64 { return m.degraded.Load() }

// Retries returns the total in-round session re-open attempts.
func (m *Metrics) Retries() int64 { return m.retries.Load() }

// QPS returns requests per second since the metrics were created.
func (m *Metrics) QPS() float64 {
	secs := time.Since(m.start).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(m.requests.Load()) / secs
}

// Latency returns the request-latency histogram (milliseconds).
func (m *Metrics) Latency() *Histogram { return m.latency }

// BatchSize returns the batch-size histogram.
func (m *Metrics) BatchSize() *Histogram { return m.batchSize }

// WAN returns the sidecar round-trip latency histogram (milliseconds).
func (m *Metrics) WAN() *Histogram { return m.wan }

// Route returns the local routing latency histogram (milliseconds).
func (m *Metrics) Route() *Histogram { return m.route }

// Uptime returns the time since the metrics were created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }
