// Package serve is the online federated scoring subsystem: it turns a
// trained federated GBDT — whose fragments never leave their parties —
// into a long-lived, low-latency service, the deployment shape the paper's
// cross-enterprise setting ultimately feeds (risk scores at transaction
// time, not batch jobs).
//
// The pieces, all layered on the existing mq broker / TCP gateway and the
// core scoring protocol (internal/core/score.go):
//
//   - Registry: a versioned model store with atomic hot-swap. Every
//     scoring round is pinned to one version, so a reload mid-stream never
//     mixes tree structures across parties.
//   - PassiveWorker: a passive-party sidecar that holds its feature shard
//     and fragment registry and answers an unbounded stream of scoring
//     rounds over one mq topic pair — session setup is paid once, not per
//     request.
//   - Batcher: Party B's micro-batcher. Incoming single-instance requests
//     coalesce by max-batch-size or max-wait deadline, so one WAN
//     round-trip (the dominant online cost) serves N requests.
//   - Server: Party B's front end — federated round driver, HTTP API
//     (POST /score, GET /healthz, GET /metricsz), latency/QPS/batch-size
//     instrumentation, and trace.Recorder lanes so serving schedules
//     render on the same Gantt tooling as training.
//
// Rows are indices into the pre-aligned scoring universe (each party holds
// its own feature shard of the same instances, aligned by PSI just like
// training data), which is how online VFL feature stores address
// instances without shipping features across the boundary.
package serve

import (
	"errors"
	"fmt"
)

// ErrClosed is returned by operations on a closed batcher or server.
var ErrClosed = errors.New("serve: closed")

// ErrNoModel is returned when scoring is attempted before any model
// version has been published.
var ErrNoModel = errors.New("serve: no model version published")

// ErrOverloaded is returned when admission control sheds a request: the
// batcher queue or the in-flight round limiter is full. HTTP maps it to
// 429 with a Retry-After derived from the current queue depth.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// ErrPartyUnavailable is returned under the FailClosed policy when a
// passive party's circuit breaker is open (or its session cannot be
// re-established), so a full federated round is impossible. HTTP maps it
// to 503 with a Retry-After derived from the breaker cooldown.
var ErrPartyUnavailable = errors.New("serve: passive party unavailable (circuit open)")

// DegradedPolicy selects what the scoring server does when a passive
// party cannot take part in a round (open breaker, dead session).
type DegradedPolicy int

const (
	// FailClosed refuses rounds that cannot consult every passive party
	// — correctness over availability (the default).
	FailClosed DegradedPolicy = iota
	// ServePartial serves partial margins from the reachable parties
	// (trees needing a missing party are skipped), marking the response
	// "partial": true with the missing-party list — availability over
	// completeness.
	ServePartial
)

// String renders the policy in the -degraded-policy flag syntax.
func (p DegradedPolicy) String() string {
	if p == ServePartial {
		return "partial"
	}
	return "failclosed"
}

// ParsePolicy parses the -degraded-policy CLI value.
func ParsePolicy(s string) (DegradedPolicy, error) {
	switch s {
	case "", "failclosed", "fail-closed":
		return FailClosed, nil
	case "partial", "servepartial", "serve-partial":
		return ServePartial, nil
	}
	return FailClosed, fmt.Errorf("serve: unknown degraded policy %q (want failclosed or partial)", s)
}
