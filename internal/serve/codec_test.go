package serve

import (
	"math"
	"sync"
	"testing"

	"vf2boost/internal/core"
	"vf2boost/internal/wire"
)

// tapTransport records the frame tag of everything sent through it.
type tapTransport struct {
	core.Transport
	mu   sync.Mutex
	tags []byte
}

func (t *tapTransport) Send(b []byte) error {
	t.mu.Lock()
	if len(b) > 0 {
		t.tags = append(t.tags, b[0])
	}
	t.mu.Unlock()
	return t.Transport.Send(b)
}

// TestScoringSessionGobCodec runs a scoring session on the negotiated
// gob fallback: the server pins gob via ServerConfig.Codec, the worker
// (which has no codec setting) adopts it from the first frame, and every
// frame on the wire in both directions is gob-tagged. Margins must match
// the model exactly.
func TestScoringSessionGobCodec(t *testing.T) {
	parts := twoParts(t, 60, 97)
	m := trainModel(t, parts, 2)
	want := predictAll(t, m, parts)

	serverTr, workerTr := pipePair()
	sTap := &tapTransport{Transport: serverTr}
	wTap := &tapTransport{Transport: workerTr}

	wreg := NewRegistry()
	if err := wreg.Publish(Model{Version: 1, Fragment: m.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	worker := NewPassiveWorker(0, parts[0], wreg)
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run(wTap) }()

	sreg := NewRegistry()
	if err := sreg.Publish(bModel(1, m)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Data:     parts[1],
		Registry: sreg,
		Workers:  []core.Transport{sTap},
		Session:  "gob-fallback",
		Codec:    "gob",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Open(); err != nil {
		t.Fatal(err)
	}
	rows := []int32{0, 7, 31, 59}
	margins, version, err := srv.ScoreRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Fatalf("scored on version %d, want 1", version)
	}
	for i, r := range rows {
		if math.Abs(margins[i]-want[r]) > 1e-9 {
			t.Errorf("row %d margin %g, want %g", r, margins[i], want[r])
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}

	for _, tap := range []*tapTransport{sTap, wTap} {
		tap.mu.Lock()
		tags := tap.tags
		tap.mu.Unlock()
		if len(tags) == 0 {
			t.Fatal("no frames recorded")
		}
		for i, tag := range tags {
			if tag != wire.TagGob {
				t.Fatalf("frame %d has tag 0x%02x, want gob", i, tag)
			}
		}
	}

	// The rejection path: an unknown codec name must fail NewServer.
	if _, err := NewServer(ServerConfig{
		Data: parts[1], Registry: sreg,
		Workers: []core.Transport{serverTr}, Codec: "xml",
	}); err == nil {
		t.Error("unknown codec accepted")
	}
}
