package serve

// Chaos tests for the hardened scoring path: transports wrapped in
// internal/fault (drop / delay / hard-cut), stalled links, and overload
// bursts. The invariant under test everywhere: a /score request resolves
// within its deadline as success, shed, or partial — never a hang.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/fault"
)

// closableEnd is an in-memory Transport like pipeEnd, but severable: Close
// on either end unblocks both directions with io.EOF. The server's
// markDead path and the worker's session teardown both need that.
type closableEnd struct {
	send chan<- []byte
	recv <-chan []byte
	done chan struct{}
	once *sync.Once
}

func (c closableEnd) Send(b []byte) error {
	select {
	case <-c.done:
		return io.EOF
	default:
	}
	select {
	case c.send <- append([]byte(nil), b...):
		return nil
	case <-c.done:
		return io.EOF
	}
}

func (c closableEnd) Receive() ([]byte, error) {
	select {
	case b := <-c.recv:
		return b, nil
	case <-c.done:
		return nil, io.EOF
	}
}

func (c closableEnd) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func closablePair() (core.Transport, core.Transport) {
	a2b := make(chan []byte, 16)
	b2a := make(chan []byte, 16)
	done := make(chan struct{})
	once := &sync.Once{}
	return closableEnd{send: a2b, recv: b2a, done: done, once: once},
		closableEnd{send: b2a, recv: a2b, done: done, once: once}
}

// stallTransport black-holes Sends while stalled: the bytes vanish in the
// WAN, the link itself stays "up" — the shape of a stalled peer, as
// opposed to a cut one.
type stallTransport struct {
	core.Transport
	stalled atomic.Bool
}

func (s *stallTransport) Send(b []byte) error {
	if s.stalled.Load() {
		return nil
	}
	return s.Transport.Send(b)
}

// expectPartial scores the rows expecting a degraded answer missing
// party 0, and checks the partial margins against the B-only routing.
func expectPartial(t *testing.T, res BatchResult, err error, want []float64) {
	t.Helper()
	if err != nil {
		t.Fatalf("degraded round failed instead of serving partial: %v", err)
	}
	if len(res.Missing) != 1 || res.Missing[0] != 0 {
		t.Fatalf("degraded round Missing = %v, want [0]", res.Missing)
	}
	for i, m := range res.Margins {
		if math.Abs(m-want[i]) > 1e-9 {
			t.Fatalf("partial margin[%d] = %g, want %g", i, m, want[i])
		}
	}
}

// TestServeBreakerTimeoutTripAndRecover: a stalled (black-holing) worker
// link times out rounds until consecutive timeouts open the breaker;
// while open, ServePartial answers degraded without waiting out the
// budget; after the stall clears and the cooldown elapses, one probe
// round closes the circuit and full-fidelity margins resume.
func TestServeBreakerTimeoutTripAndRecover(t *testing.T) {
	parts := twoParts(t, 64, 1)
	m := trainModel(t, parts, 6)
	want := predictAll(t, m, parts)
	rows := []int32{0, 1, 2, 3, 4, 5, 6, 7}

	serverTr, workerTr := pipePair()
	st := &stallTransport{Transport: serverTr}

	wreg := NewRegistry()
	if err := wreg.Publish(Model{Version: 1, Fragment: m.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	worker := NewPassiveWorker(0, parts[0], wreg)
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run(workerTr) }()

	breg := NewRegistry()
	if err := breg.Publish(bModel(1, m)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Data:     parts[1],
		Registry: breg,
		Workers:  []core.Transport{st},
		Policy:   ServePartial,
		Breaker:  BreakerConfig{ConsecTimeouts: 2, Cooldown: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Open(); err != nil {
		t.Fatal(err)
	}

	// Healthy round: full-fidelity margins.
	margins, _, err := srv.ScoreRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, mg := range margins {
		if math.Abs(mg-want[rows[i]]) > 1e-9 {
			t.Fatalf("healthy margin[%d] = %g, want %g", i, mg, want[rows[i]])
		}
	}

	// The partial expectation: B's trees only, party 0's skipped.
	wantPartial, skipped, err := core.RoutePartialMargins(
		m.Parties[1], m.LearningRate, m.BaseScore, parts[1], rows,
		map[core.RouteKey][]byte{}, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped == 0 {
		t.Fatal("test model has no party-0 trees; degraded mode would be invisible")
	}

	// Stall the link: two timed-out rounds trip the breaker.
	st.stalled.Store(true)
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		res, err := srv.ScoreBatch(ctx, rows)
		cancel()
		expectPartial(t, res, err, wantPartial)
	}
	if got := srv.Breaker(0).State(); got != BreakerOpen {
		t.Fatalf("breaker state after 2 timed-out rounds = %v, want open", got)
	}
	if srv.Metrics().Timeouts() < 2 {
		t.Errorf("timeouts counter = %d, want >= 2", srv.Metrics().Timeouts())
	}

	// While open, the degraded answer must come back without burning the
	// budget on a link the breaker already condemned.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	res, err := srv.ScoreBatch(ctx, rows)
	cancel()
	expectPartial(t, res, err, wantPartial)
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("open-breaker round took %v; it must skip the WAN wait", elapsed)
	}

	// Heal the link, wait out the cooldown: the next round is the probe.
	st.stalled.Store(false)
	time.Sleep(300 * time.Millisecond)
	ctx, cancel = context.WithTimeout(context.Background(), time.Second)
	res, err = srv.ScoreBatch(ctx, rows)
	cancel()
	if err != nil {
		t.Fatalf("probe round failed: %v", err)
	}
	if len(res.Missing) != 0 {
		t.Fatalf("probe round still degraded: missing %v", res.Missing)
	}
	for i, mg := range res.Margins {
		if math.Abs(mg-want[rows[i]]) > 1e-9 {
			t.Fatalf("recovered margin[%d] = %g, want %g", i, mg, want[rows[i]])
		}
	}
	if got := srv.Breaker(0).State(); got != BreakerClosed {
		t.Errorf("breaker state after probe success = %v, want closed", got)
	}
	if got := srv.Breaker(0).Opens(); got != 1 {
		t.Errorf("breaker opens = %d, want 1", got)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}
}

// TestServeHardCutRedialRecovery: a hard-cut link (fault.Config
// DisconnectAfter) fails rounds under FailClosed until the failure rate
// opens the breaker; once the peer is back, the cooldown probe re-dials
// through the configured dialer, redoes the session handshake, and
// full-fidelity scoring resumes.
func TestServeHardCutRedialRecovery(t *testing.T) {
	parts := twoParts(t, 64, 2)
	m := trainModel(t, parts, 6)
	want := predictAll(t, m, parts)
	rows := []int32{0, 1, 2, 3}

	wreg := NewRegistry()
	if err := wreg.Publish(Model{Version: 1, Fragment: m.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	worker := NewPassiveWorker(0, parts[0], wreg)

	// Session 1: cut after 3 sends (open + two rounds; the third round's
	// request hits the severed link).
	srvEnd, wkEnd := closablePair()
	cut := fault.Wrap(srvEnd, fault.Config{Seed: 1, DisconnectAfter: 3})
	go worker.Run(wkEnd)

	// The dialer only answers once the test "heals" the peer.
	healed := make(chan core.Transport, 1)
	dial := func() (core.Transport, error) {
		select {
		case tr := <-healed:
			return tr, nil
		default:
			return nil, errors.New("peer down")
		}
	}

	breg := NewRegistry()
	if err := breg.Publish(bModel(1, m)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Data:     parts[1],
		Registry: breg,
		Workers:  []core.Transport{cut},
		Dialers:  []func() (core.Transport, error){dial},
		Breaker:  BreakerConfig{Window: 4, FailureRate: 0.5, MinSamples: 2, Cooldown: 600 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Open(); err != nil {
		t.Fatal(err)
	}

	// Two healthy rounds ride the link before the cut.
	for round := 0; round < 2; round++ {
		margins, _, err := srv.ScoreRows(rows)
		if err != nil {
			t.Fatalf("pre-cut round %d: %v", round, err)
		}
		for i, mg := range margins {
			if math.Abs(mg-want[rows[i]]) > 1e-9 {
				t.Fatalf("pre-cut margin[%d] = %g, want %g", i, mg, want[rows[i]])
			}
		}
	}

	// Round 3 hits the cut: send fails, the re-dial fails, FailClosed
	// refuses. Round 4 fails the same way and tips the failure rate over
	// the threshold.
	for round := 0; round < 2; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := srv.ScoreBatch(ctx, rows)
		cancel()
		if !errors.Is(err, ErrPartyUnavailable) {
			t.Fatalf("post-cut round %d error = %v, want ErrPartyUnavailable", round, err)
		}
	}
	if got := srv.Breaker(0).State(); got != BreakerOpen {
		t.Fatalf("breaker state after failure-rate trip = %v, want open", got)
	}

	// While open (and still in cooldown): refused fast, no dial attempted.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	_, err = srv.ScoreBatch(ctx, rows)
	cancel()
	if !errors.Is(err, ErrPartyUnavailable) {
		t.Fatalf("open-breaker round error = %v, want ErrPartyUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Errorf("open-breaker refusal took %v; it must not wait on the WAN", elapsed)
	}

	// Heal: a fresh pair behind the dialer, the worker serving its end.
	srvEnd2, wkEnd2 := closablePair()
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run(wkEnd2) }()
	healed <- srvEnd2
	time.Sleep(700 * time.Millisecond) // let the cooldown elapse

	// The probe round re-dials, re-opens the session, and recovers.
	margins, _, err := srv.ScoreRows(rows)
	if err != nil {
		t.Fatalf("probe round after heal: %v", err)
	}
	for i, mg := range margins {
		if math.Abs(mg-want[rows[i]]) > 1e-9 {
			t.Fatalf("recovered margin[%d] = %g, want %g", i, mg, want[rows[i]])
		}
	}
	if got := srv.Breaker(0).State(); got != BreakerClosed {
		t.Errorf("breaker state after recovery = %v, want closed", got)
	}
	if got := srv.Breaker(0).Opens(); got != 1 {
		t.Errorf("breaker opens = %d, want 1", got)
	}
	if srv.Metrics().Retries() < 1 {
		t.Errorf("retries counter = %d, want >= 1 (the probe re-dial)", srv.Metrics().Retries())
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}
}

// switchTransport routes Sends through one of three personalities the
// test flips at runtime: clean passthrough, a lossy/laggy fault link, or
// a total black hole. Receives always pass through (the fault layer
// models the B→A direction).
type switchTransport struct {
	inner core.Transport
	mild  core.Transport
	hole  core.Transport
	mode  atomic.Int32 // 0 clean, 1 mild, 2 black hole
}

func newSwitchTransport(t *testing.T, inner core.Transport) *switchTransport {
	t.Helper()
	mildCfg, err := fault.ParseSpec("seed=7,drop=0.3,delay=0.5,delayfor=2ms")
	if err != nil {
		t.Fatal(err)
	}
	holeCfg, err := fault.ParseSpec("seed=11,drop=1")
	if err != nil {
		t.Fatal(err)
	}
	return &switchTransport{
		inner: inner,
		mild:  fault.Wrap(inner, mildCfg),
		hole:  fault.Wrap(inner, holeCfg),
	}
}

func (s *switchTransport) Send(b []byte) error {
	switch s.mode.Load() {
	case 1:
		return s.mild.Send(b)
	case 2:
		return s.hole.Send(b)
	default:
		return s.inner.Send(b)
	}
}

func (s *switchTransport) Receive() ([]byte, error) { return s.inner.Receive() }

// postRow posts one single-row score request with an explicit deadline
// header and returns the status, decoded body, and elapsed wall time.
func postRow(client *http.Client, url string, row int32, deadline string) (int, scoreResponse, time.Duration, error) {
	body, _ := json.Marshal(scoreRequest{Row: &row})
	req, err := http.NewRequest(http.MethodPost, url+"/score", bytes.NewReader(body))
	if err != nil {
		return 0, scoreResponse{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if deadline != "" {
		req.Header.Set(DeadlineHeader, deadline)
	}
	start := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		return 0, scoreResponse{}, elapsed, err
	}
	defer resp.Body.Close()
	var sr scoreResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return resp.StatusCode, scoreResponse{}, elapsed, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, sr, elapsed, nil
}

// getBody fetches a path off the test server and returns status + body.
func getBody(t *testing.T, client *http.Client, url, path string) (int, string) {
	t.Helper()
	resp, err := client.Get(url + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

// metricValue extracts an integer metric from a /metricsz dump.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in /metricsz output", name)
	return 0
}

// TestServeChaosHTTPNeverHangs drives the full HTTP path through fault
// phases — clean, lossy, black-holed, healed — and asserts the hardening
// contract: every request resolves within its budget as success, shed,
// or partial (200/429/503/504), the breaker trips and recovers, and
// /metricsz accounts for all of it.
func TestServeChaosHTTPNeverHangs(t *testing.T) {
	parts := twoParts(t, 64, 3)
	m := trainModel(t, parts, 6)
	want := predictAll(t, m, parts)

	serverTr, workerTr := pipePair()
	sw := newSwitchTransport(t, serverTr)

	wreg := NewRegistry()
	if err := wreg.Publish(Model{Version: 1, Fragment: m.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	worker := NewPassiveWorker(0, parts[0], wreg)
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run(workerTr) }()

	breg := NewRegistry()
	if err := breg.Publish(bModel(1, m)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Data:     parts[1],
		Registry: breg,
		Workers:  []core.Transport{sw},
		Policy:   ServePartial,
		Batch:    BatcherConfig{MaxBatch: 8, MaxWait: time.Millisecond, MaxQueue: 4},
		Deadline: 500 * time.Millisecond,
		Breaker:  BreakerConfig{ConsecTimeouts: 2, Cooldown: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Open(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	// A request must never outlive its budget by more than the batching
	// and scheduling slack; 3s is a very generous bound for a 150ms
	// budget, and any real hang trips it.
	const bound = 3 * time.Second
	checkBounded := func(phase string, elapsed time.Duration) {
		t.Helper()
		if elapsed > bound {
			t.Fatalf("%s: request took %v — the no-hang contract is broken", phase, elapsed)
		}
	}

	if code, body := getBody(t, client, ts.URL, "/readyz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthy /readyz = %d %q, want 200 ok", code, body)
	}

	// Phase 1 — clean: full-fidelity margins.
	for i := 0; i < 10; i++ {
		row := int32(i % len(want))
		code, sr, elapsed, err := postRow(client, ts.URL, row, "")
		if err != nil || code != http.StatusOK {
			t.Fatalf("clean phase: row %d → %d, %v", row, code, err)
		}
		checkBounded("clean", elapsed)
		if sr.Partial || sr.Margin == nil || math.Abs(*sr.Margin-want[row]) > 1e-9 {
			t.Fatalf("clean phase: row %d margin %v (partial=%v), want %g", row, sr.Margin, sr.Partial, want[row])
		}
	}

	// Phase 2 — lossy and laggy: every outcome in the contract is legal,
	// hanging is not.
	sw.mode.Store(1)
	for i := 0; i < 15; i++ {
		row := int32(i % len(want))
		code, _, elapsed, err := postRow(client, ts.URL, row, "150ms")
		if err != nil {
			t.Fatalf("lossy phase: row %d: %v", row, err)
		}
		checkBounded("lossy", elapsed)
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("lossy phase: row %d → unexpected status %d", row, code)
		}
	}

	// Phase 3 — black hole + burst: concurrent chains overload the bounded
	// queue (shed), time out rounds (breaker trips), then ride degraded
	// serving.
	sw.mode.Store(2)
	var wg sync.WaitGroup
	for c := 0; c < 12; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				row := int32((c + i) % len(want))
				code, _, elapsed, err := postRow(client, ts.URL, row, "150ms")
				if err != nil {
					t.Errorf("burst chain %d: %v", c, err)
					return
				}
				checkBounded("burst", elapsed)
				switch code {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				default:
					t.Errorf("burst chain %d → unexpected status %d", c, code)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// Deterministic tail: sequential requests against the black hole must
	// settle into fast degraded 200s once the breaker is open (any that
	// arrive before the trip time out and feed it).
	sawPartial := false
	for i := 0; i < 20 && !sawPartial; i++ {
		code, sr, elapsed, err := postRow(client, ts.URL, 0, "150ms")
		if err != nil {
			t.Fatal(err)
		}
		checkBounded("degraded", elapsed)
		if code == http.StatusOK && sr.Partial {
			if len(sr.Missing) != 1 || sr.Missing[0] != 0 {
				t.Fatalf("degraded response missing = %v, want [0]", sr.Missing)
			}
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("black-hole phase never produced a degraded 200")
	}
	if code, body := getBody(t, client, ts.URL, "/readyz"); code != http.StatusOK || !strings.Contains(body, "degraded") {
		t.Errorf("/readyz with open breaker under ServePartial = %d %q, want 200 degraded", code, body)
	}
	if code, _ := getBody(t, client, ts.URL, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during degradation = %d, want 200 (liveness is not readiness)", code)
	}

	// Phase 4 — heal: after the cooldown a probe round closes the breaker
	// and full-fidelity serving returns.
	sw.mode.Store(0)
	recovered := false
	for i := 0; i < 80 && !recovered; i++ {
		code, sr, elapsed, err := postRow(client, ts.URL, 0, "500ms")
		if err != nil {
			t.Fatal(err)
		}
		checkBounded("heal", elapsed)
		if code == http.StatusOK && !sr.Partial && sr.Margin != nil && math.Abs(*sr.Margin-want[0]) < 1e-9 {
			recovered = true
		}
		if !recovered {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !recovered {
		t.Fatal("server never recovered full-fidelity serving after the link healed")
	}
	if code, body := getBody(t, client, ts.URL, "/readyz"); code != http.StatusOK || !strings.HasPrefix(body, "ok\n") {
		t.Errorf("healed /readyz = %d %q, want plain ok", code, body)
	}

	// The ledger: every failure mode the chaos run exercised is counted.
	code, metrics := getBody(t, client, ts.URL, "/metricsz")
	if code != http.StatusOK {
		t.Fatalf("/metricsz = %d", code)
	}
	if v := metricValue(t, metrics, "serve_shed_total"); v == 0 {
		t.Error("serve_shed_total = 0, want > 0 after the burst")
	}
	if v := metricValue(t, metrics, "serve_timeouts_total"); v == 0 {
		t.Error("serve_timeouts_total = 0, want > 0 after the black hole")
	}
	if v := metricValue(t, metrics, "serve_degraded_total"); v == 0 {
		t.Error("serve_degraded_total = 0, want > 0 after degraded serving")
	}
	if !strings.Contains(metrics, `serve_breaker_state{party="0"`) {
		t.Error("/metricsz does not report breaker state")
	}
	var opens int64
	if _, err := fmt.Sscanf(findLine(metrics, `serve_breaker_opens_total{party="0"}`), `serve_breaker_opens_total{party="0"} %d`, &opens); err != nil || opens < 1 {
		t.Errorf("serve_breaker_opens_total = %d (%v), want >= 1", opens, err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}
}

// findLine returns the first line of body starting with prefix.
func findLine(body, prefix string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

// TestReadyzGates: /readyz refuses until a model is published and the
// scoring session is open, then reflects worker health per the degraded
// policy; /healthz stays a pure liveness check throughout.
func TestReadyzGates(t *testing.T) {
	parts := twoParts(t, 32, 4)
	m := trainModel(t, parts, 4)

	get := func(srv *Server, path string) (int, string) {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, rec.Body.String()
	}

	build := func(policy DegradedPolicy) (*Server, *Registry, chan error) {
		serverTr, workerTr := pipePair()
		wreg := NewRegistry()
		if err := wreg.Publish(Model{Version: 1, Fragment: m.Parties[0]}); err != nil {
			t.Fatal(err)
		}
		worker := NewPassiveWorker(0, parts[0], wreg)
		done := make(chan error, 1)
		go func() { done <- worker.Run(workerTr) }()
		breg := NewRegistry()
		srv, err := NewServer(ServerConfig{Data: parts[1], Registry: breg, Workers: []core.Transport{serverTr}, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		return srv, breg, done
	}

	srv, breg, workerDone := build(ServePartial)
	if code, _ := get(srv, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz before readiness = %d, want 200", code)
	}
	if code, body := get(srv, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no model") {
		t.Errorf("/readyz without model = %d %q, want 503 no model", code, body)
	}
	if err := breg.Publish(bModel(1, m)); err != nil {
		t.Fatal(err)
	}
	if code, body := get(srv, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "session") {
		t.Errorf("/readyz without session = %d %q, want 503 session not open", code, body)
	}
	if err := srv.Open(); err != nil {
		t.Fatal(err)
	}
	if code, body := get(srv, "/readyz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Errorf("/readyz when serving = %d %q, want 200 ok", code, body)
	}
	// A downed worker under ServePartial: still ready, flagged degraded.
	srv.workers[0].alive.Store(false)
	if code, body := get(srv, "/readyz"); code != http.StatusOK || !strings.Contains(body, "degraded") {
		t.Errorf("/readyz degraded = %d %q, want 200 degraded", code, body)
	}
	srv.workers[0].alive.Store(true)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}
	if code, _ := get(srv, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz after Close = %d, want 503", code)
	}

	// The same downed worker under FailClosed makes the server not ready.
	srv2, breg2, workerDone2 := build(FailClosed)
	if err := breg2.Publish(bModel(1, m)); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Open(); err != nil {
		t.Fatal(err)
	}
	srv2.workers[0].alive.Store(false)
	if code, body := get(srv2, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "unavailable") {
		t.Errorf("/readyz failclosed degraded = %d %q, want 503 unavailable", code, body)
	}
	srv2.workers[0].alive.Store(true)
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone2; err != nil {
		t.Fatal(err)
	}
}
