package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordingScorer counts flushes and records batch sizes; margin = row*2.
type recordingScorer struct {
	mu      sync.Mutex
	batches [][]int32
	version uint64
	err     error
}

func (s *recordingScorer) score(rows []int32) ([]float64, uint64, error) {
	s.mu.Lock()
	s.batches = append(s.batches, append([]int32(nil), rows...))
	s.mu.Unlock()
	if s.err != nil {
		return nil, 0, s.err
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = float64(r) * 2
	}
	return out, s.version, nil
}

func (s *recordingScorer) flushes() [][]int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]int32(nil), s.batches...)
}

// scoreN fires n concurrent Score calls for rows 0..n-1 and verifies every
// margin.
func scoreN(t *testing.T, b *Batcher, n int, wantVersion uint64) {
	t.Helper()
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(row int32) {
			defer wg.Done()
			margin, version, err := b.Score(context.Background(), row)
			if err != nil || margin != float64(row)*2 || version != wantVersion {
				failed.Add(1)
			}
		}(int32(i))
	}
	wg.Wait()
	if failed.Load() > 0 {
		t.Fatalf("%d of %d scores wrong", failed.Load(), n)
	}
}

// TestBatcherFlushBySize: a full batch flushes immediately, without
// waiting for the deadline.
func TestBatcherFlushBySize(t *testing.T) {
	sc := &recordingScorer{version: 7}
	b := NewBatcher(BatcherConfig{MaxBatch: 4, MaxWait: time.Hour}, sc.score)
	defer b.Close()
	start := time.Now()
	scoreN(t, b, 8, 7)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("size-triggered flush took %v; deadline timer must not be involved", elapsed)
	}
	for _, batch := range sc.flushes() {
		if len(batch) > 4 {
			t.Errorf("batch of %d exceeds MaxBatch 4", len(batch))
		}
	}
	if n := len(sc.flushes()); n < 2 {
		t.Errorf("8 requests over MaxBatch 4 flushed %d times", n)
	}
}

// TestBatcherFlushByDeadline: a partial batch flushes once MaxWait
// elapses.
func TestBatcherFlushByDeadline(t *testing.T) {
	sc := &recordingScorer{version: 1}
	b := NewBatcher(BatcherConfig{MaxBatch: 1000, MaxWait: 20 * time.Millisecond}, sc.score)
	defer b.Close()
	scoreN(t, b, 3, 1)
	flushes := sc.flushes()
	if len(flushes) != 1 {
		t.Fatalf("expected one deadline flush, got %d", len(flushes))
	}
	if len(flushes[0]) != 3 {
		t.Errorf("deadline flush carried %d rows, want 3", len(flushes[0]))
	}
}

// TestBatcherShutdownDrain: Close flushes the pending batch instead of
// dropping it, and later Scores fail with ErrClosed.
func TestBatcherShutdownDrain(t *testing.T) {
	sc := &recordingScorer{version: 3}
	b := NewBatcher(BatcherConfig{MaxBatch: 1000, MaxWait: time.Hour}, sc.score)

	const n = 3
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(row int32) {
			defer wg.Done()
			margin, version, err := b.Score(context.Background(), row)
			if err != nil || margin != float64(row)*2 || version != 3 {
				failed.Add(1)
			}
		}(int32(i))
	}
	// Wait until all three are enqueued (none can flush: MaxBatch 1000,
	// MaxWait 1h), then drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		pending := len(b.buf)
		b.mu.Unlock()
		if pending == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests pending", pending, n)
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	wg.Wait()
	if failed.Load() > 0 {
		t.Fatalf("%d drained scores wrong", failed.Load())
	}
	flushes := sc.flushes()
	if len(flushes) != 1 || len(flushes[0]) != n {
		t.Errorf("drain produced %d flushes %v, want one of %d rows", len(flushes), flushes, n)
	}
	if _, _, err := b.Score(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("Score after Close = %v, want ErrClosed", err)
	}
}

// TestBatcherErrorFansOut: a failed round fails every waiter in it.
func TestBatcherErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	sc := &recordingScorer{err: boom}
	b := NewBatcher(BatcherConfig{MaxBatch: 2, MaxWait: time.Hour}, sc.score)
	defer b.Close()
	var wg sync.WaitGroup
	var errs atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(row int32) {
			defer wg.Done()
			if _, _, err := b.Score(context.Background(), row); errors.Is(err, boom) {
				errs.Add(1)
			}
		}(int32(i))
	}
	wg.Wait()
	if errs.Load() != 2 {
		t.Errorf("%d of 2 waiters saw the round error", errs.Load())
	}
}

// TestBatcherContextCancel: an abandoned waiter unblocks on its context
// without wedging the flush.
func TestBatcherContextCancel(t *testing.T) {
	sc := &recordingScorer{}
	b := NewBatcher(BatcherConfig{MaxBatch: 1000, MaxWait: time.Hour}, sc.score)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := b.Score(ctx, 1)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Score = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Score did not unblock on context cancellation")
	}
	b.Close() // must still drain the abandoned row without blocking
}
