package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordingScorer counts flushes and records batch sizes; margin = row*2.
type recordingScorer struct {
	mu      sync.Mutex
	batches [][]int32
	version uint64
	err     error
}

func (s *recordingScorer) score(_ context.Context, rows []int32) (BatchResult, error) {
	s.mu.Lock()
	s.batches = append(s.batches, append([]int32(nil), rows...))
	s.mu.Unlock()
	if s.err != nil {
		return BatchResult{}, s.err
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = float64(r) * 2
	}
	return BatchResult{Margins: out, Version: s.version}, nil
}

func (s *recordingScorer) flushes() [][]int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]int32(nil), s.batches...)
}

// scoreN fires n concurrent Score calls for rows 0..n-1 and verifies every
// margin.
func scoreN(t *testing.T, b *Batcher, n int, wantVersion uint64) {
	t.Helper()
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(row int32) {
			defer wg.Done()
			margin, version, err := b.Score(context.Background(), row)
			if err != nil || margin != float64(row)*2 || version != wantVersion {
				failed.Add(1)
			}
		}(int32(i))
	}
	wg.Wait()
	if failed.Load() > 0 {
		t.Fatalf("%d of %d scores wrong", failed.Load(), n)
	}
}

// TestBatcherFlushBySize: a full batch flushes immediately, without
// waiting for the deadline.
func TestBatcherFlushBySize(t *testing.T) {
	sc := &recordingScorer{version: 7}
	b := NewBatcher(BatcherConfig{MaxBatch: 4, MaxWait: time.Hour}, sc.score)
	defer b.Close()
	start := time.Now()
	scoreN(t, b, 8, 7)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("size-triggered flush took %v; deadline timer must not be involved", elapsed)
	}
	for _, batch := range sc.flushes() {
		if len(batch) > 4 {
			t.Errorf("batch of %d exceeds MaxBatch 4", len(batch))
		}
	}
	if n := len(sc.flushes()); n < 2 {
		t.Errorf("8 requests over MaxBatch 4 flushed %d times", n)
	}
}

// TestBatcherFlushByDeadline: a partial batch flushes once MaxWait
// elapses.
func TestBatcherFlushByDeadline(t *testing.T) {
	sc := &recordingScorer{version: 1}
	b := NewBatcher(BatcherConfig{MaxBatch: 1000, MaxWait: 20 * time.Millisecond}, sc.score)
	defer b.Close()
	scoreN(t, b, 3, 1)
	flushes := sc.flushes()
	if len(flushes) != 1 {
		t.Fatalf("expected one deadline flush, got %d", len(flushes))
	}
	if len(flushes[0]) != 3 {
		t.Errorf("deadline flush carried %d rows, want 3", len(flushes[0]))
	}
}

// TestBatcherShutdownDrain: Close flushes the pending batch instead of
// dropping it, and later Scores fail with ErrClosed.
func TestBatcherShutdownDrain(t *testing.T) {
	sc := &recordingScorer{version: 3}
	b := NewBatcher(BatcherConfig{MaxBatch: 1000, MaxWait: time.Hour}, sc.score)

	const n = 3
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(row int32) {
			defer wg.Done()
			margin, version, err := b.Score(context.Background(), row)
			if err != nil || margin != float64(row)*2 || version != 3 {
				failed.Add(1)
			}
		}(int32(i))
	}
	// Wait until all three are enqueued (none can flush: MaxBatch 1000,
	// MaxWait 1h), then drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		pending := len(b.buf)
		b.mu.Unlock()
		if pending == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests pending", pending, n)
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	wg.Wait()
	if failed.Load() > 0 {
		t.Fatalf("%d drained scores wrong", failed.Load())
	}
	flushes := sc.flushes()
	if len(flushes) != 1 || len(flushes[0]) != n {
		t.Errorf("drain produced %d flushes %v, want one of %d rows", len(flushes), flushes, n)
	}
	if _, _, err := b.Score(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("Score after Close = %v, want ErrClosed", err)
	}
}

// TestBatcherErrorFansOut: a failed round fails every waiter in it.
func TestBatcherErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	sc := &recordingScorer{err: boom}
	b := NewBatcher(BatcherConfig{MaxBatch: 2, MaxWait: time.Hour}, sc.score)
	defer b.Close()
	var wg sync.WaitGroup
	var errs atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(row int32) {
			defer wg.Done()
			if _, _, err := b.Score(context.Background(), row); errors.Is(err, boom) {
				errs.Add(1)
			}
		}(int32(i))
	}
	wg.Wait()
	if errs.Load() != 2 {
		t.Errorf("%d of 2 waiters saw the round error", errs.Load())
	}
}

// TestBatcherQueueBound: requests beyond MaxQueue are shed with
// ErrOverloaded instead of queueing, and admission re-opens once the
// queue drains.
func TestBatcherQueueBound(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	b := NewBatcher(BatcherConfig{MaxBatch: 1000, MaxWait: time.Hour, MaxQueue: 2},
		func(_ context.Context, rows []int32) (BatchResult, error) {
			calls.Add(1)
			<-release
			return BatchResult{Margins: make([]float64, len(rows)), Version: 1}, nil
		})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(row int32) {
			defer wg.Done()
			if _, _, err := b.Score(context.Background(), row); err != nil {
				t.Errorf("admitted request failed: %v", err)
			}
		}(int32(i))
	}
	// Wait until both are queued (MaxBatch 1000, MaxWait 1h: nothing can
	// flush them).
	deadline := time.Now().Add(5 * time.Second)
	for b.Queued() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 2", b.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	// The 3rd request must shed immediately, not block.
	start := time.Now()
	if _, _, err := b.Score(context.Background(), 9); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-quota Score = %v, want ErrOverloaded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("shed decision blocked")
	}
	close(release)
	b.Close() // drains the two queued rows
	wg.Wait()
	if b.Queued() != 0 {
		t.Errorf("queued = %d after drain, want 0", b.Queued())
	}
	if calls.Load() == 0 {
		t.Error("queued rows never scored")
	}
}

// TestBatcherPartialFansOut: a degraded round's missing-party list reaches
// every waiter in the batch.
func TestBatcherPartialFansOut(t *testing.T) {
	b := NewBatcher(BatcherConfig{MaxBatch: 2, MaxWait: time.Hour},
		func(_ context.Context, rows []int32) (BatchResult, error) {
			return BatchResult{Margins: make([]float64, len(rows)), Version: 5, Missing: []int{0, 2}}, nil
		})
	defer b.Close()
	var wg sync.WaitGroup
	var partial atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(row int32) {
			defer wg.Done()
			res, err := b.ScoreRow(context.Background(), row)
			if err != nil {
				t.Errorf("ScoreRow: %v", err)
				return
			}
			if res.Partial() && len(res.Missing) == 2 && res.Version == 5 {
				partial.Add(1)
			}
		}(int32(i))
	}
	wg.Wait()
	if partial.Load() != 2 {
		t.Errorf("%d of 2 waiters saw the partial outcome", partial.Load())
	}
}

// TestBatcherDeadlinePropagates: the flush context carries the most
// patient waiter's deadline.
func TestBatcherDeadlinePropagates(t *testing.T) {
	got := make(chan time.Time, 1)
	b := NewBatcher(BatcherConfig{MaxBatch: 1, MaxWait: time.Hour},
		func(ctx context.Context, rows []int32) (BatchResult, error) {
			dl, _ := ctx.Deadline()
			got <- dl
			return BatchResult{Margins: make([]float64, len(rows))}, nil
		})
	defer b.Close()
	want := time.Now().Add(250 * time.Millisecond)
	ctx, cancel := context.WithDeadline(context.Background(), want)
	defer cancel()
	if _, _, err := b.Score(ctx, 0); err != nil {
		t.Fatal(err)
	}
	dl := <-got
	if dl.IsZero() || dl.After(want.Add(time.Millisecond)) || dl.Before(want.Add(-time.Millisecond)) {
		t.Errorf("flush deadline %v, want ~%v", dl, want)
	}
}

// TestBatcherContextCancel: an abandoned waiter unblocks on its context
// without wedging the flush.
func TestBatcherContextCancel(t *testing.T) {
	sc := &recordingScorer{}
	b := NewBatcher(BatcherConfig{MaxBatch: 1000, MaxWait: time.Hour}, sc.score)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := b.Score(ctx, 1)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Score = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Score did not unblock on context cancellation")
	}
	b.Close() // must still drain the abandoned row without blocking
}
