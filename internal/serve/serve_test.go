package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vf2boost/internal/core"
	"vf2boost/internal/dataset"
	"vf2boost/internal/mq"
)

// --- shared scaffolding ------------------------------------------------

func twoParts(t testing.TB, rows int, seed int64) []*dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{Rows: rows, Cols: 10, Density: 1, Dense: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.VerticalSplit([]int{5, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

func trainModel(t testing.TB, parts []*dataset.Dataset, trees int) *core.FederatedModel {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Scheme = core.SchemeMock
	cfg.Trees = trees
	cfg.MaxDepth = 3
	cfg.MaxBins = 8
	sess, err := core.NewSession(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Train()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func predictAll(t testing.TB, m *core.FederatedModel, parts []*dataset.Dataset) []float64 {
	t.Helper()
	want, err := m.PredictAll(parts)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func bModel(version uint64, m *core.FederatedModel) Model {
	return Model{
		Version:      version,
		Fragment:     m.Parties[len(m.Parties)-1],
		LearningRate: m.LearningRate,
		BaseScore:    m.BaseScore,
	}
}

// tcpTransport adapts a gateway producer/consumer pair to core.Transport,
// the same way cmd/vf2boost does.
type tcpTransport struct {
	prod *mq.RemoteProducer
	cons *mq.RemoteConsumer
}

func (t tcpTransport) Send(b []byte) error      { return t.prod.Send(b) }
func (t tcpTransport) Receive() ([]byte, error) { return t.cons.Receive() }

func dialTCP(t testing.TB, addr, secret, sendTopic, recvTopic string) core.Transport {
	t.Helper()
	tok := func(topic string) string { return mq.Token([]byte(secret), topic) }
	prod, err := mq.DialProducer(addr, sendTopic, tok(sendTopic))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := mq.DialConsumer(addr, recvTopic, tok(recvTopic))
	if err != nil {
		t.Fatal(err)
	}
	return tcpTransport{prod: prod, cons: cons}
}

// pipeEnd is an in-memory Transport over buffered channels.
type pipeEnd struct {
	send chan<- []byte
	recv <-chan []byte
}

func (p pipeEnd) Send(b []byte) error {
	p.send <- append([]byte(nil), b...)
	return nil
}

func (p pipeEnd) Receive() ([]byte, error) {
	b, ok := <-p.recv
	if !ok {
		return nil, io.EOF
	}
	return b, nil
}

func pipePair() (core.Transport, core.Transport) {
	b2a := make(chan []byte, 16)
	a2b := make(chan []byte, 16)
	return pipeEnd{send: a2b, recv: b2a}, pipeEnd{send: b2a, recv: a2b}
}

func postScore(ts *httptest.Server, row int32) (float64, uint64, error) {
	body, _ := json.Marshal(scoreRequest{Row: &row})
	resp, err := ts.Client().Post(ts.URL+"/score", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return 0, 0, fmt.Errorf("POST /score: %s: %s", resp.Status, msg)
	}
	var sr scoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return 0, 0, err
	}
	if sr.Margin == nil {
		return 0, 0, fmt.Errorf("response missing margin")
	}
	return *sr.Margin, sr.Version, nil
}

// firePhase issues n concurrent single-row HTTP requests and checks every
// margin against the expectation for the version the server reports.
func firePhase(t *testing.T, ts *httptest.Server, n int, wantVersion uint64, want []float64) {
	t.Helper()
	rows := len(want)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64)
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i := 0; i < n; i++ {
		row := int32(i % rows)
		wg.Add(1)
		sem <- struct{}{}
		go func(row int32) {
			defer wg.Done()
			defer func() { <-sem }()
			margin, version, err := postScore(ts, row)
			switch {
			case err != nil:
				fail(err)
			case version != wantVersion:
				fail(fmt.Errorf("row %d scored on version %d, want %d", row, version, wantVersion))
			case math.Abs(margin-want[row]) > 1e-9:
				fail(fmt.Errorf("row %d margin %g, want %g (version %d)", row, margin, want[row], version))
			}
		}(row)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
}

// --- the acceptance E2E -------------------------------------------------

// TestOnlineScoringEndToEnd: Party B server plus one passive sidecar
// attached through the mq TCP gateway serve >1000 HTTP scoring requests
// via micro-batching, with a hot model swap mid-stream; every margin must
// equal FederatedModel.PredictMargin for the version the batch was pinned
// to.
func TestOnlineScoringEndToEnd(t *testing.T) {
	parts := twoParts(t, 300, 91)
	m1 := trainModel(t, parts, 3)
	m2 := trainModel(t, parts, 5)
	want1 := predictAll(t, m1, parts)
	want2 := predictAll(t, m2, parts)

	secret := "serve-secret"
	broker := mq.NewBroker(mq.WithAuth([]byte(secret)))
	defer broker.Close()
	gw := mq.NewGateway(broker)
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// Passive sidecar, dialed through the gateway.
	wreg := NewRegistry()
	if err := wreg.Publish(Model{Version: 1, Fragment: m1.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	worker := NewPassiveWorker(0, parts[0], wreg)
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run(dialTCP(t, addr, secret, "sa02b", "sb2a0")) }()

	// Party B server, also through the gateway.
	breg := NewRegistry()
	if err := breg.Publish(bModel(1, m1)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Data:     parts[1],
		Registry: breg,
		Workers:  []core.Transport{dialTCP(t, addr, secret, "sb2a0", "sa02b")},
		Batch:    BatcherConfig{MaxBatch: 32, MaxWait: time.Millisecond},
		Session:  "e2e-test",
		Broker:   broker,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Open(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const half = 600 // 1200 total, swap in the middle
	firePhase(t, ts, half, 1, want1)

	// Hot swap: workers learn the new version before B starts pinning it.
	if err := wreg.Publish(Model{Version: 2, Fragment: m2.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	if err := breg.Publish(bModel(2, m2)); err != nil {
		t.Fatal(err)
	}
	firePhase(t, ts, half, 2, want2)

	met := srv.Metrics()
	if met.Requests() < 2*half {
		t.Errorf("metrics saw %d requests, want >= %d", met.Requests(), 2*half)
	}
	if met.Batches() >= 2*half {
		t.Errorf("%d batches for %d requests — micro-batching never coalesced", met.Batches(), 2*half)
	}
	if met.Errors() != 0 {
		t.Errorf("%d request errors", met.Errors())
	}

	// The multi-row direct path answers in one round.
	body, _ := json.Marshal(scoreRequest{Rows: []int32{0, 1, 2}})
	resp, err := ts.Client().Post(ts.URL+"/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr scoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Version != 2 || len(sr.Margins) != 3 {
		t.Fatalf("rows response: version %d, %d margins", sr.Version, len(sr.Margins))
	}
	for i, m := range sr.Margins {
		if math.Abs(m-want2[i]) > 1e-9 {
			t.Errorf("rows margin %d = %g, want %g", i, m, want2[i])
		}
	}

	// Observability endpoints.
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hr.Status)
	}
	hr.Body.Close()
	mr, err := ts.Client().Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		"serve_requests_total", "serve_batches_total", "serve_qps",
		"serve_request_latency_ms", "serve_batch_size", "serve_model_version 2",
		"mq_topic_depth",
	} {
		if !strings.Contains(string(metricsText), want) {
			t.Errorf("metricsz missing %q:\n%s", want, metricsText)
		}
	}

	// Clean close: the sidecar acknowledges and its Run returns nil.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit after session close")
	}
	if worker.Rounds() == 0 {
		t.Error("worker served no rounds")
	}
}

// gatedTransport blocks each Send until a token arrives, so a test can
// hold a response in flight.
type gatedTransport struct {
	core.Transport
	gate chan struct{}
}

func (g gatedTransport) Send(b []byte) error {
	<-g.gate
	return g.Transport.Send(b)
}

// TestHotSwapPinsInFlightBatch: a batch whose round is already in flight
// when a new version is published must finish on the version it pinned;
// the next batch scores on the new one.
func TestHotSwapPinsInFlightBatch(t *testing.T) {
	parts := twoParts(t, 120, 92)
	m1 := trainModel(t, parts, 2)
	m2 := trainModel(t, parts, 4)
	want1 := predictAll(t, m1, parts)
	want2 := predictAll(t, m2, parts)

	serverTr, workerTr := pipePair()
	gate := make(chan struct{}, 16)

	wreg := NewRegistry()
	if err := wreg.Publish(Model{Version: 1, Fragment: m1.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	worker := NewPassiveWorker(0, parts[0], wreg)
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run(gatedTransport{Transport: workerTr, gate: gate}) }()

	breg := NewRegistry()
	if err := breg.Publish(bModel(1, m1)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Data:     parts[1],
		Registry: breg,
		Workers:  []core.Transport{serverTr},
		Session:  "swap-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // open ack
	if err := srv.Open(); err != nil {
		t.Fatal(err)
	}

	rows := []int32{0, 5, 17}
	type roundResult struct {
		margins []float64
		version uint64
		err     error
	}
	resCh := make(chan roundResult, 1)
	go func() {
		margins, version, err := srv.ScoreRows(rows)
		resCh <- roundResult{margins, version, err}
	}()

	// Wait until the worker has computed the round (its response is now
	// blocked on the gate) — the batch is genuinely in flight.
	deadline := time.Now().Add(5 * time.Second)
	for worker.Rounds() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("round never reached the worker")
		}
		time.Sleep(time.Millisecond)
	}

	// Hot swap while the round is in flight.
	if err := wreg.Publish(Model{Version: 2, Fragment: m2.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	if err := breg.Publish(bModel(2, m2)); err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // release the in-flight response

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.version != 1 {
		t.Fatalf("in-flight batch scored on version %d, want pinned version 1", res.version)
	}
	for k, r := range rows {
		if math.Abs(res.margins[k]-want1[r]) > 1e-12 {
			t.Errorf("in-flight row %d margin %g, want v1 margin %g", r, res.margins[k], want1[r])
		}
	}

	// The next batch pins the freshly-published version.
	gate <- struct{}{}
	margins, version, err := srv.ScoreRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Fatalf("post-swap batch scored on version %d, want 2", version)
	}
	for k, r := range rows {
		if math.Abs(margins[k]-want2[r]) > 1e-12 {
			t.Errorf("post-swap row %d margin %g, want v2 margin %g", r, margins[k], want2[r])
		}
	}

	gate <- struct{}{} // close ack
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}
}

// TestWorkerStructuredErrorsKeepSession: per-round errors (unknown
// version, out-of-range row) are answered, not fatal — the session serves
// subsequent valid rounds.
func TestWorkerStructuredErrorsKeepSession(t *testing.T) {
	parts := twoParts(t, 80, 93)
	m1 := trainModel(t, parts, 2)

	serverTr, workerTr := pipePair()
	wreg := NewRegistry()
	if err := wreg.Publish(Model{Version: 1, Fragment: m1.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	worker := NewPassiveWorker(0, parts[0], wreg)
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run(workerTr) }()

	l := core.NewLink(serverTr)
	if err := l.Send(core.MsgScoreOpen{Proto: core.ScoreProtoVersion, Session: "err-test"}); err != nil {
		t.Fatal(err)
	}
	msg, err := l.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack := msg.(core.MsgScoreOpenAck); ack.Error != "" || ack.Rows != 80 {
		t.Fatalf("open ack: %+v", ack)
	}

	// Round 1: unknown version → structured error.
	if err := l.Send(core.MsgScoreRequest{Round: 1, Version: 99, Rows: []int32{0}}); err != nil {
		t.Fatal(err)
	}
	msg, _ = l.Recv()
	if resp := msg.(core.MsgScoreResponse); resp.Error == "" || resp.Round != 1 {
		t.Fatalf("unknown version answered %+v", resp)
	}

	// Round 2: out-of-range row → structured error.
	if err := l.Send(core.MsgScoreRequest{Round: 2, Version: 1, Rows: []int32{5000}}); err != nil {
		t.Fatal(err)
	}
	msg, _ = l.Recv()
	if resp := msg.(core.MsgScoreResponse); resp.Error == "" || resp.Round != 2 {
		t.Fatalf("out-of-range row answered %+v", resp)
	}

	// Round 3: valid — the session survived both errors.
	if err := l.Send(core.MsgScoreRequest{Round: 3, Version: 1, Rows: []int32{0, 1}}); err != nil {
		t.Fatal(err)
	}
	msg, _ = l.Recv()
	if resp := msg.(core.MsgScoreResponse); resp.Error != "" || resp.Round != 3 {
		t.Fatalf("valid round after errors answered %+v", resp)
	}
	if worker.RoundErrors() != 2 {
		t.Errorf("worker counted %d round errors, want 2", worker.RoundErrors())
	}

	// Clean close.
	if err := l.Send(core.MsgScoreClose{Reason: "test over"}); err != nil {
		t.Fatal(err)
	}
	if msg, _ = l.Recv(); msg == nil {
		t.Fatal("no close ack")
	}
	if _, ok := msg.(core.MsgScoreCloseAck); !ok {
		t.Fatalf("close answered %T", msg)
	}
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}
}

// TestServerValidation covers wiring validation and the no-model path.
func TestServerValidation(t *testing.T) {
	parts := twoParts(t, 40, 94)
	reg := NewRegistry()
	if _, err := NewServer(ServerConfig{Registry: reg, Workers: []core.Transport{nil}}); err == nil {
		t.Error("server without data accepted")
	}
	if _, err := NewServer(ServerConfig{Data: parts[1], Workers: []core.Transport{nil}}); err == nil {
		t.Error("server without registry accepted")
	}
	if _, err := NewServer(ServerConfig{Data: parts[1], Registry: reg}); err == nil {
		t.Error("server without workers accepted")
	}
	serverTr, _ := pipePair()
	srv, err := NewServer(ServerConfig{Data: parts[1], Registry: reg, Workers: []core.Transport{serverTr}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.ScoreRows([]int32{0}); err != ErrNoModel {
		t.Errorf("empty registry ScoreRows = %v, want ErrNoModel", err)
	}
}

// TestWorkerRunLoopSurvivesPeerRestarts: RunLoop must serve a fresh
// session after each peer departure, and give up only when the dial
// itself keeps failing.
func TestWorkerRunLoopSurvivesPeerRestarts(t *testing.T) {
	parts := twoParts(t, 40, 91)
	m := trainModel(t, parts, 2)
	reg := NewRegistry()
	if err := reg.Publish(Model{Version: 1, Fragment: m.Parties[0]}); err != nil {
		t.Fatal(err)
	}
	worker := NewPassiveWorker(0, parts[0], reg)

	const sessions = 2
	serverEnds := make(chan core.Transport, sessions)
	var dials int
	dial := func() (core.Transport, error) {
		dials++
		if dials > sessions {
			return nil, fmt.Errorf("gateway down")
		}
		s, w := pipePair()
		serverEnds <- s
		return w, nil
	}

	loopDone := make(chan error, 1)
	go func() {
		loopDone <- worker.RunLoop(dial, time.Millisecond, 5*time.Millisecond, 3)
	}()

	// Two successive "Party B" lifetimes, each opening and closing its own
	// session with one scoring round in between.
	for s := 0; s < sessions; s++ {
		l := core.NewLink(<-serverEnds)
		if err := l.Send(core.MsgScoreOpen{Proto: core.ScoreProtoVersion, Session: fmt.Sprintf("s%d", s)}); err != nil {
			t.Fatal(err)
		}
		if msg, err := l.Recv(); err != nil {
			t.Fatal(err)
		} else if _, ok := msg.(core.MsgScoreOpenAck); !ok {
			t.Fatalf("session %d: got %T, want open ack", s, msg)
		}
		if err := l.Send(core.MsgScoreRequest{Round: uint64(s), Version: 1, Rows: []int32{0, 1}}); err != nil {
			t.Fatal(err)
		}
		if msg, err := l.Recv(); err != nil {
			t.Fatal(err)
		} else if r, ok := msg.(core.MsgScoreResponse); !ok || r.Error != "" {
			t.Fatalf("session %d: round answer %#v", s, msg)
		}
		if err := l.Send(core.MsgScoreClose{Reason: "restart"}); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	// With the gateway "down", the loop must exhaust its redials and stop.
	select {
	case err := <-loopDone:
		if err == nil {
			t.Fatal("RunLoop returned nil although every dial failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunLoop did not give up after exhausting redials")
	}
	if got := worker.Rounds(); got != sessions {
		t.Errorf("worker served %d rounds across restarts, want %d", got, sessions)
	}
}
