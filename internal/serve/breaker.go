package serve

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position. The zero value is Closed.
type BreakerState int32

const (
	// BreakerClosed passes traffic and records outcomes.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen lets exactly one probe through after the cooldown;
	// its outcome decides between Closed and Open.
	BreakerHalfOpen
	// BreakerOpen rejects traffic until the cooldown expires.
	BreakerOpen
)

// String renders the state for logs and /metricsz labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes one sidecar link's circuit breaker. The zero value
// is usable: every field <= 0 falls back to its default.
type BreakerConfig struct {
	// Window is the number of recent round outcomes the failure rate is
	// computed over (default 16).
	Window int
	// FailureRate trips the breaker when failures/window reaches it and
	// the window holds at least MinSamples outcomes (default 0.5).
	FailureRate float64
	// MinSamples is the minimum outcomes before the rate can trip
	// (default 4) — one unlucky first round must not open the circuit.
	MinSamples int
	// ConsecTimeouts trips the breaker after this many timed-out rounds
	// in a row, regardless of the rate window (default 3) — a hung
	// sidecar burns a full deadline per round, so it is cut fast.
	ConsecTimeouts int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 2s).
	Cooldown time.Duration
}

func (c *BreakerConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.ConsecTimeouts <= 0 {
		c.ConsecTimeouts = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
}

// Breaker is a closed/open/half-open circuit breaker over one sidecar
// link. Round outcomes feed a rolling window; the circuit opens on a high
// failure rate or a run of consecutive timeouts, rejects traffic for the
// cooldown, then admits a single probe whose outcome closes or re-opens
// it. All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu             sync.Mutex
	state          BreakerState
	window         []bool // ring buffer of outcomes, true = failure
	widx, wlen     int
	fails          int // failures currently in the window
	consecTimeouts int
	openedAt       time.Time
	opens          int64
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.defaults()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// Allow reports whether a round may use the link. probe is true when this
// admission is the half-open probe — the caller must report its outcome
// via Success or Failure, which decides the breaker's next state; no
// further traffic is admitted until then.
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if time.Since(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open: a probe is already in flight
		return false, false
	}
}

// Success records a healthy round. In half-open state it closes the
// circuit and clears the outcome window.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.reset()
		return
	}
	if b.state == BreakerOpen {
		return // stale outcome from a round admitted before the trip
	}
	b.record(false)
	b.consecTimeouts = 0
}

// Failure records a failed round; timeout marks it as a deadline expiry
// (the consecutive-timeout trip condition). In half-open state the probe
// failed and the circuit re-opens for another cooldown.
func (b *Breaker) Failure(timeout bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.open()
		return
	}
	if b.state == BreakerOpen {
		return
	}
	b.record(true)
	if timeout {
		b.consecTimeouts++
	} else {
		b.consecTimeouts = 0
	}
	if b.consecTimeouts >= b.cfg.ConsecTimeouts {
		b.open()
		return
	}
	if b.wlen >= b.cfg.MinSamples && float64(b.fails)/float64(b.wlen) >= b.cfg.FailureRate {
		b.open()
	}
}

// record pushes one outcome into the ring. Callers hold b.mu.
func (b *Breaker) record(failure bool) {
	if b.wlen == len(b.window) {
		if b.window[b.widx] {
			b.fails--
		}
	} else {
		b.wlen++
	}
	b.window[b.widx] = failure
	if failure {
		b.fails++
	}
	b.widx = (b.widx + 1) % len(b.window)
}

// open trips the circuit. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = time.Now()
	b.opens++
	b.reset_window()
	b.consecTimeouts = 0
}

// reset closes the circuit with a clean slate. Callers hold b.mu.
func (b *Breaker) reset() {
	b.state = BreakerClosed
	b.reset_window()
	b.consecTimeouts = 0
}

func (b *Breaker) reset_window() {
	for i := range b.window {
		b.window[i] = false
	}
	b.widx, b.wlen, b.fails = 0, 0, 0
}

// State returns the breaker's current position, accounting for an
// expired cooldown (an open breaker past its cooldown reports half-open
// readiness only once a probe is admitted, so State stays truthful).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the circuit has tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// CooldownRemaining returns how long until an open breaker admits its
// probe (zero when not open or already due) — the Retry-After hint.
func (b *Breaker) CooldownRemaining() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cfg.Cooldown - time.Since(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}
