// Package trace records per-phase execution spans during federated
// training and renders them as Gantt charts — the methodology of Section
// 4 of the VF²Boost paper ("we analyze the schedule of different
// procedures in training a decision tree via Gantt charts", Figures 4 and
// 5). A Recorder collects labeled spans on named lanes; ASCII renders the
// lanes against a common time axis, and CSV exports them for external
// plotting.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Lane identifies one row of the chart (one actor/phase combination, e.g.
// "B:Encrypt" or "A0:BuildHist").
type Lane string

// Span is one recorded interval on a lane.
type Span struct {
	Lane  Lane
	Label string
	Start time.Duration // offset from the recorder's origin
	End   time.Duration
}

// Recorder collects spans. It is safe for concurrent use. A nil *Recorder
// is valid and records nothing, so instrumentation sites need no checks.
type Recorder struct {
	mu    sync.Mutex
	t0    time.Time
	spans []Span
}

// NewRecorder starts a recorder with its origin at now.
func NewRecorder() *Recorder {
	return &Recorder{t0: time.Now()}
}

// Span opens an interval on a lane; the returned func closes it.
//
//	defer r.Span("B:Encrypt", "tree 3")()
func (r *Recorder) Span(lane Lane, label string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Since(r.t0)
	return func() {
		end := time.Since(r.t0)
		r.mu.Lock()
		r.spans = append(r.spans, Span{Lane: lane, Label: label, Start: start, End: end})
		r.mu.Unlock()
	}
}

// Add records a fully-formed span (for adapters that already measured).
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans, ordered by start time.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Reset discards recorded spans and moves the origin to now.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.t0 = time.Now()
	r.mu.Unlock()
}

// ASCII renders the spans as a fixed-width Gantt chart: one row per lane
// (in first-appearance order), '#' cells where the lane is busy. width is
// the number of time buckets (minimum 10).
func ASCII(spans []Span, width int) string {
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	if width < 10 {
		width = 10
	}
	var total time.Duration
	var laneOrder []Lane
	seen := map[Lane]bool{}
	for _, s := range spans {
		if s.End > total {
			total = s.End
		}
		if !seen[s.Lane] {
			seen[s.Lane] = true
			laneOrder = append(laneOrder, s.Lane)
		}
	}
	if total <= 0 {
		total = time.Nanosecond
	}
	nameW := 0
	for _, l := range laneOrder {
		if len(l) > nameW {
			nameW = len(l)
		}
	}

	rows := make(map[Lane][]byte, len(laneOrder))
	for _, l := range laneOrder {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		rows[l] = row
	}
	bucket := func(d time.Duration) int {
		i := int(int64(d) * int64(width) / int64(total))
		if i >= width {
			i = width - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}
	for _, s := range spans {
		row := rows[s.Lane]
		lo, hi := bucket(s.Start), bucket(s.End)
		for i := lo; i <= hi; i++ {
			row[i] = '#'
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%*s  0%s%v\n", nameW, "", strings.Repeat(" ", width-len(fmt.Sprint(total.Round(time.Millisecond)))), total.Round(time.Millisecond))
	for _, l := range laneOrder {
		fmt.Fprintf(&b, "%*s  %s\n", nameW, l, rows[l])
	}
	return b.String()
}

// CSV writes the spans as "lane,label,start_ms,end_ms" rows.
func CSV(w io.Writer, spans []Span) error {
	if _, err := fmt.Fprintln(w, "lane,label,start_ms,end_ms"); err != nil {
		return err
	}
	for _, s := range spans {
		if _, err := fmt.Fprintf(w, "%s,%s,%.3f,%.3f\n",
			s.Lane, strings.ReplaceAll(s.Label, ",", ";"),
			float64(s.Start)/1e6, float64(s.End)/1e6); err != nil {
			return err
		}
	}
	return nil
}

// BusyTime sums the busy duration per lane (overlaps within a lane count
// once per span; the protocol's lanes do not self-overlap).
func BusyTime(spans []Span) map[Lane]time.Duration {
	out := map[Lane]time.Duration{}
	for _, s := range spans {
		out[s.Lane] += s.End - s.Start
	}
	return out
}
