package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRecorderSpans(t *testing.T) {
	r := NewRecorder()
	end := r.Span("B:Encrypt", "tree 0")
	time.Sleep(2 * time.Millisecond)
	end()
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Lane != "B:Encrypt" || s.Label != "tree 0" {
		t.Errorf("span = %+v", s)
	}
	if s.End <= s.Start {
		t.Error("span has no duration")
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Span("x", "y")() // must not panic
	r.Add(Span{})
	r.Reset()
	if r.Spans() != nil {
		t.Error("nil recorder returned spans")
	}
}

func TestASCIIChart(t *testing.T) {
	spans := []Span{
		{Lane: "B:Encrypt", Start: 0, End: 40 * time.Millisecond},
		{Lane: "A:BuildHist", Start: 30 * time.Millisecond, End: 100 * time.Millisecond},
		{Lane: "B:Decrypt", Start: 90 * time.Millisecond, End: 120 * time.Millisecond},
	}
	out := ASCII(spans, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 lanes
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
	// Lane order = first appearance.
	if !strings.Contains(lines[1], "B:Encrypt") || !strings.Contains(lines[2], "A:BuildHist") {
		t.Errorf("lane order wrong:\n%s", out)
	}
	// The encrypt lane must be busy at the start and idle at the end.
	encRow := lines[1][strings.Index(lines[1], " "):]
	if !strings.Contains(encRow, "#") {
		t.Error("no busy cells in encrypt lane")
	}
	if !strings.HasSuffix(strings.TrimSpace(lines[1]), ".") {
		t.Errorf("encrypt lane busy to the end:\n%s", out)
	}
	if got := ASCII(nil, 40); !strings.Contains(got, "no spans") {
		t.Error("empty chart not handled")
	}
}

func TestCSVExport(t *testing.T) {
	spans := []Span{{Lane: "L", Label: "a,b", Start: time.Millisecond, End: 2 * time.Millisecond}}
	var buf bytes.Buffer
	if err := CSV(&buf, spans); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "lane,label,start_ms,end_ms") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "L,a;b,1.000,2.000") {
		t.Errorf("bad row: %s", out)
	}
}

func TestBusyTime(t *testing.T) {
	spans := []Span{
		{Lane: "L", Start: 0, End: 10 * time.Millisecond},
		{Lane: "L", Start: 20 * time.Millisecond, End: 25 * time.Millisecond},
		{Lane: "M", Start: 0, End: time.Millisecond},
	}
	busy := BusyTime(spans)
	if busy["L"] != 15*time.Millisecond || busy["M"] != time.Millisecond {
		t.Errorf("busy = %v", busy)
	}
}
