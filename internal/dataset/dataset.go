// Package dataset provides the training-data substrate for VF²Boost:
// sparse (CSR) feature matrices with optional labels, LibSVM-format I/O,
// vertical partitioning of feature columns across federated parties, and
// deterministic synthetic generators shaped after the paper's evaluation
// datasets (Table 3).
package dataset

import (
	"fmt"
	"sort"
)

// Dataset is an immutable row-major sparse matrix with optional labels.
// Dense data is simply a CSR matrix whose rows are full. Entries that are
// absent from a row are semantically zero.
type Dataset struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	values     []float64
	// Labels holds one 0/1 (classification) or real (regression) target
	// per row; nil for passive parties, which never see labels.
	Labels []float64

	// csc caches the column-major view, built lazily by Columns.
	csc *cscView
}

type cscView struct {
	colPtr []int32
	rowIdx []int32
	values []float64
}

// Builder assembles a Dataset row by row.
type Builder struct {
	cols   int
	rowPtr []int32
	colIdx []int32
	values []float64
	labels []float64
}

// NewBuilder starts a dataset with a fixed number of feature columns.
func NewBuilder(cols int) *Builder {
	return &Builder{cols: cols, rowPtr: []int32{0}}
}

// AddRow appends a row given its nonzero entries. Indices must be unique,
// in-range and the pairs are sorted internally. label is appended to the
// label vector; use AddRowUnlabeled for passive-party data.
func (b *Builder) AddRow(indices []int32, values []float64, label float64) error {
	if err := b.addFeatures(indices, values); err != nil {
		return err
	}
	b.labels = append(b.labels, label)
	return nil
}

// AddRowUnlabeled appends a feature-only row.
func (b *Builder) AddRowUnlabeled(indices []int32, values []float64) error {
	return b.addFeatures(indices, values)
}

func (b *Builder) addFeatures(indices []int32, values []float64) error {
	if len(indices) != len(values) {
		return fmt.Errorf("dataset: %d indices but %d values", len(indices), len(values))
	}
	type pair struct {
		i int32
		v float64
	}
	pairs := make([]pair, len(indices))
	for k, idx := range indices {
		if idx < 0 || int(idx) >= b.cols {
			return fmt.Errorf("dataset: column %d out of range [0,%d)", idx, b.cols)
		}
		pairs[k] = pair{idx, values[k]}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].i < pairs[y].i })
	for k := 1; k < len(pairs); k++ {
		if pairs[k].i == pairs[k-1].i {
			return fmt.Errorf("dataset: duplicate column %d in row", pairs[k].i)
		}
	}
	for _, p := range pairs {
		b.colIdx = append(b.colIdx, p.i)
		b.values = append(b.values, p.v)
	}
	b.rowPtr = append(b.rowPtr, int32(len(b.colIdx)))
	return nil
}

// Build finalizes the dataset. The builder must not be reused.
func (b *Builder) Build() *Dataset {
	d := &Dataset{
		rows:   len(b.rowPtr) - 1,
		cols:   b.cols,
		rowPtr: b.rowPtr,
		colIdx: b.colIdx,
		values: b.values,
	}
	if len(b.labels) == d.rows {
		d.Labels = b.labels
	}
	return d
}

// FromDense builds a dataset from a dense matrix; zero entries are still
// stored so that density is exactly 100%, matching the paper's dense
// datasets (susy, epsilon).
func FromDense(m [][]float64, labels []float64) (*Dataset, error) {
	if len(m) == 0 {
		return nil, fmt.Errorf("dataset: empty matrix")
	}
	cols := len(m[0])
	b := NewBuilder(cols)
	idx := make([]int32, cols)
	for j := range idx {
		idx[j] = int32(j)
	}
	for i, row := range m {
		if len(row) != cols {
			return nil, fmt.Errorf("dataset: row %d has %d columns, want %d", i, len(row), cols)
		}
		if labels != nil {
			if err := b.AddRow(idx, row, labels[i]); err != nil {
				return nil, err
			}
		} else if err := b.AddRowUnlabeled(idx, row); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Rows returns the number of instances N.
func (d *Dataset) Rows() int { return d.rows }

// Cols returns the number of feature columns D.
func (d *Dataset) Cols() int { return d.cols }

// NNZ returns the number of stored entries.
func (d *Dataset) NNZ() int { return len(d.values) }

// Density returns NNZ / (rows·cols).
func (d *Dataset) Density() float64 {
	if d.rows == 0 || d.cols == 0 {
		return 0
	}
	return float64(len(d.values)) / (float64(d.rows) * float64(d.cols))
}

// Row returns the nonzero column indices and values of row i. The returned
// slices alias internal storage and must not be modified.
func (d *Dataset) Row(i int) ([]int32, []float64) {
	lo, hi := d.rowPtr[i], d.rowPtr[i+1]
	return d.colIdx[lo:hi], d.values[lo:hi]
}

// Get returns the value at (i, j), zero if absent.
func (d *Dataset) Get(i, j int) float64 {
	cols, vals := d.Row(i)
	k := sort.Search(len(cols), func(x int) bool { return cols[x] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return vals[k]
	}
	return 0
}

// buildCSC materializes the column-major view.
func (d *Dataset) buildCSC() *cscView {
	if d.csc != nil {
		return d.csc
	}
	colPtr := make([]int32, d.cols+1)
	for _, j := range d.colIdx {
		colPtr[j+1]++
	}
	for j := 0; j < d.cols; j++ {
		colPtr[j+1] += colPtr[j]
	}
	rowIdx := make([]int32, len(d.colIdx))
	values := make([]float64, len(d.values))
	next := append([]int32(nil), colPtr...)
	for i := 0; i < d.rows; i++ {
		lo, hi := d.rowPtr[i], d.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := d.colIdx[k]
			p := next[j]
			rowIdx[p] = int32(i)
			values[p] = d.values[k]
			next[j] = p + 1
		}
	}
	d.csc = &cscView{colPtr: colPtr, rowIdx: rowIdx, values: values}
	return d.csc
}

// Column returns the row indices and values of the stored entries of
// column j, ordered by row. The slices alias internal storage.
func (d *Dataset) Column(j int) ([]int32, []float64) {
	c := d.buildCSC()
	lo, hi := c.colPtr[j], c.colPtr[j+1]
	return c.rowIdx[lo:hi], c.values[lo:hi]
}

// ColumnValues returns just the stored values of column j.
func (d *Dataset) ColumnValues(j int) []float64 {
	_, vals := d.Column(j)
	return vals
}

// SubColumns projects the dataset onto the given columns (renumbered in
// the given order). Labels are dropped unless keepLabels is set — the
// vertical-FL invariant that only Party B holds labels.
func (d *Dataset) SubColumns(cols []int, keepLabels bool) *Dataset {
	remap := make(map[int32]int32, len(cols))
	for newJ, oldJ := range cols {
		remap[int32(oldJ)] = int32(newJ)
	}
	b := NewBuilder(len(cols))
	idxBuf := make([]int32, 0, len(cols))
	valBuf := make([]float64, 0, len(cols))
	for i := 0; i < d.rows; i++ {
		idxBuf, valBuf = idxBuf[:0], valBuf[:0]
		ci, cv := d.Row(i)
		for k, j := range ci {
			if nj, ok := remap[j]; ok {
				idxBuf = append(idxBuf, nj)
				valBuf = append(valBuf, cv[k])
			}
		}
		// addFeatures copies, so reusing buffers is safe.
		if err := b.AddRowUnlabeled(idxBuf, valBuf); err != nil {
			panic(err) // unreachable: indices already validated
		}
	}
	out := b.Build()
	if keepLabels && d.Labels != nil {
		out.Labels = d.Labels
	}
	return out
}

// SubRows selects the given rows (in order), carrying labels along.
func (d *Dataset) SubRows(rows []int) *Dataset {
	b := NewBuilder(d.cols)
	for _, i := range rows {
		ci, cv := d.Row(i)
		if err := b.AddRowUnlabeled(ci, cv); err != nil {
			panic(err)
		}
	}
	out := b.Build()
	if d.Labels != nil {
		labels := make([]float64, len(rows))
		for k, i := range rows {
			labels[k] = d.Labels[i]
		}
		out.Labels = labels
	}
	return out
}

// TrainValidSplit deterministically splits rows into train/valid with the
// given train fraction, shuffled by seed.
func (d *Dataset) TrainValidSplit(trainFrac float64, seed int64) (train, valid *Dataset) {
	perm := shuffledIndices(d.rows, seed)
	nTrain := int(trainFrac * float64(d.rows))
	return d.SubRows(perm[:nTrain]), d.SubRows(perm[nTrain:])
}

// VerticalSplit partitions the feature columns into len(counts) contiguous
// blocks of the given sizes; part labelParty keeps the labels (the others
// get none). This is how one co-located dataset becomes the per-party
// shards of a vertical FL experiment.
func (d *Dataset) VerticalSplit(counts []int, labelParty int) ([]*Dataset, error) {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != d.cols {
		return nil, fmt.Errorf("dataset: vertical split counts sum to %d, want %d", total, d.cols)
	}
	parts := make([]*Dataset, len(counts))
	start := 0
	for p, c := range counts {
		cols := make([]int, c)
		for k := range cols {
			cols[k] = start + k
		}
		parts[p] = d.SubColumns(cols, p == labelParty)
		start += c
	}
	return parts, nil
}

// JoinColumns horizontally concatenates datasets with identical row counts
// (the "virtually joined" table of vertical FL); labels are taken from the
// first part that has them.
func JoinColumns(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: joining zero parts")
	}
	rows := parts[0].rows
	cols := 0
	var labels []float64
	for _, p := range parts {
		if p.rows != rows {
			return nil, fmt.Errorf("dataset: join row mismatch %d vs %d", p.rows, rows)
		}
		cols += p.cols
		if labels == nil && p.Labels != nil {
			labels = p.Labels
		}
	}
	b := NewBuilder(cols)
	idxBuf := make([]int32, 0, 64)
	valBuf := make([]float64, 0, 64)
	for i := 0; i < rows; i++ {
		idxBuf, valBuf = idxBuf[:0], valBuf[:0]
		off := int32(0)
		for _, p := range parts {
			ci, cv := p.Row(i)
			for k, j := range ci {
				idxBuf = append(idxBuf, j+off)
				valBuf = append(valBuf, cv[k])
			}
			off += int32(p.cols)
		}
		if err := b.AddRowUnlabeled(idxBuf, valBuf); err != nil {
			return nil, err
		}
	}
	out := b.Build()
	out.Labels = labels
	return out, nil
}

func shuffledIndices(n int, seed int64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := newRNG(seed)
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}
