package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadLibSVM parses the LibSVM text format ("label idx:val idx:val ...",
// 1-based indices). cols <= 0 infers the column count from the data.
func ReadLibSVM(r io.Reader, cols int) (*Dataset, error) {
	type row struct {
		idx   []int32
		vals  []float64
		label float64
	}
	var rows []row
	maxCol := int32(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad label %q: %w", lineNo, fields[0], err)
		}
		// Normalize {-1,+1} labels to {0,1}.
		if label == -1 {
			label = 0
		}
		rw := row{label: label}
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("dataset: line %d: bad entry %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("dataset: line %d: bad index %q", lineNo, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad value %q: %w", lineNo, f[colon+1:], err)
			}
			j := int32(idx - 1)
			if j+1 > maxCol {
				maxCol = j + 1
			}
			rw.idx = append(rw.idx, j)
			rw.vals = append(rw.vals, val)
		}
		rows = append(rows, rw)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading libsvm: %w", err)
	}
	if cols <= 0 {
		cols = int(maxCol)
	}
	if cols == 0 {
		return nil, fmt.Errorf("dataset: no feature columns found")
	}
	b := NewBuilder(cols)
	for i, rw := range rows {
		if err := b.AddRow(rw.idx, rw.vals, rw.label); err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", i, err)
		}
	}
	return b.Build(), nil
}

// WriteLibSVM writes the dataset in LibSVM format. Unlabeled datasets are
// written with label 0.
func WriteLibSVM(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.Rows(); i++ {
		label := 0.0
		if d.Labels != nil {
			label = d.Labels[i]
		}
		if _, err := fmt.Fprintf(bw, "%g", label); err != nil {
			return err
		}
		cols, vals := d.Row(i)
		for k, j := range cols {
			if _, err := fmt.Fprintf(bw, " %d:%g", j+1, vals[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadLibSVMFile reads a LibSVM file from disk.
func LoadLibSVMFile(path string, cols int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLibSVM(f, cols)
}

// SaveLibSVMFile writes a LibSVM file to disk.
func SaveLibSVMFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLibSVM(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
