package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ScanLibSVM streams the LibSVM text format ("label idx:val idx:val ...",
// 1-based indices) through a row callback without materializing a
// Dataset — the ingestion primitive of the out-of-core path, where a file
// can be far larger than memory. Each row's entries are delivered sorted
// by column with duplicates rejected, matching Builder.AddRow's
// invariants; the indices and values slices are reused between callbacks
// and must be copied if retained. cols > 0 bounds the column indices;
// cols <= 0 accepts any index. It returns the number of rows delivered
// and the widest column count seen (max index + 1). Labels of -1 are
// normalized to 0.
func ScanLibSVM(r io.Reader, cols int, fn func(indices []int32, values []float64, label float64) error) (rows, maxCols int, err error) {
	return ScanLibSVMRanked(r, cols, func(indices []int32, values []float64, label float64, _ int64) error {
		return fn(indices, values, label)
	})
}

// ScanLibSVMRanked is ScanLibSVM extended with the ranking variant of
// the format: an optional "qid:N" token after the label names the row's
// query group. Rows without one are delivered with qid -1. Binary-label
// normalization (-1 → 0) only applies to files with no qid tokens —
// ranking labels are relevance grades, not classes.
func ScanLibSVMRanked(r io.Reader, cols int, fn func(indices []int32, values []float64, label float64, qid int64) error) (rows, maxCols int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var idxBuf []int32
	var valBuf []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return rows, maxCols, fmt.Errorf("dataset: line %d: bad label %q: %w", lineNo, fields[0], err)
		}
		qid := int64(-1)
		feats := fields[1:]
		if len(feats) > 0 && strings.HasPrefix(feats[0], "qid:") {
			q, err := strconv.ParseInt(feats[0][len("qid:"):], 10, 64)
			if err != nil || q < 0 {
				return rows, maxCols, fmt.Errorf("dataset: line %d: bad qid %q", lineNo, feats[0])
			}
			qid = q
			feats = feats[1:]
		}
		// Normalize {-1,+1} labels to {0,1}.
		if label == -1 && qid < 0 {
			label = 0
		}
		idxBuf, valBuf = idxBuf[:0], valBuf[:0]
		for _, f := range feats {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return rows, maxCols, fmt.Errorf("dataset: line %d: bad entry %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return rows, maxCols, fmt.Errorf("dataset: line %d: bad index %q", lineNo, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return rows, maxCols, fmt.Errorf("dataset: line %d: bad value %q: %w", lineNo, f[colon+1:], err)
			}
			j := int32(idx - 1)
			if cols > 0 && int(j) >= cols {
				return rows, maxCols, fmt.Errorf("dataset: line %d: column %d out of range [0,%d)", lineNo, j, cols)
			}
			if int(j)+1 > maxCols {
				maxCols = int(j) + 1
			}
			idxBuf = append(idxBuf, j)
			valBuf = append(valBuf, val)
		}
		if !sort.SliceIsSorted(idxBuf, func(x, y int) bool { return idxBuf[x] < idxBuf[y] }) {
			sort.Sort(&rowSorter{idx: idxBuf, vals: valBuf})
		}
		for k := 1; k < len(idxBuf); k++ {
			if idxBuf[k] == idxBuf[k-1] {
				return rows, maxCols, fmt.Errorf("dataset: line %d: duplicate column %d", lineNo, idxBuf[k])
			}
		}
		if err := fn(idxBuf, valBuf, label, qid); err != nil {
			return rows, maxCols, err
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return rows, maxCols, fmt.Errorf("dataset: reading libsvm: %w", err)
	}
	return rows, maxCols, nil
}

// rowSorter sorts a row's (index, value) pairs by column in place.
type rowSorter struct {
	idx  []int32
	vals []float64
}

func (s *rowSorter) Len() int           { return len(s.idx) }
func (s *rowSorter) Less(x, y int) bool { return s.idx[x] < s.idx[y] }
func (s *rowSorter) Swap(x, y int) {
	s.idx[x], s.idx[y] = s.idx[y], s.idx[x]
	s.vals[x], s.vals[y] = s.vals[y], s.vals[x]
}

// ReadLibSVM parses the LibSVM text format into an in-memory Dataset.
// cols <= 0 infers the column count from the data. It appends straight
// into the CSR arrays as ScanLibSVM delivers rows, so peak memory is one
// copy of the data rather than the two a buffered parse would hold.
func ReadLibSVM(r io.Reader, cols int) (*Dataset, error) {
	d := &Dataset{rowPtr: []int32{0}}
	var labels []float64
	rows, maxCols, err := ScanLibSVM(r, cols, func(indices []int32, values []float64, label float64) error {
		d.colIdx = append(d.colIdx, indices...)
		d.values = append(d.values, values...)
		d.rowPtr = append(d.rowPtr, int32(len(d.colIdx)))
		labels = append(labels, label)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if cols <= 0 {
		cols = maxCols
	}
	if cols == 0 {
		return nil, fmt.Errorf("dataset: no feature columns found")
	}
	d.rows = rows
	d.cols = cols
	d.Labels = labels
	return d, nil
}

// ReadLibSVMRanking parses the ranking variant of the LibSVM format
// ("label qid:N idx:val ...") and returns the dataset together with the
// query-group sizes in row order. Every row must carry a qid, rows of
// one query must be contiguous, and a qid may not reappear after
// another — NDCG and the pairwise gradients are only defined over
// contiguous groups.
func ReadLibSVMRanking(r io.Reader, cols int) (*Dataset, []int, error) {
	d := &Dataset{rowPtr: []int32{0}}
	var labels []float64
	var groups []int
	seen := map[int64]bool{}
	cur := int64(-1)
	rows, maxCols, err := ScanLibSVMRanked(r, cols, func(indices []int32, values []float64, label float64, qid int64) error {
		if qid < 0 {
			return fmt.Errorf("dataset: ranking row %d has no qid", len(labels)+1)
		}
		if qid != cur {
			if seen[qid] {
				return fmt.Errorf("dataset: qid %d reappears after another group (rows of one query must be contiguous)", qid)
			}
			seen[qid] = true
			cur = qid
			groups = append(groups, 0)
		}
		groups[len(groups)-1]++
		d.colIdx = append(d.colIdx, indices...)
		d.values = append(d.values, values...)
		d.rowPtr = append(d.rowPtr, int32(len(d.colIdx)))
		labels = append(labels, label)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if cols <= 0 {
		cols = maxCols
	}
	if cols == 0 {
		return nil, nil, fmt.Errorf("dataset: no feature columns found")
	}
	d.rows = rows
	d.cols = cols
	d.Labels = labels
	return d, groups, nil
}

// LoadLibSVMRankingFile reads a ranking LibSVM file from disk.
func LoadLibSVMRankingFile(path string, cols int) (*Dataset, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadLibSVMRanking(f, cols)
}

// WriteLibSVM writes the dataset in LibSVM format. Unlabeled datasets are
// written with label 0.
func WriteLibSVM(w io.Writer, d *Dataset) error {
	lw := NewLibSVMWriter(w)
	for i := 0; i < d.Rows(); i++ {
		label := 0.0
		if d.Labels != nil {
			label = d.Labels[i]
		}
		cols, vals := d.Row(i)
		if err := lw.WriteRow(cols, vals, label); err != nil {
			return err
		}
	}
	return lw.Flush()
}

// LibSVMWriter emits LibSVM rows one at a time, so generators can write
// datasets far larger than memory. Flush must be called before the
// underlying writer is closed.
type LibSVMWriter struct {
	bw *bufio.Writer
}

// NewLibSVMWriter wraps w in a buffered row writer.
func NewLibSVMWriter(w io.Writer) *LibSVMWriter {
	return &LibSVMWriter{bw: bufio.NewWriter(w)}
}

// WriteRow appends one row; indices are 0-based and sorted, written
// 1-based as the format requires.
func (w *LibSVMWriter) WriteRow(indices []int32, values []float64, label float64) error {
	if _, err := fmt.Fprintf(w.bw, "%g", label); err != nil {
		return err
	}
	for k, j := range indices {
		if _, err := fmt.Fprintf(w.bw, " %d:%g", j+1, values[k]); err != nil {
			return err
		}
	}
	return w.bw.WriteByte('\n')
}

// Flush drains the buffer to the underlying writer.
func (w *LibSVMWriter) Flush() error { return w.bw.Flush() }

// LoadLibSVMFile reads a LibSVM file from disk.
func LoadLibSVMFile(path string, cols int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLibSVM(f, cols)
}

// SaveLibSVMFile writes a LibSVM file to disk.
func SaveLibSVMFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLibSVM(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteLibSVMRanking writes the dataset with qid:N query-group tokens,
// the inverse of ReadLibSVMRanking: groups holds the run-length sizes of
// consecutive query groups (1-based qids), covering every row exactly.
func WriteLibSVMRanking(w io.Writer, d *Dataset, groups []int) error {
	total := 0
	for gi, g := range groups {
		if g <= 0 {
			return fmt.Errorf("dataset: group %d has non-positive size %d", gi, g)
		}
		total += g
	}
	if total != d.Rows() {
		return fmt.Errorf("dataset: groups cover %d rows, dataset has %d", total, d.Rows())
	}
	bw := bufio.NewWriter(w)
	row := 0
	for gi, g := range groups {
		for end := row + g; row < end; row++ {
			label := 0.0
			if d.Labels != nil {
				label = d.Labels[row]
			}
			if _, err := fmt.Fprintf(bw, "%g qid:%d", label, gi+1); err != nil {
				return err
			}
			cols, vals := d.Row(row)
			for k, j := range cols {
				if _, err := fmt.Fprintf(bw, " %d:%g", j+1, vals[k]); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveLibSVMRankingFile writes a ranking LibSVM file to disk.
func SaveLibSVMRankingFile(path string, d *Dataset, groups []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLibSVMRanking(f, d, groups); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
