package dataset

import (
	"fmt"
	"math"
	"sort"
)

// StreamGenerator produces the same synthetic-classification family as
// Generate in O(1) memory per row: every row is generated from its own
// deterministic RNG (a splitmix-style mix of the seed and the row index),
// so the stream can be replayed any number of times without holding the
// dataset. Construction runs one stats pre-pass over the rows to
// standardize the logits — the step Generate performs on the materialized
// dot products — after which Scan streams (features, label) rows. With
// the same GenOptions a StreamGenerator yields the same distributional
// regime as Generate but not byte-identical rows: Generate threads a
// single RNG through all rows, which a replayable stream cannot
// reproduce.
type StreamGenerator struct {
	opts      GenOptions
	w         []float64
	nnzPerRow int
	mean, sd  float64
}

// NewStreamGenerator validates the options, draws the ground-truth
// weights and runs the logit-standardization pre-pass.
func NewStreamGenerator(o GenOptions) (*StreamGenerator, error) {
	if o.Rows <= 0 || o.Cols <= 0 {
		return nil, fmt.Errorf("dataset: non-positive shape %dx%d", o.Rows, o.Cols)
	}
	if o.Density <= 0 || o.Density > 1 {
		return nil, fmt.Errorf("dataset: density %g out of (0,1]", o.Density)
	}
	g := &StreamGenerator{
		opts:      o,
		nnzPerRow: int(math.Max(1, o.Density*float64(o.Cols))),
	}
	// Sparse ground-truth weights over ~20% of the features, drawn exactly
	// as Generate draws them (weights are O(cols); rows are the scale axis).
	rng := newRNG(o.Seed)
	g.w = make([]float64, o.Cols)
	active := o.Cols / 5
	if active < 1 {
		active = 1
	}
	for _, j := range rng.Perm(o.Cols)[:active] {
		g.w[j] = rng.NormFloat64() * 2
	}

	// Welford pass over the per-row dot products: numerically stable at
	// any row count, O(1) memory.
	var mean, m2 float64
	sc := g.newScanner()
	for i := 0; i < o.Rows; i++ {
		_, _, dot := sc.row(i)
		d := dot - mean
		mean += d / float64(i+1)
		m2 += d * (dot - mean)
	}
	g.mean = mean
	g.sd = math.Sqrt(m2 / float64(o.Rows))
	if g.sd < 1e-12 {
		g.sd = 1
	}
	return g, nil
}

// Rows returns the instance count.
func (g *StreamGenerator) Rows() int { return g.opts.Rows }

// Cols returns the feature count.
func (g *StreamGenerator) Cols() int { return g.opts.Cols }

// rowSeed derives row i's RNG seed via a splitmix64-style mix, so
// adjacent rows get decorrelated streams.
func rowSeed(seed int64, row int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(row+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4B9B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// rowRNG is the per-row generation PRNG: a splitmix64 state walk. Its
// essential property is O(1) re-seeding — the stream seeds once per row
// so any range can be replayed independently, and math/rand's
// lagged-Fibonacci source pays a ~600-step warmup on every Seed, which
// at one seed per row dominated the whole build pass. Draw quality is
// splitmix64's (passes BigCrush), more than enough for synthetic data.
type rowRNG struct{ state uint64 }

func (r *rowRNG) Seed(seed int64) { r.state = uint64(seed) }

func (r *rowRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4B9B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0,1) with 53 random bits.
func (r *rowRNG) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// Intn returns a uniform draw in [0,n) for n > 0; the modulo bias is
// ~n/2⁶⁴, irrelevant at feature-count scale.
func (r *rowRNG) Intn(n int) int { return int(r.next() % uint64(n)) }

// NormFloat64 draws a standard normal via Box–Muller. The spare value is
// deliberately not cached: replay after Seed must not depend on the
// parity of earlier draws.
func (r *rowRNG) NormFloat64() float64 {
	u := 1 - r.Float64() // (0,1]: keeps Log away from zero
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*r.Float64())
}

// rowScanner is the reusable per-scan state of row generation: one RNG
// re-seeded per row, an epoch-stamped duplicate filter replacing a
// per-row map (same skip decisions, zero allocation), and the shared
// index/value buffers. Each Scan/ScanRange call owns its own scanner,
// so concurrent scans never share state — the property the parallel
// out-of-core build pass relies on.
type rowScanner struct {
	g     *StreamGenerator
	rng   rowRNG
	stamp []int64
	epoch int64
	idx   []int32
	vals  []float64
}

func (g *StreamGenerator) newScanner() *rowScanner {
	s := &rowScanner{
		g:    g,
		idx:  make([]int32, 0, g.nnzPerRow),
		vals: make([]float64, 0, g.nnzPerRow),
	}
	if !g.opts.Dense && g.nnzPerRow < g.opts.Cols {
		s.stamp = make([]int64, g.opts.Cols)
	}
	return s
}

// row regenerates row i's features into the scanner's buffers and
// returns them sorted by column, with the ground-truth dot product. The
// scanner's RNG is left positioned after the feature draws (the label
// draws follow on the same stream).
func (s *rowScanner) row(i int) ([]int32, []float64, float64) {
	g := s.g
	s.rng.Seed(rowSeed(g.opts.Seed, i))
	idx, vals := s.idx[:0], s.vals[:0]
	var dot float64
	if g.opts.Dense || g.nnzPerRow >= g.opts.Cols {
		for j := 0; j < g.opts.Cols; j++ {
			v := s.rng.NormFloat64()
			idx = append(idx, int32(j))
			vals = append(vals, v)
			dot += v * g.w[j]
		}
		s.idx, s.vals = idx, vals
		return idx, vals, dot
	}
	s.epoch++
	for n := 0; n < g.nnzPerRow; {
		j := int32(s.rng.Intn(g.opts.Cols))
		if s.stamp[j] == s.epoch {
			continue
		}
		s.stamp[j] = s.epoch
		n++
		v := s.rng.Float64()
		if v == 0 {
			v = 0.5
		}
		idx = append(idx, j)
		vals = append(vals, v)
		dot += v * g.w[j]
	}
	if !sort.SliceIsSorted(idx, func(x, y int) bool { return idx[x] < idx[y] }) {
		sort.Sort(&rowSorter{idx: idx, vals: vals})
	}
	s.idx, s.vals = idx, vals
	return idx, vals, dot
}

// Scan streams every row through the callback in order. The indices and
// values slices are reused between callbacks and must be copied if
// retained; entries are sorted by column. Scan may be called any number
// of times and always replays the identical stream.
func (g *StreamGenerator) Scan(fn func(row int, indices []int32, values []float64, label float64) error) error {
	return g.ScanRange(0, g.opts.Rows, fn)
}

// ScanRange streams rows [lo, hi) through the callback. Every row is
// generated from its own seed, so any range replays exactly the rows a
// full Scan delivers, and concurrent ScanRange calls are independent
// (each owns its iteration state).
func (g *StreamGenerator) ScanRange(lo, hi int, fn func(row int, indices []int32, values []float64, label float64) error) error {
	if lo < 0 || hi > g.opts.Rows || lo > hi {
		return fmt.Errorf("dataset: row range [%d,%d) out of [0,%d)", lo, hi, g.opts.Rows)
	}
	s := g.newScanner()
	for i := lo; i < hi; i++ {
		idx, vals, dot := s.row(i)
		logit := (dot - g.mean) / g.sd * 2
		p := 1 / (1 + math.Exp(-logit))
		y := 0.0
		if s.rng.Float64() < p {
			y = 1
		}
		if g.opts.NoiseProb > 0 && s.rng.Float64() < g.opts.NoiseProb {
			y = 1 - y
		}
		if err := fn(i, idx, vals, y); err != nil {
			return err
		}
	}
	return nil
}

// StreamGen streams a synthetic dataset through the row callback without
// materializing it — the path that makes 10^8-row sets producible. See
// StreamGenerator for determinism and replay semantics.
func StreamGen(o GenOptions, fn func(row int, indices []int32, values []float64, label float64) error) error {
	g, err := NewStreamGenerator(o)
	if err != nil {
		return err
	}
	return g.Scan(fn)
}
