package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder(4)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddRow([]int32{0, 2}, []float64{1.5, 2.5}, 1))
	must(b.AddRow([]int32{1}, []float64{-3}, 0))
	must(b.AddRow([]int32{0, 1, 2, 3}, []float64{4, 5, 6, 7}, 1))
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	d := small(t)
	if d.Rows() != 3 || d.Cols() != 4 {
		t.Fatalf("shape %dx%d, want 3x4", d.Rows(), d.Cols())
	}
	if d.NNZ() != 7 {
		t.Errorf("NNZ = %d, want 7", d.NNZ())
	}
	if got := d.Density(); math.Abs(got-7.0/12.0) > 1e-12 {
		t.Errorf("Density = %g", got)
	}
	if d.Get(0, 2) != 2.5 || d.Get(0, 1) != 0 || d.Get(2, 3) != 7 {
		t.Error("Get returned wrong values")
	}
	if len(d.Labels) != 3 || d.Labels[1] != 0 {
		t.Errorf("labels = %v", d.Labels)
	}
}

func TestBuilderSortsAndValidates(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddRow([]int32{2, 0}, []float64{9, 8}, 0); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	cols, vals := d.Row(0)
	if cols[0] != 0 || vals[0] != 8 || cols[1] != 2 || vals[1] != 9 {
		t.Errorf("row not sorted: %v %v", cols, vals)
	}

	b2 := NewBuilder(3)
	if err := b2.AddRow([]int32{3}, []float64{1}, 0); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := b2.AddRow([]int32{1, 1}, []float64{1, 2}, 0); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := b2.AddRow([]int32{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestColumnView(t *testing.T) {
	d := small(t)
	rows, vals := d.Column(0)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 || vals[0] != 1.5 || vals[1] != 4 {
		t.Errorf("Column(0) = %v %v", rows, vals)
	}
	if got := d.ColumnValues(3); len(got) != 1 || got[0] != 7 {
		t.Errorf("ColumnValues(3) = %v", got)
	}
}

func TestSubColumnsDropsLabels(t *testing.T) {
	d := small(t)
	a := d.SubColumns([]int{0, 1}, false)
	if a.Labels != nil {
		t.Error("passive-party shard carries labels")
	}
	if a.Cols() != 2 || a.Get(2, 0) != 4 || a.Get(2, 1) != 5 {
		t.Error("SubColumns values wrong")
	}
	bPart := d.SubColumns([]int{2, 3}, true)
	if bPart.Labels == nil {
		t.Error("label party lost labels")
	}
	if bPart.Get(0, 0) != 2.5 {
		t.Error("SubColumns remap wrong")
	}
}

func TestVerticalSplitAndJoinRoundTrip(t *testing.T) {
	d, err := Generate(GenOptions{Rows: 50, Cols: 10, Density: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.VerticalSplit([]int{6, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Labels != nil || parts[1].Labels == nil {
		t.Fatal("label placement wrong")
	}
	joined, err := JoinColumns(parts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if joined.Get(i, j) != d.Get(i, j) {
				t.Fatalf("join mismatch at (%d,%d)", i, j)
			}
		}
		if joined.Labels[i] != d.Labels[i] {
			t.Fatalf("label mismatch at %d", i)
		}
	}
	if _, err := d.VerticalSplit([]int{3, 3}, 0); err == nil {
		t.Error("bad split counts accepted")
	}
}

func TestSubRowsAndTrainValidSplit(t *testing.T) {
	d := small(t)
	sub := d.SubRows([]int{2, 0})
	if sub.Rows() != 2 || sub.Get(0, 3) != 7 || sub.Labels[1] != 1 {
		t.Error("SubRows wrong")
	}
	big, _ := Generate(GenOptions{Rows: 100, Cols: 5, Density: 1, Dense: true, Seed: 1})
	tr, va := big.TrainValidSplit(0.8, 42)
	if tr.Rows() != 80 || va.Rows() != 20 {
		t.Errorf("split sizes %d/%d", tr.Rows(), va.Rows())
	}
	tr2, _ := big.TrainValidSplit(0.8, 42)
	if tr.Get(0, 0) != tr2.Get(0, 0) {
		t.Error("TrainValidSplit not deterministic")
	}
}

func TestGenerateShapes(t *testing.T) {
	d, err := Generate(GenOptions{Rows: 200, Cols: 50, Density: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 200 || d.Cols() != 50 {
		t.Fatalf("shape %dx%d", d.Rows(), d.Cols())
	}
	if got := d.Density(); math.Abs(got-0.1) > 0.02 {
		t.Errorf("density %g, want ~0.1", got)
	}
	// Sparse generated values must be positive (split semantics).
	for i := 0; i < d.Rows(); i++ {
		_, vals := d.Row(i)
		for _, v := range vals {
			if v <= 0 {
				t.Fatal("sparse generator emitted non-positive value")
			}
		}
	}
	// Labels must contain both classes.
	ones := 0
	for _, y := range d.Labels {
		if y == 1 {
			ones++
		}
	}
	if ones == 0 || ones == d.Rows() {
		t.Errorf("degenerate labels: %d/%d positive", ones, d.Rows())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	o := GenOptions{Rows: 30, Cols: 10, Density: 0.3, Seed: 99}
	d1, _ := Generate(o)
	d2, _ := Generate(o)
	for i := 0; i < d1.Rows(); i++ {
		for j := 0; j < d1.Cols(); j++ {
			if d1.Get(i, j) != d2.Get(i, j) {
				t.Fatal("generator not deterministic")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenOptions{Rows: 0, Cols: 5, Density: 0.5}); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := Generate(GenOptions{Rows: 5, Cols: 5, Density: 0}); err == nil {
		t.Error("zero density accepted")
	}
	if _, err := Generate(GenOptions{Rows: 5, Cols: 5, Density: 1.5}); err == nil {
		t.Error("density > 1 accepted")
	}
}

func TestPresets(t *testing.T) {
	if len(Presets) != 7 {
		t.Fatalf("want the 7 Table 3 presets, got %d", len(Presets))
	}
	p, ok := PresetByName("rcv1")
	if !ok {
		t.Fatal("rcv1 preset missing")
	}
	opts, parts := p.Options(1000, 7)
	if opts.Rows < 64 || len(parts) != 2 {
		t.Errorf("scaled options: %+v parts=%v", opts, parts)
	}
	total := 0
	for _, c := range parts {
		total += c
	}
	if total != opts.Cols {
		t.Errorf("party features %v do not sum to cols %d", parts, opts.Cols)
	}
	d, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != opts.Rows {
		t.Error("preset generation failed")
	}
	if _, ok := PresetByName("nope"); ok {
		t.Error("unknown preset found")
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	d, _ := Generate(GenOptions{Rows: 40, Cols: 12, Density: 0.3, Seed: 3})
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVM(&buf, d.Cols())
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != d.Rows() || back.Cols() != d.Cols() {
		t.Fatalf("shape changed: %dx%d", back.Rows(), back.Cols())
	}
	for i := 0; i < d.Rows(); i++ {
		if back.Labels[i] != d.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
		for j := 0; j < d.Cols(); j++ {
			if math.Abs(back.Get(i, j)-d.Get(i, j)) > 1e-9 {
				t.Fatalf("value (%d,%d) changed", i, j)
			}
		}
	}
}

func TestLibSVMParsing(t *testing.T) {
	in := "+1 1:0.5 3:2\n-1 2:1\n\n# comment\n0 1:7\n"
	d, err := ReadLibSVM(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 3 || d.Cols() != 3 {
		t.Fatalf("shape %dx%d", d.Rows(), d.Cols())
	}
	if d.Labels[0] != 1 || d.Labels[1] != 0 || d.Labels[2] != 0 {
		t.Errorf("labels = %v (want -1 normalized to 0)", d.Labels)
	}
	if d.Get(0, 0) != 0.5 || d.Get(1, 1) != 1 {
		t.Error("values wrong")
	}

	for _, bad := range []string{"x 1:1\n", "1 foo\n", "1 0:1\n", "1 1:zzz\n"} {
		if _, err := ReadLibSVM(strings.NewReader(bad), 0); err == nil {
			t.Errorf("parsed invalid input %q", bad)
		}
	}
	if _, err := ReadLibSVM(strings.NewReader(""), 0); err == nil {
		t.Error("empty input accepted")
	}
}

func TestFromDense(t *testing.T) {
	d, err := FromDense([][]float64{{1, 0}, {0, 2}}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Density() != 1 {
		t.Errorf("dense density = %g, want 1 (zeros stored)", d.Density())
	}
	if _, err := FromDense([][]float64{{1}, {1, 2}}, nil); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := FromDense(nil, nil); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestGetPropertyAgainstRow(t *testing.T) {
	d, _ := Generate(GenOptions{Rows: 60, Cols: 20, Density: 0.25, Seed: 17})
	f := func(i, j uint8) bool {
		r, c := int(i)%d.Rows(), int(j)%d.Cols()
		cols, vals := d.Row(r)
		want := 0.0
		for k, cc := range cols {
			if int(cc) == c {
				want = vals[k]
			}
		}
		return d.Get(r, c) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
