package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// GenOptions describes a synthetic classification dataset, following the
// generator of Section 5.2 of "An Experimental Evaluation of Large Scale
// GBDT Systems" (Fu et al., VLDB 2019), which the paper uses for its
// ablation datasets: a sparse ground-truth linear model produces labels
// through a logistic link, and features are either dense Gaussian or
// sparse positive values at a target density.
type GenOptions struct {
	Rows int
	Cols int
	// Density in (0,1]; 1 generates a fully dense matrix.
	Density float64
	// Dense features are N(0,1); sparse features are Uniform(0,1]
	// (positive, so absent entries sort below all stored ones, matching
	// the split semantics of high-dimensional sparse datasets such as
	// rcv1).
	Dense bool
	// NoiseProb flips each label with this probability; raising it
	// lowers the achievable AUC, which is how the "synthesis" preset
	// reproduces the paper's near-random 0.53 AUC regime.
	NoiseProb float64
	Seed      int64
}

// Generate builds the dataset deterministically from the seed.
func Generate(o GenOptions) (*Dataset, error) {
	if o.Rows <= 0 || o.Cols <= 0 {
		return nil, fmt.Errorf("dataset: non-positive shape %dx%d", o.Rows, o.Cols)
	}
	if o.Density <= 0 || o.Density > 1 {
		return nil, fmt.Errorf("dataset: density %g out of (0,1]", o.Density)
	}
	rng := newRNG(o.Seed)

	// Sparse ground-truth weights over ~20% of the features (at least
	// one), so labels carry signal for any shape.
	w := make([]float64, o.Cols)
	active := o.Cols / 5
	if active < 1 {
		active = 1
	}
	for _, j := range rng.Perm(o.Cols)[:active] {
		w[j] = rng.NormFloat64() * 2
	}

	b := NewBuilder(o.Cols)
	nnzPerRow := int(math.Max(1, o.Density*float64(o.Cols)))
	idx := make([]int32, 0, nnzPerRow)
	vals := make([]float64, 0, nnzPerRow)
	dots := make([]float64, o.Rows)
	for i := 0; i < o.Rows; i++ {
		idx, vals = idx[:0], vals[:0]
		var dot float64
		if o.Dense || nnzPerRow >= o.Cols {
			for j := 0; j < o.Cols; j++ {
				v := rng.NormFloat64()
				idx = append(idx, int32(j))
				vals = append(vals, v)
				dot += v * w[j]
			}
		} else {
			// Sample nnzPerRow distinct columns.
			seen := make(map[int32]bool, nnzPerRow)
			for len(seen) < nnzPerRow {
				j := int32(rng.Intn(o.Cols))
				if seen[j] {
					continue
				}
				seen[j] = true
				v := rng.Float64()
				if v == 0 {
					v = 0.5
				}
				idx = append(idx, j)
				vals = append(vals, v)
				dot += v * w[j]
			}
		}
		dots[i] = dot
		if err := b.AddRowUnlabeled(idx, vals); err != nil {
			return nil, err
		}
	}

	// Standardize the logits so the label signal strength does not
	// depend on which ground-truth weights happened to be drawn — a
	// logit std of 2 puts the Bayes-optimal AUC around 0.9 before the
	// configured label noise.
	var mean, sd float64
	for _, d := range dots {
		mean += d
	}
	mean /= float64(len(dots))
	for _, d := range dots {
		sd += (d - mean) * (d - mean)
	}
	sd = math.Sqrt(sd / float64(len(dots)))
	if sd < 1e-12 {
		sd = 1
	}

	d := b.Build()
	labels := make([]float64, o.Rows)
	for i, dot := range dots {
		logit := (dot - mean) / sd * 2
		p := 1 / (1 + math.Exp(-logit))
		y := 0.0
		if rng.Float64() < p {
			y = 1
		}
		if o.NoiseProb > 0 && rng.Float64() < o.NoiseProb {
			y = 1 - y
		}
		labels[i] = y
	}
	d.Labels = labels
	return d, nil
}

// MultiGenOptions describes a synthetic multiclass dataset: dense
// Gaussian features, one ground-truth weight vector per class, labels
// by softmax sampling over the class logits.
type MultiGenOptions struct {
	Rows, Cols, Classes int
	// NoiseProb replaces each label with a uniform class with this
	// probability.
	NoiseProb float64
	Seed      int64
}

// GenerateMulticlass builds a k-class dataset deterministically from the
// seed. Labels are class indices in [0, Classes) stored as float64.
func GenerateMulticlass(o MultiGenOptions) (*Dataset, error) {
	if o.Rows <= 0 || o.Cols <= 0 {
		return nil, fmt.Errorf("dataset: non-positive shape %dx%d", o.Rows, o.Cols)
	}
	if o.Classes < 2 {
		return nil, fmt.Errorf("dataset: multiclass needs >= 2 classes, got %d", o.Classes)
	}
	rng := newRNG(o.Seed)
	w := make([][]float64, o.Classes)
	for c := range w {
		w[c] = make([]float64, o.Cols)
		for j := range w[c] {
			w[c][j] = rng.NormFloat64() * 2
		}
	}
	b := NewBuilder(o.Cols)
	idx := make([]int32, o.Cols)
	vals := make([]float64, o.Cols)
	labels := make([]float64, 0, o.Rows)
	logits := make([]float64, o.Classes)
	for i := 0; i < o.Rows; i++ {
		for j := 0; j < o.Cols; j++ {
			idx[j] = int32(j)
			vals[j] = rng.NormFloat64()
		}
		for c := range logits {
			var dot float64
			for j, v := range vals {
				dot += v * w[c][j]
			}
			logits[c] = dot / math.Sqrt(float64(o.Cols))
		}
		best := 0
		for c := 1; c < o.Classes; c++ {
			if logits[c] > logits[best] {
				best = c
			}
		}
		if o.NoiseProb > 0 && rng.Float64() < o.NoiseProb {
			best = rng.Intn(o.Classes)
		}
		labels = append(labels, float64(best))
		if err := b.AddRowUnlabeled(idx, vals); err != nil {
			return nil, err
		}
	}
	d := b.Build()
	d.Labels = labels
	return d, nil
}

// RankGenOptions describes a synthetic learning-to-rank dataset:
// Groups query groups of GroupSize documents each, dense Gaussian
// features, and relevance grades assigned by within-group quantile of a
// noisy ground-truth score, so every group carries the full grade range.
type RankGenOptions struct {
	Groups, GroupSize, Cols int
	// Grades is the number of relevance levels (labels 0..Grades-1);
	// defaults to 3 when zero.
	Grades int
	// Noise is the std of the Gaussian perturbation on the ground-truth
	// score before grading; higher noise lowers the achievable NDCG.
	Noise float64
	Seed  int64
}

// GenerateRanking builds the dataset deterministically from the seed and
// returns it with the query-group sizes (all GroupSize, in row order).
func GenerateRanking(o RankGenOptions) (*Dataset, []int, error) {
	if o.Groups <= 0 || o.GroupSize < 2 || o.Cols <= 0 {
		return nil, nil, fmt.Errorf("dataset: ranking shape %d groups × %d docs × %d cols invalid", o.Groups, o.GroupSize, o.Cols)
	}
	grades := o.Grades
	if grades == 0 {
		grades = 3
	}
	if grades < 2 {
		return nil, nil, fmt.Errorf("dataset: ranking needs >= 2 grades, got %d", grades)
	}
	rng := newRNG(o.Seed)
	w := make([]float64, o.Cols)
	for j := range w {
		w[j] = rng.NormFloat64() * 2
	}
	b := NewBuilder(o.Cols)
	idx := make([]int32, o.Cols)
	vals := make([]float64, o.Cols)
	labels := make([]float64, 0, o.Groups*o.GroupSize)
	scores := make([]float64, o.GroupSize)
	order := make([]int, o.GroupSize)
	groups := make([]int, o.Groups)
	for g := 0; g < o.Groups; g++ {
		groups[g] = o.GroupSize
		for doc := 0; doc < o.GroupSize; doc++ {
			var dot float64
			for j := 0; j < o.Cols; j++ {
				idx[j] = int32(j)
				vals[j] = rng.NormFloat64()
				dot += vals[j] * w[j]
			}
			scores[doc] = dot/math.Sqrt(float64(o.Cols)) + rng.NormFloat64()*o.Noise
			if err := b.AddRowUnlabeled(idx, vals); err != nil {
				return nil, nil, err
			}
		}
		// Grade by within-group rank: the top fraction gets the highest
		// grade, so grades are present in every group.
		for doc := range order {
			order[doc] = doc
		}
		sortInts(order, func(a, b int) bool { return scores[a] > scores[b] })
		groupLabels := make([]float64, o.GroupSize)
		for pos, doc := range order {
			groupLabels[doc] = float64(grades - 1 - pos*grades/o.GroupSize)
		}
		labels = append(labels, groupLabels...)
	}
	d := b.Build()
	d.Labels = labels
	return d, groups, nil
}

func sortInts(idx []int, less func(a, b int) bool) {
	sort.Slice(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
}

// Preset describes one of the paper's Table 3 datasets as a synthetic
// equivalent with the same instance/feature/density shape.
type Preset struct {
	Name string
	// PartyFeatures gives the per-party feature counts (Party A first,
	// Party B last), matching Table 3's "#Features (A/B)".
	PartyFeatures []int
	Rows          int
	Density       float64
	Dense         bool
	NoiseProb     float64
}

// Presets lists the seven evaluation datasets of Table 3.
var Presets = []Preset{
	{Name: "census", PartyFeatures: []int{78, 70}, Rows: 22000, Density: 0.0878},
	{Name: "a9a", PartyFeatures: []int{73, 50}, Rows: 32000, Density: 0.1128},
	{Name: "susy", PartyFeatures: []int{9, 9}, Rows: 5000000, Density: 1, Dense: true},
	{Name: "epsilon", PartyFeatures: []int{1000, 1000}, Rows: 400000, Density: 1, Dense: true},
	{Name: "rcv1", PartyFeatures: []int{23000, 23000}, Rows: 697000, Density: 0.0015},
	{Name: "synthesis", PartyFeatures: []int{25000, 25000}, Rows: 10000000, Density: 0.002, NoiseProb: 0.45},
	{Name: "industry", PartyFeatures: []int{50000, 50000}, Rows: 55000000, Density: 0.0003, NoiseProb: 0.2},
}

// PresetByName looks a preset up; ok is false for unknown names.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// Options converts a preset to generator options scaled down by `scale`
// (scale 1 reproduces the paper's full size; experiments on one machine
// use e.g. scale 1000). Rows shrink by scale and feature counts by
// √scale; density is rescaled so the *number of stored entries per row*
// matches the original dataset — per-row signal is what the learners see,
// and keeping it constant is what preserves each dataset's regime.
func (p Preset) Options(scale float64, seed int64) (GenOptions, []int) {
	if scale < 1 {
		scale = 1
	}
	rows := int(math.Max(64, float64(p.Rows)/scale))
	origCols := 0
	for _, f := range p.PartyFeatures {
		origCols += f
	}
	parts := make([]int, len(p.PartyFeatures))
	cols := 0
	for i, f := range p.PartyFeatures {
		parts[i] = int(math.Max(4, float64(f)/math.Sqrt(scale)))
		cols += parts[i]
	}
	nnzPerRow := math.Max(1, p.Density*float64(origCols))
	density := math.Min(1, nnzPerRow/float64(cols))
	return GenOptions{
		Rows:      rows,
		Cols:      cols,
		Density:   density,
		Dense:     p.Dense,
		NoiseProb: p.NoiseProb,
		Seed:      seed,
	}, parts
}
