package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLibSVM checks the parser never panics and that everything it
// accepts survives a write/read round trip.
func FuzzReadLibSVM(f *testing.F) {
	f.Add("1 1:0.5 3:2\n-1 2:1\n")
	f.Add("0 1:1e300\n")
	f.Add("# comment\n+1 5:0.001\n")
	f.Add("1 1:nan\n")
	f.Add("")
	f.Add("1 0:1\n")
	f.Add("1 1:1 1:2\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadLibSVM(strings.NewReader(input), 0)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteLibSVM(&buf, d); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		back, err := ReadLibSVM(&buf, d.Cols())
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.Rows() != d.Rows() || back.Cols() != d.Cols() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				d.Rows(), d.Cols(), back.Rows(), back.Cols())
		}
	})
}
