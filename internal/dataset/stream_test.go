package dataset

import (
	"reflect"
	"strings"
	"testing"
)

type rowCopy struct {
	idx   []int32
	vals  []float64
	label float64
}

func collect(t *testing.T, g *StreamGenerator) []rowCopy {
	t.Helper()
	var rows []rowCopy
	err := g.Scan(func(row int, indices []int32, values []float64, label float64) error {
		rows = append(rows, rowCopy{
			idx:   append([]int32(nil), indices...),
			vals:  append([]float64(nil), values...),
			label: label,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestStreamGeneratorReplaysIdentically(t *testing.T) {
	g, err := NewStreamGenerator(GenOptions{Rows: 300, Cols: 20, Density: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, b := collect(t, g), collect(t, g)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two scans of the same generator differ")
	}
	// A second generator with the same options must also agree.
	g2, err := NewStreamGenerator(GenOptions{Rows: 300, Cols: 20, Density: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, collect(t, g2)) {
		t.Fatal("fresh generator with same options differs")
	}
}

func TestStreamGeneratorRowShape(t *testing.T) {
	g, err := NewStreamGenerator(GenOptions{Rows: 100, Cols: 10, Density: 0.4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	err = g.Scan(func(row int, indices []int32, values []float64, label float64) error {
		for k := 1; k < len(indices); k++ {
			if indices[k] <= indices[k-1] {
				t.Fatalf("row %d indices not strictly increasing: %v", row, indices)
			}
		}
		for k, j := range indices {
			if j < 0 || j >= 10 {
				t.Fatalf("row %d column %d out of range", row, j)
			}
			if values[k] == 0 {
				t.Fatalf("row %d stores an explicit zero", row)
			}
		}
		if label != 0 && label != 1 {
			t.Fatalf("row %d label %g not binary", row, label)
		}
		if label == 1 {
			ones++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ones == 0 || ones == 100 {
		t.Fatalf("degenerate label distribution: %d/100 positive", ones)
	}
}

func TestScanLibSVMCallback(t *testing.T) {
	in := "1 1:0.5 3:2\n\n# comment\n-1 2:1.5\n"
	var rows []rowCopy
	n, maxCols, err := ScanLibSVM(strings.NewReader(in), 0, func(indices []int32, values []float64, label float64) error {
		rows = append(rows, rowCopy{
			idx:   append([]int32(nil), indices...),
			vals:  append([]float64(nil), values...),
			label: label,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || maxCols != 3 {
		t.Fatalf("got %d rows, %d cols", n, maxCols)
	}
	want := []rowCopy{
		{idx: []int32{0, 2}, vals: []float64{0.5, 2}, label: 1},
		{idx: []int32{1}, vals: []float64{1.5}, label: 0}, // -1 normalizes to 0
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows %+v, want %+v", rows, want)
	}
}
