package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadLibSVMRanking(t *testing.T) {
	in := "2 qid:1 1:0.5 3:1\n0 qid:1 2:-1\n1 qid:7 1:2\n1 qid:7 3:0.25\n"
	d, groups, err := ReadLibSVMRanking(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 4 || len(groups) != 2 || groups[0] != 2 || groups[1] != 2 {
		t.Fatalf("rows %d groups %v, want 4 rows, groups [2 2]", d.Rows(), groups)
	}
	if d.Labels[0] != 2 || d.Labels[2] != 1 {
		t.Errorf("labels %v", d.Labels)
	}
	// Grades are not classes: a -1 label in a qid file must survive, not
	// be normalized to 0.
	if d2, _, err := ReadLibSVMRanking(strings.NewReader("-1 qid:1 1:1\n0 qid:1 2:1\n"), 0); err != nil {
		t.Fatal(err)
	} else if d2.Labels[0] != -1 {
		t.Errorf("ranking label -1 was normalized to %g", d2.Labels[0])
	}
	// A qid reappearing after another group breaks group contiguity.
	if _, _, err := ReadLibSVMRanking(strings.NewReader("1 qid:1 1:1\n1 qid:2 1:1\n1 qid:1 1:1\n"), 0); err == nil {
		t.Error("reappearing qid accepted")
	}
}

func TestRankingWriteReadRoundTrip(t *testing.T) {
	d, groups, err := GenerateRanking(RankGenOptions{Groups: 5, GroupSize: 4, Cols: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLibSVMRanking(&buf, d, groups); err != nil {
		t.Fatal(err)
	}
	got, gotGroups, err := ReadLibSVMRanking(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != d.Rows() || len(gotGroups) != len(groups) {
		t.Fatalf("round trip: %d rows %d groups, want %d/%d", got.Rows(), len(gotGroups), d.Rows(), len(groups))
	}
	for i := range groups {
		if gotGroups[i] != groups[i] {
			t.Fatalf("group %d = %d, want %d", i, gotGroups[i], groups[i])
		}
	}
	for i := 0; i < d.Rows(); i++ {
		if got.Labels[i] != d.Labels[i] {
			t.Fatalf("label %d = %g, want %g", i, got.Labels[i], d.Labels[i])
		}
		ac, av := d.Row(i)
		bc, bv := got.Row(i)
		if len(ac) != len(bc) {
			t.Fatalf("row %d width %d, want %d", i, len(bc), len(ac))
		}
		for k := range ac {
			if ac[k] != bc[k] || av[k] != bv[k] {
				t.Fatalf("row %d entry %d mismatch", i, k)
			}
		}
	}
	// Mis-sized groups must be rejected before any bytes are written.
	if err := WriteLibSVMRanking(&bytes.Buffer{}, d, groups[:len(groups)-1]); err == nil {
		t.Error("short group cover accepted")
	}
}

func TestGenerateMulticlassShape(t *testing.T) {
	d, err := GenerateMulticlass(MultiGenOptions{Rows: 200, Cols: 5, Classes: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]int{}
	for _, y := range d.Labels {
		if y < 0 || y > 3 || y != float64(int(y)) {
			t.Fatalf("label %g outside class range", y)
		}
		seen[y]++
	}
	if len(seen) != 4 {
		t.Errorf("only %d of 4 classes appear in 200 rows", len(seen))
	}
	if _, err := GenerateMulticlass(MultiGenOptions{Rows: 10, Cols: 2, Classes: 1}); err == nil {
		t.Error("single-class generator accepted")
	}
}
