package gbdt

import (
	"fmt"
	"runtime"
	"sync"

	"vf2boost/internal/dataset"
)

// Params configures training. DefaultParams matches the paper's protocol:
// T=20 trees, η=0.1, L=7 tree layers (6 split levels), s=20 bins.
type Params struct {
	// NumTrees is T.
	NumTrees int
	// LearningRate is η.
	LearningRate float64
	// MaxDepth is the number of split levels; a tree has MaxDepth+1
	// layers of nodes.
	MaxDepth int
	// MaxBins is s, the histogram bins per feature.
	MaxBins int
	// Split holds the regularization parameters.
	Split SplitParams
	// Loss is the training objective (defaults to logistic).
	Loss Loss
	// Workers bounds histogram-build parallelism; <= 0 uses GOMAXPROCS.
	Workers int
	// BaseScore is the initial raw margin of every instance.
	BaseScore float64
	// OnTreeDone, if set, is called after each boosting round with the
	// model built so far (used by the loss-vs-time harness of Figure 10).
	OnTreeDone func(tree int, m *Model)
}

// DefaultParams returns the paper's hyper-parameters.
func DefaultParams() Params {
	return Params{
		NumTrees:     20,
		LearningRate: 0.1,
		MaxDepth:     6,
		MaxBins:      20,
		Split:        SplitParams{Lambda: 1},
		Loss:         LogisticLoss{},
	}
}

func (p *Params) normalize() error {
	if p.NumTrees <= 0 {
		return fmt.Errorf("gbdt: NumTrees must be positive, got %d", p.NumTrees)
	}
	if p.LearningRate <= 0 {
		return fmt.Errorf("gbdt: LearningRate must be positive, got %g", p.LearningRate)
	}
	if p.MaxDepth < 1 || p.MaxDepth > 30 {
		return fmt.Errorf("gbdt: MaxDepth %d out of [1,30]", p.MaxDepth)
	}
	if p.MaxBins < 2 || p.MaxBins > 256 {
		return fmt.Errorf("gbdt: MaxBins %d out of [2,256]", p.MaxBins)
	}
	if p.Loss == nil {
		p.Loss = LogisticLoss{}
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Model is a trained GBDT ensemble.
type Model struct {
	Trees        []*Tree `json:"trees"`
	LearningRate float64 `json:"learning_rate"`
	BaseScore    float64 `json:"base_score"`
	LossName     string  `json:"loss"`
	NumFeatures  int     `json:"num_features"`
	// NumOutputs is k for multi-output models (trees stored round-robin,
	// tree t belongs to output t mod k); 0 or 1 means single-output.
	NumOutputs int `json:"num_outputs,omitempty"`
}

// PredictMargin returns the raw margin of row i.
func (m *Model) PredictMargin(d *dataset.Dataset, i int) float64 {
	s := m.BaseScore
	for _, t := range m.Trees {
		s += m.LearningRate * t.Predict(d, i)
	}
	return s
}

// PredictAll returns raw margins for every row.
func (m *Model) PredictAll(d *dataset.Dataset) []float64 {
	out := make([]float64, d.Rows())
	parallelRows(d.Rows(), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.PredictMargin(d, i)
		}
	})
	return out
}

// nodeWork is the per-node state during layer-wise growth.
type nodeWork struct {
	id    int32
	insts []int32
	g, h  float64
}

// Train fits a GBDT model on a labeled dataset.
func Train(d *dataset.Dataset, p Params) (*Model, error) {
	if d.Labels == nil {
		return nil, fmt.Errorf("gbdt: dataset has no labels")
	}
	if err := p.normalize(); err != nil {
		return nil, err
	}
	mapper, err := NewBinMapper(d, p.MaxBins)
	if err != nil {
		return nil, err
	}
	return TrainBinned(NewBinnedMatrix(d, mapper), d.Labels, p)
}

// TrainBinned fits a GBDT model from an already-discretized view and its
// label vector — the shared entry point of the in-memory path (Train
// above) and the out-of-core path (internal/ooc), which never
// materializes a Dataset. Margins are updated through binned routing,
// which is exactly equivalent to raw-value routing: every split
// threshold is a cut value, so "v <= Cuts[f][k]" and "Bin(f, v) <= k"
// partition instances identically.
func TrainBinned(bv BinView, labels []float64, p Params) (*Model, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	n := bv.Rows()
	if len(labels) != n {
		return nil, fmt.Errorf("gbdt: %d labels for %d rows", len(labels), n)
	}
	margins := make([]float64, n)
	for i := range margins {
		margins[i] = p.BaseScore
	}
	grads := make([]float64, n)
	hess := make([]float64, n)
	model := &Model{
		LearningRate: p.LearningRate,
		BaseScore:    p.BaseScore,
		LossName:     p.Loss.Name(),
		NumFeatures:  len(bv.Mapper().Cuts),
	}

	for t := 0; t < p.NumTrees; t++ {
		for i := 0; i < n; i++ {
			grads[i], hess[i] = p.Loss.GradHess(labels[i], margins[i])
		}
		tree, err := growTree(bv, grads, hess, p)
		if err != nil {
			return nil, err
		}
		model.Trees = append(model.Trees, tree)
		if err := updateMarginsBinned(margins, tree, bv, p.LearningRate, p.Workers); err != nil {
			return nil, err
		}
		if p.OnTreeDone != nil {
			p.OnTreeDone(t, model)
		}
	}
	return model, nil
}

// growTree grows one tree layer-by-layer. A view failure (a disk-backed
// view that could not deliver a row even after its self-healing path ran)
// aborts the tree and surfaces as the view's typed error.
//
// Views that expose row-range shards (ShardedView, see shardmajor.go)
// are grown shard-major instead: identical trees, one shard load per
// layer instead of one per node.
func growTree(bm BinView, grads, hess []float64, p Params) (*Tree, error) {
	if sv, ok := shardMajor(bm); ok {
		return growTreeShardMajor(sv, grads, hess, p)
	}
	tree := NewTree()
	all := make([]int32, bm.Rows())
	var g0, h0 float64
	for i := range all {
		all[i] = int32(i)
		g0 += grads[i]
		h0 += hess[i]
	}
	active := []*nodeWork{{id: 0, insts: all, g: g0, h: h0}}

	for depth := 0; depth < p.MaxDepth && len(active) > 0; depth++ {
		if dh, ok := bm.(DepthHinter); ok {
			dh.HintDepth(depth)
		}
		hists, err := buildLayerHistograms(bm, active, grads, hess, p.Workers)
		if err != nil {
			return nil, err
		}
		var next []*nodeWork
		for k, nw := range active {
			split := BestSplit(hists[k], nw.g, nw.h, p.Split)
			if !split.Valid() {
				tree.SetLeaf(nw.id, LeafWeight(nw.g, nw.h, p.Split.Lambda))
				continue
			}
			threshold := bm.Mapper().Threshold(int(split.Feature), int(split.Bin))
			leftID, rightID := tree.AddSplit(nw.id, split.Feature, threshold, split.Gain)
			left, right, err := partition(bm, nw.insts, split.Feature, split.Bin)
			if err != nil {
				return nil, err
			}
			next = append(next,
				&nodeWork{id: leftID, insts: left, g: split.GL, h: split.HL},
				&nodeWork{id: rightID, insts: right, g: nw.g - split.GL, h: nw.h - split.HL},
			)
		}
		active = next
	}
	// Remaining active nodes at the depth limit become leaves.
	for _, nw := range active {
		tree.SetLeaf(nw.id, LeafWeight(nw.g, nw.h, p.Split.Lambda))
	}
	return tree, nil
}

// partition splits a node's instances: stored bin <= k or missing → left.
func partition(bm BinView, insts []int32, feature int32, bin int32) (left, right []int32, err error) {
	for _, i := range insts {
		goesLeft, err := GoesLeft(bm, i, feature, bin)
		if err != nil {
			return nil, nil, err
		}
		if goesLeft {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right, nil
}

// GoesLeft reports whether instance i routes to the left child of a split
// on (feature, bin): stored values in bins <= bin go left, missing goes
// left.
func GoesLeft(bm BinView, i, feature, bin int32) (bool, error) {
	cols, bins, err := bm.Row(int(i))
	if err != nil {
		return false, err
	}
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if cols[mid] < feature {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && cols[lo] == feature {
		return int32(bins[lo]) <= bin, nil
	}
	return true, nil // missing
}

// BuildHistograms builds one histogram per instance list, parallelizing
// across nodes when there are many and across instance shards when there
// are few. It is shared with the federated engine, where Party B builds
// its plaintext histograms with exactly the local trainer's code.
func BuildHistograms(bm BinView, lists [][]int32, grads, hess []float64, workers int) ([]*Histogram, error) {
	nodes := make([]*nodeWork, len(lists))
	for k, l := range lists {
		nodes[k] = &nodeWork{insts: l}
	}
	if sv, ok := shardMajor(bm); ok && listsAscending(lists) {
		return buildLayerHistogramsSharded(sv, nodes, grads, hess, workers)
	}
	return buildLayerHistograms(bm, nodes, grads, hess, workers)
}

// errCollector retains the first error reported by a set of workers.
type errCollector struct {
	mu  sync.Mutex
	err error
}

func (c *errCollector) add(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *errCollector) first() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// buildLayerHistograms builds one histogram per active node, parallelizing
// across nodes when the layer is wide and across instance shards when it
// is narrow (the root). The first view failure any worker hits wins; the
// partial layer is discarded.
func buildLayerHistograms(bm BinView, active []*nodeWork, grads, hess []float64, workers int) ([]*Histogram, error) {
	hists := make([]*Histogram, len(active))
	if len(active) >= workers {
		var wg sync.WaitGroup
		var ec errCollector
		sem := make(chan struct{}, workers)
		for k, nw := range active {
			wg.Add(1)
			sem <- struct{}{}
			go func(k int, nw *nodeWork) {
				defer wg.Done()
				defer func() { <-sem }()
				h := NewHistogram(bm.Mapper())
				ec.add(h.Accumulate(bm, nw.insts, grads, hess))
				hists[k] = h
			}(k, nw)
		}
		wg.Wait()
		if err := ec.first(); err != nil {
			return nil, err
		}
		return hists, nil
	}
	for k, nw := range active {
		h, err := shardedHistogram(bm, nw.insts, grads, hess, workers)
		if err != nil {
			return nil, err
		}
		hists[k] = h
	}
	return hists, nil
}

// shardedHistogram accumulates one node's histogram with instance-level
// parallelism.
func shardedHistogram(bm BinView, insts []int32, grads, hess []float64, workers int) (*Histogram, error) {
	if workers <= 1 || len(insts) < 1024 {
		h := NewHistogram(bm.Mapper())
		if err := h.Accumulate(bm, insts, grads, hess); err != nil {
			return nil, err
		}
		return h, nil
	}
	parts := make([]*Histogram, workers)
	var wg sync.WaitGroup
	var ec errCollector
	chunk := (len(insts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(insts) {
			break
		}
		hi := lo + chunk
		if hi > len(insts) {
			hi = len(insts)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := NewHistogram(bm.Mapper())
			ec.add(h.Accumulate(bm, insts[lo:hi], grads, hess))
			parts[w] = h
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ec.first(); err != nil {
		return nil, err
	}
	var acc *Histogram
	for _, ph := range parts {
		if ph == nil {
			continue
		}
		if acc == nil {
			acc = ph
		} else {
			acc.Merge(ph)
		}
	}
	return acc, nil
}

// updateMarginsBinned adds each instance's leaf weight to its margin,
// routing through the binned view instead of raw values. Every internal
// node's threshold is a mapper cut, so precomputing its bin index lets a
// row walk the tree on stored bins alone; missing features route left,
// matching Tree.Predict.
func updateMarginsBinned(margins []float64, tree *Tree, bv BinView, eta float64, workers int) error {
	bins := splitBins(tree, bv.Mapper())
	var ec errCollector
	parallelRows(len(margins), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, rowBins, err := bv.Row(i)
			if err != nil {
				ec.add(err)
				return
			}
			margins[i] += eta * predictBinnedRow(tree, bins, cols, rowBins)
		}
	})
	return ec.first()
}

// splitBins precomputes, for every internal node, the bin index of its
// threshold: Bin(f, Threshold(f,k)) == k because cuts are strictly
// increasing, so binned routing "rowBin <= bins[id]" is exactly the raw
// routing "v <= threshold".
func splitBins(t *Tree, m *BinMapper) []int32 {
	bins := make([]int32, len(t.Nodes))
	for id := range t.Nodes {
		n := &t.Nodes[id]
		if n.Feature >= 0 {
			bins[id] = int32(m.Bin(int(n.Feature), n.Threshold))
		}
	}
	return bins
}

// predictBinnedRow walks one tree over a row's stored (feature, bin)
// pairs (sorted by feature) and returns the leaf weight.
func predictBinnedRow(t *Tree, bins []int32, cols []int32, rowBins []uint8) float64 {
	id := int32(0)
	for {
		n := &t.Nodes[id]
		if n.Feature < 0 {
			return n.Weight
		}
		// Binary search the row's sorted feature list.
		lo, hi := 0, len(cols)
		for lo < hi {
			mid := (lo + hi) / 2
			if cols[mid] < n.Feature {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(cols) && cols[lo] == n.Feature {
			if int32(rowBins[lo]) <= bins[id] {
				id = n.Left
			} else {
				id = n.Right
			}
		} else {
			id = n.Left // missing
		}
	}
}

func parallelRows(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
