package gbdt

import (
	"math/rand"
	"sort"
	"testing"

	"vf2boost/internal/dataset"
)

// TestBinMapperSketchPath exercises the GK-sketch proposal path, which
// only activates above the exact-sort threshold, and checks the cuts are
// close to true quantiles.
func TestBinMapperSketchPath(t *testing.T) {
	const rows = SketchThreshold + 5000
	rng := rand.New(rand.NewSource(7))
	b := dataset.NewBuilder(1)
	values := make([]float64, rows)
	for i := 0; i < rows; i++ {
		values[i] = rng.NormFloat64()
		if err := b.AddRow([]int32{0}, []float64{values[i]}, 0); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	m, err := NewBinMapper(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	cuts := m.Cuts[0]
	if len(cuts) < 5 {
		t.Fatalf("sketch proposed only %d cuts", len(cuts))
	}
	sort.Float64s(values)
	// Every cut's rank must be near its nominal decile.
	for k, c := range cuts {
		rank := sort.SearchFloat64s(values, c)
		want := (k + 1) * rows / 10
		if diff := rank - want; diff < -rows/20 || diff > rows/20 {
			t.Errorf("cut %d at rank %d, want ~%d", k, rank, want)
		}
	}
	// Bin mapping must stay monotone across the cuts.
	prev := -1
	for _, v := range []float64{-3, -1, -0.5, 0, 0.5, 1, 3} {
		bin := m.Bin(0, v)
		if bin < prev {
			t.Fatalf("binning not monotone at %g", v)
		}
		prev = bin
	}
}

// TestPartitionConsistentWithPredictRouting: the binned partition used in
// training and the threshold comparison used at prediction time must
// agree for every instance.
func TestPartitionConsistentWithPredictRouting(t *testing.T) {
	d, err := dataset.Generate(dataset.GenOptions{Rows: 500, Cols: 6, Density: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewBinMapper(d, 12)
	if err != nil {
		t.Fatal(err)
	}
	bm := NewBinnedMatrix(d, m)
	for j := 0; j < d.Cols(); j++ {
		for k := 0; k < m.NumBins(j)-1; k++ {
			threshold := m.Threshold(j, k)
			for i := 0; i < d.Rows(); i += 7 {
				cols, vals := d.Row(i)
				var stored bool
				var v float64
				for c, col := range cols {
					if col == int32(j) {
						stored, v = true, vals[c]
					}
				}
				wantLeft := !stored || v <= threshold
				got, err := GoesLeft(bm, int32(i), int32(j), int32(k))
				if err != nil {
					t.Fatal(err)
				}
				if got != wantLeft {
					t.Fatalf("feature %d bin %d instance %d: binned routing %v, raw routing %v",
						j, k, i, got, wantLeft)
				}
			}
		}
	}
}

// TestSplitGainNonNegativeProperty: the gain of the best split can never
// be negative with Gamma=0 (splitting can only reduce the loss bound).
func TestSplitGainNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nBins := 2 + rng.Intn(10)
		g := make([]float64, nBins)
		h := make([]float64, nBins)
		var tg, th float64
		for i := range g {
			g[i] = rng.NormFloat64()
			h[i] = rng.Float64()
			tg += g[i]
			th += h[i]
		}
		s := BestSplitForFeature(0, g, h, tg, th, SplitParams{Lambda: 1})
		if s.Valid() && s.Gain < 0 {
			t.Fatalf("trial %d: negative best gain %g", trial, s.Gain)
		}
	}
}

// TestLeafWeightMinimizesObjective: ω* = -G/(H+λ) must beat nearby
// weights under the quadratic leaf objective G·ω + 0.5·(H+λ)·ω².
func TestLeafWeightMinimizesObjective(t *testing.T) {
	obj := func(g, h, lambda, w float64) float64 {
		return g*w + 0.5*(h+lambda)*w*w
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		g := rng.NormFloat64() * 10
		h := rng.Float64() * 5
		lambda := rng.Float64() * 2
		w := LeafWeight(g, h, lambda)
		best := obj(g, h, lambda, w)
		for _, eps := range []float64{-0.1, -0.01, 0.01, 0.1} {
			if obj(g, h, lambda, w+eps) < best-1e-12 {
				t.Fatalf("trial %d: ω*+%g beats ω*", trial, eps)
			}
		}
	}
}
