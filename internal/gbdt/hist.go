package gbdt

// Histogram holds the per-feature gradient statistics of one tree node:
// for every feature and bin, the sums of gradients and hessians of the
// node's instances whose stored value falls in that bin. Instances with no
// stored entry for a feature contribute to no bin; their mass is recovered
// as nodeTotal - sum(bins) during split finding ("missing goes left").
type Histogram struct {
	mapper  *BinMapper
	Offsets []int // per-feature start index into the flat arrays
	G       []float64
	H       []float64
	Count   []int32
}

// NewHistogram allocates a zeroed histogram shaped by the mapper.
func NewHistogram(m *BinMapper) *Histogram {
	offsets := make([]int, len(m.Cuts)+1)
	for j := range m.Cuts {
		offsets[j+1] = offsets[j] + m.NumBins(j)
	}
	total := offsets[len(m.Cuts)]
	return &Histogram{
		mapper:  m,
		Offsets: offsets,
		G:       make([]float64, total),
		H:       make([]float64, total),
		Count:   make([]int32, total),
	}
}

// NumFeatures returns the feature count.
func (h *Histogram) NumFeatures() int { return len(h.Offsets) - 1 }

// Bins returns the total number of bins across all features.
func (h *Histogram) Bins() int { return len(h.G) }

// Accumulate sweeps the given instances of the binned view into the
// histogram, stopping at the first row the view fails to deliver (the
// partial accumulation is then meaningless and must be discarded).
func (h *Histogram) Accumulate(bm BinView, instances []int32, grads, hess []float64) error {
	for _, i := range instances {
		cols, bins, err := bm.Row(int(i))
		if err != nil {
			return err
		}
		gi, hi := grads[i], hess[i]
		for k, j := range cols {
			idx := h.Offsets[j] + int(bins[k])
			h.G[idx] += gi
			h.H[idx] += hi
			h.Count[idx]++
		}
	}
	return nil
}

// Merge adds another histogram (same shape) into this one; used to reduce
// per-worker partial histograms.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.G {
		h.G[i] += o.G[i]
		h.H[i] += o.H[i]
		h.Count[i] += o.Count[i]
	}
}

// Sub subtracts a child histogram from this one in place, yielding the
// sibling (the classic histogram-subtraction identity).
func (h *Histogram) Sub(o *Histogram) {
	for i := range h.G {
		h.G[i] -= o.G[i]
		h.H[i] -= o.H[i]
		h.Count[i] -= o.Count[i]
	}
}

// Reset zeroes the histogram for reuse.
func (h *Histogram) Reset() {
	for i := range h.G {
		h.G[i] = 0
		h.H[i] = 0
		h.Count[i] = 0
	}
}

// FeatureSlice returns the (G, H) bin slices of feature j; they alias
// internal storage.
func (h *Histogram) FeatureSlice(j int) ([]float64, []float64) {
	lo, hi := h.Offsets[j], h.Offsets[j+1]
	return h.G[lo:hi], h.H[lo:hi]
}
