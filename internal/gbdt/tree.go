package gbdt

import (
	"sort"

	"vf2boost/internal/dataset"
)

// Node is one decision-tree node. Internal nodes route instances by
// "stored value <= Threshold (or missing) → left"; leaves carry the raw
// prediction weight ω* (the trainer applies the learning rate η when
// summing tree outputs).
type Node struct {
	// Feature is the split feature; -1 marks a leaf.
	Feature int32 `json:"feature"`
	// Threshold is the split value for internal nodes.
	Threshold float64 `json:"threshold"`
	// Left and Right are child indexes into Tree.Nodes; 0 is never a
	// child (the root), so 0 doubles as "none" on leaves.
	Left  int32 `json:"left"`
	Right int32 `json:"right"`
	// Weight is the leaf value ω*.
	Weight float64 `json:"weight"`
	// Gain records the split gain for model inspection.
	Gain float64 `json:"gain,omitempty"`
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// Tree is a single decision tree stored as a node arena rooted at index 0.
type Tree struct {
	Nodes []Node `json:"nodes"`
}

// NewTree returns a tree with a single (leaf) root.
func NewTree() *Tree {
	return &Tree{Nodes: []Node{{Feature: -1}}}
}

// AddSplit turns node id into an internal node and appends two leaf
// children, returning their ids.
func (t *Tree) AddSplit(id int32, feature int32, threshold, gain float64) (left, right int32) {
	left = int32(len(t.Nodes))
	right = left + 1
	t.Nodes = append(t.Nodes, Node{Feature: -1}, Node{Feature: -1})
	n := &t.Nodes[id]
	n.Feature = feature
	n.Threshold = threshold
	n.Gain = gain
	n.Left = left
	n.Right = right
	return left, right
}

// SetLeaf marks node id as a leaf with the given weight.
func (t *Tree) SetLeaf(id int32, weight float64) {
	n := &t.Nodes[id]
	n.Feature = -1
	n.Weight = weight
	n.Left, n.Right = 0, 0
}

// NumLeaves counts the leaves.
func (t *Tree) NumLeaves() int {
	c := 0
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			c++
		}
	}
	return c
}

// Depth returns the maximum root-to-leaf depth (a root-only tree has
// depth 0).
func (t *Tree) Depth() int {
	var walk func(id int32, d int) int
	walk = func(id int32, d int) int {
		n := &t.Nodes[id]
		if n.IsLeaf() {
			return d
		}
		l := walk(n.Left, d+1)
		r := walk(n.Right, d+1)
		if l > r {
			return l
		}
		return r
	}
	return walk(0, 0)
}

// Predict routes row i of d through the tree and returns the leaf weight.
// Missing features route left.
func (t *Tree) Predict(d *dataset.Dataset, i int) float64 {
	cols, vals := d.Row(i)
	id := int32(0)
	for {
		n := &t.Nodes[id]
		if n.IsLeaf() {
			return n.Weight
		}
		v, ok := lookup(cols, vals, n.Feature)
		if !ok || v <= n.Threshold {
			id = n.Left
		} else {
			id = n.Right
		}
	}
}

// lookup binary-searches a sorted sparse row for a feature.
func lookup(cols []int32, vals []float64, feature int32) (float64, bool) {
	k := sort.Search(len(cols), func(x int) bool { return cols[x] >= feature })
	if k < len(cols) && cols[k] == feature {
		return vals[k], true
	}
	return 0, false
}
