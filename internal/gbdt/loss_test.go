package gbdt

import "testing"

func TestLossByName(t *testing.T) {
	if l := LossByName("logistic"); l == nil || l.Name() != "logistic" {
		t.Errorf("LossByName(logistic) = %v", l)
	}
	if l := LossByName("squared"); l == nil || l.Name() != "squared" {
		t.Errorf("LossByName(squared) = %v", l)
	}
	for _, bad := range []string{"", "nope", "Logistic", "squared "} {
		if l := LossByName(bad); l != nil {
			t.Errorf("LossByName(%q) = %v, want nil", bad, l)
		}
	}
}

func TestSquaredBound(t *testing.T) {
	if b := (SquaredLoss{}).GradBound(); b != 64 {
		t.Errorf("unfitted squared bound = %g, want the historical 64", b)
	}
	// Fitting derives the bound from the observed label range instead of
	// the hard-coded constant, with 4x overshoot headroom and a floor of
	// 4 for near-zero targets.
	cases := []struct {
		labels []float64
		want   float64
	}{
		{[]float64{0.1, -0.2, 0.5}, 4},
		{[]float64{100, -250, 30}, 1000},
		{nil, 4},
	}
	for _, c := range cases {
		fit := SquaredLoss{Bound: FitSquaredBound(c.labels)}
		if got := fit.GradBound(); got != c.want {
			t.Errorf("fitted bound for %v = %g, want %g", c.labels, got, c.want)
		}
	}
}
