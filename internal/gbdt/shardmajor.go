package gbdt

import (
	"sort"
	"sync"
)

// Shard-major tree growth.
//
// The node-major schedule in train.go sweeps one instance list per node
// per layer. Over an in-memory BinnedMatrix that is optimal — every row
// costs the same — but over a disk-backed view whose rows live in
// row-range shards it re-reads every shard once per *node list* that
// crosses it, and the store's LRU cache turns a layer into shards ×
// nodes worth of load/evict churn (the measured 11.8k shard loads for a
// 31-shard, 3-tree, depth-6 run — ~127× read amplification over
// shards × trees).
//
// The shard-major schedule inverts the loops: each layer walks the
// shards in row order exactly once, and while a shard is resident it
// accumulates *every* node's rows that live in it. Two invariants make
// the result byte-identical to the node-major path (float addition is
// not associative, so this is a scheduling property, not a given):
//
//  1. The accumulation units are the node-major path's own units — the
//     whole list on wide layers, shardedHistogram's fixed-size chunks on
//     narrow ones — merged in the same order. Nothing is regrouped.
//  2. Instance lists are ascending (the root list is 0..n-1 and
//     partition preserves order), so a unit's rows inside one shard form
//     a contiguous subrange, and the per-shard barrier of the sweep
//     delivers those subranges to each unit's histogram in ascending
//     order — the exact sequence a sequential Accumulate performs.
//
// Parallelism therefore lives across units within a shard (distinct
// histograms, no races) and in the I/O: the sweep hints the next
// planned shard to a ShardPrefetcher so its read overlaps this shard's
// compute, and the store's singleflight load path (internal/ooc) lets
// concurrent loads of distinct shards proceed without serializing on a
// store-wide mutex.
//
// Tree growth additionally fuses partitioning into the next layer's
// sweep (growTreeShardMajor): one shard pass both routes the previous
// layer's split rows to their children and accumulates the children's
// histograms, so a tree of depth d costs d sweeps plus the margin
// update — (d+1) × shards loads per tree in total, the bound the
// regression tests assert.

// ShardedView is an optional BinView capability implemented by views
// whose rows live in contiguous row-range shards with non-uniform
// access cost (the disk-backed store in internal/ooc). When a view
// reports more than one shard, tree growth and histogram construction
// switch to the shard-major schedule above; models stay byte-identical
// across schedules.
type ShardedView interface {
	BinView
	// NumShards returns the shard count.
	NumShards() int
	// ShardRowRange returns the half-open row range [lo, hi) of shard k.
	// Shards cover the row space contiguously and in index order.
	ShardRowRange(k int) (lo, hi int)
}

// ShardPrefetcher is an optional capability of a ShardedView: the
// shard-major sweep announces the next shard it is going to touch so
// the view can read it ahead asynchronously. PrefetchShard must not
// block; a view is free to ignore hints (e.g. under budget pressure).
type ShardPrefetcher interface{ PrefetchShard(k int) }

// hintDepth forwards the layer announcement to views that want it.
func hintDepth(bm BinView, depth int) {
	if dh, ok := bm.(DepthHinter); ok {
		dh.HintDepth(depth)
	}
}

// shardMajor reports whether bm should be swept shard-major.
func shardMajor(bm BinView) (ShardedView, bool) {
	sv, ok := bm.(ShardedView)
	return sv, ok && sv.NumShards() > 1
}

// histChunk is one accumulation unit of a layer: a node's whole
// instance list, or one of shardedHistogram's fixed-size chunks of it.
type histChunk struct {
	node  int
	insts []int32
	hist  *Histogram
}

// planChunks reproduces the node-major path's accumulation units for
// one layer: one unit per node on wide layers (len(active) >= workers),
// shardedHistogram's chunking on narrow ones. Unit boundaries and the
// later merge order must match the node-major path exactly — they
// decide the float addition order.
func planChunks(m *BinMapper, active []*nodeWork, workers int) ([]*histChunk, [][]*histChunk) {
	perNode := make([][]*histChunk, len(active))
	var all []*histChunk
	wide := len(active) >= workers
	for k, nw := range active {
		if wide || workers <= 1 || len(nw.insts) < 1024 {
			c := &histChunk{node: k, insts: nw.insts, hist: NewHistogram(m)}
			perNode[k] = []*histChunk{c}
			all = append(all, c)
			continue
		}
		chunk := (len(nw.insts) + workers - 1) / workers
		for lo := 0; lo < len(nw.insts); lo += chunk {
			hi := min(lo+chunk, len(nw.insts))
			c := &histChunk{node: k, insts: nw.insts[lo:hi], hist: NewHistogram(m)}
			perNode[k] = append(perNode[k], c)
			all = append(all, c)
		}
	}
	return all, perNode
}

// shardTask is one chunk's contiguous instance subrange inside one shard.
type shardTask struct {
	c      *histChunk
	lo, hi int
}

// planShardTasks splits every chunk at shard boundaries. Instance lists
// are ascending, so a chunk's rows inside one shard are one contiguous
// subrange, found by binary search.
func planShardTasks(sv ShardedView, chunks []*histChunk) [][]shardTask {
	tasks := make([][]shardTask, sv.NumShards())
	for _, c := range chunks {
		i := 0
		for i < len(c.insts) {
			s := shardOf(sv, int(c.insts[i]))
			_, hiRow := sv.ShardRowRange(s)
			j := i + sort.Search(len(c.insts)-i, func(x int) bool { return int(c.insts[i+x]) >= hiRow })
			tasks[s] = append(tasks[s], shardTask{c: c, lo: i, hi: j})
			i = j
		}
	}
	return tasks
}

// shardOf locates the shard holding a row.
func shardOf(sv ShardedView, row int) int {
	return sort.Search(sv.NumShards(), func(s int) bool {
		_, hi := sv.ShardRowRange(s)
		return row < hi
	})
}

// sweepShards walks the planned shards in row order, making each one
// resident exactly once per layer and running its tasks with up to
// `workers` goroutines before moving on. The per-shard barrier is what
// keeps every chunk's subranges arriving in ascending order; the
// prefetch hint is what keeps the next shard's read overlapped with
// this shard's compute.
func sweepShards(sv ShardedView, tasks [][]shardTask, workers int, run func(t shardTask) error) error {
	pf, _ := sv.(ShardPrefetcher)
	var touched []int
	for s := range tasks {
		if len(tasks[s]) > 0 {
			touched = append(touched, s)
		}
	}
	for ti, s := range touched {
		// Make the shard resident with one demand row before fanning out,
		// then hint the next planned shard so its read runs behind the
		// compute. Prefetching before the demand load would race it for
		// the cache's LRU slots; after it, the current shard is the
		// most-recently-used and safe.
		lo, _ := sv.ShardRowRange(s)
		if _, _, err := sv.Row(lo); err != nil {
			return err
		}
		if pf != nil && ti+1 < len(touched) {
			pf.PrefetchShard(touched[ti+1])
		}
		ts := tasks[s]
		if workers <= 1 || len(ts) == 1 {
			for _, t := range ts {
				if err := run(t); err != nil {
					return err
				}
			}
			continue
		}
		var wg sync.WaitGroup
		var ec errCollector
		sem := make(chan struct{}, workers)
		for _, t := range ts {
			wg.Add(1)
			sem <- struct{}{}
			go func(t shardTask) {
				defer wg.Done()
				defer func() { <-sem }()
				ec.add(run(t))
			}(t)
		}
		wg.Wait()
		if err := ec.first(); err != nil {
			return err
		}
	}
	return nil
}

// buildLayerHistogramsSharded is the shard-major equivalent of
// buildLayerHistograms: same histograms, bit for bit, at most one load
// per shard for the whole layer.
func buildLayerHistogramsSharded(sv ShardedView, active []*nodeWork, grads, hess []float64, workers int) ([]*Histogram, error) {
	chunks, perNode := planChunks(sv.Mapper(), active, workers)
	tasks := planShardTasks(sv, chunks)
	err := sweepShards(sv, tasks, workers, func(t shardTask) error {
		return t.c.hist.Accumulate(sv, t.c.insts[t.lo:t.hi], grads, hess)
	})
	if err != nil {
		return nil, err
	}
	hists := make([]*Histogram, len(active))
	for k, cs := range perNode {
		acc := cs[0].hist
		for _, c := range cs[1:] {
			acc.Merge(c.hist)
		}
		hists[k] = acc
	}
	return hists, nil
}

// listsAscending reports whether every instance list is sorted — the
// precondition for splitting lists at shard boundaries. Lists produced
// by this package and by the federated engines always are; the check
// guards external callers of BuildHistograms.
func listsAscending(lists [][]int32) bool {
	for _, l := range lists {
		for i := 1; i < len(l); i++ {
			if l[i-1] > l[i] {
				return false
			}
		}
	}
	return true
}

// fuseTask is one split carried into the next layer's sweep: the parent
// list still to be routed, and the two children whose instance lists
// and (when fused) histograms the sweep fills in.
type fuseTask struct {
	parent       *nodeWork
	feature, bin int32
	left, right  *nodeWork
}

// canFuse reports whether the next layer's histograms can be built in
// the same sweep that routes the parents' rows: true when every child
// is a single accumulation unit — the next layer is wide enough to get
// one unit per node, or small enough that shardedHistogram would not
// chunk it (children can't outgrow their parents). Otherwise the chunk
// boundaries depend on final child list lengths unknowable mid-sweep,
// and the layer falls back to a routing sweep followed by a histogram
// sweep — two shard passes instead of one, only on narrow layers with
// large parents.
func canFuse(fusion []*fuseTask, nextCount, workers int) bool {
	if workers <= 1 || nextCount >= workers {
		return true
	}
	for _, f := range fusion {
		if len(f.parent.insts) >= 1024 {
			return false
		}
	}
	return true
}

// routeScratch is the per-task routing buffer pair.
type routeScratch struct{ left, right []int32 }

// routeSegment routes one contiguous slice of a parent's instances
// through its split, appending to the scratch buffers.
func routeSegment(sv ShardedView, f *fuseTask, seg []int32, sc *routeScratch) error {
	sc.left, sc.right = sc.left[:0], sc.right[:0]
	for _, i := range seg {
		goesLeft, err := GoesLeft(sv, i, f.feature, f.bin)
		if err != nil {
			return err
		}
		if goesLeft {
			sc.left = append(sc.left, i)
		} else {
			sc.right = append(sc.right, i)
		}
	}
	return nil
}

// fusedSweep performs one shard pass that both routes every parent's
// rows to its children and accumulates the children's histograms. Rows
// are routed shard by shard in ascending order, so child lists come out
// ascending and each child histogram receives its rows in exactly the
// order a dedicated node-major sweep would add them.
func fusedSweep(sv ShardedView, fusion []*fuseTask, grads, hess []float64, workers int) ([]*Histogram, error) {
	m := sv.Mapper()
	chunks := make([]*histChunk, len(fusion))
	for i, f := range fusion {
		chunks[i] = &histChunk{node: i, insts: f.parent.insts}
	}
	lh := make([]*Histogram, len(fusion))
	rh := make([]*Histogram, len(fusion))
	for i := range fusion {
		lh[i] = NewHistogram(m)
		rh[i] = NewHistogram(m)
	}
	pool := sync.Pool{New: func() any { return new(routeScratch) }}
	tasks := planShardTasks(sv, chunks)
	err := sweepShards(sv, tasks, workers, func(t shardTask) error {
		f := fusion[t.c.node]
		sc := pool.Get().(*routeScratch)
		defer pool.Put(sc)
		if err := routeSegment(sv, f, f.parent.insts[t.lo:t.hi], sc); err != nil {
			return err
		}
		if err := lh[t.c.node].Accumulate(sv, sc.left, grads, hess); err != nil {
			return err
		}
		if err := rh[t.c.node].Accumulate(sv, sc.right, grads, hess); err != nil {
			return err
		}
		f.left.insts = append(f.left.insts, sc.left...)
		f.right.insts = append(f.right.insts, sc.right...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	hists := make([]*Histogram, 0, 2*len(fusion))
	for i := range fusion {
		hists = append(hists, lh[i], rh[i])
	}
	return hists, nil
}

// partitionSweepSharded routes every parent's rows to its children in
// one shard pass without touching histograms — the first half of the
// two-pass fallback when fusion can't predict child chunk boundaries.
func partitionSweepSharded(sv ShardedView, fusion []*fuseTask, workers int) error {
	chunks := make([]*histChunk, len(fusion))
	for i, f := range fusion {
		chunks[i] = &histChunk{node: i, insts: f.parent.insts}
	}
	pool := sync.Pool{New: func() any { return new(routeScratch) }}
	return sweepShards(sv, tasksOf(sv, chunks), workers, func(t shardTask) error {
		f := fusion[t.c.node]
		sc := pool.Get().(*routeScratch)
		defer pool.Put(sc)
		if err := routeSegment(sv, f, f.parent.insts[t.lo:t.hi], sc); err != nil {
			return err
		}
		f.left.insts = append(f.left.insts, sc.left...)
		f.right.insts = append(f.right.insts, sc.right...)
		return nil
	})
}

func tasksOf(sv ShardedView, chunks []*histChunk) [][]shardTask {
	return planShardTasks(sv, chunks)
}

// growTreeShardMajor grows one tree with the shard-major schedule. The
// split decisions, node numbering and leaf weights replicate growTree
// exactly; only the order shards are touched in changes. Each layer
// costs one shard sweep (fused routing + child histograms); the last
// layer's routing is skipped entirely because leaf weights come from
// the split statistics, never from the child lists.
func growTreeShardMajor(sv ShardedView, grads, hess []float64, p Params) (*Tree, error) {
	tree := NewTree()
	all := make([]int32, sv.Rows())
	var g0, h0 float64
	for i := range all {
		all[i] = int32(i)
		g0 += grads[i]
		h0 += hess[i]
	}
	active := []*nodeWork{{id: 0, insts: all, g: g0, h: h0}}

	hintDepth(sv, 0)
	hists, err := buildLayerHistogramsSharded(sv, active, grads, hess, p.Workers)
	if err != nil {
		return nil, err
	}
	for depth := 0; ; depth++ {
		last := depth == p.MaxDepth-1
		var fusion []*fuseTask
		var next []*nodeWork
		for k, nw := range active {
			split := BestSplit(hists[k], nw.g, nw.h, p.Split)
			if !split.Valid() {
				tree.SetLeaf(nw.id, LeafWeight(nw.g, nw.h, p.Split.Lambda))
				continue
			}
			threshold := sv.Mapper().Threshold(int(split.Feature), int(split.Bin))
			leftID, rightID := tree.AddSplit(nw.id, split.Feature, threshold, split.Gain)
			left := &nodeWork{id: leftID, g: split.GL, h: split.HL}
			right := &nodeWork{id: rightID, g: nw.g - split.GL, h: nw.h - split.HL}
			if last {
				tree.SetLeaf(leftID, LeafWeight(left.g, left.h, p.Split.Lambda))
				tree.SetLeaf(rightID, LeafWeight(right.g, right.h, p.Split.Lambda))
				continue
			}
			fusion = append(fusion, &fuseTask{parent: nw, feature: split.Feature, bin: split.Bin, left: left, right: right})
			next = append(next, left, right)
		}
		if last || len(next) == 0 {
			return tree, nil
		}
		hintDepth(sv, depth+1)
		if canFuse(fusion, len(next), p.Workers) {
			hists, err = fusedSweep(sv, fusion, grads, hess, p.Workers)
		} else {
			if err = partitionSweepSharded(sv, fusion, p.Workers); err != nil {
				return nil, err
			}
			hists, err = buildLayerHistogramsSharded(sv, next, grads, hess, p.Workers)
		}
		if err != nil {
			return nil, err
		}
		active = next
	}
}
