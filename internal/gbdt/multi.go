package gbdt

import (
	"fmt"

	"vf2boost/internal/dataset"
)

// MultiObjective is the slice of the objective-layer interface the
// trainer consumes, declared structurally so gbdt does not import
// internal/objective (which imports gbdt for the Loss compat shim).
// An implementation with NumOutputs() == k trains k trees per boosting
// round over a k×n margin matrix; GradHess is called once per round and
// its k gradient vectors are shared by all k trees of that round.
type MultiObjective interface {
	Name() string
	NumOutputs() int
	InitMargin(labels []float64, output int) float64
	GradHess(labels []float64, margins, grads, hess [][]float64) error
}

// Outputs returns the model's output count (1 for classic single-output
// models serialized before the field existed).
func (m *Model) Outputs() int {
	if m.NumOutputs > 1 {
		return m.NumOutputs
	}
	return 1
}

// PredictOutputs returns the k raw margins of row i. Trees are stored
// round-robin: tree t belongs to output t mod k.
func (m *Model) PredictOutputs(d *dataset.Dataset, i int) []float64 {
	k := m.Outputs()
	out := make([]float64, k)
	for c := range out {
		out[c] = m.BaseScore
	}
	for t, tree := range m.Trees {
		out[t%k] += m.LearningRate * tree.Predict(d, i)
	}
	return out
}

// PredictAllOutputs returns the k×n raw margin matrix for every row.
func (m *Model) PredictAllOutputs(d *dataset.Dataset) [][]float64 {
	k := m.Outputs()
	out := make([][]float64, k)
	for c := range out {
		out[c] = make([]float64, d.Rows())
	}
	parallelRows(d.Rows(), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for t, tree := range m.Trees {
				out[t%k][i] += m.LearningRate * tree.Predict(d, i)
			}
		}
	})
	if m.BaseScore != 0 {
		for c := range out {
			for i := range out[c] {
				out[c][i] += m.BaseScore
			}
		}
	}
	return out
}

// TrainMulti fits a multi-output GBDT model on a labeled dataset.
func TrainMulti(d *dataset.Dataset, obj MultiObjective, p Params) (*Model, error) {
	if d.Labels == nil {
		return nil, fmt.Errorf("gbdt: dataset has no labels")
	}
	if err := p.normalize(); err != nil {
		return nil, err
	}
	mapper, err := NewBinMapper(d, p.MaxBins)
	if err != nil {
		return nil, err
	}
	return TrainMultiBinned(NewBinnedMatrix(d, mapper), d.Labels, obj, p)
}

// TrainMultiBinned fits a k-output GBDT model: p.NumTrees boosting
// rounds of k trees each, one per output in round-robin order. The
// objective's GradHess runs once per round — the local mirror of the
// federated engine's one-encryption-pass-per-round schedule — and the
// round's k trees consume its k gradient vectors.
func TrainMultiBinned(bv BinView, labels []float64, obj MultiObjective, p Params) (*Model, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	k := obj.NumOutputs()
	if k < 1 {
		return nil, fmt.Errorf("gbdt: objective %s has %d outputs", obj.Name(), k)
	}
	n := bv.Rows()
	if len(labels) != n {
		return nil, fmt.Errorf("gbdt: %d labels for %d rows", len(labels), n)
	}
	margins := make([][]float64, k)
	grads := make([][]float64, k)
	hess := make([][]float64, k)
	for c := 0; c < k; c++ {
		margins[c] = make([]float64, n)
		grads[c] = make([]float64, n)
		hess[c] = make([]float64, n)
		init := p.BaseScore + obj.InitMargin(labels, c)
		for i := range margins[c] {
			margins[c][i] = init
		}
	}
	model := &Model{
		LearningRate: p.LearningRate,
		BaseScore:    p.BaseScore,
		LossName:     obj.Name(),
		NumFeatures:  len(bv.Mapper().Cuts),
		NumOutputs:   k,
	}

	for round := 0; round < p.NumTrees; round++ {
		if err := obj.GradHess(labels, margins, grads, hess); err != nil {
			return nil, err
		}
		for c := 0; c < k; c++ {
			tree, err := growTree(bv, grads[c], hess[c], p)
			if err != nil {
				return nil, err
			}
			model.Trees = append(model.Trees, tree)
			if err := updateMarginsBinned(margins[c], tree, bv, p.LearningRate, p.Workers); err != nil {
				return nil, err
			}
		}
		if p.OnTreeDone != nil {
			p.OnTreeDone(round, model)
		}
	}
	return model, nil
}
