package gbdt

// SplitParams are the regularization knobs of the split-gain formula.
type SplitParams struct {
	// Lambda is the L2 leaf-weight regularizer λ.
	Lambda float64
	// Gamma is the per-split complexity penalty γ.
	Gamma float64
	// MinChildHess rejects splits whose left or right hessian sum falls
	// below this value (a child-weight constraint).
	MinChildHess float64
	// MinSplitGain rejects splits whose gain does not exceed this value;
	// 0 keeps any strictly positive gain.
	MinSplitGain float64
}

// Split describes one candidate split of a node.
type Split struct {
	// Feature is the feature index in the histogram that produced the
	// split (party-local in federated training; global otherwise).
	Feature int32
	// Bin is the candidate bin index k; instances with stored values in
	// bins <= k, plus all missing instances, go left.
	Bin int32
	// Gain is the regularized loss reduction.
	Gain float64
	// GL and HL are the left-child gradient/hessian sums (including
	// missing mass), used to derive the right child by subtraction.
	GL, HL float64
}

// Valid reports whether the split is usable (a found split).
func (s Split) Valid() bool { return s.Bin >= 0 }

// NoSplit is the sentinel returned when no candidate improves the loss.
var NoSplit = Split{Bin: -1, Feature: -1}

// Better imposes the deterministic total order used to pick the best
// split: higher gain wins; ties break toward the lower feature index, then
// the lower bin. Both the local trainer and the federated scheduler use
// this exact rule, which is what makes co-located and federated training
// produce the same trees.
func Better(a, b Split) bool {
	if a.Gain != b.Gain {
		return a.Gain > b.Gain
	}
	if a.Feature != b.Feature {
		return a.Feature < b.Feature
	}
	return a.Bin < b.Bin
}

// leafObjective is G²/(H+λ), the unscaled loss contribution of a leaf.
func leafObjective(g, h, lambda float64) float64 {
	return g * g / (h + lambda)
}

// LeafWeight is the optimal leaf weight ω* = -G/(H+λ) of Equation 1.
func LeafWeight(g, h, lambda float64) float64 {
	return -g / (h + lambda)
}

// SplitGain computes the gain of a (GL, HL) left partition of a node with
// totals (G, H).
func SplitGain(gl, hl, g, h float64, p SplitParams) float64 {
	gr, hr := g-gl, h-hl
	return 0.5*(leafObjective(gl, hl, p.Lambda)+leafObjective(gr, hr, p.Lambda)-leafObjective(g, h, p.Lambda)) - p.Gamma
}

// BestSplitForFeature scans the bins of one feature given the node totals.
// gBins/hBins hold the stored-entry sums per bin; missing mass is added to
// the left side of every candidate.
func BestSplitForFeature(feature int32, gBins, hBins []float64, nodeG, nodeH float64, p SplitParams) Split {
	if len(gBins) < 2 {
		return NoSplit
	}
	var storedG, storedH float64
	for i := range gBins {
		storedG += gBins[i]
		storedH += hBins[i]
	}
	missG, missH := nodeG-storedG, nodeH-storedH

	best := NoSplit
	gl, hl := missG, missH
	for k := 0; k < len(gBins)-1; k++ {
		gl += gBins[k]
		hl += hBins[k]
		hr := nodeH - hl
		if hl < p.MinChildHess || hr < p.MinChildHess {
			continue
		}
		gain := SplitGain(gl, hl, nodeG, nodeH, p)
		if gain <= p.MinSplitGain {
			continue
		}
		cand := Split{Feature: feature, Bin: int32(k), Gain: gain, GL: gl, HL: hl}
		if !best.Valid() || Better(cand, best) {
			best = cand
		}
	}
	return best
}

// BestSplit scans every feature of the histogram and returns the best
// split under the deterministic order, or NoSplit.
func BestSplit(h *Histogram, nodeG, nodeH float64, p SplitParams) Split {
	best := NoSplit
	for j := 0; j < h.NumFeatures(); j++ {
		gBins, hBins := h.FeatureSlice(j)
		cand := BestSplitForFeature(int32(j), gBins, hBins, nodeG, nodeH, p)
		if cand.Valid() && (!best.Valid() || Better(cand, best)) {
			best = cand
		}
	}
	return best
}
