package gbdt

import (
	"encoding/json"
	"reflect"
	"testing"

	"vf2boost/internal/dataset"
)

// chunkedView exposes an in-memory BinnedMatrix as a ShardedView with
// fixed-height row shards — the pure scheduling harness: no disk, no
// cache, so any model difference is the shard-major schedule's fault.
type chunkedView struct {
	*BinnedMatrix
	chunk      int
	prefetched []int
}

func (v *chunkedView) NumShards() int {
	return (v.Rows() + v.chunk - 1) / v.chunk
}

func (v *chunkedView) ShardRowRange(k int) (int, int) {
	lo := k * v.chunk
	return lo, min(lo+v.chunk, v.Rows())
}

func (v *chunkedView) PrefetchShard(k int) { v.prefetched = append(v.prefetched, k) }

var (
	_ ShardedView     = (*chunkedView)(nil)
	_ ShardPrefetcher = (*chunkedView)(nil)
)

func synthBinned(t *testing.T, rows, cols int, seed int64) (*dataset.Dataset, *BinnedMatrix) {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{Rows: rows, Cols: cols, Density: 0.5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewBinMapper(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	return d, NewBinnedMatrix(d, mapper)
}

func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The shard-major schedule must grow byte-identical trees to the
// node-major one — float addition is not associative, so this only
// holds if the schedule replays the node-major accumulation units and
// merge order exactly. Rows > 1024 exercises the narrow-layer chunked
// path (and its two-pass fallback) under workers > 1.
func TestShardMajorModelParity(t *testing.T) {
	for _, rows := range []int{300, 2500} {
		d, bm := synthBinned(t, rows, 8, 42)
		for _, workers := range []int{1, 2, 4} {
			p := DefaultParams()
			p.NumTrees = 3
			p.MaxDepth = 4
			p.MaxBins = 16
			p.Workers = workers

			ref, err := TrainBinned(bm, d.Labels, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, chunk := range []int{64, 1 << 10} {
				cv := &chunkedView{BinnedMatrix: bm, chunk: chunk}
				got, err := TrainBinned(cv, d.Labels, p)
				if err != nil {
					t.Fatal(err)
				}
				if string(modelBytes(t, ref)) != string(modelBytes(t, got)) {
					t.Fatalf("rows=%d workers=%d chunk=%d: shard-major model differs from node-major", rows, workers, chunk)
				}
				if len(cv.prefetched) == 0 && cv.NumShards() > 1 {
					t.Fatalf("rows=%d chunk=%d: sweep never announced a next shard", rows, chunk)
				}
			}
		}
	}
}

// BuildHistograms (the federated engines' entry point) must produce
// bit-equal histograms under the shard-major schedule for ascending
// lists, and fall back to node-major for non-ascending ones.
func TestBuildHistogramsShardedParity(t *testing.T) {
	d, bm := synthBinned(t, 2000, 6, 7)
	n := d.Rows()
	grads := make([]float64, n)
	hess := make([]float64, n)
	for i := range grads {
		grads[i] = float64(i%17) * 0.25
		hess[i] = 1 + float64(i%5)*0.125
	}
	// Ascending lists of varied sizes, including one crossing the 1024
	// chunking threshold and one empty.
	var big, small, empty []int32
	for i := 0; i < n; i += 2 {
		big = append(big, int32(i))
	}
	for i := 1; i < 200; i += 3 {
		small = append(small, int32(i))
	}
	lists := [][]int32{big, small, empty}

	for _, workers := range []int{1, 2, 4} {
		ref, err := BuildHistograms(bm, lists, grads, hess, workers)
		if err != nil {
			t.Fatal(err)
		}
		cv := &chunkedView{BinnedMatrix: bm, chunk: 256}
		got, err := BuildHistograms(cv, lists, grads, hess, workers)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ref {
			if !reflect.DeepEqual(ref[k].G, got[k].G) || !reflect.DeepEqual(ref[k].H, got[k].H) || !reflect.DeepEqual(ref[k].Count, got[k].Count) {
				t.Fatalf("workers=%d: histogram %d differs between schedules", workers, k)
			}
		}
	}

	// A non-ascending list cannot be split at shard boundaries; the
	// dispatch must fall back to node-major, not misroute rows.
	desc := []int32{900, 500, 100, 3}
	ref, err := BuildHistograms(bm, [][]int32{desc}, grads, hess, 2)
	if err != nil {
		t.Fatal(err)
	}
	cv := &chunkedView{BinnedMatrix: bm, chunk: 256}
	got, err := BuildHistograms(cv, [][]int32{desc}, grads, hess, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref[0].G, got[0].G) {
		t.Fatal("non-ascending list mishandled by sharded dispatch")
	}
	if len(cv.prefetched) != 0 {
		t.Fatal("fallback path should not have swept shards")
	}
}

// planShardTasks must cover every instance exactly once, split at shard
// boundaries, in ascending order.
func TestPlanShardTasks(t *testing.T) {
	_, bm := synthBinned(t, 1000, 4, 3)
	cv := &chunkedView{BinnedMatrix: bm, chunk: 300}
	insts := []int32{0, 5, 299, 300, 301, 899, 900, 999}
	c := &histChunk{insts: insts}
	tasks := planShardTasks(cv, []*histChunk{c})
	var flat []int32
	for s := range tasks {
		for _, task := range tasks[s] {
			lo, hi := cv.ShardRowRange(s)
			for _, i := range task.c.insts[task.lo:task.hi] {
				if int(i) < lo || int(i) >= hi {
					t.Fatalf("instance %d assigned to shard %d [%d,%d)", i, s, lo, hi)
				}
				flat = append(flat, i)
			}
		}
	}
	if !reflect.DeepEqual(flat, insts) {
		t.Fatalf("tasks cover %v, want %v", flat, insts)
	}
}
