package gbdt

import (
	"fmt"
	"sort"

	"vf2boost/internal/dataset"
	"vf2boost/internal/quantile"
)

// SketchThreshold is the column size above which cut proposal switches
// from exact sorting to the GK sketch. It is exported so the out-of-core
// sketch pass (internal/ooc) makes the same exact-vs-sketch decision and
// proposes byte-identical cuts.
const SketchThreshold = 1 << 15

// BinView is the read interface over a party's binned feature rows that
// histogram construction, split routing, and tree growth sweep. Two
// implementations exist: the in-memory BinnedMatrix below and the
// disk-backed shard store in internal/ooc — the local trainer and the
// federated engines in internal/core run unchanged against either.
type BinView interface {
	// Rows returns the instance count.
	Rows() int
	// Mapper returns the bin mapper the view was discretized with.
	Mapper() *BinMapper
	// Row returns the stored (feature, bin) pairs of row i, sorted by
	// feature. The slices alias backing storage and must not be modified;
	// an out-of-core view guarantees they stay readable even if the
	// backing shard is later evicted (the GC keeps them alive).
	//
	// A disk-backed view may fail: the error is the view's typed fault
	// (e.g. *ooc.ShardError after retry and rebuild were exhausted) and
	// the sweep in progress must stop and propagate it — training treats
	// it as unrecoverable for the round, and the federated engines turn
	// it into a clean session abort. In-memory views always return nil.
	Row(i int) ([]int32, []uint8, error)
}

// DepthHinter is an optional BinView capability: the trainer announces
// the tree depth it is about to sweep. The hint is purely advisory —
// a view may use it to tune readahead or cache policy, but correctness
// must never depend on it: callers are free to skip hints, repeat
// them, or send depths in any order, and implementations must accept
// any int (clamping negative or oversized values) without changing the
// bytes any Row call returns. Under the shard-major schedule the
// sweep's own next-shard announcements (ShardPrefetcher) carry the
// precise readahead plan; the depth hint merely brackets the layers.
type DepthHinter interface{ HintDepth(depth int) }

// BinMapper holds the per-feature candidate split values ("cuts"). Bin k
// of feature j contains stored values v with cuts[k-1] < v <= cuts[k];
// values above the last cut land in the final bin. Instances with no
// stored entry for a feature ("missing", which includes sparse zeros)
// always route to the left child — see the package comment of
// internal/core for why this convention is shared across engines.
type BinMapper struct {
	// Cuts[j] is strictly increasing; len(Cuts[j])+1 bins exist.
	Cuts [][]float64
	// MaxBins is the configured s.
	MaxBins int
}

// NewBinMapper proposes up to maxBins-1 cuts per feature from the stored
// values of each column, using exact quantiles for small columns and a GK
// sketch for large ones.
func NewBinMapper(d *dataset.Dataset, maxBins int) (*BinMapper, error) {
	if maxBins < 2 || maxBins > 256 {
		return nil, fmt.Errorf("gbdt: maxBins %d out of [2,256]", maxBins)
	}
	cuts := make([][]float64, d.Cols())
	for j := 0; j < d.Cols(); j++ {
		vals := d.ColumnValues(j)
		switch {
		case len(vals) == 0:
			cuts[j] = nil
		case len(vals) <= SketchThreshold:
			cuts[j] = quantile.Exact(vals, maxBins)
		default:
			sk := quantile.MustNew(0.5 / float64(maxBins))
			for _, v := range vals {
				sk.Add(v)
			}
			cuts[j] = sk.Quantiles(maxBins)
		}
	}
	return &BinMapper{Cuts: cuts, MaxBins: maxBins}, nil
}

// NumBins returns the bin count of feature j (at least 1).
func (m *BinMapper) NumBins(j int) int { return len(m.Cuts[j]) + 1 }

// Bin maps a stored value of feature j to its bin index.
func (m *BinMapper) Bin(j int, v float64) int {
	return sort.SearchFloat64s(m.Cuts[j], v)
}

// Threshold returns the split value of candidate bin k of feature j:
// instances with v <= Threshold go left.
func (m *BinMapper) Threshold(j, k int) float64 { return m.Cuts[j][k] }

// BinnedMatrix is the CSR matrix of (feature, bin) pairs that histogram
// construction sweeps over; it is built once per party and reused for
// every tree.
type BinnedMatrix struct {
	rows   int
	rowPtr []int32
	cols   []int32
	bins   []uint8
	mapper *BinMapper
}

// NewBinnedMatrix discretizes every stored entry of d through the mapper.
func NewBinnedMatrix(d *dataset.Dataset, m *BinMapper) *BinnedMatrix {
	bm := &BinnedMatrix{
		rows:   d.Rows(),
		rowPtr: make([]int32, 0, d.Rows()+1),
		cols:   make([]int32, 0, d.NNZ()),
		bins:   make([]uint8, 0, d.NNZ()),
		mapper: m,
	}
	bm.rowPtr = append(bm.rowPtr, 0)
	for i := 0; i < d.Rows(); i++ {
		cols, vals := d.Row(i)
		for k, j := range cols {
			bm.cols = append(bm.cols, j)
			bm.bins = append(bm.bins, uint8(m.Bin(int(j), vals[k])))
		}
		bm.rowPtr = append(bm.rowPtr, int32(len(bm.cols)))
	}
	return bm
}

// Rows returns the instance count.
func (bm *BinnedMatrix) Rows() int { return bm.rows }

// Mapper returns the bin mapper used to build the matrix.
func (bm *BinnedMatrix) Mapper() *BinMapper { return bm.mapper }

// Row returns the stored (feature, bin) pairs of row i; the slices alias
// internal storage. The error is always nil: memory does not fail.
func (bm *BinnedMatrix) Row(i int) ([]int32, []uint8, error) {
	lo, hi := bm.rowPtr[i], bm.rowPtr[i+1]
	return bm.cols[lo:hi], bm.bins[lo:hi], nil
}

// NNZ returns the stored entry count.
func (bm *BinnedMatrix) NNZ() int { return len(bm.cols) }

var _ BinView = (*BinnedMatrix)(nil)
