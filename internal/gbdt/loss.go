// Package gbdt implements a histogram-based gradient boosting decision
// tree trainer in the style of XGBoost's approximate algorithm: features
// are discretized into s quantile bins, per-node gradient histograms are
// accumulated in one sweep per tree layer, and splits maximize the
// regularized gain of Equation 1 of the VF²Boost paper.
//
// The package serves two roles in the reproduction: it is the paper's
// non-federated "XGBoost" baseline, and it supplies the split-finding and
// binning machinery that the federated engine (internal/core) shares, so
// federated and co-located training take identical split decisions.
package gbdt

import "math"

// Loss is a twice-differentiable training objective.
type Loss interface {
	// Name identifies the loss ("logistic", "squared").
	Name() string
	// GradHess returns the first and second derivative of the loss at
	// the raw prediction (margin) for one instance.
	GradHess(label, margin float64) (g, h float64)
	// HessianBound returns an upper bound on |g| (Bound in Section 5.2);
	// gradients of the logistic loss lie in [-1, 1], hessians in [0,
	// 1/4]. The bound drives the histogram-packing shift.
	GradBound() float64
}

// LogisticLoss is the binary cross-entropy on raw margins, the paper's
// loss for all classification experiments.
type LogisticLoss struct{}

func (LogisticLoss) Name() string { return "logistic" }

func (LogisticLoss) GradHess(label, margin float64) (float64, float64) {
	p := 1 / (1 + math.Exp(-margin))
	return p - label, math.Max(p*(1-p), 1e-16)
}

func (LogisticLoss) GradBound() float64 { return 1 }

// SquaredLoss is 0.5·(y-ŷ)² for regression tasks. Bound, when set,
// overrides the default gradient bound; fit it with FitSquaredBound
// before training on unnormalized targets.
type SquaredLoss struct {
	Bound float64
}

func (SquaredLoss) Name() string { return "squared" }

func (SquaredLoss) GradHess(label, margin float64) (float64, float64) {
	return margin - label, 1
}

// GradBound for squared loss depends on the label range. An unfitted
// loss keeps the historical constant 64 (safe for normalized targets);
// a fitted one returns the bound derived from the observed labels, so
// the histogram-packing shift cannot silently overflow on raw targets.
func (l SquaredLoss) GradBound() float64 {
	if l.Bound > 0 {
		return l.Bound
	}
	return 64
}

// FitSquaredBound derives a squared-loss gradient bound from the
// observed label range. Margins start at zero and boosting contracts
// the residual, so |g| = |margin − y| stays within a small multiple of
// max|y|; 4× leaves headroom for transient overshoot and keeps the
// bound a power-of-two-ish round number for the packing shift.
func FitSquaredBound(labels []float64) float64 {
	maxAbs := 1.0
	for _, y := range labels {
		if a := math.Abs(y); a > maxAbs {
			maxAbs = a
		}
	}
	return 4 * maxAbs
}

// LossByName resolves a loss by name; it returns nil for unknown names.
func LossByName(name string) Loss {
	switch name {
	case "logistic":
		return LogisticLoss{}
	case "squared":
		return SquaredLoss{}
	}
	return nil
}
