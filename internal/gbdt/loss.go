// Package gbdt implements a histogram-based gradient boosting decision
// tree trainer in the style of XGBoost's approximate algorithm: features
// are discretized into s quantile bins, per-node gradient histograms are
// accumulated in one sweep per tree layer, and splits maximize the
// regularized gain of Equation 1 of the VF²Boost paper.
//
// The package serves two roles in the reproduction: it is the paper's
// non-federated "XGBoost" baseline, and it supplies the split-finding and
// binning machinery that the federated engine (internal/core) shares, so
// federated and co-located training take identical split decisions.
package gbdt

import "math"

// Loss is a twice-differentiable training objective.
type Loss interface {
	// Name identifies the loss ("logistic", "squared").
	Name() string
	// GradHess returns the first and second derivative of the loss at
	// the raw prediction (margin) for one instance.
	GradHess(label, margin float64) (g, h float64)
	// HessianBound returns an upper bound on |g| (Bound in Section 5.2);
	// gradients of the logistic loss lie in [-1, 1], hessians in [0,
	// 1/4]. The bound drives the histogram-packing shift.
	GradBound() float64
}

// LogisticLoss is the binary cross-entropy on raw margins, the paper's
// loss for all classification experiments.
type LogisticLoss struct{}

func (LogisticLoss) Name() string { return "logistic" }

func (LogisticLoss) GradHess(label, margin float64) (float64, float64) {
	p := 1 / (1 + math.Exp(-margin))
	return p - label, math.Max(p*(1-p), 1e-16)
}

func (LogisticLoss) GradBound() float64 { return 1 }

// SquaredLoss is 0.5·(y-ŷ)² for regression tasks.
type SquaredLoss struct{}

func (SquaredLoss) Name() string { return "squared" }

func (SquaredLoss) GradHess(label, margin float64) (float64, float64) {
	return margin - label, 1
}

// GradBound for squared loss depends on the label range; a generous
// constant suits the normalized targets used in the examples.
func (SquaredLoss) GradBound() float64 { return 64 }

// LossByName resolves a loss by name; it returns nil for unknown names.
func LossByName(name string) Loss {
	switch name {
	case "logistic":
		return LogisticLoss{}
	case "squared":
		return SquaredLoss{}
	}
	return nil
}
