package gbdt

import (
	"bytes"
	"math"
	"testing"

	"vf2boost/internal/dataset"
	"vf2boost/internal/metrics"
)

func genData(t testing.TB, rows, cols int, density float64, dense bool, seed int64) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{
		Rows: rows, Cols: cols, Density: density, Dense: dense, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBinMapperBasics(t *testing.T) {
	d := genData(t, 500, 8, 1, true, 1)
	m, err := NewBinMapper(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d.Cols(); j++ {
		nb := m.NumBins(j)
		if nb < 2 || nb > 20 {
			t.Errorf("feature %d has %d bins", j, nb)
		}
		cuts := m.Cuts[j]
		for k := 1; k < len(cuts); k++ {
			if cuts[k] <= cuts[k-1] {
				t.Fatalf("feature %d cuts not increasing", j)
			}
		}
		// Binning must be monotone and consistent with Threshold.
		vals := d.ColumnValues(j)
		for _, v := range vals[:10] {
			b := m.Bin(j, v)
			if b < len(cuts) && v > m.Threshold(j, b) {
				t.Fatalf("value %g placed in bin %d above its threshold", v, b)
			}
			if b > 0 && v <= m.Threshold(j, b-1) {
				t.Fatalf("value %g placed in bin %d but belongs below", v, b)
			}
		}
	}
}

func TestBinMapperValidation(t *testing.T) {
	d := genData(t, 10, 2, 1, true, 1)
	for _, bad := range []int{1, 0, 257} {
		if _, err := NewBinMapper(d, bad); err == nil {
			t.Errorf("NewBinMapper(%d) accepted", bad)
		}
	}
}

func TestBinMapperEmptyColumn(t *testing.T) {
	b := dataset.NewBuilder(3)
	if err := b.AddRow([]int32{0}, []float64{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow([]int32{0}, []float64{2}, 1); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	m, err := NewBinMapper(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBins(1) != 1 || m.NumBins(2) != 1 {
		t.Error("empty columns should have a single bin")
	}
}

func TestHistogramAccumulateAndMergeSub(t *testing.T) {
	d := genData(t, 200, 5, 0.5, false, 2)
	m, _ := NewBinMapper(d, 10)
	bm := NewBinnedMatrix(d, m)
	grads := make([]float64, d.Rows())
	hess := make([]float64, d.Rows())
	for i := range grads {
		grads[i] = float64(i%7) - 3
		hess[i] = 0.25
	}
	all := make([]int32, d.Rows())
	for i := range all {
		all[i] = int32(i)
	}
	full := NewHistogram(m)
	full.Accumulate(bm, all, grads, hess)

	// Split instances in half; merged halves must equal the full sweep.
	h1, h2 := NewHistogram(m), NewHistogram(m)
	h1.Accumulate(bm, all[:100], grads, hess)
	h2.Accumulate(bm, all[100:], grads, hess)
	merged := NewHistogram(m)
	merged.Merge(h1)
	merged.Merge(h2)
	for i := range full.G {
		if math.Abs(full.G[i]-merged.G[i]) > 1e-9 || full.Count[i] != merged.Count[i] {
			t.Fatalf("merge mismatch at bin %d", i)
		}
	}

	// Histogram subtraction identity: full - h1 == h2.
	fullCopy := NewHistogram(m)
	fullCopy.Merge(full)
	fullCopy.Sub(h1)
	for i := range fullCopy.G {
		if math.Abs(fullCopy.G[i]-h2.G[i]) > 1e-9 {
			t.Fatalf("subtraction identity broken at bin %d", i)
		}
	}

	full.Reset()
	for i := range full.G {
		if full.G[i] != 0 || full.Count[i] != 0 {
			t.Fatal("Reset left residue")
		}
	}
}

func TestSplitGainMatchesHandComputation(t *testing.T) {
	// One feature, two bins; all mass stored.
	g := []float64{-4, 2}
	h := []float64{2, 2}
	p := SplitParams{Lambda: 1}
	s := BestSplitForFeature(0, g, h, -2, 4, p)
	if !s.Valid() {
		t.Fatal("no split found")
	}
	want := 0.5 * (16.0/3 + 4.0/3 - 4.0/5)
	if math.Abs(s.Gain-want) > 1e-12 {
		t.Errorf("gain = %g, want %g", s.Gain, want)
	}
	if s.GL != -4 || s.HL != 2 {
		t.Errorf("left stats (%g,%g)", s.GL, s.HL)
	}
}

func TestSplitMissingGoesLeft(t *testing.T) {
	// Node totals include mass not present in the bins: that mass must be
	// counted on the left side.
	g := []float64{1, 1}
	h := []float64{1, 1}
	p := SplitParams{Lambda: 1}
	s := BestSplitForFeature(0, g, h, 12, 3, p) // missing g=10, h=1
	if !s.Valid() {
		t.Fatal("no split")
	}
	if s.GL != 11 || s.HL != 2 {
		t.Errorf("left stats (%g,%g), want (11,2) including missing mass", s.GL, s.HL)
	}
}

func TestSplitRespectsMinChildHess(t *testing.T) {
	g := []float64{-4, 2}
	h := []float64{0.1, 2}
	s := BestSplitForFeature(0, g, h, -2, 2.1, SplitParams{Lambda: 1, MinChildHess: 0.5})
	if s.Valid() {
		t.Error("split accepted despite tiny left hessian")
	}
}

func TestSplitGammaPenalty(t *testing.T) {
	g := []float64{-1, 1}
	h := []float64{2, 2}
	if s := BestSplitForFeature(0, g, h, 0, 4, SplitParams{Lambda: 1, Gamma: 100}); s.Valid() {
		t.Error("split accepted despite prohibitive gamma")
	}
}

func TestBetterIsDeterministicTotalOrder(t *testing.T) {
	a := Split{Feature: 1, Bin: 2, Gain: 5}
	b := Split{Feature: 0, Bin: 7, Gain: 5}
	if Better(a, b) || !Better(b, a) {
		t.Error("tie must break toward lower feature index")
	}
	c := Split{Feature: 0, Bin: 3, Gain: 5}
	if !Better(c, b) {
		t.Error("tie must break toward lower bin")
	}
	d := Split{Feature: 9, Bin: 9, Gain: 6}
	if !Better(d, c) {
		t.Error("higher gain must win")
	}
}

func TestTrainImprovesLoss(t *testing.T) {
	d := genData(t, 2000, 10, 1, true, 3)
	p := DefaultParams()
	p.NumTrees = 10
	m, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	margins := m.PredictAll(d)
	ll, err := metrics.LogLoss(margins, d.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ll >= math.Ln2 {
		t.Errorf("training loss %g did not improve over trivial ln2", ll)
	}
	auc, err := metrics.AUC(margins, d.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.8 {
		t.Errorf("training AUC %g too low for separable synthetic data", auc)
	}
}

func TestTrainSparsePositiveFeatures(t *testing.T) {
	d := genData(t, 1500, 40, 0.15, false, 4)
	p := DefaultParams()
	p.NumTrees = 8
	m, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	margins := m.PredictAll(d)
	auc, err := metrics.AUC(margins, d.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.7 {
		t.Errorf("sparse AUC %g too low", auc)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	d := genData(t, 4000, 10, 1, true, 5)
	train, valid := d.TrainValidSplit(0.8, 1)
	p := DefaultParams()
	m, err := Train(train, p)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := metrics.AUC(m.PredictAll(valid), valid.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.75 {
		t.Errorf("validation AUC = %g", auc)
	}
}

func TestTrainRespectsDepthLimit(t *testing.T) {
	d := genData(t, 1000, 6, 1, true, 6)
	p := DefaultParams()
	p.NumTrees = 3
	p.MaxDepth = 2
	m, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range m.Trees {
		if depth := tr.Depth(); depth > 2 {
			t.Errorf("tree depth %d exceeds limit 2", depth)
		}
		if leaves := tr.NumLeaves(); leaves > 4 {
			t.Errorf("tree has %d leaves, max 4 at depth 2", leaves)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	d := genData(t, 800, 8, 1, true, 7)
	p := DefaultParams()
	p.NumTrees = 4
	m1, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Rows(); i += 37 {
		if m1.PredictMargin(d, i) != m2.PredictMargin(d, i) {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestTrainWorkerCountInvariance(t *testing.T) {
	d := genData(t, 1200, 12, 0.4, false, 8)
	p := DefaultParams()
	p.NumTrees = 3
	p.Workers = 1
	m1, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 8
	m8, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Rows(); i += 17 {
		a, b := m1.PredictMargin(d, i), m8.PredictMargin(d, i)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("worker count changed predictions: %g vs %g", a, b)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	d := genData(t, 50, 4, 1, true, 9)
	bad := DefaultParams()
	bad.NumTrees = 0
	if _, err := Train(d, bad); err == nil {
		t.Error("NumTrees=0 accepted")
	}
	bad = DefaultParams()
	bad.MaxDepth = 0
	if _, err := Train(d, bad); err == nil {
		t.Error("MaxDepth=0 accepted")
	}
	bad = DefaultParams()
	bad.LearningRate = 0
	if _, err := Train(d, bad); err == nil {
		t.Error("LearningRate=0 accepted")
	}
	unlabeled := d.SubColumns([]int{0, 1}, false)
	if _, err := Train(unlabeled, DefaultParams()); err == nil {
		t.Error("unlabeled dataset accepted")
	}
}

func TestOnTreeDoneCallback(t *testing.T) {
	d := genData(t, 300, 5, 1, true, 10)
	p := DefaultParams()
	p.NumTrees = 5
	calls := 0
	p.OnTreeDone = func(tr int, m *Model) {
		if tr != calls {
			t.Errorf("callback tree index %d, want %d", tr, calls)
		}
		if len(m.Trees) != tr+1 {
			t.Errorf("model has %d trees at round %d", len(m.Trees), tr)
		}
		calls++
	}
	if _, err := Train(d, p); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("callback called %d times, want 5", calls)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	d := genData(t, 400, 6, 1, true, 11)
	p := DefaultParams()
	p.NumTrees = 3
	m, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Rows(); i += 29 {
		if m.PredictMargin(d, i) != back.PredictMargin(d, i) {
			t.Fatal("loaded model predicts differently")
		}
	}
	if _, err := Load(bytes.NewBufferString("{}")); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":99,"model":{"trees":[{}]}}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(bytes.NewBufferString("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestGoesLeftMissing(t *testing.T) {
	b := dataset.NewBuilder(2)
	if err := b.AddRow([]int32{0}, []float64{5}, 1); err != nil { // feature 1 missing
		t.Fatal(err)
	}
	d := b.Build()
	m, _ := NewBinMapper(d, 4)
	bm := NewBinnedMatrix(d, m)
	left, err := GoesLeft(bm, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !left {
		t.Error("missing feature must route left")
	}
}

func TestTreeDepthAndLeaves(t *testing.T) {
	tr := NewTree()
	if tr.Depth() != 0 || tr.NumLeaves() != 1 {
		t.Fatal("fresh tree shape wrong")
	}
	l, r := tr.AddSplit(0, 0, 1.5, 0.7)
	tr.SetLeaf(l, -0.1)
	tr.SetLeaf(r, 0.2)
	if tr.Depth() != 1 || tr.NumLeaves() != 2 {
		t.Errorf("depth=%d leaves=%d", tr.Depth(), tr.NumLeaves())
	}
}

func BenchmarkHistogramBuild(b *testing.B) {
	d := genData(b, 20000, 50, 0.2, false, 1)
	m, _ := NewBinMapper(d, 20)
	bm := NewBinnedMatrix(d, m)
	grads := make([]float64, d.Rows())
	hess := make([]float64, d.Rows())
	for i := range grads {
		grads[i] = 0.3
		hess[i] = 0.25
	}
	all := make([]int32, d.Rows())
	for i := range all {
		all[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHistogram(m)
		h.Accumulate(bm, all, grads, hess)
	}
}

func BenchmarkTrainOneTree(b *testing.B) {
	d := genData(b, 10000, 30, 0.3, false, 2)
	p := DefaultParams()
	p.NumTrees = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(d, p); err != nil {
			b.Fatal(err)
		}
	}
}
