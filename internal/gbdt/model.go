package gbdt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// FeatureImportance returns the total split gain attributed to each
// feature across all trees (the "gain" importance of common GBDT
// libraries).
func (m *Model) FeatureImportance() []float64 {
	imp := make([]float64, m.NumFeatures)
	for _, t := range m.Trees {
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if !n.IsLeaf() && int(n.Feature) < len(imp) {
				imp[n.Feature] += n.Gain
			}
		}
	}
	return imp
}

// modelFormatVersion guards against loading incompatible model files.
const modelFormatVersion = 1

type modelFile struct {
	Version int    `json:"version"`
	Model   *Model `json:"model"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelFile{Version: modelFormatVersion, Model: m})
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("gbdt: decoding model: %w", err)
	}
	if mf.Version != modelFormatVersion {
		return nil, fmt.Errorf("gbdt: unsupported model version %d", mf.Version)
	}
	if mf.Model == nil || len(mf.Model.Trees) == 0 {
		return nil, fmt.Errorf("gbdt: model file contains no trees")
	}
	return mf.Model, nil
}

// LoadFile reads a model from a file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
