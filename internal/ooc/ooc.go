// Package ooc is the out-of-core training substrate: a disk-backed
// binned-column store built in streaming passes, so training runs within
// a fixed memory budget regardless of dataset size — the storage-layer
// constraint that binds before the crypto once rows reach 10^8 (see
// "Large-Scale Secure XGB for Vertical Federated Learning").
//
// The store is built from a rescannable row Source in two passes. Pass 1
// feeds per-feature quantile accumulators that reproduce the in-memory
// binning decision exactly: a feature's values buffer until the column
// outgrows gbdt.SketchThreshold, then spill into a GK sketch in the same
// insertion order the in-memory path uses — so the proposed cuts, and
// therefore every split of the trained model, are byte-identical to
// gbdt.NewBinMapper over the materialized dataset. Pass 2 discretizes
// each row through the mapper and spills CRC-guarded binned shards to
// disk, each covering a contiguous row range of the party's feature
// group (in vertical FL, every party's store holds exactly its own
// feature group). At train time a Store implements gbdt.BinView by
// loading and evicting shards under a configurable memory budget with
// depth-aware prefetch, so the trainer and the federated party engines
// in internal/core run unchanged against it.
package ooc

import (
	"fmt"
	"io"
	"os"

	"vf2boost/internal/dataset"
)

// Source is a rescannable stream of sparse rows: Scan delivers every row
// in order, with entries sorted by column, and may be called multiple
// times, always replaying the identical stream (the builder scans twice:
// once to sketch, once to discretize). The indices and values slices
// passed to the callback are owned by the source and reused between
// rows. Labeled reports whether the label values carry information
// (passive-party sources deliver zeros).
type Source interface {
	Cols() int
	Labeled() bool
	Scan(fn func(row int, indices []int32, values []float64, label float64) error) error
}

// RangeSource is an optional Source capability: the row count is known
// up front and any contiguous row range can be replayed independently.
// ScanRange(lo, hi, fn) delivers exactly rows [lo, hi) in order, with
// the same row indices, entries and labels a full Scan would deliver
// for those rows, and must be safe to call from multiple goroutines
// concurrently (each call carries its own iteration state) — it is what
// lets the build pass discretize chunks in parallel and the store
// rebuild a single shard without replaying the whole stream.
type RangeSource interface {
	Source
	Rows() int
	ScanRange(lo, hi int, fn func(row int, indices []int32, values []float64, label float64) error) error
}

// AsRangeSource unwraps src to its range-scannable form if it has one:
// either src implements RangeSource directly, or it is a ColumnSlice
// over one (the projection is re-applied with per-call buffers so
// concurrent range scans don't share state).
func AsRangeSource(src Source) (RangeSource, bool) {
	if rs, ok := src.(RangeSource); ok {
		return rs, true
	}
	if cs, ok := src.(*ColumnSlice); ok {
		if inner, ok := AsRangeSource(cs.src); ok {
			return &rangeColumnSlice{ColumnSlice: cs, inner: inner}, true
		}
	}
	return nil, false
}

// LibSVMSource streams a LibSVM file from disk. The file is reopened on
// every Scan, so memory stays O(1) per row. It is not a RangeSource:
// line boundaries are unknown without a full scan.
type LibSVMSource struct {
	path string
	cols int
}

// NewLibSVMSource opens a LibSVM file source. cols <= 0 runs one
// inference pass to discover the column count.
func NewLibSVMSource(path string, cols int) (*LibSVMSource, error) {
	if cols <= 0 {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		_, maxCols, err := dataset.ScanLibSVM(f, 0, func([]int32, []float64, float64) error { return nil })
		f.Close()
		if err != nil {
			return nil, err
		}
		if maxCols == 0 {
			return nil, fmt.Errorf("ooc: %s has no feature columns", path)
		}
		cols = maxCols
	}
	return &LibSVMSource{path: path, cols: cols}, nil
}

// Cols returns the feature count.
func (s *LibSVMSource) Cols() int { return s.cols }

// Labeled reports true: LibSVM rows always carry a label field.
func (s *LibSVMSource) Labeled() bool { return true }

// Scan replays the file through the callback.
func (s *LibSVMSource) Scan(fn func(row int, indices []int32, values []float64, label float64) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	row := 0
	_, _, err = dataset.ScanLibSVM(f, s.cols, func(indices []int32, values []float64, label float64) error {
		err := fn(row, indices, values, label)
		row++
		return err
	})
	if err == io.EOF {
		return nil
	}
	return err
}

// SynthSource streams a deterministic synthetic dataset (see
// dataset.StreamGenerator); the stats pre-pass runs once at construction.
type SynthSource struct{ gen *dataset.StreamGenerator }

// NewSynthSource builds a synthetic source from generator options.
func NewSynthSource(o dataset.GenOptions) (*SynthSource, error) {
	g, err := dataset.NewStreamGenerator(o)
	if err != nil {
		return nil, err
	}
	return &SynthSource{gen: g}, nil
}

// Cols returns the feature count.
func (s *SynthSource) Cols() int { return s.gen.Cols() }

// Labeled reports true.
func (s *SynthSource) Labeled() bool { return true }

// Scan replays the generated stream.
func (s *SynthSource) Scan(fn func(row int, indices []int32, values []float64, label float64) error) error {
	return s.gen.Scan(fn)
}

// Rows returns the configured row count.
func (s *SynthSource) Rows() int { return s.gen.Rows() }

// ScanRange replays rows [lo, hi); every row is generated from its own
// seed, so any range reproduces exactly the rows a full Scan delivers
// and concurrent calls are independent.
func (s *SynthSource) ScanRange(lo, hi int, fn func(row int, indices []int32, values []float64, label float64) error) error {
	return s.gen.ScanRange(lo, hi, fn)
}

// DatasetSource adapts an in-memory Dataset to the Source interface —
// mostly a test instrument: building a store from the same Dataset the
// in-memory path binned is how byte-identical parity is asserted.
type DatasetSource struct{ d *dataset.Dataset }

// NewDatasetSource wraps a dataset.
func NewDatasetSource(d *dataset.Dataset) *DatasetSource { return &DatasetSource{d: d} }

// Cols returns the feature count.
func (s *DatasetSource) Cols() int { return s.d.Cols() }

// Labeled reports whether the dataset carries labels.
func (s *DatasetSource) Labeled() bool { return s.d.Labels != nil }

// Scan replays the dataset's rows.
func (s *DatasetSource) Scan(fn func(row int, indices []int32, values []float64, label float64) error) error {
	return s.ScanRange(0, s.d.Rows(), fn)
}

// Rows returns the dataset's row count.
func (s *DatasetSource) Rows() int { return s.d.Rows() }

// ScanRange replays rows [lo, hi); the dataset is immutable, so
// concurrent range scans are safe.
func (s *DatasetSource) ScanRange(lo, hi int, fn func(row int, indices []int32, values []float64, label float64) error) error {
	if lo < 0 || hi > s.d.Rows() || lo > hi {
		return fmt.Errorf("ooc: row range [%d,%d) out of [0,%d)", lo, hi, s.d.Rows())
	}
	for i := lo; i < hi; i++ {
		cols, vals := s.d.Row(i)
		label := 0.0
		if s.d.Labels != nil {
			label = s.d.Labels[i]
		}
		if err := fn(i, cols, vals, label); err != nil {
			return err
		}
	}
	return nil
}

// ColumnSlice projects a source onto the contiguous column range
// [lo, hi), renumbered to start at 0, optionally stripping labels — the
// vertical split of a stream: each party's store is built from its own
// slice of the joined row stream, without ever materializing the join.
type ColumnSlice struct {
	src        Source
	lo, hi     int
	keepLabels bool
	idxBuf     []int32
	valBuf     []float64
}

// NewColumnSlice validates the range against the source width.
func NewColumnSlice(src Source, lo, hi int, keepLabels bool) (*ColumnSlice, error) {
	if lo < 0 || hi > src.Cols() || lo >= hi {
		return nil, fmt.Errorf("ooc: column slice [%d,%d) out of [0,%d)", lo, hi, src.Cols())
	}
	return &ColumnSlice{src: src, lo: lo, hi: hi, keepLabels: keepLabels}, nil
}

// Cols returns the slice width.
func (s *ColumnSlice) Cols() int { return s.hi - s.lo }

// Labeled reports whether labels pass through.
func (s *ColumnSlice) Labeled() bool { return s.keepLabels && s.src.Labeled() }

// Scan replays the projected stream. Rows with no entry in the range are
// still delivered (instance alignment across parties).
func (s *ColumnSlice) Scan(fn func(row int, indices []int32, values []float64, label float64) error) error {
	return s.src.Scan(func(row int, indices []int32, values []float64, label float64) error {
		s.idxBuf, s.valBuf = s.idxBuf[:0], s.valBuf[:0]
		for k, j := range indices {
			if int(j) >= s.lo && int(j) < s.hi {
				s.idxBuf = append(s.idxBuf, j-int32(s.lo))
				s.valBuf = append(s.valBuf, values[k])
			}
		}
		if !s.keepLabels {
			label = 0
		}
		return fn(row, s.idxBuf, s.valBuf, label)
	})
}

// rangeColumnSlice is a ColumnSlice whose underlying source is
// range-scannable. Unlike the ColumnSlice Scan path — which reuses one
// buffer pair across rows — each ScanRange call owns local buffers, so
// concurrent range scans of different chunks never share state.
type rangeColumnSlice struct {
	*ColumnSlice
	inner RangeSource
}

// Rows returns the underlying source's row count (a column slice keeps
// every row for instance alignment).
func (s *rangeColumnSlice) Rows() int { return s.inner.Rows() }

// ScanRange replays the projected rows [lo, hi).
func (s *rangeColumnSlice) ScanRange(lo, hi int, fn func(row int, indices []int32, values []float64, label float64) error) error {
	var idxBuf []int32
	var valBuf []float64
	return s.inner.ScanRange(lo, hi, func(row int, indices []int32, values []float64, label float64) error {
		idxBuf, valBuf = idxBuf[:0], valBuf[:0]
		for k, j := range indices {
			if int(j) >= s.ColumnSlice.lo && int(j) < s.ColumnSlice.hi {
				idxBuf = append(idxBuf, j-int32(s.ColumnSlice.lo))
				valBuf = append(valBuf, values[k])
			}
		}
		if !s.keepLabels {
			label = 0
		}
		return fn(row, idxBuf, valBuf, label)
	})
}
