// Package ooc is the out-of-core training substrate: a disk-backed
// binned-column store built in streaming passes, so training runs within
// a fixed memory budget regardless of dataset size — the storage-layer
// constraint that binds before the crypto once rows reach 10^8 (see
// "Large-Scale Secure XGB for Vertical Federated Learning").
//
// The store is built from a rescannable row Source in two passes. Pass 1
// feeds per-feature quantile accumulators that reproduce the in-memory
// binning decision exactly: a feature's values buffer until the column
// outgrows gbdt.SketchThreshold, then spill into a GK sketch in the same
// insertion order the in-memory path uses — so the proposed cuts, and
// therefore every split of the trained model, are byte-identical to
// gbdt.NewBinMapper over the materialized dataset. Pass 2 discretizes
// each row through the mapper and spills CRC-guarded binned shards to
// disk, each covering a contiguous row range of the party's feature
// group (in vertical FL, every party's store holds exactly its own
// feature group). At train time a Store implements gbdt.BinView by
// loading and evicting shards under a configurable memory budget with
// depth-aware prefetch, so the trainer and the federated party engines
// in internal/core run unchanged against it.
package ooc

import (
	"fmt"
	"io"
	"os"

	"vf2boost/internal/dataset"
)

// Source is a rescannable stream of sparse rows: Scan delivers every row
// in order, with entries sorted by column, and may be called multiple
// times, always replaying the identical stream (the builder scans twice:
// once to sketch, once to discretize). The indices and values slices
// passed to the callback are owned by the source and reused between
// rows. Labeled reports whether the label values carry information
// (passive-party sources deliver zeros).
type Source interface {
	Cols() int
	Labeled() bool
	Scan(fn func(row int, indices []int32, values []float64, label float64) error) error
}

// LibSVMSource streams a LibSVM file from disk. The file is reopened on
// every Scan, so memory stays O(1) per row.
type LibSVMSource struct {
	path string
	cols int
}

// NewLibSVMSource opens a LibSVM file source. cols <= 0 runs one
// inference pass to discover the column count.
func NewLibSVMSource(path string, cols int) (*LibSVMSource, error) {
	if cols <= 0 {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		_, maxCols, err := dataset.ScanLibSVM(f, 0, func([]int32, []float64, float64) error { return nil })
		f.Close()
		if err != nil {
			return nil, err
		}
		if maxCols == 0 {
			return nil, fmt.Errorf("ooc: %s has no feature columns", path)
		}
		cols = maxCols
	}
	return &LibSVMSource{path: path, cols: cols}, nil
}

// Cols returns the feature count.
func (s *LibSVMSource) Cols() int { return s.cols }

// Labeled reports true: LibSVM rows always carry a label field.
func (s *LibSVMSource) Labeled() bool { return true }

// Scan replays the file through the callback.
func (s *LibSVMSource) Scan(fn func(row int, indices []int32, values []float64, label float64) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	row := 0
	_, _, err = dataset.ScanLibSVM(f, s.cols, func(indices []int32, values []float64, label float64) error {
		err := fn(row, indices, values, label)
		row++
		return err
	})
	if err == io.EOF {
		return nil
	}
	return err
}

// SynthSource streams a deterministic synthetic dataset (see
// dataset.StreamGenerator); the stats pre-pass runs once at construction.
type SynthSource struct{ gen *dataset.StreamGenerator }

// NewSynthSource builds a synthetic source from generator options.
func NewSynthSource(o dataset.GenOptions) (*SynthSource, error) {
	g, err := dataset.NewStreamGenerator(o)
	if err != nil {
		return nil, err
	}
	return &SynthSource{gen: g}, nil
}

// Cols returns the feature count.
func (s *SynthSource) Cols() int { return s.gen.Cols() }

// Labeled reports true.
func (s *SynthSource) Labeled() bool { return true }

// Scan replays the generated stream.
func (s *SynthSource) Scan(fn func(row int, indices []int32, values []float64, label float64) error) error {
	return s.gen.Scan(fn)
}

// DatasetSource adapts an in-memory Dataset to the Source interface —
// mostly a test instrument: building a store from the same Dataset the
// in-memory path binned is how byte-identical parity is asserted.
type DatasetSource struct{ d *dataset.Dataset }

// NewDatasetSource wraps a dataset.
func NewDatasetSource(d *dataset.Dataset) *DatasetSource { return &DatasetSource{d: d} }

// Cols returns the feature count.
func (s *DatasetSource) Cols() int { return s.d.Cols() }

// Labeled reports whether the dataset carries labels.
func (s *DatasetSource) Labeled() bool { return s.d.Labels != nil }

// Scan replays the dataset's rows.
func (s *DatasetSource) Scan(fn func(row int, indices []int32, values []float64, label float64) error) error {
	for i := 0; i < s.d.Rows(); i++ {
		cols, vals := s.d.Row(i)
		label := 0.0
		if s.d.Labels != nil {
			label = s.d.Labels[i]
		}
		if err := fn(i, cols, vals, label); err != nil {
			return err
		}
	}
	return nil
}

// ColumnSlice projects a source onto the contiguous column range
// [lo, hi), renumbered to start at 0, optionally stripping labels — the
// vertical split of a stream: each party's store is built from its own
// slice of the joined row stream, without ever materializing the join.
type ColumnSlice struct {
	src        Source
	lo, hi     int
	keepLabels bool
	idxBuf     []int32
	valBuf     []float64
}

// NewColumnSlice validates the range against the source width.
func NewColumnSlice(src Source, lo, hi int, keepLabels bool) (*ColumnSlice, error) {
	if lo < 0 || hi > src.Cols() || lo >= hi {
		return nil, fmt.Errorf("ooc: column slice [%d,%d) out of [0,%d)", lo, hi, src.Cols())
	}
	return &ColumnSlice{src: src, lo: lo, hi: hi, keepLabels: keepLabels}, nil
}

// Cols returns the slice width.
func (s *ColumnSlice) Cols() int { return s.hi - s.lo }

// Labeled reports whether labels pass through.
func (s *ColumnSlice) Labeled() bool { return s.keepLabels && s.src.Labeled() }

// Scan replays the projected stream. Rows with no entry in the range are
// still delivered (instance alignment across parties).
func (s *ColumnSlice) Scan(fn func(row int, indices []int32, values []float64, label float64) error) error {
	return s.src.Scan(func(row int, indices []int32, values []float64, label float64) error {
		s.idxBuf, s.valBuf = s.idxBuf[:0], s.valBuf[:0]
		for k, j := range indices {
			if int(j) >= s.lo && int(j) < s.hi {
				s.idxBuf = append(s.idxBuf, j-int32(s.lo))
				s.valBuf = append(s.valBuf, values[k])
			}
		}
		if !s.keepLabels {
			label = 0
		}
		return fn(row, s.idxBuf, s.valBuf, label)
	})
}
