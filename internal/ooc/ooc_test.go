package ooc

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
)

func synth(t *testing.T, rows, cols int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{Rows: rows, Cols: cols, Density: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func buildStore(t *testing.T, d *dataset.Dataset, bo BuildOptions, so Options) *Store {
	t.Helper()
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), bo); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, so)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// The store must reproduce the in-memory binned matrix exactly: same
// cuts, same per-row (column, bin) stream — under any budget.
func TestStoreMatchesBinnedMatrix(t *testing.T) {
	d := synth(t, 500, 12)
	st := buildStore(t, d, BuildOptions{ChunkRows: 64}, Options{MemBudget: 4096})

	mapper, err := gbdt.NewBinMapper(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Mapper().Cuts, mapper.Cuts) {
		t.Fatal("store cuts differ from in-memory mapper")
	}
	bm := gbdt.NewBinnedMatrix(d, mapper)
	if st.Rows() != bm.Rows() {
		t.Fatalf("rows %d != %d", st.Rows(), bm.Rows())
	}
	for i := 0; i < st.Rows(); i++ {
		sc, sb := st.Row(i)
		mc, mb := bm.Row(i)
		if !reflect.DeepEqual(sc, mc) || !bytes.Equal(sb, mb) {
			t.Fatalf("row %d differs", i)
		}
	}
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, d.Labels) {
		t.Fatal("labels differ")
	}
	if s := st.Stats(); s.Evictions == 0 {
		t.Fatalf("tight budget produced no evictions: %+v", s)
	}
}

// Columns past SketchThreshold take the GK-sketch path in both builders;
// the cuts must still match bit for bit.
func TestStoreMatchesBinnedMatrixSketchPath(t *testing.T) {
	rows := gbdt.SketchThreshold + 500
	if testing.Short() {
		t.Skip("sketch-path column needs >SketchThreshold rows")
	}
	d, err := dataset.Generate(dataset.GenOptions{Rows: rows, Cols: 2, Density: 1, Dense: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	st := buildStore(t, d, BuildOptions{ChunkRows: 8192}, Options{})
	mapper, err := gbdt.NewBinMapper(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Mapper().Cuts, mapper.Cuts) {
		t.Fatal("sketch-path cuts differ from in-memory mapper")
	}
}

// The tentpole guarantee: training against the store yields a model
// byte-identical to the fully in-memory path.
func TestModelByteParity(t *testing.T) {
	d := synth(t, 400, 10)
	p := gbdt.DefaultParams()
	p.NumTrees = 5
	p.MaxDepth = 4

	inMem, err := gbdt.Train(d, p)
	if err != nil {
		t.Fatal(err)
	}

	st := buildStore(t, d, BuildOptions{ChunkRows: 64}, Options{MemBudget: 8192, Prefetch: true})
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	ooc, err := gbdt.TrainBinned(st, labels, p)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := inMem.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := ooc.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("out-of-core model is not byte-identical to in-memory model")
	}
}

// A flipped byte in a shard must fail the CRC and panic on access (the
// BinView contract has no error channel).
func TestShardCorruptionPanics(t *testing.T) {
	d := synth(t, 200, 6)
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "shard-000001.bin")
	buf, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(name, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupt shard did not panic")
		}
		if !strings.Contains(pstring(r), "CRC") {
			t.Fatalf("panic %v does not mention CRC", r)
		}
	}()
	st.Row(100) // second shard
}

func pstring(r any) string {
	if err, ok := r.(error); ok {
		return err.Error()
	}
	if s, ok := r.(string); ok {
		return s
	}
	return ""
}

// Without a manifest the directory is not a store (the manifest is the
// build's commit point).
func TestMissingManifest(t *testing.T) {
	d := synth(t, 50, 4)
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded without manifest")
	}
}

// A ColumnSlice store must equal the store built from the materialized
// vertical split — the streaming form of per-party store construction.
func TestColumnSliceMatchesVerticalSplit(t *testing.T) {
	d := synth(t, 300, 10)
	parts, err := d.VerticalSplit([]int{6, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}

	src := NewDatasetSource(d)
	slice, err := NewColumnSlice(src, 0, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, slice, BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Labels(); err == nil {
		t.Fatal("passive-party store returned labels")
	}

	mapper, err := gbdt.NewBinMapper(parts[0], 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Mapper().Cuts, mapper.Cuts) {
		t.Fatal("sliced store cuts differ from split-dataset mapper")
	}
	bm := gbdt.NewBinnedMatrix(parts[0], mapper)
	for i := 0; i < st.Rows(); i++ {
		sc, sb := st.Row(i)
		mc, mb := bm.Row(i)
		if !reflect.DeepEqual(sc, mc) || !bytes.Equal(sb, mb) {
			t.Fatalf("row %d differs", i)
		}
	}
}

// A store built from a LibSVM file must match the one built from the
// dataset that wrote it.
func TestLibSVMSourceRoundTrip(t *testing.T) {
	d := synth(t, 150, 8)
	path := filepath.Join(t.TempDir(), "data.libsvm")
	if err := dataset.SaveLibSVMFile(path, d); err != nil {
		t.Fatal(err)
	}
	src, err := NewLibSVMSource(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src.Cols() != d.Cols() {
		t.Fatalf("inferred %d cols, want %d", src.Cols(), d.Cols())
	}
	dir := t.TempDir()
	if err := Build(dir, src, BuildOptions{ChunkRows: 32}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// LibSVM text round-trips through %g, so re-read the file rather than
	// comparing against the original float values.
	d2, err := dataset.LoadLibSVMFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := gbdt.NewBinMapper(d2, 20)
	if err != nil {
		t.Fatal(err)
	}
	bm := gbdt.NewBinnedMatrix(d2, mapper)
	for i := 0; i < st.Rows(); i++ {
		sc, sb := st.Row(i)
		mc, mb := bm.Row(i)
		if !reflect.DeepEqual(sc, mc) || !bytes.Equal(sb, mb) {
			t.Fatalf("row %d differs", i)
		}
	}
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, d2.Labels) {
		t.Fatal("labels differ")
	}
}

// FastSketch cuts are not parity-exact but must be structurally valid
// and the built store trainable.
func TestFastSketchBuild(t *testing.T) {
	d := synth(t, 600, 8)
	st := buildStore(t, d, BuildOptions{ChunkRows: 100, FastSketch: true}, Options{})
	for j, cuts := range st.Mapper().Cuts {
		for k := 1; k < len(cuts); k++ {
			if cuts[k] <= cuts[k-1] {
				t.Fatalf("feature %d cuts not strictly increasing", j)
			}
		}
	}
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	p := gbdt.DefaultParams()
	p.NumTrees = 2
	if _, err := gbdt.TrainBinned(st, labels, p); err != nil {
		t.Fatal(err)
	}
}

// Sequential access at shallow depth should trigger readahead.
func TestPrefetch(t *testing.T) {
	d := synth(t, 512, 6)
	st := buildStore(t, d, BuildOptions{ChunkRows: 64}, Options{MemBudget: 1 << 20, Prefetch: true})
	st.HintDepth(0)
	for i := 0; i < st.Rows(); i++ {
		st.Row(i)
	}
	// The prefetch goroutine is asynchronous; loads+prefetches must cover
	// all shards, and at least one shard should have come from readahead.
	s := st.Stats()
	if s.Loads+s.Prefetches < int64(st.NumShards()) {
		t.Fatalf("loaded %d+%d shards, want %d", s.Loads, s.Prefetches, st.NumShards())
	}
}
