package ooc

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
)

// rowOf reads one row of a BinView, failing the test on a view error.
func rowOf(t *testing.T, bv gbdt.BinView, i int) ([]int32, []uint8) {
	t.Helper()
	cols, bins, err := bv.Row(i)
	if err != nil {
		t.Fatal(err)
	}
	return cols, bins
}

func synth(t *testing.T, rows, cols int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenOptions{Rows: rows, Cols: cols, Density: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func buildStore(t *testing.T, d *dataset.Dataset, bo BuildOptions, so Options) *Store {
	t.Helper()
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), bo); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, so)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// The store must reproduce the in-memory binned matrix exactly: same
// cuts, same per-row (column, bin) stream — under any budget.
func TestStoreMatchesBinnedMatrix(t *testing.T) {
	d := synth(t, 500, 12)
	st := buildStore(t, d, BuildOptions{ChunkRows: 64}, Options{MemBudget: 4096})

	mapper, err := gbdt.NewBinMapper(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Mapper().Cuts, mapper.Cuts) {
		t.Fatal("store cuts differ from in-memory mapper")
	}
	bm := gbdt.NewBinnedMatrix(d, mapper)
	if st.Rows() != bm.Rows() {
		t.Fatalf("rows %d != %d", st.Rows(), bm.Rows())
	}
	for i := 0; i < st.Rows(); i++ {
		sc, sb := rowOf(t, st, i)
		mc, mb := rowOf(t, bm, i)
		if !reflect.DeepEqual(sc, mc) || !bytes.Equal(sb, mb) {
			t.Fatalf("row %d differs", i)
		}
	}
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, d.Labels) {
		t.Fatal("labels differ")
	}
	if s := st.Stats(); s.Evictions == 0 {
		t.Fatalf("tight budget produced no evictions: %+v", s)
	}
}

// Columns past SketchThreshold take the GK-sketch path in both builders;
// the cuts must still match bit for bit.
func TestStoreMatchesBinnedMatrixSketchPath(t *testing.T) {
	rows := gbdt.SketchThreshold + 500
	if testing.Short() {
		t.Skip("sketch-path column needs >SketchThreshold rows")
	}
	d, err := dataset.Generate(dataset.GenOptions{Rows: rows, Cols: 2, Density: 1, Dense: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	st := buildStore(t, d, BuildOptions{ChunkRows: 8192}, Options{})
	mapper, err := gbdt.NewBinMapper(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Mapper().Cuts, mapper.Cuts) {
		t.Fatal("sketch-path cuts differ from in-memory mapper")
	}
}

// The tentpole guarantee: training against the store yields a model
// byte-identical to the fully in-memory path.
func TestModelByteParity(t *testing.T) {
	d := synth(t, 400, 10)
	p := gbdt.DefaultParams()
	p.NumTrees = 5
	p.MaxDepth = 4

	inMem, err := gbdt.Train(d, p)
	if err != nil {
		t.Fatal(err)
	}

	st := buildStore(t, d, BuildOptions{ChunkRows: 64}, Options{MemBudget: 8192, Prefetch: true})
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	ooc, err := gbdt.TrainBinned(st, labels, p)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := inMem.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := ooc.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("out-of-core model is not byte-identical to in-memory model")
	}
}

// A flipped byte in a shard must fail the CRC and, with no source to
// rebuild from, surface on the Row path as a typed *ShardError naming
// the shard and carrying the CRC detail — never a panic.
func TestShardCorruptionTypedError(t *testing.T) {
	d := synth(t, 200, 6)
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "shard-000001.bin")
	buf, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(name, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = st.Row(100) // second shard
	if err == nil {
		t.Fatal("corrupt shard returned no error")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *ShardError", err)
	}
	if se.Shard != 1 {
		t.Errorf("ShardError names shard %d, want 1", se.Shard)
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Errorf("error %v does not carry the CRC detail", err)
	}
	if se.Attempts < 2 {
		t.Errorf("corrupt shard got %d attempts, want the default retry budget", se.Attempts)
	}
	if st.Stats().RetriedLoads == 0 {
		t.Error("retry counter did not move")
	}
}

// The same corruption heals transparently when the store has its build
// source attached: the bad shard is quarantined, rebuilt, committed under
// a new manifest generation, and every row reads back exactly.
func TestShardCorruptionRebuildsFromSource(t *testing.T) {
	d := synth(t, 200, 6)
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "shard-000001.bin")
	buf, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(name, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{Source: NewDatasetSource(d)})
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := gbdt.NewBinMapper(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	bm := gbdt.NewBinnedMatrix(d, mapper)
	for i := 0; i < st.Rows(); i++ {
		sc, sb := rowOf(t, st, i)
		mc, mb := rowOf(t, bm, i)
		if !reflect.DeepEqual(sc, mc) || !bytes.Equal(sb, mb) {
			t.Fatalf("row %d differs after rebuild", i)
		}
	}
	s := st.Stats()
	if s.Rebuilds != 1 || s.Quarantined != 1 {
		t.Fatalf("rebuilds=%d quarantined=%d, want 1/1", s.Rebuilds, s.Quarantined)
	}
	if st.Generation() != 1 {
		t.Fatalf("generation %d after rebuild, want 1", st.Generation())
	}
	if _, err := os.Stat(name + quarantineSuffix); err != nil {
		t.Fatalf("quarantined shard evidence missing: %v", err)
	}

	// The committed generation must survive a reopen without the source.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Generation() != 1 {
		t.Fatalf("reopened at generation %d, want 1", st2.Generation())
	}
	sc, sb := rowOf(t, st2, 100)
	mc, mb := rowOf(t, bm, 100)
	if !reflect.DeepEqual(sc, mc) || !bytes.Equal(sb, mb) {
		t.Fatal("rebuilt shard differs on reopen")
	}
}

// Without a manifest the directory is not a store (the manifest is the
// build's commit point).
func TestMissingManifest(t *testing.T) {
	d := synth(t, 50, 4)
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded without manifest")
	}
}

// A ColumnSlice store must equal the store built from the materialized
// vertical split — the streaming form of per-party store construction.
func TestColumnSliceMatchesVerticalSplit(t *testing.T) {
	d := synth(t, 300, 10)
	parts, err := d.VerticalSplit([]int{6, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}

	src := NewDatasetSource(d)
	slice, err := NewColumnSlice(src, 0, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, slice, BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Labels(); err == nil {
		t.Fatal("passive-party store returned labels")
	}

	mapper, err := gbdt.NewBinMapper(parts[0], 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Mapper().Cuts, mapper.Cuts) {
		t.Fatal("sliced store cuts differ from split-dataset mapper")
	}
	bm := gbdt.NewBinnedMatrix(parts[0], mapper)
	for i := 0; i < st.Rows(); i++ {
		sc, sb := rowOf(t, st, i)
		mc, mb := rowOf(t, bm, i)
		if !reflect.DeepEqual(sc, mc) || !bytes.Equal(sb, mb) {
			t.Fatalf("row %d differs", i)
		}
	}
}

// A store built from a LibSVM file must match the one built from the
// dataset that wrote it.
func TestLibSVMSourceRoundTrip(t *testing.T) {
	d := synth(t, 150, 8)
	path := filepath.Join(t.TempDir(), "data.libsvm")
	if err := dataset.SaveLibSVMFile(path, d); err != nil {
		t.Fatal(err)
	}
	src, err := NewLibSVMSource(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src.Cols() != d.Cols() {
		t.Fatalf("inferred %d cols, want %d", src.Cols(), d.Cols())
	}
	dir := t.TempDir()
	if err := Build(dir, src, BuildOptions{ChunkRows: 32}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// LibSVM text round-trips through %g, so re-read the file rather than
	// comparing against the original float values.
	d2, err := dataset.LoadLibSVMFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := gbdt.NewBinMapper(d2, 20)
	if err != nil {
		t.Fatal(err)
	}
	bm := gbdt.NewBinnedMatrix(d2, mapper)
	for i := 0; i < st.Rows(); i++ {
		sc, sb := rowOf(t, st, i)
		mc, mb := rowOf(t, bm, i)
		if !reflect.DeepEqual(sc, mc) || !bytes.Equal(sb, mb) {
			t.Fatalf("row %d differs", i)
		}
	}
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labels, d2.Labels) {
		t.Fatal("labels differ")
	}
}

// FastSketch cuts are not parity-exact but must be structurally valid
// and the built store trainable.
func TestFastSketchBuild(t *testing.T) {
	d := synth(t, 600, 8)
	st := buildStore(t, d, BuildOptions{ChunkRows: 100, FastSketch: true}, Options{})
	for j, cuts := range st.Mapper().Cuts {
		for k := 1; k < len(cuts); k++ {
			if cuts[k] <= cuts[k-1] {
				t.Fatalf("feature %d cuts not strictly increasing", j)
			}
		}
	}
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	p := gbdt.DefaultParams()
	p.NumTrees = 2
	if _, err := gbdt.TrainBinned(st, labels, p); err != nil {
		t.Fatal(err)
	}
}

// Sequential access at shallow depth should trigger readahead.
func TestPrefetch(t *testing.T) {
	d := synth(t, 512, 6)
	st := buildStore(t, d, BuildOptions{ChunkRows: 64}, Options{MemBudget: 1 << 20, Prefetch: true})
	st.HintDepth(0)
	for i := 0; i < st.Rows(); i++ {
		st.Row(i)
	}
	// The prefetch goroutine is asynchronous; loads+prefetches must cover
	// all shards, and at least one shard should have come from readahead.
	s := st.Stats()
	if s.Loads+s.Prefetches < int64(st.NumShards()) {
		t.Fatalf("loaded %d+%d shards, want %d", s.Loads, s.Prefetches, st.NumShards())
	}
}
