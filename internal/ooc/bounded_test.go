package ooc

import (
	"os"
	"runtime"
	"testing"
	"time"

	"vf2boost/internal/dataset"
	"vf2boost/internal/gbdt"
)

// The acceptance property of the subsystem: training a dataset whose
// binned form exceeds the shard-cache budget completes with the cache
// honoring the budget and the process heap bounded well below the
// materialize-everything footprint. GOMEMLIMIT in the CI leg adds the
// runtime's own enforcement on top of these assertions.
func TestBoundedMemoryTraining(t *testing.T) {
	rows := 200_000
	if testing.Short() {
		rows = 60_000
	}
	const budget = int64(2 << 20)

	src, err := NewSynthSource(dataset.GenOptions{Rows: rows, Cols: 40, Density: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(dir, src, BuildOptions{ChunkRows: 1 << 14}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{MemBudget: budget, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}

	// Sample HeapAlloc while training runs.
	stop := make(chan struct{})
	done := make(chan uint64)
	go func() {
		var ms runtime.MemStats
		var peak uint64
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-stop:
				done <- peak
				return
			case <-tick.C:
			}
		}
	}()

	p := gbdt.DefaultParams()
	p.NumTrees = 2
	p.MaxDepth = 5
	p.Workers = 1
	runtime.GC()
	if _, err := gbdt.TrainBinned(st, labels, p); err != nil {
		t.Fatal(err)
	}
	close(stop)
	peakHeap := <-done

	cs := st.Stats()
	// Binned CSR ≈ nnz x (4B col + 1B bin) + rowPtr.
	binnedBytes := int64(float64(rows)*40*0.25*5) + int64(rows+1)*4
	if binnedBytes <= budget {
		t.Fatalf("test misconfigured: binned data %d fits budget %d", binnedBytes, budget)
	}
	if cs.PeakBytes > budget {
		t.Fatalf("shard cache peaked at %d bytes, budget %d", cs.PeakBytes, budget)
	}
	if cs.Evictions == 0 {
		t.Fatalf("budget never bound: %+v", cs)
	}
	// The heap holds labels, margins, gradients, tree state and the shard
	// cache — all O(rows) at 8-24B/row plus the budget — but must stay far
	// below the GOMEMLIMIT ceiling and well under 2x the binned data plus
	// fixed slack (which materializing the dataset twice would exceed).
	heapCap := uint64(2*binnedBytes) + 48<<20
	if peakHeap > heapCap {
		t.Fatalf("peak heap %d exceeds bound %d (budget %d, binned %d)", peakHeap, heapCap, budget, binnedBytes)
	}
	if os.Getenv("GOMEMLIMIT") != "" {
		t.Logf("ran under GOMEMLIMIT=%s; peak heap %.1f MiB, cache peak %.1f MiB",
			os.Getenv("GOMEMLIMIT"), float64(peakHeap)/(1<<20), float64(cs.PeakBytes)/(1<<20))
	}
}
