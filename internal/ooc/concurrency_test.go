package ooc

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vf2boost/internal/dataset"
	"vf2boost/internal/fault/fsfault"
	"vf2boost/internal/gbdt"
)

// gateFS blocks ReadFile calls whose path contains gate until release is
// closed, and signals arrival on blocked (once). All other reads pass
// through untouched.
type gateFS struct {
	fsfault.FS
	gate    string
	blocked chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateFS) ReadFile(name string) ([]byte, error) {
	if strings.Contains(name, g.gate) {
		g.once.Do(func() { close(g.blocked) })
		<-g.release
	}
	return g.FS.ReadFile(name)
}

// The regression this package shipped with: loadShard held the store
// mutex across disk I/O, so a slow prefetch of one shard serialized
// every other load behind it. A demand load of a DIFFERENT shard must
// complete while a prefetch read is still stuck on disk.
func TestSlowPrefetchDoesNotBlockDemandLoad(t *testing.T) {
	d := synth(t, 600, 8)
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	gfs := &gateFS{
		FS:      fsfault.OS,
		gate:    "shard-000001",
		blocked: make(chan struct{}),
		release: make(chan struct{}),
	}
	st, err := Open(dir, Options{Prefetch: true, FS: gfs})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 demand-loads shard 0 and kicks readahead of shard 1, which
	// parks inside gateFS still holding its flight slot.
	if _, _, err := st.Row(0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gfs.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("prefetch of shard 1 never reached the filesystem")
	}

	// With the prefetch wedged, a demand load of shard 3 must not queue
	// behind it.
	done := make(chan error, 1)
	go func() {
		_, _, err := st.Row(3 * 64)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("demand load failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("demand load of shard 3 blocked behind a slow prefetch of shard 1")
	}

	close(gfs.release)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// Concurrent readers, readahead hints, depth hints, and a Close racing
// them: every error must be nil or ErrClosed, and nothing may deadlock
// or trip the race detector.
func TestConcurrentRowPrefetchCloseRace(t *testing.T) {
	d := synth(t, 800, 8)
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{MemBudget: 8 << 10, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				switch rng.Intn(4) {
				case 0:
					if _, _, err := st.Row(rng.Intn(st.Rows())); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("Row: %v", err)
						return
					}
				case 1:
					st.PrefetchShard(rng.Intn(st.NumShards()+2) - 1)
				case 2:
					st.HintDepth(rng.Intn(20) - 10)
				case 3:
					st.Stats()
				}
			}
		}(int64(w))
	}
	time.Sleep(10 * time.Millisecond)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// HintDepth is advisory: any int, however hostile, must be accepted
// without panicking or breaking subsequent reads.
func TestHintDepthClamp(t *testing.T) {
	d := synth(t, 200, 6)
	st := buildStore(t, d, BuildOptions{ChunkRows: 64}, Options{})
	defer st.Close()
	for _, depth := range []int{math.MinInt, -1, 0, 1, 31, math.MaxInt32, math.MaxInt} {
		st.HintDepth(depth)
		if _, _, err := st.Row(0); err != nil {
			t.Fatalf("Row after HintDepth(%d): %v", depth, err)
		}
	}
}

// The read-amplification bound the shard-major schedule guarantees:
// training at ANY budget demand-loads each shard at most depth+1 times
// per tree (one sweep per level plus the margin update). The node-major
// schedule this replaced re-loaded shards per node and measured two
// orders of magnitude above this.
func TestTrainingLoadsBound(t *testing.T) {
	d := synth(t, 640, 10)
	p := gbdt.DefaultParams()
	p.NumTrees = 3
	p.MaxDepth = 4

	inMem, err := gbdt.Train(d, p)
	if err != nil {
		t.Fatal(err)
	}

	// MemBudget 1: nothing fits, the cache falls back to its one-shard
	// floor, so every cross-shard reuse is a fresh demand load — the
	// worst case the bound must still hold at. Prefetch off keeps Loads
	// unpolluted by readahead.
	st := buildStore(t, d, BuildOptions{ChunkRows: 64}, Options{MemBudget: 1})
	defer st.Close()
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	m, err := gbdt.TrainBinned(st, labels, p)
	if err != nil {
		t.Fatal(err)
	}

	bound := int64(st.NumShards() * (p.MaxDepth + 1) * p.NumTrees)
	if cs := st.Stats(); cs.Loads > bound {
		t.Fatalf("training demand-loaded %d shards, bound is %d (shards=%d depth=%d trees=%d)",
			cs.Loads, bound, st.NumShards(), p.MaxDepth, p.NumTrees)
	}

	var a, b bytes.Buffer
	if err := inMem.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("thrashing-budget model is not byte-identical to in-memory model")
	}
}

// dirBytes reads every file in dir into a name → contents map.
func dirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// A parallel build must produce the same directory, file for file and
// byte for byte, as a serial one — including the manifest, labels, and
// shard payloads — for both a plain source and a column slice of one.
func TestParallelBuildByteIdentity(t *testing.T) {
	gen := dataset.GenOptions{Rows: 3000, Cols: 12, Density: 0.3, Seed: 23}
	newSrc := func(t *testing.T, slice bool) Source {
		src, err := NewSynthSource(gen)
		if err != nil {
			t.Fatal(err)
		}
		if !slice {
			return src
		}
		cs, err := NewColumnSlice(src, 2, 9, true)
		if err != nil {
			t.Fatal(err)
		}
		return cs
	}
	for _, tc := range []struct {
		name  string
		slice bool
	}{{"synth", false}, {"column-slice", true}} {
		t.Run(tc.name, func(t *testing.T) {
			serialDir, parDir := t.TempDir(), t.TempDir()
			if err := Build(serialDir, newSrc(t, tc.slice), BuildOptions{ChunkRows: 256}); err != nil {
				t.Fatal(err)
			}
			if err := Build(parDir, newSrc(t, tc.slice), BuildOptions{ChunkRows: 256, Workers: 4}); err != nil {
				t.Fatal(err)
			}
			serial, par := dirBytes(t, serialDir), dirBytes(t, parDir)
			if len(serial) != len(par) {
				t.Fatalf("file count differs: serial %d, parallel %d", len(serial), len(par))
			}
			for name, want := range serial {
				got, ok := par[name]
				if !ok {
					t.Fatalf("parallel build missing %s", name)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("%s differs between serial and parallel build", name)
				}
			}
		})
	}
}
