package ooc

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"vf2boost/internal/fault/fsfault"
	"vf2boost/internal/gbdt"
)

// BuildOptions configures the two-pass store build.
type BuildOptions struct {
	// MaxBins is s, the histogram bins per feature (default 20, the
	// trainer's default; bounds [2,256]).
	MaxBins int
	// ChunkRows is the shard height in rows (default 1<<16). Every shard
	// except the last covers exactly ChunkRows rows, so the shard holding
	// row i is shard i/ChunkRows.
	ChunkRows int
	// FastSketch switches pass 1 to per-chunk sketches merged on a
	// background worker — faster on wide sparse data, but the merged rank
	// bound is εa+εb, so cuts are no longer byte-identical to the
	// in-memory path.
	FastSketch bool
	// FS is the filesystem the build writes through; nil means the real
	// one. Tests and the -fschaos CLI knob install a fault injector here.
	FS fsfault.FS
}

func (o *BuildOptions) normalize() error {
	if o.MaxBins == 0 {
		o.MaxBins = 20
	}
	if o.MaxBins < 2 || o.MaxBins > 256 {
		return fmt.Errorf("ooc: MaxBins %d out of [2,256]", o.MaxBins)
	}
	if o.ChunkRows == 0 {
		o.ChunkRows = 1 << 16
	}
	if o.ChunkRows < 1 {
		return fmt.Errorf("ooc: ChunkRows %d must be positive", o.ChunkRows)
	}
	if o.FS == nil {
		o.FS = fsfault.OS
	}
	return nil
}

// manifest is the store's commit record, written last: a directory
// without a readable manifest is an aborted build, not a store. Cuts
// ride in the manifest as JSON — Go's float64 JSON round-trip is exact,
// so the mapper reloads bit-for-bit.
type manifest struct {
	Version   int           `json:"version"`
	Rows      int           `json:"rows"`
	Cols      int           `json:"cols"`
	MaxBins   int           `json:"max_bins"`
	ChunkRows int           `json:"chunk_rows"`
	Labeled   bool          `json:"labeled"`
	Cuts      [][]float64   `json:"cuts"`
	Shards    []shardRecord `json:"shards"`
}

type shardRecord struct {
	File     string `json:"file"`
	StartRow int    `json:"start_row"`
	Rows     int    `json:"rows"`
	NNZ      int    `json:"nnz"`
}

const (
	manifestVersion = 1
	manifestName    = "manifest.json"
	labelsName      = "labels.bin"
	// quarantineSuffix marks a shard file pulled out of service after its
	// content failed validation beyond retry; kept (not deleted) so the
	// evidence survives for post-mortems, swept when disk space runs out.
	quarantineSuffix = ".bad"
)

// manifestFileName names generation gen's commit record. Generation 0 is
// the legacy un-numbered name, so stores built before generations existed
// read as generation 0.
func manifestFileName(gen int) string {
	if gen == 0 {
		return manifestName
	}
	return fmt.Sprintf("manifest-%06d.json", gen)
}

// parseManifestGen inverts manifestFileName.
func parseManifestGen(name string) (int, bool) {
	if name == manifestName {
		return 0, true
	}
	rest, ok := strings.CutPrefix(name, "manifest-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".json")
	if !ok || len(rest) != 6 {
		return 0, false
	}
	gen, err := strconv.Atoi(rest)
	if err != nil || gen < 1 {
		return 0, false
	}
	return gen, true
}

// Build constructs a binned shard store under dir from two streaming
// passes over src: pass 1 proposes cuts (see sketch.go), pass 2
// discretizes each chunk through the mapper and spills it as a
// CRC-guarded shard. Labels (when src.Labeled()) accumulate in memory —
// 8 bytes/row, the one per-row cost that never spills — and land in a
// framed labels file. The manifest is written last as the commit point.
// Peak memory is the pass-1 accumulators plus one chunk's CSR buffers.
//
// A disk-full failure on any spill triggers backpressure instead of a
// fail-stop: the build sweeps aborted-write temp files and quarantined
// shards out of the directory and retries the write once; only a second
// ENOSPC propagates.
func Build(dir string, src Source, opt BuildOptions) error {
	if err := opt.normalize(); err != nil {
		return err
	}
	fsys := opt.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	mapper, rows, err := proposeCuts(src, opt)
	if err != nil {
		return err
	}
	if rows == 0 {
		return fmt.Errorf("ooc: source delivered no rows")
	}

	man := &manifest{
		Version:   manifestVersion,
		Rows:      rows,
		Cols:      src.Cols(),
		MaxBins:   opt.MaxBins,
		ChunkRows: opt.ChunkRows,
		Labeled:   src.Labeled(),
		Cuts:      mapper.Cuts,
	}

	var labels []float64
	if src.Labeled() {
		labels = make([]float64, 0, rows)
	}

	cur := &shardData{rowPtr: []int32{0}}
	flush := func() error {
		if len(cur.rowPtr) == 1 {
			return nil
		}
		name := fmt.Sprintf("shard-%06d.bin", len(man.Shards))
		if err := writeRetryNoSpace(fsys, dir, func() error {
			return writeShard(fsys, filepath.Join(dir, name), cur)
		}); err != nil {
			return err
		}
		man.Shards = append(man.Shards, shardRecord{
			File:     name,
			StartRow: cur.startRow,
			Rows:     len(cur.rowPtr) - 1,
			NNZ:      len(cur.cols),
		})
		next := cur.startRow + len(cur.rowPtr) - 1
		cur = &shardData{startRow: next, rowPtr: cur.rowPtr[:1], cols: cur.cols[:0], bins: cur.bins[:0]}
		cur.rowPtr[0] = 0
		return nil
	}

	err = src.Scan(func(row int, indices []int32, values []float64, label float64) error {
		for k, j := range indices {
			cur.cols = append(cur.cols, j)
			cur.bins = append(cur.bins, uint8(mapper.Bin(int(j), values[k])))
		}
		cur.rowPtr = append(cur.rowPtr, int32(len(cur.cols)))
		if labels != nil {
			labels = append(labels, label)
		}
		if len(cur.rowPtr)-1 >= opt.ChunkRows {
			return flush()
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("ooc: discretize pass: %w", err)
	}
	if err := flush(); err != nil {
		return err
	}
	got := 0
	for _, s := range man.Shards {
		got += s.Rows
	}
	if got != rows {
		return fmt.Errorf("ooc: pass 2 delivered %d rows, pass 1 saw %d (source not replayable?)", got, rows)
	}

	if labels != nil {
		if err := writeRetryNoSpace(fsys, dir, func() error {
			return writeLabels(fsys, filepath.Join(dir, labelsName), labels)
		}); err != nil {
			return err
		}
	}

	return writeRetryNoSpace(fsys, dir, func() error {
		return writeManifest(fsys, dir, man, 0)
	})
}

// writeManifest commits one manifest generation: plain JSON, no binary
// frame — human-inspectable, and the loader cross-checks it structurally.
// Written atomically, last.
func writeManifest(fsys fsfault.FS, dir string, man *manifest, gen int) error {
	buf, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return err
	}
	return writeAtomic(fsys, filepath.Join(dir, manifestFileName(gen)), buf)
}

// writeRetryNoSpace runs a write, and on a disk-full failure (real or
// injected — both satisfy errors.Is(err, syscall.ENOSPC)) sweeps the
// store directory's reclaimable debris and retries once.
func writeRetryNoSpace(fsys fsfault.FS, dir string, write func() error) error {
	err := write()
	if err == nil || !errors.Is(err, syscall.ENOSPC) {
		return err
	}
	if n := sweepDebris(fsys, dir); n == 0 {
		return err // nothing reclaimable; retrying would just fail again
	}
	return write()
}

// sweepDebris removes aborted-write temp files and quarantined shards
// from a store directory, returning how many files it freed. Both kinds
// are disposable by construction: temp debris never had a committed name,
// and a quarantined shard's content already failed validation.
func sweepDebris(fsys fsfault.FS, dir string) int {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	freed := 0
	for _, e := range entries {
		name := e.Name()
		ok, _ := filepath.Match(tempPattern, name)
		if !ok && !strings.HasSuffix(name, quarantineSuffix) {
			continue
		}
		if fsys.Remove(filepath.Join(dir, name)) == nil {
			freed++
		}
	}
	return freed
}

// decodeManifest parses and validates one commit record's bytes.
func decodeManifest(buf []byte) (*manifest, error) {
	var man manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("ooc: manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("ooc: manifest version %d (want %d)", man.Version, manifestVersion)
	}
	if man.Rows <= 0 || man.Cols <= 0 || len(man.Cuts) != man.Cols || man.ChunkRows < 1 {
		return nil, fmt.Errorf("ooc: manifest inconsistent (rows=%d cols=%d cuts=%d chunk=%d)",
			man.Rows, man.Cols, len(man.Cuts), man.ChunkRows)
	}
	want := 0
	for i, s := range man.Shards {
		if s.StartRow != want || s.Rows < 1 {
			return nil, fmt.Errorf("ooc: manifest shard %d covers [%d,%d), want start %d", i, s.StartRow, s.StartRow+s.Rows, want)
		}
		if i < len(man.Shards)-1 && s.Rows != man.ChunkRows {
			return nil, fmt.Errorf("ooc: manifest shard %d has %d rows, want chunk height %d", i, s.Rows, man.ChunkRows)
		}
		want += s.Rows
	}
	if want != man.Rows {
		return nil, fmt.Errorf("ooc: manifest shards cover %d rows, want %d", want, man.Rows)
	}
	return &man, nil
}

// readManifest finds the newest consistent commit record in a store
// directory. Generations are tried newest first, so a crash mid-commit —
// which can leave the newest generation torn, truncated, or garbage —
// rolls the store back to the previous consistent generation instead of
// failing the open. Unreadable newer generations are removed once an
// older one validates (they are aborted commits, not data). Returns the
// manifest and its generation.
func readManifest(fsys fsfault.FS, dir string) (*manifest, int, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var gens []int
	for _, e := range entries {
		if gen, ok := parseManifestGen(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	if len(gens) == 0 {
		// Preserve the classic "no manifest" error shape (fs.ErrNotExist).
		_, err := fsys.ReadFile(filepath.Join(dir, manifestName))
		return nil, 0, err
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	var firstErr error
	var rejected []int
	for _, gen := range gens {
		buf, err := fsys.ReadFile(filepath.Join(dir, manifestFileName(gen)))
		if err == nil {
			var man *manifest
			man, err = decodeManifest(buf)
			if err == nil {
				for _, bad := range rejected {
					fsys.Remove(filepath.Join(dir, manifestFileName(bad)))
				}
				return man, gen, nil
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("ooc: manifest generation %d: %w", gen, err)
		}
		rejected = append(rejected, gen)
	}
	return nil, 0, firstErr
}

// Mapper reconstructs the bin mapper recorded in the manifest.
func (m *manifest) mapper() *gbdt.BinMapper {
	return &gbdt.BinMapper{Cuts: m.Cuts, MaxBins: m.MaxBins}
}
