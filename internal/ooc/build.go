package ooc

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"vf2boost/internal/fault/fsfault"
	"vf2boost/internal/gbdt"
)

// BuildOptions configures the two-pass store build.
type BuildOptions struct {
	// MaxBins is s, the histogram bins per feature (default 20, the
	// trainer's default; bounds [2,256]).
	MaxBins int
	// ChunkRows is the shard height in rows (default 1<<16). Every shard
	// except the last covers exactly ChunkRows rows, so the shard holding
	// row i is shard i/ChunkRows.
	ChunkRows int
	// FastSketch switches pass 1 to per-chunk sketches merged on a
	// background worker — faster on wide sparse data, but the merged rank
	// bound is εa+εb, so cuts are no longer byte-identical to the
	// in-memory path.
	FastSketch bool
	// Workers > 1 parallelizes the build over row chunks when the source
	// is range-scannable (RangeSource): pass 1 generates chunks
	// concurrently and feeds the cut accumulators in strict row order,
	// pass 2 discretizes chunks concurrently and commits shards through
	// a single ordered writer — manifests, shard files and labels come
	// out byte-identical to a serial build. Non-rangeable sources
	// (LibSVM) fall back to the serial scan. <= 1 builds serially.
	Workers int
	// FS is the filesystem the build writes through; nil means the real
	// one. Tests and the -fschaos CLI knob install a fault injector here.
	FS fsfault.FS
}

func (o *BuildOptions) normalize() error {
	if o.MaxBins == 0 {
		o.MaxBins = 20
	}
	if o.MaxBins < 2 || o.MaxBins > 256 {
		return fmt.Errorf("ooc: MaxBins %d out of [2,256]", o.MaxBins)
	}
	if o.ChunkRows == 0 {
		o.ChunkRows = 1 << 16
	}
	if o.ChunkRows < 1 {
		return fmt.Errorf("ooc: ChunkRows %d must be positive", o.ChunkRows)
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	if o.FS == nil {
		o.FS = fsfault.OS
	}
	return nil
}

// manifest is the store's commit record, written last: a directory
// without a readable manifest is an aborted build, not a store. Cuts
// ride in the manifest as JSON — Go's float64 JSON round-trip is exact,
// so the mapper reloads bit-for-bit.
type manifest struct {
	Version   int           `json:"version"`
	Rows      int           `json:"rows"`
	Cols      int           `json:"cols"`
	MaxBins   int           `json:"max_bins"`
	ChunkRows int           `json:"chunk_rows"`
	Labeled   bool          `json:"labeled"`
	Cuts      [][]float64   `json:"cuts"`
	Shards    []shardRecord `json:"shards"`
}

type shardRecord struct {
	File     string `json:"file"`
	StartRow int    `json:"start_row"`
	Rows     int    `json:"rows"`
	NNZ      int    `json:"nnz"`
}

const (
	manifestVersion = 1
	manifestName    = "manifest.json"
	labelsName      = "labels.bin"
	// quarantineSuffix marks a shard file pulled out of service after its
	// content failed validation beyond retry; kept (not deleted) so the
	// evidence survives for post-mortems, swept when disk space runs out.
	quarantineSuffix = ".bad"
)

// manifestFileName names generation gen's commit record. Generation 0 is
// the legacy un-numbered name, so stores built before generations existed
// read as generation 0.
func manifestFileName(gen int) string {
	if gen == 0 {
		return manifestName
	}
	return fmt.Sprintf("manifest-%06d.json", gen)
}

// parseManifestGen inverts manifestFileName.
func parseManifestGen(name string) (int, bool) {
	if name == manifestName {
		return 0, true
	}
	rest, ok := strings.CutPrefix(name, "manifest-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".json")
	if !ok || len(rest) != 6 {
		return 0, false
	}
	gen, err := strconv.Atoi(rest)
	if err != nil || gen < 1 {
		return 0, false
	}
	return gen, true
}

// Build constructs a binned shard store under dir from two streaming
// passes over src: pass 1 proposes cuts (see sketch.go), pass 2
// discretizes each chunk through the mapper and spills it as a
// CRC-guarded shard. Labels (when src.Labeled()) accumulate in memory —
// 8 bytes/row, the one per-row cost that never spills — and land in a
// framed labels file. The manifest is written last as the commit point.
// Peak memory is the pass-1 accumulators plus one chunk's CSR buffers.
//
// A disk-full failure on any spill triggers backpressure instead of a
// fail-stop: the build sweeps aborted-write temp files and quarantined
// shards out of the directory and retries the write once; only a second
// ENOSPC propagates.
func Build(dir string, src Source, opt BuildOptions) error {
	if err := opt.normalize(); err != nil {
		return err
	}
	fsys := opt.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	mapper, rows, err := proposeCuts(src, opt)
	if err != nil {
		return err
	}
	if rows == 0 {
		return fmt.Errorf("ooc: source delivered no rows")
	}

	man := &manifest{
		Version:   manifestVersion,
		Rows:      rows,
		Cols:      src.Cols(),
		MaxBins:   opt.MaxBins,
		ChunkRows: opt.ChunkRows,
		Labeled:   src.Labeled(),
		Cuts:      mapper.Cuts,
	}

	var labels []float64
	if rs, ok := AsRangeSource(src); ok && opt.Workers > 1 {
		labels, err = buildShardsParallel(fsys, dir, rs, mapper, man, rows, opt)
	} else {
		labels, err = buildShardsSerial(fsys, dir, src, mapper, man, opt)
	}
	if err != nil {
		return err
	}
	got := 0
	for _, s := range man.Shards {
		got += s.Rows
	}
	if got != rows {
		return fmt.Errorf("ooc: pass 2 delivered %d rows, pass 1 saw %d (source not replayable?)", got, rows)
	}

	if labels != nil {
		if err := writeRetryNoSpace(fsys, dir, func() error {
			return writeLabels(fsys, filepath.Join(dir, labelsName), labels)
		}); err != nil {
			return err
		}
	}

	return writeRetryNoSpace(fsys, dir, func() error {
		return writeManifest(fsys, dir, man, 0)
	})
}

// buildShardsSerial is the single-threaded pass 2: one scan, spilling a
// shard every ChunkRows rows. Returns the accumulated labels (nil for
// unlabeled sources).
func buildShardsSerial(fsys fsfault.FS, dir string, src Source, mapper *gbdt.BinMapper, man *manifest, opt BuildOptions) ([]float64, error) {
	var labels []float64
	if src.Labeled() {
		labels = make([]float64, 0, man.Rows)
	}

	cur := &shardData{rowPtr: []int32{0}}
	flush := func() error {
		if len(cur.rowPtr) == 1 {
			return nil
		}
		name := fmt.Sprintf("shard-%06d.bin", len(man.Shards))
		if err := writeRetryNoSpace(fsys, dir, func() error {
			return writeShard(fsys, filepath.Join(dir, name), cur)
		}); err != nil {
			return err
		}
		man.Shards = append(man.Shards, shardRecord{
			File:     name,
			StartRow: cur.startRow,
			Rows:     len(cur.rowPtr) - 1,
			NNZ:      len(cur.cols),
		})
		next := cur.startRow + len(cur.rowPtr) - 1
		cur = &shardData{startRow: next, rowPtr: cur.rowPtr[:1], cols: cur.cols[:0], bins: cur.bins[:0]}
		cur.rowPtr[0] = 0
		return nil
	}

	err := src.Scan(func(row int, indices []int32, values []float64, label float64) error {
		for k, j := range indices {
			cur.cols = append(cur.cols, j)
			cur.bins = append(cur.bins, uint8(mapper.Bin(int(j), values[k])))
		}
		cur.rowPtr = append(cur.rowPtr, int32(len(cur.cols)))
		if labels != nil {
			labels = append(labels, label)
		}
		if len(cur.rowPtr)-1 >= opt.ChunkRows {
			return flush()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ooc: discretize pass: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return labels, nil
}

// builtChunk is one discretized shard-to-be crossing from a build worker
// to the ordered committer.
type builtChunk struct {
	sd     *shardData
	labels []float64
	err    error
}

// buildShardsParallel is the multi-worker pass 2: chunk [k·ChunkRows,
// (k+1)·ChunkRows) is range-scanned and discretized by whichever worker
// picks it up, and a single committer (the calling goroutine) receives
// chunks in strict index order, writing each shard file and appending
// its records and labels. Chunk boundaries equal the serial flush
// boundaries and shard encoding is deterministic, so the directory is
// byte-identical to a serial build; the single committer also preserves
// the ENOSPC backpressure path's invariant that only one goroutine
// writes (sweepDebris must never race a concurrent temp-file writer).
//
// A bounded ticket window keeps at most Workers+2 chunks materialized
// ahead of the committer. Tickets are acquired before a worker claims
// its chunk index, so in-flight chunks are always the next few the
// committer needs — no deadlock, bounded memory.
func buildShardsParallel(fsys fsfault.FS, dir string, rs RangeSource, mapper *gbdt.BinMapper, man *manifest, rows int, opt BuildOptions) ([]float64, error) {
	if got := rs.Rows(); got != rows {
		return nil, fmt.Errorf("ooc: pass 2 source declares %d rows, pass 1 saw %d (source not replayable?)", got, rows)
	}
	n := (rows + opt.ChunkRows - 1) / opt.ChunkRows
	var labels []float64
	if man.Labeled {
		labels = make([]float64, 0, rows)
	}

	chans := make([]chan *builtChunk, n)
	for i := range chans {
		chans[i] = make(chan *builtChunk, 1)
	}
	window := make(chan struct{}, opt.Workers+2)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				window <- struct{}{}
				i := int(next.Add(1)) - 1
				if i >= n {
					<-window
					return
				}
				if failed.Load() {
					// The committer has already aborted; send an empty
					// marker so it can drain without blocking.
					chans[i] <- &builtChunk{}
					continue
				}
				lo := i * opt.ChunkRows
				chans[i] <- discretizeChunk(rs, mapper, man.Labeled, lo, min(lo+opt.ChunkRows, rows))
			}
		}()
	}

	var err error
	for i := 0; i < n; i++ {
		c := <-chans[i]
		<-window
		if err != nil {
			continue // draining after abort
		}
		if c.err != nil {
			err = c.err
			failed.Store(true)
			continue
		}
		name := fmt.Sprintf("shard-%06d.bin", len(man.Shards))
		if werr := writeRetryNoSpace(fsys, dir, func() error {
			return writeShard(fsys, filepath.Join(dir, name), c.sd)
		}); werr != nil {
			err = werr
			failed.Store(true)
			continue
		}
		man.Shards = append(man.Shards, shardRecord{
			File:     name,
			StartRow: c.sd.startRow,
			Rows:     len(c.sd.rowPtr) - 1,
			NNZ:      len(c.sd.cols),
		})
		labels = append(labels, c.labels...)
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return labels, nil
}

// discretizeChunk range-scans rows [lo, hi) and bins them into one
// shard's CSR arrays.
func discretizeChunk(rs RangeSource, mapper *gbdt.BinMapper, labeled bool, lo, hi int) *builtChunk {
	sd := &shardData{startRow: lo, rowPtr: []int32{0}}
	var labels []float64
	if labeled {
		labels = make([]float64, 0, hi-lo)
	}
	err := rs.ScanRange(lo, hi, func(row int, indices []int32, values []float64, label float64) error {
		for k, j := range indices {
			sd.cols = append(sd.cols, j)
			sd.bins = append(sd.bins, uint8(mapper.Bin(int(j), values[k])))
		}
		sd.rowPtr = append(sd.rowPtr, int32(len(sd.cols)))
		if labels != nil {
			labels = append(labels, label)
		}
		return nil
	})
	if err != nil {
		return &builtChunk{err: fmt.Errorf("ooc: discretize pass: %w", err)}
	}
	if got := len(sd.rowPtr) - 1; got != hi-lo {
		return &builtChunk{err: fmt.Errorf("ooc: range scan [%d,%d) delivered %d rows", lo, hi, got)}
	}
	return &builtChunk{sd: sd, labels: labels}
}

// scanOrdered replays a range source through fn in strict row order
// while producing row chunks concurrently — the sequential-consumer
// side of the build's pass 1, where the cut accumulators' insertion
// order decides the proposed cuts bit for bit. The same ticket-window
// discipline as buildShardsParallel bounds look-ahead memory.
func scanOrdered(rs RangeSource, chunkRows, workers int, fn func(row int, indices []int32, values []float64, label float64) error) error {
	rows := rs.Rows()
	n := (rows + chunkRows - 1) / chunkRows
	chans := make([]chan *rowChunk, n)
	for i := range chans {
		chans[i] = make(chan *rowChunk, 1)
	}
	window := make(chan struct{}, workers+2)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				window <- struct{}{}
				i := int(next.Add(1)) - 1
				if i >= n {
					<-window
					return
				}
				if failed.Load() {
					chans[i] <- &rowChunk{}
					continue
				}
				lo := i * chunkRows
				chans[i] <- materializeChunk(rs, lo, min(lo+chunkRows, rows))
			}
		}()
	}

	var err error
	for i := 0; i < n; i++ {
		c := <-chans[i]
		<-window
		if err != nil {
			continue
		}
		if c.err != nil {
			err = c.err
			failed.Store(true)
			continue
		}
		for r := 0; r+1 < len(c.rowPtr); r++ {
			a, b := c.rowPtr[r], c.rowPtr[r+1]
			if ferr := fn(c.lo+r, c.cols[a:b], c.vals[a:b], c.labels[r]); ferr != nil {
				err = ferr
				failed.Store(true)
				break
			}
		}
	}
	wg.Wait()
	return err
}

// rowChunk is one materialized run of raw rows crossing from a scan
// worker to the ordered consumer.
type rowChunk struct {
	lo     int
	rowPtr []int32
	cols   []int32
	vals   []float64
	labels []float64
	err    error
}

// materializeChunk buffers rows [lo, hi) of the source into CSR form.
func materializeChunk(rs RangeSource, lo, hi int) *rowChunk {
	c := &rowChunk{lo: lo, rowPtr: []int32{0}, labels: make([]float64, 0, hi-lo)}
	err := rs.ScanRange(lo, hi, func(row int, indices []int32, values []float64, label float64) error {
		c.cols = append(c.cols, indices...)
		c.vals = append(c.vals, values...)
		c.rowPtr = append(c.rowPtr, int32(len(c.cols)))
		c.labels = append(c.labels, label)
		return nil
	})
	if err != nil {
		return &rowChunk{err: fmt.Errorf("ooc: range scan [%d,%d): %w", lo, hi, err)}
	}
	if got := len(c.rowPtr) - 1; got != hi-lo {
		return &rowChunk{err: fmt.Errorf("ooc: range scan [%d,%d) delivered %d rows", lo, hi, got)}
	}
	return c
}

// writeManifest commits one manifest generation: plain JSON, no binary
// frame — human-inspectable, and the loader cross-checks it structurally.
// Written atomically, last.
func writeManifest(fsys fsfault.FS, dir string, man *manifest, gen int) error {
	buf, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return err
	}
	return writeAtomic(fsys, filepath.Join(dir, manifestFileName(gen)), buf)
}

// writeRetryNoSpace runs a write, and on a disk-full failure (real or
// injected — both satisfy errors.Is(err, syscall.ENOSPC)) sweeps the
// store directory's reclaimable debris and retries once.
func writeRetryNoSpace(fsys fsfault.FS, dir string, write func() error) error {
	err := write()
	if err == nil || !errors.Is(err, syscall.ENOSPC) {
		return err
	}
	if n := sweepDebris(fsys, dir); n == 0 {
		return err // nothing reclaimable; retrying would just fail again
	}
	return write()
}

// sweepDebris removes aborted-write temp files and quarantined shards
// from a store directory, returning how many files it freed. Both kinds
// are disposable by construction: temp debris never had a committed name,
// and a quarantined shard's content already failed validation.
func sweepDebris(fsys fsfault.FS, dir string) int {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	freed := 0
	for _, e := range entries {
		name := e.Name()
		ok, _ := filepath.Match(tempPattern, name)
		if !ok && !strings.HasSuffix(name, quarantineSuffix) {
			continue
		}
		if fsys.Remove(filepath.Join(dir, name)) == nil {
			freed++
		}
	}
	return freed
}

// decodeManifest parses and validates one commit record's bytes.
func decodeManifest(buf []byte) (*manifest, error) {
	var man manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("ooc: manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("ooc: manifest version %d (want %d)", man.Version, manifestVersion)
	}
	if man.Rows <= 0 || man.Cols <= 0 || len(man.Cuts) != man.Cols || man.ChunkRows < 1 {
		return nil, fmt.Errorf("ooc: manifest inconsistent (rows=%d cols=%d cuts=%d chunk=%d)",
			man.Rows, man.Cols, len(man.Cuts), man.ChunkRows)
	}
	want := 0
	for i, s := range man.Shards {
		if s.StartRow != want || s.Rows < 1 {
			return nil, fmt.Errorf("ooc: manifest shard %d covers [%d,%d), want start %d", i, s.StartRow, s.StartRow+s.Rows, want)
		}
		if i < len(man.Shards)-1 && s.Rows != man.ChunkRows {
			return nil, fmt.Errorf("ooc: manifest shard %d has %d rows, want chunk height %d", i, s.Rows, man.ChunkRows)
		}
		want += s.Rows
	}
	if want != man.Rows {
		return nil, fmt.Errorf("ooc: manifest shards cover %d rows, want %d", want, man.Rows)
	}
	return &man, nil
}

// readManifest finds the newest consistent commit record in a store
// directory. Generations are tried newest first, so a crash mid-commit —
// which can leave the newest generation torn, truncated, or garbage —
// rolls the store back to the previous consistent generation instead of
// failing the open. Unreadable newer generations are removed once an
// older one validates (they are aborted commits, not data). Returns the
// manifest and its generation.
func readManifest(fsys fsfault.FS, dir string) (*manifest, int, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var gens []int
	for _, e := range entries {
		if gen, ok := parseManifestGen(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	if len(gens) == 0 {
		// Preserve the classic "no manifest" error shape (fs.ErrNotExist).
		_, err := fsys.ReadFile(filepath.Join(dir, manifestName))
		return nil, 0, err
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	var firstErr error
	var rejected []int
	for _, gen := range gens {
		buf, err := fsys.ReadFile(filepath.Join(dir, manifestFileName(gen)))
		if err == nil {
			var man *manifest
			man, err = decodeManifest(buf)
			if err == nil {
				for _, bad := range rejected {
					fsys.Remove(filepath.Join(dir, manifestFileName(bad)))
				}
				return man, gen, nil
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("ooc: manifest generation %d: %w", gen, err)
		}
		rejected = append(rejected, gen)
	}
	return nil, 0, firstErr
}

// Mapper reconstructs the bin mapper recorded in the manifest.
func (m *manifest) mapper() *gbdt.BinMapper {
	return &gbdt.BinMapper{Cuts: m.Cuts, MaxBins: m.MaxBins}
}
