package ooc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"vf2boost/internal/gbdt"
)

// BuildOptions configures the two-pass store build.
type BuildOptions struct {
	// MaxBins is s, the histogram bins per feature (default 20, the
	// trainer's default; bounds [2,256]).
	MaxBins int
	// ChunkRows is the shard height in rows (default 1<<16). Every shard
	// except the last covers exactly ChunkRows rows, so the shard holding
	// row i is shard i/ChunkRows.
	ChunkRows int
	// FastSketch switches pass 1 to per-chunk sketches merged on a
	// background worker — faster on wide sparse data, but the merged rank
	// bound is εa+εb, so cuts are no longer byte-identical to the
	// in-memory path.
	FastSketch bool
}

func (o *BuildOptions) normalize() error {
	if o.MaxBins == 0 {
		o.MaxBins = 20
	}
	if o.MaxBins < 2 || o.MaxBins > 256 {
		return fmt.Errorf("ooc: MaxBins %d out of [2,256]", o.MaxBins)
	}
	if o.ChunkRows == 0 {
		o.ChunkRows = 1 << 16
	}
	if o.ChunkRows < 1 {
		return fmt.Errorf("ooc: ChunkRows %d must be positive", o.ChunkRows)
	}
	return nil
}

// manifest is the store's commit record, written last: a directory
// without a readable manifest is an aborted build, not a store. Cuts
// ride in the manifest as JSON — Go's float64 JSON round-trip is exact,
// so the mapper reloads bit-for-bit.
type manifest struct {
	Version   int           `json:"version"`
	Rows      int           `json:"rows"`
	Cols      int           `json:"cols"`
	MaxBins   int           `json:"max_bins"`
	ChunkRows int           `json:"chunk_rows"`
	Labeled   bool          `json:"labeled"`
	Cuts      [][]float64   `json:"cuts"`
	Shards    []shardRecord `json:"shards"`
}

type shardRecord struct {
	File     string `json:"file"`
	StartRow int    `json:"start_row"`
	Rows     int    `json:"rows"`
	NNZ      int    `json:"nnz"`
}

const (
	manifestVersion = 1
	manifestName    = "manifest.json"
	labelsName      = "labels.bin"
)

// Build constructs a binned shard store under dir from two streaming
// passes over src: pass 1 proposes cuts (see sketch.go), pass 2
// discretizes each chunk through the mapper and spills it as a
// CRC-guarded shard. Labels (when src.Labeled()) accumulate in memory —
// 8 bytes/row, the one per-row cost that never spills — and land in a
// framed labels file. The manifest is written last as the commit point.
// Peak memory is the pass-1 accumulators plus one chunk's CSR buffers.
func Build(dir string, src Source, opt BuildOptions) error {
	if err := opt.normalize(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	mapper, rows, err := proposeCuts(src, opt)
	if err != nil {
		return err
	}
	if rows == 0 {
		return fmt.Errorf("ooc: source delivered no rows")
	}

	man := &manifest{
		Version:   manifestVersion,
		Rows:      rows,
		Cols:      src.Cols(),
		MaxBins:   opt.MaxBins,
		ChunkRows: opt.ChunkRows,
		Labeled:   src.Labeled(),
		Cuts:      mapper.Cuts,
	}

	var labels []float64
	if src.Labeled() {
		labels = make([]float64, 0, rows)
	}

	cur := &shardData{rowPtr: []int32{0}}
	flush := func() error {
		if len(cur.rowPtr) == 1 {
			return nil
		}
		name := fmt.Sprintf("shard-%06d.bin", len(man.Shards))
		if err := writeShard(filepath.Join(dir, name), cur); err != nil {
			return err
		}
		man.Shards = append(man.Shards, shardRecord{
			File:     name,
			StartRow: cur.startRow,
			Rows:     len(cur.rowPtr) - 1,
			NNZ:      len(cur.cols),
		})
		next := cur.startRow + len(cur.rowPtr) - 1
		cur = &shardData{startRow: next, rowPtr: cur.rowPtr[:1], cols: cur.cols[:0], bins: cur.bins[:0]}
		cur.rowPtr[0] = 0
		return nil
	}

	err = src.Scan(func(row int, indices []int32, values []float64, label float64) error {
		for k, j := range indices {
			cur.cols = append(cur.cols, j)
			cur.bins = append(cur.bins, uint8(mapper.Bin(int(j), values[k])))
		}
		cur.rowPtr = append(cur.rowPtr, int32(len(cur.cols)))
		if labels != nil {
			labels = append(labels, label)
		}
		if len(cur.rowPtr)-1 >= opt.ChunkRows {
			return flush()
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("ooc: discretize pass: %w", err)
	}
	if err := flush(); err != nil {
		return err
	}
	got := 0
	for _, s := range man.Shards {
		got += s.Rows
	}
	if got != rows {
		return fmt.Errorf("ooc: pass 2 delivered %d rows, pass 1 saw %d (source not replayable?)", got, rows)
	}

	if labels != nil {
		if err := writeLabels(filepath.Join(dir, labelsName), labels); err != nil {
			return err
		}
	}

	// Plain JSON, no binary frame: human-inspectable, and the loader
	// cross-checks it structurally. Written atomically, last.
	buf, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(dir, manifestName), buf)
}

// readManifest loads and validates the commit record.
func readManifest(dir string) (*manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("ooc: manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("ooc: manifest version %d (want %d)", man.Version, manifestVersion)
	}
	if man.Rows <= 0 || man.Cols <= 0 || len(man.Cuts) != man.Cols || man.ChunkRows < 1 {
		return nil, fmt.Errorf("ooc: manifest inconsistent (rows=%d cols=%d cuts=%d chunk=%d)",
			man.Rows, man.Cols, len(man.Cuts), man.ChunkRows)
	}
	want := 0
	for i, s := range man.Shards {
		if s.StartRow != want || s.Rows < 1 {
			return nil, fmt.Errorf("ooc: manifest shard %d covers [%d,%d), want start %d", i, s.StartRow, s.StartRow+s.Rows, want)
		}
		if i < len(man.Shards)-1 && s.Rows != man.ChunkRows {
			return nil, fmt.Errorf("ooc: manifest shard %d has %d rows, want chunk height %d", i, s.Rows, man.ChunkRows)
		}
		want += s.Rows
	}
	if want != man.Rows {
		return nil, fmt.Errorf("ooc: manifest shards cover %d rows, want %d", want, man.Rows)
	}
	return &man, nil
}

// Mapper reconstructs the bin mapper recorded in the manifest.
func (m *manifest) mapper() *gbdt.BinMapper {
	return &gbdt.BinMapper{Cuts: m.Cuts, MaxBins: m.MaxBins}
}
