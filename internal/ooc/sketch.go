package ooc

import (
	"fmt"

	"vf2boost/internal/gbdt"
	"vf2boost/internal/quantile"
)

// Pass 1: propose per-feature cuts from one streaming scan.
//
// The default accumulator reproduces gbdt.NewBinMapper bin-for-bin: a
// feature's values buffer exactly until the column outgrows
// gbdt.SketchThreshold, then spill into a GK sketch in insertion order —
// the same exact-vs-sketch switch, the same eps, the same value order
// (the in-memory path feeds its sketch from the CSC column view, which
// is row-ordered, and a Source scans rows in order). Peak pass-1 memory
// is therefore min(nnz, cols·SketchThreshold) float64s: bounded by the
// column count however many rows stream past.
//
// The FastSketch mode instead sketches every column per chunk and merges
// chunk sketches into the global summary on a background worker, so
// sketch maintenance overlaps the scan. Chunk sketches cross the worker
// boundary in their serialized form (quantile.AppendBinary), the same
// bytes a distributed builder would ship between machines. Merging
// loosens the rank bound to εa+εb (see quantile.Merge), so FastSketch
// cuts are valid split candidates but not byte-identical to the
// in-memory path — use the default mode when parity matters.

// featAcc is one feature's cut-proposal state.
type featAcc struct {
	buf []float64
	sk  *quantile.Sketch
}

func (a *featAcc) add(v float64, eps float64) {
	if a.sk != nil {
		a.sk.Add(v)
		return
	}
	a.buf = append(a.buf, v)
	if len(a.buf) > gbdt.SketchThreshold {
		sk := quantile.MustNew(eps)
		for _, x := range a.buf {
			sk.Add(x)
		}
		a.sk = sk
		a.buf = nil
	}
}

func (a *featAcc) cuts(maxBins int) []float64 {
	if a.sk != nil {
		return a.sk.Quantiles(maxBins)
	}
	if len(a.buf) == 0 {
		return nil
	}
	return quantile.Exact(a.buf, maxBins)
}

// proposeCuts runs pass 1 and returns the mapper plus the row count.
func proposeCuts(src Source, opt BuildOptions) (*gbdt.BinMapper, int, error) {
	if opt.FastSketch {
		return proposeCutsFast(src, opt)
	}
	eps := 0.5 / float64(opt.MaxBins)
	accs := make([]featAcc, src.Cols())
	rows := 0
	scan := src.Scan
	if rs, ok := AsRangeSource(src); ok && opt.Workers > 1 {
		// Same callback, same row order — chunk generation runs on the
		// workers while the accumulators consume sequentially, so the
		// proposed cuts stay byte-identical to a serial scan.
		scan = func(fn func(row int, indices []int32, values []float64, label float64) error) error {
			return scanOrdered(rs, opt.ChunkRows, opt.Workers, fn)
		}
	}
	err := scan(func(row int, indices []int32, values []float64, label float64) error {
		rows++
		for k, j := range indices {
			accs[j].add(values[k], eps)
		}
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("ooc: sketch pass: %w", err)
	}
	cuts := make([][]float64, len(accs))
	for j := range accs {
		cuts[j] = accs[j].cuts(opt.MaxBins)
	}
	return &gbdt.BinMapper{Cuts: cuts, MaxBins: opt.MaxBins}, rows, nil
}

// chunkSketches is one chunk's serialized per-feature sketches; nil
// entries mark features the chunk never saw.
type chunkSketches [][]byte

// proposeCutsFast sketches per chunk and merges on a background worker.
func proposeCutsFast(src Source, opt BuildOptions) (*gbdt.BinMapper, int, error) {
	eps := 0.5 / float64(opt.MaxBins)
	cols := src.Cols()

	global := make([]*quantile.Sketch, cols)
	work := make(chan chunkSketches, 2)
	mergeErr := make(chan error, 1)
	go func() {
		for cs := range work {
			for j, payload := range cs {
				if payload == nil {
					continue
				}
				var sk quantile.Sketch
				if err := sk.UnmarshalBinary(payload); err != nil {
					mergeErr <- fmt.Errorf("ooc: chunk sketch for feature %d: %w", j, err)
					// Drain so the producer never blocks after a failure.
					for range work {
					}
					return
				}
				if global[j] == nil {
					g := quantile.MustNew(eps)
					global[j] = g
				}
				global[j].Merge(&sk)
			}
		}
		mergeErr <- nil
	}()

	chunk := make([]*quantile.Sketch, cols)
	inChunk := 0
	flush := func() {
		if inChunk == 0 {
			return
		}
		cs := make(chunkSketches, cols)
		for j, sk := range chunk {
			if sk == nil {
				continue
			}
			cs[j] = sk.AppendBinary(nil)
			chunk[j] = nil
		}
		work <- cs
		inChunk = 0
	}
	rows := 0
	err := src.Scan(func(row int, indices []int32, values []float64, label float64) error {
		rows++
		for k, j := range indices {
			if chunk[j] == nil {
				chunk[j] = quantile.MustNew(eps)
			}
			chunk[j].Add(values[k])
		}
		inChunk++
		if inChunk >= opt.ChunkRows {
			flush()
		}
		return nil
	})
	if err == nil {
		flush()
	}
	close(work)
	if merr := <-mergeErr; err == nil && merr != nil {
		err = merr
	}
	if err != nil {
		return nil, 0, fmt.Errorf("ooc: sketch pass: %w", err)
	}
	cuts := make([][]float64, cols)
	for j, sk := range global {
		if sk != nil {
			cuts[j] = sk.Quantiles(opt.MaxBins)
		}
	}
	return &gbdt.BinMapper{Cuts: cuts, MaxBins: opt.MaxBins}, rows, nil
}
