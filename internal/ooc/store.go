package ooc

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"vf2boost/internal/gbdt"
)

// Options configures a Store's runtime behavior.
type Options struct {
	// MemBudget caps the resident shard bytes. 0 means unlimited. The
	// budget is approximate: a demand-loaded shard is always admitted
	// even when it alone exceeds the budget (one-shard floor — the
	// trainer cannot make progress otherwise), and eviction brings the
	// cache back under budget before the next admit.
	MemBudget int64
	// Prefetch enables next-shard readahead while the tree is shallow
	// (depth <= 1), where row access is near-sequential across the whole
	// store. Prefetched shards never evict the shard that triggered them
	// and are skipped entirely when the budget has no room.
	Prefetch bool
}

// Store is a disk-backed gbdt.BinView over a built shard directory: rows
// resolve against an LRU cache of loaded shards kept under Options.
// MemBudget. The read path (Row) is lock-free on cache hits; loads and
// evictions serialize on a mutex. Row panics if a shard fails to load or
// fails its CRC — the BinView contract has no error channel, and a
// corrupt store mid-training is not a recoverable condition.
type Store struct {
	dir    string
	man    *manifest
	mapper *gbdt.BinMapper
	opt    Options

	data    []atomic.Pointer[shardData]
	lastUse []atomic.Int64
	clock   atomic.Int64
	depth   atomic.Int32

	mu       sync.Mutex // serializes load/evict; guards resident + stats
	resident int64
	stats    CacheStats

	prefetching atomic.Bool

	labelsOnce sync.Once
	labels     []float64
	labelsErr  error
}

// CacheStats counts shard-cache activity since Open.
type CacheStats struct {
	// Loads counts demand shard loads (cache misses on the Row path).
	Loads int64
	// Prefetches counts shards loaded by readahead.
	Prefetches int64
	// Evictions counts shards dropped to stay under budget.
	Evictions int64
	// ResidentBytes is the current cached shard footprint.
	ResidentBytes int64
	// PeakBytes is the high-water resident footprint.
	PeakBytes int64
}

var (
	_ gbdt.BinView     = (*Store)(nil)
	_ gbdt.DepthHinter = (*Store)(nil)
)

// Open loads a store's manifest and prepares the shard cache; no shard
// is read until the first Row call.
func Open(dir string, opt Options) (*Store, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	return &Store{
		dir:     dir,
		man:     man,
		mapper:  man.mapper(),
		opt:     opt,
		data:    make([]atomic.Pointer[shardData], len(man.Shards)),
		lastUse: make([]atomic.Int64, len(man.Shards)),
	}, nil
}

// Rows returns the instance count.
func (s *Store) Rows() int { return s.man.Rows }

// Mapper returns the bin mapper reconstructed from the manifest.
func (s *Store) Mapper() *gbdt.BinMapper { return s.mapper }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.man.Shards) }

// HintDepth records the layer the trainer is about to build; readahead
// runs only while depth <= 1.
func (s *Store) HintDepth(depth int) { s.depth.Store(int32(depth)) }

// Row returns row i's sorted (columns, bins) pair. The slices alias the
// owning shard's arrays and stay valid after eviction (eviction only
// drops the cache reference). Panics on shard corruption or I/O failure.
func (s *Store) Row(i int) ([]int32, []uint8) {
	k := i / s.man.ChunkRows
	sd := s.data[k].Load()
	if sd == nil {
		sd = s.loadShard(k)
	}
	s.lastUse[k].Store(s.clock.Add(1))
	local := i - sd.startRow
	lo, hi := sd.rowPtr[local], sd.rowPtr[local+1]
	return sd.cols[lo:hi], sd.bins[lo:hi]
}

// Labels reads the store's label vector (active-party stores only).
func (s *Store) Labels() ([]float64, error) {
	s.labelsOnce.Do(func() {
		if !s.man.Labeled {
			s.labelsErr = fmt.Errorf("ooc: store %s holds no labels (passive-party store)", s.dir)
			return
		}
		s.labels, s.labelsErr = readLabels(filepath.Join(s.dir, labelsName), s.man.Rows)
	})
	return s.labels, s.labelsErr
}

// Stats snapshots the cache counters.
func (s *Store) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ResidentBytes = s.resident
	return st
}

// loadShard demand-loads shard k, evicting LRU shards to fit the budget
// (k itself is always admitted), then kicks readahead when shallow.
func (s *Store) loadShard(k int) *shardData {
	s.mu.Lock()
	sd := s.data[k].Load()
	if sd == nil {
		var err error
		sd, err = s.readAndAdmit(k, k, true)
		if err != nil {
			s.mu.Unlock()
			panic(err)
		}
		s.stats.Loads++
	}
	s.mu.Unlock()

	if s.opt.Prefetch && s.depth.Load() <= 1 && k+1 < len(s.data) && s.data[k+1].Load() == nil {
		if s.prefetching.CompareAndSwap(false, true) {
			go func(next, protect int) {
				defer s.prefetching.Store(false)
				s.mu.Lock()
				defer s.mu.Unlock()
				if s.data[next].Load() != nil {
					return
				}
				if _, err := s.readAndAdmit(next, protect, false); err == nil {
					s.stats.Prefetches++
				}
			}(k+1, k)
		}
	}
	return sd
}

// readAndAdmit reads shard k from disk and installs it, evicting LRU
// shards (never protect, never k) to make room. With force, the shard is
// admitted even if the budget cannot be met (one-shard floor); without
// it, an errNoRoom sentinel is returned and nothing changes. Caller
// holds s.mu.
func (s *Store) readAndAdmit(k, protect int, force bool) (*shardData, error) {
	rec := s.man.Shards[k]
	size := estShardBytes(rec.Rows, rec.NNZ)
	if s.opt.MemBudget > 0 {
		for s.resident+size > s.opt.MemBudget {
			if !s.evictLRU(k, protect) {
				if !force {
					return nil, errNoRoom
				}
				break
			}
		}
	}
	sd, err := readShard(filepath.Join(s.dir, rec.File), s.man.Cols)
	if err != nil {
		return nil, err
	}
	if sd.startRow != rec.StartRow || len(sd.rowPtr)-1 != rec.Rows {
		return nil, fmt.Errorf("ooc: shard %s covers [%d,+%d), manifest says [%d,+%d)",
			rec.File, sd.startRow, len(sd.rowPtr)-1, rec.StartRow, rec.Rows)
	}
	s.data[k].Store(sd)
	s.lastUse[k].Store(s.clock.Add(1))
	s.resident += sd.memBytes()
	if s.resident > s.stats.PeakBytes {
		s.stats.PeakBytes = s.resident
	}
	return sd, nil
}

var errNoRoom = fmt.Errorf("ooc: no cache room without evicting protected shard")

// evictLRU drops the least-recently-used loaded shard, skipping skip1
// and skip2. Returns false when no shard is evictable. Caller holds s.mu.
func (s *Store) evictLRU(skip1, skip2 int) bool {
	victim := -1
	var oldest int64
	for i := range s.data {
		if i == skip1 || i == skip2 || s.data[i].Load() == nil {
			continue
		}
		if use := s.lastUse[i].Load(); victim < 0 || use < oldest {
			victim, oldest = i, use
		}
	}
	if victim < 0 {
		return false
	}
	sd := s.data[victim].Load()
	s.data[victim].Store(nil)
	s.resident -= sd.memBytes()
	s.stats.Evictions++
	return true
}

// RemoveStore deletes a store directory and everything in it.
func RemoveStore(dir string) error {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("ooc: %s is not a store: %w", dir, err)
	}
	return os.RemoveAll(dir)
}
