package ooc

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"vf2boost/internal/fault/fsfault"
	"vf2boost/internal/gbdt"
)

// Options configures a Store's runtime behavior.
type Options struct {
	// MemBudget caps the resident shard bytes. 0 means unlimited. The
	// budget is approximate: a demand-loaded shard is always admitted
	// even when it alone exceeds the budget (one-shard floor — the
	// trainer cannot make progress otherwise), and eviction brings the
	// cache back under budget before the next admit.
	MemBudget int64
	// Prefetch enables shard readahead: the shard-major sweep announces
	// the next shard of its plan (PrefetchShard), and a demand miss on
	// the Row path reads the following shard ahead. Prefetched shards
	// never evict the most recently used resident shard and are skipped
	// entirely when the budget has no room.
	Prefetch bool
	// RetryLoads is how many extra read attempts a failed demand load
	// gets before the store escalates to quarantine-and-rebuild. Retries
	// heal transient faults (EIO, bit rot on the read path) because the
	// on-disk bytes may be intact. 0 means the default of 2; negative
	// disables retries.
	RetryLoads int
	// Source, when set, lets the store rebuild a shard that failed
	// validation beyond retry: the bad file is quarantined and the
	// shard's row range is re-discretized from this source (which must be
	// the replayable source the store was built from). Without it an
	// unrecoverable shard surfaces as a *ShardError.
	Source Source
	// FS is the filesystem the store reads and repairs through; nil means
	// the real one. Tests and the -fschaos CLI knob install a fault
	// injector here.
	FS fsfault.FS
}

func (o *Options) normalize() {
	switch {
	case o.RetryLoads == 0:
		o.RetryLoads = 2
	case o.RetryLoads < 0:
		o.RetryLoads = 0
	}
	if o.FS == nil {
		o.FS = fsfault.OS
	}
}

// Store is a disk-backed gbdt.BinView over a built shard directory: rows
// resolve against an LRU cache of loaded shards kept under Options.
// MemBudget. The read path (Row) is lock-free on cache hits. Misses go
// through a per-shard singleflight: concurrent loads of distinct shards
// run their disk I/O fully in parallel, concurrent loads of the same
// shard coalesce onto one read, and the store mutex is held only for
// bookkeeping (budget reservation, cache install, stats) — never across
// I/O. Budget accounting is reservation-based: a load reserves its
// manifest-estimated footprint before reading (evicting LRU shards to
// make room first) and settles to the exact size on commit, so parallel
// loads cannot overshoot the budget unseen.
//
// The load path self-heals instead of failing stop: a shard that fails
// its CRC or validation is retried (bounded by Options.RetryLoads), then
// quarantined and rebuilt from Options.Source; only when both fail does
// Row surface a *ShardError. A rebuild republishes the shard under a new
// file name and commits a new manifest generation, so a crash anywhere in
// the repair reopens at the previous consistent generation. Rebuilds
// serialize on their own mutex (sources need not support concurrent
// re-scans) without blocking healthy loads of other shards.
type Store struct {
	dir    string
	fs     fsfault.FS
	man    *manifest
	gen    int
	mapper *gbdt.BinMapper
	opt    Options

	data    []atomic.Pointer[shardData]
	flights []atomic.Pointer[flight]
	lastUse []atomic.Int64
	clock   atomic.Int64
	depth   atomic.Int32

	mu       sync.Mutex // guards resident + stats + closed + manifest mutations
	resident int64
	stats    CacheStats
	closed   bool

	repairMu sync.Mutex // serializes quarantine-and-rebuild source re-scans

	prefetching atomic.Bool
	prefetchWG  sync.WaitGroup

	labelsOnce sync.Once
	labels     []float64
	labelsErr  error
}

// flight is one in-progress shard load. Whoever CASes it into
// Store.flights owns the read; everyone else waiting on the same shard
// blocks on done and consumes the result. The owner publishes sd/err
// before closing done.
type flight struct {
	demand bool
	done   chan struct{}
	sd     *shardData
	err    error
}

// CacheStats counts shard-cache activity since Open.
type CacheStats struct {
	// Loads counts demand shard loads (cache misses on the Row path).
	Loads int64
	// Prefetches counts shards loaded by readahead.
	Prefetches int64
	// Evictions counts shards dropped to stay under budget.
	Evictions int64
	// RetriedLoads counts extra read attempts after a failed shard load.
	RetriedLoads int64
	// Quarantined counts shard files renamed out of service after
	// failing validation beyond retry.
	Quarantined int64
	// Rebuilds counts shards re-discretized from the source.
	Rebuilds int64
	// ResidentBytes is the current cached shard footprint.
	ResidentBytes int64
	// PeakBytes is the high-water resident footprint.
	PeakBytes int64
}

// ShardError is the typed failure of an unrecoverable shard: every retry
// failed and the shard could not be rebuilt (no source, or the rebuild
// itself failed). It unwraps to the last load failure.
type ShardError struct {
	Dir      string
	Shard    int
	File     string
	Attempts int
	// Err is the last load failure.
	Err error
	// RebuildErr is why the rebuild could not run or did not succeed.
	RebuildErr error
}

func (e *ShardError) Error() string {
	msg := fmt.Sprintf("ooc: shard %d (%s) unrecoverable after %d attempts: %v",
		e.Shard, filepath.Join(e.Dir, e.File), e.Attempts, e.Err)
	if e.RebuildErr != nil {
		msg += fmt.Sprintf(" (rebuild: %v)", e.RebuildErr)
	}
	return msg
}

func (e *ShardError) Unwrap() error { return e.Err }

// ErrClosed is returned by loads against a closed store.
var ErrClosed = errors.New("ooc: store is closed")

var (
	_ gbdt.BinView         = (*Store)(nil)
	_ gbdt.DepthHinter     = (*Store)(nil)
	_ gbdt.ShardedView     = (*Store)(nil)
	_ gbdt.ShardPrefetcher = (*Store)(nil)
)

// Open loads a store's newest consistent manifest generation and
// prepares the shard cache; no shard is read until the first Row call.
func Open(dir string, opt Options) (*Store, error) {
	opt.normalize()
	man, gen, err := readManifest(opt.FS, dir)
	if err != nil {
		return nil, err
	}
	return &Store{
		dir:     dir,
		fs:      opt.FS,
		man:     man,
		gen:     gen,
		mapper:  man.mapper(),
		opt:     opt,
		data:    make([]atomic.Pointer[shardData], len(man.Shards)),
		flights: make([]atomic.Pointer[flight], len(man.Shards)),
		lastUse: make([]atomic.Int64, len(man.Shards)),
	}, nil
}

// Rows returns the instance count.
func (s *Store) Rows() int { return s.man.Rows }

// Mapper returns the bin mapper reconstructed from the manifest.
func (s *Store) Mapper() *gbdt.BinMapper { return s.mapper }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.man.Shards) }

// ShardRowRange returns the half-open row range [lo, hi) of shard k.
func (s *Store) ShardRowRange(k int) (lo, hi int) {
	rec := &s.man.Shards[k]
	return rec.StartRow, rec.StartRow + rec.Rows
}

// Generation returns the manifest generation the store is running on; it
// advances when a shard rebuild commits.
func (s *Store) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// HintDepth records the layer the trainer is about to sweep. The hint is
// advisory (see gbdt.DepthHinter): it never changes what Row returns,
// and any int is accepted — negative depths clamp to 0 and oversized
// ones to MaxInt32. Readahead itself follows the sweep's explicit
// PrefetchShard announcements and the Row-miss heuristic, not the depth.
func (s *Store) HintDepth(depth int) {
	if depth < 0 {
		depth = 0
	}
	if depth > math.MaxInt32 {
		depth = math.MaxInt32
	}
	s.depth.Store(int32(depth))
}

// Row returns row i's sorted (columns, bins) pair. The slices alias the
// owning shard's arrays and stay valid after eviction (eviction only
// drops the cache reference). A load failure that survives retry and
// rebuild surfaces as a *ShardError.
func (s *Store) Row(i int) ([]int32, []uint8, error) {
	k := i / s.man.ChunkRows
	sd := s.data[k].Load()
	if sd == nil {
		var err error
		sd, err = s.loadShard(k)
		if err != nil {
			return nil, nil, err
		}
	}
	s.lastUse[k].Store(s.clock.Add(1))
	local := i - sd.startRow
	lo, hi := sd.rowPtr[local], sd.rowPtr[local+1]
	return sd.cols[lo:hi], sd.bins[lo:hi], nil
}

// Labels reads the store's label vector (active-party stores only).
func (s *Store) Labels() ([]float64, error) {
	s.labelsOnce.Do(func() {
		if !s.man.Labeled {
			s.labelsErr = fmt.Errorf("ooc: store %s holds no labels (passive-party store)", s.dir)
			return
		}
		s.labels, s.labelsErr = readLabels(s.fs, filepath.Join(s.dir, labelsName), s.man.Rows)
	})
	return s.labels, s.labelsErr
}

// Stats snapshots the cache counters.
func (s *Store) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ResidentBytes = s.resident
	return st
}

// Close marks the store closed, joins the prefetch goroutines and drops
// the shard cache. Subsequent loads fail with ErrClosed; rows already
// handed out stay valid (they alias shard arrays the GC owns). A demand
// load in flight at Close time aborts at its commit point and releases
// its budget reservation. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.prefetchWG.Wait()

	s.mu.Lock()
	for i := range s.data {
		if sd := s.data[i].Load(); sd != nil {
			s.data[i].Store(nil)
			s.resident -= sd.memBytes()
		}
	}
	s.mu.Unlock()
	return nil
}

// loadShard demand-loads shard k through the per-shard singleflight. The
// winner of the flight slot does the read; losers wait for its result.
// A waiter that inherited a failed prefetch flight retries the load as a
// demand (prefetch reads don't self-heal; demand loads must).
func (s *Store) loadShard(k int) (*shardData, error) {
	for {
		if sd := s.data[k].Load(); sd != nil {
			return sd, nil
		}
		f := &flight{demand: true, done: make(chan struct{})}
		if s.flights[k].CompareAndSwap(nil, f) {
			sd, err := s.runFlight(k, f, true)
			if err != nil {
				return nil, err
			}
			// Row-miss readahead: the demand sweep is moving through row
			// space, so read the next shard behind it.
			s.PrefetchShard(k + 1)
			return sd, nil
		}
		cur := s.flights[k].Load()
		if cur == nil {
			continue
		}
		<-cur.done
		if cur.sd != nil {
			return cur.sd, nil
		}
		if cur.demand {
			return nil, cur.err
		}
	}
}

// PrefetchShard asynchronously reads shard k ahead of use. It never
// blocks: the read runs on its own goroutine, at most one readahead is
// in flight at a time, and a shard that is resident, already loading,
// out of range, or unaffordable under the budget is skipped. Prefetch
// reads never evict the most recently used resident shard (the one the
// trainer is sweeping right now) and never trigger self-healing — any
// failure is left for the eventual demand load to repair.
func (s *Store) PrefetchShard(k int) {
	if !s.opt.Prefetch || k < 0 || k >= len(s.data) || s.data[k].Load() != nil {
		return
	}
	if !s.prefetching.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.prefetching.Store(false)
		return
	}
	s.prefetchWG.Add(1)
	s.mu.Unlock()
	go s.prefetch(k)
}

func (s *Store) prefetch(k int) {
	defer s.prefetchWG.Done()
	defer s.prefetching.Store(false)
	if s.data[k].Load() != nil {
		return
	}
	f := &flight{done: make(chan struct{})}
	if !s.flights[k].CompareAndSwap(nil, f) {
		return // someone else is already loading it
	}
	s.runFlight(k, f, false)
}

// runFlight performs one shard load owned by flight f: reserve budget
// (evicting to make room), read outside any lock, then commit into the
// cache — or roll the reservation back. The flight slot is cleared and
// its waiters released whichever way it ends.
func (s *Store) runFlight(k int, f *flight, demand bool) (*shardData, error) {
	defer func() {
		s.flights[k].CompareAndSwap(f, nil)
		close(f.done)
	}()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		f.err = ErrClosed
		return nil, ErrClosed
	}
	if sd := s.data[k].Load(); sd != nil {
		s.mu.Unlock()
		f.sd = sd
		return sd, nil
	}
	rec := s.man.Shards[k]
	size := estShardBytes(rec.Rows, rec.NNZ)
	if s.opt.MemBudget > 0 {
		for s.resident+size > s.opt.MemBudget {
			protect := -1
			if !demand {
				// Opportunistic readahead must not evict the shard the
				// trainer is using right now.
				protect = s.mruResident(k)
			}
			if !s.evictLRU(k, protect) {
				if !demand {
					s.mu.Unlock()
					f.err = errNoRoom
					return nil, errNoRoom
				}
				break // one-shard floor: admit over budget
			}
		}
	}
	s.resident += size
	if s.resident > s.stats.PeakBytes {
		s.stats.PeakBytes = s.resident
	}
	s.mu.Unlock()

	var sd *shardData
	var err error
	if demand {
		sd, err = s.readShardHealing(k, rec)
	} else {
		sd, err = s.readShardOnce(rec)
	}

	s.mu.Lock()
	if err == nil && s.closed {
		err = ErrClosed
	}
	if err != nil {
		s.resident -= size
		s.mu.Unlock()
		f.err = err
		return nil, err
	}
	s.resident += sd.memBytes() - size
	if s.resident > s.stats.PeakBytes {
		s.stats.PeakBytes = s.resident
	}
	s.data[k].Store(sd)
	s.lastUse[k].Store(s.clock.Add(1))
	if demand {
		s.stats.Loads++
	} else {
		s.stats.Prefetches++
	}
	s.mu.Unlock()
	f.sd = sd
	return sd, nil
}

// mruResident returns the most recently used resident shard (excluding
// skip), or -1. Caller holds s.mu.
func (s *Store) mruResident(skip int) int {
	best, bestUse := -1, int64(-1)
	for i := range s.data {
		if i == skip || s.data[i].Load() == nil {
			continue
		}
		if use := s.lastUse[i].Load(); use > bestUse {
			best, bestUse = i, use
		}
	}
	return best
}

// readShardOnce reads and cross-checks a shard against its manifest
// record, once. rec is the caller's snapshot of the record (taken under
// s.mu), so concurrent manifest commits for other shards can't tear it.
func (s *Store) readShardOnce(rec shardRecord) (*shardData, error) {
	sd, err := readShard(s.fs, filepath.Join(s.dir, rec.File), s.man.Cols)
	if err != nil {
		return nil, err
	}
	if sd.startRow != rec.StartRow || len(sd.rowPtr)-1 != rec.Rows {
		return nil, fmt.Errorf("ooc: shard %s covers [%d,+%d), manifest says [%d,+%d)",
			rec.File, sd.startRow, len(sd.rowPtr)-1, rec.StartRow, rec.Rows)
	}
	return sd, nil
}

// readShardHealing is the demand-load read with the full healing ladder:
// bounded retry (transient read faults leave the disk bytes intact, so a
// clean re-read often succeeds), then quarantine-and-rebuild from the
// source, then a typed *ShardError. Runs outside s.mu — only stat
// updates take it.
func (s *Store) readShardHealing(k int, rec shardRecord) (*shardData, error) {
	attempts := 1 + s.opt.RetryLoads
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			s.mu.Lock()
			s.stats.RetriedLoads++
			s.mu.Unlock()
		}
		sd, err := s.readShardOnce(rec)
		if err == nil {
			return sd, nil
		}
		lastErr = err
		if errors.Is(err, fs.ErrNotExist) {
			// Retrying a missing file cannot help; go straight to rebuild.
			break
		}
	}
	sd, rbErr := s.rebuildShard(k, rec)
	if rbErr != nil {
		return nil, &ShardError{
			Dir:        s.dir,
			Shard:      k,
			File:       rec.File,
			Attempts:   attempts,
			Err:        lastErr,
			RebuildErr: rbErr,
		}
	}
	return sd, nil
}

// errStopScan aborts a source scan early once the rebuilt range is
// complete.
var errStopScan = errors.New("ooc: stop scan")

// rebuildShard re-derives shard k from the store's source: the bad file
// is quarantined (renamed aside, preserving the evidence), the shard's
// row range is re-discretized through the store's own mapper, verified
// against the manifest record, published under a generation-stamped name
// and committed by a new manifest generation. Every step is re-runnable:
// a crash at any point leaves the previous generation consistent and a
// reopened store heals the same shard again.
//
// Rebuilds serialize on repairMu — a Source need not support concurrent
// scans — and take s.mu only around manifest/stat mutations, so healthy
// loads of other shards keep flowing while a repair runs.
func (s *Store) rebuildShard(k int, rec shardRecord) (*shardData, error) {
	if s.opt.Source == nil {
		return nil, errors.New("no source attached (Options.Source) to rebuild from")
	}
	s.repairMu.Lock()
	defer s.repairMu.Unlock()

	old := filepath.Join(s.dir, rec.File)
	if _, err := s.fs.Stat(old); err == nil {
		if err := s.fs.Rename(old, old+quarantineSuffix); err != nil {
			return nil, fmt.Errorf("quarantining %s: %w", rec.File, err)
		}
		s.mu.Lock()
		s.stats.Quarantined++
		s.mu.Unlock()
	}

	sd := &shardData{startRow: rec.StartRow, rowPtr: []int32{0}}
	end := rec.StartRow + rec.Rows
	emit := func(row int, indices []int32, values []float64, label float64) error {
		if row < rec.StartRow {
			return nil
		}
		if row >= end {
			return errStopScan
		}
		for i, j := range indices {
			sd.cols = append(sd.cols, j)
			sd.bins = append(sd.bins, uint8(s.mapper.Bin(int(j), values[i])))
		}
		sd.rowPtr = append(sd.rowPtr, int32(len(sd.cols)))
		return nil
	}
	var err error
	if rs, ok := AsRangeSource(s.opt.Source); ok {
		err = rs.ScanRange(rec.StartRow, end, emit)
	} else {
		err = s.opt.Source.Scan(emit)
	}
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, fmt.Errorf("rescanning source: %w", err)
	}
	if got := len(sd.rowPtr) - 1; got != rec.Rows || len(sd.cols) != rec.NNZ {
		return nil, fmt.Errorf("source drifted: rebuilt %d rows / %d nnz, manifest says %d / %d",
			len(sd.rowPtr)-1, len(sd.cols), rec.Rows, rec.NNZ)
	}

	gen := s.Generation()
	name := fmt.Sprintf("shard-%06d.g%06d.bin", k, gen+1)
	if err := writeRetryNoSpace(s.fs, s.dir, func() error {
		return writeShard(s.fs, filepath.Join(s.dir, name), sd)
	}); err != nil {
		return nil, fmt.Errorf("writing rebuilt shard: %w", err)
	}
	s.mu.Lock()
	s.man.Shards[k].File = name
	s.mu.Unlock()
	if err := writeRetryNoSpace(s.fs, s.dir, func() error {
		return writeManifest(s.fs, s.dir, s.man, gen+1)
	}); err != nil {
		// Roll the in-memory record back so a later attempt re-derives a
		// consistent state instead of pointing at an uncommitted name.
		s.mu.Lock()
		s.man.Shards[k].File = rec.File
		s.mu.Unlock()
		return nil, fmt.Errorf("committing rebuilt manifest: %w", err)
	}
	s.mu.Lock()
	s.gen++
	s.stats.Rebuilds++
	s.mu.Unlock()
	return sd, nil
}

var errNoRoom = fmt.Errorf("ooc: no cache room without evicting protected shard")

// evictLRU drops the least-recently-used loaded shard, skipping skip1
// and skip2. Returns false when no shard is evictable. Caller holds s.mu.
func (s *Store) evictLRU(skip1, skip2 int) bool {
	victim := -1
	var oldest int64
	for i := range s.data {
		if i == skip1 || i == skip2 || s.data[i].Load() == nil {
			continue
		}
		if use := s.lastUse[i].Load(); victim < 0 || use < oldest {
			victim, oldest = i, use
		}
	}
	if victim < 0 {
		return false
	}
	sd := s.data[victim].Load()
	s.data[victim].Store(nil)
	s.resident -= sd.memBytes()
	s.stats.Evictions++
	return true
}

// RemoveStore deletes a store directory and everything in it. Any
// manifest generation marks the directory as a store — a half-repaired
// store (newest generation torn) is still removable.
func RemoveStore(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("ooc: %s is not a store: %w", dir, err)
	}
	for _, e := range entries {
		if _, ok := parseManifestGen(e.Name()); ok {
			return os.RemoveAll(dir)
		}
	}
	return fmt.Errorf("ooc: %s is not a store: no manifest", dir)
}
