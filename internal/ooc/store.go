package ooc

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"vf2boost/internal/fault/fsfault"
	"vf2boost/internal/gbdt"
)

// Options configures a Store's runtime behavior.
type Options struct {
	// MemBudget caps the resident shard bytes. 0 means unlimited. The
	// budget is approximate: a demand-loaded shard is always admitted
	// even when it alone exceeds the budget (one-shard floor — the
	// trainer cannot make progress otherwise), and eviction brings the
	// cache back under budget before the next admit.
	MemBudget int64
	// Prefetch enables next-shard readahead while the tree is shallow
	// (depth <= 1), where row access is near-sequential across the whole
	// store. Prefetched shards never evict the shard that triggered them
	// and are skipped entirely when the budget has no room.
	Prefetch bool
	// RetryLoads is how many extra read attempts a failed demand load
	// gets before the store escalates to quarantine-and-rebuild. Retries
	// heal transient faults (EIO, bit rot on the read path) because the
	// on-disk bytes may be intact. 0 means the default of 2; negative
	// disables retries.
	RetryLoads int
	// Source, when set, lets the store rebuild a shard that failed
	// validation beyond retry: the bad file is quarantined and the
	// shard's row range is re-discretized from this source (which must be
	// the replayable source the store was built from). Without it an
	// unrecoverable shard surfaces as a *ShardError.
	Source Source
	// FS is the filesystem the store reads and repairs through; nil means
	// the real one. Tests and the -fschaos CLI knob install a fault
	// injector here.
	FS fsfault.FS
}

func (o *Options) normalize() {
	switch {
	case o.RetryLoads == 0:
		o.RetryLoads = 2
	case o.RetryLoads < 0:
		o.RetryLoads = 0
	}
	if o.FS == nil {
		o.FS = fsfault.OS
	}
}

// Store is a disk-backed gbdt.BinView over a built shard directory: rows
// resolve against an LRU cache of loaded shards kept under Options.
// MemBudget. The read path (Row) is lock-free on cache hits; loads and
// evictions serialize on a mutex.
//
// The load path self-heals instead of failing stop: a shard that fails
// its CRC or validation is retried (bounded by Options.RetryLoads), then
// quarantined and rebuilt from Options.Source; only when both fail does
// Row surface a *ShardError. A rebuild republishes the shard under a new
// file name and commits a new manifest generation, so a crash anywhere in
// the repair reopens at the previous consistent generation.
type Store struct {
	dir    string
	fs     fsfault.FS
	man    *manifest
	gen    int
	mapper *gbdt.BinMapper
	opt    Options

	data    []atomic.Pointer[shardData]
	lastUse []atomic.Int64
	clock   atomic.Int64
	depth   atomic.Int32

	mu       sync.Mutex // serializes load/evict; guards resident + stats + closed
	resident int64
	stats    CacheStats
	closed   bool

	prefetching atomic.Bool
	prefetchWG  sync.WaitGroup

	labelsOnce sync.Once
	labels     []float64
	labelsErr  error
}

// CacheStats counts shard-cache activity since Open.
type CacheStats struct {
	// Loads counts demand shard loads (cache misses on the Row path).
	Loads int64
	// Prefetches counts shards loaded by readahead.
	Prefetches int64
	// Evictions counts shards dropped to stay under budget.
	Evictions int64
	// RetriedLoads counts extra read attempts after a failed shard load.
	RetriedLoads int64
	// Quarantined counts shard files renamed out of service after
	// failing validation beyond retry.
	Quarantined int64
	// Rebuilds counts shards re-discretized from the source.
	Rebuilds int64
	// ResidentBytes is the current cached shard footprint.
	ResidentBytes int64
	// PeakBytes is the high-water resident footprint.
	PeakBytes int64
}

// ShardError is the typed failure of an unrecoverable shard: every retry
// failed and the shard could not be rebuilt (no source, or the rebuild
// itself failed). It unwraps to the last load failure.
type ShardError struct {
	Dir      string
	Shard    int
	File     string
	Attempts int
	// Err is the last load failure.
	Err error
	// RebuildErr is why the rebuild could not run or did not succeed.
	RebuildErr error
}

func (e *ShardError) Error() string {
	msg := fmt.Sprintf("ooc: shard %d (%s) unrecoverable after %d attempts: %v",
		e.Shard, filepath.Join(e.Dir, e.File), e.Attempts, e.Err)
	if e.RebuildErr != nil {
		msg += fmt.Sprintf(" (rebuild: %v)", e.RebuildErr)
	}
	return msg
}

func (e *ShardError) Unwrap() error { return e.Err }

// ErrClosed is returned by loads against a closed store.
var ErrClosed = errors.New("ooc: store is closed")

var (
	_ gbdt.BinView     = (*Store)(nil)
	_ gbdt.DepthHinter = (*Store)(nil)
)

// Open loads a store's newest consistent manifest generation and
// prepares the shard cache; no shard is read until the first Row call.
func Open(dir string, opt Options) (*Store, error) {
	opt.normalize()
	man, gen, err := readManifest(opt.FS, dir)
	if err != nil {
		return nil, err
	}
	return &Store{
		dir:     dir,
		fs:      opt.FS,
		man:     man,
		gen:     gen,
		mapper:  man.mapper(),
		opt:     opt,
		data:    make([]atomic.Pointer[shardData], len(man.Shards)),
		lastUse: make([]atomic.Int64, len(man.Shards)),
	}, nil
}

// Rows returns the instance count.
func (s *Store) Rows() int { return s.man.Rows }

// Mapper returns the bin mapper reconstructed from the manifest.
func (s *Store) Mapper() *gbdt.BinMapper { return s.mapper }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.man.Shards) }

// Generation returns the manifest generation the store is running on; it
// advances when a shard rebuild commits.
func (s *Store) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// HintDepth records the layer the trainer is about to build; readahead
// runs only while depth <= 1.
func (s *Store) HintDepth(depth int) { s.depth.Store(int32(depth)) }

// Row returns row i's sorted (columns, bins) pair. The slices alias the
// owning shard's arrays and stay valid after eviction (eviction only
// drops the cache reference). A load failure that survives retry and
// rebuild surfaces as a *ShardError.
func (s *Store) Row(i int) ([]int32, []uint8, error) {
	k := i / s.man.ChunkRows
	sd := s.data[k].Load()
	if sd == nil {
		var err error
		sd, err = s.loadShard(k)
		if err != nil {
			return nil, nil, err
		}
	}
	s.lastUse[k].Store(s.clock.Add(1))
	local := i - sd.startRow
	lo, hi := sd.rowPtr[local], sd.rowPtr[local+1]
	return sd.cols[lo:hi], sd.bins[lo:hi], nil
}

// Labels reads the store's label vector (active-party stores only).
func (s *Store) Labels() ([]float64, error) {
	s.labelsOnce.Do(func() {
		if !s.man.Labeled {
			s.labelsErr = fmt.Errorf("ooc: store %s holds no labels (passive-party store)", s.dir)
			return
		}
		s.labels, s.labelsErr = readLabels(s.fs, filepath.Join(s.dir, labelsName), s.man.Rows)
	})
	return s.labels, s.labelsErr
}

// Stats snapshots the cache counters.
func (s *Store) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ResidentBytes = s.resident
	return st
}

// Close marks the store closed, joins the prefetch goroutine and drops
// the shard cache. Subsequent loads fail with ErrClosed; rows already
// handed out stay valid (they alias shard arrays the GC owns). Close is
// idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.prefetchWG.Wait()

	s.mu.Lock()
	for i := range s.data {
		if s.data[i].Load() != nil {
			s.data[i].Store(nil)
		}
	}
	s.resident = 0
	s.mu.Unlock()
	return nil
}

// loadShard demand-loads shard k, evicting LRU shards to fit the budget
// (k itself is always admitted), then kicks readahead when shallow.
func (s *Store) loadShard(k int) (*shardData, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	sd := s.data[k].Load()
	if sd == nil {
		var err error
		sd, err = s.readAndAdmit(k, k, true)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		s.stats.Loads++
	}
	s.mu.Unlock()

	if s.opt.Prefetch && s.depth.Load() <= 1 && k+1 < len(s.data) && s.data[k+1].Load() == nil {
		if s.prefetching.CompareAndSwap(false, true) {
			s.prefetchWG.Add(1)
			go func(next, protect int) {
				defer s.prefetchWG.Done()
				defer s.prefetching.Store(false)
				s.mu.Lock()
				defer s.mu.Unlock()
				if s.closed || s.data[next].Load() != nil {
					return
				}
				if _, err := s.readAndAdmit(next, protect, false); err == nil {
					s.stats.Prefetches++
				}
			}(k+1, k)
		}
	}
	return sd, nil
}

// readAndAdmit reads shard k from disk and installs it, evicting LRU
// shards (never protect, never k) to make room. With force (demand
// loads), the shard is admitted even if the budget cannot be met
// (one-shard floor) and the read self-heals through retry and rebuild;
// without it (prefetch), an errNoRoom sentinel is returned on budget
// pressure and read failures propagate untreated — opportunistic
// readahead never repairs. Caller holds s.mu.
func (s *Store) readAndAdmit(k, protect int, force bool) (*shardData, error) {
	rec := s.man.Shards[k]
	size := estShardBytes(rec.Rows, rec.NNZ)
	if s.opt.MemBudget > 0 {
		for s.resident+size > s.opt.MemBudget {
			if !s.evictLRU(k, protect) {
				if !force {
					return nil, errNoRoom
				}
				break
			}
		}
	}
	var sd *shardData
	var err error
	if force {
		sd, err = s.readShardHealing(k)
	} else {
		sd, err = s.readShardOnce(k)
	}
	if err != nil {
		return nil, err
	}
	s.data[k].Store(sd)
	s.lastUse[k].Store(s.clock.Add(1))
	s.resident += sd.memBytes()
	if s.resident > s.stats.PeakBytes {
		s.stats.PeakBytes = s.resident
	}
	return sd, nil
}

// readShardOnce reads and cross-checks shard k against its manifest
// record, once.
func (s *Store) readShardOnce(k int) (*shardData, error) {
	rec := s.man.Shards[k]
	sd, err := readShard(s.fs, filepath.Join(s.dir, rec.File), s.man.Cols)
	if err != nil {
		return nil, err
	}
	if sd.startRow != rec.StartRow || len(sd.rowPtr)-1 != rec.Rows {
		return nil, fmt.Errorf("ooc: shard %s covers [%d,+%d), manifest says [%d,+%d)",
			rec.File, sd.startRow, len(sd.rowPtr)-1, rec.StartRow, rec.Rows)
	}
	return sd, nil
}

// readShardHealing is the demand-load read with the full healing ladder:
// bounded retry (transient read faults leave the disk bytes intact, so a
// clean re-read often succeeds), then quarantine-and-rebuild from the
// source, then a typed *ShardError. Caller holds s.mu.
func (s *Store) readShardHealing(k int) (*shardData, error) {
	attempts := 1 + s.opt.RetryLoads
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			s.stats.RetriedLoads++
		}
		sd, err := s.readShardOnce(k)
		if err == nil {
			return sd, nil
		}
		lastErr = err
		if errors.Is(err, fs.ErrNotExist) {
			// Retrying a missing file cannot help; go straight to rebuild.
			break
		}
	}
	sd, rbErr := s.rebuildShard(k)
	if rbErr != nil {
		return nil, &ShardError{
			Dir:        s.dir,
			Shard:      k,
			File:       s.man.Shards[k].File,
			Attempts:   attempts,
			Err:        lastErr,
			RebuildErr: rbErr,
		}
	}
	return sd, nil
}

// errStopScan aborts a source scan early once the rebuilt range is
// complete.
var errStopScan = errors.New("ooc: stop scan")

// rebuildShard re-derives shard k from the store's source: the bad file
// is quarantined (renamed aside, preserving the evidence), the shard's
// row range is re-discretized through the store's own mapper, verified
// against the manifest record, published under a generation-stamped name
// and committed by a new manifest generation. Every step is re-runnable:
// a crash at any point leaves the previous generation consistent and a
// reopened store heals the same shard again. Caller holds s.mu.
func (s *Store) rebuildShard(k int) (*shardData, error) {
	if s.opt.Source == nil {
		return nil, errors.New("no source attached (Options.Source) to rebuild from")
	}
	rec := s.man.Shards[k]

	old := filepath.Join(s.dir, rec.File)
	if _, err := s.fs.Stat(old); err == nil {
		if err := s.fs.Rename(old, old+quarantineSuffix); err != nil {
			return nil, fmt.Errorf("quarantining %s: %w", rec.File, err)
		}
		s.stats.Quarantined++
	}

	sd := &shardData{startRow: rec.StartRow, rowPtr: []int32{0}}
	end := rec.StartRow + rec.Rows
	err := s.opt.Source.Scan(func(row int, indices []int32, values []float64, label float64) error {
		if row < rec.StartRow {
			return nil
		}
		if row >= end {
			return errStopScan
		}
		for i, j := range indices {
			sd.cols = append(sd.cols, j)
			sd.bins = append(sd.bins, uint8(s.mapper.Bin(int(j), values[i])))
		}
		sd.rowPtr = append(sd.rowPtr, int32(len(sd.cols)))
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, fmt.Errorf("rescanning source: %w", err)
	}
	if got := len(sd.rowPtr) - 1; got != rec.Rows || len(sd.cols) != rec.NNZ {
		return nil, fmt.Errorf("source drifted: rebuilt %d rows / %d nnz, manifest says %d / %d",
			len(sd.rowPtr)-1, len(sd.cols), rec.Rows, rec.NNZ)
	}

	name := fmt.Sprintf("shard-%06d.g%06d.bin", k, s.gen+1)
	if err := writeRetryNoSpace(s.fs, s.dir, func() error {
		return writeShard(s.fs, filepath.Join(s.dir, name), sd)
	}); err != nil {
		return nil, fmt.Errorf("writing rebuilt shard: %w", err)
	}
	s.man.Shards[k].File = name
	if err := writeRetryNoSpace(s.fs, s.dir, func() error {
		return writeManifest(s.fs, s.dir, s.man, s.gen+1)
	}); err != nil {
		// Roll the in-memory record back so a later attempt re-derives a
		// consistent state instead of pointing at an uncommitted name.
		s.man.Shards[k].File = rec.File
		return nil, fmt.Errorf("committing rebuilt manifest: %w", err)
	}
	s.gen++
	s.stats.Rebuilds++
	return sd, nil
}

var errNoRoom = fmt.Errorf("ooc: no cache room without evicting protected shard")

// evictLRU drops the least-recently-used loaded shard, skipping skip1
// and skip2. Returns false when no shard is evictable. Caller holds s.mu.
func (s *Store) evictLRU(skip1, skip2 int) bool {
	victim := -1
	var oldest int64
	for i := range s.data {
		if i == skip1 || i == skip2 || s.data[i].Load() == nil {
			continue
		}
		if use := s.lastUse[i].Load(); victim < 0 || use < oldest {
			victim, oldest = i, use
		}
	}
	if victim < 0 {
		return false
	}
	sd := s.data[victim].Load()
	s.data[victim].Store(nil)
	s.resident -= sd.memBytes()
	s.stats.Evictions++
	return true
}

// RemoveStore deletes a store directory and everything in it. Any
// manifest generation marks the directory as a store — a half-repaired
// store (newest generation torn) is still removable.
func RemoveStore(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("ooc: %s is not a store: %w", dir, err)
	}
	for _, e := range entries {
		if _, ok := parseManifestGen(e.Name()); ok {
			return os.RemoveAll(dir)
		}
	}
	return fmt.Errorf("ooc: %s is not a store: no manifest", dir)
}
