package ooc

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"vf2boost/internal/checkpoint"
	"vf2boost/internal/dataset"
	"vf2boost/internal/fault/fsfault"
	"vf2boost/internal/gbdt"
)

// slowFS delays every ReadFile so a test can catch the prefetch
// goroutine in flight, and counts in-flight reads so Close can be shown
// to have joined them.
type slowFS struct {
	fsfault.FS
	delay  time.Duration
	active atomic.Int32
}

func (s *slowFS) ReadFile(name string) ([]byte, error) {
	s.active.Add(1)
	defer s.active.Add(-1)
	time.Sleep(s.delay)
	return s.FS.ReadFile(name)
}

// Close must join the prefetch goroutine — no reads in flight once it
// returns, no goroutine left behind — and every later load must fail
// with ErrClosed instead of touching the disk.
func TestStoreCloseJoinsPrefetch(t *testing.T) {
	d := synth(t, 600, 8)
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	sfs := &slowFS{FS: fsfault.OS, delay: 20 * time.Millisecond}
	st, err := Open(dir, Options{Prefetch: true, FS: sfs})
	if err != nil {
		t.Fatal(err)
	}
	// The demand load of shard 0 kicks readahead of shard 1; Close lands
	// while that read is still sleeping in slowFS.
	if _, _, err := st.Row(0); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n := sfs.active.Load(); n != 0 {
		t.Fatalf("%d reads still in flight after Close", n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("%d goroutines before Open, %d after Close — prefetch leaked", before, g)
	}
	if _, _, err := st.Row(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Row after Close returned %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close returned %v, want idempotent nil", err)
	}
}

// A torn newer manifest generation (the debris of a crash mid-commit)
// must roll the open back to the previous consistent generation and
// sweep the aborted commit record away.
func TestManifestGenerationRollback(t *testing.T) {
	d := synth(t, 200, 6)
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, manifestFileName(1))
	if err := os.WriteFile(torn, []byte(`{"version":1,"rows":`), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open did not roll back past the torn generation: %v", err)
	}
	if st.Generation() != 0 {
		t.Fatalf("opened at generation %d, want rollback to 0", st.Generation())
	}
	if st.Rows() != 200 {
		t.Fatalf("rolled-back store has %d rows, want 200", st.Rows())
	}
	rowOf(t, st, 0)
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("aborted commit record still present after rollback: %v", err)
	}
}

// Hostile manifest bytes — truncations, garbage, internally inconsistent
// records — must fail Open with an error, never a panic.
func TestManifestHostileBytes(t *testing.T) {
	d := synth(t, 150, 5)
	base := t.TempDir()
	if err := Build(base, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(base, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(m *manifest)) []byte {
		m, err := decodeManifest(valid)
		if err != nil {
			t.Fatal(err)
		}
		f(m)
		var buf bytes.Buffer
		if err := writeManifest(writeCapture{&buf}, "", m, 0); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte("\x00\x01\x02 not json at all \xff")},
		{"truncated", valid[:len(valid)/2]},
		{"wrong-version", mutate(func(m *manifest) { m.Version = 99 })},
		{"rows-mismatch", mutate(func(m *manifest) { m.Rows++ })},
		{"shard-gap", mutate(func(m *manifest) { m.Shards[1].StartRow++ })},
		{"zero-row-shard", mutate(func(m *manifest) { m.Shards[0].Rows = 0 })},
		{"cuts-count", mutate(func(m *manifest) { m.Cuts = m.Cuts[:1] })},
		{"no-chunk", mutate(func(m *manifest) { m.ChunkRows = 0 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, manifestName), tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(dir, Options{}); err == nil {
				t.Fatal("Open accepted a hostile manifest")
			}
		})
	}
}

// writeCapture adapts writeManifest's FS parameter to an in-memory
// buffer so the hostility table can re-encode mutated manifests.
type writeCapture struct{ buf *bytes.Buffer }

func (w writeCapture) ReadFile(string) ([]byte, error) { return nil, os.ErrNotExist }
func (w writeCapture) CreateTemp(string, string) (fsfault.File, error) {
	return captureFile{w.buf}, nil
}
func (w writeCapture) Rename(string, string) error           { return nil }
func (w writeCapture) Remove(string) error                   { return nil }
func (w writeCapture) RemoveAll(string) error                { return nil }
func (w writeCapture) MkdirAll(string, os.FileMode) error    { return nil }
func (w writeCapture) ReadDir(string) ([]os.DirEntry, error) { return nil, nil }
func (w writeCapture) Stat(string) (os.FileInfo, error)      { return nil, os.ErrNotExist }

type captureFile struct{ buf *bytes.Buffer }

func (f captureFile) Write(p []byte) (int, error) { return f.buf.Write(p) }
func (f captureFile) Sync() error                 { return nil }
func (f captureFile) Close() error                { return nil }
func (f captureFile) Name() string                { return "capture" }

// Hostile shard bytes — truncations, bad magic, lying length fields —
// must surface on the Row path as a typed error, never a panic.
func TestShardHeaderHostileBytes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return b[:5] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"length-overrun", func(b []byte) []byte {
			b[12] ^= 0xFF // lie about the body length
			return b
		}},
		{"body-cut", func(b []byte) []byte { return b[:len(b)-7] }},
		{"header-only", func(b []byte) []byte { return b[:frameHeader] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := synth(t, 150, 5)
			dir := t.TempDir()
			if err := Build(dir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
				t.Fatal(err)
			}
			name := filepath.Join(dir, "shard-000000.bin")
			buf, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(name, tc.mutate(buf), 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := Open(dir, Options{RetryLoads: -1})
			if err != nil {
				t.Fatal(err)
			}
			_, _, err = st.Row(0)
			if err == nil {
				t.Fatal("hostile shard bytes returned no error")
			}
			var se *ShardError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *ShardError", err)
			}
		})
	}
}

// A write that hits the disk-full wall must sweep reclaimable debris
// (aborted temp files, quarantined shards) and retry before giving up.
func TestWriteRetryNoSpaceSweepsDebris(t *testing.T) {
	dir := t.TempDir()
	// Debris: an aborted-write temp file and a quarantined shard. Neither
	// was charged to the injector's budget, but removing them refunds it.
	if err := os.WriteFile(filepath.Join(dir, ".ooc-debris"), make([]byte, 2048), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-000009.bin.bad"), make([]byte, 2048), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := fsfault.Wrap(nil, fsfault.Config{DiskBudget: 1024})
	payload := make([]byte, 700)
	write := func(name string) error {
		return writeRetryNoSpace(inj, dir, func() error {
			return writeAtomic(inj, filepath.Join(dir, name), payload)
		})
	}
	if err := write("a.bin"); err != nil {
		t.Fatalf("first write within budget failed: %v", err)
	}
	// The second write exceeds the 1 KiB budget; the sweep frees the
	// debris (refunding its bytes) and the retry must succeed.
	if err := write("b.bin"); err != nil {
		t.Fatalf("write after debris sweep failed: %v", err)
	}
	for _, debris := range []string{".ooc-debris", "shard-000009.bin.bad"} {
		if _, err := os.Stat(filepath.Join(dir, debris)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("debris %s survived the sweep", debris)
		}
	}
	// With nothing left to sweep, a third over-budget write propagates
	// the typed disk-full error.
	inj2 := fsfault.Wrap(nil, fsfault.Config{DiskBudget: 256})
	err := writeRetryNoSpace(inj2, dir, func() error {
		return writeAtomic(inj2, filepath.Join(dir, "c.bin"), payload)
	})
	if !errors.Is(err, fsfault.ErrNoSpace) {
		t.Fatalf("exhausted disk returned %v, want ErrNoSpace", err)
	}
}

// FuzzOpenHostileStore feeds arbitrary bytes as the manifest and as the
// first shard of an otherwise valid store: Open and Row may fail, but
// must never panic.
func FuzzOpenHostileStore(f *testing.F) {
	d, err := dataset.Generate(dataset.GenOptions{Rows: 80, Cols: 4, Density: 0.5, Seed: 7})
	if err != nil {
		f.Fatal(err)
	}
	base := f.TempDir()
	if err := Build(base, NewDatasetSource(d), BuildOptions{ChunkRows: 32}); err != nil {
		f.Fatal(err)
	}
	validManifest, err := os.ReadFile(filepath.Join(base, manifestName))
	if err != nil {
		f.Fatal(err)
	}
	validShard, err := os.ReadFile(filepath.Join(base, "shard-000000.bin"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(validManifest)
	f.Add(validShard)
	f.Add([]byte{})
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte("VF2OOCS1garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary manifest bytes in a fresh directory.
		mdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(mdir, manifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if st, err := Open(mdir, Options{RetryLoads: -1}); err == nil {
			st.Row(0)
			st.Close()
		}

		// Arbitrary bytes as shard 0 of a valid store.
		sdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(sdir, manifestName), validManifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sdir, "shard-000000.bin"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if st, err := Open(sdir, Options{RetryLoads: -1}); err == nil {
			st.Row(0)
			st.Close()
		}
	})
}

// chaosSnapshot is the checkpoint body used by the soak's crash leg.
type chaosSnapshot struct {
	Round int       `json:"round"`
	State []float64 `json:"state"`
}

// TestStorageChaosSoak is the capstone of the storage fault model: a
// seeded sweep of kill-and-corrupt scenarios across the build, train,
// and checkpoint paths. Every scenario must either self-heal or fail
// with a typed error — never panic — and every recovered run must train
// to the byte-identical model of the fault-free baseline.
func TestStorageChaosSoak(t *testing.T) {
	scenarios := 200
	if testing.Short() {
		scenarios = 30
	}

	d := synth(t, 300, 8)
	p := gbdt.DefaultParams()
	p.NumTrees = 3
	p.MaxDepth = 3

	// Fault-free baseline, computed once.
	baseDir := t.TempDir()
	if err := Build(baseDir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	baseline := trainStoreBytes(t, baseDir, d, p, nil)

	for i := 0; i < scenarios; i++ {
		i := i
		t.Run(fmt.Sprintf("scenario-%03d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			switch i % 4 {
			case 0:
				soakFaultyBuild(t, d, p, baseline, rng)
			case 1:
				soakCorruptThenHeal(t, d, p, baseline, rng)
			case 2:
				soakCheckpointCrash(t, rng)
			case 3:
				soakUnrecoverableTyped(t, d, rng)
			}
		})
	}
}

// trainStoreBytes opens dir (optionally with a rebuild source) and
// trains, returning the serialized model.
func trainStoreBytes(t *testing.T, dir string, d *dataset.Dataset, p gbdt.Params, src Source) []byte {
	t.Helper()
	st, err := Open(dir, Options{Source: src, MemBudget: 16 << 10, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	labels, err := st.Labels()
	if err != nil {
		t.Fatal(err)
	}
	m, err := gbdt.TrainBinned(st, labels, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// soakFaultyBuild builds under write faults and a scheduled crash, then
// "reboots" with a clean filesystem: if the commit point survived, the
// store must self-heal any torn shards from the source; otherwise the
// directory is an aborted build and a clean rebuild must succeed. Either
// way the trained model must match the baseline byte for byte.
func soakFaultyBuild(t *testing.T, d *dataset.Dataset, p gbdt.Params, baseline []byte, rng *rand.Rand) {
	dir := t.TempDir()
	cfg := fsfault.Config{
		Seed:       rng.Int63(),
		CrashAfter: 1 + rng.Intn(60),
	}
	if rng.Float64() < 0.5 {
		cfg.ShortWrite = 0.2 * rng.Float64()
	}
	if rng.Float64() < 0.5 {
		cfg.TornRename = 0.3 * rng.Float64()
	}
	if rng.Float64() < 0.3 {
		cfg.WriteErr = 0.2 * rng.Float64()
	}
	src := NewDatasetSource(d)
	if err := Build(dir, src, BuildOptions{ChunkRows: 64, FS: fsfault.Wrap(nil, cfg)}); err != nil {
		t.Logf("faulty build failed as scheduled: %v", err)
	}

	// Reboot: the injector is gone, the directory is whatever the crash
	// left. A committed manifest means the store opens and heals; no
	// readable manifest means the commit never landed (a crashed build,
	// or a torn rename that reported success without persisting) and the
	// build reruns cleanly in place.
	if _, _, err := readManifest(fsfault.OS, dir); err != nil {
		if err := Build(dir, src, BuildOptions{ChunkRows: 64}); err != nil {
			t.Fatalf("clean rebuild after crashed build failed: %v", err)
		}
	}
	st, err := Open(dir, Options{Source: src})
	if err != nil {
		t.Fatalf("reopen after faulty build failed: %v", err)
	}
	// Labels are not shard-framed per row, so a torn labels file cannot
	// be healed shard-wise — it reads as a typed error and the scenario
	// rebuilds cleanly (the CLI path would fail loudly the same way).
	if _, err := st.Labels(); err != nil {
		st.Close()
		dir = t.TempDir()
		if err := Build(dir, src, BuildOptions{ChunkRows: 64}); err != nil {
			t.Fatalf("clean rebuild after torn labels failed: %v", err)
		}
	} else {
		st.Close()
	}
	if got := trainStoreBytes(t, dir, d, p, src); !bytes.Equal(got, baseline) {
		t.Fatal("model after faulty build + recovery differs from baseline")
	}
}

// soakCorruptThenHeal corrupts a random shard of a clean store — flip,
// truncate, or delete — and requires the source-attached open to heal it
// back to the byte-identical model.
func soakCorruptThenHeal(t *testing.T, d *dataset.Dataset, p gbdt.Params, baseline []byte, rng *rand.Rand) {
	dir := t.TempDir()
	src := NewDatasetSource(d)
	if err := Build(dir, src, BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	shards, err := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shards to corrupt: %v", err)
	}
	victim := shards[rng.Intn(len(shards))]
	switch rng.Intn(3) {
	case 0: // bit rot
		buf, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		buf[rng.Intn(len(buf))] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(victim, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	case 1: // torn write
		buf, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(victim, buf[:rng.Intn(len(buf))], 0o644); err != nil {
			t.Fatal(err)
		}
	case 2: // lost file
		if err := os.Remove(victim); err != nil {
			t.Fatal(err)
		}
	}
	if got := trainStoreBytes(t, dir, d, p, src); !bytes.Equal(got, baseline) {
		t.Fatal("model after shard corruption + self-heal differs from baseline")
	}
}

// soakCheckpointCrash saves snapshots through an injector that tears
// renames, shorts writes, and crashes mid-sequence, then reboots with a
// clean filesystem: LoadLatest must return a fully valid snapshot whose
// body matches its sequence number, and must leave no temp debris.
func soakCheckpointCrash(t *testing.T, rng *rand.Rand) {
	dir := t.TempDir()
	cfg := fsfault.Config{
		Seed:       rng.Int63(),
		CrashAfter: 1 + rng.Intn(30),
		TornRename: 0.4 * rng.Float64(),
		ShortWrite: 0.4 * rng.Float64(),
		NoSync:     rng.Float64() < 0.5,
	}
	cs, err := checkpoint.OpenFS(dir, fsfault.Wrap(nil, cfg))
	if err != nil {
		// MkdirAll is a mutating op: a tiny CrashAfter can kill the store
		// before it opens. A reboot then finds no snapshots — fine.
		cs = nil
	}
	saved := 0
	if cs != nil {
		for round := 1; round <= 8; round++ {
			snap := chaosSnapshot{Round: round, State: []float64{float64(round), 0.5}}
			if err := cs.Save(round, snap); err != nil {
				break
			}
			saved = round
		}
	}

	// Reboot with a clean filesystem.
	clean, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("reopen after checkpoint crash failed: %v", err)
	}
	var got chaosSnapshot
	seq, err := clean.LoadLatest(&got)
	if err != nil {
		t.Fatalf("LoadLatest after crash failed: %v", err)
	}
	if seq > saved {
		t.Fatalf("recovered sequence %d beyond last acknowledged save %d", seq, saved)
	}
	if seq > 0 && got.Round != seq {
		t.Fatalf("snapshot %d decodes round %d — torn snapshot passed validation", seq, got.Round)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) >= 5 && e.Name()[:5] == ".tmp-" {
			t.Errorf("temp debris %s survived recovery", e.Name())
		}
	}
}

// soakUnrecoverableTyped corrupts a shard of a store with no rebuild
// source: the failure must surface as a typed *ShardError through the
// Row path — never a panic, never a wrong row.
func soakUnrecoverableTyped(t *testing.T, d *dataset.Dataset, rng *rand.Rand) {
	dir := t.TempDir()
	if err := Build(dir, NewDatasetSource(d), BuildOptions{ChunkRows: 64}); err != nil {
		t.Fatal(err)
	}
	shards, err := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shards to corrupt: %v", err)
	}
	k := rng.Intn(len(shards))
	buf, err := os.ReadFile(shards[k])
	if err != nil {
		t.Fatal(err)
	}
	buf[frameHeader+rng.Intn(len(buf)-frameHeader)] ^= 1 << uint(rng.Intn(8))
	if err := os.WriteFile(shards[k], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{RetryLoads: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var sawTyped bool
	for i := 0; i < st.Rows(); i++ {
		_, _, err := st.Row(i)
		if err != nil {
			var se *ShardError
			if !errors.As(err, &se) {
				t.Fatalf("row %d error %v is not a *ShardError", i, err)
			}
			if se.Shard != k {
				t.Fatalf("ShardError names shard %d, corrupted %d", se.Shard, k)
			}
			sawTyped = true
		}
	}
	if !sawTyped {
		t.Fatal("corrupted shard never surfaced an error")
	}
}
