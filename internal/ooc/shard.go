package ooc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"

	"vf2boost/internal/fault/fsfault"
)

// On-disk shard format, following the checkpoint store's framing idiom:
//
//	magic "VF2OOCS1" | uint32 CRC-32 (IEEE) of body | uint64 body length | body
//
// with the body a little-endian CSR block:
//
//	uint64 startRow | uint64 numRows | uint64 nnz
//	rowPtr  (numRows+1) × uint32
//	cols    nnz × uint32
//	bins    nnz × uint8
//
// Shards are written to a temp file in the store directory and renamed
// into place, so a crashed build never leaves a half-written shard under
// a committed name; the CRC catches bit rot and torn writes at load.

const (
	shardMagic  = "VF2OOCS1"
	labelsMagic = "VF2OOCL1"
	frameHeader = 8 + 4 + 8
)

// shardData is one loaded shard: the binned CSR rows of a contiguous
// row range.
type shardData struct {
	startRow int
	rowPtr   []int32
	cols     []int32
	bins     []uint8
}

// memBytes estimates the shard's resident size for budget accounting.
func (sd *shardData) memBytes() int64 {
	return int64(len(sd.rowPtr))*4 + int64(len(sd.cols))*4 + int64(len(sd.bins))
}

// estShardBytes predicts a shard's resident size from its manifest entry.
func estShardBytes(rows, nnz int) int64 {
	return int64(rows+1)*4 + int64(nnz)*4 + int64(nnz)
}

// encodeShard serializes a shard into a framed byte slice.
func encodeShard(sd *shardData) []byte {
	nnz := len(sd.cols)
	rows := len(sd.rowPtr) - 1
	bodyLen := 24 + (rows+1)*4 + nnz*4 + nnz
	buf := make([]byte, frameHeader+bodyLen)
	body := buf[frameHeader:]
	binary.LittleEndian.PutUint64(body[0:], uint64(sd.startRow))
	binary.LittleEndian.PutUint64(body[8:], uint64(rows))
	binary.LittleEndian.PutUint64(body[16:], uint64(nnz))
	off := 24
	for _, p := range sd.rowPtr {
		binary.LittleEndian.PutUint32(body[off:], uint32(p))
		off += 4
	}
	for _, c := range sd.cols {
		binary.LittleEndian.PutUint32(body[off:], uint32(c))
		off += 4
	}
	copy(body[off:], sd.bins)
	copy(buf, shardMagic)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint64(buf[12:], uint64(bodyLen))
	return buf
}

// decodeShard parses and validates a framed shard payload.
func decodeShard(buf []byte, wantCols int) (*shardData, error) {
	body, err := checkFrame(buf, shardMagic)
	if err != nil {
		return nil, err
	}
	if len(body) < 24 {
		return nil, fmt.Errorf("ooc: shard body truncated (%d bytes)", len(body))
	}
	startRow := binary.LittleEndian.Uint64(body[0:])
	rows := binary.LittleEndian.Uint64(body[8:])
	nnz := binary.LittleEndian.Uint64(body[16:])
	if startRow > math.MaxInt32 || rows > math.MaxInt32 || nnz > math.MaxInt32 {
		return nil, fmt.Errorf("ooc: shard header out of range (start=%d rows=%d nnz=%d)", startRow, rows, nnz)
	}
	if uint64(len(body)-24) != (rows+1)*4+nnz*5 {
		return nil, fmt.Errorf("ooc: shard body length %d does not match rows=%d nnz=%d", len(body), rows, nnz)
	}
	sd := &shardData{
		startRow: int(startRow),
		rowPtr:   make([]int32, rows+1),
		cols:     make([]int32, nnz),
		bins:     make([]uint8, nnz),
	}
	off := 24
	prev := int32(-1)
	for i := range sd.rowPtr {
		p := binary.LittleEndian.Uint32(body[off:])
		if p > uint32(nnz) || int32(p) < prev {
			return nil, fmt.Errorf("ooc: shard rowPtr[%d]=%d out of order", i, p)
		}
		sd.rowPtr[i] = int32(p)
		prev = int32(p)
		off += 4
	}
	if sd.rowPtr[0] != 0 || sd.rowPtr[rows] != int32(nnz) {
		return nil, fmt.Errorf("ooc: shard rowPtr bounds [%d,%d] do not span nnz=%d", sd.rowPtr[0], sd.rowPtr[rows], nnz)
	}
	for i := range sd.cols {
		c := binary.LittleEndian.Uint32(body[off:])
		if int(c) >= wantCols {
			return nil, fmt.Errorf("ooc: shard column %d out of range [0,%d)", c, wantCols)
		}
		sd.cols[i] = int32(c)
		off += 4
	}
	copy(sd.bins, body[off:])
	return sd, nil
}

// checkFrame validates magic, CRC and length, returning the body.
func checkFrame(buf []byte, magic string) ([]byte, error) {
	if len(buf) < frameHeader || string(buf[:8]) != magic {
		return nil, fmt.Errorf("ooc: bad magic (want %s)", magic)
	}
	wantCRC := binary.LittleEndian.Uint32(buf[8:])
	bodyLen := binary.LittleEndian.Uint64(buf[12:])
	if uint64(len(buf)-frameHeader) != bodyLen {
		return nil, fmt.Errorf("ooc: frame length %d does not match header %d", len(buf)-frameHeader, bodyLen)
	}
	body := buf[frameHeader:]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("ooc: CRC mismatch (corrupt file)")
	}
	return body, nil
}

// tempPattern names the build/rebuild temp files; debris matching it is
// an aborted write and safe to sweep.
const tempPattern = ".ooc-*"

// writeAtomic atomically writes a payload: temp file in the same
// directory, write, sync, close, rename. All I/O goes through fsys so
// fault injection sees every step.
func writeAtomic(fsys fsfault.FS, path string, buf []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, tempPattern)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	return nil
}

// writeShard persists one shard.
func writeShard(fsys fsfault.FS, path string, sd *shardData) error {
	return writeAtomic(fsys, path, encodeShard(sd))
}

// readShard loads and validates one shard.
func readShard(fsys fsfault.FS, path string, wantCols int) (*shardData, error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sd, err := decodeShard(buf, wantCols)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", err, path)
	}
	return sd, nil
}

// writeLabels persists the label vector under the same framing.
func writeLabels(fsys fsfault.FS, path string, labels []float64) error {
	buf := make([]byte, frameHeader+len(labels)*8)
	body := buf[frameHeader:]
	for i, v := range labels {
		binary.LittleEndian.PutUint64(body[i*8:], math.Float64bits(v))
	}
	copy(buf, labelsMagic)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(body)))
	return writeAtomic(fsys, path, buf)
}

// readLabels loads the label vector.
func readLabels(fsys fsfault.FS, path string, wantRows int) ([]float64, error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	body, err := checkFrame(buf, labelsMagic)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", err, path)
	}
	if len(body) != wantRows*8 {
		return nil, fmt.Errorf("ooc: labels file holds %d rows, want %d: %s", len(body)/8, wantRows, path)
	}
	labels := make([]float64, wantRows)
	for i := range labels {
		labels[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
	}
	return labels, nil
}
