package quantile

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTripExact(t *testing.T) {
	s := MustNew(0.01)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		s.Add(rng.NormFloat64())
	}
	payload := s.AppendBinary(nil)

	var r Sketch
	if err := r.UnmarshalBinary(payload); err != nil {
		t.Fatal(err)
	}
	if r.Count() != s.Count() {
		t.Fatalf("count %d != %d", r.Count(), s.Count())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got, want := r.Query(q), s.Query(q); got != want {
			t.Fatalf("q=%g: %g != %g after round-trip", q, got, want)
		}
	}
	// Canonical: re-serializing the restored sketch yields the same bytes.
	if !bytes.Equal(r.AppendBinary(nil), payload) {
		t.Fatal("round-trip is not canonical")
	}
}

func TestSerializeEmptySketch(t *testing.T) {
	s := MustNew(0.05)
	var r Sketch
	if err := r.UnmarshalBinary(s.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 0 {
		t.Fatalf("restored empty sketch has count %d", r.Count())
	}
}

// The satellite property: merging a sketch that crossed a serialization
// boundary must preserve the GK rank-error bound (εa+εb for a merge, so
// 2ε here) — the invariant the out-of-core builder's chunk→global merge
// relies on.
func TestMergeAfterRoundTripPreservesBound(t *testing.T) {
	const eps = 0.02
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := 1000+rng.Intn(4000), 1000+rng.Intn(4000)
		a, b := MustNew(eps), MustNew(eps)
		all := make([]float64, 0, na+nb)
		for i := 0; i < na; i++ {
			v := rng.NormFloat64()
			a.Add(v)
			all = append(all, v)
		}
		for i := 0; i < nb; i++ {
			v := rng.ExpFloat64() - 1
			b.Add(v)
			all = append(all, v)
		}

		// Ship b across the wire, then merge the restored copy into a.
		var shipped Sketch
		if err := shipped.UnmarshalBinary(b.AppendBinary(nil)); err != nil {
			return false
		}
		a.Merge(&shipped)

		sort.Float64s(all)
		n := float64(len(all))
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			got := a.Query(q)
			r := sort.SearchFloat64s(all, got) + 1
			want := int(math.Ceil(q * n))
			if math.Abs(float64(r-want)) > 2*(eps+eps)*n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruptPayloads(t *testing.T) {
	s := MustNew(0.01)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i % 37))
	}
	good := s.AppendBinary(nil)

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), good...))
		var r Sketch
		if err := r.UnmarshalBinary(b); err == nil {
			t.Errorf("%s: corrupt payload accepted", name)
		}
	}
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-5] })
	mutate("bad version", func(b []byte) []byte { b[0] = 99; return b })
	mutate("zero gap", func(b []byte) []byte {
		// First tuple's g field sits at header+8.
		for i := 0; i < 8; i++ {
			b[25+8+i] = 0
		}
		return b
	})
	mutate("short header", func(b []byte) []byte { return b[:10] })
}
