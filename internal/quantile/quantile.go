// Package quantile provides an ε-approximate streaming quantile summary in
// the style of Greenwald & Khanna (SIGMOD 2001), the standard tool for
// proposing histogram split candidates in GBDT systems (XGBoost's "approx"
// mode, DimBoost, and VF²Boost's per-feature binning all rely on
// percentile sketches).
//
// The summary maintains tuples (v, g, Δ) where g is the gap between the
// minimum ranks of consecutive tuples and Δ bounds the rank uncertainty.
// Querying rank r returns a value whose true rank is within εn of r.
package quantile

import (
	"errors"
	"math"
	"sort"
)

// Sketch is a single-stream GK summary. It is not safe for concurrent use.
type Sketch struct {
	eps     float64
	n       int
	entries []entry
	// buf batches inserts so that compression runs every 1/(2ε) items.
	buf []float64
}

type entry struct {
	v     float64
	g     int
	delta int
}

// New creates a sketch with rank error bound eps (0 < eps < 1).
func New(eps float64) (*Sketch, error) {
	if eps <= 0 || eps >= 1 {
		return nil, errors.New("quantile: eps must be in (0, 1)")
	}
	return &Sketch{eps: eps}, nil
}

// MustNew is New for static epsilons.
func MustNew(eps float64) *Sketch {
	s, err := New(eps)
	if err != nil {
		panic(err)
	}
	return s
}

// Count returns the number of observed values.
func (s *Sketch) Count() int { return s.n + len(s.buf) }

// Add observes one value.
func (s *Sketch) Add(v float64) {
	s.buf = append(s.buf, v)
	if len(s.buf) >= s.flushThreshold() {
		s.flush()
	}
}

func (s *Sketch) flushThreshold() int {
	t := int(1.0 / (2.0 * s.eps))
	if t < 1 {
		t = 1
	}
	return t
}

// flush merges the buffered values into the summary and compresses.
func (s *Sketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	merged := make([]entry, 0, len(s.entries)+len(s.buf))
	bi := 0
	for _, e := range s.entries {
		for bi < len(s.buf) && s.buf[bi] <= e.v {
			merged = append(merged, s.newEntry(s.buf[bi], len(merged), cap(merged)))
			s.n++
			bi++
		}
		merged = append(merged, e)
	}
	for bi < len(s.buf) {
		merged = append(merged, s.newEntry(s.buf[bi], len(merged), cap(merged)))
		s.n++
		bi++
	}
	s.entries = merged
	s.buf = s.buf[:0]
	s.compress()
}

// newEntry builds an inserted tuple; boundary tuples get Δ=0 so min and
// max stay exact.
func (s *Sketch) newEntry(v float64, pos, total int) entry {
	delta := int(math.Floor(2 * s.eps * float64(s.n)))
	if pos == 0 || s.n == 0 {
		delta = 0
	}
	return entry{v: v, g: 1, delta: delta}
}

// compress merges adjacent tuples while the GK invariant
// g_i + g_{i+1} + Δ_{i+1} <= 2εn holds.
func (s *Sketch) compress() {
	if len(s.entries) < 3 {
		return
	}
	budget := int(math.Floor(2 * s.eps * float64(s.n)))
	out := s.entries[:0]
	out = append(out, s.entries[0])
	for i := 1; i < len(s.entries); i++ {
		e := s.entries[i]
		last := &out[len(out)-1]
		// Never merge away the first or last tuple (exact min/max).
		if len(out) > 1 && i < len(s.entries) && last.g+e.g+e.delta <= budget && i != len(s.entries)-1 {
			e.g += last.g
			out[len(out)-1] = e
		} else {
			out = append(out, e)
		}
	}
	s.entries = out
}

// Query returns a value whose rank is within εn of rank ceil(q·n), for
// q in [0, 1]. Querying an empty sketch returns 0.
func (s *Sketch) Query(q float64) float64 {
	s.flush()
	if len(s.entries) == 0 {
		return 0
	}
	if q <= 0 {
		return s.entries[0].v
	}
	if q >= 1 {
		return s.entries[len(s.entries)-1].v
	}
	r := int(math.Ceil(q * float64(s.n)))
	e := int(math.Floor(s.eps * float64(s.n)))
	rmin := 0
	for i, ent := range s.entries {
		rmin += ent.g
		if rmin+ent.delta > r+e {
			if i == 0 {
				return ent.v
			}
			return s.entries[i-1].v
		}
	}
	return s.entries[len(s.entries)-1].v
}

// Quantiles returns the k-1 interior cut points at ranks i/k, suitable as
// histogram bin boundaries for k bins. Duplicate cuts are removed, so the
// result may be shorter than k-1 for skewed data.
func (s *Sketch) Quantiles(k int) []float64 {
	if k < 2 || s.Count() == 0 {
		return nil
	}
	cuts := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		c := s.Query(float64(i) / float64(k))
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

// Size returns the number of tuples retained, for space accounting.
func (s *Sketch) Size() int {
	s.flush()
	return len(s.entries)
}

// Merge folds another sketch into this one. The merged summary keeps the
// looser of the two epsilons' guarantees; it is implemented by replaying
// the other sketch's tuples weighted by their gaps, which preserves an
// (εa+εb) rank bound — sufficient for split-candidate proposals, where
// worker-local sketches are merged at the scheduler.
func (s *Sketch) Merge(o *Sketch) {
	o.flush()
	for _, e := range o.entries {
		for i := 0; i < e.g; i++ {
			s.Add(e.v)
		}
	}
}

// Exact returns the exact k-1 interior quantile cut points of values,
// used when the column is small enough to sort outright. values is not
// modified. Duplicate cuts are removed.
func Exact(values []float64, k int) []float64 {
	if len(values) == 0 || k < 2 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	cuts := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		idx := i * len(sorted) / k
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		c := sorted[idx]
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts
}
