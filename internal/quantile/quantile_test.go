package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidatesEps(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 1, 1.5} {
		if _, err := New(eps); err == nil {
			t.Errorf("New(%g) succeeded, want error", eps)
		}
	}
	if _, err := New(0.01); err != nil {
		t.Errorf("New(0.01): %v", err)
	}
}

func TestEmptySketch(t *testing.T) {
	s := MustNew(0.01)
	if got := s.Query(0.5); got != 0 {
		t.Errorf("empty Query = %g, want 0", got)
	}
	if got := s.Quantiles(10); got != nil {
		t.Errorf("empty Quantiles = %v, want nil", got)
	}
	if s.Count() != 0 {
		t.Errorf("empty Count = %d", s.Count())
	}
}

func TestExactEndpoints(t *testing.T) {
	s := MustNew(0.01)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	if got := s.Query(0); got != 1 {
		t.Errorf("Query(0) = %g, want 1 (exact min)", got)
	}
	if got := s.Query(1); got != 1000 {
		t.Errorf("Query(1) = %g, want 1000 (exact max)", got)
	}
}

// rankOf returns the rank (1-based) of v within sorted data.
func rankOf(sorted []float64, v float64) int {
	return sort.SearchFloat64s(sorted, v) + 1
}

func TestErrorBoundUniform(t *testing.T) {
	const n = 20000
	const eps = 0.01
	rng := rand.New(rand.NewSource(42))
	s := MustNew(eps)
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64()
		s.Add(data[i])
	}
	sort.Float64s(data)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := s.Query(q)
		r := rankOf(data, got)
		want := int(math.Ceil(q * n))
		if d := math.Abs(float64(r - want)); d > 2*eps*n {
			t.Errorf("q=%g: rank error %g exceeds 2εn=%g", q, d, 2*eps*n)
		}
	}
}

func TestErrorBoundPropertySkewed(t *testing.T) {
	const eps = 0.02
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2000 + rng.Intn(3000)
		s := MustNew(eps)
		data := make([]float64, n)
		for i := range data {
			// Heavily skewed: exponential-ish with duplicates.
			data[i] = math.Floor(rng.ExpFloat64() * 10)
			s.Add(data[i])
		}
		sort.Float64s(data)
		for _, q := range []float64{0.1, 0.5, 0.9} {
			got := s.Query(q)
			// With duplicates the returned value covers a rank range;
			// accept if any index holding got is within bound.
			lo := sort.SearchFloat64s(data, got) + 1
			hi := sort.Search(len(data), func(i int) bool { return data[i] > got })
			want := int(math.Ceil(q * float64(n)))
			dist := 0
			if want < lo {
				dist = lo - want
			} else if want > hi {
				dist = want - hi
			}
			if float64(dist) > 2*eps*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSpaceStaysSublinear(t *testing.T) {
	s := MustNew(0.01)
	for i := 0; i < 100000; i++ {
		s.Add(rand.Float64())
	}
	if sz := s.Size(); sz > 3000 {
		t.Errorf("sketch retained %d tuples for 100k inserts at eps=0.01; compression not effective", sz)
	}
}

func TestQuantilesMonotoneAndDeduped(t *testing.T) {
	s := MustNew(0.01)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		s.Add(float64(rng.Intn(5))) // only 5 distinct values
	}
	cuts := s.Quantiles(20)
	if len(cuts) > 5 {
		t.Errorf("got %d cuts from 5 distinct values", len(cuts))
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Errorf("cuts not strictly increasing: %v", cuts)
		}
	}
}

func TestMergePreservesApproximation(t *testing.T) {
	const n = 5000
	a, b := MustNew(0.01), MustNew(0.01)
	all := make([]float64, 0, 2*n)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		v1, v2 := rng.NormFloat64(), rng.NormFloat64()+2
		a.Add(v1)
		b.Add(v2)
		all = append(all, v1, v2)
	}
	a.Merge(b)
	sort.Float64s(all)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		got := a.Query(q)
		r := rankOf(all, got)
		want := int(math.Ceil(q * float64(len(all))))
		if d := math.Abs(float64(r - want)); d > 4*0.01*float64(len(all)) {
			t.Errorf("merged q=%g rank error %g too large", q, d)
		}
	}
}

func TestExact(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	cuts := Exact(vals, 5)
	want := []float64{2, 3, 4, 5}
	if len(cuts) != len(want) {
		t.Fatalf("Exact = %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("Exact = %v, want %v", cuts, want)
		}
	}
	if got := Exact(nil, 5); got != nil {
		t.Errorf("Exact(nil) = %v", got)
	}
	if got := Exact(vals, 1); got != nil {
		t.Errorf("Exact(k=1) = %v", got)
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Error("Exact mutated its input")
	}
}

func TestExactDedup(t *testing.T) {
	vals := []float64{1, 1, 1, 1, 2}
	cuts := Exact(vals, 5)
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Errorf("Exact cuts not strictly increasing: %v", cuts)
		}
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s := MustNew(0.01)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}
