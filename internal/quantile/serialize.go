package quantile

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary serialization of a sketch, so per-chunk sketches can be
// checkpointed to disk or shipped between workers and merged at the
// scheduler. The layout is a version byte followed by eps, n and the
// tuple list, all little-endian and fixed-width — no framing or checksum
// here; callers embed the bytes in their own guarded container (the ooc
// manifest reuses the checkpoint CRC idiom).

const serialVersion = 1

// AppendBinary appends the sketch's serialized form to b and returns the
// extended slice. The buffered inserts are flushed first, so the encoding
// is canonical for a given observation sequence.
func (s *Sketch) AppendBinary(b []byte) []byte {
	s.flush()
	b = append(b, serialVersion)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.eps))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.n))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s.entries)))
	for _, e := range s.entries {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.v))
		b = binary.LittleEndian.AppendUint64(b, uint64(e.g))
		b = binary.LittleEndian.AppendUint64(b, uint64(e.delta))
	}
	return b
}

// UnmarshalBinary restores a sketch serialized by AppendBinary,
// replacing the receiver's state. It validates structure (version,
// length, tuple-count bound) so a truncated or corrupt payload fails
// loudly instead of producing a silently wrong summary.
func (s *Sketch) UnmarshalBinary(b []byte) error {
	const header = 1 + 8 + 8 + 8
	if len(b) < header {
		return fmt.Errorf("quantile: serialized sketch too short (%d bytes)", len(b))
	}
	if b[0] != serialVersion {
		return fmt.Errorf("quantile: unknown sketch version %d", b[0])
	}
	eps := math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("quantile: serialized eps %g out of (0,1)", eps)
	}
	n := binary.LittleEndian.Uint64(b[9:])
	count := binary.LittleEndian.Uint64(b[17:])
	if uint64(len(b)-header) != count*24 {
		return fmt.Errorf("quantile: serialized sketch length %d does not match %d tuples", len(b), count)
	}
	if count > n || (count == 0) != (n == 0) {
		return fmt.Errorf("quantile: serialized sketch has %d tuples for %d observations", count, n)
	}
	entries := make([]entry, count)
	off := header
	rankSum := 0
	for i := range entries {
		entries[i].v = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		entries[i].g = int(binary.LittleEndian.Uint64(b[off+8:]))
		entries[i].delta = int(binary.LittleEndian.Uint64(b[off+16:]))
		if entries[i].g < 1 || entries[i].delta < 0 {
			return fmt.Errorf("quantile: serialized tuple %d has invalid (g=%d, Δ=%d)", i, entries[i].g, entries[i].delta)
		}
		if i > 0 && entries[i].v < entries[i-1].v {
			return fmt.Errorf("quantile: serialized tuples out of order at %d", i)
		}
		rankSum += entries[i].g
		off += 24
	}
	if rankSum != int(n) {
		return fmt.Errorf("quantile: serialized gaps sum to %d, want %d", rankSum, n)
	}
	s.eps = eps
	s.n = int(n)
	s.entries = entries
	s.buf = s.buf[:0]
	return nil
}
