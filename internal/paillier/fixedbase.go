package paillier

// Windowed fixed-base exponentiation and DJN-style fast obfuscation.
//
// The baseline obfuscator r^n mod n² costs a full S-bit exponentiation per
// encryption — the dominant term of the paper's Enc cost model. Following
// Damgård–Jurik–Nielsen (CT-RSA 2010, §4.2), a single random n-th residue
// h = r₀^n mod n² is derived at key setup; each obfuscator is then h^x for
// a short random exponent x. Because h generates (a large subgroup of) the
// n-th residues, h^x is itself an n-th residue, and under the standard
// short-exponent indistinguishability assumption a 2·112-bit x makes h^x
// computationally indistinguishable from a fresh r^n (112 bits being the
// NIST security level of a 2048-bit modulus).
//
// The short exponentiation is served by a FixedBase table: with window
// width w, precomputed entries h^(j·2^(w·i)) reduce h^x to at most
// ⌈bits(x)/w⌉ modular multiplications and zero squarings. At w = 4 and a
// 224-bit exponent that is ≤ 56 multiplications mod n² versus the ~3·S/2
// operations of the full r^n ladder — an order of magnitude cheaper, which
// is the speedup BENCH_crypto.json tracks.

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// DefaultObfuscationBits is the short-exponent length fast obfuscation
// uses for moduli up to 2048 bits: twice the 112-bit symmetric-equivalent
// strength of a 2048-bit modulus, the usual margin for short-exponent
// subgroup assumptions. Larger moduli get longer exponents — see
// DefaultObfuscationBitsFor.
const DefaultObfuscationBits = 224

// DefaultObfuscationBitsFor returns the short-exponent length used when
// the caller does not choose one: twice the NIST symmetric-equivalent
// strength of the modulus size (SP 800-57: 2048→112, 3072→128, 7680→192,
// 15360→256 bits of strength). Moduli below 3072 bits — including the
// small keys the tests use — take the 2048-bit figure; the short exponent
// must never promise more strength than the modulus itself delivers.
func DefaultObfuscationBitsFor(modBits int) int {
	switch {
	case modBits >= 15360:
		return 512
	case modBits >= 7680:
		return 384
	case modBits >= 3072:
		return 256
	default:
		return DefaultObfuscationBits
	}
}

// maxObfuscationBits bounds the short-exponent length a caller (or, via
// the session-setup message, a remote peer) may select: an exponent as
// wide as n² itself. Beyond that, extra width buys no entropy — the
// subgroup order divides λ(n²) — while the fixed-base tables grow
// linearly in expBits, so an unbounded value is a memory-exhaustion
// vector on whoever builds the tables.
func maxObfuscationBits(modBits int) int { return 2 * modBits }

// fixedBaseWindow is the window width w; 2^w−1 table entries per window.
// Width 4 balances table size (15 entries per window, ~430 KiB at
// S = 2048) against multiplication count (one per non-zero window).
const fixedBaseWindow = 4

// FixedBase holds precomputed power tables for exponentiating one fixed
// base modulo one fixed modulus. It is safe for concurrent use after
// construction (Exp only reads the tables).
type FixedBase struct {
	base   *big.Int
	mod    *big.Int
	tables [][]*big.Int // tables[i][j-1] = base^(j·2^(w·i)) mod m
}

// NewFixedBase precomputes tables covering exponents up to maxBits bits.
// The one-time cost is roughly one full exponentiation's worth of modular
// multiplications; every subsequent Exp is ⌈maxBits/w⌉ multiplications.
func NewFixedBase(base, mod *big.Int, maxBits int) *FixedBase {
	if maxBits < 1 {
		maxBits = 1
	}
	numWindows := (maxBits + fixedBaseWindow - 1) / fixedBaseWindow
	fb := &FixedBase{
		base:   new(big.Int).Set(base),
		mod:    new(big.Int).Set(mod),
		tables: make([][]*big.Int, numWindows),
	}
	cur := new(big.Int).Mod(base, mod)
	for i := range fb.tables {
		row := make([]*big.Int, (1<<fixedBaseWindow)-1)
		row[0] = new(big.Int).Set(cur)
		for j := 1; j < len(row); j++ {
			row[j] = new(big.Int).Mul(row[j-1], cur)
			row[j].Mod(row[j], mod)
		}
		fb.tables[i] = row
		if i+1 < len(fb.tables) {
			// base^(2^(w·(i+1))) = row[2^w−1] · cur.
			cur = new(big.Int).Mul(row[len(row)-1], cur)
			cur.Mod(cur, mod)
		}
	}
	return fb
}

// MaxBits is the largest exponent width the tables cover.
func (fb *FixedBase) MaxBits() int { return len(fb.tables) * fixedBaseWindow }

// Exp computes base^x mod m for non-negative x. Exponents wider than
// MaxBits fall back to math/big's general ladder, so the result is always
// correct; only the precomputed range is fast.
func (fb *FixedBase) Exp(x *big.Int) *big.Int {
	if x.Sign() < 0 || x.BitLen() > fb.MaxBits() {
		return new(big.Int).Exp(fb.base, x, fb.mod)
	}
	acc := big.NewInt(1)
	bits := x.BitLen()
	for i := 0; i*fixedBaseWindow < bits; i++ {
		v := 0
		for b := fixedBaseWindow - 1; b >= 0; b-- {
			v = v<<1 | int(x.Bit(i*fixedBaseWindow+b))
		}
		if v != 0 {
			acc.Mul(acc, fb.tables[i][v-1])
			acc.Mod(acc, fb.mod)
		}
	}
	return acc
}

// fastObfuscator produces obfuscators as h^x over a FixedBase table.
type fastObfuscator struct {
	h       *big.Int
	expBits int
	expMax  *big.Int // 2^expBits, exclusive bound for the short exponent
	fb      *FixedBase
}

// newFastObfuscator builds the table set for base h. expBits must be
// positive and pre-bounded by the caller (resolveObfuscationBits): table
// size is linear in expBits.
func newFastObfuscator(h *big.Int, expBits int, n2 *big.Int) *fastObfuscator {
	return &fastObfuscator{
		h:       new(big.Int).Set(h),
		expBits: expBits,
		expMax:  new(big.Int).Lsh(one, uint(expBits)),
		fb:      NewFixedBase(h, n2, expBits),
	}
}

// obfuscator draws a short random exponent x ∈ [1, 2^expBits) and returns
// h^x mod n².
func (f *fastObfuscator) obfuscator(random io.Reader) (*big.Int, error) {
	for {
		x, err := rand.Int(random, f.expMax)
		if err != nil {
			return nil, fmt.Errorf("paillier: drawing obfuscation exponent: %w", err)
		}
		if x.Sign() != 0 {
			return f.fb.Exp(x), nil
		}
	}
}

// resolveObfuscationBits applies the modulus-derived default and rejects
// lengths past the table-size bound. Every path that builds a
// fastObfuscator resolves through here, so no caller-supplied (or
// wire-supplied) value can size the precomputation tables unchecked.
func (pk *PublicKey) resolveObfuscationBits(expBits int) (int, error) {
	if expBits <= 0 {
		return DefaultObfuscationBitsFor(pk.Bits()), nil
	}
	if max := maxObfuscationBits(pk.Bits()); expBits > max {
		return 0, fmt.Errorf("paillier: obfuscation exponent length %d exceeds bound %d for a %d-bit modulus", expBits, max, pk.Bits())
	}
	return expBits, nil
}

// EnableFastObfuscation derives a random obfuscation base h = r₀^n mod n²
// and switches Obfuscator (and everything built on it: Encrypt,
// EncryptBatch, ObfuscatorPool) to the fast h^x path. expBits <= 0 selects
// the modulus-derived default (DefaultObfuscationBitsFor); random nil
// selects crypto/rand.Reader.
//
// Enable the fast path before the key is used concurrently (it is a plain
// configuration write, deliberately not synchronized against in-flight
// encryptions). Calling it again is a no-op.
func (pk *PublicKey) EnableFastObfuscation(random io.Reader, expBits int) error {
	if pk.fast != nil {
		return nil
	}
	expBits, err := pk.resolveObfuscationBits(expBits)
	if err != nil {
		return err
	}
	if random == nil {
		random = rand.Reader
	}
	for {
		h, err := pk.BaselineObfuscator(random)
		if err != nil {
			return err
		}
		// r₀ = 1 would fix every obfuscator to 1; redraw (probability 1/n).
		if h.Cmp(one) != 0 {
			pk.fast = newFastObfuscator(h, expBits, pk.NSquared)
			return nil
		}
	}
}

// SetObfuscationBase installs an obfuscation base received from the key
// owner (the session-setup message), enabling fast obfuscation on a
// passive party's reconstructed public key. Both wire-supplied values are
// validated before any allocation: the base must be a unit of Z*_{n²} and
// expBits must be within the table-size bound (expBits <= 0 selects the
// modulus-derived default) — a malformed or hostile setup frame must not
// crash encryption, exhaust memory building tables, or silently disable
// obfuscation.
//
// What cannot be validated here: that h really is an n-th residue.
// Deciding n-th residuosity without the factorization of n is exactly the
// DCR problem Paillier's security rests on, so a passive party must trust
// the key owner to derive h honestly (a non-residue base would let the
// key owner bias decrypted plaintexts by a chosen offset and void the
// short-exponent indistinguishability argument). This is inherent to the
// DJN scheme; see docs/PROTOCOL.md §Session setup for the trust model.
func (pk *PublicKey) SetObfuscationBase(h *big.Int, expBits int) error {
	expBits, err := pk.resolveObfuscationBits(expBits)
	if err != nil {
		return err
	}
	if h == nil || h.Sign() <= 0 || h.Cmp(pk.NSquared) >= 0 {
		return errors.New("paillier: obfuscation base out of range")
	}
	if h.Cmp(one) == 0 {
		return errors.New("paillier: obfuscation base is the identity")
	}
	if new(big.Int).GCD(nil, nil, h, pk.N).Cmp(one) != 0 {
		return errors.New("paillier: obfuscation base shares a factor with n")
	}
	pk.fast = newFastObfuscator(h, expBits, pk.NSquared)
	return nil
}

// DisableFastObfuscation reverts Obfuscator to the baseline r^n path, so
// a key shared across sessions can serve an exact-paper baseline run after
// a fast one. Like the enable calls, it is a setup step.
func (pk *PublicKey) DisableFastObfuscation() { pk.fast = nil }

// FastObfuscation reports whether the fast h^x path is enabled.
func (pk *PublicKey) FastObfuscation() bool { return pk.fast != nil }

// ObfuscationBase returns the derived base h = r₀^n mod n², or nil when
// fast obfuscation is disabled. The caller must treat it as read-only; it
// is public material, shipped to passive parties at session setup.
func (pk *PublicKey) ObfuscationBase() *big.Int {
	if pk.fast == nil {
		return nil
	}
	return pk.fast.h
}

// ObfuscationBits returns the short-exponent length in bits, or 0 when
// fast obfuscation is disabled.
func (pk *PublicKey) ObfuscationBits() int {
	if pk.fast == nil {
		return 0
	}
	return pk.fast.expBits
}
