package paillier

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// testKey caches one key pair per size so the whole package's tests do not
// repeatedly pay key generation.
var testKeys = map[int]*PrivateKey{}

func testKey(t testing.TB, bits int) *PrivateKey {
	t.Helper()
	if k, ok := testKeys[bits]; ok {
		return k
	}
	k, err := GenerateKey(rand.Reader, bits)
	if err != nil {
		t.Fatalf("GenerateKey(%d): %v", bits, err)
	}
	testKeys[bits] = k
	return k
}

func TestGenerateKeyRejectsBadSizes(t *testing.T) {
	for _, bits := range []int{0, -8, 32, 63, 127} {
		if _, err := GenerateKey(rand.Reader, bits); err == nil {
			t.Errorf("GenerateKey(%d) succeeded, want error", bits)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	priv := testKey(t, 256)
	for _, v := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40), 9223372036854775807, -9223372036854775808} {
		ct, err := priv.EncryptInt64(rand.Reader, v)
		if err != nil {
			t.Fatalf("EncryptInt64(%d): %v", v, err)
		}
		got, err := priv.DecryptInt64(ct)
		if err != nil {
			t.Fatalf("DecryptInt64(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip of %d = %d", v, got)
		}
	}
}

func TestHomomorphicAdditionProperty(t *testing.T) {
	priv := testKey(t, 256)
	f := func(a, b int32) bool {
		ca, err := priv.EncryptInt64(rand.Reader, int64(a))
		if err != nil {
			return false
		}
		cb, err := priv.EncryptInt64(rand.Reader, int64(b))
		if err != nil {
			return false
		}
		sum, err := priv.DecryptInt64(priv.Add(ca, cb))
		if err != nil {
			return false
		}
		return sum == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHomomorphicSubtraction(t *testing.T) {
	priv := testKey(t, 256)
	ca, _ := priv.EncryptInt64(rand.Reader, 100)
	cb, _ := priv.EncryptInt64(rand.Reader, 342)
	diff, err := priv.Sub(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := priv.DecryptInt64(diff)
	if err != nil {
		t.Fatal(err)
	}
	if got != -242 {
		t.Errorf("Sub = %d, want -242", got)
	}
}

func TestScalarMultiplicationProperty(t *testing.T) {
	priv := testKey(t, 256)
	f := func(v, k int16) bool {
		cv, err := priv.EncryptInt64(rand.Reader, int64(v))
		if err != nil {
			return false
		}
		prod, err := priv.MulScalar(cv, big.NewInt(int64(k)))
		if err != nil {
			return false
		}
		got, err := priv.DecryptInt64(prod)
		if err != nil {
			return false
		}
		return got == int64(v)*int64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddIntoMatchesAdd(t *testing.T) {
	priv := testKey(t, 256)
	acc := priv.EncryptZero()
	want := int64(0)
	rng := mrand.New(mrand.NewSource(7))
	for i := 0; i < 20; i++ {
		v := rng.Int63n(1000) - 500
		ct, err := priv.EncryptInt64(rand.Reader, v)
		if err != nil {
			t.Fatal(err)
		}
		priv.AddInto(&acc, ct)
		want += v
	}
	got, err := priv.DecryptInt64(acc)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("accumulated sum = %d, want %d", got, want)
	}
}

func TestEncryptZeroIsIdentity(t *testing.T) {
	priv := testKey(t, 256)
	ct, _ := priv.EncryptInt64(rand.Reader, 77)
	sum := priv.Add(ct, priv.EncryptZero())
	got, err := priv.DecryptInt64(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("x + Enc(0) decrypts to %d, want 77", got)
	}
	z, err := priv.DecryptInt64(priv.EncryptZero())
	if err != nil {
		t.Fatal(err)
	}
	if z != 0 {
		t.Errorf("Dec(EncryptZero()) = %d, want 0", z)
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	priv := testKey(t, 256)
	c1, _ := priv.EncryptInt64(rand.Reader, 5)
	c2, _ := priv.EncryptInt64(rand.Reader, 5)
	if c1.C.Cmp(c2.C) == 0 {
		t.Error("two encryptions of the same plaintext are identical; obfuscation missing")
	}
}

func TestDecryptRejectsInvalidCiphertext(t *testing.T) {
	priv := testKey(t, 256)
	cases := []Ciphertext{
		{C: nil},
		{C: big.NewInt(0)},
		{C: new(big.Int).Neg(big.NewInt(5))},
		{C: new(big.Int).Set(priv.NSquared)},
	}
	for i, ct := range cases {
		if _, err := priv.Decrypt(ct); err == nil {
			t.Errorf("case %d: Decrypt accepted invalid ciphertext", i)
		}
	}
}

func TestCiphertextBytesRoundTrip(t *testing.T) {
	priv := testKey(t, 256)
	ct, _ := priv.EncryptInt64(rand.Reader, 1234)
	back := CiphertextFromBytes(ct.Bytes())
	got, err := priv.DecryptInt64(back)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1234 {
		t.Errorf("byte round trip = %d, want 1234", got)
	}
}

func TestBatchEncryptDecrypt(t *testing.T) {
	priv := testKey(t, 256)
	ms := make([]*big.Int, 50)
	for i := range ms {
		ms[i] = big.NewInt(int64(i * 13))
	}
	cts, err := priv.EncryptBatch(rand.Reader, ms, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := priv.DecryptBatch(cts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if got[i].Cmp(ms[i]) != 0 {
			t.Fatalf("batch[%d] = %v, want %v", i, got[i], ms[i])
		}
	}
}

func TestSum(t *testing.T) {
	priv := testKey(t, 256)
	if v, err := priv.DecryptInt64(priv.Sum(nil)); err != nil || v != 0 {
		t.Errorf("Sum(nil) = %d, %v; want 0, nil", v, err)
	}
	cts := make([]Ciphertext, 5)
	for i := range cts {
		cts[i], _ = priv.EncryptInt64(rand.Reader, int64(i+1))
	}
	v, err := priv.DecryptInt64(priv.Sum(cts))
	if err != nil {
		t.Fatal(err)
	}
	if v != 15 {
		t.Errorf("Sum(1..5) = %d, want 15", v)
	}
}

func TestObfuscatorPool(t *testing.T) {
	priv := testKey(t, 256)
	pool := NewObfuscatorPool(&priv.PublicKey, 2, 8, nil)
	defer pool.Close()
	for i := 0; i < 10; i++ {
		rn, err := pool.Next()
		if err != nil {
			t.Fatal(err)
		}
		ct := priv.EncryptWithObfuscator(big.NewInt(int64(i)), rn)
		got, err := priv.DecryptInt64(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(i) {
			t.Errorf("pool-encrypted %d decrypts to %d", i, got)
		}
	}
}

func TestSignedMapping(t *testing.T) {
	priv := testKey(t, 256)
	neg := new(big.Int).Sub(priv.N, big.NewInt(9)) // encodes -9
	if got := priv.Signed(neg); got.Int64() != -9 {
		t.Errorf("Signed(n-9) = %v, want -9", got)
	}
	if got := priv.Signed(big.NewInt(9)); got.Int64() != 9 {
		t.Errorf("Signed(9) = %v, want 9", got)
	}
}

func TestModulusWrapAround(t *testing.T) {
	// Adding two large positives that exceed n wraps mod n; the signed
	// view must then be interpreted carefully by callers. Verify the raw
	// modular behaviour is exact.
	priv := testKey(t, 128)
	a := new(big.Int).Sub(priv.N, big.NewInt(1))
	ca, err := priv.Encrypt(rand.Reader, a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := priv.Encrypt(rand.Reader, big.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := priv.Decrypt(priv.Add(ca, cb))
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 2 { // (n-1)+3 mod n = 2
		t.Errorf("wraparound sum = %v, want 2", m)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	priv := testKey(b, 512)
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priv.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptWithPool(b *testing.B) {
	priv := testKey(b, 512)
	pool := NewObfuscatorPool(&priv.PublicKey, 0, 64, nil)
	defer pool.Close()
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rn, err := pool.Next()
		if err != nil {
			b.Fatal(err)
		}
		priv.EncryptWithObfuscator(m, rn)
	}
}

func BenchmarkDecryptCRT(b *testing.B) {
	priv := testKey(b, 512)
	ct, _ := priv.EncryptInt64(rand.Reader, 987654321)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priv.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHAdd(b *testing.B) {
	priv := testKey(b, 512)
	c1, _ := priv.EncryptInt64(rand.Reader, 7)
	c2, _ := priv.EncryptInt64(rand.Reader, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		priv.AddInto(&c1, c2)
	}
}

func BenchmarkSMul(b *testing.B) {
	priv := testKey(b, 512)
	ct, _ := priv.EncryptInt64(rand.Reader, 7)
	k := big.NewInt(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priv.MulScalar(ct, k); err != nil {
			b.Fatal(err)
		}
	}
}
